//! # antdt-agent — the AntDT Agent component
//!
//! One Agent process runs beside every worker/server (§V-F). It does two
//! things:
//!
//! 1. **Report**: asynchronously pushes application state (BPT, batch size) to
//!    the Monitor every `report_every_iters` iterations (paper default 10).
//! 2. **Execute**: receives actions from the Controller. *Node actions*
//!    (`KILL_RESTART`) fire independently. *Global actions* (`ADJUST_BS`,
//!    `BACKUP_WORKERS`, `ADJUST_LR`) go through the synchronization mechanism
//!    of Fig. 6: a randomly-elected **primary agent** receives the Controller's
//!    response and broadcasts it to all secondary agents; a local barrier
//!    between each agent and its training process guarantees every worker
//!    applies the action *in the same iteration*.
//!
//! The messages are bytes-level signals, so the overhead is dominated by
//! latency, not bandwidth — the ledger in [`overhead`] quantifies it (paper
//! Fig. 18 reports < 0.5% of JCT).

pub mod bus;
pub mod overhead;
pub mod runtime;
pub mod sync;

pub use bus::{ControlMsg, DeliveryOutcome, Directive};
pub use overhead::OverheadLedger;
pub use runtime::{Agent, AgentConfig, AgentCounters};
pub use sync::{elect_primary, BroadcastModel};
