//! The per-node Agent: report cadence plus the delivery inbox whose contents
//! take effect at the next iteration boundary (the "local barrier" end of
//! Fig. 6 — the training process picks the action up between iterations, never
//! mid-batch).

use antdt_controller::Action;
use antdt_monitor::NodeId;
use antdt_sim::SimTime;
use antdt_telemetry::Counter;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Telemetry counters shared by every [`Agent`] of a job (broadcast/barrier
/// visibility: deliveries fan out, applications happen at iteration
/// boundaries).
#[derive(Debug, Clone, Default)]
pub struct AgentCounters {
    /// Actions delivered into agent inboxes by the broadcast.
    pub delivered: Counter,
    /// Actions applied at an iteration boundary (`take_due`).
    pub applied: Counter,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AgentConfig {
    /// Report application state every this many iterations (paper: 10).
    pub report_every_iters: u32,
}

impl Default for AgentConfig {
    fn default() -> Self {
        AgentConfig { report_every_iters: 10 }
    }
}

/// Agent state for one node.
#[derive(Debug, Clone)]
pub struct Agent {
    pub node: NodeId,
    cfg: AgentConfig,
    iters_since_report: u32,
    /// `(delivery time, action)` — delivered by the broadcast, applied when the
    /// training process crosses an iteration boundary at/after that time.
    inbox: VecDeque<(SimTime, Action)>,
    counters: Option<AgentCounters>,
}

impl Agent {
    pub fn new(node: NodeId, cfg: AgentConfig) -> Self {
        Agent { node, cfg, iters_since_report: 0, inbox: VecDeque::new(), counters: None }
    }

    /// Attach telemetry counters (shared across a job's agents).
    pub fn attach_telemetry(&mut self, counters: AgentCounters) {
        self.counters = Some(counters);
    }

    /// Called once per completed iteration; returns `true` when this iteration's
    /// statistics should be pushed to the Monitor.
    pub fn on_iteration(&mut self) -> bool {
        self.iters_since_report += 1;
        if self.iters_since_report >= self.cfg.report_every_iters {
            self.iters_since_report = 0;
            true
        } else {
            false
        }
    }

    /// Deliver a broadcast action that becomes effective at `at`.
    pub fn deliver(&mut self, at: SimTime, action: Action) {
        self.inbox.push_back((at, action));
        if let Some(c) = &self.counters {
            c.delivered.inc();
        }
    }

    /// At an iteration boundary at time `now`, drain every action whose
    /// delivery time has passed (in delivery order). The delivery timestamp is
    /// kept so the runtime can audit that every survivor applied the same
    /// broadcast (chaos-drill convergence invariant).
    pub fn take_due(&mut self, now: SimTime) -> Vec<(SimTime, Action)> {
        let mut due = Vec::new();
        while let Some(&(at, _)) = self.inbox.front() {
            if at <= now {
                due.push(self.inbox.pop_front().unwrap());
            } else {
                break;
            }
        }
        if let Some(c) = &self.counters {
            c.applied.add(due.len() as u64);
        }
        due
    }

    /// Reset after a restart: a fresh pod starts a fresh agent (pending
    /// deliveries addressed to the dead process are dropped).
    pub fn reset(&mut self) {
        self.iters_since_report = 0;
        self.inbox.clear();
    }

    pub fn pending(&self) -> usize {
        self.inbox.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(secs: f64) -> SimTime {
        SimTime::from_secs_f64(secs)
    }

    #[test]
    fn reports_every_n_iterations() {
        let mut a = Agent::new(NodeId::worker(0), AgentConfig { report_every_iters: 3 });
        let due: Vec<bool> = (0..9).map(|_| a.on_iteration()).collect();
        assert_eq!(due, vec![false, false, true, false, false, true, false, false, true]);
    }

    #[test]
    fn actions_apply_only_after_delivery_time() {
        let mut a = Agent::new(NodeId::worker(1), AgentConfig::default());
        a.deliver(t(10.0), Action::BackupWorkers { b: 1 });
        a.deliver(t(20.0), Action::None);
        assert!(a.take_due(t(5.0)).is_empty());
        assert_eq!(a.take_due(t(10.0)), vec![(t(10.0), Action::BackupWorkers { b: 1 })]);
        assert_eq!(a.take_due(t(25.0)), vec![(t(20.0), Action::None)]);
        assert_eq!(a.pending(), 0);
    }

    #[test]
    fn delivery_order_is_preserved_within_a_boundary() {
        let mut a = Agent::new(NodeId::worker(1), AgentConfig::default());
        a.deliver(t(1.0), Action::BackupWorkers { b: 1 });
        a.deliver(t(2.0), Action::BackupWorkers { b: 2 });
        let due = a.take_due(t(3.0));
        assert_eq!(
            due,
            vec![
                (t(1.0), Action::BackupWorkers { b: 1 }),
                (t(2.0), Action::BackupWorkers { b: 2 })
            ]
        );
    }

    #[test]
    fn counters_track_delivery_and_application() {
        let c = AgentCounters::default();
        let mut a = Agent::new(NodeId::worker(0), AgentConfig::default());
        let mut b = Agent::new(NodeId::worker(1), AgentConfig::default());
        a.attach_telemetry(c.clone());
        b.attach_telemetry(c.clone());
        a.deliver(t(1.0), Action::None);
        b.deliver(t(1.0), Action::None);
        b.deliver(t(9.0), Action::None);
        assert_eq!(c.delivered.get(), 3);
        a.take_due(t(2.0));
        b.take_due(t(2.0));
        assert_eq!(c.applied.get(), 2, "the t=9 delivery is not yet due");
    }

    #[test]
    fn reset_clears_everything() {
        let mut a = Agent::new(NodeId::worker(0), AgentConfig { report_every_iters: 2 });
        a.on_iteration();
        a.deliver(t(1.0), Action::None);
        a.reset();
        assert_eq!(a.pending(), 0);
        // Cadence restarts from zero.
        assert!(!a.on_iteration());
        assert!(a.on_iteration());
    }
}
