//! The per-node Agent: report cadence plus the delivery inbox whose contents
//! take effect at the next iteration boundary (the "local barrier" end of
//! Fig. 6 — the training process picks the action up between iterations, never
//! mid-batch).
//!
//! The agent is the bus endpoint for [`crate::bus::Directive`]s: deliveries
//! are generation-fenced (a restarted pod runs a fresh incarnation and
//! rejects directives fenced to the dead one) and idempotent under
//! redelivery (a bus-unique `seq` dedups). The inbox is kept ordered by
//! `(delivery time, seq)`, so reordered redeliveries apply in a canonical
//! order no matter how the channel scrambled them.

use crate::bus::{DeliveryOutcome, Directive};
use antdt_controller::Action;
use antdt_monitor::NodeId;
use antdt_sim::SimTime;
use antdt_telemetry::Counter;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// Directly-delivered (non-bus) actions draw seqs from a disjoint namespace
/// so tests and embedders of the bare `deliver` API never collide with
/// bus-assigned sequence numbers.
const LOCAL_SEQ_BASE: u64 = 1 << 63;

/// Telemetry counters shared by every [`Agent`] of a job (broadcast/barrier
/// visibility: deliveries fan out, applications happen at iteration
/// boundaries).
#[derive(Debug, Clone, Default)]
pub struct AgentCounters {
    /// Actions delivered into agent inboxes by the broadcast.
    pub delivered: Counter,
    /// Actions applied at an iteration boundary (`take_due`).
    pub applied: Counter,
    /// Directives rejected by the generation fence (stale after a restart).
    pub rejected: Counter,
    /// Redelivered directives idempotently dropped by the seq dedup.
    pub deduped: Counter,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AgentConfig {
    /// Report application state every this many iterations (paper: 10).
    pub report_every_iters: u32,
}

impl Default for AgentConfig {
    fn default() -> Self {
        AgentConfig { report_every_iters: 10 }
    }
}

/// Agent state for one node.
#[derive(Debug, Clone)]
pub struct Agent {
    pub node: NodeId,
    cfg: AgentConfig,
    iters_since_report: u32,
    /// This agent's incarnation. Bumped by [`Agent::reset`] (pod restart);
    /// the fence every directive must match.
    gen: u32,
    /// `(delivery time, seq, action)` — kept sorted by `(at, seq)`; applied
    /// when the training process crosses an iteration boundary at/after `at`.
    inbox: Vec<(SimTime, u64, Action)>,
    /// Seqs accepted by this incarnation (dedup under redelivery).
    seen: BTreeSet<u64>,
    next_local_seq: u64,
    counters: Option<AgentCounters>,
}

impl Agent {
    pub fn new(node: NodeId, cfg: AgentConfig) -> Self {
        Agent {
            node,
            cfg,
            iters_since_report: 0,
            gen: 0,
            inbox: Vec::new(),
            seen: BTreeSet::new(),
            next_local_seq: LOCAL_SEQ_BASE,
            counters: None,
        }
    }

    /// Attach telemetry counters (shared across a job's agents).
    pub fn attach_telemetry(&mut self, counters: AgentCounters) {
        self.counters = Some(counters);
    }

    /// This agent's current incarnation (the fence new directives must carry).
    pub fn incarnation(&self) -> u32 {
        self.gen
    }

    /// Called once per completed iteration; returns `true` when this iteration's
    /// statistics should be pushed to the Monitor.
    pub fn on_iteration(&mut self) -> bool {
        self.iters_since_report += 1;
        if self.iters_since_report >= self.cfg.report_every_iters {
            self.iters_since_report = 0;
            true
        } else {
            false
        }
    }

    /// Deliver a fenced directive that becomes effective at `at`. Rejects a
    /// stale fence, dedups a redelivered seq, otherwise queues in `(at, seq)`
    /// order.
    pub fn deliver_directive(&mut self, at: SimTime, d: &Directive) -> DeliveryOutcome {
        if d.fence_gen != self.gen {
            if let Some(c) = &self.counters {
                c.rejected.inc();
            }
            return DeliveryOutcome::RejectedStale { agent_gen: self.gen };
        }
        if !self.seen.insert(d.seq) {
            if let Some(c) = &self.counters {
                c.deduped.inc();
            }
            return DeliveryOutcome::Duplicate;
        }
        let pos = self
            .inbox
            .iter()
            .position(|&(t, s, _)| (t, s) > (at, d.seq))
            .unwrap_or(self.inbox.len());
        self.inbox.insert(pos, (at, d.seq, d.action.clone()));
        if let Some(c) = &self.counters {
            c.delivered.inc();
        }
        DeliveryOutcome::Accepted
    }

    /// Deliver a broadcast action that becomes effective at `at` without bus
    /// framing: the action is wrapped in a directive fenced to the current
    /// incarnation with a locally-drawn seq (disjoint from bus seqs).
    pub fn deliver(&mut self, at: SimTime, action: Action) {
        let seq = self.next_local_seq;
        self.next_local_seq += 1;
        let d = Directive { seq, decided_at: at, fence_gen: self.gen, action };
        let outcome = self.deliver_directive(at, &d);
        debug_assert_eq!(outcome, DeliveryOutcome::Accepted);
    }

    /// At an iteration boundary at time `now`, drain every action whose
    /// delivery time has passed, in `(delivery time, seq)` order. The delivery
    /// timestamp and seq are kept so the runtime can audit that every survivor
    /// applied the same broadcast (chaos-drill convergence invariant) and mark
    /// the directive's fate.
    pub fn take_due(&mut self, now: SimTime) -> Vec<(SimTime, u64, Action)> {
        let mut due = Vec::new();
        self.take_due_into(now, &mut due);
        due
    }

    /// Allocation-free [`Agent::take_due`]: appends the due actions to `out`
    /// so a caller-owned buffer can be reused across iteration boundaries.
    pub fn take_due_into(&mut self, now: SimTime, out: &mut Vec<(SimTime, u64, Action)>) {
        let n = self.inbox.iter().take_while(|&&(at, _, _)| at <= now).count();
        if let Some(c) = &self.counters {
            c.applied.add(n as u64);
        }
        out.extend(self.inbox.drain(..n));
    }

    /// Reset after a restart: a fresh pod starts a fresh *incarnation* —
    /// cadence restarts, pending deliveries addressed to the dead process are
    /// dropped (their seqs are returned so the bus can audit them as wiped),
    /// and the fence moves so in-flight directives for the old incarnation
    /// will be rejected on arrival.
    pub fn reset(&mut self) -> Vec<u64> {
        self.iters_since_report = 0;
        self.gen += 1;
        self.seen.clear();
        self.inbox.drain(..).map(|(_, seq, _)| seq).collect()
    }

    pub fn pending(&self) -> usize {
        self.inbox.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn t(secs: f64) -> SimTime {
        SimTime::from_secs_f64(secs)
    }

    fn dir(seq: u64, fence_gen: u32, action: Action) -> Directive {
        Directive { seq, decided_at: t(0.0), fence_gen, action }
    }

    #[test]
    fn reports_every_n_iterations() {
        let mut a = Agent::new(NodeId::worker(0), AgentConfig { report_every_iters: 3 });
        let due: Vec<bool> = (0..9).map(|_| a.on_iteration()).collect();
        assert_eq!(due, vec![false, false, true, false, false, true, false, false, true]);
    }

    #[test]
    fn actions_apply_only_after_delivery_time() {
        let mut a = Agent::new(NodeId::worker(1), AgentConfig::default());
        a.deliver(t(10.0), Action::BackupWorkers { b: 1 });
        a.deliver(t(20.0), Action::None);
        assert!(a.take_due(t(5.0)).is_empty());
        let first = a.take_due(t(10.0));
        assert_eq!(first.len(), 1);
        assert_eq!((first[0].0, &first[0].2), (t(10.0), &Action::BackupWorkers { b: 1 }));
        let second = a.take_due(t(25.0));
        assert_eq!(second.len(), 1);
        assert_eq!((second[0].0, &second[0].2), (t(20.0), &Action::None));
        assert_eq!(a.pending(), 0);
    }

    #[test]
    fn delivery_order_is_preserved_within_a_boundary() {
        let mut a = Agent::new(NodeId::worker(1), AgentConfig::default());
        a.deliver(t(1.0), Action::BackupWorkers { b: 1 });
        a.deliver(t(2.0), Action::BackupWorkers { b: 2 });
        let due: Vec<(SimTime, Action)> =
            a.take_due(t(3.0)).into_iter().map(|(at, _, x)| (at, x)).collect();
        assert_eq!(
            due,
            vec![
                (t(1.0), Action::BackupWorkers { b: 1 }),
                (t(2.0), Action::BackupWorkers { b: 2 })
            ]
        );
    }

    /// Two directives delivered for the same instant apply in seq order —
    /// i.e. decision order — regardless of the order the channel handed them
    /// over.
    #[test]
    fn same_timestamp_deliveries_apply_in_seq_order() {
        let mut a = Agent::new(NodeId::worker(0), AgentConfig::default());
        a.deliver_directive(t(5.0), &dir(9, 0, Action::BackupWorkers { b: 9 }));
        a.deliver_directive(t(5.0), &dir(3, 0, Action::BackupWorkers { b: 3 }));
        a.deliver_directive(t(5.0), &dir(7, 0, Action::BackupWorkers { b: 7 }));
        let seqs: Vec<u64> = a.take_due(t(5.0)).into_iter().map(|(_, s, _)| s).collect();
        assert_eq!(seqs, vec![3, 7, 9]);
    }

    #[test]
    fn duplicate_delivery_is_idempotent() {
        let mut a = Agent::new(NodeId::worker(0), AgentConfig::default());
        let d = dir(42, 0, Action::BackupWorkers { b: 1 });
        assert_eq!(a.deliver_directive(t(1.0), &d), DeliveryOutcome::Accepted);
        assert_eq!(a.deliver_directive(t(1.0), &d), DeliveryOutcome::Duplicate);
        assert_eq!(a.deliver_directive(t(2.0), &d), DeliveryOutcome::Duplicate);
        assert_eq!(a.take_due(t(10.0)).len(), 1, "one application despite three deliveries");
    }

    #[test]
    fn stale_fence_is_rejected_after_reset() {
        let mut a = Agent::new(NodeId::worker(0), AgentConfig::default());
        let stale = dir(1, 0, Action::BackupWorkers { b: 1 });
        a.reset(); // incarnation 0 → 1
        assert_eq!(
            a.deliver_directive(t(1.0), &stale),
            DeliveryOutcome::RejectedStale { agent_gen: 1 }
        );
        assert_eq!(a.pending(), 0);
        let fresh = dir(2, 1, Action::BackupWorkers { b: 2 });
        assert_eq!(a.deliver_directive(t(1.0), &fresh), DeliveryOutcome::Accepted);
    }

    #[test]
    fn reset_returns_wiped_seqs() {
        let mut a = Agent::new(NodeId::worker(0), AgentConfig::default());
        a.deliver_directive(t(1.0), &dir(5, 0, Action::None));
        a.deliver_directive(t(2.0), &dir(6, 0, Action::None));
        assert_eq!(a.reset(), vec![5, 6]);
        assert_eq!(a.pending(), 0);
    }

    #[test]
    fn counters_track_delivery_application_and_rejection() {
        let c = AgentCounters::default();
        let mut a = Agent::new(NodeId::worker(0), AgentConfig::default());
        let mut b = Agent::new(NodeId::worker(1), AgentConfig::default());
        a.attach_telemetry(c.clone());
        b.attach_telemetry(c.clone());
        a.deliver(t(1.0), Action::None);
        b.deliver(t(1.0), Action::None);
        b.deliver(t(9.0), Action::None);
        assert_eq!(c.delivered.get(), 3);
        a.take_due(t(2.0));
        b.take_due(t(2.0));
        assert_eq!(c.applied.get(), 2, "the t=9 delivery is not yet due");
        let d = dir(1, 0, Action::None);
        a.deliver_directive(t(3.0), &d);
        a.deliver_directive(t(3.0), &d);
        assert_eq!(c.deduped.get(), 1);
        a.reset();
        a.deliver_directive(t(4.0), &dir(2, 0, Action::None));
        assert_eq!(c.rejected.get(), 1);
    }

    #[test]
    fn reset_clears_everything() {
        let mut a = Agent::new(NodeId::worker(0), AgentConfig { report_every_iters: 2 });
        a.on_iteration();
        a.deliver(t(1.0), Action::None);
        a.reset();
        assert_eq!(a.pending(), 0);
        // Cadence restarts from zero.
        assert!(!a.on_iteration());
        assert!(a.on_iteration());
    }

    // Idempotence + canonical ordering under the channel's worst case:
    // whatever subset of directives the channel redelivers, in whatever
    // order, the applied sequence is exactly one copy of each unique seq
    // sorted by (delivery time, seq).
    proptest! {
        #[test]
        fn redelivered_and_reordered_directives_are_idempotent(
            // (seq in a small range to force collisions, delivery time)
            deliveries in proptest::collection::vec((0u64..12, 0u32..20), 1..60),
        ) {
            let mut a = Agent::new(NodeId::worker(0), AgentConfig::default());
            let mut expected: Vec<(u32, u64)> = Vec::new();
            for &(seq, at) in &deliveries {
                let d = dir(seq, 0, Action::BackupWorkers { b: seq as u32 });
                let outcome = a.deliver_directive(t(at as f64), &d);
                match outcome {
                    DeliveryOutcome::Accepted => expected.push((at, seq)),
                    DeliveryOutcome::Duplicate => {}
                    DeliveryOutcome::RejectedStale { .. } => {
                        prop_assert!(false, "no resets in this scenario")
                    }
                }
            }
            expected.sort_unstable();
            let applied: Vec<(u32, u64)> = a
                .take_due(t(1e9))
                .into_iter()
                .map(|(at, seq, _)| (at.as_micros() as u32 / 1_000_000, seq))
                .collect();
            // Each unique seq applied exactly once, in (at, seq) order.
            prop_assert_eq!(applied, expected);
            prop_assert_eq!(a.pending(), 0);
        }
    }
}
