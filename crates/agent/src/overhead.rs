//! Overhead accounting for paper Fig. 18: the framework's added time split into
//! the Stateful DDS share (shard fetch/report round-trips) and the Agent
//! synchronization share (broadcast + local barrier), reported as a percentage
//! of the JCT.

use antdt_sim::SimDuration;
use serde::{Deserialize, Serialize};

#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct OverheadLedger {
    pub dds: SimDuration,
    pub sync: SimDuration,
}

impl OverheadLedger {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn add_dds(&mut self, d: SimDuration) {
        self.dds += d;
    }

    pub fn add_sync(&mut self, d: SimDuration) {
        self.sync += d;
    }

    pub fn total(&self) -> SimDuration {
        self.dds + self.sync
    }

    /// Overhead as a fraction of the job completion time.
    pub fn fraction_of(&self, jct: SimDuration) -> f64 {
        if jct.is_zero() {
            return 0.0;
        }
        self.total().as_secs_f64() / jct.as_secs_f64()
    }

    /// Split `(dds_share, sync_share)` of the total overhead, each in `[0, 1]`.
    pub fn split(&self) -> (f64, f64) {
        let t = self.total().as_secs_f64();
        if t <= 0.0 {
            return (0.0, 0.0);
        }
        (self.dds.as_secs_f64() / t, self.sync.as_secs_f64() / t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulates_and_reports_fractions() {
        let mut l = OverheadLedger::new();
        l.add_dds(SimDuration::from_secs(11));
        l.add_sync(SimDuration::from_secs(9));
        assert_eq!(l.total(), SimDuration::from_secs(20));
        let f = l.fraction_of(SimDuration::from_secs(4000));
        assert!((f - 0.005).abs() < 1e-9);
        let (d, s) = l.split();
        assert!((d - 0.55).abs() < 1e-9);
        assert!((s - 0.45).abs() < 1e-9);
    }

    #[test]
    fn empty_ledger_is_zero() {
        let l = OverheadLedger::new();
        assert_eq!(l.fraction_of(SimDuration::from_secs(100)), 0.0);
        assert_eq!(l.split(), (0.0, 0.0));
        assert_eq!(l.fraction_of(SimDuration::ZERO), 0.0);
    }
}
