//! The control-bus message vocabulary (paper Fig. 6, made explicit).
//!
//! Every hop of the Monitor→Controller→Agent loop is one of these typed
//! messages. The bus itself (scheduling, channel model, retries) lives in
//! `antdt-core`'s runtime — this crate only defines the wire types and the
//! agent-side endpoint semantics (fencing, dedup), so the component crates
//! stay independent of the runtime that carries their traffic.
//!
//! Fencing rule: a [`Directive`] is stamped with the *incarnation* of its
//! target agent at decision time (`fence_gen`). A restarted worker runs a
//! fresh incarnation; a directive fenced to a dead incarnation is rejected at
//! delivery — never applied — which is what makes delayed control channels
//! safe around `KILL_RESTART`.

use antdt_controller::Action;
use antdt_monitor::NodeId;
use antdt_sim::SimTime;
use serde::Serialize;

/// One generation-fenced Controller action addressed to one agent.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Directive {
    /// Bus-unique sequence number: the dedup key under redelivery.
    pub seq: u64,
    /// When the Controller decided the action.
    pub decided_at: SimTime,
    /// The target agent's incarnation at decision time. Delivery to any
    /// other incarnation is rejected (stale fence).
    pub fence_gen: u32,
    pub action: Action,
}

/// One message on the control bus.
#[derive(Debug, Clone, PartialEq)]
pub enum ControlMsg {
    /// Agent → Monitor: one iteration statistic (`report_bpt` payload). `at`
    /// is the measurement instant; a delayed channel shifts *visibility*, not
    /// the measurement itself.
    Report { node: NodeId, at: SimTime, bpt_secs: f64, batch: u64 },
    /// Monitor → Controller: the aggregated cluster view is ready. Monitor
    /// and Controller are colocated on the AntDT master, so this hop is
    /// always inline; the type exists so the loop is fully enumerated.
    Snapshot { at: SimTime, nodes: usize },
    /// Controller → Agent: one fenced action.
    Directive { target: NodeId, directive: Directive },
    /// Agent → Controller: delivery receipt (`accepted == false` for a
    /// stale-fence rejection, which the Controller audits).
    Ack { from: NodeId, seq: u64, accepted: bool },
}

/// What happened when a [`Directive`] reached an agent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeliveryOutcome {
    /// Queued for the next iteration boundary.
    Accepted,
    /// Already seen this seq (redelivery); idempotently dropped.
    Duplicate,
    /// The fence names a dead incarnation; the directive is stale.
    RejectedStale { agent_gen: u32 },
}
