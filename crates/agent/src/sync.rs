//! The synchronization mechanism for global actions (paper Fig. 6).
//!
//! The Controller answers the *primary* agent's report; the primary then
//! broadcasts the action to every secondary agent in parallel. All deliveries
//! carry a small latency; training processes pick the action up at their next
//! iteration boundary, which realizes the "same iteration" guarantee without
//! ever suspending training.

use antdt_sim::rng::mix64;
use antdt_sim::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Cost model for the agent control-plane messages (bytes-level signals, so
/// latency dominates).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BroadcastModel {
    /// Controller → primary one-way latency.
    pub ctrl_latency_secs: f64,
    /// Primary → secondary one-way latency (parallel fan-out).
    pub fanout_latency_secs: f64,
    /// Effective bandwidth for the payload.
    pub bandwidth_bps: f64,
    /// Local barrier hand-off between agent and training process.
    pub barrier_secs: f64,
}

impl Default for BroadcastModel {
    fn default() -> Self {
        BroadcastModel {
            ctrl_latency_secs: 2e-3,
            fanout_latency_secs: 1e-3,
            bandwidth_bps: 1.0e9,
            barrier_secs: 5e-4,
        }
    }
}

impl BroadcastModel {
    /// Time from the Controller's decision until *every* agent holds the
    /// action: controller→primary, then the parallel fan-out, then the local
    /// barrier.
    pub fn full_broadcast_delay(&self, payload_bytes: u64) -> SimDuration {
        let xfer = payload_bytes as f64 / self.bandwidth_bps;
        SimDuration::from_secs_f64(
            self.ctrl_latency_secs + xfer + self.fanout_latency_secs + xfer + self.barrier_secs,
        )
    }

    /// Delay for a node action sent directly to one agent.
    pub fn direct_delay(&self, payload_bytes: u64) -> SimDuration {
        let xfer = payload_bytes as f64 / self.bandwidth_bps;
        SimDuration::from_secs_f64(self.ctrl_latency_secs + xfer + self.barrier_secs)
    }
}

/// "Randomly elected similar to the primary worker" (§V-F): a deterministic
/// pseudo-random pick among the alive workers, stable for a given seed and
/// alive set, re-electable after failures.
pub fn elect_primary(alive_workers: &[u32], seed: u64) -> Option<u32> {
    if alive_workers.is_empty() {
        return None;
    }
    let pick = mix64(seed) as usize % alive_workers.len();
    Some(alive_workers[pick])
}

/// Time at which each agent receives a globally-broadcast action issued at
/// `decided_at` (index-aligned with `agents`).
pub fn broadcast_deliveries(
    model: &BroadcastModel,
    decided_at: SimTime,
    payload_bytes: u64,
    n_agents: usize,
) -> Vec<SimTime> {
    let at = decided_at + model.full_broadcast_delay(payload_bytes);
    vec![at; n_agents]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn election_is_deterministic_and_in_set() {
        let alive = vec![3, 7, 9, 12];
        let a = elect_primary(&alive, 42).unwrap();
        let b = elect_primary(&alive, 42).unwrap();
        assert_eq!(a, b);
        assert!(alive.contains(&a));
        assert_eq!(elect_primary(&[], 42), None);
    }

    #[test]
    fn election_moves_when_primary_dies() {
        let alive = vec![0, 1, 2, 3];
        let p = elect_primary(&alive, 7).unwrap();
        let survivors: Vec<u32> = alive.into_iter().filter(|&w| w != p).collect();
        let p2 = elect_primary(&survivors, 7).unwrap();
        assert_ne!(p, p2);
        assert!(survivors.contains(&p2));
    }

    #[test]
    fn broadcast_delay_is_milliseconds_for_bytes_level_payloads() {
        let m = BroadcastModel::default();
        let d = m.full_broadcast_delay(256);
        assert!(d.as_secs_f64() < 0.01, "{d}");
        assert!(d > SimDuration::ZERO);
        // Direct (node action) path is strictly cheaper.
        assert!(m.direct_delay(256) < d);
    }

    #[test]
    fn deliveries_are_simultaneous_and_after_decision() {
        let m = BroadcastModel::default();
        let t0 = SimTime::from_secs_f64(100.0);
        let ds = broadcast_deliveries(&m, t0, 128, 5);
        assert_eq!(ds.len(), 5);
        assert!(ds.iter().all(|&d| d == ds[0] && d > t0));
    }
}
