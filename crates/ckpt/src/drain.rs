//! Async-drain model: snapshot writes overlap training instead of stalling
//! it by fiat. Capture is a short synchronous pause (the runtime charges
//! that separately); the write itself queues here and drains in the
//! background at storage-tier speed. A snapshot only becomes *durable* —
//! eligible for restore — once its drain completes, so a kill that lands
//! mid-drain falls back to the previous durable snapshot.

/// Single-writer drain queue over virtual time. Back-to-back snapshots
/// serialize: a write starts at `max(capture time, previous drain end)`.
#[derive(Debug, Clone, Copy, Default)]
pub struct DrainQueue {
    busy_until_us: u64,
}

impl DrainQueue {
    /// Enqueue a write captured at `at_us` that needs `write_secs` of I/O.
    /// Returns the virtual time (µs) at which the snapshot becomes durable.
    pub fn begin_write(&mut self, at_us: u64, write_secs: f64) -> u64 {
        let start = at_us.max(self.busy_until_us);
        let end = start + (write_secs.max(0.0) * 1e6).round() as u64;
        self.busy_until_us = end;
        end
    }

    /// Virtual time (µs) until which the drain channel is occupied.
    pub fn busy_until_us(&self) -> u64 {
        self.busy_until_us
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writes_drain_in_background_and_serialize() {
        let mut q = DrainQueue::default();
        // First write at t=10s, 4s of I/O -> durable at 14s.
        assert_eq!(q.begin_write(10_000_000, 4.0), 14_000_000);
        // Second capture at t=12s lands mid-drain: starts at 14s, durable 17s.
        assert_eq!(q.begin_write(12_000_000, 3.0), 17_000_000);
        // Third capture after the queue idles starts immediately.
        assert_eq!(q.begin_write(60_000_000, 1.0), 61_000_000);
        assert_eq!(q.busy_until_us(), 61_000_000);
    }

    #[test]
    fn zero_cost_write_is_durable_at_capture() {
        let mut q = DrainQueue::default();
        assert_eq!(q.begin_write(5, 0.0), 5);
    }
}
