//! Checkpoint cadence policy — the Controller-facing knob of the subsystem.
//!
//! `Fixed` pins the interval; `Adaptive` re-solves Young's approximation
//! `T* = sqrt(2 · C · MTBF)` (Young 1974) from the *observed* fault rate:
//! frequent kills pull checkpoints closer together (less replay per fault),
//! a quiet cluster relaxes toward the configured maximum (less capture
//! overhead). The runtime re-evaluates after every capture and logs interval
//! changes through the Controller decision audit.

use crate::tier::StorageTier;

/// How the checkpoint interval is chosen.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CkptPolicy {
    /// Always checkpoint every `interval_secs`.
    Fixed { interval_secs: f64 },
    /// Young's-formula interval from observed MTBF, clamped to
    /// `[min_secs, max_secs]`; `max_secs` while no fault has been observed.
    Adaptive { min_secs: f64, max_secs: f64 },
}

impl CkptPolicy {
    /// Next interval in seconds, plus the audit rule that produced it.
    ///
    /// * `capture_cost_secs` — cost C of one checkpoint (capture stall +
    ///   storage write drain).
    /// * `faults` — kills observed so far; `elapsed_secs` — run time so far.
    pub fn interval_secs(
        &self,
        capture_cost_secs: f64,
        faults: u64,
        elapsed_secs: f64,
    ) -> (f64, &'static str) {
        match *self {
            CkptPolicy::Fixed { interval_secs } => (interval_secs, "ckpt-fixed"),
            CkptPolicy::Adaptive { min_secs, max_secs } => {
                if faults == 0 || elapsed_secs <= 0.0 {
                    return (max_secs, "ckpt-adaptive-no-faults");
                }
                let mtbf = elapsed_secs / faults as f64;
                let young = (2.0 * capture_cost_secs.max(1e-6) * mtbf).sqrt();
                (young.clamp(min_secs, max_secs), "ckpt-adaptive-young")
            }
        }
    }
}

/// Everything the runtime needs to run the checkpoint subsystem for a job.
/// Attach with `JobConfig::with_ckpt`; `FailoverMode::Replay` implies the
/// default config when none is given.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CkptConfig {
    /// Where snapshots drain to (and restores read from).
    pub tier: StorageTier,
    /// Cadence policy; the *first* checkpoint always fires at the job's
    /// `checkpoint_interval`, subsequent ones follow the policy.
    pub policy: CkptPolicy,
    /// Synchronous capture pause charged to the parameter servers while the
    /// snapshot is cut (the write itself drains asynchronously).
    pub capture_stall_secs: f64,
}

impl Default for CkptConfig {
    fn default() -> Self {
        CkptConfig {
            tier: StorageTier::LocalDisk,
            policy: CkptPolicy::Fixed { interval_secs: 600.0 },
            capture_stall_secs: 2.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_ignores_fault_history() {
        let p = CkptPolicy::Fixed { interval_secs: 300.0 };
        assert_eq!(p.interval_secs(10.0, 0, 0.0), (300.0, "ckpt-fixed"));
        assert_eq!(p.interval_secs(10.0, 50, 1e6), (300.0, "ckpt-fixed"));
    }

    #[test]
    fn adaptive_relaxes_to_max_without_faults() {
        let p = CkptPolicy::Adaptive { min_secs: 60.0, max_secs: 1800.0 };
        assert_eq!(p.interval_secs(10.0, 0, 5_000.0), (1800.0, "ckpt-adaptive-no-faults"));
    }

    #[test]
    fn adaptive_follows_youngs_formula_and_clamps() {
        let p = CkptPolicy::Adaptive { min_secs: 60.0, max_secs: 1800.0 };
        // MTBF 2000s, C=10s -> T* = sqrt(2*10*2000) = 200s.
        let (t, rule) = p.interval_secs(10.0, 5, 10_000.0);
        assert!((t - 200.0).abs() < 1e-9);
        assert_eq!(rule, "ckpt-adaptive-young");
        // Hammered cluster clamps at min.
        let (t, _) = p.interval_secs(1.0, 1_000, 10_000.0);
        assert_eq!(t, 60.0);
        // Nearly fault-free clamps at max.
        let (t, _) = p.interval_secs(10.0, 1, 10_000_000.0);
        assert_eq!(t, 1800.0);
    }

    #[test]
    fn more_faults_mean_tighter_cadence() {
        let p = CkptPolicy::Adaptive { min_secs: 1.0, max_secs: 1e9 };
        let (sparse, _) = p.interval_secs(5.0, 2, 100_000.0);
        let (dense, _) = p.interval_secs(5.0, 20, 100_000.0);
        assert!(dense < sparse);
    }
}
