//! Storage-tier cost model: where a snapshot lands decides how long the
//! write drains and how long a restore read blocks the replacement pod.
//!
//! Numbers are deliberately coarse — the subsystem's experiments care about
//! the *shape* of the tradeoff (fast-but-local vs slow-but-durable), not
//! about any particular device. Calibrate with [`StorageTier::Custom`].

/// A checkpoint storage target with asymmetric read/write bandwidth and
/// fixed per-operation latency.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum StorageTier {
    /// Node-local NVMe-class disk: fast, but a lost node loses it too —
    /// in a real system this tier is paired with background upload; here it
    /// simply models the cheap end of the spectrum.
    LocalDisk,
    /// Remote object store (S3/OSS-class): durable, high-latency, modest
    /// per-stream bandwidth.
    ObjectStore,
    /// Bring-your-own numbers.
    Custom { write_bw_bps: f64, read_bw_bps: f64, write_latency_secs: f64, read_latency_secs: f64 },
}

impl StorageTier {
    /// (write bw B/s, read bw B/s, write latency s, read latency s)
    fn model(&self) -> (f64, f64, f64, f64) {
        match *self {
            StorageTier::LocalDisk => (1.2e9, 2.0e9, 0.002, 0.001),
            StorageTier::ObjectStore => (150.0e6, 300.0e6, 0.12, 0.08),
            StorageTier::Custom {
                write_bw_bps,
                read_bw_bps,
                write_latency_secs,
                read_latency_secs,
            } => (write_bw_bps, read_bw_bps, write_latency_secs, read_latency_secs),
        }
    }

    /// Seconds for a `bytes`-sized snapshot write to fully drain.
    pub fn write_secs(&self, bytes: u64) -> f64 {
        let (wbw, _, wlat, _) = self.model();
        wlat + bytes as f64 / wbw.max(1.0)
    }

    /// Seconds for a restore to read a `bytes`-sized snapshot back.
    pub fn read_secs(&self, bytes: u64) -> f64 {
        let (_, rbw, _, rlat) = self.model();
        rlat + bytes as f64 / rbw.max(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn local_disk_beats_object_store() {
        let (disk, obj) = (StorageTier::LocalDisk, StorageTier::ObjectStore);
        let bytes = 512 << 20;
        assert!(disk.write_secs(bytes) < obj.write_secs(bytes));
        assert!(disk.read_secs(bytes) < obj.read_secs(bytes));
    }

    #[test]
    fn latency_floors_small_writes() {
        let t = StorageTier::ObjectStore;
        assert!(t.write_secs(0) >= 0.12);
        assert!(t.read_secs(0) >= 0.08);
    }

    #[test]
    fn custom_tier_is_linear_in_bytes() {
        let t = StorageTier::Custom {
            write_bw_bps: 100.0,
            read_bw_bps: 50.0,
            write_latency_secs: 1.0,
            read_latency_secs: 2.0,
        };
        assert!((t.write_secs(200) - 3.0).abs() < 1e-12);
        assert!((t.read_secs(200) - 6.0).abs() < 1e-12);
    }
}
