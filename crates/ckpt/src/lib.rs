//! # antdt-ckpt — the checkpoint/state subsystem
//!
//! Makes checkpointing a real subsystem instead of a cost constant. Four
//! pieces, each deliberately free of simulator or runtime dependencies so the
//! crate stays a std-only leaf (enforced by `scripts/check-layering.sh`):
//!
//! * [`Snapshot`] — what a checkpoint *is*: parameter-server state, the DDS
//!   TODO/DOING/DONE shard queue, and per-worker progress watermarks, with a
//!   deterministic hand-rolled text serialization (the offline `serde_json`
//!   is a stub, so every on-disk format in this workspace is hand-rolled)
//!   and an FNV-1a content digest.
//! * [`StorageTier`] — where a checkpoint *goes*: bandwidth + latency cost
//!   model for local disk vs an object store (or anything custom).
//! * [`DrainQueue`] — *when* it becomes durable: snapshot writes drain
//!   asynchronously and overlap training; a snapshot only counts for
//!   recovery once its write has fully drained.
//! * [`CkptPolicy`] — *how often*: a fixed cadence, or an adaptive one that
//!   re-solves Young's approximation `T = sqrt(2·C·MTBF)` from the observed
//!   fault rate.
//!
//! The runtime side (capture, staged restore, replay through the
//! `SyncStrategy` drivers) lives in `antdt-core`'s `runtime/ckpt.rs`; this
//! crate is pure model + math so it can also back offline what-if analyses.

mod drain;
mod policy;
mod snapshot;
mod tier;

pub use drain::DrainQueue;
pub use policy::{CkptConfig, CkptPolicy};
pub use snapshot::{DdsSnapshot, PsState, Snapshot, SnapshotMeta, WorkerMark};
pub use tier::StorageTier;
