//! The checkpoint snapshot model and its deterministic wire format.
//!
//! A [`Snapshot`] captures everything a replacement pod needs to resume a
//! job: the parameter-server state (real model parameters when the job runs
//! in real-math mode, a sizing figure either way), the DDS shard queue with
//! per-slot TODO/DOING/DONE states, and per-worker progress watermarks.
//!
//! Serialization is a hand-rolled line-oriented text format — the offline
//! `serde_json` is a stub, and byte-determinism is a contract here: two
//! same-seed runs must export byte-identical snapshots, and the golden-trace
//! harness compares digests across runs. Floats are encoded as IEEE-754 bit
//! patterns in hex so the round-trip is lossless.

/// Identity and progress marks of the run that took the snapshot.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SnapshotMeta {
    /// Job seed — a restore into a different seed is almost certainly a bug.
    pub seed: u64,
    /// Virtual time (µs) at which the snapshot was captured.
    pub taken_at_us: u64,
    /// Global iteration counter at capture.
    pub iteration: u64,
    /// Samples committed at capture.
    pub samples_done: u64,
}

/// Parameter-server state. `params` is empty in simulated-math mode (there
/// are no real parameters to save); `model_bytes` carries the modeled
/// parameter footprint either way so the storage-tier cost is realistic.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct PsState {
    /// Real model parameters (real-math mode), bit-exact across a round-trip.
    pub params: Vec<f32>,
    /// Modeled size of the parameter block in bytes (drives I/O cost).
    pub model_bytes: u64,
}

/// The DDS shard queue frozen at capture: which slots were pending and the
/// state of every slot materialized so far. Slot indexing matches the DDS
/// (`slot = epoch * K + shard`); `state` uses 0=TODO, 1=DOING, 2=DONE.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct DdsSnapshot {
    /// Epochs whose shards had been enqueued at capture.
    pub epochs_enqueued: u32,
    /// Slots DONE at capture.
    pub done_total: u64,
    /// Pending queue (slot ids, front first).
    pub queue: Vec<u64>,
    /// Per-slot state byte for every slot materialized at capture.
    pub state: Vec<u8>,
}

/// Per-worker progress watermark at capture.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WorkerMark {
    /// Worker index.
    pub worker: u32,
    /// Incarnation (generation) at capture.
    pub gen: u32,
    /// Samples this worker had consumed at capture (DDS consumption stat).
    pub samples: u64,
}

/// A full checkpoint: meta + PS state + optional DDS queue + worker marks.
/// `dds` is `None` when the job runs even-partition data (nothing to rewind).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Snapshot {
    pub meta: SnapshotMeta,
    pub ps: PsState,
    pub dds: Option<DdsSnapshot>,
    pub workers: Vec<WorkerMark>,
}

impl Snapshot {
    /// Modeled on-storage footprint in bytes: the parameter block plus the
    /// queue/state tables and fixed per-record overheads. This is what the
    /// [`StorageTier`](crate::StorageTier) cost model charges for.
    pub fn size_bytes(&self) -> u64 {
        let mut b = 64; // header + meta
        b += self.ps.model_bytes.max(self.ps.params.len() as u64 * 4);
        if let Some(d) = &self.dds {
            b += 16 + d.queue.len() as u64 * 8 + d.state.len() as u64;
        }
        b += self.workers.len() as u64 * 16;
        b
    }

    /// Deterministic line-oriented serialization. Every list line carries its
    /// element count up front so the parser can validate without lookahead.
    pub fn serialize(&self) -> String {
        let mut out = String::with_capacity(256 + self.ps.params.len() * 9);
        out.push_str("antdt-ckpt v1\n");
        let m = &self.meta;
        out.push_str(&format!(
            "meta {} {} {} {}\n",
            m.seed, m.taken_at_us, m.iteration, m.samples_done
        ));
        out.push_str(&format!("ps {} {}", self.ps.model_bytes, self.ps.params.len()));
        for p in &self.ps.params {
            out.push_str(&format!(" {:08x}", p.to_bits()));
        }
        out.push('\n');
        match &self.dds {
            None => out.push_str("dds none\n"),
            Some(d) => {
                out.push_str(&format!(
                    "dds {} {} {} {}\n",
                    d.epochs_enqueued,
                    d.done_total,
                    d.queue.len(),
                    d.state.len()
                ));
                out.push_str("queue");
                for q in &d.queue {
                    out.push_str(&format!(" {q}"));
                }
                out.push('\n');
                out.push_str("state");
                for s in &d.state {
                    out.push_str(&format!(" {s}"));
                }
                out.push('\n');
            }
        }
        out.push_str(&format!("workers {}\n", self.workers.len()));
        for w in &self.workers {
            out.push_str(&format!("w {} {} {}\n", w.worker, w.gen, w.samples));
        }
        out.push_str("end\n");
        out
    }

    /// Parse a serialized snapshot. Errors are strings (no error-type dep in
    /// a leaf crate) and name the offending line.
    pub fn deserialize(text: &str) -> Result<Snapshot, String> {
        let mut lines = text.lines();
        let header = lines.next().ok_or("empty snapshot")?;
        if header != "antdt-ckpt v1" {
            return Err(format!("bad header: {header:?}"));
        }

        let meta_line = lines.next().ok_or("missing meta line")?;
        let mv = tagged_ints(meta_line, "meta", 4)?;
        let meta =
            SnapshotMeta { seed: mv[0], taken_at_us: mv[1], iteration: mv[2], samples_done: mv[3] };

        let ps_line = lines.next().ok_or("missing ps line")?;
        let mut it = ps_line.split_whitespace();
        expect_tag(&mut it, "ps", ps_line)?;
        let model_bytes = next_u64(&mut it, ps_line)?;
        let n_params = next_u64(&mut it, ps_line)? as usize;
        let mut params = Vec::with_capacity(n_params);
        for _ in 0..n_params {
            let hex = it.next().ok_or_else(|| format!("short params line: {ps_line:?}"))?;
            let bits =
                u32::from_str_radix(hex, 16).map_err(|e| format!("bad param hex {hex:?}: {e}"))?;
            params.push(f32::from_bits(bits));
        }
        if it.next().is_some() {
            return Err(format!("trailing tokens on ps line: {ps_line:?}"));
        }

        let dds_line = lines.next().ok_or("missing dds line")?;
        let dds = if dds_line == "dds none" {
            None
        } else {
            let dv = tagged_ints(dds_line, "dds", 4)?;
            let queue = tagged_list(lines.next().ok_or("missing queue line")?, "queue", dv[2])?;
            let state_raw = tagged_list(lines.next().ok_or("missing state line")?, "state", dv[3])?;
            let state = state_raw
                .into_iter()
                .map(|s| u8::try_from(s).map_err(|_| format!("state byte out of range: {s}")))
                .collect::<Result<Vec<u8>, String>>()?;
            Some(DdsSnapshot { epochs_enqueued: dv[0] as u32, done_total: dv[1], queue, state })
        };

        let wl = lines.next().ok_or("missing workers line")?;
        let n_workers = tagged_ints(wl, "workers", 1)?[0];
        let mut workers = Vec::with_capacity(n_workers as usize);
        for _ in 0..n_workers {
            let line = lines.next().ok_or("missing worker mark line")?;
            let wv = tagged_ints(line, "w", 3)?;
            workers.push(WorkerMark { worker: wv[0] as u32, gen: wv[1] as u32, samples: wv[2] });
        }

        match lines.next() {
            Some("end") => {}
            other => return Err(format!("missing end marker, got {other:?}")),
        }
        if lines.next().is_some() {
            return Err("trailing content after end marker".into());
        }
        Ok(Snapshot { meta, ps: PsState { params, model_bytes }, dds, workers })
    }

    /// FNV-1a 64-bit digest of the serialized form — cheap, deterministic,
    /// and stable across platforms; used to assert same-seed runs export
    /// byte-identical snapshots without shipping the bytes around.
    pub fn digest(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in self.serialize().as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }
}

fn expect_tag<'a>(
    it: &mut impl Iterator<Item = &'a str>,
    tag: &str,
    line: &str,
) -> Result<(), String> {
    match it.next() {
        Some(t) if t == tag => Ok(()),
        _ => Err(format!("expected {tag:?} line, got {line:?}")),
    }
}

fn next_u64<'a>(it: &mut impl Iterator<Item = &'a str>, line: &str) -> Result<u64, String> {
    it.next()
        .ok_or_else(|| format!("short line: {line:?}"))?
        .parse()
        .map_err(|e| format!("bad integer on {line:?}: {e}"))
}

/// Parse `tag v1 v2 ... vN` with exactly `n` integer fields.
fn tagged_ints(line: &str, tag: &str, n: usize) -> Result<Vec<u64>, String> {
    let mut it = line.split_whitespace();
    expect_tag(&mut it, tag, line)?;
    let mut vals = Vec::with_capacity(n);
    for _ in 0..n {
        vals.push(next_u64(&mut it, line)?);
    }
    if it.next().is_some() {
        return Err(format!("trailing tokens on {tag:?} line: {line:?}"));
    }
    Ok(vals)
}

/// Parse `tag v1 ... vN` where N was announced on a prior line.
fn tagged_list(line: &str, tag: &str, n: u64) -> Result<Vec<u64>, String> {
    let mut it = line.split_whitespace();
    expect_tag(&mut it, tag, line)?;
    let mut vals = Vec::with_capacity(n as usize);
    for _ in 0..n {
        vals.push(next_u64(&mut it, line)?);
    }
    if it.next().is_some() {
        return Err(format!("trailing tokens on {tag:?} line: {line:?}"));
    }
    Ok(vals)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn sample() -> Snapshot {
        Snapshot {
            meta: SnapshotMeta {
                seed: 11,
                taken_at_us: 600_000_000,
                iteration: 42,
                samples_done: 172_032,
            },
            ps: PsState {
                params: vec![0.5, -1.25, 3.0e-7, f32::MIN_POSITIVE],
                model_bytes: 1 << 20,
            },
            dds: Some(DdsSnapshot {
                epochs_enqueued: 2,
                done_total: 3,
                queue: vec![5, 6, 9],
                state: vec![2, 2, 2, 1, 0, 0, 1, 0, 0, 0],
            }),
            workers: vec![
                WorkerMark { worker: 0, gen: 0, samples: 90_112 },
                WorkerMark { worker: 1, gen: 1, samples: 81_920 },
            ],
        }
    }

    #[test]
    fn round_trip_identity() {
        let s = sample();
        let text = s.serialize();
        let back = Snapshot::deserialize(&text).unwrap();
        assert_eq!(s, back);
        assert_eq!(text, back.serialize());
    }

    #[test]
    fn round_trip_without_dds() {
        let mut s = sample();
        s.dds = None;
        s.ps.params.clear();
        let back = Snapshot::deserialize(&s.serialize()).unwrap();
        assert_eq!(s, back);
    }

    #[test]
    fn serialization_is_deterministic_and_digest_stable() {
        let s = sample();
        assert_eq!(s.serialize(), s.serialize());
        assert_eq!(s.digest(), s.digest());
        let mut other = sample();
        other.meta.samples_done += 1;
        assert_ne!(s.digest(), other.digest());
    }

    #[test]
    fn size_accounts_for_params_and_queue() {
        let s = sample();
        let base = s.size_bytes();
        let mut bigger = sample();
        bigger.dds.as_mut().unwrap().queue.push(17);
        assert_eq!(bigger.size_bytes(), base + 8);
    }

    #[test]
    fn corrupt_inputs_are_rejected() {
        assert!(Snapshot::deserialize("").is_err());
        assert!(Snapshot::deserialize("antdt-ckpt v2\n").is_err());
        let good = sample().serialize();
        let truncated = &good[..good.len() - 5];
        assert!(Snapshot::deserialize(truncated).is_err());
        let tampered = good.replace("state 2", "state 9999");
        assert!(Snapshot::deserialize(&tampered).is_err());
    }

    prop_compose! {
        fn arb_snapshot()(
            seed in any::<u64>(),
            at in any::<u64>(),
            iter in any::<u64>(),
            done in any::<u64>(),
            params in prop::collection::vec(any::<f32>(), 0..64),
            model_bytes in any::<u64>(),
            dds in prop::option::of((
                any::<u32>(),
                any::<u64>(),
                prop::collection::vec(any::<u64>(), 0..32),
                prop::collection::vec(0u8..3, 0..64),
            )),
            workers in prop::collection::vec((any::<u32>(), any::<u32>(), any::<u64>()), 0..8),
        ) -> Snapshot {
            Snapshot {
                meta: SnapshotMeta { seed, taken_at_us: at, iteration: iter, samples_done: done },
                ps: PsState { params, model_bytes },
                dds: dds.map(|(e, d, queue, state)| DdsSnapshot {
                    epochs_enqueued: e,
                    done_total: d,
                    queue,
                    state,
                }),
                workers: workers
                    .into_iter()
                    .map(|(worker, gen, samples)| WorkerMark { worker, gen, samples })
                    .collect(),
            }
        }
    }

    proptest! {
        /// The satellite guarantee: serialize -> deserialize is identity for
        /// arbitrary snapshots, including NaN parameter bit patterns (the
        /// hex encoding is bit-exact, and `PartialEq` on `f32` would lie for
        /// NaN, so compare re-serialized bytes instead).
        #[test]
        fn prop_round_trip_identity(s in arb_snapshot()) {
            let text = s.serialize();
            let back = Snapshot::deserialize(&text).unwrap();
            prop_assert_eq!(text, back.serialize());
        }
    }
}
