//! Gradient accumulation (paper §VI-B, citing Deep Gradient Compression): the
//! per-device batch is split into `C` sequential micro-batches whose gradients
//! are summed locally before one synchronization. With mean-normalized
//! micro-batch gradients, averaging the `C` accumulated gradients reproduces the
//! gradient of the full batch (up to float association) — that is the invariant
//! AntDT-DD relies on when it trades batch size against accumulation count.

use serde::{Deserialize, Serialize};

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GradAccumulator {
    buf: Vec<f32>,
    micro_batches: u32,
    samples: u64,
}

impl GradAccumulator {
    pub fn new(n_params: usize) -> Self {
        GradAccumulator { buf: vec![0.0; n_params], micro_batches: 0, samples: 0 }
    }

    pub fn n_params(&self) -> usize {
        self.buf.len()
    }

    pub fn micro_batches(&self) -> u32 {
        self.micro_batches
    }

    pub fn samples(&self) -> u64 {
        self.samples
    }

    /// A zeroed scratch gradient to pass to `Model::grad_batch`.
    pub fn scratch(&self) -> Vec<f32> {
        vec![0.0; self.buf.len()]
    }

    /// Add one micro-batch's *mean* gradient, weighted by its sample count so
    /// that unevenly sized micro-batches still average correctly.
    pub fn add(&mut self, mean_grad: &[f32], batch_samples: u64) {
        debug_assert_eq!(mean_grad.len(), self.buf.len());
        let w = batch_samples as f32;
        for (b, g) in self.buf.iter_mut().zip(mean_grad) {
            *b += g * w;
        }
        self.micro_batches += 1;
        self.samples += batch_samples;
    }

    /// Drain into the sample-weighted mean gradient over everything added since
    /// the last take. Resets the accumulator.
    pub fn take_mean(&mut self) -> Vec<f32> {
        let n = self.samples.max(1) as f32;
        let out: Vec<f32> = self.buf.iter().map(|b| b / n).collect();
        self.buf.iter_mut().for_each(|b| *b = 0.0);
        self.micro_batches = 0;
        self.samples = 0;
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::{Dataset, SparseExample};
    use crate::model::{LogisticRegression, Model};

    #[test]
    fn accumulated_mean_equals_full_batch_gradient() {
        let mut d = Dataset::new(4);
        for i in 0..32u32 {
            d.push(SparseExample {
                feats: vec![(i % 4, 1.0 + (i % 3) as f32)],
                label: (i % 2) as f32,
            });
        }
        let mut m = LogisticRegression::new(4);
        m.params_mut().copy_from_slice(&[0.3, -0.1, 0.2, 0.05, 0.0]);

        let idx: Vec<u64> = (0..32).collect();
        let mut full = vec![0.0f32; m.n_params()];
        m.grad_batch(&d, &idx, &mut full);

        // Accumulate in 4 uneven micro-batches: 10 + 10 + 10 + 2.
        let mut acc = GradAccumulator::new(m.n_params());
        for chunk in [&idx[0..10], &idx[10..20], &idx[20..30], &idx[30..32]] {
            let mut g = acc.scratch();
            m.grad_batch(&d, chunk, &mut g);
            acc.add(&g, chunk.len() as u64);
        }
        assert_eq!(acc.micro_batches(), 4);
        let mean = acc.take_mean();
        for (a, b) in mean.iter().zip(&full) {
            assert!((a - b).abs() < 1e-6, "{a} vs {b}");
        }
        // Accumulator reset.
        assert_eq!(acc.micro_batches(), 0);
        assert_eq!(acc.samples(), 0);
        assert!(acc.take_mean().iter().all(|&g| g == 0.0));
    }

    #[test]
    fn take_mean_on_empty_is_zero() {
        let mut acc = GradAccumulator::new(3);
        assert_eq!(acc.take_mean(), vec![0.0, 0.0, 0.0]);
    }
}
