//! Sparse classification data. Criteo-style CTR rows are one-hot categorical
//! fields plus a few dense features — represented here as `(feature_index,
//! value)` pairs with a binary label.

use serde::{Deserialize, Serialize};

/// One labelled example with sparse features.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SparseExample {
    /// `(feature index, value)` pairs; indices must be `< n_features`.
    pub feats: Vec<(u32, f32)>,
    /// Binary label in {0.0, 1.0}.
    pub label: f32,
}

/// An in-memory dataset.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Dataset {
    pub examples: Vec<SparseExample>,
    pub n_features: u32,
}

impl Dataset {
    pub fn new(n_features: u32) -> Self {
        Dataset { examples: Vec::new(), n_features }
    }

    pub fn len(&self) -> usize {
        self.examples.len()
    }

    pub fn is_empty(&self) -> bool {
        self.examples.is_empty()
    }

    pub fn push(&mut self, ex: SparseExample) {
        debug_assert!(ex.feats.iter().all(|&(i, _)| i < self.n_features));
        self.examples.push(ex);
    }

    #[inline]
    pub fn get(&self, i: u64) -> &SparseExample {
        &self.examples[i as usize]
    }

    /// Fraction of positive labels.
    pub fn positive_rate(&self) -> f64 {
        if self.examples.is_empty() {
            return 0.0;
        }
        self.examples.iter().filter(|e| e.label > 0.5).count() as f64 / self.examples.len() as f64
    }

    /// Split off the last `frac` of examples as a held-out set.
    pub fn split_holdout(mut self, frac: f64) -> (Dataset, Dataset) {
        let n = self.examples.len();
        let cut = ((n as f64) * (1.0 - frac)).round() as usize;
        let test = self.examples.split_off(cut.min(n));
        let held = Dataset { examples: test, n_features: self.n_features };
        (self, held)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ex(label: f32) -> SparseExample {
        SparseExample { feats: vec![(0, 1.0)], label }
    }

    #[test]
    fn positive_rate_counts_labels() {
        let mut d = Dataset::new(4);
        d.push(ex(1.0));
        d.push(ex(0.0));
        d.push(ex(0.0));
        d.push(ex(1.0));
        assert!((d.positive_rate() - 0.5).abs() < 1e-12);
        assert_eq!(Dataset::new(1).positive_rate(), 0.0);
    }

    #[test]
    fn split_holdout_partitions() {
        let mut d = Dataset::new(4);
        for i in 0..10 {
            d.push(ex((i % 2) as f32));
        }
        let (train, test) = d.split_holdout(0.3);
        assert_eq!(train.len(), 7);
        assert_eq!(test.len(), 3);
        assert_eq!(train.n_features, 4);
        assert_eq!(test.n_features, 4);
    }
}
