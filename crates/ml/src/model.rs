//! Models over sparse inputs: logistic regression and a second-order
//! factorization machine (the stand-in for XDeepFM on CTR data — same family of
//! explicit feature-interaction models, trained with log loss).
//!
//! Parameters live in one flat `Vec<f32>` so the parameter-server sharding
//! (`sharding::PartitionPlan`) can range-partition them without knowing the
//! model structure, exactly as a real PS does with a flat key space.

use crate::data::{Dataset, SparseExample};
use serde::{Deserialize, Serialize};

#[inline]
fn sigmoid(z: f32) -> f32 {
    if z >= 0.0 {
        1.0 / (1.0 + (-z).exp())
    } else {
        let e = z.exp();
        e / (1.0 + e)
    }
}

/// A differentiable binary classifier with a flat parameter vector.
pub trait Model {
    /// Total number of parameters.
    fn n_params(&self) -> usize;
    fn params(&self) -> &[f32];
    fn params_mut(&mut self) -> &mut [f32];

    /// Predicted probability of the positive class.
    fn predict(&self, x: &SparseExample) -> f32;

    /// Accumulate the *mean* log-loss gradient of `idx` (indices into `data`)
    /// into `grad` (same layout as `params`; caller zeroes). Returns the mean
    /// log loss over the batch.
    fn grad_batch(&self, data: &Dataset, idx: &[u64], grad: &mut [f32]) -> f64;

    /// Mean log loss over `idx` without touching gradients.
    fn loss_batch(&self, data: &Dataset, idx: &[u64]) -> f64 {
        let mut total = 0.0f64;
        for &i in idx {
            let ex = data.get(i);
            let p = self.predict(ex).clamp(1e-7, 1.0 - 1e-7) as f64;
            total -= if ex.label > 0.5 { p.ln() } else { (1.0 - p).ln() };
        }
        if idx.is_empty() {
            0.0
        } else {
            total / idx.len() as f64
        }
    }

    /// Scores for a whole dataset (for AUC evaluation).
    fn scores(&self, data: &Dataset) -> Vec<f32> {
        data.examples.iter().map(|e| self.predict(e)).collect()
    }
}

/// Plain logistic regression: params = `[w₀ … w_{n-1}, b]`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LogisticRegression {
    pub n_features: u32,
    params: Vec<f32>,
}

impl LogisticRegression {
    pub fn new(n_features: u32) -> Self {
        LogisticRegression { n_features, params: vec![0.0; n_features as usize + 1] }
    }

    #[inline]
    fn raw(&self, x: &SparseExample) -> f32 {
        let b = self.params[self.n_features as usize];
        let mut z = b;
        for &(i, v) in &x.feats {
            z += self.params[i as usize] * v;
        }
        z
    }
}

impl Model for LogisticRegression {
    fn n_params(&self) -> usize {
        self.params.len()
    }
    fn params(&self) -> &[f32] {
        &self.params
    }
    fn params_mut(&mut self) -> &mut [f32] {
        &mut self.params
    }

    fn predict(&self, x: &SparseExample) -> f32 {
        sigmoid(self.raw(x))
    }

    fn grad_batch(&self, data: &Dataset, idx: &[u64], grad: &mut [f32]) -> f64 {
        debug_assert_eq!(grad.len(), self.params.len());
        if idx.is_empty() {
            return 0.0;
        }
        let scale = 1.0 / idx.len() as f32;
        let mut loss = 0.0f64;
        let bias_at = self.n_features as usize;
        for &i in idx {
            let ex = data.get(i);
            let p = sigmoid(self.raw(ex));
            let err = (p - ex.label) * scale;
            for &(j, v) in &ex.feats {
                grad[j as usize] += err * v;
            }
            grad[bias_at] += err;
            let pc = (p.clamp(1e-7, 1.0 - 1e-7)) as f64;
            loss -= if ex.label > 0.5 { pc.ln() } else { (1.0 - pc).ln() };
        }
        loss / idx.len() as f64
    }
}

/// Second-order factorization machine:
/// `score = w₀ + Σᵢ wᵢxᵢ + ½ Σ_f [(Σᵢ v_{if} xᵢ)² − Σᵢ v_{if}² xᵢ²]`.
///
/// Params layout: `[w (n), v (n×k) row-major, w₀]`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FactorizationMachine {
    pub n_features: u32,
    pub k: usize,
    params: Vec<f32>,
}

impl FactorizationMachine {
    /// `init_scale` seeds the latent factors with small deterministic values
    /// (a fixed pseudo-random pattern so runs are reproducible without an RNG
    /// dependency here; pass 0.0 for an all-zeros FM ≡ logistic regression).
    pub fn new(n_features: u32, k: usize, init_scale: f32) -> Self {
        let n = n_features as usize;
        let mut params = vec![0.0f32; n + n * k + 1];
        if init_scale != 0.0 {
            // Deterministic low-discrepancy init for the latent block.
            let mut state: u64 = 0x243F_6A88_85A3_08D3;
            for p in params[n..n + n * k].iter_mut() {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                let u = ((state >> 11) as f64 / (1u64 << 53) as f64) as f32;
                *p = (u - 0.5) * 2.0 * init_scale;
            }
        }
        FactorizationMachine { n_features, k, params }
    }

    #[inline]
    fn w(&self) -> &[f32] {
        &self.params[..self.n_features as usize]
    }
    #[inline]
    fn v(&self, i: u32, f: usize) -> f32 {
        let n = self.n_features as usize;
        self.params[n + i as usize * self.k + f]
    }
    #[inline]
    fn w0(&self) -> f32 {
        self.params[self.params.len() - 1]
    }

    /// Raw score and the per-factor sums `s_f = Σᵢ v_{if} xᵢ` (needed by grads).
    fn raw_with_sums(&self, x: &SparseExample, sums: &mut [f32]) -> f32 {
        let mut z = self.w0();
        for &(i, v) in &x.feats {
            z += self.w()[i as usize] * v;
        }
        for s in sums.iter_mut() {
            *s = 0.0;
        }
        let mut sq = 0.0f32;
        for &(i, xv) in &x.feats {
            for (f, s) in sums.iter_mut().enumerate() {
                let vif = self.v(i, f);
                *s += vif * xv;
                sq += vif * vif * xv * xv;
            }
        }
        let s2: f32 = sums.iter().map(|s| s * s).sum();
        z + 0.5 * (s2 - sq)
    }
}

impl Model for FactorizationMachine {
    fn n_params(&self) -> usize {
        self.params.len()
    }
    fn params(&self) -> &[f32] {
        &self.params
    }
    fn params_mut(&mut self) -> &mut [f32] {
        &mut self.params
    }

    fn predict(&self, x: &SparseExample) -> f32 {
        let mut sums = vec![0.0f32; self.k];
        sigmoid(self.raw_with_sums(x, &mut sums))
    }

    fn grad_batch(&self, data: &Dataset, idx: &[u64], grad: &mut [f32]) -> f64 {
        debug_assert_eq!(grad.len(), self.params.len());
        if idx.is_empty() {
            return 0.0;
        }
        let n = self.n_features as usize;
        let scale = 1.0 / idx.len() as f32;
        let bias_at = self.params.len() - 1;
        let mut sums = vec![0.0f32; self.k];
        let mut loss = 0.0f64;
        for &i in idx {
            let ex = data.get(i);
            let p = sigmoid(self.raw_with_sums(ex, &mut sums));
            let err = (p - ex.label) * scale;
            grad[bias_at] += err;
            for &(j, xv) in &ex.feats {
                grad[j as usize] += err * xv;
                for f in 0..self.k {
                    let vif = self.v(j, f);
                    // d score / d v_{jf} = x_j * (s_f - v_{jf} x_j)
                    grad[n + j as usize * self.k + f] += err * xv * (sums[f] - vif * xv);
                }
            }
            let pc = (p.clamp(1e-7, 1.0 - 1e-7)) as f64;
            loss -= if ex.label > 0.5 { pc.ln() } else { (1.0 - pc).ln() };
        }
        loss / idx.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_dataset() -> Dataset {
        // Linearly separable: feature 0 on => positive, feature 1 on => negative.
        let mut d = Dataset::new(2);
        for _ in 0..50 {
            d.push(SparseExample { feats: vec![(0, 1.0)], label: 1.0 });
            d.push(SparseExample { feats: vec![(1, 1.0)], label: 0.0 });
        }
        d
    }

    #[test]
    fn sigmoid_is_stable_and_symmetric() {
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-7);
        assert!(sigmoid(40.0) > 0.999_999);
        assert!(sigmoid(-40.0) < 1e-6);
        assert!((sigmoid(2.0) + sigmoid(-2.0) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn lr_learns_separable_data() {
        let d = toy_dataset();
        let mut m = LogisticRegression::new(2);
        let idx: Vec<u64> = (0..d.len() as u64).collect();
        let mut grad = vec![0.0f32; m.n_params()];
        let first_loss = m.loss_batch(&d, &idx);
        for _ in 0..200 {
            grad.iter_mut().for_each(|g| *g = 0.0);
            m.grad_batch(&d, &idx, &mut grad);
            for (p, g) in m.params_mut().iter_mut().zip(&grad) {
                *p -= 1.0 * g;
            }
        }
        let final_loss = m.loss_batch(&d, &idx);
        assert!(final_loss < first_loss * 0.2, "{first_loss} -> {final_loss}");
        assert!(m.predict(&d.examples[0]) > 0.9);
        assert!(m.predict(&d.examples[1]) < 0.1);
    }

    #[test]
    fn lr_gradient_matches_finite_difference() {
        let mut d = Dataset::new(3);
        d.push(SparseExample { feats: vec![(0, 0.5), (2, -1.5)], label: 1.0 });
        d.push(SparseExample { feats: vec![(1, 2.0)], label: 0.0 });
        let mut m = LogisticRegression::new(3);
        m.params_mut().copy_from_slice(&[0.1, -0.2, 0.3, 0.05]);
        check_grad(&mut m, &d);
    }

    #[test]
    fn fm_gradient_matches_finite_difference() {
        let mut d = Dataset::new(3);
        d.push(SparseExample { feats: vec![(0, 1.0), (1, 1.0)], label: 1.0 });
        d.push(SparseExample { feats: vec![(1, 1.0), (2, 1.0)], label: 0.0 });
        d.push(SparseExample { feats: vec![(0, 0.5), (2, 2.0)], label: 1.0 });
        let mut m = FactorizationMachine::new(3, 2, 0.1);
        check_grad(&mut m, &d);
    }

    fn check_grad<M: Model>(m: &mut M, d: &Dataset) {
        let idx: Vec<u64> = (0..d.len() as u64).collect();
        let mut grad = vec![0.0f32; m.n_params()];
        m.grad_batch(d, &idx, &mut grad);
        let eps = 1e-3f32;
        #[allow(clippy::needless_range_loop)]
        for p in 0..m.n_params() {
            let orig = m.params()[p];
            m.params_mut()[p] = orig + eps;
            let lp = m.loss_batch(d, &idx);
            m.params_mut()[p] = orig - eps;
            let lm = m.loss_batch(d, &idx);
            m.params_mut()[p] = orig;
            let fd = ((lp - lm) / (2.0 * eps as f64)) as f32;
            assert!(
                (fd - grad[p]).abs() < 2e-2 * (1.0 + fd.abs()),
                "param {p}: fd {fd} vs analytic {}",
                grad[p]
            );
        }
    }

    #[test]
    fn fm_captures_interactions_lr_cannot() {
        // XOR-like data: individual features carry no signal, the pair does.
        let mut d = Dataset::new(4);
        for _ in 0..50 {
            // (A=0, B=2) => positive; (A=1, B=3) => positive
            d.push(SparseExample { feats: vec![(0, 1.0), (2, 1.0)], label: 1.0 });
            d.push(SparseExample { feats: vec![(1, 1.0), (3, 1.0)], label: 1.0 });
            // cross pairs => negative
            d.push(SparseExample { feats: vec![(0, 1.0), (3, 1.0)], label: 0.0 });
            d.push(SparseExample { feats: vec![(1, 1.0), (2, 1.0)], label: 0.0 });
        }
        let idx: Vec<u64> = (0..d.len() as u64).collect();
        let mut fm = FactorizationMachine::new(4, 4, 0.1);
        let mut grad = vec![0.0f32; fm.n_params()];
        for _ in 0..800 {
            grad.iter_mut().for_each(|g| *g = 0.0);
            fm.grad_batch(&d, &idx, &mut grad);
            for (p, g) in fm.params_mut().iter_mut().zip(&grad) {
                *p -= 0.5 * g;
            }
        }
        let loss = fm.loss_batch(&d, &idx);
        assert!(loss < 0.3, "FM should fit XOR-like data, loss {loss}");
    }

    #[test]
    fn empty_batch_is_a_noop() {
        let d = toy_dataset();
        let m = LogisticRegression::new(2);
        let mut grad = vec![0.0f32; m.n_params()];
        assert_eq!(m.grad_batch(&d, &[], &mut grad), 0.0);
        assert!(grad.iter().all(|&g| g == 0.0));
        assert_eq!(m.loss_batch(&d, &[]), 0.0);
    }

    #[test]
    fn fm_zero_init_equals_logistic_regression() {
        let d = toy_dataset();
        let idx: Vec<u64> = (0..4).collect();
        let fm = FactorizationMachine::new(2, 3, 0.0);
        let lr = LogisticRegression::new(2);
        for i in &idx {
            let a = fm.predict(d.get(*i));
            let b = lr.predict(d.get(*i));
            assert!((a - b).abs() < 1e-7);
        }
    }
}
