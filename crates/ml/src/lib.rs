//! # antdt-ml — minimal ML substrate
//!
//! The AntDT paper's statistical-integrity claims (§VII-D2: AUC unaffected by
//! failovers; gradient accumulation preserving the global batch) need *real*
//! gradient math, not just a timing model. This crate provides exactly enough ML
//! to make those experiments honest:
//!
//! * sparse classification examples and datasets ([`data`]),
//! * logistic-regression and factorization-machine models — the FM standing in
//!   for the XDeepFM CTR model trained on Criteo in the paper ([`model`]),
//! * SGD and momentum optimizers plus gradient accumulation ([`optim`],
//!   [`accum`]),
//! * exact AUC / log-loss metrics ([`metrics`]),
//! * even range-partitioning of the parameter vector across parameter servers
//!   ([`sharding`]) — the paper's footnote 1 assumption.
//!
//! Simulated time and real math are decoupled: the training runtimes in
//! `antdt-core` can run with real gradients (integrity experiments) or with
//! cost-model-only "ghost" math (large timing sweeps).

pub mod accum;
pub mod data;
pub mod metrics;
pub mod model;
pub mod optim;
pub mod sharding;

pub use accum::GradAccumulator;
pub use data::{Dataset, SparseExample};
pub use metrics::{auc, log_loss};
pub use model::{FactorizationMachine, LogisticRegression, Model};
pub use optim::{AdaGrad, Momentum, Optimizer, Sgd};
pub use sharding::PartitionPlan;
