//! Evaluation metrics. The paper reports AUC (area under the ROC curve) for the
//! statistical-integrity experiment; we implement the exact rank-statistic form
//! with proper tie handling and verify it against the O(n²) pair-counting
//! definition in tests.

/// Exact AUC via the Mann–Whitney U statistic with average ranks for ties.
/// Returns `None` when either class is absent.
pub fn auc(scores: &[f32], labels: &[f32]) -> Option<f64> {
    assert_eq!(scores.len(), labels.len());
    let n_pos = labels.iter().filter(|&&l| l > 0.5).count();
    let n_neg = labels.len() - n_pos;
    if n_pos == 0 || n_neg == 0 {
        return None;
    }
    let mut order: Vec<usize> = (0..scores.len()).collect();
    order.sort_by(|&a, &b| scores[a].partial_cmp(&scores[b]).expect("NaN score"));

    // Sum of positive ranks, averaging ranks within tie groups.
    let mut rank_sum_pos = 0.0f64;
    let mut i = 0usize;
    while i < order.len() {
        let mut j = i;
        while j + 1 < order.len() && scores[order[j + 1]] == scores[order[i]] {
            j += 1;
        }
        // 1-based ranks i+1 ..= j+1 share the average rank.
        let avg_rank = (i + 1 + j + 1) as f64 / 2.0;
        for &k in &order[i..=j] {
            if labels[k] > 0.5 {
                rank_sum_pos += avg_rank;
            }
        }
        i = j + 1;
    }
    let u = rank_sum_pos - (n_pos as f64 * (n_pos as f64 + 1.0)) / 2.0;
    Some(u / (n_pos as f64 * n_neg as f64))
}

/// Mean binary log loss with probability clamping.
pub fn log_loss(scores: &[f32], labels: &[f32]) -> f64 {
    assert_eq!(scores.len(), labels.len());
    if scores.is_empty() {
        return 0.0;
    }
    let mut total = 0.0f64;
    for (&p, &y) in scores.iter().zip(labels) {
        let p = (p as f64).clamp(1e-7, 1.0 - 1e-7);
        total -= if y > 0.5 { p.ln() } else { (1.0 - p).ln() };
    }
    total / scores.len() as f64
}

/// Classification accuracy at threshold 0.5.
pub fn accuracy(scores: &[f32], labels: &[f32]) -> f64 {
    assert_eq!(scores.len(), labels.len());
    if scores.is_empty() {
        return 0.0;
    }
    let hits = scores.iter().zip(labels).filter(|&(&p, &y)| (p >= 0.5) == (y > 0.5)).count();
    hits as f64 / scores.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    /// O(n²) reference: P(score⁺ > score⁻) + ½ P(tie).
    fn auc_naive(scores: &[f32], labels: &[f32]) -> Option<f64> {
        let pos: Vec<f32> =
            scores.iter().zip(labels).filter(|&(_, &l)| l > 0.5).map(|(&s, _)| s).collect();
        let neg: Vec<f32> =
            scores.iter().zip(labels).filter(|&(_, &l)| l <= 0.5).map(|(&s, _)| s).collect();
        if pos.is_empty() || neg.is_empty() {
            return None;
        }
        let mut wins = 0.0f64;
        for &p in &pos {
            for &n in &neg {
                if p > n {
                    wins += 1.0;
                } else if p == n {
                    wins += 0.5;
                }
            }
        }
        Some(wins / (pos.len() * neg.len()) as f64)
    }

    #[test]
    fn perfect_and_inverted_rankings() {
        let scores = [0.1, 0.2, 0.8, 0.9];
        let labels = [0.0, 0.0, 1.0, 1.0];
        assert_eq!(auc(&scores, &labels), Some(1.0));
        let inv = [0.0f32, 0.0, 1.0, 1.0];
        let inv_scores = [0.9f32, 0.8, 0.2, 0.1];
        assert_eq!(auc(&inv_scores, &inv), Some(0.0));
    }

    #[test]
    fn random_scores_give_half() {
        // All scores identical => AUC must be exactly 0.5 via tie handling.
        let scores = vec![0.5f32; 100];
        let labels: Vec<f32> = (0..100).map(|i| (i % 2) as f32).collect();
        assert_eq!(auc(&scores, &labels), Some(0.5));
    }

    #[test]
    fn single_class_is_none() {
        assert_eq!(auc(&[0.4, 0.6], &[1.0, 1.0]), None);
        assert_eq!(auc(&[0.4, 0.6], &[0.0, 0.0]), None);
    }

    #[test]
    fn matches_naive_on_ties_and_mixtures() {
        let scores = [0.3f32, 0.3, 0.7, 0.7, 0.5, 0.1, 0.9, 0.5];
        let labels = [0.0f32, 1.0, 1.0, 0.0, 1.0, 0.0, 1.0, 0.0];
        let fast = auc(&scores, &labels).unwrap();
        let slow = auc_naive(&scores, &labels).unwrap();
        assert!((fast - slow).abs() < 1e-12, "{fast} vs {slow}");
    }

    #[test]
    fn log_loss_and_accuracy_basics() {
        let perfect = log_loss(&[1e-9, 1.0 - 1e-9], &[0.0, 1.0]);
        assert!(perfect < 1e-5);
        let awful = log_loss(&[1.0, 0.0], &[0.0, 1.0]);
        assert!(awful > 10.0);
        assert_eq!(accuracy(&[0.9, 0.1, 0.6], &[1.0, 0.0, 0.0]), 2.0 / 3.0);
        assert_eq!(log_loss(&[], &[]), 0.0);
        assert_eq!(accuracy(&[], &[]), 0.0);
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn fast_auc_matches_naive(
            pairs in proptest::collection::vec((0u8..=10, proptest::bool::ANY), 2..120)
        ) {
            let scores: Vec<f32> = pairs.iter().map(|&(s, _)| s as f32 / 10.0).collect();
            let labels: Vec<f32> = pairs.iter().map(|&(_, l)| if l { 1.0 } else { 0.0 }).collect();
            let fast = auc(&scores, &labels);
            let slow = {
                let pos: Vec<f32> = scores.iter().zip(&labels).filter(|&(_, &l)| l > 0.5).map(|(&s, _)| s).collect();
                let neg: Vec<f32> = scores.iter().zip(&labels).filter(|&(_, &l)| l <= 0.5).map(|(&s, _)| s).collect();
                if pos.is_empty() || neg.is_empty() { None } else {
                    let mut wins = 0.0f64;
                    for &p in &pos { for &n in &neg {
                        if p > n { wins += 1.0 } else if p == n { wins += 0.5 }
                    }}
                    Some(wins / (pos.len() * neg.len()) as f64)
                }
            };
            match (fast, slow) {
                (Some(a), Some(b)) => prop_assert!((a - b).abs() < 1e-9),
                (a, b) => prop_assert_eq!(a, b),
            }
        }

        #[test]
        fn auc_is_invariant_to_monotone_transform(
            // Scores on a 1/16 grid so the affine transform is exact in f32 and
            // preserves the tie structure (arbitrary floats can collapse under
            // rounding, which would legitimately change the AUC).
            raw in proptest::collection::vec((0u8..=16, proptest::bool::ANY), 4..60)
        ) {
            let scores: Vec<f32> = raw.iter().map(|&(s, _)| s as f32 / 16.0).collect();
            let labels: Vec<f32> = raw.iter().map(|&(_, l)| if l { 1.0 } else { 0.0 }).collect();
            let transformed: Vec<f32> = scores.iter().map(|&s| s * 3.0 + 1.0).collect();
            prop_assert_eq!(auc(&scores, &labels), auc(&transformed, &labels));
        }
    }
}
