//! Even range-partitioning of the flat parameter vector across `m` parameter
//! servers (the paper's footnote 1: "we assume the parameters stored on the
//! servers are evenly distributed").

use serde::{Deserialize, Serialize};
use std::ops::Range;

#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PartitionPlan {
    ranges: Vec<(usize, usize)>,
}

impl PartitionPlan {
    /// Split `n_params` into `m` contiguous ranges whose sizes differ by at
    /// most one.
    pub fn even(n_params: usize, m: usize) -> Self {
        assert!(m > 0, "at least one server");
        let base = n_params / m;
        let extra = n_params % m;
        let mut ranges = Vec::with_capacity(m);
        let mut at = 0;
        for j in 0..m {
            let len = base + usize::from(j < extra);
            ranges.push((at, at + len));
            at += len;
        }
        PartitionPlan { ranges }
    }

    pub fn n_servers(&self) -> usize {
        self.ranges.len()
    }

    pub fn range(&self, server: usize) -> Range<usize> {
        let (a, b) = self.ranges[server];
        a..b
    }

    /// Which server owns parameter `p`.
    pub fn owner(&self, p: usize) -> usize {
        self.ranges.partition_point(|&(_, end)| end <= p).min(self.ranges.len() - 1)
    }

    /// Bytes of gradient payload destined for `server`, assuming f32 params.
    pub fn payload_bytes(&self, server: usize) -> u64 {
        (self.range(server).len() * std::mem::size_of::<f32>()) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn even_partition_covers_everything_once() {
        let p = PartitionPlan::even(10, 3);
        assert_eq!(p.range(0), 0..4);
        assert_eq!(p.range(1), 4..7);
        assert_eq!(p.range(2), 7..10);
        let total: usize = (0..3).map(|j| p.range(j).len()).sum();
        assert_eq!(total, 10);
    }

    #[test]
    fn sizes_differ_by_at_most_one() {
        for n in [0usize, 1, 7, 100, 101, 999] {
            for m in [1usize, 2, 3, 8, 16] {
                let p = PartitionPlan::even(n, m);
                let sizes: Vec<usize> = (0..m).map(|j| p.range(j).len()).collect();
                let mn = *sizes.iter().min().unwrap();
                let mx = *sizes.iter().max().unwrap();
                assert!(mx - mn <= 1, "n={n} m={m} sizes={sizes:?}");
                assert_eq!(sizes.iter().sum::<usize>(), n);
            }
        }
    }

    #[test]
    fn owner_is_consistent_with_ranges() {
        let p = PartitionPlan::even(11, 4);
        for param in 0..11 {
            let o = p.owner(param);
            assert!(p.range(o).contains(&param), "param {param} owner {o}");
        }
    }

    #[test]
    fn payload_bytes_are_range_sized() {
        let p = PartitionPlan::even(100, 4);
        assert_eq!(p.payload_bytes(0), 100);
        assert_eq!((0..4).map(|j| p.payload_bytes(j)).sum::<u64>(), 400);
    }

    #[test]
    #[should_panic(expected = "at least one server")]
    fn zero_servers_panics() {
        let _ = PartitionPlan::even(10, 0);
    }
}
