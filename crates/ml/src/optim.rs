//! Optimizers. The parameter server applies these on the server side; each
//! server instance owns the slice of the parameter vector assigned to it by the
//! partition plan, so `step_range` exists alongside the whole-vector `step`.

use serde::{Deserialize, Serialize};
use std::ops::Range;

pub trait Optimizer {
    /// `params[r] -= update(grad[r])` for the sub-range `r` (slices are indexed
    /// relative to the full parameter vector).
    fn step_range(&mut self, params: &mut [f32], grad: &[f32], range: Range<usize>);

    fn step(&mut self, params: &mut [f32], grad: &[f32]) {
        let n = params.len();
        self.step_range(params, grad, 0..n);
    }

    fn lr(&self) -> f32;
    /// Scale the learning rate (the `ADJUST_LR` action multiplies per-worker
    /// gradients; the optimizer-level scale is used by the Pollux-style
    /// baseline).
    fn set_lr(&mut self, lr: f32);
}

/// Plain SGD.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Sgd {
    pub lr: f32,
}

impl Sgd {
    pub fn new(lr: f32) -> Self {
        Sgd { lr }
    }
}

impl Optimizer for Sgd {
    fn step_range(&mut self, params: &mut [f32], grad: &[f32], range: Range<usize>) {
        debug_assert_eq!(params.len(), grad.len());
        for i in range {
            params[i] -= self.lr * grad[i];
        }
    }
    fn lr(&self) -> f32 {
        self.lr
    }
    fn set_lr(&mut self, lr: f32) {
        self.lr = lr;
    }
}

/// SGD with classical momentum: `v ← β v + g; p ← p − lr·v`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Momentum {
    pub lr: f32,
    pub beta: f32,
    velocity: Vec<f32>,
}

impl Momentum {
    pub fn new(lr: f32, beta: f32, n_params: usize) -> Self {
        Momentum { lr, beta, velocity: vec![0.0; n_params] }
    }
}

impl Optimizer for Momentum {
    fn step_range(&mut self, params: &mut [f32], grad: &[f32], range: Range<usize>) {
        debug_assert_eq!(params.len(), grad.len());
        debug_assert_eq!(params.len(), self.velocity.len());
        for i in range {
            self.velocity[i] = self.beta * self.velocity[i] + grad[i];
            params[i] -= self.lr * self.velocity[i];
        }
    }
    fn lr(&self) -> f32 {
        self.lr
    }
    fn set_lr(&mut self, lr: f32) {
        self.lr = lr;
    }
}

/// AdaGrad: per-coordinate adaptive rates, `p ← p − lr·g/√(G+ε)` with
/// `G ← G + g²` — the classic choice for sparse CTR models, where rare
/// features keep large effective rates.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AdaGrad {
    pub lr: f32,
    pub eps: f32,
    accum: Vec<f32>,
}

impl AdaGrad {
    pub fn new(lr: f32, n_params: usize) -> Self {
        AdaGrad { lr, eps: 1e-8, accum: vec![0.0; n_params] }
    }
}

impl Optimizer for AdaGrad {
    fn step_range(&mut self, params: &mut [f32], grad: &[f32], range: Range<usize>) {
        debug_assert_eq!(params.len(), grad.len());
        debug_assert_eq!(params.len(), self.accum.len());
        for i in range {
            self.accum[i] += grad[i] * grad[i];
            params[i] -= self.lr * grad[i] / (self.accum[i].sqrt() + self.eps);
        }
    }
    fn lr(&self) -> f32 {
        self.lr
    }
    fn set_lr(&mut self, lr: f32) {
        self.lr = lr;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sgd_full_step() {
        let mut p = vec![1.0f32, 2.0, 3.0];
        let g = vec![0.5f32, -0.5, 1.0];
        Sgd::new(0.1).step(&mut p, &g);
        assert_eq!(p, vec![0.95, 2.05, 2.9]);
    }

    #[test]
    fn sgd_range_step_touches_only_its_slice() {
        let mut p = vec![1.0f32; 6];
        let g = vec![1.0f32; 6];
        Sgd::new(0.5).step_range(&mut p, &g, 2..4);
        assert_eq!(p, vec![1.0, 1.0, 0.5, 0.5, 1.0, 1.0]);
    }

    #[test]
    fn momentum_accumulates_velocity() {
        let mut p = vec![0.0f32];
        let g = vec![1.0f32];
        let mut opt = Momentum::new(1.0, 0.5, 1);
        opt.step(&mut p, &g); // v=1,   p=-1
        opt.step(&mut p, &g); // v=1.5, p=-2.5
        assert!((p[0] + 2.5).abs() < 1e-6);
    }

    #[test]
    fn momentum_converges_on_quadratic_faster_than_sgd() {
        // Minimize f(p) = 0.5 p^2 from p=10 for a few steps; both go down.
        let run = |mut opt: Box<dyn Optimizer>| {
            let mut p = vec![10.0f32];
            for _ in 0..50 {
                let g = vec![p[0]];
                opt.step(&mut p, &g);
            }
            p[0].abs()
        };
        let sgd = run(Box::new(Sgd::new(0.05)));
        let mom = run(Box::new(Momentum::new(0.05, 0.9, 1)));
        assert!(mom < sgd, "momentum {mom} vs sgd {sgd}");
    }

    #[test]
    fn adagrad_shrinks_effective_rate_for_hot_coordinates() {
        let mut opt = AdaGrad::new(0.1, 2);
        let mut p = vec![0.0f32, 0.0];
        // Coordinate 0 sees large repeated gradients, coordinate 1 one tiny one.
        for _ in 0..10 {
            opt.step(&mut p, &[1.0, 0.0]);
        }
        let first_cold_step = {
            let before = p[1];
            opt.step(&mut p, &[0.0, 0.1]);
            p[1] - before
        };
        // The cold coordinate's first step is near the full lr; the hot
        // coordinate's latest step is much smaller than its first.
        assert!(first_cold_step.abs() > 0.09, "cold step {first_cold_step}");
        let hot_step = {
            let before = p[0];
            opt.step(&mut p, &[1.0, 0.0]);
            (p[0] - before).abs()
        };
        assert!(hot_step < 0.04, "hot step {hot_step}");
    }

    #[test]
    fn adagrad_converges_on_quadratic() {
        let mut opt = AdaGrad::new(1.0, 1);
        let mut p = vec![4.0f32];
        for _ in 0..300 {
            let g = vec![p[0]];
            opt.step(&mut p, &g);
        }
        assert!(p[0].abs() < 0.5, "p = {}", p[0]);
    }

    #[test]
    fn lr_is_adjustable() {
        let mut opt = Sgd::new(0.1);
        opt.set_lr(0.2);
        assert_eq!(opt.lr(), 0.2);
    }
}
