//! Virtual time. Instants and durations are integer microseconds so that event
//! ordering is exact and runs are bit-for-bit reproducible (no float drift in the
//! clock itself; costs are computed in `f64` seconds and quantized once on entry).

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An instant on the simulated clock, in microseconds since job start.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct SimTime(pub u64);

/// A span of simulated time, in microseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct SimDuration(pub u64);

pub const MICROS_PER_SEC: u64 = 1_000_000;

impl SimTime {
    pub const ZERO: SimTime = SimTime(0);
    /// Largest representable instant; used as "never".
    pub const MAX: SimTime = SimTime(u64::MAX);

    #[inline]
    pub fn from_secs_f64(secs: f64) -> Self {
        SimTime(secs_to_micros(secs))
    }
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / MICROS_PER_SEC as f64
    }
    #[inline]
    pub fn as_micros(self) -> u64 {
        self.0
    }
    /// Duration elapsed since `earlier`; saturates at zero if `earlier` is later.
    #[inline]
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    pub const ZERO: SimDuration = SimDuration(0);

    #[inline]
    pub fn from_secs_f64(secs: f64) -> Self {
        SimDuration(secs_to_micros(secs))
    }
    #[inline]
    pub fn from_secs(secs: u64) -> Self {
        SimDuration(secs * MICROS_PER_SEC)
    }
    #[inline]
    pub fn from_minutes(mins: u64) -> Self {
        Self::from_secs(mins * 60)
    }
    #[inline]
    pub fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000)
    }
    #[inline]
    pub fn from_micros(us: u64) -> Self {
        SimDuration(us)
    }
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / MICROS_PER_SEC as f64
    }
    #[inline]
    pub fn as_micros(self) -> u64 {
        self.0
    }
    #[inline]
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }
    #[inline]
    pub fn saturating_sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

/// Convert non-negative seconds to microseconds, rounding to nearest.
/// Negative or NaN inputs clamp to zero: cost models must never produce negative
/// delays, and clamping keeps a misbehaving profile from corrupting the clock.
#[inline]
fn secs_to_micros(secs: f64) -> u64 {
    // NaN-safe: anything not strictly positive (including NaN) clamps to zero.
    if secs.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) {
        return 0;
    }
    let us = secs * MICROS_PER_SEC as f64;
    if us >= u64::MAX as f64 {
        u64::MAX
    } else {
        us.round() as u64
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}
impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}
impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}
impl Add for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}
impl AddAssign for SimDuration {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}
impl Sub for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}
impl SubAssign for SimDuration {
    #[inline]
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}
impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(rhs))
    }
}
impl Div<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.3}s", self.as_secs_f64())
    }
}
impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}
impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}
impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_seconds() {
        let t = SimTime::from_secs_f64(1.5);
        assert_eq!(t.0, 1_500_000);
        assert!((t.as_secs_f64() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn negative_and_nan_costs_clamp_to_zero() {
        assert_eq!(SimDuration::from_secs_f64(-3.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
    }

    #[test]
    fn saturating_arithmetic() {
        let t = SimTime::MAX + SimDuration::from_secs(1);
        assert_eq!(t, SimTime::MAX);
        assert_eq!(SimTime::ZERO - SimDuration::from_secs(1), SimTime::ZERO);
        assert_eq!(
            SimDuration::from_secs(1).saturating_sub(SimDuration::from_secs(2)),
            SimDuration::ZERO
        );
    }

    #[test]
    fn since_is_saturating() {
        let a = SimTime::from_secs_f64(5.0);
        let b = SimTime::from_secs_f64(8.0);
        assert_eq!(b.since(a), SimDuration::from_secs(3));
        assert_eq!(a.since(b), SimDuration::ZERO);
    }

    #[test]
    fn duration_scaling() {
        assert_eq!(SimDuration::from_minutes(2), SimDuration::from_secs(120));
        assert_eq!(SimDuration::from_secs(3) * 4, SimDuration::from_secs(12));
        assert_eq!(SimDuration::from_secs(12) / 4, SimDuration::from_secs(3));
    }
}
