//! Time-series recorder used by experiment reports (BPT trajectories, batch-size
//! trajectories, global throughput…). Points are `(SimTime, f64)` in insertion
//! order; insertion order is expected to be time-ordered for windowed queries.

use crate::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TimeSeries {
    pub points: Vec<(SimTime, f64)>,
}

impl TimeSeries {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn push(&mut self, t: SimTime, v: f64) {
        self.points.push((t, v));
    }

    pub fn len(&self) -> usize {
        self.points.len()
    }

    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    pub fn last(&self) -> Option<(SimTime, f64)> {
        self.points.last().copied()
    }

    /// Mean of all values (None if empty).
    pub fn mean(&self) -> Option<f64> {
        if self.points.is_empty() {
            return None;
        }
        Some(self.points.iter().map(|&(_, v)| v).sum::<f64>() / self.points.len() as f64)
    }

    /// Mean of values with timestamps in `[from, to)`.
    pub fn mean_in(&self, from: SimTime, to: SimTime) -> Option<f64> {
        let mut sum = 0.0;
        let mut n = 0usize;
        for &(t, v) in &self.points {
            if t >= from && t < to {
                sum += v;
                n += 1;
            }
        }
        if n == 0 {
            None
        } else {
            Some(sum / n as f64)
        }
    }

    /// Mean of values in the trailing window `(now - span, now]`.
    pub fn mean_trailing(&self, now: SimTime, span: SimDuration) -> Option<f64> {
        let from = now - span;
        let mut sum = 0.0;
        let mut n = 0usize;
        for &(t, v) in self.points.iter().rev() {
            if t > now {
                continue;
            }
            if t <= from && !(from == SimTime::ZERO && t == SimTime::ZERO) {
                break;
            }
            sum += v;
            n += 1;
        }
        if n == 0 {
            None
        } else {
            Some(sum / n as f64)
        }
    }

    pub fn min(&self) -> Option<f64> {
        self.points.iter().map(|&(_, v)| v).fold(None, |m, v| Some(m.map_or(v, |m: f64| m.min(v))))
    }

    pub fn max(&self) -> Option<f64> {
        self.points.iter().map(|&(_, v)| v).fold(None, |m, v| Some(m.map_or(v, |m: f64| m.max(v))))
    }

    /// Downsample to at most `buckets` points by averaging consecutive runs —
    /// used when printing figure data.
    pub fn downsample(&self, buckets: usize) -> Vec<(SimTime, f64)> {
        let mut out = Vec::new();
        self.downsample_into(buckets, &mut out);
        out
    }

    /// Allocation-reusing [`TimeSeries::downsample`]: clears `out` and fills
    /// it, so a caller printing many series can recycle one buffer.
    pub fn downsample_into(&self, buckets: usize, out: &mut Vec<(SimTime, f64)>) {
        out.clear();
        if buckets == 0 || self.points.is_empty() {
            return;
        }
        if self.points.len() <= buckets {
            out.extend_from_slice(&self.points);
            return;
        }
        let chunk = self.points.len().div_ceil(buckets);
        out.reserve(self.points.len().div_ceil(chunk));
        out.extend(self.points.chunks(chunk).map(|c| {
            let t = c[c.len() / 2].0;
            let v = c.iter().map(|&(_, v)| v).sum::<f64>() / c.len() as f64;
            (t, v)
        }));
    }
}

/// Mean and sample standard deviation of a slice (used for Table III's `±σ`).
pub fn mean_std(xs: &[f64]) -> (f64, f64) {
    if xs.is_empty() {
        return (0.0, 0.0);
    }
    let n = xs.len() as f64;
    let mean = xs.iter().sum::<f64>() / n;
    if xs.len() < 2 {
        return (mean, 0.0);
    }
    let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1.0);
    (mean, var.sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series(vals: &[(f64, f64)]) -> TimeSeries {
        let mut s = TimeSeries::new();
        for &(t, v) in vals {
            s.push(SimTime::from_secs_f64(t), v);
        }
        s
    }

    #[test]
    fn mean_and_bounds() {
        let s = series(&[(1.0, 2.0), (2.0, 4.0), (3.0, 6.0)]);
        assert_eq!(s.mean(), Some(4.0));
        assert_eq!(s.min(), Some(2.0));
        assert_eq!(s.max(), Some(6.0));
        assert!(TimeSeries::new().mean().is_none());
    }

    #[test]
    fn windowed_mean() {
        let s = series(&[(1.0, 10.0), (2.0, 20.0), (3.0, 30.0), (4.0, 40.0)]);
        assert_eq!(s.mean_in(SimTime::from_secs_f64(2.0), SimTime::from_secs_f64(4.0)), Some(25.0));
        assert_eq!(s.mean_in(SimTime::from_secs_f64(10.0), SimTime::from_secs_f64(20.0)), None);
    }

    #[test]
    fn trailing_mean() {
        let s = series(&[(1.0, 10.0), (5.0, 20.0), (9.0, 30.0)]);
        // Window (4, 9]: picks 20 and 30.
        assert_eq!(
            s.mean_trailing(SimTime::from_secs_f64(9.0), SimDuration::from_secs(5)),
            Some(25.0)
        );
        // Window wider than all data.
        assert_eq!(
            s.mean_trailing(SimTime::from_secs_f64(9.0), SimDuration::from_secs(100)),
            Some(20.0)
        );
    }

    #[test]
    fn downsample_preserves_mean_roughly() {
        let mut s = TimeSeries::new();
        for i in 0..1000 {
            s.push(SimTime::from_secs_f64(i as f64), (i % 10) as f64);
        }
        let d = s.downsample(10);
        assert!(d.len() <= 10);
        let dm = d.iter().map(|&(_, v)| v).sum::<f64>() / d.len() as f64;
        assert!((dm - 4.5).abs() < 0.5);
        assert!(s.downsample(0).is_empty());
        assert_eq!(s.downsample(5000).len(), 1000);
    }

    #[test]
    fn mean_std_basics() {
        let (m, s) = mean_std(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((m - 5.0).abs() < 1e-12);
        assert!((s - 2.138089935299395).abs() < 1e-9);
        assert_eq!(mean_std(&[]), (0.0, 0.0));
        assert_eq!(mean_std(&[3.0]), (3.0, 0.0));
    }
}
