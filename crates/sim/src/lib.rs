//! # antdt-sim — discrete-event cluster simulation kernel
//!
//! The AntDT paper evaluates on Ant Group production clusters where stragglers are
//! *injected* (FlexRR-style sleep commands) because natural contention is not
//! controllable. This crate provides the deterministic substrate that stands in for
//! those clusters: a virtual clock, an event queue, seeded random streams, per-node
//! speed/contention profiles, a network cost model, and a cluster-scheduler model
//! (pod pending + init times for `KILL_RESTART`).
//!
//! Everything is deterministic given a master seed: the same configuration always
//! produces the same event trace, which the property tests rely on.
//!
//! The kernel is intentionally generic: [`Engine`] knows nothing about parameter
//! servers or AllReduce; the training runtimes in `antdt-core` drive it with their
//! own event types.

pub mod control;
pub mod dist;
pub mod engine;
pub mod gantt;
pub mod network;
pub mod profile;
pub mod queue;
pub mod rng;
pub mod sched;
pub mod series;
pub mod time;

pub use control::{ChannelVerdict, ControlChannel};
pub use engine::{Engine, EngineSnapshot};
pub use gantt::{Gantt, Span, SpanKind};
pub use network::Link;
pub use profile::{ContentionPhase, NodeProfile, TransientPattern};
pub use queue::{EventQueue, HeapQueue, RuntimeQueue, WheelQueue};
pub use rng::RngPool;
pub use sched::{BusynessTimeline, SchedulerModel};
pub use series::TimeSeries;
pub use time::{SimDuration, SimTime};
