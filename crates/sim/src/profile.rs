//! Per-node speed and contention profiles.
//!
//! A node's iteration cost is composed as
//!
//! ```text
//! T = base_cost(batch) / speed_factor * slowdown(t) * jitter + extra_delay(t)
//! ```
//!
//! * `speed_factor` models *deterministic* stragglers (hardware heterogeneity:
//!   a P100 at 1/3 of a V100's speed, older CPU series…).
//! * `slowdown(t)` and `extra_delay(t)` model *non-deterministic* stragglers from
//!   resource contention, following the paper's FlexRR-style injection (§VII-A4):
//!   `T_delay = SleepDuration × Intensity` with a certain probability, either in
//!   periodic 15-minutes-in-30 windows (transient) or from start to end
//!   (persistent).
//! * `jitter` is small multiplicative log-normal noise so that even leader nodes
//!   show realistic BPT variance.
//!
//! Episode coin flips are addressed deterministically by `(stream, episode
//! index)` via [`RngPool::bernoulli_at`], so a profile can be queried at any time
//! in any order and always answers the same.

use crate::dist::unit_mean_jitter;
use crate::rng::RngPool;
use crate::time::{SimDuration, SimTime};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Periodic transient-contention pattern: every `period`, an episode of length
/// `active` begins; with probability `probability` this node is disturbed for
/// the whole episode, adding `sleep_secs * intensity` to every iteration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TransientPattern {
    pub period: SimDuration,
    pub active: SimDuration,
    pub probability: f64,
    pub sleep_secs: f64,
    pub intensity: f64,
}

impl TransientPattern {
    /// The paper's default injection: 15 minutes of contention every 30 minutes
    /// with probability 0.3, `SleepDuration = 1.5 s` (§VII-A4).
    pub fn paper_default(intensity: f64) -> Self {
        TransientPattern {
            period: SimDuration::from_minutes(30),
            active: SimDuration::from_minutes(15),
            probability: 0.3,
            sleep_secs: 1.5,
            intensity,
        }
    }

    fn delay_at(&self, pool: &RngPool, stream: u64, now: SimTime) -> f64 {
        if self.period.is_zero() {
            return 0.0;
        }
        let episode = now.as_micros() / self.period.as_micros();
        let offset = now.as_micros() % self.period.as_micros();
        if offset < self.active.as_micros() && pool.bernoulli_at(stream, episode, self.probability)
        {
            self.sleep_secs * self.intensity
        } else {
            0.0
        }
    }
}

/// One contention phase contributing additive delay or multiplicative slowdown.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ContentionPhase {
    /// Constant extra delay per iteration over `[from, to)` — the paper's
    /// persistent straggler (`T_delay = 4 s`, start to end).
    Persistent { delay_secs: f64, from: SimTime, to: SimTime },
    /// FlexRR-style periodic transient contention.
    Transient(TransientPattern),
    /// Multiplicative slowdown over `[from, to)` (e.g. a co-located production
    /// job stealing half the cores).
    Slowdown { factor: f64, from: SimTime, to: SimTime },
}

/// Full per-node profile. See the module docs for the composition rule.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NodeProfile {
    /// Deterministic hardware speed relative to the reference device (1.0).
    pub speed_factor: f64,
    /// Sigma of the unit-mean multiplicative log-normal iteration jitter.
    pub jitter_sigma: f64,
    /// Contention phases, all evaluated and summed/multiplied together.
    pub phases: Vec<ContentionPhase>,
    /// RNG stream id for this node's episode coin flips.
    pub stream: u64,
}

impl NodeProfile {
    /// A clean leader node: reference speed, mild jitter, no contention.
    pub fn clean(stream: u64) -> Self {
        NodeProfile { speed_factor: 1.0, jitter_sigma: 0.02, phases: Vec::new(), stream }
    }

    /// A deterministic straggler: hardware `factor`× slower than reference.
    pub fn deterministic(stream: u64, factor_slower: f64) -> Self {
        NodeProfile {
            speed_factor: 1.0 / factor_slower.max(f64::MIN_POSITIVE),
            ..NodeProfile::clean(stream)
        }
    }

    pub fn with_jitter(mut self, sigma: f64) -> Self {
        self.jitter_sigma = sigma;
        self
    }

    pub fn with_phase(mut self, phase: ContentionPhase) -> Self {
        self.phases.push(phase);
        self
    }

    /// Paper persistent straggler: constant `delay_secs` for the whole job.
    pub fn persistent(stream: u64, delay_secs: f64) -> Self {
        NodeProfile::clean(stream).with_phase(ContentionPhase::Persistent {
            delay_secs,
            from: SimTime::ZERO,
            to: SimTime::MAX,
        })
    }

    /// Paper transient straggler with the default FlexRR pattern.
    pub fn transient(stream: u64, intensity: f64) -> Self {
        NodeProfile::clean(stream)
            .with_phase(ContentionPhase::Transient(TransientPattern::paper_default(intensity)))
    }

    /// Additive contention delay (seconds) at instant `now`.
    pub fn extra_delay(&self, pool: &RngPool, now: SimTime) -> f64 {
        let mut d = 0.0;
        for p in &self.phases {
            match *p {
                ContentionPhase::Persistent { delay_secs, from, to } => {
                    if now >= from && now < to {
                        d += delay_secs;
                    }
                }
                ContentionPhase::Transient(t) => d += t.delay_at(pool, self.stream, now),
                ContentionPhase::Slowdown { .. } => {}
            }
        }
        d
    }

    /// Multiplicative slowdown factor (≥ 1.0) at instant `now`.
    pub fn slowdown(&self, now: SimTime) -> f64 {
        let mut f = 1.0;
        for p in &self.phases {
            if let ContentionPhase::Slowdown { factor, from, to } = *p {
                if now >= from && now < to {
                    f *= factor.max(1.0);
                }
            }
        }
        f
    }

    /// Whether the node is currently under any contention phase (used by tests
    /// and visualisation, not by the mitigation logic — AntDT only observes BPT).
    pub fn contended(&self, pool: &RngPool, now: SimTime) -> bool {
        self.extra_delay(pool, now) > 0.0 || self.slowdown(now) > 1.0
    }

    /// Compose the full iteration cost in seconds for a base (contention-free,
    /// reference-device) cost.
    pub fn iteration_secs<R: Rng + ?Sized>(
        &self,
        pool: &RngPool,
        now: SimTime,
        base_cost_secs: f64,
        rng: &mut R,
    ) -> f64 {
        let jitter = unit_mean_jitter(rng, self.jitter_sigma);
        base_cost_secs / self.speed_factor * self.slowdown(now) * jitter
            + self.extra_delay(pool, now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn pool() -> RngPool {
        RngPool::new(2024)
    }

    #[test]
    fn clean_node_has_no_delay() {
        let n = NodeProfile::clean(0);
        assert_eq!(n.extra_delay(&pool(), SimTime::from_secs_f64(100.0)), 0.0);
        assert_eq!(n.slowdown(SimTime::ZERO), 1.0);
    }

    #[test]
    fn persistent_delay_is_constant() {
        let n = NodeProfile::persistent(1, 4.0);
        for s in [0.0, 10.0, 10_000.0, 1e6] {
            assert_eq!(n.extra_delay(&pool(), SimTime::from_secs_f64(s)), 4.0);
        }
    }

    #[test]
    fn persistent_delay_respects_interval() {
        let n = NodeProfile::clean(1).with_phase(ContentionPhase::Persistent {
            delay_secs: 2.0,
            from: SimTime::from_secs_f64(100.0),
            to: SimTime::from_secs_f64(200.0),
        });
        assert_eq!(n.extra_delay(&pool(), SimTime::from_secs_f64(50.0)), 0.0);
        assert_eq!(n.extra_delay(&pool(), SimTime::from_secs_f64(150.0)), 2.0);
        assert_eq!(n.extra_delay(&pool(), SimTime::from_secs_f64(250.0)), 0.0);
    }

    #[test]
    fn transient_active_only_in_window_and_episode() {
        let n = NodeProfile::transient(3, 0.8);
        let p = pool();
        // Find an episode where the coin flip succeeded and one where it failed.
        let mut hit = None;
        let mut miss = None;
        for e in 0..200u64 {
            let t_active = SimTime(
                e * SimDuration::from_minutes(30).as_micros()
                    + SimDuration::from_minutes(5).as_micros(),
            );
            let d = n.extra_delay(&p, t_active);
            if d > 0.0 {
                hit = Some((e, d));
            } else {
                miss = Some(e);
            }
            // Outside the active window there is never delay.
            let t_idle = SimTime(
                e * SimDuration::from_minutes(30).as_micros()
                    + SimDuration::from_minutes(20).as_micros(),
            );
            assert_eq!(n.extra_delay(&p, t_idle), 0.0);
        }
        let (_, d) = hit.expect("some episode should hit with p=0.3 over 200 tries");
        assert!((d - 1.5 * 0.8).abs() < 1e-12);
        assert!(miss.is_some());
    }

    #[test]
    fn transient_rate_near_probability() {
        let n = NodeProfile::transient(5, 1.0);
        let p = pool();
        let active = (0..2000u64)
            .filter(|e| {
                let t = SimTime(e * SimDuration::from_minutes(30).as_micros() + 1);
                n.extra_delay(&p, t) > 0.0
            })
            .count();
        let rate = active as f64 / 2000.0;
        assert!((rate - 0.3).abs() < 0.05, "rate {rate}");
    }

    #[test]
    fn deterministic_straggler_scales_cost() {
        let n = NodeProfile::deterministic(0, 3.0).with_jitter(0.0);
        let mut rng = StdRng::seed_from_u64(0);
        let t = n.iteration_secs(&pool(), SimTime::ZERO, 1.0, &mut rng);
        assert!((t - 3.0).abs() < 1e-9);
    }

    #[test]
    fn slowdown_phase_multiplies() {
        let n = NodeProfile::clean(0).with_jitter(0.0).with_phase(ContentionPhase::Slowdown {
            factor: 2.5,
            from: SimTime::ZERO,
            to: SimTime::MAX,
        });
        let mut rng = StdRng::seed_from_u64(0);
        let t = n.iteration_secs(&pool(), SimTime::ZERO, 2.0, &mut rng);
        assert!((t - 5.0).abs() < 1e-9);
    }

    #[test]
    fn iteration_secs_composition() {
        // 3x-slower hardware + persistent 4s + no jitter on a 1.5s base cost.
        let n = NodeProfile {
            speed_factor: 1.0 / 3.0,
            jitter_sigma: 0.0,
            phases: vec![ContentionPhase::Persistent {
                delay_secs: 4.0,
                from: SimTime::ZERO,
                to: SimTime::MAX,
            }],
            stream: 9,
        };
        let mut rng = StdRng::seed_from_u64(0);
        let t = n.iteration_secs(&pool(), SimTime::ZERO, 1.5, &mut rng);
        assert!((t - (1.5 * 3.0 + 4.0)).abs() < 1e-9);
    }

    #[test]
    fn jitter_is_unit_mean() {
        let n = NodeProfile::clean(0).with_jitter(0.1);
        let mut rng = StdRng::seed_from_u64(1);
        let k = 50_000;
        let m: f64 =
            (0..k).map(|_| n.iteration_secs(&pool(), SimTime::ZERO, 1.0, &mut rng)).sum::<f64>()
                / k as f64;
        assert!((m - 1.0).abs() < 0.01, "mean {m}");
    }
}
