//! The pluggable event-queue layer under [`crate::Engine`].
//!
//! The engine orders events by a packed `u128` key — time in the high 64
//! bits, per-engine insertion sequence in the low 64 — so *any* queue that
//! pops strictly ascending keys reproduces the exact `(time, FIFO)` schedule.
//! That contract is what makes the queue pluggable: [`HeapQueue`] (the
//! original binary heap, kept as the reference oracle) and [`WheelQueue`]
//! (a hierarchical time wheel with O(1) amortized insert/pop) are
//! interchangeable byte-for-byte, and the differential tests in this module
//! hold them to it.
//!
//! Queue payloads are opaque: the engine stores event payloads in an
//! [`Arena`] and routes only `u32` slot handles through the queue, so the
//! hot schedule/step path never allocates per event and bucket shuffles in
//! the wheel move 24-byte entries regardless of the event type.

mod arena;
mod heap;
mod wheel;

pub use arena::Arena;
pub use heap::HeapQueue;
pub use wheel::WheelQueue;

/// A priority queue of `(key, payload)` entries popped in ascending key
/// order.
///
/// Invariants every implementation must uphold (the engine relies on all
/// three for determinism):
///
/// 1. `pop` returns the entry with the smallest key; keys pushed by the
///    engine are unique (the low 64 bits are a strictly increasing sequence
///    number), so "smallest" is unambiguous.
/// 2. Keys may only be pushed at or after the last popped key's *time*
///    (high 64 bits) — the engine's monotone clock clamp guarantees this.
///    Sequence numbers are globally increasing across all pushes.
/// 3. `clear` drops all pending entries but keeps the queue usable at the
///    current time position.
pub trait EventQueue<E>: Default {
    /// Insert `ev` under `key` (`time << 64 | seq`).
    fn push(&mut self, key: u128, ev: E);

    /// Remove and return the entry with the smallest key.
    fn pop(&mut self) -> Option<(u128, E)>;

    /// The smallest pending key. Takes `&mut self` because the wheel may
    /// re-bucket internally while locating it (never observably).
    fn peek_key(&mut self) -> Option<u128>;

    /// Pop the front entry only if its key is at most `limit` — the engine's
    /// deadline-bounded stepping as one queue operation, so implementations
    /// can resolve their front once instead of answering a peek and a pop
    /// separately. Returns `None` (leaving the queue untouched) when empty
    /// or when the front key exceeds `limit`.
    fn pop_at_most(&mut self, limit: u128) -> Option<(u128, E)> {
        if self.peek_key()? <= limit {
            self.pop()
        } else {
            None
        }
    }

    /// Number of pending entries.
    fn len(&self) -> usize;

    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drop every pending entry (the queue stays usable at its current
    /// time position).
    fn clear(&mut self);

    /// All pending entries in unspecified order (for engine snapshots).
    fn entries(&self) -> Vec<(u128, E)>
    where
        E: Clone;
}

/// Runtime-selectable queue: wheel by default, heap for oracle runs.
///
/// The training runtimes in `antdt-core` drive a single concrete engine
/// type through dozens of handler signatures; this enum gives them a
/// queue choice at job-construction time without threading a generic
/// parameter through every hook. Dispatch is one predictable branch per
/// queue operation — noise next to the handler work per event.
// The wheel variant carries its ~2 KiB occupancy bitmap inline by design:
// there is exactly one queue per engine, and boxing it would put a pointer
// chase on every push/pop.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone)]
pub enum RuntimeQueue<E> {
    Wheel(WheelQueue<E>),
    Heap(HeapQueue<E>),
}

impl<E> RuntimeQueue<E> {
    pub fn wheel() -> Self {
        RuntimeQueue::Wheel(WheelQueue::default())
    }

    pub fn heap() -> Self {
        RuntimeQueue::Heap(HeapQueue::default())
    }

    /// A fresh, empty queue of the same variant (for engine forks that keep
    /// the parent's runtime-selected kind).
    pub fn empty_like(&self) -> Self {
        match self {
            RuntimeQueue::Wheel(_) => Self::wheel(),
            RuntimeQueue::Heap(_) => Self::heap(),
        }
    }
}

impl<E> Default for RuntimeQueue<E> {
    fn default() -> Self {
        Self::wheel()
    }
}

impl<E> EventQueue<E> for RuntimeQueue<E> {
    fn push(&mut self, key: u128, ev: E) {
        match self {
            RuntimeQueue::Wheel(q) => q.push(key, ev),
            RuntimeQueue::Heap(q) => q.push(key, ev),
        }
    }

    fn pop(&mut self) -> Option<(u128, E)> {
        match self {
            RuntimeQueue::Wheel(q) => q.pop(),
            RuntimeQueue::Heap(q) => q.pop(),
        }
    }

    fn peek_key(&mut self) -> Option<u128> {
        match self {
            RuntimeQueue::Wheel(q) => q.peek_key(),
            RuntimeQueue::Heap(q) => q.peek_key(),
        }
    }

    fn pop_at_most(&mut self, limit: u128) -> Option<(u128, E)> {
        match self {
            RuntimeQueue::Wheel(q) => q.pop_at_most(limit),
            RuntimeQueue::Heap(q) => q.pop_at_most(limit),
        }
    }

    fn len(&self) -> usize {
        match self {
            RuntimeQueue::Wheel(q) => q.len(),
            RuntimeQueue::Heap(q) => q.len(),
        }
    }

    fn clear(&mut self) {
        match self {
            RuntimeQueue::Wheel(q) => q.clear(),
            RuntimeQueue::Heap(q) => q.clear(),
        }
    }

    fn entries(&self) -> Vec<(u128, E)>
    where
        E: Clone,
    {
        match self {
            RuntimeQueue::Wheel(q) => q.entries(),
            RuntimeQueue::Heap(q) => q.entries(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Drive both queues through the same legal workload and require
    /// identical pop sequences.
    fn differential(ops: &[(u64, u32)]) {
        let mut heap: HeapQueue<u32> = HeapQueue::default();
        let mut wheel: WheelQueue<u32> = WheelQueue::default();
        let mut seq = 0u64;
        let mut last_time = 0u64;
        let mut pending = 0usize;
        for &(dt, burst) in ops {
            // Interleave pushes and pops the way the engine does: advance the
            // clock by popping, then push a burst at/after the current time.
            for _ in 0..burst {
                let t = last_time.saturating_add(dt);
                let key = (u128::from(t) << 64) | u128::from(seq);
                seq += 1;
                heap.push(key, seq as u32);
                wheel.push(key, seq as u32);
                pending += 1;
            }
            if pending > 0 {
                assert_eq!(heap.peek_key(), wheel.peek_key());
                let h = heap.pop().unwrap();
                let w = wheel.pop().unwrap();
                assert_eq!(h, w);
                last_time = (h.0 >> 64) as u64;
                pending -= 1;
            }
        }
        while let Some(h) = heap.pop() {
            assert_eq!(Some(h), wheel.pop());
        }
        assert!(wheel.pop().is_none());
    }

    #[test]
    fn same_instant_bursts_match() {
        differential(&[(0, 100), (1, 3), (0, 50), (2, 0), (0, 7)]);
    }

    #[test]
    fn mixed_horizons_match() {
        // Near-future, cross-level, and far-overflow delays interleaved.
        differential(&[
            (1, 4),
            (63, 2),
            (64, 2),
            (4095, 3),
            (4096, 3),
            (1 << 20, 2),
            (1 << 37, 2),
            (5, 10),
            (1 << 40, 1),
            (2, 8),
        ]);
    }

    #[test]
    fn u64_max_times_match() {
        let mut heap: HeapQueue<u8> = HeapQueue::default();
        let mut wheel: WheelQueue<u8> = WheelQueue::default();
        for (i, t) in [u64::MAX, 0, u64::MAX, 5].into_iter().enumerate() {
            let key = (u128::from(t) << 64) | i as u128;
            heap.push(key, i as u8);
            wheel.push(key, i as u8);
        }
        for _ in 0..4 {
            assert_eq!(heap.pop(), wheel.pop());
        }
    }

    #[test]
    fn clear_mid_run_matches() {
        let mut heap: HeapQueue<u32> = HeapQueue::default();
        let mut wheel: WheelQueue<u32> = WheelQueue::default();
        for i in 0..10u64 {
            let key = (u128::from(i * 100) << 64) | u128::from(i);
            heap.push(key, i as u32);
            wheel.push(key, i as u32);
        }
        assert_eq!(heap.pop(), wheel.pop());
        heap.clear();
        wheel.clear();
        assert_eq!(heap.len(), 0);
        assert_eq!(wheel.len(), 0);
        // Both stay usable at their current position.
        for i in 0..5u64 {
            let key = (u128::from(100 + i) << 64) | u128::from(100 + i);
            heap.push(key, i as u32);
            wheel.push(key, i as u32);
        }
        for _ in 0..5 {
            assert_eq!(heap.pop(), wheel.pop());
        }
    }

    mod differential_props {
        use super::*;
        use proptest::prelude::*;

        /// One step of a randomized, engine-legal workload.
        #[derive(Debug, Clone)]
        enum Op {
            /// Push `burst` events at `now + dt` (dt may cross any wheel
            /// level or land in overflow).
            Push { dt: u64, burst: u8 },
            /// Pop one event, advancing the clock to its time.
            Pop,
            /// Deadline-bounded pop at `now + dt` (the engine's `run_until`
            /// step) — may refuse, leaving the queue untouched.
            PopAtMost { dt: u64 },
            /// Drop all pending events mid-run.
            Clear,
        }

        fn op_strategy() -> impl Strategy<Value = Op> {
            let dt = prop_oneof![
                0u64..256,       // same-instant / level-0..1
                0u64..(1 << 20), // mid levels
                0u64..(1 << 37), // top level + overflow edge
                Just(u64::MAX),  // saturating far future
            ];
            let limit_dt = prop_oneof![0u64..256, 0u64..(1 << 20), 0u64..(1 << 37)];
            prop_oneof![
                (dt, 0u8..8).prop_map(|(dt, burst)| Op::Push { dt, burst }),
                Just(Op::Pop),
                Just(Op::Pop),
                limit_dt.prop_map(|dt| Op::PopAtMost { dt }),
                Just(Op::Clear),
            ]
        }

        proptest! {
            /// The wheel and the heap oracle must agree on every peek and
            /// pop across arbitrary legal workloads.
            #[test]
            fn wheel_matches_heap_oracle(ops in proptest::collection::vec(op_strategy(), 1..120)) {
                let mut heap: HeapQueue<u32> = HeapQueue::default();
                let mut wheel: WheelQueue<u32> = WheelQueue::default();
                let mut seq = 0u64;
                let mut now = 0u64;
                for op in ops {
                    match op {
                        Op::Push { dt, burst } => {
                            for _ in 0..burst {
                                let t = now.saturating_add(dt);
                                let key = (u128::from(t) << 64) | u128::from(seq);
                                heap.push(key, seq as u32);
                                wheel.push(key, seq as u32);
                                seq += 1;
                            }
                        }
                        Op::Pop => {
                            prop_assert_eq!(heap.peek_key(), wheel.peek_key());
                            let h = heap.pop();
                            let w = wheel.pop();
                            prop_assert_eq!(h, w);
                            if let Some((key, _)) = h {
                                now = (key >> 64) as u64;
                            }
                        }
                        Op::PopAtMost { dt } => {
                            let limit = (u128::from(now.saturating_add(dt)) << 64)
                                | u128::from(u64::MAX);
                            let h = heap.pop_at_most(limit);
                            let w = wheel.pop_at_most(limit);
                            prop_assert_eq!(h, w);
                            if let Some((key, _)) = h {
                                now = (key >> 64) as u64;
                            }
                        }
                        Op::Clear => {
                            heap.clear();
                            wheel.clear();
                        }
                    }
                    prop_assert_eq!(heap.len(), wheel.len());
                }
                // Drain: the full residual schedules must be identical.
                while let Some(h) = heap.pop() {
                    prop_assert_eq!(Some(h), wheel.pop());
                }
                prop_assert!(wheel.pop().is_none());
            }
        }
    }

    #[test]
    fn pop_at_most_boundary_semantics() {
        // Exact-limit keys pop; a front one past the limit leaves the queue
        // untouched — on the heap, the wheel, and the trait default (which
        // `RuntimeQueue` would hit if it ever dropped its override).
        fn check<Q: EventQueue<u32>>(mut q: Q) {
            for (i, t) in [10u64, 20, 20, 30].into_iter().enumerate() {
                q.push((u128::from(t) << 64) | i as u128, i as u32);
            }
            let exact = (20u128 << 64) | 1;
            assert_eq!(q.pop_at_most((10 << 64) | u128::from(u64::MAX)), Some(((10 << 64), 0)));
            // Limit below the front key (time matches, seq lower): refuse.
            assert_eq!(q.pop_at_most(20 << 64), None);
            assert_eq!(q.len(), 3);
            assert_eq!(q.pop_at_most(exact), Some((exact, 1)));
            assert_eq!(q.pop_at_most(exact), None);
            // A refused pop must not have perturbed order or contents.
            assert_eq!(q.pop(), Some(((20 << 64) | 2, 2)));
            assert_eq!(q.pop_at_most(u128::MAX), Some(((30 << 64) | 3, 3)));
            assert_eq!(q.pop_at_most(u128::MAX), None);
        }
        check(HeapQueue::default());
        check(WheelQueue::default());
        check(RuntimeQueue::wheel());
    }

    /// After a deadline-bounded pop comes up empty, pushes at times between
    /// the deadline and the next pending event (the engine's steady state:
    /// drain to `t`, schedule more work near `t`) must still pop in exact
    /// key order on both queues.
    #[test]
    fn refused_pop_then_near_deadline_pushes_match() {
        let mut heap: HeapQueue<u32> = HeapQueue::default();
        let mut wheel: WheelQueue<u32> = WheelQueue::default();
        let mut seq = 0u64;
        let mut push = |h: &mut HeapQueue<u32>, w: &mut WheelQueue<u32>, t: u64| {
            let key = (u128::from(t) << 64) | u128::from(seq);
            h.push(key, seq as u32);
            w.push(key, seq as u32);
            seq += 1;
        };
        push(&mut heap, &mut wheel, 1 << 20); // far future
        for deadline in [1_000u64, 10_000, 100_000] {
            let limit = (u128::from(deadline) << 64) | u128::from(u64::MAX);
            assert_eq!(heap.pop_at_most(limit), wheel.pop_at_most(limit));
            // Schedule follow-ups just past the deadline, like a round
            // driver that advanced to `deadline` and planned the next round.
            push(&mut heap, &mut wheel, deadline + 1);
            push(&mut heap, &mut wheel, deadline + 500);
        }
        while let Some(h) = heap.pop() {
            assert_eq!(Some(h), wheel.pop());
        }
        assert!(wheel.pop().is_none());
    }

    #[test]
    fn runtime_queue_dispatches_both_variants() {
        for mut q in [RuntimeQueue::<u32>::wheel(), RuntimeQueue::<u32>::heap()] {
            q.push(5 << 64, 1);
            q.push(3 << 64 | 1, 2);
            assert_eq!(q.len(), 2);
            assert_eq!(q.peek_key(), Some(3 << 64 | 1));
            assert_eq!(q.pop(), Some((3 << 64 | 1, 2)));
            assert_eq!(q.entries(), vec![(5 << 64, 1)]);
            q.clear();
            assert!(q.is_empty());
        }
    }
}
