//! Slab storage for pending event payloads.
//!
//! The engine keeps payloads here and routes only `u32` slot handles through
//! the event queue: pushes reuse freed slots via an intrusive free list, so
//! steady-state scheduling performs zero allocations no matter how large the
//! payload type is.

/// Sentinel for "no next free slot".
const NIL: u32 = u32::MAX;

#[derive(Debug, Clone)]
enum Slot<E> {
    Full(E),
    /// Freed slot, linking to the next free slot (or [`NIL`]).
    Free(u32),
}

/// A slab of event payloads with an intrusive free list.
#[derive(Debug, Clone)]
pub struct Arena<E> {
    slots: Vec<Slot<E>>,
    free_head: u32,
    len: usize,
}

impl<E> Default for Arena<E> {
    fn default() -> Self {
        Arena { slots: Vec::new(), free_head: NIL, len: 0 }
    }
}

impl<E> Arena<E> {
    /// Store `ev`, returning its slot handle. Reuses a freed slot when one
    /// exists; only grows (allocates) when the arena is at capacity.
    pub fn insert(&mut self, ev: E) -> u32 {
        self.len += 1;
        if self.free_head != NIL {
            let slot = self.free_head;
            match std::mem::replace(&mut self.slots[slot as usize], Slot::Full(ev)) {
                Slot::Free(next) => self.free_head = next,
                Slot::Full(_) => unreachable!("free list pointed at an occupied slot"),
            }
            slot
        } else {
            assert!(self.slots.len() < NIL as usize, "event arena overflow");
            self.slots.push(Slot::Full(ev));
            (self.slots.len() - 1) as u32
        }
    }

    /// Remove and return the payload at `slot`, recycling the slot.
    pub fn remove(&mut self, slot: u32) -> E {
        match std::mem::replace(&mut self.slots[slot as usize], Slot::Free(self.free_head)) {
            Slot::Full(ev) => {
                self.free_head = slot;
                self.len -= 1;
                ev
            }
            Slot::Free(_) => panic!("double free of arena slot {slot}"),
        }
    }

    /// Read the payload at `slot` without removing it (for snapshots).
    pub fn get(&self, slot: u32) -> &E {
        match &self.slots[slot as usize] {
            Slot::Full(ev) => ev,
            Slot::Free(_) => panic!("read of freed arena slot {slot}"),
        }
    }

    /// Number of live payloads.
    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Drop every payload and reset the slab (capacity retained).
    pub fn clear(&mut self) {
        self.slots.clear();
        self.free_head = NIL;
        self.len = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slots_are_recycled_not_grown() {
        let mut a: Arena<String> = Arena::default();
        let s0 = a.insert("a".into());
        let s1 = a.insert("b".into());
        assert_eq!(a.len(), 2);
        assert_eq!(a.remove(s0), "a");
        // The freed slot is reused before the slab grows.
        let s2 = a.insert("c".into());
        assert_eq!(s2, s0);
        assert_eq!(a.get(s1), "b");
        assert_eq!(a.get(s2), "c");
        assert_eq!(a.remove(s1), "b");
        assert_eq!(a.remove(s2), "c");
        assert!(a.is_empty());
        // Free-list order: last freed, first reused.
        assert_eq!(a.insert("d".into()), s2);
        assert_eq!(a.insert("e".into()), s1);
    }

    #[test]
    #[should_panic(expected = "double free")]
    fn double_free_panics() {
        let mut a: Arena<u8> = Arena::default();
        let s = a.insert(1);
        a.remove(s);
        a.remove(s);
    }
}
