//! A hierarchical time wheel (calendar queue) over the packed `(time, seq)`
//! key: O(1) amortized insert and pop for the delay distributions the
//! training runtimes produce, with an overflow heap that re-buckets
//! far-future events as the horizon slides forward.
//!
//! # Geometry
//!
//! `LEVELS` levels of `SLOTS` slots each; a level-`l` slot spans
//! `SLOTS^l` microseconds and slot indices are absolute
//! (`(time >> SHIFT·l) & SLOT_MASK`), so the wheel as a whole covers
//! `SLOTS^LEVELS` µs (2^39 µs ≈ 6.4 days of simulated time) ahead of the
//! cursor. Events beyond that horizon go to an overflow binary heap keyed
//! by the full `u128` and migrate into the wheel once the cursor gets
//! close enough. The 8192-slot radix makes level 1 span 67 simulated
//! seconds, so the millisecond-to-minute delays the training runtimes
//! produce land at level 1 in one hop and cascade at most once.
//!
//! # The sorted run and the staging buffers
//!
//! The cursor only enters a level-`l` window after cascading that window's
//! entries into the levels below, and every pop is served from the **run**
//! — a single sorted buffer holding exactly the entries of the currently
//! open level-1 slot (an 8 ms span). That makes ordering cheap and local:
//!
//! 1. A far push appends to the level's unsorted **staging buffer** and
//!    sets the slot's occupancy bit — two cache-hot touches, no
//!    random-indexed bucket write. When a window opens, its entries are
//!    partitioned out of the staging buffer in one sequential scan; if a
//!    scan yields too few entries (the staged set spreads across many
//!    windows), the buffer is spilled once into per-slot buckets so scans
//!    stay amortized O(1) per event on every workload shape.
//! 2. A level-1 slot is one run window wide: when the cursor reaches it,
//!    the extracted entries are sorted once (`sort_unstable` — keys are
//!    unique `(time, seq)` pairs) and become the new run wholesale.
//!    Cascading a level ≥ 2 window redistributes its entries *by time* to
//!    the levels below, so no order is maintained above the run.
//! 3. Direct pushes that land inside the open window binary-insert into
//!    the run; the common engine case — same-instant follow-ups carrying
//!    the globally monotone `seq` — hits the O(1) append fast path.
//!
//! Popping therefore yields strictly ascending keys, which is exactly the
//! engine's contract, while the per-event footprint stays a handful of hot
//! buffers rather than thousands of cold buckets.

use super::EventQueue;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};
/// log2 of the slot count per level.
const SHIFT: u32 = 13;
/// Slots per level; `WORDS` `u64` bitmap words track slot occupancy.
const SLOTS: usize = 1 << SHIFT;
const SLOT_MASK: u64 = (SLOTS - 1) as u64;
const WORDS: usize = SLOTS / 64;
/// Wheel depth: covers `2^(13·3)` µs ≈ 6.4 simulated days ahead of the
/// cursor. Anything farther (liveness probes, `u64::MAX` sentinels) rides
/// the overflow heap.
const LEVELS: usize = 3;

#[derive(Debug, Clone)]
struct OverflowEntry<E> {
    key: u128,
    ev: E,
}

impl<E> PartialEq for OverflowEntry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
    }
}
impl<E> Eq for OverflowEntry<E> {}
impl<E> Ord for OverflowEntry<E> {
    #[inline]
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key.cmp(&other.key)
    }
}
impl<E> PartialOrd for OverflowEntry<E> {
    #[inline]
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Hierarchical time-wheel implementation of [`EventQueue`].
#[derive(Debug, Clone)]
pub struct WheelQueue<E> {
    /// The open level-1 window: entries within 8 ms of the cursor, in
    /// ascending key order, popped from the front (see module docs).
    run: VecDeque<(u128, E)>,
    /// Per-level unsorted staging buffer (index `level - 1`): far pushes
    /// append here — one hot buffer per level instead of a random-indexed
    /// bucket write — and a window's entries are partitioned out when it
    /// cascades open. See `refill_run` for the flush fallback that keeps
    /// scan cost amortized O(1) per event on low-yield workloads.
    stage: Vec<Vec<(u128, E)>>,
    /// Scratch buffer for the staging partition (kept for its capacity).
    spare: Vec<(u128, E)>,
    /// Flat `(LEVELS-1) × SLOTS` upper-level bucket array, indexed
    /// `(level - 1) * SLOTS + slot`: the flush target for low-yield staging
    /// buffers, drained together with the staged entries when the slot's
    /// window cascades open.
    far: Vec<Vec<(u128, E)>>,
    /// Bitmap of non-empty slots per level 1..`LEVELS` (index `level - 1`).
    occupied: [[u64; WORDS]; LEVELS - 1],
    /// Cursor: the wheel's current time in µs. Only advances.
    elapsed: u64,
    /// Events beyond the wheel horizon, ordered by full key.
    overflow: BinaryHeap<Reverse<OverflowEntry<E>>>,
    /// Cached `overflow` head key (`u128::MAX` when empty), so the hot
    /// pop/peek path compares a field instead of peeking the heap twice.
    oflow_head: u128,
    len: usize,
}

impl<E> Default for WheelQueue<E> {
    fn default() -> Self {
        WheelQueue {
            run: VecDeque::new(),
            stage: (0..LEVELS - 1).map(|_| Vec::new()).collect(),
            spare: Vec::new(),
            far: (0..(LEVELS - 1) * SLOTS).map(|_| Vec::new()).collect(),
            occupied: [[0; WORDS]; LEVELS - 1],
            elapsed: 0,
            overflow: BinaryHeap::new(),
            oflow_head: u128::MAX,
            len: 0,
        }
    }
}

#[inline]
fn time_of(key: u128) -> u64 {
    (key >> 64) as u64
}

impl<E> WheelQueue<E> {
    /// The level whose bit range holds the highest bit where `time` differs
    /// from the cursor, or `LEVELS` for beyond-horizon times.
    #[inline]
    fn level_of(&self, time: u64) -> usize {
        let masked = time ^ self.elapsed;
        if masked == 0 {
            return 0;
        }
        ((63 - masked.leading_zeros()) / SHIFT) as usize
    }

    #[inline]
    fn slot_of(level: usize, time: u64) -> usize {
        ((time >> (SHIFT * level as u32)) & SLOT_MASK) as usize
    }

    /// Insert one entry into the sorted run. Appends are the common case:
    /// direct pushes carry the engine's globally monotone `seq`, so a
    /// same-window push is almost always the largest key so far. The binary
    /// insert covers cascade redistribution and overflow migrations, which
    /// arrive in arbitrary order.
    #[inline]
    fn insert_run(&mut self, key: u128, ev: E) {
        match self.run.back() {
            Some(&(last, _)) if last > key => {
                let idx = self.run.partition_point(|&(k, _)| k < key);
                self.run.insert(idx, (key, ev));
            }
            _ => self.run.push_back((key, ev)),
        }
    }

    /// Place one entry at its level relative to the current cursor (caller
    /// guarantees `time_of(key) >= self.elapsed` and in-horizon): the run
    /// if it falls inside the open window, the level's staging buffer
    /// otherwise.
    #[inline]
    fn place(&mut self, key: u128, ev: E) {
        let level = self.level_of(time_of(key));
        self.place_at(level, key, ev);
    }

    /// `place` with the level precomputed (callers on the push path already
    /// have it from the horizon check).
    #[inline]
    fn place_at(&mut self, level: usize, key: u128, ev: E) {
        debug_assert!(level < LEVELS);
        debug_assert_eq!(level, self.level_of(time_of(key)));
        if level == 0 {
            self.insert_run(key, ev);
        } else {
            // Far pushes touch two hot locations — the level's staging
            // buffer tail and a bit in the (one-KiB-per-level) occupancy
            // bitmap — instead of a random slot in the bucket array. The
            // partition to per-slot order is deferred to window opening.
            let slot = Self::slot_of(level, time_of(key));
            self.occupied[level - 1][slot >> 6] |= 1 << (slot & 63);
            self.stage[level - 1].push((key, ev));
        }
    }

    /// Migrate overflow entries that now fit the horizon into the wheel.
    /// Stops at the first head that can't be placed: either still beyond
    /// the horizon, or behind the cursor (a clamped push that raced a
    /// cursor-advancing peek) — both are handled by the full-key comparison
    /// in `pop`/`peek_key` instead.
    #[inline]
    fn rebucket_overflow(&mut self) {
        // For an at-or-ahead-of-cursor time, "inside the horizon" is exactly
        // "at most the last instant of the cursor's top-level rotation", so
        // the common all-far case is one OR and one compare. (`oflow_head ==
        // u128::MAX` when empty falls out the same way.)
        const HORIZON_MASK: u64 = (1u64 << (SHIFT * LEVELS as u32)) - 1;
        while time_of(self.oflow_head) <= self.elapsed | HORIZON_MASK {
            if self.overflow.is_empty() {
                // The `u128::MAX` empty sentinel passes the horizon check
                // once the cursor reaches the topmost rotation.
                break;
            }
            let t = time_of(self.oflow_head);
            if t < self.elapsed {
                // Behind-cursor stray: settled by key comparison instead.
                break;
            }
            let Reverse(e) = self.overflow.pop().expect("cached head must pop");
            self.oflow_head = self.overflow.peek().map_or(u128::MAX, |Reverse(h)| h.key);
            self.place(e.key, e.ev);
        }
    }

    /// Lowest occupied slot at or after `cur` in a level's bitmap, if any.
    /// Slots behind the cursor belong to the *next* rotation and map to a
    /// higher level until then, so they are ignored.
    #[inline]
    fn first_ahead(bitmap: &[u64; WORDS], cur: usize) -> Option<usize> {
        let word = cur >> 6;
        let masked = bitmap[word] & (!0u64 << (cur & 63));
        if masked != 0 {
            return Some((word << 6) | masked.trailing_zeros() as usize);
        }
        for (w, &bits) in bitmap.iter().enumerate().skip(word + 1) {
            if bits != 0 {
                return Some((w << 6) | bits.trailing_zeros() as usize);
            }
        }
        None
    }

    /// Cascade far buckets until the run holds the earliest pending wheel
    /// entries, or return with it empty if the wheel proper (not counting
    /// overflow) is drained. Advances the cursor to each window being
    /// opened, never past a pending entry — and never past `limit_time`:
    /// a window whose base lies beyond it stays closed, so a deadline-
    /// bounded pop that comes up empty leaves the cursor at the engine's
    /// clock instead of jumping it to the next event. (Otherwise every
    /// event scheduled after a drained `run_until` would land behind the
    /// cursor and detour through the overflow heap.) Caller ensures the
    /// run is empty.
    fn refill_run(&mut self, limit_time: u64) {
        debug_assert!(self.run.is_empty());
        'search: loop {
            for level in 1..LEVELS {
                let cur = Self::slot_of(level, self.elapsed);
                let Some(slot) = Self::first_ahead(&self.occupied[level - 1], cur) else {
                    continue;
                };
                // slot == cursor would mean a window we entered without
                // cascading — impossible (entries differ from `elapsed`
                // inside the level's bit range, and cascades clear the slot
                // on entry).
                debug_assert!(slot > cur);
                // Open the window: jump the cursor to its base and cascade
                // the bucket into the levels below.
                let shift = SHIFT * level as u32;
                let window = 1u64 << (shift + SHIFT);
                let base = (self.elapsed & !(window - 1)) | ((slot as u64) << shift);
                debug_assert!(base >= self.elapsed);
                if base > limit_time {
                    // Every wheel entry is at or after this base, hence past
                    // the caller's deadline: refuse without touching state.
                    return;
                }
                self.elapsed = base;
                self.occupied[level - 1][slot >> 6] &= !(1 << (slot & 63));
                let mut bucket = std::mem::take(&mut self.far[(level - 1) * SLOTS + slot]);
                // Partition the level's staging buffer: this window's
                // entries join the bucket, the rest compact back (swapped
                // through `spare`, so both allocations stay warm).
                let stage = &mut self.stage[level - 1];
                let scanned = stage.len();
                let before = bucket.len();
                for (key, ev) in stage.drain(..) {
                    if time_of(key) >> shift == base >> shift {
                        bucket.push((key, ev));
                    } else {
                        self.spare.push((key, ev));
                    }
                }
                std::mem::swap(stage, &mut self.spare);
                // Low scan yield means the staged entries spread across
                // many windows — rescanning them at every refill would
                // cost O(stage) per window opened. Spill them to their
                // per-slot buckets once (occupancy bits are already set);
                // each entry is spilled at most once, so scans stay
                // amortized O(1) per event on every workload shape.
                let extracted = bucket.len() - before;
                if scanned > 64 && scanned > 4 * extracted {
                    for (key, ev) in stage.drain(..) {
                        let s = Self::slot_of(level, time_of(key));
                        self.far[(level - 1) * SLOTS + s].push((key, ev));
                    }
                }
                if level == 1 {
                    // One level-1 slot == one run window: sort once (keys
                    // are unique, `sort_unstable` is deterministic) and the
                    // bucket *becomes* the run — `VecDeque::from(Vec)` takes
                    // the buffer without copying, and the spent run's
                    // allocation is recycled as the emptied bucket.
                    bucket.sort_unstable_by_key(|&(k, _)| k);
                    let spent = std::mem::replace(&mut self.run, VecDeque::from(bucket));
                    bucket = Vec::from(spent);
                    bucket.clear();
                } else {
                    for (key, ev) in bucket.drain(..) {
                        debug_assert!(self.level_of(time_of(key)) < level);
                        self.place(key, ev);
                    }
                }
                // Keep the (empty) bucket's capacity for future rotations.
                self.far[(level - 1) * SLOTS + slot] = bucket;
                if !self.run.is_empty() {
                    return;
                }
                continue 'search;
            }
            return;
        }
    }
    /// Rebucket, cascade, and locate the global minimum. `None` iff the
    /// queue is empty. Remaining overflow keys normally exceed every wheel
    /// key (they differ from the cursor at a higher bit than any in-horizon
    /// time), except for behind-cursor strays — the full-key comparison
    /// settles both cases exactly.
    #[inline]
    fn resolve_front(&mut self) -> Option<(u128, bool)> {
        self.resolve_front_within(u64::MAX)
    }

    /// [`WheelQueue::resolve_front`] that only cascades windows whose base
    /// is at most `limit_time`. May return `None` with entries still
    /// pending when all of them lie past the limit; when it does return a
    /// front, that front is the exact global minimum.
    #[inline]
    fn resolve_front_within(&mut self, limit_time: u64) -> Option<(u128, bool)> {
        if self.len == 0 {
            return None;
        }
        self.rebucket_overflow();
        if self.run.is_empty() {
            self.refill_run(limit_time);
        }
        match self.run.front() {
            Some(&(w, _)) if self.oflow_head < w => Some((self.oflow_head, true)),
            Some(&(w, _)) => Some((w, false)),
            // Run still empty: everything pending lives in overflow, or a
            // bounded refill refused to open a window past the limit. A
            // beyond-horizon overflow head exceeds every wheel key, so
            // returning it keeps the caller's key-vs-limit check exact;
            // behind-cursor strays (below every wheel key) must surface
            // here too.
            None if self.oflow_head != u128::MAX => Some((self.oflow_head, true)),
            None => None,
        }
    }

    /// Remove the front entry located by [`WheelQueue::resolve_front`].
    #[inline]
    fn take_front(&mut self, from_overflow: bool) -> (u128, E) {
        self.len -= 1;
        if from_overflow {
            let Reverse(e) = self.overflow.pop().expect("resolved front must pop");
            self.oflow_head = self.overflow.peek().map_or(u128::MAX, |Reverse(h)| h.key);
            self.elapsed = self.elapsed.max(time_of(e.key));
            (e.key, e.ev)
        } else {
            let (key, ev) = self.run.pop_front().expect("resolved front must pop");
            self.elapsed = time_of(key);
            (key, ev)
        }
    }
}

impl<E> EventQueue<E> for WheelQueue<E> {
    fn push(&mut self, key: u128, ev: E) {
        let time = time_of(key);
        self.len += 1;
        // Behind-cursor pushes (the engine clamps to its own clock, which
        // can trail the wheel cursor right after a cursor-advancing peek)
        // ride the overflow heap so the level math never sees them.
        let level = if time < self.elapsed { LEVELS } else { self.level_of(time) };
        if level >= LEVELS {
            self.oflow_head = self.oflow_head.min(key);
            self.overflow.push(Reverse(OverflowEntry { key, ev }));
        } else {
            self.place_at(level, key, ev);
        }
    }

    fn pop(&mut self) -> Option<(u128, E)> {
        let (_, src) = self.resolve_front()?;
        Some(self.take_front(src))
    }

    fn peek_key(&mut self) -> Option<u128> {
        self.resolve_front().map(|(key, _)| key)
    }

    fn pop_at_most(&mut self, limit: u128) -> Option<(u128, E)> {
        // Bounding the refill by the deadline keeps a refusal cheap (a
        // bitmap scan, no window cascade) and, crucially, keeps the cursor
        // from outrunning the engine clock between `run_until` calls.
        let (key, src) = self.resolve_front_within(time_of(limit))?;
        if key > limit {
            return None;
        }
        Some(self.take_front(src))
    }

    fn len(&self) -> usize {
        self.len
    }

    fn clear(&mut self) {
        self.run.clear();
        for staged in &mut self.stage {
            staged.clear();
        }
        for bucket in &mut self.far {
            bucket.clear();
        }
        self.occupied = [[0; WORDS]; LEVELS - 1];
        self.overflow.clear();
        self.oflow_head = u128::MAX;
        self.len = 0;
        // `elapsed` is kept: the engine's clock survives a clear.
    }

    fn entries(&self) -> Vec<(u128, E)>
    where
        E: Clone,
    {
        let mut out = Vec::with_capacity(self.len);
        out.extend(self.run.iter().cloned());
        for staged in &self.stage {
            out.extend(staged.iter().cloned());
        }
        for bucket in &self.far {
            out.extend(bucket.iter().cloned());
        }
        out.extend(self.overflow.iter().map(|Reverse(e)| (e.key, e.ev.clone())));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(t: u64, s: u64) -> u128 {
        (u128::from(t) << 64) | u128::from(s)
    }

    #[test]
    fn pops_ascending_across_levels_and_overflow() {
        let mut q: WheelQueue<usize> = WheelQueue::default();
        let times = [
            0,
            1,
            63,
            64,
            65,
            4095,
            4096,
            1 << 18,
            (1 << 40) - 1,
            1 << 40, // beyond horizon at push time
            1 << 44,
            u64::MAX,
        ];
        for (i, &t) in times.iter().enumerate() {
            q.push(key(t, i as u64), i);
        }
        let mut popped = Vec::new();
        while let Some((k, _)) = q.pop() {
            popped.push(time_of(k));
        }
        let mut sorted = times.to_vec();
        sorted.sort_unstable();
        assert_eq!(popped, sorted);
    }

    #[test]
    fn fifo_is_preserved_across_cascades() {
        let mut q: WheelQueue<u64> = WheelQueue::default();
        // Two events at the same far instant pushed before and after an
        // intervening pop that advances the cursor across level boundaries.
        q.push(key(100_000, 0), 0);
        q.push(key(50, 1), 1);
        assert_eq!(q.pop(), Some((key(50, 1), 1)));
        q.push(key(100_000, 2), 2);
        q.push(key(100_000, 3), 3);
        assert_eq!(q.pop(), Some((key(100_000, 0), 0)));
        assert_eq!(q.pop(), Some((key(100_000, 2), 2)));
        assert_eq!(q.pop(), Some((key(100_000, 3), 3)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn overflow_migrates_in_seq_order() {
        let mut q: WheelQueue<u64> = WheelQueue::default();
        let horizon = 1u64 << (SHIFT * LEVELS as u32);
        let far = horizon + 100; // beyond horizon from cursor 0
        q.push(key(far, 0), 0);
        q.push(key(far + 1, 1), 1);
        // Advance the cursor into the far window, then push a same-instant
        // event with a later seq: it must pop *after* the migrated one.
        q.push(key(horizon, 2), 2);
        assert_eq!(q.pop(), Some((key(horizon, 2), 2)));
        q.push(key(far, 3), 3);
        assert_eq!(q.pop(), Some((key(far, 0), 0)));
        assert_eq!(q.pop(), Some((key(far, 3), 3)));
        assert_eq!(q.pop(), Some((key(far + 1, 1), 1)));
    }

    #[test]
    fn behind_cursor_push_still_pops_in_key_order() {
        let mut q: WheelQueue<u64> = WheelQueue::default();
        q.push(key(1000, 0), 0);
        // A peek may cascade the cursor toward the pending entry...
        assert_eq!(q.peek_key(), Some(key(1000, 0)));
        // ...after which a clamped push behind the cursor must still pop
        // first (its key is smaller).
        q.push(key(100, 1), 1);
        q.push(key(100, 2), 2);
        assert_eq!(q.pop(), Some((key(100, 1), 1)));
        assert_eq!(q.pop(), Some((key(100, 2), 2)));
        assert_eq!(q.pop(), Some((key(1000, 0), 0)));
    }

    #[test]
    fn out_of_order_same_instant_pushes_pop_sorted() {
        // Far buckets are unsorted, so an adversarial push order (descending
        // seq at one far instant, interleaved with other times) must be
        // repaired by the sort when the window cascades open.
        let mut q: WheelQueue<u64> = WheelQueue::default();
        q.push(key(100_000, 7), 7);
        q.push(key(90_000, 5), 5);
        q.push(key(100_000, 3), 3);
        q.push(key(100_000, 6), 6);
        q.push(key(90_000, 1), 1);
        let mut popped = Vec::new();
        while let Some((k, _)) = q.pop() {
            popped.push(k);
        }
        assert_eq!(
            popped,
            vec![key(90_000, 1), key(90_000, 5), key(100_000, 3), key(100_000, 6), key(100_000, 7)]
        );
    }

    #[test]
    fn len_and_entries_account_for_overflow() {
        let mut q: WheelQueue<u8> = WheelQueue::default();
        q.push(key(5, 0), 10);
        q.push(key(u64::MAX, 1), 20);
        assert_eq!(q.len(), 2);
        let mut entries = q.entries();
        entries.sort_unstable_by_key(|&(k, _)| k);
        assert_eq!(entries, vec![(key(5, 0), 10), (key(u64::MAX, 1), 20)]);
        q.clear();
        assert_eq!(q.len(), 0);
        assert_eq!(q.pop(), None);
    }
}
