//! The binary-heap event queue — the original engine queue, kept as the
//! reference oracle the wheel is differentially tested against.

use super::EventQueue;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

#[derive(Debug, Clone)]
struct Entry<E> {
    key: u128,
    ev: E,
}

// Ordered by the packed key only; the payload never participates, so `E`
// needs no `Eq`/`Ord` bounds.
impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
    }
}
impl<E> Eq for Entry<E> {}
impl<E> Ord for Entry<E> {
    #[inline]
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key.cmp(&other.key)
    }
}
impl<E> PartialOrd for Entry<E> {
    #[inline]
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Min-queue over the packed `(time, seq)` key backed by `BinaryHeap`:
/// O(log n) push/pop, no constraints on the key distribution.
#[derive(Debug, Clone)]
pub struct HeapQueue<E> {
    heap: BinaryHeap<Reverse<Entry<E>>>,
}

impl<E> Default for HeapQueue<E> {
    fn default() -> Self {
        HeapQueue { heap: BinaryHeap::new() }
    }
}

impl<E> EventQueue<E> for HeapQueue<E> {
    #[inline]
    fn push(&mut self, key: u128, ev: E) {
        self.heap.push(Reverse(Entry { key, ev }));
    }

    #[inline]
    fn pop(&mut self) -> Option<(u128, E)> {
        self.heap.pop().map(|Reverse(e)| (e.key, e.ev))
    }

    #[inline]
    fn peek_key(&mut self) -> Option<u128> {
        self.heap.peek().map(|Reverse(e)| e.key)
    }

    #[inline]
    fn pop_at_most(&mut self, limit: u128) -> Option<(u128, E)> {
        if self.heap.peek()?.0.key <= limit {
            self.pop()
        } else {
            None
        }
    }

    fn len(&self) -> usize {
        self.heap.len()
    }

    fn clear(&mut self) {
        self.heap.clear();
    }

    fn entries(&self) -> Vec<(u128, E)>
    where
        E: Clone,
    {
        self.heap.iter().map(|Reverse(e)| (e.key, e.ev.clone())).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_key_order() {
        let mut q: HeapQueue<&str> = HeapQueue::default();
        q.push(2 << 64, "b");
        q.push((1 << 64) | 1, "a2");
        q.push(1 << 64, "a1");
        assert_eq!(q.peek_key(), Some(1 << 64));
        assert_eq!(q.pop(), Some((1 << 64, "a1")));
        assert_eq!(q.pop(), Some(((1 << 64) | 1, "a2")));
        assert_eq!(q.pop(), Some((2 << 64, "b")));
        assert_eq!(q.pop(), None);
    }
}
