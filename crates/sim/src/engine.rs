//! The discrete-event engine: a priority queue of timestamped events with a
//! FIFO tiebreak so that events scheduled at the same instant fire in the order
//! they were scheduled. This makes every run fully deterministic.
//!
//! The ordering key `(SimTime, seq)` is packed into a single `u128` — time in
//! the high 64 bits, insertion sequence in the low 64 — so any queue that pops
//! ascending keys reproduces the exact schedule. The queue itself is pluggable
//! ([`crate::queue::EventQueue`]): a hierarchical time wheel by default, the
//! original binary heap as the reference oracle. Payloads live in an arena
//! slab ([`crate::queue::Arena`]) and only `u32` slot handles move through the
//! queue, so the hot schedule/step path never allocates per event and the
//! payload type needs no trait bounds at all.

use crate::queue::{Arena, EventQueue, WheelQueue};
use crate::time::{SimDuration, SimTime};
use antdt_telemetry::Counter;

/// A deterministic discrete-event engine over an arbitrary event type `E`.
///
/// The second parameter picks the queue implementation; the default
/// [`WheelQueue`] is byte-for-byte equivalent to
/// [`HeapQueue`](crate::queue::HeapQueue) (the differential tests in
/// `crate::queue` and the golden job fixtures both pin this).
///
/// ```
/// use antdt_sim::{Engine, SimDuration, SimTime};
///
/// let mut eng: Engine<&str> = Engine::new();
/// eng.schedule_after(SimDuration::from_secs(2), "b");
/// eng.schedule_after(SimDuration::from_secs(1), "a");
/// let mut seen = Vec::new();
/// eng.run(|eng, ev| {
///     seen.push((eng.now(), ev));
/// });
/// assert_eq!(seen[0].1, "a");
/// assert_eq!(seen[1], (SimTime::from_secs_f64(2.0), "b"));
/// ```
#[derive(Debug)]
pub struct Engine<E, Q: EventQueue<u32> = WheelQueue<u32>> {
    queue: Q,
    arena: Arena<E>,
    now: SimTime,
    seq: u64,
    processed: u64,
    /// Events whose requested instant was in the past (clamped to `now`).
    clamped: u64,
    /// Optional telemetry counters: (events scheduled, events processed).
    counters: Option<(Counter, Counter)>,
}

/// A point-in-time capture of an engine: every pending event (with its exact
/// ordering key) plus the clock, sequence and progress counters. Feed it to
/// [`Engine::fork`] to resume any number of divergent futures from the same
/// prefix — the forked engines replay the identical schedule until their
/// drivers actually diverge.
#[derive(Debug, Clone)]
pub struct EngineSnapshot<E> {
    /// Pending events, ascending by packed key.
    entries: Vec<(u128, E)>,
    now: SimTime,
    seq: u64,
    processed: u64,
    clamped: u64,
}

impl<E> EngineSnapshot<E> {
    /// Number of pending events captured.
    pub fn pending(&self) -> usize {
        self.entries.len()
    }

    /// Events processed by the engine up to the capture instant.
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// The capture instant.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Estimated heap footprint of this snapshot in bytes: one packed key
    /// plus one inline payload per pending event, plus the struct itself.
    /// Payloads are measured at their inline size (`size_of::<E>()`), so
    /// payload-owned heap data is not counted — callers that cache snapshots
    /// add their own estimate for the world state the events point into.
    pub fn estimate_bytes(&self) -> usize {
        std::mem::size_of::<Self>() + self.entries.capacity() * std::mem::size_of::<(u128, E)>()
    }
}

impl<E, Q: EventQueue<u32>> Default for Engine<E, Q> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E, Q: EventQueue<u32>> Engine<E, Q> {
    pub fn new() -> Self {
        Self::with_queue(Q::default())
    }

    /// Build an engine around an explicitly-constructed queue — e.g. a
    /// [`RuntimeQueue`](crate::queue::RuntimeQueue) variant picked at job
    /// construction time.
    pub fn with_queue(queue: Q) -> Self {
        Engine {
            queue,
            arena: Arena::default(),
            now: SimTime::ZERO,
            seq: 0,
            processed: 0,
            clamped: 0,
            counters: None,
        }
    }

    /// Attach telemetry counters: `scheduled` increments on every
    /// [`Engine::schedule`], `processed` on every [`Engine::step`]. Counting
    /// never affects event ordering, so attaching telemetry cannot perturb a
    /// deterministic run.
    pub fn attach_telemetry(&mut self, scheduled: Counter, processed: Counter) {
        self.counters = Some((scheduled, processed));
    }

    /// Current simulated instant (the timestamp of the event being handled).
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events handled so far.
    #[inline]
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Number of events still pending.
    #[inline]
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// The underlying queue (e.g. to inspect a runtime-selected kind when
    /// forking).
    pub fn queue(&self) -> &Q {
        &self.queue
    }

    /// Number of events that were scheduled at an instant already in the
    /// past and clamped to `now`. Scheduling into the past is a logic error
    /// in the driving runtime; the runtimes assert this stays zero.
    #[inline]
    pub fn clamped(&self) -> u64 {
        self.clamped
    }

    /// Estimated bytes a [`Engine::snapshot`] taken right now would occupy
    /// (see [`EngineSnapshot::estimate_bytes`]) — the sizing input for
    /// snapshot caches that must budget before actually capturing.
    pub fn snapshot_bytes_estimate(&self) -> usize {
        std::mem::size_of::<EngineSnapshot<E>>()
            + self.queue.len() * std::mem::size_of::<(u128, E)>()
    }

    /// Schedule `ev` at absolute instant `at`. Scheduling in the past is a logic
    /// error in the driving runtime; the engine clamps to `now` rather than
    /// time-travelling (and counts the clamp — see [`Engine::clamped`]), so the
    /// clock stays monotonic.
    pub fn schedule(&mut self, at: SimTime, ev: E) {
        if at < self.now {
            self.clamped += 1;
        }
        let at = at.max(self.now);
        let key = (u128::from(at.0) << 64) | u128::from(self.seq);
        let slot = self.arena.insert(ev);
        self.queue.push(key, slot);
        self.seq += 1;
        if let Some((scheduled, _)) = &self.counters {
            scheduled.inc();
        }
    }

    /// Schedule `ev` to fire `delay` after the current instant.
    pub fn schedule_after(&mut self, delay: SimDuration, ev: E) {
        self.schedule(self.now + delay, ev);
    }

    /// Pop the next event, advancing the clock. Returns `None` when drained.
    pub fn step(&mut self) -> Option<E> {
        let (key, slot) = self.queue.pop()?;
        let at = SimTime((key >> 64) as u64);
        debug_assert!(at >= self.now, "event queue produced non-monotonic time");
        self.now = at;
        self.processed += 1;
        if let Some((_, processed)) = &self.counters {
            processed.inc();
        }
        Some(self.arena.remove(slot))
    }

    /// Run to quiescence. The handler receives `&mut Engine` so it can schedule
    /// follow-up events, and the event itself by value.
    pub fn run(&mut self, mut handler: impl FnMut(&mut Self, E)) {
        while let Some(ev) = self.step() {
            handler(self, ev);
        }
    }

    /// Run until the clock would pass `deadline` (events at exactly `deadline`
    /// still fire). Returns `true` if the queue drained before the deadline.
    ///
    /// Each iteration is a single fused [`EventQueue::pop_at_most`] — not a
    /// peek followed by a pop — so the queue resolves its front entry once
    /// per event. On the time wheel that halves the per-event bookkeeping;
    /// this loop is the hot path of every simulated job.
    pub fn run_until(&mut self, deadline: SimTime, mut handler: impl FnMut(&mut Self, E)) -> bool {
        // Any sequence number at `deadline` still fires: limit at seq::MAX.
        let limit = (u128::from(deadline.0) << 64) | u128::from(u64::MAX);
        while let Some((key, slot)) = self.queue.pop_at_most(limit) {
            let at = SimTime((key >> 64) as u64);
            debug_assert!(at >= self.now, "event queue produced non-monotonic time");
            self.now = at;
            self.processed += 1;
            if let Some((_, processed)) = &self.counters {
                processed.inc();
            }
            let ev = self.arena.remove(slot);
            handler(self, ev);
        }
        self.queue.is_empty()
    }

    /// Drop all pending events (used when a job finishes early, e.g. the last
    /// shard completes while stray monitor ticks are still queued).
    pub fn clear(&mut self) {
        self.queue.clear();
        self.arena.clear();
    }

    /// Capture the engine: pending events (with exact ordering keys), clock,
    /// sequence and progress counters. O(pending · log pending).
    pub fn snapshot(&self) -> EngineSnapshot<E>
    where
        E: Clone,
    {
        let mut entries: Vec<(u128, E)> = self
            .queue
            .entries()
            .into_iter()
            .map(|(key, slot)| (key, self.arena.get(slot).clone()))
            .collect();
        // Keys are unique (distinct sequence numbers), so this total order
        // is exactly the pop order.
        entries.sort_unstable_by_key(|&(key, _)| key);
        EngineSnapshot {
            entries,
            now: self.now,
            seq: self.seq,
            processed: self.processed,
            clamped: self.clamped,
        }
    }

    /// Build a fresh engine resuming from `snap`: same clock, same pending
    /// events under their original keys, same sequence counter — so the fork
    /// schedules future events with the very sequence numbers the snapshotted
    /// engine would have used, and its trace is byte-identical until the
    /// driver diverges. Telemetry counters are *not* inherited (attach new
    /// ones if the fork should count separately).
    pub fn fork(snap: &EngineSnapshot<E>) -> Self
    where
        E: Clone,
    {
        Self::fork_with_queue(snap, Q::default())
    }

    /// [`Engine::fork`], but resuming onto an explicitly-constructed queue
    /// (so a fork can keep the parent's runtime-selected queue kind).
    pub fn fork_with_queue(snap: &EngineSnapshot<E>, queue: Q) -> Self
    where
        E: Clone,
    {
        let mut eng = Self::with_queue(queue);
        for (key, ev) in &snap.entries {
            let slot = eng.arena.insert(ev.clone());
            eng.queue.push(*key, slot);
        }
        eng.now = snap.now;
        eng.seq = snap.seq;
        eng.processed = snap.processed;
        eng.clamped = snap.clamped;
        eng
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queue::HeapQueue;

    #[derive(Debug, Clone)]
    enum Ev {
        Tick(u32),
    }

    #[test]
    fn events_fire_in_time_order() {
        let mut eng: Engine<Ev> = Engine::new();
        eng.schedule(SimTime::from_secs_f64(3.0), Ev::Tick(3));
        eng.schedule(SimTime::from_secs_f64(1.0), Ev::Tick(1));
        eng.schedule(SimTime::from_secs_f64(2.0), Ev::Tick(2));
        let mut order = Vec::new();
        eng.run(|_, Ev::Tick(n)| order.push(n));
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn same_instant_is_fifo() {
        let mut eng: Engine<Ev> = Engine::new();
        for i in 0..100u32 {
            eng.schedule(SimTime::from_secs_f64(1.0), Ev::Tick(i));
        }
        let mut order = Vec::new();
        eng.run(|_, Ev::Tick(n)| order.push(n));
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn payload_needs_no_trait_bounds() {
        // `f64` is not `Eq`; closures are not `Clone`. Both must still work as
        // event payloads since ordering only ever touches the packed key.
        let mut eng: Engine<f64> = Engine::new();
        eng.schedule(SimTime::from_secs_f64(2.0), 2.5);
        eng.schedule(SimTime::from_secs_f64(1.0), f64::NAN);
        let mut seen = Vec::new();
        eng.run(|_, v| seen.push(v));
        assert!(seen[0].is_nan());
        assert_eq!(seen[1], 2.5);
    }

    #[test]
    fn packed_key_preserves_time_then_fifo_order_at_extremes() {
        let mut eng: Engine<u32> = Engine::new();
        eng.schedule(SimTime(u64::MAX), 3);
        eng.schedule(SimTime(u64::MAX), 4);
        eng.schedule(SimTime::ZERO, 1);
        eng.schedule(SimTime::ZERO, 2);
        let mut order = Vec::new();
        eng.run(|_, n| order.push(n));
        assert_eq!(order, vec![1, 2, 3, 4]);
        assert_eq!(eng.now(), SimTime(u64::MAX));
    }

    #[test]
    fn scheduling_in_past_clamps_to_now_and_counts() {
        let mut eng: Engine<Ev> = Engine::new();
        eng.schedule(SimTime::from_secs_f64(5.0), Ev::Tick(0));
        assert_eq!(eng.clamped(), 0);
        let mut times = Vec::new();
        eng.run(|eng, Ev::Tick(n)| {
            if n == 0 {
                eng.schedule(SimTime::from_secs_f64(1.0), Ev::Tick(1));
            }
            times.push((n, eng.now()));
        });
        assert_eq!(times[1], (1, SimTime::from_secs_f64(5.0)));
        assert_eq!(eng.clamped(), 1);
    }

    #[test]
    fn cascading_events_from_handler() {
        let mut eng: Engine<Ev> = Engine::new();
        eng.schedule_after(SimDuration::from_secs(1), Ev::Tick(0));
        let mut count = 0;
        eng.run(|eng, Ev::Tick(n)| {
            count += 1;
            if n < 9 {
                eng.schedule_after(SimDuration::from_secs(1), Ev::Tick(n + 1));
            }
        });
        assert_eq!(count, 10);
        assert_eq!(eng.now(), SimTime::from_secs_f64(10.0));
        assert_eq!(eng.processed(), 10);
    }

    #[test]
    fn attached_counters_track_scheduled_and_processed() {
        use antdt_telemetry::MetricsRegistry;
        let reg = MetricsRegistry::new();
        let mut eng: Engine<Ev> = Engine::new();
        eng.attach_telemetry(reg.counter("sched", &[]), reg.counter("proc", &[]));
        for i in 0..4u32 {
            eng.schedule(SimTime::from_secs_f64(i as f64), Ev::Tick(i));
        }
        eng.run_until(SimTime::from_secs_f64(1.0), |_, _| {});
        assert_eq!(reg.counter("sched", &[]).get(), 4);
        assert_eq!(reg.counter("proc", &[]).get(), 2);
        eng.run(|_, _| {});
        assert_eq!(reg.counter("proc", &[]).get(), eng.processed());
    }

    #[test]
    fn run_until_stops_at_deadline() {
        let mut eng: Engine<Ev> = Engine::new();
        for i in 1..=10u32 {
            eng.schedule(SimTime::from_secs_f64(i as f64), Ev::Tick(i));
        }
        let mut seen = 0;
        let drained = eng.run_until(SimTime::from_secs_f64(5.0), |_, _| seen += 1);
        assert!(!drained);
        assert_eq!(seen, 5);
        assert_eq!(eng.pending(), 5);
        let drained = eng.run_until(SimTime::MAX, |_, _| seen += 1);
        assert!(drained);
        assert_eq!(seen, 10);
    }

    /// The same self-feeding workload must produce the same trace on the
    /// wheel (default) and the heap oracle.
    #[test]
    fn wheel_and_heap_engines_are_trace_identical() {
        fn drive<Q: EventQueue<u32>>(mut eng: Engine<u64, Q>) -> Vec<(SimTime, u64)> {
            let mut state = 12345u64;
            for i in 0..64 {
                eng.schedule(SimTime(i * 37), i);
            }
            let mut trace = Vec::new();
            eng.run(|eng, v| {
                trace.push((eng.now(), v));
                if trace.len() < 5_000 {
                    state = state.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(v);
                    let delay = state % 100_000;
                    eng.schedule_after(SimDuration(delay), state);
                }
            });
            trace
        }
        let wheel = drive(Engine::<u64, WheelQueue<u32>>::new());
        let heap = drive(Engine::<u64, HeapQueue<u32>>::new());
        assert_eq!(wheel.len(), heap.len());
        assert_eq!(wheel, heap);
    }

    #[test]
    fn snapshot_fork_replays_identical_suffix() {
        fn feed(eng: &mut Engine<u32>, n: u32) {
            if n < 40 {
                eng.schedule_after(SimDuration((n as u64 * 733) % 977 + 1), n + 1);
                if n.is_multiple_of(3) {
                    eng.schedule_after(SimDuration(5), 1000 + n);
                }
            }
        }
        // Reference: run straight through, recording the tail after step 10.
        let mut reference = Engine::<u32>::new();
        reference.schedule(SimTime::ZERO, 0);
        let mut ref_tail = Vec::new();
        let mut steps = 0;
        reference.run(|eng, n| {
            steps += 1;
            if steps > 10 {
                ref_tail.push((eng.now(), n));
            }
            feed(eng, n);
        });

        // Forked: stop after 10 steps, snapshot, fork, replay the suffix.
        let mut prefix = Engine::<u32>::new();
        prefix.schedule(SimTime::ZERO, 0);
        for _ in 0..10 {
            let n = prefix.step().unwrap();
            feed(&mut prefix, n);
        }
        let snap = prefix.snapshot();
        assert_eq!(snap.processed(), 10);
        assert_eq!(snap.now(), prefix.now());
        let mut fork = Engine::<u32>::fork(&snap);
        assert_eq!(fork.now(), prefix.now());
        assert_eq!(fork.pending(), prefix.pending());
        let mut fork_tail = Vec::new();
        fork.run(|eng, n| {
            fork_tail.push((eng.now(), n));
            feed(eng, n);
        });
        assert_eq!(fork_tail, ref_tail);
        assert_eq!(fork.processed(), reference.processed());

        // The snapshotted engine is untouched and can itself continue.
        let mut orig_tail = Vec::new();
        prefix.run(|eng, n| {
            orig_tail.push((eng.now(), n));
            feed(eng, n);
        });
        assert_eq!(orig_tail, ref_tail);
    }

    #[test]
    fn fork_of_heap_snapshot_runs_on_wheel() {
        // Snapshots are queue-agnostic: capture on the heap oracle, resume
        // on the default wheel.
        let mut heap_eng = Engine::<u32, HeapQueue<u32>>::new();
        for i in 0..20 {
            heap_eng.schedule(SimTime(i * 11), i as u32);
        }
        for _ in 0..7 {
            heap_eng.step();
        }
        let snap = heap_eng.snapshot();
        let mut wheel_fork: Engine<u32> = Engine::fork(&snap);
        let mut seen = Vec::new();
        wheel_fork.run(|_, n| seen.push(n));
        assert_eq!(seen, (7..20).collect::<Vec<_>>());
        assert_eq!(wheel_fork.processed(), 20);
    }
}
