//! The discrete-event engine: a priority queue of timestamped events with a
//! FIFO tiebreak so that events scheduled at the same instant fire in the order
//! they were scheduled. This makes every run fully deterministic.
//!
//! The heap key `(SimTime, seq)` is packed into a single `u128` — time in the
//! high 64 bits, insertion sequence in the low 64 — so the hot push/pop path
//! does one integer compare instead of a lexicographic pair compare, and the
//! payload type needs no trait bounds at all.

use crate::time::{SimDuration, SimTime};
use antdt_telemetry::Counter;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

#[derive(Debug, Clone)]
struct Scheduled<E> {
    /// `(at.0 as u128) << 64 | seq`: compares exactly like `(at, seq)` because
    /// both fields are unsigned and time occupies the high bits.
    key: u128,
    ev: E,
}

impl<E> Scheduled<E> {
    #[inline]
    fn at(&self) -> SimTime {
        SimTime((self.key >> 64) as u64)
    }
}

// Ordered by the packed key only; the payload never participates, so `E` needs
// no `Eq`/`Ord` bounds.
impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
    }
}
impl<E> Eq for Scheduled<E> {}
impl<E> Ord for Scheduled<E> {
    #[inline]
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key.cmp(&other.key)
    }
}
impl<E> PartialOrd for Scheduled<E> {
    #[inline]
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// A deterministic discrete-event engine over an arbitrary event type `E`.
///
/// ```
/// use antdt_sim::{Engine, SimDuration, SimTime};
///
/// let mut eng: Engine<&str> = Engine::new();
/// eng.schedule_after(SimDuration::from_secs(2), "b");
/// eng.schedule_after(SimDuration::from_secs(1), "a");
/// let mut seen = Vec::new();
/// eng.run(|eng, ev| {
///     seen.push((eng.now(), ev));
/// });
/// assert_eq!(seen[0].1, "a");
/// assert_eq!(seen[1], (SimTime::from_secs_f64(2.0), "b"));
/// ```
#[derive(Debug)]
pub struct Engine<E> {
    queue: BinaryHeap<Reverse<Scheduled<E>>>,
    now: SimTime,
    seq: u64,
    processed: u64,
    /// Optional telemetry counters: (events scheduled, events processed).
    counters: Option<(Counter, Counter)>,
}

impl<E> Default for Engine<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Engine<E> {
    pub fn new() -> Self {
        Engine {
            queue: BinaryHeap::new(),
            now: SimTime::ZERO,
            seq: 0,
            processed: 0,
            counters: None,
        }
    }

    /// Attach telemetry counters: `scheduled` increments on every
    /// [`Engine::schedule`], `processed` on every [`Engine::step`]. Counting
    /// never affects event ordering, so attaching telemetry cannot perturb a
    /// deterministic run.
    pub fn attach_telemetry(&mut self, scheduled: Counter, processed: Counter) {
        self.counters = Some((scheduled, processed));
    }

    /// Current simulated instant (the timestamp of the event being handled).
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events handled so far.
    #[inline]
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Number of events still pending.
    #[inline]
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Schedule `ev` at absolute instant `at`. Scheduling in the past is a logic
    /// error in the driving runtime; the engine clamps to `now` rather than
    /// time-travelling, so the clock stays monotonic.
    pub fn schedule(&mut self, at: SimTime, ev: E) {
        let at = at.max(self.now);
        let key = (u128::from(at.0) << 64) | u128::from(self.seq);
        self.queue.push(Reverse(Scheduled { key, ev }));
        self.seq += 1;
        if let Some((scheduled, _)) = &self.counters {
            scheduled.inc();
        }
    }

    /// Schedule `ev` to fire `delay` after the current instant.
    pub fn schedule_after(&mut self, delay: SimDuration, ev: E) {
        self.schedule(self.now + delay, ev);
    }

    /// Pop the next event, advancing the clock. Returns `None` when drained.
    pub fn step(&mut self) -> Option<E> {
        let Reverse(s) = self.queue.pop()?;
        debug_assert!(s.at() >= self.now, "event queue produced non-monotonic time");
        self.now = s.at();
        self.processed += 1;
        if let Some((_, processed)) = &self.counters {
            processed.inc();
        }
        Some(s.ev)
    }

    /// Run to quiescence. The handler receives `&mut Engine` so it can schedule
    /// follow-up events, and the event itself by value.
    pub fn run(&mut self, mut handler: impl FnMut(&mut Self, E)) {
        while let Some(ev) = self.step() {
            handler(self, ev);
        }
    }

    /// Run until the clock would pass `deadline` (events at exactly `deadline`
    /// still fire). Returns `true` if the queue drained before the deadline.
    pub fn run_until(&mut self, deadline: SimTime, mut handler: impl FnMut(&mut Self, E)) -> bool {
        loop {
            match self.queue.peek() {
                None => return true,
                Some(Reverse(s)) if s.at() > deadline => return false,
                _ => {}
            }
            let ev = self.step().expect("peeked event must pop");
            handler(self, ev);
        }
    }

    /// Drop all pending events (used when a job finishes early, e.g. the last
    /// shard completes while stray monitor ticks are still queued).
    pub fn clear(&mut self) {
        self.queue.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug)]
    enum Ev {
        Tick(u32),
    }

    #[test]
    fn events_fire_in_time_order() {
        let mut eng = Engine::new();
        eng.schedule(SimTime::from_secs_f64(3.0), Ev::Tick(3));
        eng.schedule(SimTime::from_secs_f64(1.0), Ev::Tick(1));
        eng.schedule(SimTime::from_secs_f64(2.0), Ev::Tick(2));
        let mut order = Vec::new();
        eng.run(|_, Ev::Tick(n)| order.push(n));
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn same_instant_is_fifo() {
        let mut eng = Engine::new();
        for i in 0..100u32 {
            eng.schedule(SimTime::from_secs_f64(1.0), Ev::Tick(i));
        }
        let mut order = Vec::new();
        eng.run(|_, Ev::Tick(n)| order.push(n));
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn payload_needs_no_trait_bounds() {
        // `f64` is not `Eq`; closures are not `Clone`. Both must still work as
        // event payloads since ordering only ever touches the packed key.
        let mut eng: Engine<f64> = Engine::new();
        eng.schedule(SimTime::from_secs_f64(2.0), 2.5);
        eng.schedule(SimTime::from_secs_f64(1.0), f64::NAN);
        let mut seen = Vec::new();
        eng.run(|_, v| seen.push(v));
        assert!(seen[0].is_nan());
        assert_eq!(seen[1], 2.5);
    }

    #[test]
    fn packed_key_preserves_time_then_fifo_order_at_extremes() {
        let mut eng: Engine<u32> = Engine::new();
        eng.schedule(SimTime(u64::MAX), 3);
        eng.schedule(SimTime(u64::MAX), 4);
        eng.schedule(SimTime::ZERO, 1);
        eng.schedule(SimTime::ZERO, 2);
        let mut order = Vec::new();
        eng.run(|_, n| order.push(n));
        assert_eq!(order, vec![1, 2, 3, 4]);
        assert_eq!(eng.now(), SimTime(u64::MAX));
    }

    #[test]
    fn scheduling_in_past_clamps_to_now() {
        let mut eng = Engine::new();
        eng.schedule(SimTime::from_secs_f64(5.0), Ev::Tick(0));
        let mut times = Vec::new();
        eng.run(|eng, Ev::Tick(n)| {
            if n == 0 {
                eng.schedule(SimTime::from_secs_f64(1.0), Ev::Tick(1));
            }
            times.push((n, eng.now()));
        });
        assert_eq!(times[1], (1, SimTime::from_secs_f64(5.0)));
    }

    #[test]
    fn cascading_events_from_handler() {
        let mut eng = Engine::new();
        eng.schedule_after(SimDuration::from_secs(1), Ev::Tick(0));
        let mut count = 0;
        eng.run(|eng, Ev::Tick(n)| {
            count += 1;
            if n < 9 {
                eng.schedule_after(SimDuration::from_secs(1), Ev::Tick(n + 1));
            }
        });
        assert_eq!(count, 10);
        assert_eq!(eng.now(), SimTime::from_secs_f64(10.0));
        assert_eq!(eng.processed(), 10);
    }

    #[test]
    fn attached_counters_track_scheduled_and_processed() {
        use antdt_telemetry::MetricsRegistry;
        let reg = MetricsRegistry::new();
        let mut eng = Engine::new();
        eng.attach_telemetry(reg.counter("sched", &[]), reg.counter("proc", &[]));
        for i in 0..4u32 {
            eng.schedule(SimTime::from_secs_f64(i as f64), Ev::Tick(i));
        }
        eng.run_until(SimTime::from_secs_f64(1.0), |_, _| {});
        assert_eq!(reg.counter("sched", &[]).get(), 4);
        assert_eq!(reg.counter("proc", &[]).get(), 2);
        eng.run(|_, _| {});
        assert_eq!(reg.counter("proc", &[]).get(), eng.processed());
    }

    #[test]
    fn run_until_stops_at_deadline() {
        let mut eng = Engine::new();
        for i in 1..=10u32 {
            eng.schedule(SimTime::from_secs_f64(i as f64), Ev::Tick(i));
        }
        let mut seen = 0;
        let drained = eng.run_until(SimTime::from_secs_f64(5.0), |_, _| seen += 1);
        assert!(!drained);
        assert_eq!(seen, 5);
        assert_eq!(eng.pending(), 5);
        let drained = eng.run_until(SimTime::MAX, |_, _| seen += 1);
        assert!(drained);
        assert_eq!(seen, 10);
    }
}
