//! Small distribution toolkit (Box–Muller normal, log-normal, exponential,
//! uniform, point mass) so we stay within the allowed dependency set instead of
//! pulling `rand_distr`. All sampling goes through `rand::Rng`.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// A univariate distribution over non-negative reals, used for jitter, pending
/// times, init times and similar cost-model quantities.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Dist {
    /// Always `value`.
    Point { value: f64 },
    /// Uniform over `[lo, hi)`.
    Uniform { lo: f64, hi: f64 },
    /// Normal(mean, std), truncated below at zero.
    Normal { mean: f64, std: f64 },
    /// LogNormal with the *underlying* normal's mu/sigma.
    LogNormal { mu: f64, sigma: f64 },
    /// Exponential with the given mean (not rate).
    Exponential { mean: f64 },
}

impl Dist {
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        match *self {
            Dist::Point { value } => value,
            Dist::Uniform { lo, hi } => {
                if hi <= lo {
                    lo
                } else {
                    rng.gen_range(lo..hi)
                }
            }
            Dist::Normal { mean, std } => (mean + std * standard_normal(rng)).max(0.0),
            Dist::LogNormal { mu, sigma } => (mu + sigma * standard_normal(rng)).exp(),
            Dist::Exponential { mean } => {
                let u: f64 = rng.gen_range(f64::EPSILON..1.0);
                -mean * u.ln()
            }
        }
    }

    /// The distribution's mean (used by closed-form expectations in tests).
    pub fn mean(&self) -> f64 {
        match *self {
            Dist::Point { value } => value,
            Dist::Uniform { lo, hi } => 0.5 * (lo + hi),
            // Truncation at zero is ignored here; callers keep std << mean.
            Dist::Normal { mean, .. } => mean,
            Dist::LogNormal { mu, sigma } => (mu + 0.5 * sigma * sigma).exp(),
            Dist::Exponential { mean } => mean,
        }
    }
}

/// One draw from N(0,1) via Box–Muller (single value; the pair's sibling is
/// discarded for simplicity — sampling is far off the hot path).
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Multiplicative log-normal jitter with unit mean: `exp(sigma*Z - sigma^2/2)`.
/// `sigma = 0` returns exactly 1.0.
pub fn unit_mean_jitter<R: Rng + ?Sized>(rng: &mut R, sigma: f64) -> f64 {
    if sigma <= 0.0 {
        return 1.0;
    }
    (sigma * standard_normal(rng) - 0.5 * sigma * sigma).exp()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sample_mean(d: Dist, n: usize) -> f64 {
        let mut rng = StdRng::seed_from_u64(123);
        (0..n).map(|_| d.sample(&mut rng)).sum::<f64>() / n as f64
    }

    #[test]
    fn point_mass() {
        assert_eq!(Dist::Point { value: 3.5 }.sample(&mut StdRng::seed_from_u64(0)), 3.5);
    }

    #[test]
    fn uniform_mean_and_bounds() {
        let d = Dist::Uniform { lo: 2.0, hi: 4.0 };
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = d.sample(&mut rng);
            assert!((2.0..4.0).contains(&x));
        }
        assert!((sample_mean(d, 20_000) - 3.0).abs() < 0.02);
    }

    #[test]
    fn degenerate_uniform_returns_lo() {
        let d = Dist::Uniform { lo: 5.0, hi: 5.0 };
        assert_eq!(d.sample(&mut StdRng::seed_from_u64(0)), 5.0);
    }

    #[test]
    fn normal_mean_and_nonnegativity() {
        let d = Dist::Normal { mean: 10.0, std: 2.0 };
        let m = sample_mean(d, 20_000);
        assert!((m - 10.0).abs() < 0.1, "mean {m}");
        let d2 = Dist::Normal { mean: 0.1, std: 5.0 };
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            assert!(d2.sample(&mut rng) >= 0.0);
        }
    }

    #[test]
    fn exponential_mean() {
        let d = Dist::Exponential { mean: 4.0 };
        let m = sample_mean(d, 50_000);
        assert!((m - 4.0).abs() < 0.15, "mean {m}");
    }

    #[test]
    fn lognormal_mean_matches_closed_form() {
        let d = Dist::LogNormal { mu: 0.0, sigma: 0.5 };
        let m = sample_mean(d, 100_000);
        assert!((m - d.mean()).abs() < 0.03, "mean {m} vs {}", d.mean());
    }

    #[test]
    fn unit_jitter_has_unit_mean() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 100_000;
        let m: f64 = (0..n).map(|_| unit_mean_jitter(&mut rng, 0.2)).sum::<f64>() / n as f64;
        assert!((m - 1.0).abs() < 0.01, "mean {m}");
        assert_eq!(unit_mean_jitter(&mut rng, 0.0), 1.0);
    }
}
