//! Network cost model.
//!
//! Communication time `Tᵢᵐ` in the paper covers the worker↔server pull/push and
//! the AllReduce exchange. We model point-to-point links with latency + bandwidth
//! and an optional time-varying congestion factor (a congested server NIC is what
//! makes `KILL_RESTART` the only action that can shrink `Tᵢᵐ`).

use crate::time::SimTime;
use serde::{Deserialize, Serialize};

/// A directed link with fixed latency and bandwidth plus congestion windows.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Link {
    /// One-way latency in seconds.
    pub latency_secs: f64,
    /// Bandwidth in bytes/second.
    pub bandwidth_bps: f64,
    /// Congestion phases: `(from, to, factor ≥ 1)` multiply the transfer time.
    pub congestion: Vec<(SimTime, SimTime, f64)>,
}

impl Link {
    /// A typical datacenter link: 25 Gbit/s, 0.2 ms latency.
    pub fn datacenter() -> Self {
        Link { latency_secs: 2e-4, bandwidth_bps: 25.0e9 / 8.0, congestion: Vec::new() }
    }

    /// The paper's Cluster-B interconnect: 100 Gbit/s.
    pub fn gpu_cluster() -> Self {
        Link { latency_secs: 1e-4, bandwidth_bps: 100.0e9 / 8.0, congestion: Vec::new() }
    }

    pub fn with_congestion(mut self, from: SimTime, to: SimTime, factor: f64) -> Self {
        self.congestion.push((from, to, factor));
        self
    }

    /// Congestion factor at `now` (≥ 1).
    pub fn congestion_at(&self, now: SimTime) -> f64 {
        let mut f = 1.0;
        for &(from, to, factor) in &self.congestion {
            if now >= from && now < to {
                f *= factor.max(1.0);
            }
        }
        f
    }

    /// Time to move `bytes` over this link starting at `now`, in seconds.
    pub fn transfer_secs(&self, now: SimTime, bytes: u64) -> f64 {
        self.latency_secs + bytes as f64 / self.bandwidth_bps * self.congestion_at(now)
    }
}

/// Cost of a ring AllReduce of `bytes` gradient data over `n` ranks:
/// `2(n-1)/n * bytes / bandwidth + 2(n-1) * latency` — the standard
/// bandwidth-optimal ring (Horovod/NCCL) cost model.
pub fn ring_allreduce_secs(link: &Link, now: SimTime, n: usize, bytes: u64) -> f64 {
    if n <= 1 {
        return 0.0;
    }
    let nf = n as f64;
    let steps = 2.0 * (nf - 1.0);
    steps / nf * bytes as f64 / self_bandwidth(link, now) + steps * link.latency_secs
}

fn self_bandwidth(link: &Link, now: SimTime) -> f64 {
    link.bandwidth_bps / link.congestion_at(now)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_includes_latency_and_bandwidth() {
        let l = Link { latency_secs: 0.001, bandwidth_bps: 1_000_000.0, congestion: Vec::new() };
        let t = l.transfer_secs(SimTime::ZERO, 500_000);
        assert!((t - 0.501).abs() < 1e-9);
    }

    #[test]
    fn congestion_window_multiplies() {
        let l = Link {
            latency_secs: 0.0,
            bandwidth_bps: 1_000_000.0,
            congestion: vec![(SimTime::from_secs_f64(10.0), SimTime::from_secs_f64(20.0), 4.0)],
        };
        assert!((l.transfer_secs(SimTime::from_secs_f64(5.0), 1_000_000) - 1.0).abs() < 1e-9);
        assert!((l.transfer_secs(SimTime::from_secs_f64(15.0), 1_000_000) - 4.0).abs() < 1e-9);
        assert!((l.transfer_secs(SimTime::from_secs_f64(25.0), 1_000_000) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn allreduce_degenerate_cases() {
        let l = Link::gpu_cluster();
        assert_eq!(ring_allreduce_secs(&l, SimTime::ZERO, 1, 1 << 30), 0.0);
        assert_eq!(ring_allreduce_secs(&l, SimTime::ZERO, 0, 1 << 30), 0.0);
    }

    #[test]
    fn allreduce_scales_with_bytes_and_saturates_with_ranks() {
        let l = Link { latency_secs: 0.0, bandwidth_bps: 1e9, congestion: Vec::new() };
        let t2 = ring_allreduce_secs(&l, SimTime::ZERO, 2, 1_000_000_000);
        let t8 = ring_allreduce_secs(&l, SimTime::ZERO, 8, 1_000_000_000);
        // 2(n-1)/n -> factor 1.0 at n=2, 1.75 at n=8; bounded by 2.
        assert!((t2 - 1.0).abs() < 1e-9);
        assert!((t8 - 1.75).abs() < 1e-9);
        let t_big = ring_allreduce_secs(&l, SimTime::ZERO, 10_000, 1_000_000_000);
        assert!(t_big < 2.0 + 10_000.0 * 2.0 * l.latency_secs + 1e-9);
    }
}
