//! The control-channel model: how Monitor/Controller/Agent messages travel.
//!
//! The paper's Fig. 6 loop (Agent reports → Monitor aggregation → Controller
//! decision → broadcast → local barrier) is wired through a *control bus* in
//! `antdt-core`. This module is the transport model that bus samples from:
//! [`ControlChannel::Ideal`] delivers every message inline with the classic
//! broadcast-model delays (trace-preserving — the default), while
//! [`ControlChannel::Modeled`] carries messages as first-class DES events with
//! configurable latency, jitter and loss, so delayed `ADJUST_BS` broadcasts
//! and stale-directive races after `KILL_RESTART` become simulable.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Per-job delivery model of the control plane.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub enum ControlChannel {
    /// Inline delivery at the broadcast-model instants, exactly as the
    /// pre-bus runtimes behaved. Zero extra events, zero extra RNG draws:
    /// same-seed traces are byte-identical to the pre-bus golden fixtures.
    #[default]
    Ideal,
    /// Event-routed delivery: every message pays `latency_secs` plus a
    /// uniform `[0, jitter_secs)` draw, and is lost with probability
    /// `loss_prob` per transmission attempt (lost control messages are
    /// retried by the bus; lost reports are gone — the next report
    /// supersedes them). All draws come from a dedicated stream seeded by
    /// `seed`, so two same-seed runs stay byte-identical to each other.
    Modeled { latency_secs: f64, jitter_secs: f64, loss_prob: f64, seed: u64 },
}

/// One sampled transmission attempt.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ChannelVerdict {
    /// The message arrives after this many seconds.
    Deliver(f64),
    /// The message is lost on this attempt.
    Drop,
}

impl ControlChannel {
    pub fn is_ideal(&self) -> bool {
        matches!(self, ControlChannel::Ideal)
    }

    /// The channel's dedicated RNG stream (`None` for `Ideal`, which never
    /// draws).
    pub fn rng(&self) -> Option<StdRng> {
        match self {
            ControlChannel::Ideal => None,
            ControlChannel::Modeled { seed, .. } => Some(StdRng::seed_from_u64(*seed)),
        }
    }

    /// Sample one transmission attempt. Both draws (loss, jitter) happen on
    /// every call so the per-message draw count is constant regardless of
    /// outcome — reordering-resistant determinism.
    pub fn sample(&self, rng: &mut StdRng) -> ChannelVerdict {
        match *self {
            ControlChannel::Ideal => ChannelVerdict::Deliver(0.0),
            ControlChannel::Modeled { latency_secs, jitter_secs, loss_prob, .. } => {
                let lost = rng.gen::<f64>() < loss_prob;
                let jitter = rng.gen::<f64>() * jitter_secs;
                if lost {
                    ChannelVerdict::Drop
                } else {
                    ChannelVerdict::Deliver(latency_secs + jitter)
                }
            }
        }
    }

    /// Retransmission backoff after a lost attempt (the bus retries control
    /// messages; see `antdt-core`'s bus for the attempt cap).
    pub fn retry_secs(&self) -> f64 {
        match *self {
            ControlChannel::Ideal => 0.25,
            ControlChannel::Modeled { latency_secs, jitter_secs, .. } => {
                (latency_secs + jitter_secs).max(0.25)
            }
        }
    }

    /// Panic on non-physical parameters (mirrors `JobConfig::validate`).
    pub fn validate(&self) {
        if let ControlChannel::Modeled { latency_secs, jitter_secs, loss_prob, .. } = self {
            assert!(
                latency_secs.is_finite() && *latency_secs >= 0.0,
                "control-channel latency must be finite and non-negative"
            );
            assert!(
                jitter_secs.is_finite() && *jitter_secs >= 0.0,
                "control-channel jitter must be finite and non-negative"
            );
            assert!(
                (0.0..1.0).contains(loss_prob),
                "control-channel loss probability must be in [0, 1)"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ideal_is_the_default_and_never_needs_an_rng() {
        let ch = ControlChannel::default();
        assert!(ch.is_ideal());
        assert!(ch.rng().is_none());
    }

    #[test]
    fn modeled_sampling_is_deterministic_per_seed() {
        let ch = ControlChannel::Modeled {
            latency_secs: 2.0,
            jitter_secs: 1.0,
            loss_prob: 0.3,
            seed: 42,
        };
        let mut a = ch.rng().unwrap();
        let mut b = ch.rng().unwrap();
        let va: Vec<ChannelVerdict> = (0..64).map(|_| ch.sample(&mut a)).collect();
        let vb: Vec<ChannelVerdict> = (0..64).map(|_| ch.sample(&mut b)).collect();
        assert_eq!(va, vb);
        assert!(va.iter().any(|v| matches!(v, ChannelVerdict::Drop)), "30% loss over 64 draws");
        for v in &va {
            if let ChannelVerdict::Deliver(d) = v {
                assert!((2.0..3.0).contains(d), "latency + [0,1) jitter, got {d}");
            }
        }
    }

    #[test]
    fn lossless_channel_always_delivers() {
        let ch = ControlChannel::Modeled {
            latency_secs: 5.0,
            jitter_secs: 0.0,
            loss_prob: 0.0,
            seed: 1,
        };
        let mut rng = ch.rng().unwrap();
        for _ in 0..32 {
            assert_eq!(ch.sample(&mut rng), ChannelVerdict::Deliver(5.0));
        }
    }

    #[test]
    fn retry_backoff_scales_with_latency() {
        assert_eq!(ControlChannel::Ideal.retry_secs(), 0.25);
        let slow = ControlChannel::Modeled {
            latency_secs: 10.0,
            jitter_secs: 2.0,
            loss_prob: 0.5,
            seed: 0,
        };
        assert_eq!(slow.retry_secs(), 12.0);
    }
}
