//! Gantt-chart recorder (paper Fig. 9): per-node spans of compute, communication,
//! idle/blocked and failover time, used both for visualisation and for the
//! overhead-decomposition experiment (Fig. 18).

use crate::time::{SimDuration, SimTime};
use antdt_telemetry::TraceEvent;
use serde::{Deserialize, Serialize};

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SpanKind {
    /// Forward/backward computation of a micro-batch.
    Compute,
    /// Gradient push / parameter pull / AllReduce exchange.
    Comm,
    /// Blocked at a synchronization barrier waiting for stragglers.
    Idle,
    /// Node down: killed/pending/init/restore.
    Failover,
    /// AntDT bookkeeping: DDS round-trips, agent synchronization.
    Overhead,
}

#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Span {
    pub node: u32,
    pub kind: SpanKind,
    pub start: SimTime,
    pub end: SimTime,
}

impl Span {
    pub fn duration(&self) -> SimDuration {
        self.end.since(self.start)
    }
}

#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Gantt {
    pub spans: Vec<Span>,
}

impl Gantt {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn record(&mut self, node: u32, kind: SpanKind, start: SimTime, end: SimTime) {
        if end > start {
            self.spans.push(Span { node, kind, start, end });
        }
    }

    /// Total time a node spent in spans of `kind`.
    pub fn total(&self, node: u32, kind: SpanKind) -> SimDuration {
        self.spans
            .iter()
            .filter(|s| s.node == node && s.kind == kind)
            .fold(SimDuration::ZERO, |acc, s| acc + s.duration())
    }

    /// Total time across all nodes in spans of `kind`.
    pub fn total_all(&self, kind: SpanKind) -> SimDuration {
        self.spans
            .iter()
            .filter(|s| s.kind == kind)
            .fold(SimDuration::ZERO, |acc, s| acc + s.duration())
    }

    /// Nodes appearing in the chart, sorted.
    pub fn nodes(&self) -> Vec<u32> {
        let mut ns: Vec<u32> = self.spans.iter().map(|s| s.node).collect();
        ns.sort_unstable();
        ns.dedup();
        ns
    }

    /// Convert every span into a Chrome trace-event (`ph = "X"`) so the chart
    /// can be merged into a [`antdt_telemetry::SpanTracer`] export and loaded
    /// in Perfetto. Each node gets one track *per span kind* (`tid = node * 8
    /// + kind lane`: compute 0, comm 1, idle 2, failover 3, overhead 4) —
    /// collapsing everything onto one row per node used to hide exactly the
    /// wait intervals the attribution engine decomposes. The span kind
    /// becomes the event name; the category stays `gantt`.
    pub fn to_trace_events(&self) -> Vec<TraceEvent> {
        self.spans
            .iter()
            .map(|s| {
                let (name, lane) = match s.kind {
                    SpanKind::Compute => ("compute", 0),
                    SpanKind::Comm => ("comm", 1),
                    SpanKind::Idle => ("idle", 2),
                    SpanKind::Failover => ("failover", 3),
                    SpanKind::Overhead => ("overhead", 4),
                };
                TraceEvent {
                    name: name.to_string(),
                    cat: "gantt".to_string(),
                    ph: "X".to_string(),
                    ts: s.start.as_micros(),
                    dur: Some(s.duration().as_micros()),
                    pid: 0,
                    tid: s.node * 8 + lane,
                    value: None,
                    args: Default::default(),
                }
            })
            .collect()
    }

    /// Render a coarse ASCII chart (one row per node, `cols` columns) — handy for
    /// the `experiments fig9` output.
    pub fn ascii(&self, cols: usize) -> String {
        use std::fmt::Write as _;
        let Some(end) = self.spans.iter().map(|s| s.end).max() else {
            return String::new();
        };
        let scale = end.as_micros().max(1) as f64;
        let mut out = String::new();
        // One row buffer reused across nodes; rows are written straight into
        // `out` instead of through a per-row intermediate `String`.
        let mut row = vec![' '; cols];
        for node in self.nodes() {
            row.iter_mut().for_each(|c| *c = ' ');
            for s in self.spans.iter().filter(|s| s.node == node) {
                let a = ((s.start.as_micros() as f64 / scale) * cols as f64) as usize;
                let b =
                    (((s.end.as_micros() as f64 / scale) * cols as f64).ceil() as usize).min(cols);
                let ch = match s.kind {
                    SpanKind::Compute => '#',
                    SpanKind::Comm => '=',
                    SpanKind::Idle => '.',
                    SpanKind::Failover => 'X',
                    SpanKind::Overhead => 'o',
                };
                for c in row.iter_mut().take(b).skip(a.min(cols)) {
                    *c = ch;
                }
            }
            let _ = write!(out, "n{node:<3} |");
            out.extend(row.iter());
            out.push_str("|\n");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_accumulate_per_node_and_kind() {
        let mut g = Gantt::new();
        g.record(0, SpanKind::Compute, SimTime::ZERO, SimTime::from_secs_f64(2.0));
        g.record(0, SpanKind::Comm, SimTime::from_secs_f64(2.0), SimTime::from_secs_f64(3.0));
        g.record(1, SpanKind::Compute, SimTime::ZERO, SimTime::from_secs_f64(5.0));
        assert_eq!(g.total(0, SpanKind::Compute), SimDuration::from_secs(2));
        assert_eq!(g.total(0, SpanKind::Comm), SimDuration::from_secs(1));
        assert_eq!(g.total_all(SpanKind::Compute), SimDuration::from_secs(7));
        assert_eq!(g.nodes(), vec![0, 1]);
    }

    #[test]
    fn empty_spans_are_dropped() {
        let mut g = Gantt::new();
        g.record(0, SpanKind::Idle, SimTime::from_secs_f64(1.0), SimTime::from_secs_f64(1.0));
        assert!(g.spans.is_empty());
    }

    #[test]
    fn spans_convert_to_chrome_trace_events() {
        let mut g = Gantt::new();
        g.record(2, SpanKind::Comm, SimTime::from_secs_f64(1.0), SimTime::from_secs_f64(3.0));
        g.record(2, SpanKind::Compute, SimTime::ZERO, SimTime::from_secs_f64(1.0));
        let evs = g.to_trace_events();
        assert_eq!(evs.len(), 2);
        assert_eq!(evs[0].name, "comm");
        assert_eq!(evs[0].ph, "X");
        assert_eq!(evs[0].ts, 1_000_000);
        assert_eq!(evs[0].dur, Some(2_000_000));
        // Wait and compute spans land on distinct tracks of the same node:
        // tid = node * 8 + kind lane (comm = 1, compute = 0).
        assert_eq!(evs[0].tid, 17);
        assert_eq!(evs[1].tid, 16);
    }

    #[test]
    fn ascii_renders_rows() {
        let mut g = Gantt::new();
        g.record(0, SpanKind::Compute, SimTime::ZERO, SimTime::from_secs_f64(1.0));
        g.record(1, SpanKind::Idle, SimTime::ZERO, SimTime::from_secs_f64(1.0));
        let art = g.ascii(10);
        assert!(art.contains("n0"));
        assert!(art.contains('#'));
        assert!(art.contains('.'));
        assert!(Gantt::new().ascii(10).is_empty());
    }
}
