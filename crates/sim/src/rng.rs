//! Deterministic random streams.
//!
//! Every stochastic component (per-node jitter, contention episodes, scheduler
//! pending times, dataset generation…) draws from its own *stream* derived from a
//! master seed and a stable stream identifier. Streams are independent, so adding
//! a new consumer never perturbs the draws seen by existing ones — a property the
//! reproducibility tests rely on.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// SplitMix64 finalizer: a strong 64-bit mixer used to derive stream seeds.
#[inline]
pub fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derive a child seed from `(master, id)`.
#[inline]
pub fn derive_seed(master: u64, id: u64) -> u64 {
    mix64(master ^ mix64(id))
}

/// A pool of independent, reproducible random streams keyed by `u64` ids.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RngPool {
    master: u64,
}

impl RngPool {
    pub fn new(master: u64) -> Self {
        RngPool { master }
    }

    pub fn master(&self) -> u64 {
        self.master
    }

    /// A fresh RNG for stream `id`. Calling twice with the same id yields
    /// identical streams.
    pub fn stream(&self, id: u64) -> StdRng {
        StdRng::seed_from_u64(derive_seed(self.master, id))
    }

    /// Convenience for two-level ids (e.g. `(component, node)`).
    pub fn stream2(&self, a: u64, b: u64) -> StdRng {
        self.stream(mix64(a).wrapping_add(b))
    }

    /// A deterministic Bernoulli draw addressed by `(stream, index)` without
    /// materializing an RNG — used for per-episode contention coin flips where
    /// the outcome must be queryable out of order.
    pub fn bernoulli_at(&self, stream: u64, index: u64, p: f64) -> bool {
        let h = mix64(derive_seed(self.master, stream) ^ mix64(index));
        // Map the top 53 bits to [0, 1).
        let u = (h >> 11) as f64 / (1u64 << 53) as f64;
        u < p
    }

    /// A deterministic uniform draw in `[0, 1)` addressed by `(stream, index)`.
    pub fn uniform_at(&self, stream: u64, index: u64) -> f64 {
        let h = mix64(derive_seed(self.master, stream ^ 0xA5A5_A5A5) ^ mix64(index));
        (h >> 11) as f64 / (1u64 << 53) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn streams_are_reproducible() {
        let pool = RngPool::new(42);
        let a: Vec<u64> = (0..8).map(|_| pool.stream(7).gen::<u64>()).collect();
        // Note: each `stream(7)` above returns a *fresh* RNG, so all draws equal.
        assert!(a.windows(2).all(|w| w[0] == w[1]));

        let mut r1 = pool.stream(7);
        let mut r2 = pool.stream(7);
        for _ in 0..100 {
            assert_eq!(r1.gen::<u64>(), r2.gen::<u64>());
        }
    }

    #[test]
    fn streams_are_independent() {
        let pool = RngPool::new(42);
        let mut r1 = pool.stream(1);
        let mut r2 = pool.stream(2);
        let v1: Vec<u64> = (0..16).map(|_| r1.gen()).collect();
        let v2: Vec<u64> = (0..16).map(|_| r2.gen()).collect();
        assert_ne!(v1, v2);
    }

    #[test]
    fn bernoulli_at_respects_probability() {
        let pool = RngPool::new(7);
        let hits = (0..10_000).filter(|&i| pool.bernoulli_at(3, i, 0.3)).count();
        let rate = hits as f64 / 10_000.0;
        assert!((rate - 0.3).abs() < 0.02, "rate {rate}");
        // Deterministic: asking twice gives the same answer.
        for i in 0..100 {
            assert_eq!(pool.bernoulli_at(3, i, 0.3), pool.bernoulli_at(3, i, 0.3));
        }
    }

    #[test]
    fn uniform_at_covers_unit_interval() {
        let pool = RngPool::new(9);
        let xs: Vec<f64> = (0..1000).map(|i| pool.uniform_at(1, i)).collect();
        assert!(xs.iter().all(|&x| (0.0..1.0).contains(&x)));
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        assert!((mean - 0.5).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn different_masters_differ() {
        let a = RngPool::new(1).stream(0).gen::<u64>();
        let b = RngPool::new(2).stream(0).gen::<u64>();
        assert_ne!(a, b);
    }
}
