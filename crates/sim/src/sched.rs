//! Cluster-scheduler model for `KILL_RESTART`.
//!
//! The paper (§V-E2) decomposes the restart cost into: scheduling (new-node
//! initialization plus *pending* time in the scheduler queue — negligible when the
//! cluster is idle, dozens of minutes at peak) and the application side
//! (communication-world rebuild, checkpoint restore, recompute). This module
//! models the scheduling half and the cluster busyness signal that the Monitor
//! exposes as "third-party information".

use crate::dist::Dist;
use crate::time::{SimDuration, SimTime};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Windows during which the cluster is at peak load.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct BusynessTimeline {
    pub busy_windows: Vec<(SimTime, SimTime)>,
}

impl BusynessTimeline {
    pub fn always_idle() -> Self {
        Self::default()
    }

    pub fn busy(windows: Vec<(SimTime, SimTime)>) -> Self {
        BusynessTimeline { busy_windows: windows }
    }

    pub fn is_busy(&self, now: SimTime) -> bool {
        self.busy_windows.iter().any(|&(a, b)| now >= a && now < b)
    }
}

/// Pod scheduling model: pending time (queue wait) + node initialization.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SchedulerModel {
    /// Pending time when the cluster is idle.
    pub pending_idle: Dist,
    /// Pending time at peak (paper: "dozens of minutes").
    pub pending_busy: Dist,
    /// New-node initialization (image pull, container start…).
    pub node_init: Dist,
    pub busyness: BusynessTimeline,
}

impl SchedulerModel {
    /// Defaults chosen from the magnitudes the paper reports: ~10 s pending when
    /// idle, ~15 min at peak, ~45 s node init.
    pub fn paper_default() -> Self {
        SchedulerModel {
            pending_idle: Dist::Uniform { lo: 5.0, hi: 20.0 },
            pending_busy: Dist::Uniform { lo: 600.0, hi: 1500.0 },
            node_init: Dist::Uniform { lo: 30.0, hi: 60.0 },
            busyness: BusynessTimeline::always_idle(),
        }
    }

    pub fn with_busyness(mut self, busyness: BusynessTimeline) -> Self {
        self.busyness = busyness;
        self
    }

    pub fn is_busy(&self, now: SimTime) -> bool {
        self.busyness.is_busy(now)
    }

    /// Sample the total scheduling delay (pending + init) for a restart issued
    /// at `now`.
    pub fn sample_restart_delay<R: Rng + ?Sized>(&self, now: SimTime, rng: &mut R) -> SimDuration {
        let pending = if self.is_busy(now) {
            self.pending_busy.sample(rng)
        } else {
            self.pending_idle.sample(rng)
        };
        SimDuration::from_secs_f64(pending + self.node_init.sample(rng))
    }

    /// [`SchedulerModel::sample_restart_delay`], additionally recording the
    /// sampled delay (in microseconds) into a telemetry histogram. Sampling is
    /// identical to the unobserved variant, so telemetry cannot shift the RNG
    /// stream.
    pub fn sample_restart_delay_observed<R: Rng + ?Sized>(
        &self,
        now: SimTime,
        rng: &mut R,
        hist: &antdt_telemetry::Histogram,
    ) -> SimDuration {
        let d = self.sample_restart_delay(now, rng);
        hist.observe(d.as_micros());
        d
    }

    /// The expected pending time at `now` — what the Monitor surfaces to the
    /// Controller so AntDT-ND can gate `KILL_RESTART` on cluster busyness.
    pub fn expected_pending_secs(&self, now: SimTime) -> f64 {
        if self.is_busy(now) {
            self.pending_busy.mean()
        } else {
            self.pending_idle.mean()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn busyness_windows() {
        let b = BusynessTimeline::busy(vec![(
            SimTime::from_secs_f64(100.0),
            SimTime::from_secs_f64(200.0),
        )]);
        assert!(!b.is_busy(SimTime::from_secs_f64(50.0)));
        assert!(b.is_busy(SimTime::from_secs_f64(150.0)));
        assert!(!b.is_busy(SimTime::from_secs_f64(200.0)));
    }

    #[test]
    fn restart_delay_larger_when_busy() {
        let m = SchedulerModel::paper_default().with_busyness(BusynessTimeline::busy(vec![(
            SimTime::ZERO,
            SimTime::from_secs_f64(1000.0),
        )]));
        let mut rng = StdRng::seed_from_u64(5);
        let busy = m.sample_restart_delay(SimTime::from_secs_f64(10.0), &mut rng);
        let idle = m.sample_restart_delay(SimTime::from_secs_f64(2000.0), &mut rng);
        assert!(busy > idle, "busy {busy} idle {idle}");
        assert!(busy.as_secs_f64() > 600.0);
        assert!(idle.as_secs_f64() < 100.0);
    }

    #[test]
    fn observed_sampling_matches_unobserved_stream() {
        let m = SchedulerModel::paper_default();
        let reg = antdt_telemetry::MetricsRegistry::new();
        let h = reg.histogram("restart_us", &[], &[60_000_000]);
        let mut r1 = StdRng::seed_from_u64(9);
        let mut r2 = StdRng::seed_from_u64(9);
        let a = m.sample_restart_delay(SimTime::ZERO, &mut r1);
        let b = m.sample_restart_delay_observed(SimTime::ZERO, &mut r2, &h);
        assert_eq!(a, b);
        assert_eq!(h.count(), 1);
        assert_eq!(h.sum(), a.as_micros());
    }

    #[test]
    fn expected_pending_tracks_busyness() {
        let m = SchedulerModel::paper_default().with_busyness(BusynessTimeline::busy(vec![(
            SimTime::ZERO,
            SimTime::from_secs_f64(100.0),
        )]));
        assert!(m.expected_pending_secs(SimTime::from_secs_f64(10.0)) > 600.0);
        assert!(m.expected_pending_secs(SimTime::from_secs_f64(500.0)) < 30.0);
    }
}
