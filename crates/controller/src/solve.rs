//! The optimization solvers behind `ADJUST_BS`.
//!
//! * [`minmax_batch_allocation`] — paper Eq. 2/3: given worker throughputs
//!   `vᵢ`, pick integer batch sizes `Bᵢ` with `ΣBᵢ = B` minimizing
//!   `max Bᵢ/vᵢ`. Solved exactly by a greedy exchange argument (provably
//!   optimal for this separable min-max; verified against brute force in the
//!   property tests). Runtime is `O((B − n·Bmin)·log n)` — milliseconds even at
//!   1000 workers (§VII-E).
//! * [`grad_accum_allocation`] — paper Eq. 4 (AntDT-DD): per device class,
//!   jointly choose batch size `Bᵢ ∈ [B̂ᵢᵐⁱⁿ, B̂ᵢᵐᵃˣ]` and accumulation count
//!   `Cᵢ ∈ [Ĉᵐⁱⁿ, Ĉᵐᵃˣ]` s.t. `Σ nᵢCᵢBᵢ = B`, minimizing
//!   `max Cᵢ·tᵢ(Bᵢ)`. The number of device *classes* is tiny, so we enumerate
//!   `C` vectors and solve the inner problem by bisection on the objective.
//! * [`lb_bsp_allocation`] — the LB-BSP baseline's rule: batch sizes
//!   proportional to measured throughput, clamped into memory, leftovers
//!   redistributed. Deliberately ignorant of the fixed per-batch overhead,
//!   which is the gap AntDT-DD exploits.

use serde::{Deserialize, Serialize};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Affine batch cost `t(B) = c0 + per_sample·B` (seconds).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AffineCost {
    pub c0: f64,
    pub per_sample: f64,
}

impl AffineCost {
    #[inline]
    pub fn time(&self, b: u64) -> f64 {
        if b == 0 {
            0.0
        } else {
            self.c0 + self.per_sample * b as f64
        }
    }

    /// Largest batch with `time(B) ≤ z`, or `None` if even `B = 1` exceeds `z`.
    fn max_batch_within(&self, z: f64) -> Option<u64> {
        if self.time(1) > z {
            return None;
        }
        if self.per_sample <= 0.0 {
            return Some(u64::MAX / 4);
        }
        Some(((z - self.c0) / self.per_sample).floor() as u64)
    }
}

// ---------------------------------------------------------------------------
// Eq. 3: min-max batch allocation for n workers
// ---------------------------------------------------------------------------

/// Exact solver for Eq. 3. `v[i]` is worker `i`'s throughput (samples/sec);
/// workers with `v[i] <= 0` (dead or unmeasured) receive 0 samples. Every live
/// worker gets at least `b_min` (when the budget allows). Returns per-worker
/// batch sizes summing to exactly `global_batch`.
pub fn minmax_batch_allocation(global_batch: u64, v: &[f64], b_min: u64) -> Vec<u64> {
    let n = v.len();
    let mut out = vec![0u64; n];
    if n == 0 || global_batch == 0 {
        return out;
    }
    let live: Vec<usize> = (0..n).filter(|&i| v[i] > 0.0).collect();
    if live.is_empty() {
        // Nothing measured: fall back to an even split over everyone.
        even_split(global_batch, n, &mut out, &(0..n).collect::<Vec<_>>());
        return out;
    }

    // Budget for the floors; if it doesn't fit, shrink the floor.
    let b_min = b_min.min(global_batch / live.len() as u64);
    let mut remaining = global_batch - b_min * live.len() as u64;
    for &i in &live {
        out[i] = b_min;
    }

    // Greedy: hand each remaining sample to the worker whose time after the
    // increment stays smallest. Heap keyed on (B_i + 1) / v_i.
    let mut heap: BinaryHeap<Reverse<(OrdF64, usize)>> =
        live.iter().map(|&i| Reverse((OrdF64((out[i] + 1) as f64 / v[i]), i))).collect();
    while remaining > 0 {
        let Reverse((_, i)) = heap.pop().expect("live workers present");
        out[i] += 1;
        remaining -= 1;
        heap.push(Reverse((OrdF64((out[i] + 1) as f64 / v[i]), i)));
    }
    out
}

fn even_split(total: u64, _n: usize, out: &mut [u64], targets: &[usize]) {
    let k = targets.len() as u64;
    for (rank, &i) in targets.iter().enumerate() {
        out[i] = total / k + u64::from((rank as u64) < total % k);
    }
}

/// Objective value of an allocation: `max Bᵢ/vᵢ` over live workers.
pub fn allocation_objective(alloc: &[u64], v: &[f64]) -> f64 {
    alloc
        .iter()
        .zip(v)
        .filter(|&(_, &vi)| vi > 0.0)
        .map(|(&b, &vi)| b as f64 / vi)
        .fold(0.0, f64::max)
}

/// Total-order wrapper for f64 keys (no NaNs by construction).
#[derive(PartialEq, PartialOrd)]
struct OrdF64(f64);
impl Eq for OrdF64 {}
#[allow(clippy::derive_ord_xor_partial_ord)]
impl Ord for OrdF64 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.partial_cmp(other).expect("NaN in solver key")
    }
}

// ---------------------------------------------------------------------------
// LB-BSP baseline allocation
// ---------------------------------------------------------------------------

/// LB-BSP's rule: `Bᵢ ∝ vᵢ`, clamped into `[1, cap]`, with leftovers
/// redistributed proportionally among unclamped workers.
pub fn lb_bsp_allocation(global_batch: u64, v: &[f64], caps: &[u64]) -> Vec<u64> {
    let n = v.len();
    assert_eq!(n, caps.len());
    let mut out = vec![0u64; n];
    if n == 0 || global_batch == 0 {
        return out;
    }
    let mut free: Vec<usize> = (0..n).filter(|&i| v[i] > 0.0 && caps[i] > 0).collect();
    if free.is_empty() {
        even_split(global_batch, n, &mut out, &(0..n).collect::<Vec<_>>());
        return out;
    }
    let mut budget = global_batch;
    // Iteratively allocate proportional shares (largest-remainder rounding so
    // each round hands out exactly `budget`); workers hitting their cap are
    // frozen and the residual is re-shared.
    while budget > 0 && !free.is_empty() {
        let vs: f64 = free.iter().map(|&i| v[i]).sum();
        let mut want: Vec<(u64, f64, usize)> = free
            .iter()
            .map(|&i| {
                let share = budget as f64 * v[i] / vs;
                (share.floor() as u64, share.fract(), i)
            })
            .collect();
        let mut deficit = budget - want.iter().map(|&(b, _, _)| b).sum::<u64>();
        // Hand the rounding deficit to the largest fractional remainders.
        want.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
        for w in want.iter_mut() {
            if deficit == 0 {
                break;
            }
            w.0 += 1;
            deficit -= 1;
        }
        let mut next_free = Vec::with_capacity(free.len());
        let mut assigned = 0u64;
        for &(ideal, _, i) in &want {
            let take = ideal.min(caps[i] - out[i]);
            out[i] += take;
            assigned += take;
            if out[i] < caps[i] {
                next_free.push(i);
            }
        }
        budget -= assigned;
        if assigned == 0 {
            break; // every remaining worker is capped
        }
        next_free.sort_unstable();
        free = next_free;
    }
    // If every cap binds, push the residue onto the fastest capped worker(s)
    // (LB-BSP has nowhere else to put it — documents the cap-saturation case).
    if budget > 0 {
        let fastest = (0..n)
            .max_by(|&a, &b| v[a].partial_cmp(&v[b]).expect("no NaN throughputs"))
            .expect("n > 0 checked above");
        out[fastest] += budget;
    }
    out
}

// ---------------------------------------------------------------------------
// Eq. 4: joint batch size + gradient accumulation for device classes
// ---------------------------------------------------------------------------

/// One device class (e.g. "4× V100").
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Eq4Class {
    pub count: u32,
    pub cost: AffineCost,
    /// `B̂ᵢᵐⁱⁿ` — saturation point.
    pub b_min: u64,
    /// `B̂ᵢᵐᵃˣ` — memory cap.
    pub b_max: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Eq4Config {
    /// `B` — the global batch each synchronization round must process.
    pub global_batch: u64,
    /// `Ĉᵐⁱⁿ` (usually 1).
    pub c_min: u32,
    /// `Ĉᵐᵃˣ` (e.g. 5).
    pub c_max: u32,
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Eq4Solution {
    /// Per class: `(Bᵢ, Cᵢ)`.
    pub per_class: Vec<(u64, u32)>,
    /// `max Cᵢ·tᵢ(Bᵢ)` — the round time before synchronization.
    pub objective_secs: f64,
    /// `Σ nᵢCᵢBᵢ` — equals `global_batch` when an exact split exists; otherwise
    /// the closest achievable from above (documented slack, at most
    /// `min nᵢCᵢ − 1` samples).
    pub achieved_batch: u64,
}

/// Exact-ish solver for Eq. 4: enumerate `C` vectors (few device classes ⇒
/// tiny space), inner bisection on the objective, greedy trim to the target
/// batch. Returns `None` if no `C` vector admits a feasible allocation.
pub fn grad_accum_allocation(cfg: Eq4Config, classes: &[Eq4Class]) -> Option<Eq4Solution> {
    let k = classes.len();
    if k == 0 || cfg.global_batch == 0 || cfg.c_min == 0 || cfg.c_min > cfg.c_max {
        return None;
    }
    let span = (cfg.c_max - cfg.c_min + 1) as u64;
    let combos = span.checked_pow(k as u32)?;
    assert!(combos <= 1_000_000, "too many C combinations ({combos}); cap c_max or classes");

    let mut best: Option<Eq4Solution> = None;
    let mut c = vec![cfg.c_min; k];
    'outer: loop {
        if let Some(sol) = solve_inner(cfg.global_batch, classes, &c) {
            let better = match &best {
                None => true,
                Some(b) => {
                    (sol.objective_secs, sol.achieved_batch) < (b.objective_secs, b.achieved_batch)
                }
            };
            if better {
                best = Some(sol);
            }
        }
        // Odometer increment over the C vector.
        for digit in c.iter_mut() {
            if *digit < cfg.c_max {
                *digit += 1;
                continue 'outer;
            }
            *digit = cfg.c_min;
        }
        break;
    }
    best
}

/// Inner problem for a fixed C vector: bisect on z, then trim.
fn solve_inner(global_batch: u64, classes: &[Eq4Class], c: &[u32]) -> Option<Eq4Solution> {
    // Capacity at objective z: B_i(z) = clamp(max batch with C_i * t_i(B) <= z).
    let alloc_at = |z: f64| -> Option<Vec<u64>> {
        let mut alloc = Vec::with_capacity(classes.len());
        for (cl, &ci) in classes.iter().zip(c) {
            let per_micro = z / ci as f64;
            let b = cl.cost.max_batch_within(per_micro)?;
            if b < cl.b_min {
                return None; // forced below saturation floor => z infeasible
            }
            alloc.push(b.min(cl.b_max));
        }
        Some(alloc)
    };
    let total = |alloc: &[u64]| -> u64 {
        alloc
            .iter()
            .zip(classes)
            .zip(c)
            .map(|((&b, cl), &ci)| b * cl.count as u64 * ci as u64)
            .sum()
    };

    // Upper bound: everyone at b_max.
    let z_hi_alloc: Vec<u64> = classes.iter().map(|cl| cl.b_max).collect();
    if total(&z_hi_alloc) < global_batch {
        return None; // even maxed out, the round can't reach B
    }
    let mut hi = classes
        .iter()
        .zip(c)
        .map(|(cl, &ci)| ci as f64 * cl.cost.time(cl.b_max))
        .fold(0.0f64, f64::max);
    let mut lo = 0.0f64;
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        match alloc_at(mid) {
            Some(a) if total(&a) >= global_batch => hi = mid,
            _ => lo = mid,
        }
    }
    let mut alloc = alloc_at(hi)?;

    // Greedy trim: shed surplus from the class with the largest current time
    // whose floor allows it and whose step doesn't undershoot the target.
    let step = |i: usize| classes[i].count as u64 * c[i] as u64;
    let mut surplus = total(&alloc).checked_sub(global_batch)?;
    loop {
        let mut cand: Option<(f64, usize)> = None;
        for i in 0..alloc.len() {
            if alloc[i] > classes[i].b_min && step(i) <= surplus {
                let t = c[i] as f64 * classes[i].cost.time(alloc[i]);
                if cand.is_none_or(|(bt, _)| t > bt) {
                    cand = Some((t, i));
                }
            }
        }
        match cand {
            Some((_, i)) => {
                alloc[i] -= 1;
                surplus -= step(i);
            }
            None => break,
        }
    }
    let objective = alloc
        .iter()
        .zip(classes)
        .zip(c)
        .map(|((&b, cl), &ci)| ci as f64 * cl.cost.time(b))
        .fold(0.0f64, f64::max);
    Some(Eq4Solution {
        per_class: alloc.iter().zip(c).map(|(&b, &ci)| (b, ci)).collect(),
        objective_secs: objective,
        achieved_batch: global_batch + surplus,
    })
}

/// Brute-force reference solver for tiny Eq. 3 instances (tests only).
#[cfg(test)]
pub(crate) fn brute_force_eq3(b: u64, v: &[f64]) -> f64 {
    fn rec(i: usize, left: u64, v: &[f64], cur: f64) -> f64 {
        if i == v.len() - 1 {
            return cur.max(left as f64 / v[i]);
        }
        let mut best = f64::INFINITY;
        for take in 0..=left {
            let t = cur.max(take as f64 / v[i]);
            if t >= best {
                continue;
            }
            best = best.min(rec(i + 1, left - take, v, t));
        }
        best
    }
    rec(0, b, v, 0.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eq3_proportional_when_unconstrained() {
        // v = [1, 2, 3], B = 60 => optimal is exactly [10, 20, 30].
        let alloc = minmax_batch_allocation(60, &[1.0, 2.0, 3.0], 1);
        assert_eq!(alloc, vec![10, 20, 30]);
        assert_eq!(alloc.iter().sum::<u64>(), 60);
    }

    #[test]
    fn eq3_dead_workers_get_zero() {
        let alloc = minmax_batch_allocation(30, &[1.0, 0.0, 2.0], 1);
        assert_eq!(alloc[1], 0);
        assert_eq!(alloc.iter().sum::<u64>(), 30);
        assert_eq!(alloc, vec![10, 0, 20]);
    }

    #[test]
    fn eq3_all_dead_falls_back_to_even() {
        let alloc = minmax_batch_allocation(10, &[0.0, 0.0, 0.0], 1);
        assert_eq!(alloc.iter().sum::<u64>(), 10);
        assert!(alloc.iter().all(|&b| b == 3 || b == 4));
    }

    #[test]
    fn eq3_respects_floor_when_budget_allows() {
        let alloc = minmax_batch_allocation(100, &[1.0, 100.0], 10);
        assert!(alloc[0] >= 10);
        assert_eq!(alloc.iter().sum::<u64>(), 100);
    }

    #[test]
    fn eq3_tiny_budget_shrinks_floor() {
        let alloc = minmax_batch_allocation(3, &[1.0, 1.0, 1.0, 1.0], 5);
        assert_eq!(alloc.iter().sum::<u64>(), 3);
    }

    #[test]
    fn eq3_empty_inputs() {
        assert!(minmax_batch_allocation(10, &[], 1).is_empty());
        assert_eq!(minmax_batch_allocation(0, &[1.0, 1.0], 1), vec![0, 0]);
    }

    #[test]
    fn eq3_matches_brute_force_on_small_instances() {
        let cases: &[(u64, &[f64])] = &[
            (12, &[1.0, 2.0, 4.0]),
            (7, &[3.0, 1.0]),
            (20, &[1.0, 1.0, 1.0, 5.0]),
            (5, &[10.0, 0.5]),
        ];
        for &(b, v) in cases {
            let alloc = minmax_batch_allocation(b, v, 0);
            let got = allocation_objective(&alloc, v);
            let want = brute_force_eq3(b, v);
            assert!((got - want).abs() < 1e-9, "B={b} v={v:?}: {got} vs {want}");
        }
    }

    #[test]
    fn lb_bsp_proportional_then_clamped() {
        // Unclamped: proportional.
        let a = lb_bsp_allocation(60, &[1.0, 2.0, 3.0], &[100, 100, 100]);
        assert_eq!(a.iter().sum::<u64>(), 60);
        assert!(a[2] > a[1] && a[1] > a[0]);
        // Fast worker clamped: leftovers flow to the others.
        let b = lb_bsp_allocation(60, &[1.0, 2.0, 3.0], &[100, 100, 20]);
        assert_eq!(b.iter().sum::<u64>(), 60);
        assert_eq!(b[2], 20);
        assert!(b[0] + b[1] == 40);
    }

    #[test]
    fn lb_bsp_handles_zero_throughputs() {
        let a = lb_bsp_allocation(10, &[0.0, 0.0], &[5, 5]);
        assert_eq!(a.iter().sum::<u64>(), 10);
    }

    fn gpu_classes() -> Vec<Eq4Class> {
        vec![
            // 4× V100 (reference speed)
            Eq4Class {
                count: 4,
                cost: AffineCost { c0: 0.15, per_sample: 1.733e-3 },
                b_min: 16,
                b_max: 112,
            },
            // 4× P100 (3× slower variable part)
            Eq4Class {
                count: 4,
                cost: AffineCost { c0: 0.15, per_sample: 5.2e-3 },
                b_min: 16,
                b_max: 96,
            },
        ]
    }

    #[test]
    fn eq4_hits_global_batch_exactly_when_divisible() {
        let sol = grad_accum_allocation(
            Eq4Config { global_batch: 768, c_min: 1, c_max: 5 },
            &gpu_classes(),
        )
        .expect("feasible");
        assert_eq!(sol.achieved_batch, 768);
        let total: u64 = sol
            .per_class
            .iter()
            .zip(&gpu_classes())
            .map(|(&(b, c), cl)| b * c as u64 * cl.count as u64)
            .sum();
        assert_eq!(total, 768);
        // Box constraints.
        for (&(b, c), cl) in sol.per_class.iter().zip(&gpu_classes()) {
            assert!(b >= cl.b_min && b <= cl.b_max, "B={b}");
            assert!((1..=5).contains(&c));
        }
    }

    #[test]
    fn eq4_beats_lb_bsp_when_caps_bind() {
        // LB-BSP proportional: V100 wants 768*3/(4*3+4) = 144 > cap 112 =>
        // clamps and overloads P100s. Eq. 4 uses accumulation instead.
        let classes = gpu_classes();
        let caps = [112u64, 112, 112, 112, 96, 96, 96, 96];
        let v: Vec<f64> = (0..8)
            .map(|i| {
                let cl = &classes[usize::from(i >= 4)];
                96.0 / cl.cost.time(96)
            })
            .collect();
        let lb = lb_bsp_allocation(768, &v, &caps);
        let lb_round = lb
            .iter()
            .enumerate()
            .map(|(i, &b)| classes[usize::from(i >= 4)].cost.time(b))
            .fold(0.0f64, f64::max);

        let sol =
            grad_accum_allocation(Eq4Config { global_batch: 768, c_min: 1, c_max: 5 }, &classes)
                .unwrap();
        assert!(
            sol.objective_secs < lb_round + 1e-9,
            "eq4 {} vs lb-bsp {}",
            sol.objective_secs,
            lb_round
        );
    }

    #[test]
    fn eq4_infeasible_when_batch_exceeds_capacity() {
        let classes = vec![Eq4Class {
            count: 2,
            cost: AffineCost { c0: 0.1, per_sample: 1e-3 },
            b_min: 1,
            b_max: 10,
        }];
        // max possible = 2 * 5 * 10 = 100 < 101
        let sol =
            grad_accum_allocation(Eq4Config { global_batch: 101, c_min: 1, c_max: 5 }, &classes);
        assert!(sol.is_none());
    }

    #[test]
    fn eq4_degenerate_configs() {
        assert!(grad_accum_allocation(
            Eq4Config { global_batch: 0, c_min: 1, c_max: 5 },
            &gpu_classes()
        )
        .is_none());
        assert!(grad_accum_allocation(
            Eq4Config { global_batch: 10, c_min: 0, c_max: 5 },
            &gpu_classes()
        )
        .is_none());
        assert!(grad_accum_allocation(Eq4Config { global_batch: 10, c_min: 1, c_max: 5 }, &[])
            .is_none());
    }

    #[test]
    fn eq4_homogeneous_cluster_needs_no_accumulation() {
        let classes = vec![Eq4Class {
            count: 8,
            cost: AffineCost { c0: 0.1, per_sample: 1e-3 },
            b_min: 8,
            b_max: 128,
        }];
        let sol =
            grad_accum_allocation(Eq4Config { global_batch: 512, c_min: 1, c_max: 5 }, &classes)
                .unwrap();
        assert_eq!(sol.per_class[0], (64, 1));
        assert_eq!(sol.achieved_batch, 512);
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]
        #[test]
        fn eq3_sums_and_is_optimal(
            b in 0u64..40,
            v in proptest::collection::vec(0.1f64..10.0, 1..5),
        ) {
            let alloc = minmax_batch_allocation(b, &v, 0);
            prop_assert_eq!(alloc.iter().sum::<u64>(), b);
            let got = allocation_objective(&alloc, &v);
            let want = super::brute_force_eq3(b, &v);
            prop_assert!((got - want).abs() < 1e-9, "got {} want {}", got, want);
        }

        #[test]
        fn eq3_sums_at_scale(
            b in 0u64..100_000,
            v in proptest::collection::vec(0.0f64..100.0, 1..64),
        ) {
            let alloc = minmax_batch_allocation(b, &v, 1);
            prop_assert_eq!(alloc.iter().sum::<u64>(), b);
            // Dead workers get nothing (when someone is alive).
            if v.iter().any(|&x| x > 0.0) {
                for (i, &vi) in v.iter().enumerate() {
                    if vi <= 0.0 {
                        prop_assert_eq!(alloc[i], 0);
                    }
                }
            }
        }

        #[test]
        fn lb_bsp_sums_and_respects_caps_when_roomy(
            b in 0u64..10_000,
            v in proptest::collection::vec(0.1f64..10.0, 1..16),
        ) {
            // Caps with plenty of headroom.
            let caps: Vec<u64> = v.iter().map(|_| b + 1).collect();
            let alloc = lb_bsp_allocation(b, &v, &caps);
            prop_assert_eq!(alloc.iter().sum::<u64>(), b);
            for (a, c) in alloc.iter().zip(&caps) {
                prop_assert!(a <= c);
            }
        }

        #[test]
        fn eq4_feasible_solutions_respect_all_constraints(
            b in 1u64..5_000,
            k in 1usize..4,
            seed in 0u64..1_000,
        ) {
            let mk = |i: u64| Eq4Class {
                count: (1 + (seed + i) % 6) as u32,
                cost: AffineCost {
                    c0: 0.01 + ((seed * 7 + i) % 20) as f64 * 0.01,
                    per_sample: 1e-4 * (1.0 + ((seed * 13 + i) % 30) as f64),
                },
                b_min: 1 + (seed + i) % 8,
                b_max: 32 + ((seed * 3 + i) % 100),
            };
            let classes: Vec<Eq4Class> = (0..k as u64).map(mk).collect();
            if let Some(sol) = grad_accum_allocation(
                Eq4Config { global_batch: b, c_min: 1, c_max: 4 },
                &classes,
            ) {
                let total: u64 = sol.per_class.iter().zip(&classes)
                    .map(|(&(bb, c), cl)| bb * c as u64 * cl.count as u64).sum();
                prop_assert_eq!(total, sol.achieved_batch);
                prop_assert!(sol.achieved_batch >= b);
                // Surplus is irreducible: no class can shed another unit — its
                // batch sits on the saturation floor or its step exceeds the
                // remaining slack.
                let surplus = sol.achieved_batch - b;
                for (&(bb, c), cl) in sol.per_class.iter().zip(&classes) {
                    let step = c as u64 * cl.count as u64;
                    prop_assert!(
                        bb == cl.b_min || step > surplus,
                        "class could shed: B={} floor={} step={} surplus={}",
                        bb, cl.b_min, step, surplus
                    );
                }
                for (&(bb, c), cl) in sol.per_class.iter().zip(&classes) {
                    prop_assert!(bb >= cl.b_min && bb <= cl.b_max);
                    prop_assert!((1..=4).contains(&c));
                    prop_assert!(c as f64 * cl.cost.time(bb) <= sol.objective_secs + 1e-9);
                }
            }
        }
    }
}
