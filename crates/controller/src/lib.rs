//! # antdt-controller — the AntDT Controller component
//!
//! Holds the pre-defined straggler-mitigation **action set** (paper Table II),
//! the optimization **solvers** behind `ADJUST_BS` (Eq. 3 for CPU workers,
//! Eq. 4 with gradient accumulation for heterogeneous GPUs), and the
//! **policies** — the paper's two shipped solutions plus every baseline the
//! evaluation compares against:
//!
//! | Policy           | Paper role |
//! |------------------|------------|
//! | [`AntDtNd`]      | §VI-A — non-dedicated clusters: `ADJUST_BS` for transient stragglers, gated `KILL_RESTART` for persistent worker/server stragglers |
//! | [`AntDtDd`]      | §VI-B — dedicated heterogeneous GPU clusters: one-shot joint batch-size + gradient-accumulation optimization |
//! | [`LbBsp`]        | LB-BSP baseline \[18\]: throughput-proportional batch re-balancing, no kills |
//! | [`BackupWorkersPolicy`] | Sync-OPT backup workers \[28\] (the DDS puts dropped shards back) |
//! | [`KillRestartOnly`] | scheduling-only mitigation (also what AntDT-ND degrades to in ASP mode) |
//! | [`AdjustLrPolicy`] | optimization-based baseline (excluded from the paper's JCT comparisons, provided for completeness) |
//! | [`NoMitigation`] | native BSP/ASP/DDP |
//!
//! Policies are pure deciders: they consume [`antdt_monitor::MonitorSnapshot`]s and emit
//! [`Action`]s; executing them (and all data/fault plumbing) is the framework's
//! job, which is exactly the separation the paper argues for.

pub mod action;
pub mod baselines;
pub mod compose;
pub mod dd;
pub mod elastic;
pub mod nd;
pub mod policy;
pub mod solve;

pub use action::{Action, ActionType};
/// The Controller's checkpoint-cadence knob, re-exported from the
/// `antdt-ckpt` leaf so policies and callers configure it from one place:
/// `Fixed` pins the interval, `Adaptive` retunes it online from the observed
/// fault rate (Young's approximation, clamped to `[min_secs, max_secs]`).
pub use antdt_ckpt::CkptPolicy;
pub use baselines::{AdjustLrPolicy, BackupWorkersPolicy, KillRestartOnly, LbBsp, NoMitigation};
pub use compose::{AdaptiveBackupWorkers, Composite};
pub use dd::{AntDtDd, DdConfig, DeviceClassSpec};
pub use elastic::{ElasticConfig, ElasticPolicy};
pub use nd::{AntDtNd, NdConfig};
pub use policy::{MitigationPolicy, PolicyCtx};
pub use solve::{
    grad_accum_allocation, lb_bsp_allocation, minmax_batch_allocation, AffineCost, Eq4Class,
    Eq4Config, Eq4Solution,
};
