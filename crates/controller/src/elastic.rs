//! The elasticity policy: grow or shrink the worker set as a first-class
//! mitigation, complementing the fixed-size action set of paper §V.
//!
//! Scale out when a *persistent* straggler keeps dragging the barrier
//! (`T̄ᵢᵖᵉʳ ≥ λ·T̄ᵖᵉʳ` for several consecutive ticks) and the cluster can
//! actually deliver a node quickly (not busy, expected pending time under a
//! gate) — adding capacity dilutes the straggler's share instead of waiting
//! behind it. Scale in when the cluster shows sustained idle capacity: every
//! worker's local batch sits at or below a floor (the global batch spread too
//! thin) for several consecutive ticks, so retiring the slowest member
//! consolidates load at no throughput cost.

use crate::action::Action;
use crate::policy::{MitigationPolicy, PolicyCtx};
use antdt_monitor::{MonitorSnapshot, NodeStats};
use antdt_sim::{SimDuration, SimTime};
use antdt_telemetry::DecisionRecord;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ElasticConfig {
    /// Relative slowness ratio `λ` (same default as AntDT-ND).
    pub lambda: f64,
    /// Hard ceiling on the worker set (provisioning budget).
    pub max_workers: u32,
    /// Hard floor on the worker set.
    pub min_workers: u32,
    /// Workers added per scale-out decision.
    pub scale_out_step: u32,
    /// Persistent-straggler ticks required before scaling out.
    pub straggler_ticks: u32,
    /// Only scale out when the scheduler's expected pending time is at or
    /// under this (a node must arrive fast enough to matter).
    pub pending_gate_secs: f64,
    /// A worker counts as idle capacity when its local batch is at or under
    /// this floor (the global batch is spread too thin).
    pub idle_batch_floor: u64,
    /// Idle-capacity ticks required before scaling in.
    pub idle_ticks: u32,
    /// Minimum spacing between membership changes, in either direction.
    pub cooldown: SimDuration,
}

impl Default for ElasticConfig {
    fn default() -> Self {
        ElasticConfig {
            lambda: 1.5,
            max_workers: 64,
            min_workers: 1,
            scale_out_step: 1,
            straggler_ticks: 2,
            pending_gate_secs: 120.0,
            idle_batch_floor: 0,
            idle_ticks: 3,
            cooldown: SimDuration::from_minutes(15),
        }
    }
}

/// Elasticity policy state. Usually composed with a fixed-size policy (see
/// [`crate::compose`]) so batch re-balancing keeps running between resizes.
#[derive(Debug, Clone)]
pub struct ElasticPolicy {
    cfg: ElasticConfig,
    straggler_streak: u32,
    idle_streak: u32,
    last_resize: Option<SimTime>,
    scale_outs: u64,
    scale_ins: u64,
    audit: Vec<DecisionRecord>,
}

impl ElasticPolicy {
    pub fn new(cfg: ElasticConfig) -> Self {
        assert!(cfg.lambda > 1.0, "lambda must exceed 1");
        assert!(cfg.min_workers >= 1);
        assert!(cfg.scale_out_step >= 1);
        ElasticPolicy {
            cfg,
            straggler_streak: 0,
            idle_streak: 0,
            last_resize: None,
            scale_outs: 0,
            scale_ins: 0,
            audit: Vec::new(),
        }
    }

    pub fn scale_outs(&self) -> u64 {
        self.scale_outs
    }

    pub fn scale_ins(&self) -> u64 {
        self.scale_ins
    }

    fn cooled_down(&self, now: SimTime) -> bool {
        match self.last_resize {
            Some(t) => now.since(t) >= self.cfg.cooldown,
            None => true,
        }
    }
}

fn alive_workers(snap: &MonitorSnapshot) -> impl Iterator<Item = &NodeStats> {
    snap.workers.iter().filter(|s| s.alive)
}

impl MitigationPolicy for ElasticPolicy {
    fn clone_box(&self) -> Box<dyn MitigationPolicy> {
        Box::new(self.clone())
    }

    fn name(&self) -> &'static str {
        "elastic"
    }

    fn decide(&mut self, now: SimTime, snap: &MonitorSnapshot, _ctx: &PolicyCtx) -> Vec<Action> {
        let alive = alive_workers(snap).count() as u32;
        if alive == 0 {
            return vec![Action::None];
        }

        // ---- Persistent-straggler streak (scale-out trigger). ----
        let mean_per = snap.mean_worker_bpt_per();
        let straggler = match mean_per {
            Some(mean) => {
                alive_workers(snap).any(|s| s.bpt_per.is_some_and(|t| t >= self.cfg.lambda * mean))
            }
            None => false,
        };
        self.straggler_streak = if straggler { self.straggler_streak + 1 } else { 0 };

        // ---- Idle-capacity streak (scale-in trigger). ----
        let idle = self.cfg.idle_batch_floor > 0
            && alive_workers(snap).all(|s| s.batch.is_some_and(|b| b <= self.cfg.idle_batch_floor));
        self.idle_streak = if idle { self.idle_streak + 1 } else { 0 };

        if !self.cooled_down(now) {
            return vec![Action::None];
        }

        // Scale out: sustained straggler, deliverable capacity, under the cap.
        if self.straggler_streak >= self.cfg.straggler_ticks
            && !snap.cluster.busy
            && snap.cluster.expected_pending_secs <= self.cfg.pending_gate_secs
            && alive < self.cfg.max_workers
        {
            let add = self.cfg.scale_out_step.min(self.cfg.max_workers - alive);
            self.last_resize = Some(now);
            self.straggler_streak = 0;
            self.scale_outs += 1;
            let action = Action::ScaleOut { add };
            self.audit.push(DecisionRecord {
                at_us: now.as_micros(),
                rule: "elastic-scale-out".into(),
                node: String::new(),
                window: BTreeMap::from([
                    ("lambda".into(), self.cfg.lambda),
                    ("mean_bpt_per".into(), mean_per.unwrap_or(f64::NAN)),
                    ("alive_workers".into(), alive as f64),
                    ("add".into(), add as f64),
                    ("pending_secs".into(), snap.cluster.expected_pending_secs),
                ]),
                solver: None,
                actions: vec![format!("{action:?}")],
            });
            return vec![action];
        }

        // Scale in: sustained idle capacity, above the floor. Retire the
        // slowest member — it drags barriers, and its batch share re-homes
        // onto faster survivors.
        if self.idle_streak >= self.cfg.idle_ticks && alive > self.cfg.min_workers {
            if let Some(victim) = alive_workers(snap).max_by(|a, b| {
                let (ta, tb) = (a.bpt_per.unwrap_or(0.0), b.bpt_per.unwrap_or(0.0));
                ta.partial_cmp(&tb).unwrap().then(a.node.idx.cmp(&b.node.idx))
            }) {
                self.last_resize = Some(now);
                self.idle_streak = 0;
                self.scale_ins += 1;
                let action = Action::ScaleIn { node: victim.node };
                self.audit.push(DecisionRecord {
                    at_us: now.as_micros(),
                    rule: "elastic-scale-in".into(),
                    node: victim.node.to_string(),
                    window: BTreeMap::from([
                        ("alive_workers".into(), alive as f64),
                        ("idle_batch_floor".into(), self.cfg.idle_batch_floor as f64),
                        ("victim_bpt_per".into(), victim.bpt_per.unwrap_or(f64::NAN)),
                    ]),
                    solver: None,
                    actions: vec![format!("{action:?}")],
                });
                return vec![action];
            }
        }

        vec![Action::None]
    }

    fn drain_audit(&mut self) -> Vec<DecisionRecord> {
        std::mem::take(&mut self.audit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use antdt_monitor::{ClusterInfo, NodeId};

    fn worker(idx: u32, per: f64, batch: u64, alive: bool) -> NodeStats {
        NodeStats {
            node: NodeId::worker(idx),
            bpt_trans: Some(per),
            bpt_per: Some(per),
            throughput: Some(100.0 / per),
            batch: Some(batch),
            alive,
        }
    }

    fn snap(workers: Vec<NodeStats>, busy: bool, pending: f64) -> MonitorSnapshot {
        MonitorSnapshot {
            workers,
            servers: vec![],
            cluster: ClusterInfo { busy, expected_pending_secs: pending },
        }
    }

    fn ctx() -> PolicyCtx {
        PolicyCtx { global_batch: 4096, n_workers: 3, n_servers: 1 }
    }

    fn straggling() -> MonitorSnapshot {
        snap(
            vec![
                worker(0, 2.0, 1000, true),
                worker(1, 2.0, 1000, true),
                worker(2, 7.0, 1000, true),
            ],
            false,
            10.0,
        )
    }

    #[test]
    fn scale_out_needs_a_sustained_straggler() {
        let mut p = ElasticPolicy::new(ElasticConfig::default());
        // One straggling tick: below the streak requirement.
        assert_eq!(
            p.decide(SimTime::from_secs_f64(60.0), &straggling(), &ctx()),
            vec![Action::None]
        );
        // Second consecutive tick: fire.
        let actions = p.decide(SimTime::from_secs_f64(120.0), &straggling(), &ctx());
        assert_eq!(actions, vec![Action::ScaleOut { add: 1 }]);
        assert_eq!(p.scale_outs(), 1);
        let audit = p.drain_audit();
        assert_eq!(audit.len(), 1);
        assert_eq!(audit[0].rule, "elastic-scale-out");
    }

    #[test]
    fn straggler_streak_resets_on_a_healthy_tick() {
        let mut p = ElasticPolicy::new(ElasticConfig::default());
        p.decide(SimTime::from_secs_f64(60.0), &straggling(), &ctx());
        let healthy =
            snap(vec![worker(0, 2.0, 1000, true), worker(1, 2.1, 1000, true)], false, 10.0);
        p.decide(SimTime::from_secs_f64(120.0), &healthy, &ctx());
        // The streak restarted: one more straggling tick is not enough.
        assert_eq!(
            p.decide(SimTime::from_secs_f64(180.0), &straggling(), &ctx()),
            vec![Action::None]
        );
    }

    #[test]
    fn busy_cluster_or_long_pending_gates_scale_out() {
        let mut p = ElasticPolicy::new(ElasticConfig::default());
        let busy = snap(straggling().workers, true, 900.0);
        p.decide(SimTime::from_secs_f64(60.0), &busy, &ctx());
        assert_eq!(p.decide(SimTime::from_secs_f64(120.0), &busy, &ctx()), vec![Action::None]);
        let slow_queue = snap(straggling().workers, false, 900.0);
        assert_eq!(
            p.decide(SimTime::from_secs_f64(180.0), &slow_queue, &ctx()),
            vec![Action::None]
        );
        assert_eq!(p.scale_outs(), 0);
    }

    #[test]
    fn max_workers_caps_growth_and_cooldown_spaces_resizes() {
        let cfg = ElasticConfig { max_workers: 3, ..Default::default() };
        let mut p = ElasticPolicy::new(cfg);
        // Already at the cap: never scales out.
        p.decide(SimTime::from_secs_f64(60.0), &straggling(), &ctx());
        assert_eq!(
            p.decide(SimTime::from_secs_f64(120.0), &straggling(), &ctx()),
            vec![Action::None]
        );

        let mut p = ElasticPolicy::new(ElasticConfig::default());
        p.decide(SimTime::from_secs_f64(60.0), &straggling(), &ctx());
        assert!(matches!(
            p.decide(SimTime::from_secs_f64(120.0), &straggling(), &ctx())[0],
            Action::ScaleOut { .. }
        ));
        // Within the cooldown, another sustained straggler changes nothing.
        for i in 0..5 {
            let t = SimTime::from_secs_f64(180.0 + i as f64 * 60.0);
            assert_eq!(p.decide(t, &straggling(), &ctx()), vec![Action::None]);
        }
    }

    #[test]
    fn sustained_idle_capacity_scales_in_the_slowest() {
        let cfg = ElasticConfig { idle_batch_floor: 256, idle_ticks: 2, ..Default::default() };
        let mut p = ElasticPolicy::new(cfg);
        let idle = snap(
            vec![worker(0, 2.0, 100, true), worker(1, 2.0, 100, true), worker(2, 3.0, 100, true)],
            false,
            10.0,
        );
        assert_eq!(p.decide(SimTime::from_secs_f64(60.0), &idle, &ctx()), vec![Action::None]);
        let actions = p.decide(SimTime::from_secs_f64(120.0), &idle, &ctx());
        assert_eq!(actions, vec![Action::ScaleIn { node: NodeId::worker(2) }]);
        assert_eq!(p.scale_ins(), 1);
        assert_eq!(p.drain_audit()[0].rule, "elastic-scale-in");
    }

    #[test]
    fn min_workers_floors_scale_in_and_zero_floor_disables_it() {
        let cfg = ElasticConfig {
            idle_batch_floor: 256,
            idle_ticks: 1,
            min_workers: 2,
            ..Default::default()
        };
        let mut p = ElasticPolicy::new(cfg);
        let idle = snap(vec![worker(0, 2.0, 100, true), worker(1, 2.0, 100, true)], false, 10.0);
        assert_eq!(p.decide(SimTime::from_secs_f64(60.0), &idle, &ctx()), vec![Action::None]);

        // Default config (floor 0): scale-in can never fire.
        let mut p = ElasticPolicy::new(ElasticConfig::default());
        for i in 0..6 {
            let t = SimTime::from_secs_f64(60.0 * (i + 1) as f64);
            assert_eq!(p.decide(t, &idle, &ctx()), vec![Action::None]);
        }
        assert_eq!(p.scale_ins(), 0);
    }
}
