//! AntDT-ND — the straggler-mitigation solution for non-dedicated clusters
//! (paper §VI-A).
//!
//! Worker side: transient stragglers (`T̄ᵢᵗʳᵃⁿˢ ≥ λ·T̄ᵗʳᵃⁿˢ`) trigger the
//! lightweight `ADJUST_BS` (Eq. 3 re-solve from measured throughputs);
//! persistent stragglers (`T̄ᵢᵖᵉʳ ≥ λ·T̄ᵖᵉʳ`) trigger the heavyweight
//! `KILL_RESTART`, gated on the cluster being idle (pending time is "dozens of
//! minutes" at peak). Server side: persistent detection only, always answered
//! by `KILL_RESTART` since no load-balancing action can shrink `Tᵢˢ`/`Tᵢᵐ`.

use crate::action::Action;
use crate::policy::{worker_throughputs, MitigationPolicy, PolicyCtx};
use crate::solve::minmax_batch_allocation;
use antdt_monitor::{MonitorSnapshot, NodeId};
use antdt_sim::{SimDuration, SimTime};
use antdt_telemetry::{DecisionRecord, SolverTrace};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashMap};

#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NdConfig {
    /// Relative slowness ratio `λ` (paper default 1.5; must be > 1).
    pub lambda: f64,
    /// Smallest batch a live worker may be assigned.
    pub b_min: u64,
    /// Re-kill cooldown per node, so an in-flight failover or a just-restarted
    /// node isn't immediately killed again on stale statistics.
    pub kill_cooldown: SimDuration,
    /// Skip `KILL_RESTART` while the cluster is busy (§VI-A4).
    pub gate_on_busy: bool,
    /// Take `ADJUST_BS` for transient worker stragglers (true in BSP; in ASP
    /// the DDS already balances data, so AntDT-ND only kills — §VII-A3).
    pub adjust_bs: bool,
    /// Take `KILL_RESTART` on persistent worker stragglers.
    pub kill_workers: bool,
    /// Take `KILL_RESTART` on persistent server stragglers.
    pub kill_servers: bool,
}

impl Default for NdConfig {
    fn default() -> Self {
        NdConfig {
            lambda: 1.5,
            b_min: 1,
            kill_cooldown: SimDuration::from_minutes(15),
            gate_on_busy: true,
            adjust_bs: true,
            kill_workers: true,
            kill_servers: true,
        }
    }
}

impl NdConfig {
    /// The ASP variant: only `KILL_RESTART` (the DDS handles balance).
    pub fn asp() -> Self {
        NdConfig { adjust_bs: false, ..Default::default() }
    }
}

/// AntDT-ND policy state.
#[derive(Debug, Clone)]
pub struct AntDtNd {
    cfg: NdConfig,
    last_alloc: Option<Vec<u64>>,
    last_kill: HashMap<NodeId, SimTime>,
    kills_issued: u64,
    audit: Vec<DecisionRecord>,
}

impl AntDtNd {
    pub fn new(cfg: NdConfig) -> Self {
        AntDtNd {
            cfg,
            last_alloc: None,
            last_kill: HashMap::new(),
            kills_issued: 0,
            audit: Vec::new(),
        }
    }

    pub fn kills_issued(&self) -> u64 {
        self.kills_issued
    }

    fn may_kill(&self, node: NodeId, now: SimTime) -> bool {
        match self.last_kill.get(&node) {
            Some(&t) => now.since(t) >= self.cfg.kill_cooldown,
            None => true,
        }
    }
}

impl MitigationPolicy for AntDtNd {
    fn clone_box(&self) -> Box<dyn MitigationPolicy> {
        Box::new(self.clone())
    }

    fn name(&self) -> &'static str {
        "antdt-nd"
    }

    fn decide(&mut self, now: SimTime, snap: &MonitorSnapshot, ctx: &PolicyCtx) -> Vec<Action> {
        let mut actions = Vec::new();
        let lambda = self.cfg.lambda;
        let busy_gated = self.cfg.gate_on_busy && snap.cluster.busy;

        // ---- Worker side: persistent stragglers -> KILL_RESTART (step 4),
        // decided first so the batch re-solve below can route the victim's
        // share to the survivors in the very same tick.
        let mut worker_victim: Option<u32> = None;
        if self.cfg.kill_workers && !busy_gated {
            if let Some(mean) = snap.mean_worker_bpt_per() {
                // Kill at most one worker per tick: each failover perturbs the
                // statistics of everyone else behind the barrier.
                if let Some(victim) = snap
                    .workers
                    .iter()
                    .filter(|s| {
                        s.alive
                            && s.bpt_per.is_some_and(|t| t >= lambda * mean)
                            && self.may_kill(s.node, now)
                    })
                    .max_by(|a, b| a.bpt_per.partial_cmp(&b.bpt_per).unwrap())
                {
                    self.last_kill.insert(victim.node, now);
                    self.kills_issued += 1;
                    worker_victim = Some(victim.node.idx);
                    let action = Action::KillRestart { node: victim.node };
                    self.audit.push(DecisionRecord {
                        at_us: now.as_micros(),
                        rule: "worker-persistent-kill".into(),
                        node: victim.node.to_string(),
                        window: BTreeMap::from([
                            ("lambda".into(), lambda),
                            ("mean_bpt_per".into(), mean),
                            ("victim_bpt_per".into(), victim.bpt_per.unwrap_or(f64::NAN)),
                        ]),
                        solver: None,
                        actions: vec![format!("{action:?}")],
                    });
                    actions.push(action);
                }
            }
        }

        // ---- Worker side: transient stragglers -> ADJUST_BS (steps 2-3). ----
        if self.cfg.adjust_bs {
            let transient_detected = match snap.mean_worker_bpt_trans() {
                Some(mean) => snap
                    .workers
                    .iter()
                    .any(|s| s.alive && s.bpt_trans.is_some_and(|t| t >= lambda * mean)),
                None => false,
            };
            // Re-solve also when the alive set changed (a kill or restart must
            // redistribute the fixed global batch immediately).
            let alive_changed = match &self.last_alloc {
                Some(prev) => snap.workers.iter().zip(prev).any(|(s, &b)| s.alive == (b == 0)),
                None => true,
            };
            if transient_detected || alive_changed || worker_victim.is_some() {
                let mut v = worker_throughputs(&snap.workers);
                if let Some(victim) = worker_victim {
                    if let Some(slot) = v.get_mut(victim as usize) {
                        *slot = 0.0; // the victim is as good as dead already
                    }
                }
                let alloc = minmax_batch_allocation(ctx.global_batch, &v, self.cfg.b_min);
                if self.last_alloc.as_ref() != Some(&alloc) {
                    self.last_alloc = Some(alloc.clone());
                    let mut window = BTreeMap::from([
                        ("lambda".into(), lambda),
                        ("transient_detected".into(), f64::from(u8::from(transient_detected))),
                        ("alive_changed".into(), f64::from(u8::from(alive_changed))),
                    ]);
                    if let Some(mean) = snap.mean_worker_bpt_trans() {
                        window.insert("mean_bpt_trans".into(), mean);
                    }
                    let action = Action::AdjustBs { batch_sizes: alloc.clone(), grad_accum: None };
                    self.audit.push(DecisionRecord {
                        at_us: now.as_micros(),
                        rule: "transient-adjust-bs".into(),
                        node: worker_victim
                            .map(|w| NodeId::worker(w).to_string())
                            .unwrap_or_default(),
                        window,
                        solver: Some(SolverTrace {
                            global_batch: ctx.global_batch,
                            throughputs: v,
                            b_min: self.cfg.b_min,
                            allocation: alloc,
                        }),
                        actions: vec![format!("{action:?}")],
                    });
                    actions.push(action);
                }
            }
        }

        // ---- Server side: persistent stragglers -> KILL_RESTART (§VI-A). ----
        if self.cfg.kill_servers && !busy_gated {
            if let Some(mean) = snap.mean_server_bpt_per() {
                if let Some(victim) = snap
                    .servers
                    .iter()
                    .filter(|s| {
                        s.alive
                            && s.bpt_per.is_some_and(|t| t >= lambda * mean)
                            && self.may_kill(s.node, now)
                    })
                    .max_by(|a, b| a.bpt_per.partial_cmp(&b.bpt_per).unwrap())
                {
                    self.last_kill.insert(victim.node, now);
                    self.kills_issued += 1;
                    let action = Action::KillRestart { node: victim.node };
                    self.audit.push(DecisionRecord {
                        at_us: now.as_micros(),
                        rule: "server-persistent-kill".into(),
                        node: victim.node.to_string(),
                        window: BTreeMap::from([
                            ("lambda".into(), lambda),
                            ("mean_bpt_per".into(), mean),
                            ("victim_bpt_per".into(), victim.bpt_per.unwrap_or(f64::NAN)),
                        ]),
                        solver: None,
                        actions: vec![format!("{action:?}")],
                    });
                    actions.push(action);
                }
            }
        }

        if actions.is_empty() {
            actions.push(Action::None); // step 5: explicit no-op
        }
        actions
    }

    fn drain_audit(&mut self) -> Vec<DecisionRecord> {
        std::mem::take(&mut self.audit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use antdt_monitor::{ClusterInfo, NodeStats};

    fn worker(idx: u32, trans: f64, per: f64, v: f64, alive: bool) -> NodeStats {
        NodeStats {
            node: NodeId::worker(idx),
            bpt_trans: Some(trans),
            bpt_per: Some(per),
            throughput: Some(v),
            batch: Some(100),
            alive,
        }
    }

    fn server(idx: u32, per: f64) -> NodeStats {
        NodeStats {
            node: NodeId::server(idx),
            bpt_trans: Some(per),
            bpt_per: Some(per),
            throughput: None,
            batch: None,
            alive: true,
        }
    }

    fn ctx() -> PolicyCtx {
        PolicyCtx { global_batch: 300, n_workers: 3, n_servers: 2 }
    }

    fn snap(workers: Vec<NodeStats>, servers: Vec<NodeStats>, busy: bool) -> MonitorSnapshot {
        MonitorSnapshot {
            workers,
            servers,
            cluster: ClusterInfo { busy, expected_pending_secs: if busy { 900.0 } else { 10.0 } },
        }
    }

    #[test]
    fn healthy_cluster_yields_none_after_initial_allocation() {
        let mut p = AntDtNd::new(NdConfig::default());
        let s = snap(
            vec![
                worker(0, 2.0, 2.0, 50.0, true),
                worker(1, 2.1, 2.1, 50.0, true),
                worker(2, 1.9, 1.9, 50.0, true),
            ],
            vec![server(0, 0.5), server(1, 0.5)],
            false,
        );
        // First tick emits the initial allocation (alive set was unknown).
        let a1 = p.decide(SimTime::from_secs_f64(300.0), &s, &ctx());
        assert!(matches!(a1[0], Action::AdjustBs { .. }));
        // Steady state: explicit None.
        let a2 = p.decide(SimTime::from_secs_f64(600.0), &s, &ctx());
        assert_eq!(a2, vec![Action::None]);
    }

    #[test]
    fn transient_straggler_triggers_rebalance_toward_fast_workers() {
        let mut p = AntDtNd::new(NdConfig::default());
        let healthy = snap(
            vec![
                worker(0, 2.0, 2.0, 50.0, true),
                worker(1, 2.0, 2.0, 50.0, true),
                worker(2, 2.0, 2.0, 50.0, true),
            ],
            vec![],
            false,
        );
        p.decide(SimTime::from_secs_f64(300.0), &healthy, &ctx());
        // Worker 2 becomes 3x slower in the short window only.
        let degraded = snap(
            vec![
                worker(0, 2.0, 2.0, 50.0, true),
                worker(1, 2.0, 2.0, 50.0, true),
                worker(2, 6.0, 2.5, 50.0 / 3.0, true),
            ],
            vec![],
            false,
        );
        let actions = p.decide(SimTime::from_secs_f64(600.0), &degraded, &ctx());
        let Action::AdjustBs { batch_sizes, .. } = &actions[0] else {
            panic!("expected AdjustBs, got {actions:?}");
        };
        assert_eq!(batch_sizes.iter().sum::<u64>(), 300);
        assert!(batch_sizes[2] < batch_sizes[0], "straggler gets less: {batch_sizes:?}");
    }

    #[test]
    fn persistent_worker_straggler_is_killed_once() {
        let mut p = AntDtNd::new(NdConfig::default());
        let s = snap(
            vec![
                worker(0, 2.0, 2.0, 50.0, true),
                worker(1, 2.0, 2.0, 50.0, true),
                worker(2, 7.0, 7.0, 14.0, true), // >= 1.5 * mean in both windows
            ],
            vec![],
            false,
        );
        let actions = p.decide(SimTime::from_secs_f64(600.0), &s, &ctx());
        assert!(actions.contains(&Action::KillRestart { node: NodeId::worker(2) }), "{actions:?}");
        // Cooldown: the same snapshot a minute later must not re-kill.
        let again = p.decide(SimTime::from_secs_f64(660.0), &s, &ctx());
        assert!(!again.iter().any(|a| matches!(a, Action::KillRestart { .. })));
        assert_eq!(p.kills_issued(), 1);
    }

    #[test]
    fn busy_cluster_gates_kill_restart_but_not_adjust_bs() {
        let mut p = AntDtNd::new(NdConfig::default());
        let s = snap(
            vec![
                worker(0, 2.0, 2.0, 50.0, true),
                worker(1, 2.0, 2.0, 50.0, true),
                worker(2, 8.0, 8.0, 12.0, true),
            ],
            vec![],
            true, // cluster busy
        );
        let actions = p.decide(SimTime::from_secs_f64(600.0), &s, &ctx());
        assert!(!actions.iter().any(|a| matches!(a, Action::KillRestart { .. })));
        assert!(actions.iter().any(|a| matches!(a, Action::AdjustBs { .. })));
    }

    #[test]
    fn persistent_server_straggler_is_killed() {
        let mut p = AntDtNd::new(NdConfig::default());
        let s = snap(
            vec![worker(0, 2.0, 2.0, 50.0, true), worker(1, 2.0, 2.0, 50.0, true)],
            vec![server(0, 0.5), server(1, 0.5), server(2, 2.5)],
            false,
        );
        let actions = p.decide(SimTime::from_secs_f64(600.0), &s, &ctx());
        assert!(actions.contains(&Action::KillRestart { node: NodeId::server(2) }), "{actions:?}");
    }

    #[test]
    fn asp_variant_never_adjusts_batch() {
        let mut p = AntDtNd::new(NdConfig::asp());
        let s = snap(
            vec![
                worker(0, 2.0, 2.0, 50.0, true),
                worker(1, 9.0, 2.0, 11.0, true), // transient only
            ],
            vec![],
            false,
        );
        let actions = p.decide(SimTime::from_secs_f64(600.0), &s, &ctx());
        assert_eq!(actions, vec![Action::None]);
    }

    #[test]
    fn audit_records_each_fired_rule_and_drains() {
        let mut p = AntDtNd::new(NdConfig::default());
        let s = snap(
            vec![
                worker(0, 2.0, 2.0, 50.0, true),
                worker(1, 2.0, 2.0, 50.0, true),
                worker(2, 7.0, 7.0, 14.0, true),
            ],
            vec![server(0, 0.5), server(1, 0.5), server(2, 2.5)],
            false,
        );
        let actions = p.decide(SimTime::from_secs_f64(600.0), &s, &ctx());
        let audit = p.drain_audit();
        assert_eq!(audit.len(), actions.len(), "one record per emitted action");
        let rules: Vec<&str> = audit.iter().map(|r| r.rule.as_str()).collect();
        assert_eq!(
            rules,
            vec!["worker-persistent-kill", "transient-adjust-bs", "server-persistent-kill"]
        );
        assert_eq!(audit[0].node, "w2");
        assert_eq!(audit[0].window["lambda"], 1.5);
        let solver = audit[1].solver.as_ref().expect("adjust-bs traces the solver");
        assert_eq!(solver.global_batch, 300);
        assert_eq!(solver.allocation.iter().sum::<u64>(), 300);
        assert_eq!(solver.throughputs[2], 0.0, "victim zeroed before the solve");
        assert_eq!(audit[2].node, "ps-2");
        // Drained: a second call returns nothing.
        assert!(p.drain_audit().is_empty());
        // A quiet tick (cooldown + unchanged alloc) records nothing.
        p.decide(SimTime::from_secs_f64(660.0), &s, &ctx());
        let quiet: Vec<_> =
            p.drain_audit().into_iter().filter(|r| r.rule != "transient-adjust-bs").collect();
        assert!(quiet.is_empty(), "{quiet:?}");
    }

    #[test]
    fn dead_worker_forces_rebalance_with_zero_share() {
        let mut p = AntDtNd::new(NdConfig::default());
        let healthy = snap(
            vec![worker(0, 2.0, 2.0, 50.0, true), worker(1, 2.0, 2.0, 50.0, true)],
            vec![],
            false,
        );
        p.decide(SimTime::from_secs_f64(300.0), &healthy, &ctx());
        let mut one_dead = healthy.clone();
        one_dead.workers[1].alive = false;
        let actions = p.decide(SimTime::from_secs_f64(600.0), &one_dead, &ctx());
        let Action::AdjustBs { batch_sizes, .. } = &actions[0] else {
            panic!("expected AdjustBs, got {actions:?}");
        };
        assert_eq!(batch_sizes[1], 0);
        assert_eq!(batch_sizes[0], 300);
    }
}
