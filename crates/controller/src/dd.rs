//! AntDT-DD — the solution for dedicated clusters with heterogeneous hardware
//! (paper §VI-B).
//!
//! Deterministic stragglers (V100 vs P100) don't drift, so the policy measures
//! once, solves Eq. 4 (joint batch size + gradient accumulation under the
//! saturation/memory box constraints) and emits a single `ADJUST_BS`; after
//! that it stays silent ("adjusting the batch size only needs to be performed
//! once since these stragglers are deterministic").

use crate::action::Action;
use crate::policy::{MitigationPolicy, PolicyCtx};
use crate::solve::{grad_accum_allocation, AffineCost, Eq4Class, Eq4Config};
use antdt_monitor::MonitorSnapshot;
use antdt_sim::SimTime;
use serde::{Deserialize, Serialize};

/// Static description of one device class; workers are laid out in class order
/// (first `count` workers are class 0, the next are class 1, …) matching the
/// cluster builders.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DeviceClassSpec {
    pub count: u32,
    /// Fixed per-micro-batch overhead (profiled; paper footnote 4 measures the
    /// saturation curve "by varying the batch size").
    pub c0_secs: f64,
    /// `B̂ᵢᵐⁱⁿ` — saturation point.
    pub b_min: u64,
    /// `B̂ᵢᵐᵃˣ` — memory cap (95% GPU memory).
    pub b_max: u64,
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DdConfig {
    pub classes: Vec<DeviceClassSpec>,
    /// `Ĉᵐⁱⁿ` (usually 1) and `Ĉᵐᵃˣ` (e.g. 5).
    pub c_min: u32,
    pub c_max: u32,
    /// Wait this many decision ticks for throughput statistics to stabilize
    /// before the one-shot solve.
    pub warmup_ticks: u32,
}

impl DdConfig {
    pub fn new(classes: Vec<DeviceClassSpec>) -> Self {
        DdConfig { classes, c_min: 1, c_max: 5, warmup_ticks: 1 }
    }

    pub fn n_workers(&self) -> usize {
        self.classes.iter().map(|c| c.count as usize).sum()
    }
}

#[derive(Debug, Clone)]
pub struct AntDtDd {
    cfg: DdConfig,
    ticks: u32,
    done: bool,
}

impl AntDtDd {
    pub fn new(cfg: DdConfig) -> Self {
        AntDtDd { cfg, ticks: 0, done: false }
    }

    pub fn is_done(&self) -> bool {
        self.done
    }

    /// Estimate each class's marginal per-sample cost from the measured BPTs:
    /// `per_sample = (mean BPT − c0) / batch`, averaged over the class's
    /// workers. Returns `None` until every class has at least one measurement.
    fn estimate_classes(&self, snap: &MonitorSnapshot) -> Option<Vec<Eq4Class>> {
        let mut out = Vec::with_capacity(self.cfg.classes.len());
        let mut at = 0usize;
        for spec in &self.cfg.classes {
            let members = snap.workers.get(at..at + spec.count as usize)?;
            at += spec.count as usize;
            let mut sum = 0.0;
            let mut n = 0u32;
            for s in members {
                if let (Some(bpt), Some(batch)) = (s.bpt_trans, s.batch) {
                    if batch > 0 && bpt > spec.c0_secs {
                        sum += (bpt - spec.c0_secs) / batch as f64;
                        n += 1;
                    }
                }
            }
            if n == 0 {
                return None;
            }
            out.push(Eq4Class {
                count: spec.count,
                cost: AffineCost { c0: spec.c0_secs, per_sample: sum / n as f64 },
                b_min: spec.b_min,
                b_max: spec.b_max,
            });
        }
        Some(out)
    }
}

impl MitigationPolicy for AntDtDd {
    fn clone_box(&self) -> Box<dyn MitigationPolicy> {
        Box::new(self.clone())
    }

    fn name(&self) -> &'static str {
        "antdt-dd"
    }

    fn decide(&mut self, _now: SimTime, snap: &MonitorSnapshot, ctx: &PolicyCtx) -> Vec<Action> {
        if self.done {
            return vec![Action::None];
        }
        self.ticks += 1;
        if self.ticks <= self.cfg.warmup_ticks {
            return vec![Action::None];
        }
        let Some(classes) = self.estimate_classes(snap) else {
            return vec![Action::None];
        };
        let Some(sol) = grad_accum_allocation(
            Eq4Config {
                global_batch: ctx.global_batch,
                c_min: self.cfg.c_min,
                c_max: self.cfg.c_max,
            },
            &classes,
        ) else {
            return vec![Action::None];
        };

        // Expand per-class (B, C) to per-worker vectors.
        let mut batch_sizes = Vec::with_capacity(ctx.n_workers);
        let mut accums = Vec::with_capacity(ctx.n_workers);
        for (spec, &(b, c)) in self.cfg.classes.iter().zip(&sol.per_class) {
            for _ in 0..spec.count {
                batch_sizes.push(b);
                accums.push(c);
            }
        }
        self.done = true;
        vec![Action::AdjustBs { batch_sizes, grad_accum: Some(accums) }]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use antdt_monitor::{ClusterInfo, NodeId, NodeStats};

    fn gpu_cfg() -> DdConfig {
        DdConfig::new(vec![
            DeviceClassSpec { count: 2, c0_secs: 0.15, b_min: 16, b_max: 112 }, // V100-ish
            DeviceClassSpec { count: 2, c0_secs: 0.15, b_min: 16, b_max: 96 },  // P100-ish
        ])
    }

    fn snap_with_bpts(bpts: &[f64], batch: u64) -> MonitorSnapshot {
        MonitorSnapshot {
            workers: bpts
                .iter()
                .enumerate()
                .map(|(i, &t)| NodeStats {
                    node: NodeId::worker(i as u32),
                    bpt_trans: Some(t),
                    bpt_per: Some(t),
                    throughput: Some(batch as f64 / t),
                    batch: Some(batch),
                    alive: true,
                })
                .collect(),
            servers: vec![],
            cluster: ClusterInfo::default(),
        }
    }

    fn ctx() -> PolicyCtx {
        PolicyCtx { global_batch: 384, n_workers: 4, n_servers: 0 }
    }

    #[test]
    fn one_shot_solve_then_silence() {
        let mut p = AntDtDd::new(gpu_cfg());
        // V100s at 96 samples: 0.15 + 96*0.001733 = 0.316; P100s: 0.649.
        let s = snap_with_bpts(&[0.316, 0.316, 0.649, 0.649], 96);
        // Warmup tick.
        assert_eq!(p.decide(SimTime::ZERO, &s, &ctx()), vec![Action::None]);
        // The solve tick.
        let actions = p.decide(SimTime::from_secs_f64(300.0), &s, &ctx());
        let Action::AdjustBs { batch_sizes, grad_accum } = &actions[0] else {
            panic!("expected AdjustBs, got {actions:?}");
        };
        let accums = grad_accum.as_ref().expect("accumulation vector present");
        assert_eq!(batch_sizes.len(), 4);
        assert_eq!(accums.len(), 4);
        // Fast class processes at least as many samples per round as slow.
        let fast = batch_sizes[0] * accums[0] as u64;
        let slow = batch_sizes[2] * accums[2] as u64;
        assert!(fast >= slow, "fast {fast} slow {slow}");
        // Total per round covers the global batch.
        let total: u64 = batch_sizes.iter().zip(accums).map(|(&b, &c)| b * c as u64).sum();
        assert!(total >= 384);
        assert!(p.is_done());
        // Deterministic stragglers: never acts again.
        assert_eq!(p.decide(SimTime::from_secs_f64(600.0), &s, &ctx()), vec![Action::None]);
    }

    #[test]
    fn waits_for_measurements() {
        let mut p = AntDtDd::new(gpu_cfg());
        let empty = MonitorSnapshot {
            workers: (0..4)
                .map(|i| NodeStats {
                    node: NodeId::worker(i),
                    bpt_trans: None,
                    bpt_per: None,
                    throughput: None,
                    batch: None,
                    alive: true,
                })
                .collect(),
            servers: vec![],
            cluster: ClusterInfo::default(),
        };
        assert_eq!(p.decide(SimTime::ZERO, &empty, &ctx()), vec![Action::None]);
        assert_eq!(p.decide(SimTime::ZERO, &empty, &ctx()), vec![Action::None]);
        assert!(!p.is_done());
    }

    #[test]
    fn per_sample_estimation_recovers_the_profile() {
        let p = AntDtDd::new(gpu_cfg());
        let s = snap_with_bpts(&[0.316, 0.316, 0.649, 0.649], 96);
        let classes = p.estimate_classes(&s).unwrap();
        assert!((classes[0].cost.per_sample - (0.316 - 0.15) / 96.0).abs() < 1e-9);
        assert!((classes[1].cost.per_sample - (0.649 - 0.15) / 96.0).abs() < 1e-9);
    }
}
