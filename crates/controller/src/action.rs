//! The straggler-mitigation action set (paper Table II).

use antdt_monitor::NodeId;
use serde::{Deserialize, Serialize};

/// One mitigation action, as sent from the Controller to the Agents.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Action {
    /// Load-balancing: set every worker's local batch size for the next
    /// iteration (dead workers get 0). `grad_accum[i]` > 1 additionally splits
    /// worker `i`'s batch into sequential micro-batches (AntDT-DD).
    AdjustBs { batch_sizes: Vec<u64>, grad_accum: Option<Vec<u32>> },
    /// Replication: proceed after `n − b` fastest pushes each iteration; the
    /// DDS puts the dropped shards back to preserve at-least-once semantics.
    BackupWorkers { b: u32 },
    /// Scheduling: kill `node` and restart it on (hopefully) healthy hardware.
    KillRestart { node: NodeId },
    /// Optimization: scale each worker's learning rate (penalize stale
    /// gradients from lagging workers).
    AdjustLr { scales: Vec<f32> },
    /// Elasticity: grow the worker set by `add` nodes. New workers join at
    /// the next topology rebuild and pull shards like everyone else.
    ScaleOut { add: u32 },
    /// Elasticity: retire `node` for good (no replacement is scheduled; its
    /// DOING shards roll back exactly as on a kill).
    ScaleIn { node: NodeId },
    /// Dummy action — explicitly "do nothing this round" (§V-E1).
    None,
}

/// The paper's two execution classes (§V-E1): node actions fire independently;
/// global actions need the Agent synchronization mechanism so every worker
/// applies them in the same iteration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ActionType {
    Node,
    Global,
    /// Membership change growing the cluster (handled by the runtime
    /// scheduler, not any single agent).
    ScaleOut,
    /// Membership change retiring one node (fenced like a kill so it cannot
    /// race a restart into a double-remove).
    ScaleIn,
    NoOp,
}

impl Action {
    pub fn action_type(&self) -> ActionType {
        match self {
            Action::KillRestart { .. } => ActionType::Node,
            Action::AdjustBs { .. } | Action::BackupWorkers { .. } | Action::AdjustLr { .. } => {
                ActionType::Global
            }
            Action::ScaleOut { .. } => ActionType::ScaleOut,
            Action::ScaleIn { .. } => ActionType::ScaleIn,
            Action::None => ActionType::NoOp,
        }
    }

    /// Rough payload size in bytes when broadcast through the Agent mechanism
    /// (the paper notes these messages are bytes-level signals).
    pub fn payload_bytes(&self) -> u64 {
        match self {
            Action::AdjustBs { batch_sizes, grad_accum } => {
                (batch_sizes.len() * 8 + grad_accum.as_ref().map_or(0, |g| g.len() * 4) + 8) as u64
            }
            Action::BackupWorkers { .. } => 12,
            Action::KillRestart { .. } => 16,
            Action::AdjustLr { scales } => (scales.len() * 4 + 8) as u64,
            Action::ScaleOut { .. } => 12,
            Action::ScaleIn { .. } => 16,
            Action::None => 4,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_matches_table_ii() {
        assert_eq!(Action::KillRestart { node: NodeId::worker(0) }.action_type(), ActionType::Node);
        assert_eq!(
            Action::AdjustBs { batch_sizes: vec![1, 2], grad_accum: None }.action_type(),
            ActionType::Global
        );
        assert_eq!(Action::BackupWorkers { b: 2 }.action_type(), ActionType::Global);
        assert_eq!(Action::AdjustLr { scales: vec![1.0] }.action_type(), ActionType::Global);
        assert_eq!(Action::ScaleOut { add: 2 }.action_type(), ActionType::ScaleOut);
        assert_eq!(Action::ScaleIn { node: NodeId::worker(3) }.action_type(), ActionType::ScaleIn);
        assert_eq!(Action::None.action_type(), ActionType::NoOp);
    }

    #[test]
    fn elastic_payloads_are_bytes_level() {
        assert!(Action::ScaleOut { add: 4 }.payload_bytes() <= 16);
        assert!(Action::ScaleIn { node: NodeId::worker(1) }.payload_bytes() <= 16);
    }

    #[test]
    fn payloads_are_bytes_level() {
        let a = Action::AdjustBs { batch_sizes: vec![4096; 100], grad_accum: None };
        assert!(a.payload_bytes() < 1024);
        assert!(Action::None.payload_bytes() <= 8);
    }
}
