//! Baseline policies the paper compares against (§VII-A3).

use crate::action::Action;
use crate::policy::{worker_throughputs, MitigationPolicy, PolicyCtx};
use crate::solve::lb_bsp_allocation;
use antdt_monitor::{MonitorSnapshot, NodeId};
use antdt_sim::{SimDuration, SimTime};
use std::collections::HashMap;

/// Native BSP/ASP/DDP: never mitigates.
#[derive(Debug, Clone, Default)]
pub struct NoMitigation;

impl MitigationPolicy for NoMitigation {
    fn clone_box(&self) -> Box<dyn MitigationPolicy> {
        Box::new(self.clone())
    }

    fn name(&self) -> &'static str {
        "none"
    }
    fn decide(&mut self, _now: SimTime, _snap: &MonitorSnapshot, _ctx: &PolicyCtx) -> Vec<Action> {
        vec![Action::None]
    }
}

/// LB-BSP \[18\]: every tick, reallocate batch sizes proportionally to measured
/// throughput (clamped into memory caps). No replication, no kills.
#[derive(Debug, Clone)]
pub struct LbBsp {
    /// Per-worker memory caps (use `u64::MAX/2` on CPUs).
    pub caps: Vec<u64>,
    last_alloc: Option<Vec<u64>>,
}

impl LbBsp {
    pub fn new(caps: Vec<u64>) -> Self {
        LbBsp { caps, last_alloc: None }
    }

    pub fn uncapped(n_workers: usize) -> Self {
        LbBsp::new(vec![u64::MAX / 2; n_workers])
    }
}

impl MitigationPolicy for LbBsp {
    fn clone_box(&self) -> Box<dyn MitigationPolicy> {
        Box::new(self.clone())
    }

    fn name(&self) -> &'static str {
        "lb-bsp"
    }

    fn decide(&mut self, _now: SimTime, snap: &MonitorSnapshot, ctx: &PolicyCtx) -> Vec<Action> {
        let v = worker_throughputs(&snap.workers);
        if v.iter().all(|&x| x <= 0.0) {
            return vec![Action::None];
        }
        let alloc = lb_bsp_allocation(ctx.global_batch, &v, &self.caps);
        if self.last_alloc.as_ref() == Some(&alloc) {
            return vec![Action::None];
        }
        self.last_alloc = Some(alloc.clone());
        vec![Action::AdjustBs { batch_sizes: alloc, grad_accum: None }]
    }
}

/// Backup Workers (Sync-OPT \[28\]): a static `b`; each BSP iteration proceeds
/// after the `n − b` fastest pushes. Emitted once — the semantics live in the
/// runtime, which (per AntDT) returns dropped shards to the DDS.
#[derive(Debug, Clone)]
pub struct BackupWorkersPolicy {
    pub b: u32,
    announced: bool,
}

impl BackupWorkersPolicy {
    pub fn new(b: u32) -> Self {
        BackupWorkersPolicy { b, announced: false }
    }
}

impl MitigationPolicy for BackupWorkersPolicy {
    fn clone_box(&self) -> Box<dyn MitigationPolicy> {
        Box::new(self.clone())
    }

    fn name(&self) -> &'static str {
        "backup-workers"
    }

    fn decide(&mut self, _now: SimTime, _snap: &MonitorSnapshot, _ctx: &PolicyCtx) -> Vec<Action> {
        if self.announced {
            vec![Action::None]
        } else {
            self.announced = true;
            vec![Action::BackupWorkers { b: self.b }]
        }
    }
}

/// Scheduling-only mitigation: kill persistent stragglers (workers and
/// servers), never touch batch sizes. This is also what AntDT-ND degrades to
/// in ASP mode, where the DDS already balances the data.
#[derive(Debug, Clone)]
pub struct KillRestartOnly {
    pub lambda: f64,
    pub kill_cooldown: SimDuration,
    pub gate_on_busy: bool,
    last_kill: HashMap<NodeId, SimTime>,
}

impl KillRestartOnly {
    pub fn new(lambda: f64) -> Self {
        KillRestartOnly {
            lambda,
            kill_cooldown: SimDuration::from_minutes(15),
            gate_on_busy: true,
            last_kill: HashMap::new(),
        }
    }

    fn may_kill(&self, node: NodeId, now: SimTime) -> bool {
        self.last_kill.get(&node).is_none_or(|&t| now.since(t) >= self.kill_cooldown)
    }
}

impl MitigationPolicy for KillRestartOnly {
    fn clone_box(&self) -> Box<dyn MitigationPolicy> {
        Box::new(self.clone())
    }

    fn name(&self) -> &'static str {
        "kill-restart"
    }

    fn decide(&mut self, now: SimTime, snap: &MonitorSnapshot, _ctx: &PolicyCtx) -> Vec<Action> {
        if self.gate_on_busy && snap.cluster.busy {
            return vec![Action::None];
        }
        let mut actions = Vec::new();
        let pools: [(&[_], Option<f64>); 2] = [
            (&snap.workers, snap.mean_worker_bpt_per()),
            (&snap.servers, snap.mean_server_bpt_per()),
        ];
        for (stats, mean) in pools {
            let Some(mean) = mean else { continue };
            if let Some(victim) = stats
                .iter()
                .filter(|s| {
                    s.alive
                        && s.bpt_per.is_some_and(|t| t >= self.lambda * mean)
                        && self.may_kill(s.node, now)
                })
                .max_by(|a, b| a.bpt_per.partial_cmp(&b.bpt_per).unwrap())
            {
                self.last_kill.insert(victim.node, now);
                actions.push(Action::KillRestart { node: victim.node });
            }
        }
        if actions.is_empty() {
            actions.push(Action::None);
        }
        actions
    }
}

/// Optimization-based mitigation (`ADJUST_LR`, e.g. \[51\]–\[53\]): scale each
/// straggler's learning rate by `mean BPT / its BPT` (clamped), penalizing
/// stale gradients. The paper excludes this from JCT comparisons since it
/// trades statistical efficiency, not wall-clock time.
#[derive(Debug, Clone)]
pub struct AdjustLrPolicy {
    pub lambda: f64,
    pub min_scale: f32,
    last_scales: Option<Vec<f32>>,
}

impl AdjustLrPolicy {
    pub fn new(lambda: f64) -> Self {
        AdjustLrPolicy { lambda, min_scale: 0.1, last_scales: None }
    }
}

impl MitigationPolicy for AdjustLrPolicy {
    fn clone_box(&self) -> Box<dyn MitigationPolicy> {
        Box::new(self.clone())
    }

    fn name(&self) -> &'static str {
        "adjust-lr"
    }

    fn decide(&mut self, _now: SimTime, snap: &MonitorSnapshot, _ctx: &PolicyCtx) -> Vec<Action> {
        let Some(mean) = snap.mean_worker_bpt_trans() else {
            return vec![Action::None];
        };
        let scales: Vec<f32> = snap
            .workers
            .iter()
            .map(|s| match (s.alive, s.bpt_trans) {
                (true, Some(t)) if t >= self.lambda * mean => {
                    ((mean / t) as f32).clamp(self.min_scale, 1.0)
                }
                _ => 1.0,
            })
            .collect();
        if self.last_scales.as_ref() == Some(&scales) {
            return vec![Action::None];
        }
        self.last_scales = Some(scales.clone());
        vec![Action::AdjustLr { scales }]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use antdt_monitor::{ClusterInfo, NodeStats};

    fn worker(idx: u32, bpt: f64, alive: bool) -> NodeStats {
        NodeStats {
            node: NodeId::worker(idx),
            bpt_trans: Some(bpt),
            bpt_per: Some(bpt),
            throughput: Some(100.0 / bpt),
            batch: Some(100),
            alive,
        }
    }

    fn snap(workers: Vec<NodeStats>) -> MonitorSnapshot {
        MonitorSnapshot { workers, servers: vec![], cluster: ClusterInfo::default() }
    }

    fn ctx(n: usize) -> PolicyCtx {
        PolicyCtx { global_batch: 100, n_workers: n, n_servers: 0 }
    }

    #[test]
    fn no_mitigation_is_always_none() {
        let mut p = NoMitigation;
        let s = snap(vec![worker(0, 99.0, true)]);
        assert_eq!(p.decide(SimTime::ZERO, &s, &ctx(1)), vec![Action::None]);
    }

    #[test]
    fn lb_bsp_rebalances_and_dedupes() {
        let mut p = LbBsp::uncapped(2);
        let s = snap(vec![worker(0, 1.0, true), worker(1, 4.0, true)]);
        let a1 = p.decide(SimTime::ZERO, &s, &ctx(2));
        let Action::AdjustBs { batch_sizes, .. } = &a1[0] else { panic!("{a1:?}") };
        assert_eq!(batch_sizes.iter().sum::<u64>(), 100);
        assert!(batch_sizes[0] > batch_sizes[1]);
        // Same snapshot again: no redundant broadcast.
        assert_eq!(p.decide(SimTime::ZERO, &s, &ctx(2)), vec![Action::None]);
    }

    #[test]
    fn backup_workers_announces_once() {
        let mut p = BackupWorkersPolicy::new(2);
        let s = snap(vec![worker(0, 1.0, true)]);
        assert_eq!(p.decide(SimTime::ZERO, &s, &ctx(1)), vec![Action::BackupWorkers { b: 2 }]);
        assert_eq!(p.decide(SimTime::ZERO, &s, &ctx(1)), vec![Action::None]);
    }

    #[test]
    fn kill_restart_only_targets_worst_persistent() {
        let mut p = KillRestartOnly::new(1.5);
        let s = snap(vec![worker(0, 2.0, true), worker(1, 6.0, true), worker(2, 8.0, true)]);
        let a = p.decide(SimTime::from_secs_f64(600.0), &s, &ctx(3));
        assert_eq!(a, vec![Action::KillRestart { node: NodeId::worker(2) }]);
    }

    #[test]
    fn adjust_lr_penalizes_stragglers_only() {
        let mut p = AdjustLrPolicy::new(1.5);
        let s = snap(vec![worker(0, 2.0, true), worker(1, 8.0, true)]);
        let a = p.decide(SimTime::ZERO, &s, &ctx(2));
        let Action::AdjustLr { scales } = &a[0] else { panic!("{a:?}") };
        assert_eq!(scales[0], 1.0);
        assert!(scales[1] < 1.0 && scales[1] >= 0.1);
        assert_eq!(p.decide(SimTime::ZERO, &s, &ctx(2)), vec![Action::None]);
    }
}
