//! The policy interface: a straggler-mitigation *solution* is a pure decider
//! from Monitor snapshots to actions. The framework (antdt-core) owns
//! execution, data allocation and fault tolerance — the separation the paper's
//! §V-E emphasizes.

use crate::action::Action;
use antdt_monitor::{MonitorSnapshot, NodeStats};
use antdt_sim::SimTime;
use antdt_telemetry::DecisionRecord;

/// Static job facts a policy may need besides the live snapshot.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PolicyCtx {
    /// `B` — the fixed global batch size.
    pub global_batch: u64,
    pub n_workers: usize,
    pub n_servers: usize,
}

/// A straggler-mitigation solution (paper §VI).
pub trait MitigationPolicy: Send {
    fn name(&self) -> &'static str;

    /// Called on every Monitor aggregation tick (default: every 5 minutes).
    /// Returns the actions to execute; `[Action::None]` means "no straggler
    /// detected this round" (§VI-A5).
    fn decide(&mut self, now: SimTime, snap: &MonitorSnapshot, ctx: &PolicyCtx) -> Vec<Action>;

    /// Take the decision audit records buffered since the previous drain. The
    /// runtime calls this after every `decide` and attaches the records to the
    /// `JobReport`. Policies that don't audit return nothing (the default).
    fn drain_audit(&mut self) -> Vec<DecisionRecord> {
        Vec::new()
    }

    /// Clone the policy, state included, behind a fresh box. Lets the
    /// runtime snapshot a mid-flight job (engine fork / what-if replay)
    /// without consuming the original.
    fn clone_box(&self) -> Box<dyn MitigationPolicy>;
}

impl Clone for Box<dyn MitigationPolicy> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

/// Shared helper: per-worker throughputs `vᵢ` with dead workers zeroed and
/// missing measurements imputed with the mean of the measured ones (a fresh
/// restarted node has no history yet but must receive work).
pub fn worker_throughputs(stats: &[NodeStats]) -> Vec<f64> {
    let measured: Vec<f64> =
        stats.iter().filter(|s| s.alive).filter_map(|s| s.throughput).collect();
    let fallback = if measured.is_empty() {
        1.0
    } else {
        measured.iter().sum::<f64>() / measured.len() as f64
    };
    stats
        .iter()
        .map(|s| if !s.alive { 0.0 } else { s.throughput.unwrap_or(fallback).max(0.0) })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use antdt_monitor::NodeId;

    fn stat(idx: u32, v: Option<f64>, alive: bool) -> NodeStats {
        NodeStats {
            node: NodeId::worker(idx),
            bpt_trans: None,
            bpt_per: None,
            throughput: v,
            batch: None,
            alive,
        }
    }

    #[test]
    fn throughputs_zero_dead_and_impute_missing() {
        let stats = vec![
            stat(0, Some(10.0), true),
            stat(1, None, true), // imputed with mean(10, 30) = 20
            stat(2, Some(30.0), true),
            stat(3, Some(99.0), false), // dead => 0
        ];
        let v = worker_throughputs(&stats);
        assert_eq!(v, vec![10.0, 20.0, 30.0, 0.0]);
    }

    #[test]
    fn all_unmeasured_gives_uniform_positive() {
        let stats = vec![stat(0, None, true), stat(1, None, true)];
        let v = worker_throughputs(&stats);
        assert_eq!(v, vec![1.0, 1.0]);
    }
}
