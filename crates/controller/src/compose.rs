//! Policy composition — the paper's extensibility claim (§V-A: "users could
//! easily utilize these actions to customize the straggler mitigation
//! solution") made concrete: stack existing policies into a custom solution
//! without touching data allocation or fault tolerance.
//!
//! [`Composite`] runs its parts in order each tick and merges their actions:
//! the first `ADJUST_BS` wins (two simultaneous batch plans would race), kill
//! targets are deduplicated, and `None`s collapse away.
//!
//! [`AdaptiveBackupWorkers`] is a worked example of a *new* solution built
//! from an existing action: instead of a static backup count, it sizes `b`
//! every tick from the number of currently-detected stragglers.

use crate::action::Action;
use crate::policy::{MitigationPolicy, PolicyCtx};
use antdt_monitor::{MonitorSnapshot, NodeId};
use antdt_sim::SimTime;
use std::collections::HashSet;

/// Run several policies as one solution, merging their actions.
#[derive(Clone)]
pub struct Composite {
    parts: Vec<Box<dyn MitigationPolicy>>,
}

impl Composite {
    pub fn new(parts: Vec<Box<dyn MitigationPolicy>>) -> Self {
        assert!(!parts.is_empty(), "composite of nothing");
        Composite { parts }
    }
}

impl MitigationPolicy for Composite {
    fn clone_box(&self) -> Box<dyn MitigationPolicy> {
        Box::new(self.clone())
    }

    fn name(&self) -> &'static str {
        "composite"
    }

    fn decide(&mut self, now: SimTime, snap: &MonitorSnapshot, ctx: &PolicyCtx) -> Vec<Action> {
        let mut out: Vec<Action> = Vec::new();
        let mut saw_adjust_bs = false;
        let mut saw_backup = false;
        let mut saw_lr = false;
        let mut saw_scale_out = false;
        let mut killed: HashSet<NodeId> = HashSet::new();
        let mut removed: HashSet<NodeId> = HashSet::new();
        for p in &mut self.parts {
            for action in p.decide(now, snap, ctx) {
                match &action {
                    Action::None => {}
                    Action::AdjustBs { .. } => {
                        if !saw_adjust_bs {
                            saw_adjust_bs = true;
                            out.push(action);
                        }
                    }
                    Action::BackupWorkers { .. } => {
                        if !saw_backup {
                            saw_backup = true;
                            out.push(action);
                        }
                    }
                    Action::AdjustLr { .. } => {
                        if !saw_lr {
                            saw_lr = true;
                            out.push(action);
                        }
                    }
                    Action::KillRestart { node } => {
                        if killed.insert(*node) {
                            out.push(action);
                        }
                    }
                    Action::ScaleOut { .. } => {
                        if !saw_scale_out {
                            saw_scale_out = true;
                            out.push(action);
                        }
                    }
                    Action::ScaleIn { node } => {
                        if removed.insert(*node) {
                            out.push(action);
                        }
                    }
                }
            }
        }
        if out.is_empty() {
            out.push(Action::None);
        }
        out
    }
}

/// Size the backup-worker count from live straggler detection: `b` = number of
/// workers whose short-window BPT exceeds `lambda ×` the mean, capped at a
/// fraction of the fleet (never drop a majority of the gradients).
#[derive(Clone)]
pub struct AdaptiveBackupWorkers {
    pub lambda: f64,
    /// Maximum fraction of workers that may be dropped per iteration.
    pub max_fraction: f64,
    last_b: Option<u32>,
}

impl AdaptiveBackupWorkers {
    pub fn new(lambda: f64) -> Self {
        AdaptiveBackupWorkers { lambda, max_fraction: 0.25, last_b: None }
    }
}

impl MitigationPolicy for AdaptiveBackupWorkers {
    fn clone_box(&self) -> Box<dyn MitigationPolicy> {
        Box::new(self.clone())
    }

    fn name(&self) -> &'static str {
        "adaptive-backup-workers"
    }

    fn decide(&mut self, _now: SimTime, snap: &MonitorSnapshot, ctx: &PolicyCtx) -> Vec<Action> {
        let Some(mean) = snap.mean_worker_bpt_trans() else {
            return vec![Action::None];
        };
        let stragglers = snap
            .workers
            .iter()
            .filter(|s| s.alive && s.bpt_trans.is_some_and(|t| t >= self.lambda * mean))
            .count() as u32;
        let cap = ((ctx.n_workers as f64 * self.max_fraction) as u32)
            .min(ctx.n_workers.saturating_sub(1) as u32);
        let b = stragglers.min(cap);
        if self.last_b == Some(b) {
            return vec![Action::None];
        }
        self.last_b = Some(b);
        vec![Action::BackupWorkers { b }]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baselines::{KillRestartOnly, LbBsp};
    use antdt_monitor::{ClusterInfo, NodeStats};

    fn worker(idx: u32, bpt: f64) -> NodeStats {
        NodeStats {
            node: NodeId::worker(idx),
            bpt_trans: Some(bpt),
            bpt_per: Some(bpt),
            throughput: Some(100.0 / bpt),
            batch: Some(100),
            alive: true,
        }
    }

    fn snap(bpts: &[f64]) -> MonitorSnapshot {
        MonitorSnapshot {
            workers: bpts.iter().enumerate().map(|(i, &b)| worker(i as u32, b)).collect(),
            servers: vec![],
            cluster: ClusterInfo::default(),
        }
    }

    fn ctx(n: usize) -> PolicyCtx {
        PolicyCtx { global_batch: 1000, n_workers: n, n_servers: 0 }
    }

    #[test]
    fn composite_merges_rebalance_and_kill() {
        let mut p =
            Composite::new(vec![Box::new(LbBsp::uncapped(3)), Box::new(KillRestartOnly::new(1.5))]);
        let s = snap(&[1.0, 1.0, 9.0]);
        let actions = p.decide(SimTime::from_secs_f64(600.0), &s, &ctx(3));
        assert!(actions.iter().any(|a| matches!(a, Action::AdjustBs { .. })));
        assert!(actions
            .iter()
            .any(|a| matches!(a, Action::KillRestart { node } if *node == NodeId::worker(2))));
    }

    #[test]
    fn composite_keeps_only_first_adjust_bs() {
        let mut p =
            Composite::new(vec![Box::new(LbBsp::uncapped(2)), Box::new(LbBsp::uncapped(2))]);
        let s = snap(&[1.0, 2.0]);
        let actions = p.decide(SimTime::ZERO, &s, &ctx(2));
        let n_adjust = actions.iter().filter(|a| matches!(a, Action::AdjustBs { .. })).count();
        assert_eq!(n_adjust, 1);
    }

    #[test]
    fn composite_dedupes_kill_targets_and_collapses_none() {
        let mut p = Composite::new(vec![
            Box::new(KillRestartOnly::new(1.5)),
            Box::new(KillRestartOnly::new(1.5)),
        ]);
        let s = snap(&[1.0, 1.0, 9.0]);
        let actions = p.decide(SimTime::from_secs_f64(600.0), &s, &ctx(3));
        let kills = actions.iter().filter(|a| matches!(a, Action::KillRestart { .. })).count();
        assert_eq!(kills, 1);
        // Healthy snapshot: pure None.
        let healthy = snap(&[1.0, 1.0, 1.0]);
        let actions = p.decide(SimTime::from_secs_f64(1200.0), &healthy, &ctx(3));
        assert_eq!(actions, vec![Action::None]);
    }

    #[test]
    fn adaptive_backup_tracks_straggler_count() {
        let mut p = AdaptiveBackupWorkers::new(1.5);
        // Two stragglers of eight -> b = 2.
        let s = snap(&[1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 5.0, 5.0]);
        assert_eq!(p.decide(SimTime::ZERO, &s, &ctx(8)), vec![Action::BackupWorkers { b: 2 }]);
        // Unchanged detection -> no redundant broadcast.
        assert_eq!(p.decide(SimTime::ZERO, &s, &ctx(8)), vec![Action::None]);
        // Recovered -> b drops to 0.
        let healthy = snap(&[1.0; 8]);
        assert_eq!(
            p.decide(SimTime::ZERO, &healthy, &ctx(8)),
            vec![Action::BackupWorkers { b: 0 }]
        );
    }

    #[test]
    fn adaptive_backup_caps_at_fleet_fraction() {
        let mut p = AdaptiveBackupWorkers::new(1.2);
        // Half the fleet straggling, but cap = 25% of 8 = 2.
        let s = snap(&[1.0, 1.0, 1.0, 1.0, 6.0, 6.0, 6.0, 6.0]);
        assert_eq!(p.decide(SimTime::ZERO, &s, &ctx(8)), vec![Action::BackupWorkers { b: 2 }]);
    }

    #[test]
    #[should_panic(expected = "composite of nothing")]
    fn empty_composite_rejected() {
        let _ = Composite::new(vec![]);
    }
}
