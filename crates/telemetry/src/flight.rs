//! The flight recorder: a bounded ring buffer of the most recent runtime
//! events, dumped when something goes wrong (the liveness watchdog declares
//! `stalled`, or a chaos invariant fails) so a bad verdict comes with the
//! event history that led up to it.

use crate::json;
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// One recorded event. `seq` is a global record index, so a dump makes clear
/// how many events preceded the retained window.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FlightEvent {
    pub seq: u64,
    /// Virtual time in microseconds.
    pub at_us: u64,
    /// Source layer: `event`, `lifecycle`, `chaos`, `controller`, …
    pub category: String,
    pub detail: String,
}

/// A snapshot of the ring at dump time.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FlightDump {
    /// Why the dump was taken: `stalled`, `invariant-failed`, `completed`.
    pub reason: String,
    /// Events evicted before the dump (total recorded − retained).
    pub dropped: u64,
    pub events: Vec<FlightEvent>,
}

impl FlightDump {
    pub fn render(&self) -> String {
        let mut out = format!(
            "flight recorder dump — reason: {}, {} events retained, {} dropped\n",
            self.reason,
            self.events.len(),
            self.dropped
        );
        for e in &self.events {
            out.push_str(&format!(
                "  #{:<6} t={:>12.3}s [{}] {}\n",
                e.seq,
                e.at_us as f64 / 1e6,
                e.category,
                e.detail
            ));
        }
        out
    }

    /// The dump as a JSON document (deterministic field order).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"reason\":");
        json::write_str(&mut out, &self.reason);
        out.push_str(&format!(",\"dropped\":{},\"events\":[", self.dropped));
        for (i, e) in self.events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("{{\"seq\":{},\"at_us\":{},\"category\":", e.seq, e.at_us));
            json::write_str(&mut out, &e.category);
            out.push_str(",\"detail\":");
            json::write_str(&mut out, &e.detail);
            out.push('}');
        }
        out.push_str("]}");
        out
    }
}

#[derive(Debug)]
struct FlightInner {
    capacity: usize,
    next_seq: u64,
    dropped: u64,
    ring: VecDeque<FlightEvent>,
}

/// Capacity-bounded recorder; `record` is O(1) and old events are evicted
/// silently (counted in [`FlightDump::dropped`]).
#[derive(Debug)]
pub struct FlightRecorder {
    inner: Mutex<FlightInner>,
}

impl FlightRecorder {
    pub const DEFAULT_CAPACITY: usize = 256;

    pub fn new(capacity: usize) -> Self {
        FlightRecorder {
            inner: Mutex::new(FlightInner {
                capacity: capacity.max(1),
                next_seq: 0,
                dropped: 0,
                ring: VecDeque::new(),
            }),
        }
    }

    pub fn record(&self, at_us: u64, category: &str, detail: String) {
        let mut g = self.inner.lock();
        if g.ring.len() == g.capacity {
            g.ring.pop_front();
            g.dropped += 1;
        }
        let seq = g.next_seq;
        g.next_seq += 1;
        g.ring.push_back(FlightEvent { seq, at_us, category: category.to_string(), detail });
    }

    pub fn len(&self) -> usize {
        self.inner.lock().ring.len()
    }

    pub fn is_empty(&self) -> bool {
        self.inner.lock().ring.is_empty()
    }

    /// Snapshot the ring without consuming it.
    pub fn dump(&self, reason: &str) -> FlightDump {
        let g = self.inner.lock();
        FlightDump {
            reason: reason.to_string(),
            dropped: g.dropped,
            events: g.ring.iter().cloned().collect(),
        }
    }
}

impl Default for FlightRecorder {
    fn default() -> Self {
        Self::new(Self::DEFAULT_CAPACITY)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_evicts_oldest_and_counts_drops() {
        let fr = FlightRecorder::new(3);
        for i in 0..5u64 {
            fr.record(i * 10, "event", format!("ev{i}"));
        }
        let d = fr.dump("stalled");
        assert_eq!(d.reason, "stalled");
        assert_eq!(d.dropped, 2);
        assert_eq!(d.events.len(), 3);
        assert_eq!(d.events[0].seq, 2);
        assert_eq!(d.events[2].detail, "ev4");
        assert!(d.render().contains("ev4"));
    }

    #[test]
    fn dump_serializes_to_parseable_json() {
        use crate::json::{self as js, Json};
        let fr = FlightRecorder::new(8);
        fr.record(1, "lifecycle", "worker \"w0\" start".into());
        let d = fr.dump("completed");
        let v = js::parse(&d.to_json()).expect("flight dump JSON parses");
        assert_eq!(v.get("reason").and_then(Json::as_str), Some("completed"));
        assert_eq!(v.get("dropped").and_then(Json::as_u64), Some(0));
        let evs = v.get("events").and_then(Json::as_array).unwrap();
        assert_eq!(evs.len(), 1);
        assert_eq!(evs[0].get("detail").and_then(Json::as_str), Some("worker \"w0\" start"));
    }

    #[test]
    fn capacity_is_at_least_one() {
        let fr = FlightRecorder::new(0);
        fr.record(0, "event", "a".into());
        fr.record(1, "event", "b".into());
        let d = fr.dump("x");
        assert_eq!(d.events.len(), 1);
        assert_eq!(d.events[0].detail, "b");
    }
}
