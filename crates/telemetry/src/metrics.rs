//! The metrics registry: counters, gauges and fixed-bucket histograms keyed by
//! `(name, labels)`, with a Prometheus text-exposition renderer and a JSON
//! snapshot.
//!
//! Registration (name/label lookup) takes a lock and may allocate; the handles
//! it returns are `Arc<AtomicU64>` cells, so the hot path — `inc` / `add` /
//! `set` / `observe` on an already-registered handle — is a single relaxed
//! atomic op with no allocation and no lock. Runtimes register once at job
//! start and update through the cached handles.

use crate::json;
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A monotonically increasing counter. Clones share the underlying cell.
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge: a point-in-time value that can move both ways.
#[derive(Debug, Clone, Default)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    #[inline]
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

#[derive(Debug)]
struct HistogramInner {
    /// Inclusive upper bounds in ascending order; an implicit `+Inf` bucket
    /// follows the last bound.
    bounds: Vec<u64>,
    /// Per-bucket observation counts, `bounds.len() + 1` entries.
    buckets: Vec<AtomicU64>,
    sum: AtomicU64,
    count: AtomicU64,
}

/// A fixed-bucket histogram over `u64` observations (conventionally
/// microseconds). Clones share the underlying cells.
#[derive(Debug, Clone)]
pub struct Histogram {
    inner: Arc<HistogramInner>,
}

impl Histogram {
    fn new(mut bounds: Vec<u64>) -> Self {
        bounds.sort_unstable();
        bounds.dedup();
        let buckets = (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect();
        Histogram {
            inner: Arc::new(HistogramInner {
                bounds,
                buckets,
                sum: AtomicU64::new(0),
                count: AtomicU64::new(0),
            }),
        }
    }

    /// Record one observation. Lock-free and allocation-free.
    #[inline]
    pub fn observe(&self, v: u64) {
        let idx = self.inner.bounds.partition_point(|&b| b < v);
        self.inner.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.inner.sum.fetch_add(v, Ordering::Relaxed);
        self.inner.count.fetch_add(1, Ordering::Relaxed);
    }

    pub fn count(&self) -> u64 {
        self.inner.count.load(Ordering::Relaxed)
    }

    pub fn sum(&self) -> u64 {
        self.inner.sum.load(Ordering::Relaxed)
    }

    /// Non-cumulative per-bucket counts (last entry is the `+Inf` bucket).
    pub fn bucket_counts(&self) -> Vec<u64> {
        self.inner.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect()
    }
}

/// Label set for a metric series, kept sorted by key so that identical label
/// sets written in any order resolve to the same series and render identically.
/// Keys and values are interned [`Arc<str>`]s: each distinct string is
/// allocated once per registry, and repeat lookups only bump refcounts.
type Labels = Vec<(Arc<str>, Arc<str>)>;

/// Get or insert `s` in the intern pool. `BTreeSet::get` accepts `&str`
/// because `Arc<str>: Borrow<str>`, so the hit path allocates nothing.
fn intern_in(pool: &mut BTreeSet<Arc<str>>, s: &str) -> Arc<str> {
    if let Some(a) = pool.get(s) {
        return a.clone();
    }
    let a: Arc<str> = Arc::from(s);
    pool.insert(a.clone());
    a
}

#[derive(Debug, Clone)]
enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

/// One series in a [`MetricsRegistry::snapshot`], serialized to JSON in a
/// stable, fully sorted order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SeriesSnapshot {
    pub name: String,
    pub labels: BTreeMap<String, String>,
    pub kind: String,
    #[serde(skip_serializing_if = "Option::is_none")]
    pub value: Option<u64>,
    #[serde(skip_serializing_if = "Option::is_none")]
    pub sum: Option<u64>,
    #[serde(skip_serializing_if = "Option::is_none")]
    pub count: Option<u64>,
    #[serde(skip_serializing_if = "Option::is_none")]
    pub buckets: Option<Vec<(String, u64)>>,
}

/// The registry. Series are keyed `(name, sorted labels)`; iteration order is
/// therefore deterministic regardless of registration order.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    /// Intern pool for metric names, label keys and label values. Locked
    /// strictly before (never together with) `series`.
    interned: Mutex<BTreeSet<Arc<str>>>,
    series: Mutex<BTreeMap<Arc<str>, BTreeMap<Labels, Metric>>>,
}

impl MetricsRegistry {
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern the name and label pairs for one series lookup. After the first
    /// registration of a series, repeat lookups allocate nothing.
    fn key_of(&self, name: &str, pairs: &[(&str, &str)]) -> (Arc<str>, Labels) {
        let mut pool = self.interned.lock();
        let name = intern_in(&mut pool, name);
        let mut ls: Labels = pairs
            .iter()
            .map(|&(k, v)| (intern_in(&mut pool, k), intern_in(&mut pool, v)))
            .collect();
        drop(pool);
        ls.sort();
        (name, ls)
    }

    /// Get or register the counter `name{labels}`.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Counter {
        let (name, labels) = self.key_of(name, labels);
        let mut s = self.series.lock();
        let m = s
            .entry(name.clone())
            .or_default()
            .entry(labels)
            .or_insert_with(|| Metric::Counter(Counter::default()));
        match m {
            Metric::Counter(c) => c.clone(),
            _ => panic!("metric {name} already registered with a different kind"),
        }
    }

    /// Get or register the gauge `name{labels}`.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Gauge {
        let (name, labels) = self.key_of(name, labels);
        let mut s = self.series.lock();
        let m = s
            .entry(name.clone())
            .or_default()
            .entry(labels)
            .or_insert_with(|| Metric::Gauge(Gauge::default()));
        match m {
            Metric::Gauge(g) => g.clone(),
            _ => panic!("metric {name} already registered with a different kind"),
        }
    }

    /// Get or register the histogram `name{labels}` with the given inclusive
    /// upper bucket bounds (an implicit `+Inf` bucket is appended).
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)], bounds: &[u64]) -> Histogram {
        let (name, labels) = self.key_of(name, labels);
        let mut s = self.series.lock();
        let m = s
            .entry(name.clone())
            .or_default()
            .entry(labels)
            .or_insert_with(|| Metric::Histogram(Histogram::new(bounds.to_vec())));
        match m {
            Metric::Histogram(h) => h.clone(),
            _ => panic!("metric {name} already registered with a different kind"),
        }
    }

    /// Render the registry in the Prometheus text exposition format. Output is
    /// byte-identical across runs that registered and updated the same series.
    pub fn render_prometheus(&self) -> String {
        fn label_str(labels: &Labels, extra: Option<(&str, &str)>) -> String {
            let mut parts: Vec<String> =
                labels.iter().map(|(k, v)| format!("{k}=\"{v}\"")).collect();
            if let Some((k, v)) = extra {
                parts.push(format!("{k}=\"{v}\""));
            }
            if parts.is_empty() {
                String::new()
            } else {
                format!("{{{}}}", parts.join(","))
            }
        }

        let s = self.series.lock();
        let mut out = String::new();
        for (name, by_labels) in s.iter() {
            let kind = match by_labels.values().next() {
                Some(Metric::Counter(_)) => "counter",
                Some(Metric::Gauge(_)) => "gauge",
                Some(Metric::Histogram(_)) => "histogram",
                None => continue,
            };
            let _ = writeln!(out, "# TYPE {name} {kind}");
            for (labels, metric) in by_labels.iter() {
                match metric {
                    Metric::Counter(c) => {
                        let _ = writeln!(out, "{name}{} {}", label_str(labels, None), c.get());
                    }
                    Metric::Gauge(g) => {
                        let _ = writeln!(out, "{name}{} {}", label_str(labels, None), g.get());
                    }
                    Metric::Histogram(h) => {
                        let counts = h.bucket_counts();
                        let mut cum = 0u64;
                        for (i, &b) in h.inner.bounds.iter().enumerate() {
                            cum += counts[i];
                            let le = b.to_string();
                            let _ = writeln!(
                                out,
                                "{name}_bucket{} {cum}",
                                label_str(labels, Some(("le", &le)))
                            );
                        }
                        cum += counts[h.inner.bounds.len()];
                        let _ = writeln!(
                            out,
                            "{name}_bucket{} {cum}",
                            label_str(labels, Some(("le", "+Inf")))
                        );
                        let _ = writeln!(out, "{name}_sum{} {}", label_str(labels, None), h.sum());
                        let _ =
                            writeln!(out, "{name}_count{} {}", label_str(labels, None), h.count());
                    }
                }
            }
        }
        out
    }

    /// A structured snapshot of every series, sorted by `(name, labels)`.
    pub fn snapshot(&self) -> Vec<SeriesSnapshot> {
        let s = self.series.lock();
        let mut out = Vec::new();
        for (name, by_labels) in s.iter() {
            for (labels, metric) in by_labels.iter() {
                let labels: BTreeMap<String, String> =
                    labels.iter().map(|(k, v)| (k.to_string(), v.to_string())).collect();
                let snap = match metric {
                    Metric::Counter(c) => SeriesSnapshot {
                        name: name.to_string(),
                        labels,
                        kind: "counter".into(),
                        value: Some(c.get()),
                        sum: None,
                        count: None,
                        buckets: None,
                    },
                    Metric::Gauge(g) => SeriesSnapshot {
                        name: name.to_string(),
                        labels,
                        kind: "gauge".into(),
                        value: Some(g.get()),
                        sum: None,
                        count: None,
                        buckets: None,
                    },
                    Metric::Histogram(h) => {
                        let counts = h.bucket_counts();
                        let mut buckets: Vec<(String, u64)> = h
                            .inner
                            .bounds
                            .iter()
                            .enumerate()
                            .map(|(i, b)| (b.to_string(), counts[i]))
                            .collect();
                        buckets.push(("+Inf".into(), counts[h.inner.bounds.len()]));
                        SeriesSnapshot {
                            name: name.to_string(),
                            labels,
                            kind: "histogram".into(),
                            value: None,
                            sum: Some(h.sum()),
                            count: Some(h.count()),
                            buckets: Some(buckets),
                        }
                    }
                };
                out.push(snap);
            }
        }
        out
    }

    /// [`MetricsRegistry::snapshot`] serialized as JSON (deterministic order).
    pub fn snapshot_json(&self) -> String {
        let mut out = String::from("[");
        for (i, s) in self.snapshot().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"name\":");
            json::write_str(&mut out, &s.name);
            out.push_str(",\"labels\":{");
            for (j, (k, v)) in s.labels.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                json::write_str(&mut out, k);
                out.push(':');
                json::write_str(&mut out, v);
            }
            out.push_str("},\"kind\":");
            json::write_str(&mut out, &s.kind);
            if let Some(v) = s.value {
                out.push_str(&format!(",\"value\":{v}"));
            }
            if let Some(v) = s.sum {
                out.push_str(&format!(",\"sum\":{v}"));
            }
            if let Some(v) = s.count {
                out.push_str(&format!(",\"count\":{v}"));
            }
            if let Some(buckets) = &s.buckets {
                out.push_str(",\"buckets\":[");
                for (j, (le, n)) in buckets.iter().enumerate() {
                    if j > 0 {
                        out.push(',');
                    }
                    out.push('[');
                    json::write_str(&mut out, le);
                    out.push_str(&format!(",{n}]"));
                }
                out.push(']');
            }
            out.push('}');
        }
        out.push(']');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_roundtrip() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("antdt_events_total", &[("runtime", "ps")]);
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        // Re-registering the same series returns the same cell.
        let c2 = reg.counter("antdt_events_total", &[("runtime", "ps")]);
        c2.inc();
        assert_eq!(c.get(), 6);

        let g = reg.gauge("antdt_pending", &[]);
        g.set(42);
        assert_eq!(g.get(), 42);
    }

    #[test]
    fn label_order_does_not_split_series() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("m", &[("a", "1"), ("b", "2")]);
        let b = reg.counter("m", &[("b", "2"), ("a", "1")]);
        a.inc();
        b.inc();
        assert_eq!(a.get(), 2);
        assert_eq!(reg.snapshot().len(), 1);
    }

    #[test]
    fn histogram_buckets_count_cumulatively_in_prometheus() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("lat_us", &[], &[10, 100, 1000]);
        for v in [5, 10, 11, 500, 5000] {
            h.observe(v);
        }
        // Bounds are inclusive: 10 lands in the `le="10"` bucket.
        assert_eq!(h.bucket_counts(), vec![2, 1, 1, 1]);
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 5 + 10 + 11 + 500 + 5000);

        let text = reg.render_prometheus();
        assert!(text.contains("# TYPE lat_us histogram"));
        assert!(text.contains("lat_us_bucket{le=\"10\"} 2"));
        assert!(text.contains("lat_us_bucket{le=\"100\"} 3"));
        assert!(text.contains("lat_us_bucket{le=\"1000\"} 4"));
        assert!(text.contains("lat_us_bucket{le=\"+Inf\"} 5"));
        assert!(text.contains("lat_us_count 5"));
    }

    #[test]
    fn render_is_deterministic_across_registration_order() {
        let build = |flip: bool| {
            let reg = MetricsRegistry::new();
            let names = if flip { ["b_metric", "a_metric"] } else { ["a_metric", "b_metric"] };
            for n in names {
                reg.counter(n, &[("node", "w0")]).add(7);
            }
            (reg.render_prometheus(), reg.snapshot_json())
        };
        assert_eq!(build(false), build(true));
    }

    #[test]
    fn snapshot_json_parses_back() {
        use crate::json::{self, Json};
        let reg = MetricsRegistry::new();
        reg.counter("c", &[("k", "v")]).inc();
        reg.histogram("h", &[], &[1]).observe(3);
        let parsed = json::parse(&reg.snapshot_json()).expect("snapshot JSON parses");
        let series = parsed.as_array().expect("array of series");
        assert_eq!(series.len(), 2);
        assert_eq!(series[0].get("name").and_then(Json::as_str), Some("c"));
        assert_eq!(series[0].get("value").and_then(Json::as_u64), Some(1));
        assert_eq!(series[0].get("labels").unwrap().get("k").and_then(Json::as_str), Some("v"));
        assert_eq!(series[1].get("kind").and_then(Json::as_str), Some("histogram"));
        assert_eq!(series[1].get("sum").and_then(Json::as_u64), Some(3));
        let buckets = series[1].get("buckets").and_then(Json::as_array).unwrap();
        assert_eq!(buckets.len(), 2, "one bound plus +Inf");
        assert_eq!(buckets[1].as_array().unwrap()[0].as_str(), Some("+Inf"));
    }
}
