//! The Controller decision audit log: for every action a mitigation policy
//! emits, record what the Monitor window showed, what the solver was asked and
//! answered, and which rule fired. Attached to `JobReport` so a mitigation can
//! be explained after the fact.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Inputs and outputs of one min-max batch-allocation solve (paper Eq. 3).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SolverTrace {
    pub global_batch: u64,
    /// Per-worker throughput estimates fed to the solver (index = worker id).
    pub throughputs: Vec<f64>,
    pub b_min: u64,
    /// The batch allocation the solver returned (index = worker id).
    pub allocation: Vec<u64>,
}

/// One audited Controller decision.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DecisionRecord {
    /// Virtual time of the monitor tick, in microseconds.
    pub at_us: u64,
    /// The rule that fired, e.g. `worker-persistent-kill`,
    /// `transient-adjust-bs`, `server-persistent-kill`.
    pub rule: String,
    /// The node the rule singled out (empty for cluster-wide rules).
    pub node: String,
    /// The window statistics the rule keyed on (name → value).
    pub window: BTreeMap<String, f64>,
    /// Present when the rule invoked the batch-allocation solver.
    #[serde(skip_serializing_if = "Option::is_none")]
    pub solver: Option<SolverTrace>,
    /// Debug renderings of the emitted actions.
    pub actions: Vec<String>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decision_record_carries_solver_trace_and_sorted_window() {
        let rec = DecisionRecord {
            at_us: 600_000_000,
            rule: "transient-adjust-bs".into(),
            node: "w2".into(),
            window: [("mean_bpt_per".to_string(), 1.5), ("lambda".to_string(), 1.5)]
                .into_iter()
                .collect(),
            solver: Some(SolverTrace {
                global_batch: 4096,
                throughputs: vec![1.0, 0.5],
                b_min: 1,
                allocation: vec![2731, 1365],
            }),
            actions: vec!["AdjustBatch".into()],
        };
        // The solver allocation covers the global batch.
        assert_eq!(rec.solver.as_ref().unwrap().allocation.iter().sum::<u64>(), 4096);
        // BTreeMap window stats iterate in sorted (deterministic) key order.
        let keys: Vec<&str> = rec.window.keys().map(String::as_str).collect();
        assert_eq!(keys, vec!["lambda", "mean_bpt_per"]);
        assert_eq!(rec.clone(), rec);
    }
}
