//! Structured span tracing, exported in the Chrome trace-event JSON format so
//! that a run's timeline can be loaded directly into Perfetto
//! (<https://ui.perfetto.dev>) or `chrome://tracing`.
//!
//! Timestamps are the simulator's virtual microseconds, which keeps exports
//! bit-for-bit reproducible across same-seed runs.

use crate::json::{self, Json};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One event in the Chrome trace-event format. Only the fields the viewers
/// actually consume are modelled: `ph = "X"` (complete span, with `dur`),
/// `ph = "i"` (instant) and `ph = "C"` (counter sample, with `value`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceEvent {
    pub name: String,
    /// Category — the layer that emitted the event (`engine`, `dds`,
    /// `controller`, `chaos`, …). Viewers use it for filtering.
    pub cat: String,
    /// Phase: `"X"` for complete spans, `"i"` for instants, `"C"` for
    /// counter samples.
    pub ph: String,
    /// Start timestamp in microseconds of virtual time.
    pub ts: u64,
    /// Duration in microseconds; present only on `"X"` events.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub dur: Option<u64>,
    /// Process id; the whole job is one process.
    pub pid: u32,
    /// Thread id; one lane per node.
    pub tid: u32,
    /// Counter value; present only on `"C"` events, rendered as the numeric
    /// `args.value` Perfetto expects for counter tracks.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub value: Option<u64>,
    /// Free-form arguments shown in the viewer's detail pane.
    #[serde(default, skip_serializing_if = "BTreeMap::is_empty")]
    pub args: BTreeMap<String, String>,
}

/// Top-level Chrome trace document: `{"traceEvents": [...]}`. Parseable back
/// via [`ChromeTrace::from_json`] so tests can round-trip an export and
/// validate the schema.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct ChromeTrace {
    #[serde(rename = "traceEvents")]
    pub trace_events: Vec<TraceEvent>,
}

impl TraceEvent {
    fn write_json(&self, out: &mut String) {
        out.push_str("{\"name\":");
        json::write_str(out, &self.name);
        out.push_str(",\"cat\":");
        json::write_str(out, &self.cat);
        out.push_str(",\"ph\":");
        json::write_str(out, &self.ph);
        out.push_str(&format!(",\"ts\":{}", self.ts));
        if let Some(d) = self.dur {
            out.push_str(&format!(",\"dur\":{d}"));
        }
        out.push_str(&format!(",\"pid\":{},\"tid\":{}", self.pid, self.tid));
        if self.value.is_some() || !self.args.is_empty() {
            out.push_str(",\"args\":{");
            let mut first = true;
            if let Some(v) = self.value {
                out.push_str(&format!("\"value\":{v}"));
                first = false;
            }
            for (k, v) in &self.args {
                if !first {
                    out.push(',');
                }
                first = false;
                json::write_str(out, k);
                out.push(':');
                json::write_str(out, v);
            }
            out.push('}');
        }
        out.push('}');
    }

    fn from_json(v: &Json) -> Result<TraceEvent, String> {
        let field_str = |key: &str| {
            v.get(key)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("trace event missing string field `{key}`"))
        };
        let field_u64 = |key: &str| {
            v.get(key)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("trace event missing integer field `{key}`"))
        };
        let dur = match v.get("dur") {
            Some(d) => Some(d.as_u64().ok_or("`dur` must be a non-negative integer")?),
            None => None,
        };
        let mut value = None;
        let args = match v.get("args") {
            Some(a) => {
                let obj = a.as_object().ok_or("`args` must be an object")?;
                let mut map = BTreeMap::new();
                for (k, val) in obj {
                    // The numeric `value` arg is the counter-track payload;
                    // everything else stays a string argument.
                    if k == "value" {
                        if let Some(n) = val.as_u64() {
                            value = Some(n);
                            continue;
                        }
                    }
                    let s = val.as_str().ok_or_else(|| format!("arg `{k}` must be a string"))?;
                    map.insert(k.clone(), s.to_string());
                }
                map
            }
            None => BTreeMap::new(),
        };
        Ok(TraceEvent {
            name: field_str("name")?,
            cat: field_str("cat")?,
            ph: field_str("ph")?,
            ts: field_u64("ts")?,
            dur,
            pid: field_u64("pid")? as u32,
            tid: field_u64("tid")? as u32,
            value,
            args,
        })
    }
}

impl ChromeTrace {
    /// Serialize to Chrome trace-event JSON (deterministic field order).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"traceEvents\":[");
        for (i, e) in self.trace_events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            e.write_json(&mut out);
        }
        out.push_str("]}");
        out
    }

    /// Parse a Chrome trace-event JSON document — the schema-validation half
    /// of the round-trip tests.
    pub fn from_json(s: &str) -> Result<ChromeTrace, String> {
        let v = json::parse(s)?;
        let evs = v
            .get("traceEvents")
            .and_then(Json::as_array)
            .ok_or("document must carry a `traceEvents` array")?;
        let trace_events = evs.iter().map(TraceEvent::from_json).collect::<Result<Vec<_>, _>>()?;
        Ok(ChromeTrace { trace_events })
    }
}

/// Collects [`TraceEvent`]s during a run.
#[derive(Debug, Default)]
pub struct SpanTracer {
    events: Mutex<Vec<TraceEvent>>,
}

impl SpanTracer {
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a complete span (`ph = "X"`).
    pub fn complete(&self, name: &str, cat: &str, ts: u64, dur: u64, tid: u32) {
        self.events.lock().push(TraceEvent {
            name: name.to_string(),
            cat: cat.to_string(),
            ph: "X".into(),
            ts,
            dur: Some(dur),
            pid: 0,
            tid,
            value: None,
            args: BTreeMap::new(),
        });
    }

    /// Record an instant event (`ph = "i"`) with optional arguments.
    pub fn instant(&self, name: &str, cat: &str, ts: u64, tid: u32, args: &[(&str, &str)]) {
        self.events.lock().push(TraceEvent {
            name: name.to_string(),
            cat: cat.to_string(),
            ph: "i".into(),
            ts,
            dur: None,
            pid: 0,
            tid,
            value: None,
            args: args.iter().map(|(k, v)| (k.to_string(), v.to_string())).collect(),
        });
    }

    /// Record a counter sample (`ph = "C"`). Perfetto renders one counter
    /// track per `(name, tid)` pair from the numeric `args.value` payload.
    pub fn counter(&self, name: &str, cat: &str, ts: u64, tid: u32, value: u64) {
        self.events.lock().push(TraceEvent {
            name: name.to_string(),
            cat: cat.to_string(),
            ph: "C".into(),
            ts,
            dur: None,
            pid: 0,
            tid,
            value: Some(value),
            args: BTreeMap::new(),
        });
    }

    /// Append externally produced events (e.g. a converted Gantt chart).
    pub fn extend(&self, events: Vec<TraceEvent>) {
        self.events.lock().extend(events);
    }

    pub fn len(&self) -> usize {
        self.events.lock().len()
    }

    pub fn is_empty(&self) -> bool {
        self.events.lock().is_empty()
    }

    /// The collected events, stably sorted by timestamp (insertion order breaks
    /// ties, so same-seed runs export identical sequences).
    pub fn export(&self) -> ChromeTrace {
        let mut evs = self.events.lock().clone();
        evs.sort_by_key(|e| e.ts);
        ChromeTrace { trace_events: evs }
    }

    /// [`SpanTracer::export`] serialized as Chrome trace JSON.
    pub fn export_json(&self) -> String {
        self.export().to_json()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn export_round_trips_through_chrome_schema() {
        let t = SpanTracer::new();
        t.complete("compute", "gantt", 100, 50, 3);
        t.instant("kill", "lifecycle", 120, 1, &[("node", "w1")]);
        t.counter("attr_wait:sync_wait", "attr", 150, 2, 9_000);
        let json = t.export_json();
        let parsed = ChromeTrace::from_json(&json).expect("valid trace JSON");
        assert_eq!(parsed, t.export());
        assert_eq!(parsed.trace_events.len(), 3);
        assert_eq!(parsed.trace_events[0].ph, "X");
        assert_eq!(parsed.trace_events[0].dur, Some(50));
        assert_eq!(parsed.trace_events[1].args["node"], "w1");
        assert_eq!(parsed.trace_events[2].ph, "C");
        assert_eq!(parsed.trace_events[2].value, Some(9_000));
        assert!(json.contains("\"args\":{\"value\":9000}"));
    }

    #[test]
    fn export_sorts_by_timestamp_with_stable_ties() {
        let t = SpanTracer::new();
        t.instant("b", "x", 200, 0, &[]);
        t.instant("a1", "x", 100, 0, &[]);
        t.instant("a2", "x", 100, 0, &[]);
        let exported = t.export();
        let names: Vec<&str> = exported.trace_events.iter().map(|e| e.name.as_str()).collect();
        assert_eq!(names, vec!["a1", "a2", "b"]);
    }
}
