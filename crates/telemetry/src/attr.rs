//! The attribution export seam: how the runtime's per-cause time
//! decomposition (the `antdt-attr` ledger) flows into telemetry artifacts
//! without the attribution crate depending on this one — or vice versa.
//!
//! The runtime walks its finished ledger and feeds every attributed interval
//! to an [`AttrSink`]; causes travel as their stable snake_case labels so the
//! seam is a plain `(node, label, interval)` stream. Two sinks ship here:
//!
//! * [`CounterTrackSink`] — cumulative Perfetto counter tracks (`ph = "C"`),
//!   one track per cause with one lane per node, so the decomposition lands
//!   in the same trace viewers the PR 2 tooling already opens.
//! * [`CollectSink`] — collects the raw stream for tests.

use crate::trace::SpanTracer;
use std::collections::BTreeMap;

/// Receiver for a run's attributed intervals. Implementations must be
/// deterministic functions of the stream: the runtime feeds segments in
/// (node, time) order and same-seed runs must export identical artifacts.
pub trait AttrSink {
    /// One attributed interval `[start_us, end_us)` of `node`'s wall time.
    /// `cause` is the stable snake_case cause label (`compute`, `data_wait`,
    /// `sync_wait`, `comm`, `control_bus`, `ckpt_stall`, `fault_recovery`).
    fn segment(&mut self, node: u32, cause: &str, start_us: u64, end_us: u64);
}

/// Renders the attribution stream as cumulative Perfetto counter tracks: for
/// each segment, a `ph = "C"` sample named `attr_wait:{cause}` at the segment
/// end carrying the node's cumulative microseconds in that cause. One track
/// per cause, one lane (`tid`) per node.
pub struct CounterTrackSink<'a> {
    tracer: &'a SpanTracer,
    cum: BTreeMap<(u32, String), u64>,
}

impl<'a> CounterTrackSink<'a> {
    pub fn new(tracer: &'a SpanTracer) -> Self {
        CounterTrackSink { tracer, cum: BTreeMap::new() }
    }
}

impl AttrSink for CounterTrackSink<'_> {
    fn segment(&mut self, node: u32, cause: &str, start_us: u64, end_us: u64) {
        let cum = self.cum.entry((node, cause.to_string())).or_insert(0);
        *cum += end_us.saturating_sub(start_us);
        self.tracer.counter(&format!("attr_wait:{cause}"), "attr", end_us, node, *cum);
    }
}

/// Test sink: the raw `(node, cause, start_us, end_us)` stream, verbatim.
#[derive(Debug, Default)]
pub struct CollectSink {
    pub segments: Vec<(u32, String, u64, u64)>,
}

impl AttrSink for CollectSink {
    fn segment(&mut self, node: u32, cause: &str, start_us: u64, end_us: u64) {
        self.segments.push((node, cause.to_string(), start_us, end_us));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_track_sink_accumulates_per_node_and_cause() {
        let t = SpanTracer::new();
        let mut sink = CounterTrackSink::new(&t);
        sink.segment(0, "compute", 0, 100);
        sink.segment(0, "compute", 150, 250);
        sink.segment(1, "compute", 0, 40);
        sink.segment(0, "sync_wait", 100, 150);
        let trace = t.export();
        assert_eq!(trace.trace_events.len(), 4);
        assert!(trace.trace_events.iter().all(|e| e.ph == "C" && e.cat == "attr"));
        // Node 0's compute track accumulates across segments…
        let n0: Vec<u64> = trace
            .trace_events
            .iter()
            .filter(|e| e.tid == 0 && e.name == "attr_wait:compute")
            .map(|e| e.value.unwrap())
            .collect();
        assert_eq!(n0, vec![100, 200]);
        // …independently of node 1's lane and of other causes.
        let n1 = trace
            .trace_events
            .iter()
            .find(|e| e.tid == 1 && e.name == "attr_wait:compute")
            .unwrap();
        assert_eq!(n1.value, Some(40));
    }

    #[test]
    fn collect_sink_keeps_the_stream_verbatim() {
        let mut sink = CollectSink::default();
        sink.segment(2, "data_wait", 10, 30);
        assert_eq!(sink.segments, vec![(2, "data_wait".to_string(), 10, 30)]);
    }
}
