//! # antdt-telemetry — observability for the AntDT control plane
//!
//! The paper's Monitor is deliberately minute-level (§V-A): right for control
//! decisions, useless for diagnosing *why* a drill stalled or which rule
//! killed a node. This crate is the diagnostic layer underneath it:
//!
//! * [`MetricsRegistry`] — counters / gauges / fixed-bucket histograms keyed
//!   by node and component, with a Prometheus text renderer and a JSON
//!   snapshot. Hot-path updates are single relaxed atomics (no allocation).
//! * [`SpanTracer`] — structured spans and instants exported as Chrome
//!   trace-event JSON, loadable in Perfetto.
//! * [`DecisionRecord`] — the Controller decision audit log (window stats,
//!   solver inputs/outputs, the rule that fired).
//! * [`FlightRecorder`] — a bounded ring of recent events, dumped when the
//!   liveness watchdog declares `stalled` or an invariant checker fails.
//! * [`AttrSink`] — the seam the straggler-attribution engine exports its
//!   per-cause time decomposition through ([`CounterTrackSink`] renders it
//!   as Perfetto counter tracks).
//!
//! The crate sits below the simulator in the dependency graph: timestamps are
//! raw virtual microseconds (`u64`), never wall clock, so every export is
//! bit-for-bit reproducible across same-seed runs.

pub mod attr;
pub mod audit;
pub mod flight;
pub mod json;
pub mod metrics;
pub mod trace;

pub use attr::{AttrSink, CollectSink, CounterTrackSink};
pub use audit::{DecisionRecord, SolverTrace};
pub use flight::{FlightDump, FlightEvent, FlightRecorder};
pub use metrics::{Counter, Gauge, Histogram, MetricsRegistry, SeriesSnapshot};
pub use trace::{ChromeTrace, SpanTracer, TraceEvent};

use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// The telemetry bundle a runtime threads through its components. Shared as
/// `Arc<Telemetry>`; all parts are internally synchronized.
#[derive(Debug, Default)]
pub struct Telemetry {
    pub metrics: MetricsRegistry,
    pub tracer: SpanTracer,
    pub flight: FlightRecorder,
}

impl Telemetry {
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    pub fn with_flight_capacity(capacity: usize) -> Arc<Self> {
        Arc::new(Telemetry {
            metrics: MetricsRegistry::new(),
            tracer: SpanTracer::new(),
            flight: FlightRecorder::new(capacity),
        })
    }

    /// Freeze the current state into a [`TelemetryReport`]. The strings are
    /// pre-rendered so byte-identity across runs can be asserted directly.
    pub fn report(&self, flight_reason: &str) -> TelemetryReport {
        TelemetryReport {
            prometheus: self.metrics.render_prometheus(),
            metrics_json: self.metrics.snapshot_json(),
            chrome_trace: self.tracer.export_json(),
            flight: self.flight.dump(flight_reason),
        }
    }
}

/// Rendered telemetry artifacts for one run, attached to `JobReport`.
///
/// All fields are deterministic functions of the seeded simulation, so two
/// same-seed runs produce `==` (byte-identical) reports.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TelemetryReport {
    /// Prometheus text-exposition rendering of the metrics registry.
    pub prometheus: String,
    /// JSON snapshot of the metrics registry.
    pub metrics_json: String,
    /// Chrome trace-event JSON (`{"traceEvents": [...]}`), Perfetto-loadable.
    pub chrome_trace: String,
    /// Final flight-recorder ring (`reason` is `stalled` or `completed`).
    pub flight: FlightDump,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_is_deterministic_for_identical_activity() {
        let run = || {
            let t = Telemetry::new();
            t.metrics.counter("antdt_events_handled_total", &[("runtime", "ps")]).add(12);
            t.metrics
                .histogram("antdt_restart_delay_us", &[], &[1_000_000, 60_000_000])
                .observe(45_000_000);
            t.tracer.complete("compute", "gantt", 0, 2_000_000, 0);
            t.flight.record(2_000_000, "event", "WorkerComputeDone { w: 0 }".into());
            t.report("completed")
        };
        let (a, b) = (run(), run());
        assert_eq!(a, b);
        assert!(!a.prometheus.is_empty());
        let parsed = ChromeTrace::from_json(&a.chrome_trace).unwrap();
        assert_eq!(parsed.trace_events.len(), 1);
    }
}
