//! Minimal JSON rendering and parsing for the telemetry exporters.
//!
//! The workspace builds offline against a stub `serde_json`, so this module
//! hand-rolls the small JSON subset the exporters emit: objects with string
//! keys, arrays, strings, booleans, `null` and finite numbers. Rendering is
//! fully deterministic (fixed field order, sorted maps), which is what keeps
//! telemetry exports byte-identical across same-seed runs. The parser exists
//! so tests can round-trip an export and validate its schema.

use std::collections::BTreeMap;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    /// All numbers parse as `f64`; the exporters only emit unsigned integers
    /// well inside the exact-integer range of a double.
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Object field lookup; `None` on missing key or non-object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(a) => Some(a),
            _ => None,
        }
    }

    pub fn as_object(&self) -> Option<&BTreeMap<String, Json>> {
        match self {
            Json::Obj(m) => Some(m),
            _ => None,
        }
    }
}

/// Append `s` to `out` as a JSON string literal (quotes included).
pub fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parse a complete JSON document. Errors carry a byte offset and reason.
pub fn parse(input: &str) -> Result<Json, String> {
    let mut p = Parser { bytes: input.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected byte at {}", self.pos)),
        }
    }

    fn literal(&mut self, lit: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if matches!(b, b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii number");
        text.parse::<f64>().map(Json::Num).map_err(|_| format!("bad number at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000c}'),
                        Some(b'u') => {
                            let cp = self.hex4()?;
                            // Surrogate pairs (the escaper never emits them,
                            // but accept well-formed input).
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                // Step past the last hex digit onto the `\u`
                                // of the required low-surrogate escape.
                                self.pos += 1;
                                if self.peek() != Some(b'\\') {
                                    return Err("lone high surrogate".into());
                                }
                                self.pos += 1;
                                if self.peek() != Some(b'u') {
                                    return Err("lone high surrogate".into());
                                }
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err("invalid low surrogate".into());
                                }
                                let combined = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(combined).ok_or("bad surrogate pair")?
                            } else {
                                char::from_u32(cp).ok_or("bad \\u escape")?
                            };
                            out.push(c);
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Multi-byte UTF-8 sequences pass through verbatim.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid utf-8".to_string())?;
                    let c = rest.chars().next().expect("non-empty checked");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    /// Consume `uXXXX` (the caller already saw the backslash; `self.pos` is on
    /// the `u`). Leaves `self.pos` on the last hex digit.
    fn hex4(&mut self) -> Result<u32, String> {
        let start = self.pos + 1;
        let end = start + 4;
        if end > self.bytes.len() {
            return Err("truncated \\u escape".into());
        }
        let hex = std::str::from_utf8(&self.bytes[start..end])
            .map_err(|_| "bad \\u escape".to_string())?;
        let cp = u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape".to_string())?;
        self.pos = end - 1;
        Ok(cp)
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut out = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(out));
        }
        loop {
            self.skip_ws();
            out.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(out));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut out = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(out));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            out.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(out));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_documents() {
        let v = parse(r#"{"a": [1, 2.5, "x\n", true, null], "b": {"c": 7}}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 5);
        assert_eq!(v.get("a").unwrap().as_array().unwrap()[2].as_str(), Some("x\n"));
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_u64(), Some(7));
    }

    #[test]
    fn escaping_round_trips() {
        let nasty = "quote \" slash \\ newline \n tab \t ctrl \u{0001} unicode é";
        let mut out = String::new();
        write_str(&mut out, nasty);
        let back = parse(&out).unwrap();
        assert_eq!(back.as_str(), Some(nasty));
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{}  x").is_err());
        assert!(parse("\"unterminated").is_err());
    }

    #[test]
    fn large_integers_stay_exact() {
        // Simulated-time microsecond stamps fit well inside f64's 2^53.
        let v = parse("2592000000000").unwrap();
        assert_eq!(v.as_u64(), Some(2_592_000_000_000));
    }
}
