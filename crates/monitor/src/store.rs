//! The metric store: per-node BPT windows plus the node-event log, assembled
//! into [`MonitorSnapshot`]s for the Controller.

use crate::events::NodeEvent;
use crate::snapshot::{ClusterInfo, MonitorSnapshot, NodeStats};
use crate::window::BptWindow;
use crate::{NodeId, Role};
use antdt_sim::{SimDuration, SimTime};
use antdt_telemetry::Counter;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Monitor configuration: the two sliding windows of §VI-A2 (defaults from
/// §VII-A5: `L_trans` = 5 min, `L_per` = 10 min).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MonitorConfig {
    pub l_trans: SimDuration,
    pub l_per: SimDuration,
}

impl Default for MonitorConfig {
    fn default() -> Self {
        MonitorConfig {
            l_trans: SimDuration::from_minutes(5),
            l_per: SimDuration::from_minutes(10),
        }
    }
}

impl MonitorConfig {
    /// Retention needed to answer both window queries.
    pub fn retention(&self) -> SimDuration {
        self.l_trans.max(self.l_per)
    }
}

#[derive(Debug, Clone)]
struct NodeEntry {
    window: BptWindow,
    alive: bool,
}

/// Telemetry counters for Monitor ingestion.
#[derive(Debug, Clone, Default)]
pub struct MonitorCounters {
    /// BPT reports ingested.
    pub bpt_reports: Counter,
    /// Node lifecycle events ingested.
    pub node_events: Counter,
}

/// The Monitor's metric store.
#[derive(Debug, Clone)]
pub struct MetricStore {
    cfg: MonitorConfig,
    nodes: BTreeMap<NodeId, NodeEntry>,
    events: Vec<NodeEvent>,
    cluster: ClusterInfo,
    counters: Option<MonitorCounters>,
}

impl MetricStore {
    pub fn new(cfg: MonitorConfig) -> Self {
        MetricStore {
            cfg,
            nodes: BTreeMap::new(),
            events: Vec::new(),
            cluster: ClusterInfo::default(),
            counters: None,
        }
    }

    /// Attach telemetry counters; subsequent ingestion updates them.
    pub fn attach_telemetry(&mut self, counters: MonitorCounters) {
        self.counters = Some(counters);
    }

    pub fn config(&self) -> MonitorConfig {
        self.cfg
    }

    fn entry(&mut self, node: NodeId) -> &mut NodeEntry {
        let retention = self.cfg.retention();
        self.nodes
            .entry(node)
            .or_insert_with(|| NodeEntry { window: BptWindow::new(retention), alive: true })
    }

    /// Register a node up front so it appears in snapshots even before its
    /// first report (fresh nodes show `None` statistics, not absence).
    pub fn register(&mut self, node: NodeId) {
        self.entry(node);
    }

    /// Application-state report from an Agent: one iteration's BPT + batch.
    pub fn report_bpt(&mut self, node: NodeId, t: SimTime, bpt_secs: f64, batch: u64) {
        self.entry(node).window.push(t, bpt_secs, batch);
        if let Some(c) = &self.counters {
            c.bpt_reports.inc();
        }
    }

    /// Node-state notification.
    pub fn report_event(&mut self, event: NodeEvent) {
        match event {
            NodeEvent::Killed { node, .. } => {
                let e = self.entry(node);
                e.alive = false;
            }
            NodeEvent::Restarted { node, .. } => {
                let e = self.entry(node);
                e.alive = true;
                // A restarted pod is a new process on (likely) new hardware:
                // its predecessor's BPT history must not bias detection.
                e.window.clear();
            }
        }
        self.events.push(event);
        if let Some(c) = &self.counters {
            c.node_events.inc();
        }
    }

    /// Third-party information update.
    pub fn set_cluster_info(&mut self, info: ClusterInfo) {
        self.cluster = info;
    }

    pub fn events(&self) -> &[NodeEvent] {
        &self.events
    }

    pub fn is_alive(&self, node: NodeId) -> bool {
        self.nodes.get(&node).is_none_or(|e| e.alive)
    }

    /// Build the Controller-facing snapshot at time `now`.
    pub fn snapshot(&self, now: SimTime) -> MonitorSnapshot {
        let mut workers = Vec::new();
        let mut servers = Vec::new();
        for (&node, e) in &self.nodes {
            let stats = NodeStats {
                node,
                bpt_trans: e.window.mean_bpt(now, self.cfg.l_trans),
                bpt_per: e.window.mean_bpt(now, self.cfg.l_per),
                throughput: e.window.mean_throughput(now, self.cfg.l_trans),
                batch: e.window.last_batch(),
                alive: e.alive,
            };
            match node.role {
                Role::Worker => workers.push(stats),
                Role::Server => servers.push(stats),
            }
        }
        MonitorSnapshot { workers, servers, cluster: self.cluster }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::{ErrorClass, RetryableError};

    fn t(secs: f64) -> SimTime {
        SimTime::from_secs_f64(secs)
    }

    fn cfg() -> MonitorConfig {
        MonitorConfig { l_trans: SimDuration::from_secs(60), l_per: SimDuration::from_secs(300) }
    }

    #[test]
    fn snapshot_separates_roles_and_windows() {
        let mut m = MetricStore::new(cfg());
        // Worker 0: slow recently, fast before.
        for i in 0..10 {
            m.report_bpt(NodeId::worker(0), t(i as f64 * 30.0), 1.0, 100);
        }
        for i in 10..12 {
            m.report_bpt(NodeId::worker(0), t(i as f64 * 30.0), 5.0, 100);
        }
        m.report_bpt(NodeId::server(0), t(330.0), 0.5, 0);

        let snap = m.snapshot(t(330.0));
        assert_eq!(snap.workers.len(), 1);
        assert_eq!(snap.servers.len(), 1);
        let w = &snap.workers[0];
        // Short window (60s ending at 330): samples at 270 (1.0), 300 and 330 (5.0).
        assert!((w.bpt_trans.unwrap() - 11.0 / 3.0).abs() < 1e-9);
        // Long window mean is pulled toward the fast history.
        assert!(w.bpt_per.unwrap() < w.bpt_trans.unwrap());
        assert_eq!(w.batch, Some(100));
    }

    #[test]
    fn kill_marks_dead_and_restart_resets_history() {
        let mut m = MetricStore::new(cfg());
        m.report_bpt(NodeId::worker(1), t(10.0), 9.0, 100);
        m.report_event(NodeEvent::Killed {
            node: NodeId::worker(1),
            at: t(20.0),
            class: ErrorClass::Retryable(RetryableError::ProactiveKill),
        });
        assert!(!m.is_alive(NodeId::worker(1)));
        let snap = m.snapshot(t(20.0));
        assert!(!snap.workers[0].alive);

        m.report_event(NodeEvent::Restarted { node: NodeId::worker(1), at: t(50.0) });
        assert!(m.is_alive(NodeId::worker(1)));
        let snap = m.snapshot(t(50.0));
        assert!(snap.workers[0].alive);
        // Pre-kill BPT history is gone.
        assert_eq!(snap.workers[0].bpt_per, None);
        assert_eq!(m.events().len(), 2);
    }

    #[test]
    fn registered_nodes_appear_without_reports() {
        let mut m = MetricStore::new(cfg());
        m.register(NodeId::worker(0));
        m.register(NodeId::server(0));
        let snap = m.snapshot(t(0.0));
        assert_eq!(snap.workers.len(), 1);
        assert_eq!(snap.servers.len(), 1);
        assert_eq!(snap.workers[0].bpt_trans, None);
        assert!(snap.workers[0].alive);
    }

    #[test]
    fn ingestion_counters_track_reports_and_events() {
        let mut m = MetricStore::new(cfg());
        let c = MonitorCounters::default();
        m.attach_telemetry(c.clone());
        m.report_bpt(NodeId::worker(0), t(1.0), 1.0, 100);
        m.report_bpt(NodeId::worker(1), t(2.0), 1.0, 100);
        m.report_event(NodeEvent::Killed {
            node: NodeId::worker(0),
            at: t(3.0),
            class: ErrorClass::Retryable(RetryableError::ProactiveKill),
        });
        assert_eq!(c.bpt_reports.get(), 2);
        assert_eq!(c.node_events.get(), 1);
    }

    #[test]
    fn cluster_info_flows_through() {
        let mut m = MetricStore::new(cfg());
        m.set_cluster_info(ClusterInfo { busy: true, expected_pending_secs: 900.0 });
        let snap = m.snapshot(t(0.0));
        assert!(snap.cluster.busy);
        assert_eq!(snap.cluster.expected_pending_secs, 900.0);
    }
}
