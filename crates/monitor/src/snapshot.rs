//! The aggregated view the Monitor hands to the Controller on each decision
//! tick: per-node short/long-window BPT means, throughputs, batch sizes, plus
//! the third-party cluster signals.

use crate::NodeId;
use serde::{Deserialize, Serialize};

/// Per-node statistics at snapshot time.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NodeStats {
    pub node: NodeId,
    /// `T̄ᵢᵗʳᵃⁿˢ` — mean BPT over the short window, if any samples exist.
    pub bpt_trans: Option<f64>,
    /// `T̄ᵢᵖᵉʳ` — mean BPT over the long window.
    pub bpt_per: Option<f64>,
    /// `vᵢ` — mean throughput (samples/s) over the short window.
    pub throughput: Option<f64>,
    /// Most recent local batch size.
    pub batch: Option<u64>,
    /// Whether the node is currently alive (dead nodes are mid-failover).
    pub alive: bool,
}

/// Third-party information (§V-D): cluster-scheduler signals.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClusterInfo {
    pub busy: bool,
    pub expected_pending_secs: f64,
}

impl Default for ClusterInfo {
    fn default() -> Self {
        ClusterInfo { busy: false, expected_pending_secs: 10.0 }
    }
}

/// Everything the Controller sees.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MonitorSnapshot {
    pub workers: Vec<NodeStats>,
    pub servers: Vec<NodeStats>,
    pub cluster: ClusterInfo,
}

impl MonitorSnapshot {
    /// Mean of the available short-window worker BPTs (`T̄ᵗʳᵃⁿˢ`), over *alive*
    /// workers only.
    pub fn mean_worker_bpt_trans(&self) -> Option<f64> {
        mean(self.workers.iter().filter(|s| s.alive).filter_map(|s| s.bpt_trans))
    }

    /// Mean of the long-window worker BPTs (`T̄ᵖᵉʳ`).
    pub fn mean_worker_bpt_per(&self) -> Option<f64> {
        mean(self.workers.iter().filter(|s| s.alive).filter_map(|s| s.bpt_per))
    }

    /// Mean of the long-window server BPTs.
    pub fn mean_server_bpt_per(&self) -> Option<f64> {
        mean(self.servers.iter().filter(|s| s.alive).filter_map(|s| s.bpt_per))
    }
}

fn mean(it: impl Iterator<Item = f64>) -> Option<f64> {
    let mut sum = 0.0;
    let mut n = 0u32;
    for v in it {
        sum += v;
        n += 1;
    }
    (n > 0).then(|| sum / n as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stat(idx: u32, trans: Option<f64>, per: Option<f64>, alive: bool) -> NodeStats {
        NodeStats {
            node: NodeId::worker(idx),
            bpt_trans: trans,
            bpt_per: per,
            throughput: None,
            batch: None,
            alive,
        }
    }

    #[test]
    fn means_skip_missing_and_dead() {
        let snap = MonitorSnapshot {
            workers: vec![
                stat(0, Some(2.0), Some(3.0), true),
                stat(1, Some(4.0), None, true),
                stat(2, Some(100.0), Some(100.0), false), // dead: excluded
                stat(3, None, Some(5.0), true),
            ],
            servers: vec![],
            cluster: ClusterInfo::default(),
        };
        assert_eq!(snap.mean_worker_bpt_trans(), Some(3.0));
        assert_eq!(snap.mean_worker_bpt_per(), Some(4.0));
        assert_eq!(snap.mean_server_bpt_per(), None);
    }
}
