//! Node lifecycle events and the retryable/unretryable error taxonomy (§V-D):
//! retryable errors trigger failover; unretryable ones must terminate the job.

use crate::NodeId;
use antdt_sim::SimTime;
use serde::{Deserialize, Serialize};

/// Errors the framework recovers from by restarting the node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RetryableError {
    /// Deliberate termination by the `KILL_RESTART` action.
    ProactiveKill,
    /// Transient network failure.
    NetworkError,
    /// The multi-tenant scheduler evicted the pod.
    JobEviction,
    /// Machine breakdown / OOM-kill by the kubelet.
    NodeFailure,
}

/// Errors that must terminate the whole training job.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum UnretryableError {
    /// Bad user configuration (wrong paths, malformed hyper-parameters…).
    ConfigError,
    /// A bug in user code (exception in the training loop).
    ProgramError,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ErrorClass {
    Retryable(RetryableError),
    Unretryable(UnretryableError),
}

impl ErrorClass {
    pub fn is_retryable(&self) -> bool {
        matches!(self, ErrorClass::Retryable(_))
    }

    /// Classify a Kubernetes-style exit code / reason string. Unknown codes are
    /// treated as retryable node failures — the conservative choice, since
    /// killing a healthy job on a flaky signal is worse than one spurious
    /// restart.
    pub fn classify(reason: &str) -> ErrorClass {
        let r = reason.to_ascii_lowercase();
        if r.contains("config") || r.contains("invalid") {
            ErrorClass::Unretryable(UnretryableError::ConfigError)
        } else if r.contains("assert") || r.contains("panic") || r.contains("exception") {
            ErrorClass::Unretryable(UnretryableError::ProgramError)
        } else if r.contains("evict") || r.contains("preempt") {
            ErrorClass::Retryable(RetryableError::JobEviction)
        } else if r.contains("network") || r.contains("timeout") || r.contains("conn") {
            ErrorClass::Retryable(RetryableError::NetworkError)
        } else if r.contains("sigterm") || r.contains("kill_restart") {
            ErrorClass::Retryable(RetryableError::ProactiveKill)
        } else {
            ErrorClass::Retryable(RetryableError::NodeFailure)
        }
    }
}

/// A node lifecycle notification delivered to the Monitor.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum NodeEvent {
    Killed { node: NodeId, at: SimTime, class: ErrorClass },
    Restarted { node: NodeId, at: SimTime },
}

impl NodeEvent {
    pub fn node(&self) -> NodeId {
        match *self {
            NodeEvent::Killed { node, .. } | NodeEvent::Restarted { node, .. } => node,
        }
    }

    pub fn at(&self) -> SimTime {
        match *self {
            NodeEvent::Killed { at, .. } | NodeEvent::Restarted { at, .. } => at,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_covers_the_taxonomy() {
        assert_eq!(
            ErrorClass::classify("pod evicted by scheduler"),
            ErrorClass::Retryable(RetryableError::JobEviction)
        );
        assert_eq!(
            ErrorClass::classify("connection reset by peer"),
            ErrorClass::Retryable(RetryableError::NetworkError)
        );
        assert_eq!(
            ErrorClass::classify("SIGTERM from kill_restart"),
            ErrorClass::Retryable(RetryableError::ProactiveKill)
        );
        assert_eq!(
            ErrorClass::classify("invalid config: bad learning rate"),
            ErrorClass::Unretryable(UnretryableError::ConfigError)
        );
        assert_eq!(
            ErrorClass::classify("panicked at train.rs:42"),
            ErrorClass::Unretryable(UnretryableError::ProgramError)
        );
        // Unknown => retryable node failure.
        assert_eq!(ErrorClass::classify("???"), ErrorClass::Retryable(RetryableError::NodeFailure));
    }

    #[test]
    fn classification_is_case_insensitive() {
        assert_eq!(
            ErrorClass::classify("NETWORK unreachable"),
            ErrorClass::Retryable(RetryableError::NetworkError)
        );
        assert_eq!(
            ErrorClass::classify("Pod EVICTED"),
            ErrorClass::Retryable(RetryableError::JobEviction)
        );
        assert_eq!(
            ErrorClass::classify("InvalidImageName"),
            ErrorClass::Unretryable(UnretryableError::ConfigError)
        );
        assert_eq!(
            ErrorClass::classify("PANIC in worker"),
            ErrorClass::Unretryable(UnretryableError::ProgramError)
        );
    }

    #[test]
    fn config_substring_outranks_conn() {
        // "config"/"invalid" are checked before "conn": a connection error whose
        // reason also mentions configuration must fail the job, not retry.
        assert_eq!(
            ErrorClass::classify("conn refused due to invalid config"),
            ErrorClass::Unretryable(UnretryableError::ConfigError)
        );
        assert_eq!(
            ErrorClass::classify("config server connection lost"),
            ErrorClass::Unretryable(UnretryableError::ConfigError)
        );
        // Plain "conn" with no config hint stays retryable.
        assert_eq!(
            ErrorClass::classify("conn refused"),
            ErrorClass::Retryable(RetryableError::NetworkError)
        );
    }

    #[test]
    fn unknown_reasons_default_to_retryable_node_failure() {
        for reason in ["", "exit code 137", "oom", "disk pressure", "unknown"] {
            let c = ErrorClass::classify(reason);
            assert_eq!(c, ErrorClass::Retryable(RetryableError::NodeFailure), "reason {reason:?}");
            assert!(c.is_retryable());
        }
    }

    #[test]
    fn retryability_flag() {
        assert!(ErrorClass::Retryable(RetryableError::NetworkError).is_retryable());
        assert!(!ErrorClass::Unretryable(UnretryableError::ProgramError).is_retryable());
    }

    #[test]
    fn event_accessors() {
        let e = NodeEvent::Killed {
            node: NodeId::worker(2),
            at: SimTime::from_secs_f64(5.0),
            class: ErrorClass::Retryable(RetryableError::ProactiveKill),
        };
        assert_eq!(e.node(), NodeId::worker(2));
        assert_eq!(e.at(), SimTime::from_secs_f64(5.0));
    }
}
