//! # antdt-monitor — the AntDT Monitor component
//!
//! Periodically gathers and aggregates the three kinds of information the paper
//! lists (§V-D) and exposes them to the Controller:
//!
//! * **Application state** — batch processing time (BPT) and batch size per
//!   node, averaged over two sliding windows: a short one `L_trans` (default
//!   5 min) that surfaces *transient* stragglers and a long one `L_per`
//!   (default 10 min) for *persistent* stragglers.
//! * **Node state** — lifecycle events (kills, restarts) and errors, classified
//!   into *retryable* (proactive `KILL_RESTART` terminations, network errors,
//!   job eviction) and *unretryable* (configuration / program errors, which must
//!   fail the job).
//! * **Third-party information** — cluster-scheduler signals: whether the
//!   cluster is busy and the expected pod pending time, which gates
//!   `KILL_RESTART`.
//!
//! Observability here is deliberately minute-level, not real-time (§V-A).

pub mod events;
pub mod snapshot;
pub mod store;
pub mod window;

pub use events::{ErrorClass, NodeEvent, RetryableError, UnretryableError};
pub use snapshot::{ClusterInfo, MonitorSnapshot, NodeStats};
pub use store::{MetricStore, MonitorConfig, MonitorCounters};
pub use window::BptWindow;

use serde::{Deserialize, Serialize};

/// Role of a node in the Parameter Server architecture. AllReduce jobs only
/// have workers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Role {
    Worker,
    Server,
}

/// A node address: role + dense index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId {
    pub role: Role,
    pub idx: u32,
}

impl NodeId {
    pub fn worker(idx: u32) -> Self {
        NodeId { role: Role::Worker, idx }
    }
    pub fn server(idx: u32) -> Self {
        NodeId { role: Role::Server, idx }
    }
}

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.role {
            Role::Worker => write!(f, "w{}", self.idx),
            Role::Server => write!(f, "ps-{}", self.idx),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_display_matches_paper_naming() {
        assert_eq!(NodeId::worker(3).to_string(), "w3");
        assert_eq!(NodeId::server(2).to_string(), "ps-2");
    }
}
