//! Per-node sliding window over `(time, BPT, batch)` observations. One deque
//! spans the *longest* configured window; shorter trailing means are computed on
//! demand, so `L_trans` and `L_per` share storage.

use antdt_sim::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BptSample {
    pub t: SimTime,
    pub bpt_secs: f64,
    pub batch: u64,
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BptWindow {
    span: SimDuration,
    samples: VecDeque<BptSample>,
}

impl BptWindow {
    pub fn new(span: SimDuration) -> Self {
        BptWindow { span, samples: VecDeque::new() }
    }

    pub fn span(&self) -> SimDuration {
        self.span
    }

    pub fn len(&self) -> usize {
        self.samples.len()
    }

    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Record one observation at time `t` (non-decreasing), evicting samples
    /// older than the retention span.
    pub fn push(&mut self, t: SimTime, bpt_secs: f64, batch: u64) {
        debug_assert!(
            self.samples.back().is_none_or(|s| s.t <= t),
            "observations must arrive in time order"
        );
        self.samples.push_back(BptSample { t, bpt_secs, batch });
        let cutoff = t - self.span;
        while let Some(front) = self.samples.front() {
            if front.t < cutoff {
                self.samples.pop_front();
            } else {
                break;
            }
        }
    }

    /// Drop everything (used when a node restarts: its old identity's BPTs must
    /// not poison the fresh node's statistics).
    pub fn clear(&mut self) {
        self.samples.clear();
    }

    /// Mean BPT over the trailing `span` ending at `now` — `T̄ᵢ` in the paper.
    pub fn mean_bpt(&self, now: SimTime, span: SimDuration) -> Option<f64> {
        let from = now - span;
        let mut sum = 0.0;
        let mut n = 0u32;
        for s in self.samples.iter().rev() {
            if s.t > now {
                continue;
            }
            if s.t < from {
                break;
            }
            sum += s.bpt_secs;
            n += 1;
        }
        (n > 0).then(|| sum / n as f64)
    }

    /// Mean throughput `vᵢ = mean(Bᵢ / Tᵢ)` over the trailing window (§VI-A3).
    pub fn mean_throughput(&self, now: SimTime, span: SimDuration) -> Option<f64> {
        let from = now - span;
        let mut sum = 0.0;
        let mut n = 0u32;
        for s in self.samples.iter().rev() {
            if s.t > now {
                continue;
            }
            if s.t < from {
                break;
            }
            if s.bpt_secs > 0.0 {
                sum += s.batch as f64 / s.bpt_secs;
                n += 1;
            }
        }
        (n > 0).then(|| sum / n as f64)
    }

    /// Most recent batch size, if any.
    pub fn last_batch(&self) -> Option<u64> {
        self.samples.back().map(|s| s.batch)
    }

    pub fn last_time(&self) -> Option<SimTime> {
        self.samples.back().map(|s| s.t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(secs: f64) -> SimTime {
        SimTime::from_secs_f64(secs)
    }

    #[test]
    fn mean_bpt_over_trailing_span() {
        let mut w = BptWindow::new(SimDuration::from_secs(100));
        w.push(t(10.0), 2.0, 100);
        w.push(t(20.0), 4.0, 100);
        w.push(t(30.0), 6.0, 100);
        assert_eq!(w.mean_bpt(t(30.0), SimDuration::from_secs(100)), Some(4.0));
        // Short trailing window picks only the last two samples.
        assert_eq!(w.mean_bpt(t(30.0), SimDuration::from_secs(15)), Some(5.0));
        assert_eq!(w.mean_bpt(t(200.0), SimDuration::from_secs(10)), None);
    }

    #[test]
    fn eviction_respects_retention_span() {
        let mut w = BptWindow::new(SimDuration::from_secs(50));
        for i in 0..20 {
            w.push(t(i as f64 * 10.0), 1.0, 10);
        }
        // Retention: samples within [190-50, 190] => t in {140..190}: 6 samples.
        assert_eq!(w.len(), 6);
    }

    #[test]
    fn throughput_is_batch_over_bpt() {
        let mut w = BptWindow::new(SimDuration::from_secs(100));
        w.push(t(1.0), 2.0, 200); // 100 samples/s
        w.push(t(2.0), 4.0, 200); // 50 samples/s
        let v = w.mean_throughput(t(2.0), SimDuration::from_secs(100)).unwrap();
        assert!((v - 75.0).abs() < 1e-9);
        assert_eq!(w.last_batch(), Some(200));
    }

    #[test]
    fn zero_bpt_samples_are_skipped_in_throughput() {
        let mut w = BptWindow::new(SimDuration::from_secs(10));
        w.push(t(1.0), 0.0, 100);
        assert_eq!(w.mean_throughput(t(1.0), SimDuration::from_secs(10)), None);
    }

    #[test]
    fn empty_window_answers_none() {
        let w = BptWindow::new(SimDuration::from_minutes(5));
        assert!(w.is_empty());
        assert_eq!(w.len(), 0);
        assert_eq!(w.mean_bpt(t(100.0), SimDuration::from_minutes(5)), None);
        assert_eq!(w.mean_throughput(t(100.0), SimDuration::from_minutes(5)), None);
        assert_eq!(w.last_batch(), None);
        assert_eq!(w.last_time(), None);
    }

    #[test]
    fn single_sample_window() {
        let mut w = BptWindow::new(SimDuration::from_minutes(10));
        w.push(t(30.0), 2.5, 500);
        assert_eq!(w.len(), 1);
        assert_eq!(w.mean_bpt(t(30.0), SimDuration::from_minutes(5)), Some(2.5));
        let v = w.mean_throughput(t(30.0), SimDuration::from_minutes(5)).unwrap();
        assert!((v - 200.0).abs() < 1e-9);
        assert_eq!(w.last_batch(), Some(500));
        assert_eq!(w.last_time(), Some(t(30.0)));
        // A query window that ends before the sample sees nothing.
        assert_eq!(w.mean_bpt(t(20.0), SimDuration::from_minutes(5)), None);
    }

    #[test]
    fn sample_exactly_at_the_eviction_boundary_is_retained() {
        // Retention eviction drops samples with `t < now - span` strictly: a
        // sample exactly `span` old (the L_per boundary) must survive.
        let span = SimDuration::from_minutes(10);
        let mut w = BptWindow::new(span);
        w.push(t(0.0), 1.0, 100);
        w.push(t(600.0), 3.0, 100); // t(0) is exactly at the cutoff: retained
        assert_eq!(w.len(), 2);
        assert_eq!(w.mean_bpt(t(600.0), span), Some(2.0));
        // One microsecond past the boundary: evicted.
        w.push(t(600.0) + SimDuration::from_micros(1), 5.0, 100);
        assert_eq!(w.len(), 2);
        assert_eq!(w.samples.front().unwrap().t, t(600.0));
    }

    #[test]
    fn query_window_boundary_is_inclusive() {
        // `mean_bpt` keeps samples with `t >= now - span` (the L_trans boundary
        // sample participates) and ignores samples after `now`.
        let mut w = BptWindow::new(SimDuration::from_minutes(10));
        w.push(t(100.0), 2.0, 100);
        w.push(t(400.0), 4.0, 100);
        // L_trans = 5 min ending at 400: from = 100, boundary sample included.
        assert_eq!(w.mean_bpt(t(400.0), SimDuration::from_minutes(5)), Some(3.0));
        // Querying as of t=250 ignores the later sample.
        assert_eq!(w.mean_bpt(t(250.0), SimDuration::from_minutes(5)), Some(2.0));
    }

    #[test]
    fn clear_resets_state() {
        let mut w = BptWindow::new(SimDuration::from_secs(10));
        w.push(t(1.0), 1.0, 1);
        w.clear();
        assert!(w.is_empty());
        assert_eq!(w.mean_bpt(t(1.0), SimDuration::from_secs(10)), None);
    }
}
