//! Model cost profiles: how long the forward+backward pass of a batch takes on
//! the *reference* device, how many bytes the gradients occupy, and what the
//! server-side work per update costs.
//!
//! All figures are calibrated so that baseline JCTs land in the same ballpark as
//! the paper's reported numbers (§VII); the experiments only ever compare
//! *ratios* between methods on identical profiles.

use serde::{Deserialize, Serialize};

/// Affine batch-compute cost `t(B) = c0 + c1·B` in seconds on the reference
/// device. CPU profiles use a near-zero `c0` (paper Fig. 7 shows pure
/// linearity); GPU profiles have a visible `c0` (kernel launch / framework
/// overhead), producing the flat-then-linear shape of paper Fig. 8 and making
/// the batch-size/accumulation trade-off of AntDT-DD non-trivial.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ComputeCost {
    pub c0_secs: f64,
    pub per_sample_secs: f64,
}

impl ComputeCost {
    /// Time for a batch of `b` samples on a device `speed`× the reference
    /// (the fixed overhead does not shrink with a faster chip).
    #[inline]
    pub fn time(&self, b: u64, speed: f64) -> f64 {
        if b == 0 {
            return 0.0;
        }
        self.c0_secs + b as f64 * self.per_sample_secs / speed.max(f64::MIN_POSITIVE)
    }

    /// Throughput (samples/sec) at batch `b` on a device of the given speed.
    pub fn throughput(&self, b: u64, speed: f64) -> f64 {
        let t = self.time(b, speed);
        if t <= 0.0 {
            0.0
        } else {
            b as f64 / t
        }
    }
}

/// A full workload profile: worker compute + communication + server-side costs.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ModelProfile {
    pub name: &'static str,
    /// Worker forward+backward cost on the reference device.
    pub compute: ComputeCost,
    /// Gradient / parameter payload in bytes (drives `Tᵢᵐ` and AllReduce time).
    pub param_bytes: u64,
    /// Server cost to *aggregate* one worker's gradient piece into the running
    /// sum (cheap, per gradient).
    pub server_agg_secs: f64,
    /// Server cost to *apply* an optimizer update to its parameter shard
    /// (expensive: the IO-heavy part of a PS server). BSP pays this once per
    /// global iteration.
    pub server_apply_secs: f64,
    /// Per-push apply cost in ASP. ASP updates parameters on *every* worker
    /// push, so its total server work per global batch is
    /// `n·(agg + apply_asp)` — higher than BSP's `n·agg + apply` (the paper's
    /// "higher frequency to update the model parameters", §VII-B1b), which is
    /// why ASP loses to BSP under a server straggler.
    pub server_apply_asp_secs: f64,
}

impl ModelProfile {
    /// XDeepFM on the Criteo-like CTR workload (Cluster-A experiments).
    /// Reference worker: 16-core CPU; local batch 4096 ⇒ ≈ 2 s.
    pub fn xdeepfm() -> Self {
        ModelProfile {
            name: "xdeepfm",
            compute: ComputeCost { c0_secs: 0.05, per_sample_secs: 4.8e-4 },
            param_bytes: 40 * 1024 * 1024,
            server_agg_secs: 0.012,
            server_apply_secs: 0.55,
            server_apply_asp_secs: 0.08,
        }
    }

    /// ResNet-101 on the ImageNet-like workload (Cluster-B, reference = V100).
    pub fn resnet101() -> Self {
        ModelProfile {
            name: "resnet101",
            compute: ComputeCost { c0_secs: 0.15, per_sample_secs: 1.733e-3 },
            param_bytes: 170 * 1024 * 1024,
            server_agg_secs: 0.0,
            server_apply_secs: 0.0,
            server_apply_asp_secs: 0.0,
        }
    }

    /// MobileNets: lighter math but proportionally heavier fixed overhead, and a
    /// larger V100/P100 gap (memory-bandwidth-bound depthwise convolutions) —
    /// the paper observes the AntDT-DD advantage *growing* on this model.
    pub fn mobilenets() -> Self {
        ModelProfile {
            name: "mobilenets",
            compute: ComputeCost { c0_secs: 0.05, per_sample_secs: 5.8e-4 },
            param_bytes: 17 * 1024 * 1024,
            server_agg_secs: 0.0,
            server_apply_secs: 0.0,
            server_apply_asp_secs: 0.0,
        }
    }

    /// The in-house transformer ranking model (Cluster-C scalability runs).
    pub fn transformer_inhouse() -> Self {
        ModelProfile {
            name: "transformer-inhouse",
            compute: ComputeCost { c0_secs: 0.08, per_sample_secs: 1.6e-3 },
            param_bytes: 120 * 1024 * 1024,
            server_agg_secs: 0.010,
            server_apply_secs: 0.40,
            server_apply_asp_secs: 0.06,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cpu_cost_is_essentially_linear() {
        // Paper Fig. 7: doubling the batch ~doubles the BPT on CPU.
        let c = ModelProfile::xdeepfm().compute;
        let t1 = c.time(4096, 1.0);
        let t2 = c.time(8192, 1.0);
        let ratio = t2 / t1;
        assert!((ratio - 2.0).abs() < 0.05, "ratio {ratio}");
    }

    #[test]
    fn gpu_cost_is_flat_at_small_batches() {
        // Paper Fig. 8: below the saturation point, BPT barely moves.
        let c = ModelProfile::resnet101().compute;
        let t8 = c.time(8, 1.0);
        let t16 = c.time(16, 1.0);
        assert!(t16 / t8 < 1.1, "flat region: {t8} -> {t16}");
        // ...but is clearly increasing at large batches.
        let t64 = c.time(64, 1.0);
        let t128 = c.time(128, 1.0);
        assert!(t128 / t64 > 1.3, "linear region: {t64} -> {t128}");
    }

    #[test]
    fn speed_scales_only_the_variable_part() {
        let c = ComputeCost { c0_secs: 1.0, per_sample_secs: 0.01 };
        let slow = c.time(100, 1.0); // 1 + 1 = 2
        let fast = c.time(100, 2.0); // 1 + 0.5 = 1.5
        assert!((slow - 2.0).abs() < 1e-12);
        assert!((fast - 1.5).abs() < 1e-12);
    }

    #[test]
    fn zero_batch_costs_nothing() {
        let c = ComputeCost { c0_secs: 1.0, per_sample_secs: 0.01 };
        assert_eq!(c.time(0, 1.0), 0.0);
        assert_eq!(c.throughput(0, 1.0), 0.0);
    }

    #[test]
    fn throughput_improves_with_batch_on_gpu() {
        // Amortizing c0: bigger batches are more efficient per sample.
        let c = ModelProfile::resnet101().compute;
        assert!(c.throughput(96, 1.0) > c.throughput(16, 1.0));
    }

    #[test]
    fn xdeepfm_local_batch_matches_paper_scale() {
        // Local batch 4096 on a clean worker should take ~2s (so that ~1650
        // BSP iterations land near the paper's ~3800s clean JCT).
        let t = ModelProfile::xdeepfm().compute.time(4096, 1.0);
        assert!((1.5..3.0).contains(&t), "t = {t}");
    }
}
