//! Cluster builders mirroring the paper's three evaluation clusters (§VII-A1).

use crate::devices::DeviceClass;
use antdt_sim::{Link, NodeProfile, SchedulerModel};
use serde::{Deserialize, Serialize};

/// One node: contention profile + hardware class + network link.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct NodeSpec {
    pub profile: NodeProfile,
    pub device: DeviceClass,
    pub link: Link,
}

impl NodeSpec {
    pub fn new(profile: NodeProfile, device: DeviceClass, link: Link) -> Self {
        NodeSpec { profile, device, link }
    }
}

/// Cluster-C's three node-scale settings (§VII-A1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ClusterSize {
    /// 30 workers / 12 servers.
    Small,
    /// 60 workers / 24 servers.
    Medium,
    /// 90 workers / 36 servers.
    Large,
}

impl ClusterSize {
    pub fn workers_servers(self) -> (usize, usize) {
        match self {
            ClusterSize::Small => (30, 12),
            ClusterSize::Medium => (60, 24),
            ClusterSize::Large => (90, 36),
        }
    }
}

/// A full cluster: worker and server node specs plus the scheduler model.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ClusterSpec {
    pub workers: Vec<NodeSpec>,
    pub servers: Vec<NodeSpec>,
    pub scheduler: SchedulerModel,
    /// Dedicated clusters have no multi-tenant contention.
    pub dedicated: bool,
}

impl ClusterSpec {
    pub fn n_workers(&self) -> usize {
        self.workers.len()
    }
    pub fn n_servers(&self) -> usize {
        self.servers.len()
    }
}

/// RNG stream-id bases so node streams never collide across roles.
pub const WORKER_STREAM_BASE: u64 = 1_000;
pub const SERVER_STREAM_BASE: u64 = 2_000;

/// Cluster-A: dedicated CPU, 20 workers (16 cores) + 8 servers (4 cores).
pub fn cluster_a() -> ClusterSpec {
    cluster_a_scaled(20, 8)
}

/// Cluster-A shape at an arbitrary scale (for fast tests and examples).
pub fn cluster_a_scaled(n_workers: usize, n_servers: usize) -> ClusterSpec {
    let workers = (0..n_workers)
        .map(|i| {
            NodeSpec::new(
                NodeProfile::clean(WORKER_STREAM_BASE + i as u64),
                DeviceClass::cpu_worker(),
                Link::datacenter(),
            )
        })
        .collect();
    let servers = (0..n_servers)
        .map(|j| {
            NodeSpec::new(
                NodeProfile::clean(SERVER_STREAM_BASE + j as u64),
                DeviceClass::cpu_server(),
                Link::datacenter(),
            )
        })
        .collect();
    ClusterSpec { workers, servers, scheduler: SchedulerModel::paper_default(), dedicated: true }
}

/// Cluster-B: dedicated GPU, 8 nodes — four V100s and four P100s, 100 Gb/s
/// links, AllReduce architecture (no servers).
pub fn cluster_b() -> ClusterSpec {
    cluster_b_with(DeviceClass::v100(), DeviceClass::p100())
}

/// Cluster-B with custom device classes (MobileNets uses the wider-gap P100).
pub fn cluster_b_with(fast: DeviceClass, slow: DeviceClass) -> ClusterSpec {
    let workers = (0..8usize)
        .map(|i| {
            let device = if i < 4 { fast } else { slow };
            NodeSpec::new(
                NodeProfile::clean(WORKER_STREAM_BASE + i as u64).with_jitter(0.01),
                device,
                Link::gpu_cluster(),
            )
        })
        .collect();
    ClusterSpec {
        workers,
        servers: Vec::new(),
        scheduler: SchedulerModel::paper_default(),
        dedicated: true,
    }
}

/// Cluster-C: non-dedicated CPU at one of three scales. Nodes start clean; the
/// non-dedicated contention is layered on by
/// [`straggler::non_dedicated_background`](crate::straggler::non_dedicated_background)
/// so experiments control severity explicitly.
pub fn cluster_c(size: ClusterSize) -> ClusterSpec {
    let (nw, ns) = size.workers_servers();
    let mut spec = cluster_a_scaled(nw, ns);
    spec.dedicated = false;
    spec
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cluster_a_matches_paper_shape() {
        let c = cluster_a();
        assert_eq!(c.n_workers(), 20);
        assert_eq!(c.n_servers(), 8);
        assert!(c.dedicated);
    }

    #[test]
    fn cluster_b_is_half_v100_half_p100() {
        let c = cluster_b();
        assert_eq!(c.n_workers(), 8);
        assert!(c.servers.is_empty());
        let v = c.workers.iter().filter(|n| n.device.name == "V100").count();
        let p = c.workers.iter().filter(|n| n.device.name == "P100").count();
        assert_eq!((v, p), (4, 4));
    }

    #[test]
    fn cluster_c_sizes() {
        assert_eq!(cluster_c(ClusterSize::Small).n_workers(), 30);
        assert_eq!(cluster_c(ClusterSize::Medium).n_servers(), 24);
        assert_eq!(cluster_c(ClusterSize::Large).n_workers(), 90);
        assert!(!cluster_c(ClusterSize::Small).dedicated);
    }

    #[test]
    fn worker_streams_are_unique() {
        let c = cluster_c(ClusterSize::Large);
        let mut streams: Vec<u64> =
            c.workers.iter().chain(c.servers.iter()).map(|n| n.profile.stream).collect();
        streams.sort_unstable();
        let before = streams.len();
        streams.dedup();
        assert_eq!(before, streams.len());
    }
}
