//! # antdt-workloads — datasets, cost profiles, clusters, straggler scenarios
//!
//! Everything the paper's evaluation needs as *inputs*, rebuilt synthetically
//! (the substitutions are documented in `DESIGN.md`):
//!
//! * [`ctr`] — a Criteo-like sparse CTR dataset generated from a hidden
//!   factorization-machine ground truth, so real training reaches a meaningful
//!   AUC (the paper reports 0.794 for XDeepFM on Criteo).
//! * [`cost`] — per-model compute/communication cost profiles. CPU models are
//!   linear in the batch size (validated by paper Fig. 7); GPU models are affine
//!   (`c0 + c1·B`), which on a log scale reproduces the flat-then-linear shape of
//!   paper Fig. 8 and gives gradient accumulation its real trade-off.
//! * [`devices`] — device classes (V100, P100, CPU workers/servers) with speed
//!   factors, memory caps `B̂ᵐᵃˣ` and saturation points `B̂ᵐⁱⁿ`.
//! * [`cluster`] — builders for the paper's Cluster-A (dedicated CPU),
//!   Cluster-B (mixed V100/P100 GPU) and Cluster-C (non-dedicated CPU at
//!   small/medium/large scale).
//! * [`straggler`] — FlexRR-style injection scenarios (§VII-A4): transient
//!   (15-in-30-minute windows, p = 0.3, `1.5 s × intensity`), persistent
//!   (`4 s × intensity`, whole job), and the deterministic V100/P100 gap.

pub mod cluster;
pub mod cost;
pub mod ctr;
pub mod devices;
pub mod straggler;

pub use cluster::{ClusterSize, ClusterSpec, NodeSpec};
pub use cost::{ComputeCost, ModelProfile};
pub use ctr::CtrConfig;
pub use devices::DeviceClass;
pub use straggler::Scenario;
