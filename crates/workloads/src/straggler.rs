//! Straggler injection scenarios (paper §VII-A4).
//!
//! The paper injects synthetic patterns because natural contention is not
//! controllable: `T_delay = SleepDuration × Intensity` with a certain
//! probability. Worker contention is *additive* (a literal sleep in the training
//! thread each iteration); server contention is modelled *multiplicatively* on
//! the server's service times plus a congestion factor on its link — a straggling
//! server slows both `Tᵢˢ` and `Tᵢᵐ` (§IV), which is why only `KILL_RESTART`
//! helps there.

use crate::cluster::ClusterSpec;
use antdt_sim::profile::ContentionPhase;
use antdt_sim::{NodeProfile, SimTime, TransientPattern};
use serde::{Deserialize, Serialize};

/// A named injection scenario, applied on top of a clean [`ClusterSpec`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Scenario {
    /// No injection (clean dedicated cluster).
    None,
    /// Paper Fig. 10/11 "worker stragglers" and Table III worker side:
    /// every worker gets the transient FlexRR pattern
    /// (15-in-30 min, p = 0.3, 1.5 s × intensity) and worker `n−1` is a
    /// persistent straggler (4 s × intensity, whole job).
    WorkerMix { intensity: f64 },
    /// Transient-only worker contention.
    WorkerTransient { intensity: f64 },
    /// One persistent worker straggler, nothing else.
    WorkerPersistent { intensity: f64 },
    /// Paper Fig. 10/11 "server stragglers" and Table III server side: one
    /// server persistently contended — service times ×(1 + 8·intensity) and its
    /// link congested ×(1 + 2·intensity). The paper's additive 4-second delay
    /// lands many multiples above a healthy server's sub-second iteration work,
    /// so the multiplicative stand-in is steep.
    ServerPersistent { intensity: f64 },
    /// Paper Fig. 1a's mixture for the motivation plot: w1 transient,
    /// w2 persistent, w3 a 3×-slower deterministic straggler.
    MotivationMix,
    /// Background multi-tenant load of a non-dedicated cluster (Fig. 2):
    /// every node (workers *and* servers) gets transient contention and a
    /// sampled persistent slowdown, averaging ≈`mean_slowdown`× the dedicated
    /// speed.
    NonDedicated { mean_slowdown: f64 },
}

/// Index of the persistent worker straggler used by `WorkerMix` /
/// `WorkerPersistent` (kept stable so figures can label it, like the paper's w3).
pub fn persistent_worker_index(spec: &ClusterSpec) -> usize {
    spec.workers.len().saturating_sub(1)
}

/// Index of the straggling server used by `ServerPersistent` (paper's ps-3).
pub fn straggler_server_index(spec: &ClusterSpec) -> usize {
    spec.servers.len().saturating_sub(1)
}

/// Apply `scenario` to `spec` in place.
pub fn apply(spec: &mut ClusterSpec, scenario: Scenario) {
    match scenario {
        Scenario::None => {}
        Scenario::WorkerMix { intensity } => {
            apply(spec, Scenario::WorkerTransient { intensity });
            apply(spec, Scenario::WorkerPersistent { intensity });
        }
        Scenario::WorkerTransient { intensity } => {
            for w in &mut spec.workers {
                w.profile
                    .phases
                    .push(ContentionPhase::Transient(TransientPattern::paper_default(intensity)));
            }
        }
        Scenario::WorkerPersistent { intensity } => {
            let idx = persistent_worker_index(spec);
            if let Some(w) = spec.workers.get_mut(idx) {
                w.profile.phases.push(ContentionPhase::Persistent {
                    delay_secs: 4.0 * intensity,
                    from: SimTime::ZERO,
                    to: SimTime::MAX,
                });
            }
        }
        Scenario::ServerPersistent { intensity } => {
            let idx = straggler_server_index(spec);
            if let Some(s) = spec.servers.get_mut(idx) {
                s.profile.phases.push(ContentionPhase::Slowdown {
                    factor: 1.0 + 8.0 * intensity,
                    from: SimTime::ZERO,
                    to: SimTime::MAX,
                });
                s.link = s.link.clone().with_congestion(
                    SimTime::ZERO,
                    SimTime::MAX,
                    1.0 + 2.0 * intensity,
                );
            }
        }
        Scenario::MotivationMix => {
            if spec.workers.len() > 3 {
                spec.workers[1]
                    .profile
                    .phases
                    .push(ContentionPhase::Transient(TransientPattern::paper_default(0.8)));
                spec.workers[2].profile.phases.push(ContentionPhase::Persistent {
                    delay_secs: 3.0,
                    from: SimTime::ZERO,
                    to: SimTime::MAX,
                });
                let stream = spec.workers[3].profile.stream;
                let old = NodeProfile::deterministic(stream, 3.0);
                spec.workers[3].profile.speed_factor = old.speed_factor;
            }
            if !spec.servers.is_empty() {
                let j = spec.servers.len() - 1;
                spec.servers[j].profile.phases.push(ContentionPhase::Slowdown {
                    factor: 3.0,
                    from: SimTime::ZERO,
                    to: SimTime::MAX,
                });
            }
        }
        Scenario::NonDedicated { mean_slowdown } => {
            // Deterministic per-node severity derived from the node's stream id,
            // spread around the requested mean: factors in
            // [1, 2·mean_slowdown − 1] with uniform spacing.
            let span = (mean_slowdown - 1.0).max(0.0) * 2.0;
            let mut all: Vec<&mut crate::cluster::NodeSpec> =
                spec.workers.iter_mut().chain(spec.servers.iter_mut()).collect();
            let n = all.len().max(1) as f64;
            for (i, node) in all.iter_mut().enumerate() {
                let frac = (i as f64 + 0.5) / n;
                // Reverse-sorted so severity is not correlated with node index.
                let factor = 1.0 + span * ((frac * 7.0) % 1.0);
                node.profile.phases.push(ContentionPhase::Slowdown {
                    factor,
                    from: SimTime::ZERO,
                    to: SimTime::MAX,
                });
                node.profile
                    .phases
                    .push(ContentionPhase::Transient(TransientPattern::paper_default(0.5)));
                node.profile.jitter_sigma = 0.08;
            }
        }
    }
}

/// Convenience: the paper's headline worker-straggler scenario at a given
/// intensity (transient everywhere + one persistent straggler).
pub fn worker_mix(intensity: f64) -> Scenario {
    Scenario::WorkerMix { intensity }
}

/// Convenience: the paper's server-straggler scenario.
pub fn server_persistent(intensity: f64) -> Scenario {
    Scenario::ServerPersistent { intensity }
}

/// Convenience: non-dedicated background noise averaging ~4× slowdown (Fig. 2).
pub fn non_dedicated_background() -> Scenario {
    Scenario::NonDedicated { mean_slowdown: 4.0 }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::cluster_a_scaled;
    use antdt_sim::RngPool;

    #[test]
    fn worker_mix_marks_every_worker_transient_and_one_persistent() {
        let mut spec = cluster_a_scaled(6, 3);
        apply(&mut spec, worker_mix(0.8));
        for w in &spec.workers {
            assert!(w.profile.phases.iter().any(|p| matches!(p, ContentionPhase::Transient(_))));
        }
        let persistent: Vec<usize> = spec
            .workers
            .iter()
            .enumerate()
            .filter(|(_, w)| {
                w.profile.phases.iter().any(|p| matches!(p, ContentionPhase::Persistent { .. }))
            })
            .map(|(i, _)| i)
            .collect();
        assert_eq!(persistent, vec![5]);
    }

    #[test]
    fn persistent_delay_scales_with_intensity() {
        let mut spec = cluster_a_scaled(4, 2);
        apply(&mut spec, Scenario::WorkerPersistent { intensity: 0.5 });
        let pool = RngPool::new(1);
        let w = &spec.workers[3];
        assert_eq!(w.profile.extra_delay(&pool, SimTime::from_secs_f64(1.0)), 2.0);
    }

    #[test]
    fn server_persistent_slows_service_and_link() {
        let mut spec = cluster_a_scaled(4, 3);
        apply(&mut spec, server_persistent(0.8));
        let s = &spec.servers[2];
        assert!((s.profile.slowdown(SimTime::ZERO) - 7.4).abs() < 1e-9);
        assert!((s.link.congestion_at(SimTime::ZERO) - 2.6).abs() < 1e-9);
        // Other servers untouched.
        assert_eq!(spec.servers[0].profile.slowdown(SimTime::ZERO), 1.0);
    }

    #[test]
    fn non_dedicated_mean_slowdown_is_close_to_target() {
        let mut spec = cluster_a_scaled(30, 12);
        apply(&mut spec, Scenario::NonDedicated { mean_slowdown: 4.0 });
        let mean: f64 = spec.workers.iter().map(|w| w.profile.slowdown(SimTime::ZERO)).sum::<f64>()
            / spec.workers.len() as f64;
        assert!((2.5..5.5).contains(&mean), "mean slowdown {mean}");
    }

    #[test]
    fn motivation_mix_shapes_the_fig1_cast() {
        let mut spec = cluster_a_scaled(6, 4);
        apply(&mut spec, Scenario::MotivationMix);
        assert!((spec.workers[3].profile.speed_factor - 1.0 / 3.0).abs() < 1e-9);
        assert!(spec.workers[2]
            .profile
            .phases
            .iter()
            .any(|p| matches!(p, ContentionPhase::Persistent { .. })));
        assert!((spec.servers[3].profile.slowdown(SimTime::ZERO) - 3.0).abs() < 1e-9);
    }

    #[test]
    fn none_is_a_noop() {
        let mut spec = cluster_a_scaled(4, 2);
        let before = spec.clone();
        apply(&mut spec, Scenario::None);
        assert_eq!(spec, before);
    }
}
