//! Device classes: speed relative to the reference device, memory cap `B̂ᵐᵃˣ`
//! (95% GPU memory, paper footnote 5) and saturation point `B̂ᵐⁱⁿ` (paper
//! footnote 4) used as the box constraints in AntDT-DD's Eq. 4.

use serde::Serialize;

#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct DeviceClass {
    pub name: &'static str,
    /// Throughput multiplier on the reference device (reference = 1.0).
    pub speed: f64,
    /// `B̂ᵐⁱⁿ` — smallest batch worth scheduling (below it the BPT is flat).
    pub saturation_batch: u64,
    /// `B̂ᵐᵃˣ` — largest batch that fits in memory.
    pub mem_cap_batch: u64,
}

impl DeviceClass {
    /// Tesla V100 — the reference GPU (paper: "V100s are consistently about
    /// three times faster than P100").
    pub fn v100() -> Self {
        DeviceClass { name: "V100", speed: 1.0, saturation_batch: 16, mem_cap_batch: 112 }
    }

    /// Tesla P100 — 1/3 of V100 throughput, slightly smaller usable batch.
    pub fn p100() -> Self {
        DeviceClass { name: "P100", speed: 1.0 / 3.0, saturation_batch: 16, mem_cap_batch: 96 }
    }

    /// P100 under a memory-bandwidth-bound model (MobileNets): the gap to the
    /// V100 widens to ~3.5×.
    pub fn p100_membound() -> Self {
        DeviceClass { name: "P100", speed: 1.0 / 3.5, saturation_batch: 16, mem_cap_batch: 96 }
    }

    /// A 16-core CPU worker — the reference device for CPU profiles.
    pub fn cpu_worker() -> Self {
        DeviceClass { name: "cpu16", speed: 1.0, saturation_batch: 1, mem_cap_batch: u64::MAX / 2 }
    }

    /// An older CPU series, ~3× slower (the deterministic CPU straggler of
    /// paper Fig. 1a, worker w3).
    pub fn cpu_old() -> Self {
        DeviceClass {
            name: "cpu16-old",
            speed: 1.0 / 3.0,
            saturation_batch: 1,
            mem_cap_batch: u64::MAX / 2,
        }
    }

    /// A parameter-server node (4–12 cores; only relative speed matters).
    pub fn cpu_server() -> Self {
        DeviceClass {
            name: "cpu-server",
            speed: 1.0,
            saturation_batch: 1,
            mem_cap_batch: u64::MAX / 2,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn v100_is_three_times_p100() {
        let r = DeviceClass::v100().speed / DeviceClass::p100().speed;
        assert!((r - 3.0).abs() < 1e-9);
    }

    #[test]
    fn caps_are_sane() {
        for d in [DeviceClass::v100(), DeviceClass::p100(), DeviceClass::cpu_worker()] {
            assert!(d.saturation_batch <= d.mem_cap_batch, "{}", d.name);
            assert!(d.speed > 0.0);
        }
    }
}
