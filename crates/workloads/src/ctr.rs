//! Synthetic Criteo-like CTR dataset.
//!
//! Rows have `n_fields` categorical fields, each one-hot into its own vocabulary
//! slice, labelled by a hidden ground truth that mixes per-feature weights with
//! pairwise field interactions — so a factorization machine genuinely has
//! something to learn and reaches an AUC in the paper's ballpark (0.794 for
//! XDeepFM on real Criteo), while logistic regression plateaus lower. Labels are
//! imbalanced like click data.

use antdt_ml::{Dataset, SparseExample};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CtrConfig {
    pub n_samples: u64,
    pub n_fields: usize,
    /// Vocabulary size per field; `n_features = n_fields × field_dim`.
    pub field_dim: u32,
    /// Latent dimension of the hidden ground-truth interactions.
    pub k_true: usize,
    /// Shifts the intercept to control the positive rate (≈ click rate).
    pub bias: f32,
    /// Label noise: probability a label is flipped.
    pub noise: f64,
    pub seed: u64,
}

impl Default for CtrConfig {
    fn default() -> Self {
        CtrConfig {
            n_samples: 50_000,
            n_fields: 8,
            field_dim: 64,
            k_true: 4,
            bias: -1.2,
            noise: 0.02,
            seed: 7,
        }
    }
}

impl CtrConfig {
    pub fn n_features(&self) -> u32 {
        self.n_fields as u32 * self.field_dim
    }

    pub fn with_samples(mut self, n: u64) -> Self {
        self.n_samples = n;
        self
    }

    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

#[inline]
fn sigmoid(z: f32) -> f32 {
    if z >= 0.0 {
        1.0 / (1.0 + (-z).exp())
    } else {
        let e = z.exp();
        e / (1.0 + e)
    }
}

/// Generate the dataset. Deterministic in `cfg.seed`.
pub fn generate(cfg: &CtrConfig) -> Dataset {
    let n_feat = cfg.n_features() as usize;
    let mut rng = StdRng::seed_from_u64(cfg.seed);

    // Hidden ground truth: linear weights + latent factors per feature.
    let w: Vec<f32> = (0..n_feat).map(|_| rng.gen_range(-1.6f32..1.6)).collect();
    let v: Vec<f32> = (0..n_feat * cfg.k_true).map(|_| rng.gen_range(-1.0f32..1.0)).collect();

    let mut data = Dataset::new(cfg.n_features());
    let mut sums = vec![0.0f32; cfg.k_true];
    for _ in 0..cfg.n_samples {
        // One active category per field; skewed (Zipf-ish) category popularity.
        let mut feats = Vec::with_capacity(cfg.n_fields);
        for f in 0..cfg.n_fields {
            let u: f64 = rng.gen_range(0.0..1.0);
            let cat = ((u * u) * cfg.field_dim as f64) as u32 % cfg.field_dim;
            feats.push((f as u32 * cfg.field_dim + cat, 1.0f32));
        }
        // Ground-truth score: linear + FM-style pairwise interactions.
        let mut z = cfg.bias;
        sums.iter_mut().for_each(|s| *s = 0.0);
        let mut sq = 0.0f32;
        for &(i, _) in &feats {
            z += w[i as usize];
            for (f, s) in sums.iter_mut().enumerate() {
                let vif = v[i as usize * cfg.k_true + f];
                *s += vif;
                sq += vif * vif;
            }
        }
        let s2: f32 = sums.iter().map(|s| s * s).sum();
        z += 0.5 * (s2 - sq);

        let p = sigmoid(z);
        let mut label = if rng.gen_range(0.0f32..1.0) < p { 1.0 } else { 0.0 };
        if rng.gen_range(0.0f64..1.0) < cfg.noise {
            label = 1.0 - label;
        }
        data.push(SparseExample { feats, label });
    }
    data
}

#[cfg(test)]
mod tests {
    use super::*;
    use antdt_ml::{auc, FactorizationMachine, Model, Optimizer, Sgd};

    #[test]
    fn generation_is_deterministic_and_shaped() {
        let cfg = CtrConfig::default().with_samples(2_000);
        let a = generate(&cfg);
        let b = generate(&cfg);
        assert_eq!(a, b);
        assert_eq!(a.len(), 2_000);
        assert_eq!(a.n_features, 8 * 64);
        // One active feature per field, field-local indices.
        for ex in &a.examples {
            assert_eq!(ex.feats.len(), 8);
            for (f, &(idx, val)) in ex.feats.iter().enumerate() {
                assert_eq!(val, 1.0);
                assert!(idx >= f as u32 * 64 && idx < (f as u32 + 1) * 64);
            }
        }
    }

    #[test]
    fn labels_are_imbalanced_like_ctr_data() {
        let d = generate(&CtrConfig::default().with_samples(20_000));
        let rate = d.positive_rate();
        assert!((0.05..0.45).contains(&rate), "positive rate {rate}");
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate(&CtrConfig::default().with_samples(500).with_seed(1));
        let b = generate(&CtrConfig::default().with_samples(500).with_seed(2));
        assert_ne!(a, b);
    }

    #[test]
    fn fm_learns_auc_in_paper_ballpark() {
        let d = generate(&CtrConfig::default().with_samples(24_000));
        let (train, test) = d.split_holdout(0.2);
        let mut fm = FactorizationMachine::new(train.n_features, 8, 0.05);
        let mut opt = Sgd::new(0.5);
        let mut grad = vec![0.0f32; fm.n_params()];
        let idx: Vec<u64> = (0..train.len() as u64).collect();
        for epoch in 0..15 {
            for chunk in idx.chunks(512) {
                grad.iter_mut().for_each(|g| *g = 0.0);
                fm.grad_batch(&train, chunk, &mut grad);
                opt.step(fm.params_mut(), &grad);
            }
            let _ = epoch;
        }
        let scores = fm.scores(&test);
        let labels: Vec<f32> = test.examples.iter().map(|e| e.label).collect();
        let a = auc(&scores, &labels).expect("both classes present");
        // Real Criteo/XDeepFM reaches 0.794; our synthetic stand-in should land
        // in a comparable band — well above random.
        assert!(a > 0.72, "AUC {a}");
    }
}
