//! # antdt-chaos — deterministic fault-injection & chaos-drill subsystem
//!
//! Production fault-tolerance claims (§IV Stateful DDS failover, §V global
//! mitigation actions) are only as good as the drills that exercise them.
//! This crate turns the discrete-event simulator into a chaos harness:
//!
//! * [`FaultPlan`] — a serializable DSL of timestamped fault events
//!   (node kills, restart delays, link degradation, DDS outages, lossy
//!   reporting), compiled onto a `JobConfig`'s injection hooks and delivered
//!   as first-class simulator events, so every drill is bit-for-bit
//!   reproducible from `(plan, seed)`;
//! * [`invariants`] — post-drill checkers: at-least-once / at-most-once
//!   shard audits, barrier liveness (a wedged drill must *fail loudly* via
//!   the watchdog, never hang), global-action convergence across surviving
//!   workers, and AUC parity against the fault-free run of the same seed;
//! * [`ChaosDriver`] — runs a (plan × mitigation-policy) matrix, pairing
//!   each drill with its clean twin, and emits a [`DrillReport`] per cell
//!   (fault timeline, recovery marks, invariant verdicts, JCT overhead);
//! * [`FaultPlan::random`] — a seeded plan generator for property-based
//!   fuzz drills.
//!
//! ```no_run
//! use antdt_chaos::{ChaosDriver, Fault, FaultPlan, NodeRef};
//! use antdt_core::{JobConfig, MitigationChoice};
//! use antdt_workloads::cluster::cluster_a_scaled;
//! use antdt_workloads::Scenario;
//!
//! let base = JobConfig::ps_bsp(cluster_a_scaled(4, 2), Scenario::None);
//! let plan = FaultPlan::new("kill-w1")
//!     .at(30.0, Fault::KillNode { node: NodeRef::Worker(1) });
//! let matrix = ChaosDriver::new(base)
//!     .with_plan(plan)
//!     .with_policies(vec![MitigationChoice::AntDtNd])
//!     .run();
//! println!("{}", matrix.render());
//! assert!(matrix.all_passed());
//! ```

pub mod driver;
pub mod invariants;
pub mod plan;

pub use driver::{ChaosDriver, DrillReport, MatrixReport};
pub use invariants::InvariantOutcome;
pub use plan::{Fault, FaultEvent, FaultPlan, NodeRef, PlanBounds};
