//! The fault-plan DSL: a serializable, timestamped list of faults that a
//! chaos drill injects into a job. Plans are cluster-shape-agnostic until
//! [`FaultPlan::compile`] lowers them onto a concrete [`antdt_core::JobConfig`]'s
//! injection hooks; `JobConfig::validate` then checks every target against the
//! actual cluster, so a plan written for the wrong topology fails loudly
//! before the simulation starts.

use antdt_core::{ChaosInjection, InjectedFault};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// A node slot targeted by a fault. Slots are stable across restarts (the
/// runtime resolves the current incarnation when the fault fires).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum NodeRef {
    Worker(u32),
    Server(u32),
}

impl NodeRef {
    fn expect_worker(self, what: &str) -> u32 {
        match self {
            NodeRef::Worker(w) => w,
            NodeRef::Server(_) => panic!("{what} targets a server; only workers are supported"),
        }
    }
}

/// One fault kind in the DSL. Mirrors the runtime's [`InjectedFault`]
/// vocabulary but stays independent of it so plans can be serialized, stored
/// and replayed without dragging the whole job configuration along.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Fault {
    /// Kill a node; the job's normal failover path (requeue + replacement
    /// pod, or checkpoint rollback) runs as usual.
    KillNode { node: NodeRef },
    /// Kill a worker with failover disabled — no shard requeue, no
    /// replacement. The canonical barrier-stall drill: the job can never
    /// complete and the liveness watchdog must catch it.
    KillNodeNoFailover { node: NodeRef },
    /// Extra scheduler pending time charged to the worker's next restart.
    RestartDelay { node: NodeRef, extra_secs: f64 },
    /// Divide the worker's link bandwidth by `factor` for `window_secs`.
    NetworkDegrade { node: NodeRef, factor: f64, window_secs: f64 },
    /// The DDS service is unreachable for `window_secs`.
    DdsOutage { window_secs: f64 },
    /// Drop each Agent→Monitor report with probability `prob` (seeded) for
    /// `window_secs`.
    DropReports { prob: f64, window_secs: f64, seed: u64 },
    /// Degrade the control bus for `window_secs`: every control message
    /// (report, directive, ack) rides a lossy delayed channel instead of the
    /// job's configured one. The drill for the no-stale-directive invariant:
    /// directives delayed past a kill must be fence-rejected, never applied
    /// by the wrong incarnation.
    ControlDegrade { latency_secs: f64, loss_prob: f64, window_secs: f64, seed: u64 },
    /// Elastic `SCALE_OUT`: provision `add` fresh worker slots mid-run; each
    /// pays the scheduler pending delay plus the world rebuild before it
    /// joins the working set.
    ScaleOut { add: u32 },
    /// Elastic `SCALE_IN`: retire the worker slot for good — kill machinery
    /// (shard requeue, barrier drop) minus the replacement pod. The drill for
    /// the membership-consistent invariant, especially racing a `KillNode`
    /// of the same slot.
    ScaleIn { node: NodeRef },
}

/// A fault scheduled at an absolute simulated time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultEvent {
    pub at_secs: f64,
    pub fault: Fault,
}

/// A named, ordered fault schedule — the unit a [`crate::ChaosDriver`] drills.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    pub name: String,
    pub events: Vec<FaultEvent>,
}

impl FaultPlan {
    pub fn new(name: impl Into<String>) -> Self {
        FaultPlan { name: name.into(), events: Vec::new() }
    }

    pub fn at(mut self, at_secs: f64, fault: Fault) -> Self {
        self.events.push(FaultEvent { at_secs, fault });
        self
    }

    /// True when any event kills a node (with or without failover) or
    /// retires one via `SCALE_IN` — such plans requeue in-flight shards, so
    /// the at-most-once audit is expected to degrade.
    pub fn has_kills(&self) -> bool {
        self.events.iter().any(|e| {
            matches!(
                e.fault,
                Fault::KillNode { .. } | Fault::KillNodeNoFailover { .. } | Fault::ScaleIn { .. }
            )
        })
    }

    /// True when any event disables failover — the job is expected to stall.
    pub fn expects_stall(&self) -> bool {
        self.events.iter().any(|e| matches!(e.fault, Fault::KillNodeNoFailover { .. }))
    }

    /// Lower the plan onto the runtime's injection hooks, sorted by fire time
    /// (ties keep plan order).
    pub fn compile(&self) -> Vec<ChaosInjection> {
        let mut out: Vec<ChaosInjection> = self
            .events
            .iter()
            .map(|e| ChaosInjection {
                at_secs: e.at_secs,
                fault: match e.fault.clone() {
                    Fault::KillNode { node } => match node {
                        NodeRef::Worker(w) => InjectedFault::KillWorker { w },
                        NodeRef::Server(s) => InjectedFault::KillServer { s },
                    },
                    Fault::KillNodeNoFailover { node } => InjectedFault::KillWorkerNoFailover {
                        w: node.expect_worker("KillNodeNoFailover"),
                    },
                    Fault::RestartDelay { node, extra_secs } => InjectedFault::RestartDelay {
                        w: node.expect_worker("RestartDelay"),
                        extra_secs,
                    },
                    Fault::NetworkDegrade { node, factor, window_secs } => {
                        InjectedFault::NetworkDegrade {
                            w: node.expect_worker("NetworkDegrade"),
                            factor,
                            window_secs,
                        }
                    }
                    Fault::DdsOutage { window_secs } => InjectedFault::DdsOutage { window_secs },
                    Fault::DropReports { prob, window_secs, seed } => {
                        InjectedFault::DropReports { prob, window_secs, seed }
                    }
                    Fault::ControlDegrade { latency_secs, loss_prob, window_secs, seed } => {
                        InjectedFault::ControlDegrade { latency_secs, loss_prob, window_secs, seed }
                    }
                    Fault::ScaleOut { add } => InjectedFault::ScaleOut { add },
                    Fault::ScaleIn { node } => {
                        InjectedFault::ScaleIn { w: node.expect_worker("ScaleIn") }
                    }
                },
            })
            .collect();
        out.sort_by(|a, b| a.at_secs.partial_cmp(&b.at_secs).expect("finite times"));
        out
    }
}

/// Bounds for the seeded random-plan generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlanBounds {
    pub n_workers: u32,
    /// Faults land in `[0.05, 0.75] × horizon` so they hit a running job.
    pub horizon_secs: f64,
    pub max_events: usize,
}

impl FaultPlan {
    /// Generate a random — but fully seeded, hence reproducible — plan for
    /// fuzz drills. Only recoverable faults are drawn (no `NoFailover`
    /// kills): a random plan must leave the job completable so the fuzz
    /// harness can assert integrity on completion.
    pub fn random(seed: u64, bounds: &PlanBounds) -> Self {
        assert!(bounds.n_workers > 0 && bounds.max_events > 0);
        let mut rng = StdRng::seed_from_u64(seed);
        let n_events = rng.gen_range(1..=bounds.max_events);
        let mut plan = FaultPlan::new(format!("random-{seed}"));
        for i in 0..n_events {
            let at_secs = bounds.horizon_secs * rng.gen_range(0.05..0.75);
            let w = rng.gen_range(0..bounds.n_workers);
            let fault = match rng.gen_range(0u32..100) {
                0..=39 => Fault::KillNode { node: NodeRef::Worker(w) },
                40..=49 => Fault::RestartDelay {
                    node: NodeRef::Worker(w),
                    extra_secs: rng.gen_range(5.0..60.0),
                },
                50..=64 => Fault::NetworkDegrade {
                    node: NodeRef::Worker(w),
                    factor: rng.gen_range(2.0..10.0),
                    window_secs: rng.gen_range(10.0..60.0),
                },
                65..=79 => Fault::DdsOutage { window_secs: rng.gen_range(5.0..30.0) },
                _ => Fault::DropReports {
                    prob: rng.gen_range(0.1..0.9),
                    window_secs: rng.gen_range(10.0..60.0),
                    seed: seed.wrapping_mul(31).wrapping_add(i as u64),
                },
            };
            plan = plan.at(at_secs, fault);
        }
        plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compile_sorts_by_time_and_maps_kinds() {
        let plan = FaultPlan::new("p")
            .at(30.0, Fault::DdsOutage { window_secs: 10.0 })
            .at(10.0, Fault::KillNode { node: NodeRef::Worker(2) });
        let inj = plan.compile();
        assert_eq!(inj.len(), 2);
        assert_eq!(inj[0].at_secs, 10.0);
        assert_eq!(inj[0].fault, InjectedFault::KillWorker { w: 2 });
        assert_eq!(inj[1].fault, InjectedFault::DdsOutage { window_secs: 10.0 });
    }

    #[test]
    #[should_panic(expected = "targets a server")]
    fn no_failover_kill_of_server_is_rejected_at_compile() {
        FaultPlan::new("bad")
            .at(1.0, Fault::KillNodeNoFailover { node: NodeRef::Server(0) })
            .compile();
    }

    #[test]
    fn random_plans_are_reproducible_and_in_bounds() {
        let bounds = PlanBounds { n_workers: 4, horizon_secs: 100.0, max_events: 5 };
        let a = FaultPlan::random(7, &bounds);
        let b = FaultPlan::random(7, &bounds);
        assert_eq!(a, b, "same seed must yield the identical plan");
        assert_ne!(a, FaultPlan::random(8, &bounds), "different seed, different plan");
        assert!(!a.events.is_empty() && a.events.len() <= 5);
        for e in &a.events {
            assert!(e.at_secs >= 5.0 && e.at_secs <= 75.0);
        }
        assert!(!a.expects_stall(), "random plans must stay completable");
    }

    #[test]
    fn scale_faults_compile_and_classify() {
        let plan = FaultPlan::new("elastic")
            .at(10.0, Fault::ScaleOut { add: 2 })
            .at(40.0, Fault::ScaleIn { node: NodeRef::Worker(1) });
        let inj = plan.compile();
        assert_eq!(inj[0].fault, InjectedFault::ScaleOut { add: 2 });
        assert_eq!(inj[1].fault, InjectedFault::ScaleIn { w: 1 });
        // A scale-in requeues the retiree's in-flight shards like a kill, so
        // it waives the at-most-once audit; a pure scale-out does not.
        assert!(plan.has_kills() && !plan.expects_stall());
        assert!(!FaultPlan::new("grow").at(5.0, Fault::ScaleOut { add: 1 }).has_kills());
    }

    #[test]
    fn kill_classification_helpers() {
        let kill = FaultPlan::new("k").at(1.0, Fault::KillNode { node: NodeRef::Worker(0) });
        let stall =
            FaultPlan::new("s").at(1.0, Fault::KillNodeNoFailover { node: NodeRef::Worker(0) });
        let soft = FaultPlan::new("o").at(1.0, Fault::DdsOutage { window_secs: 5.0 });
        assert!(kill.has_kills() && !kill.expects_stall());
        assert!(stall.has_kills() && stall.expects_stall());
        assert!(!soft.has_kills() && !soft.expects_stall());
    }
}
