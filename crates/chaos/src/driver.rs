//! The chaos-drill driver: runs a (fault-plan × mitigation-policy) matrix,
//! pairing every drill with a fault-free run of the same seed and policy, and
//! emits one [`DrillReport`] per cell with the full invariant verdict.

use crate::invariants::{self, InvariantOutcome};
use crate::plan::FaultPlan;
use antdt_core::{Arch, AttrBlame, Consistency, InjectionRecord, Job, JobConfig, MitigationChoice};
use antdt_sim::SimDuration;
use antdt_telemetry::FlightDump;
use serde::Serialize;

/// Everything one drill produced. Deliberately `PartialEq` (and built only
/// from deterministic simulation outputs) so bit-for-bit reproducibility can
/// be asserted as `run_one(..) == run_one(..)` on the same seed.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct DrillReport {
    pub plan: String,
    /// Debug rendering of the [`MitigationChoice`] under drill.
    pub policy: String,
    pub faults_injected: usize,
    /// Per-fault timeline: fire time, restart, first post-restart commit.
    pub injections: Vec<InjectionRecord>,
    pub invariants: Vec<InvariantOutcome>,
    pub jct_clean_secs: f64,
    pub jct_drill_secs: f64,
    /// JCT overhead of the faults relative to the clean run
    /// (`drill/clean - 1`); negative overhead is possible but suspicious.
    pub overhead_frac: f64,
    pub samples_done: u64,
    pub stalled: bool,
    pub timed_out: bool,
    /// All invariants passed.
    pub passed: bool,
    /// The drill run's flight-recorder dump — the last events before the end
    /// of the run. Present only when the drill stalled or an invariant failed
    /// (the cases where a post-mortem is wanted).
    pub flight_dump: Option<FlightDump>,
    /// The drill run's blame ranking (descending score), from the attribution
    /// engine — who made this drill slow, with the faults in play.
    pub blame: Vec<AttrBlame>,
}

impl DrillReport {
    /// The invariant outcome with the given checker name, if it ran.
    pub fn invariant(&self, name: &str) -> Option<&InvariantOutcome> {
        self.invariants.iter().find(|o| o.name == name)
    }
}

/// The whole matrix.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct MatrixReport {
    pub drills: Vec<DrillReport>,
}

impl MatrixReport {
    pub fn all_passed(&self) -> bool {
        self.drills.iter().all(|d| d.passed)
    }

    /// Plain-text table for examples and the bench harness.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<22} {:<18} {:>6} {:>11} {:>11} {:>9} {:>14}  {}\n",
            "plan",
            "policy",
            "faults",
            "clean JCT",
            "drill JCT",
            "overhead",
            "top blame",
            "verdict"
        ));
        for d in &self.drills {
            let verdict = if d.passed {
                "PASS".to_string()
            } else {
                let failed: Vec<&str> =
                    d.invariants.iter().filter(|o| !o.passed).map(|o| o.name.as_str()).collect();
                format!("FAIL [{}]", failed.join(", "))
            };
            let top = d
                .blame
                .first()
                .map(|b| format!("n{} {:.1}s", b.node, b.score_us as f64 / 1e6))
                .unwrap_or_else(|| "-".to_string());
            out.push_str(&format!(
                "{:<22} {:<18} {:>6} {:>10.1}s {:>10.1}s {:>8.1}% {:>14}  {}\n",
                d.plan,
                d.policy,
                d.faults_injected,
                d.jct_clean_secs,
                d.jct_drill_secs,
                d.overhead_frac * 100.0,
                top,
                verdict
            ));
        }
        out
    }
}

/// Runs chaos drills: each drill executes the base job twice — once clean,
/// once with the plan's faults injected — and audits the drill run against
/// the invariant suite.
pub struct ChaosDriver {
    base: JobConfig,
    plans: Vec<FaultPlan>,
    policies: Vec<MitigationChoice>,
    liveness_timeout: SimDuration,
    auc_tolerance: f64,
}

impl ChaosDriver {
    /// `base` should carry everything but mitigation/injections; the driver
    /// overrides those per matrix cell.
    pub fn new(base: JobConfig) -> Self {
        ChaosDriver {
            base,
            plans: Vec::new(),
            policies: vec![MitigationChoice::AntDtNd],
            // Generous default: an order of magnitude above the scheduler
            // model's worst restart (pending_busy tops out at 1500 s).
            liveness_timeout: SimDuration::from_secs(3600),
            auc_tolerance: 0.02,
        }
    }

    pub fn with_plan(mut self, plan: FaultPlan) -> Self {
        self.plans.push(plan);
        self
    }

    pub fn with_policies(mut self, policies: Vec<MitigationChoice>) -> Self {
        assert!(!policies.is_empty());
        self.policies = policies;
        self
    }

    pub fn with_liveness_timeout(mut self, d: SimDuration) -> Self {
        self.liveness_timeout = d;
        self
    }

    pub fn with_auc_tolerance(mut self, tol: f64) -> Self {
        self.auc_tolerance = tol;
        self
    }

    /// Drill a single (plan, policy) cell.
    pub fn run_one(&self, plan: &FaultPlan, policy: &MitigationChoice) -> DrillReport {
        let clean_cfg = self.base.clone().with_mitigation(policy.clone());
        let clean = Job::run(clean_cfg);

        // Drills run with telemetry and attribution on so a failure leaves a
        // flight-recorder trail and a blame ranking; neither changes the
        // simulated schedule.
        let drill_cfg = self
            .base
            .clone()
            .with_mitigation(policy.clone())
            .with_injections(plan.compile())
            .with_liveness_timeout(self.liveness_timeout)
            .with_telemetry()
            .with_attribution();
        let drill = Job::run(drill_cfg);

        let synchronous =
            !matches!(self.base.arch, Arch::ParameterServer { consistency: Consistency::Asp });
        let invariants = invariants::check_all(
            &drill,
            &clean,
            plan.has_kills(),
            plan.expects_stall(),
            synchronous,
            self.auc_tolerance,
        );
        let jct_clean_secs = clean.jct.as_secs_f64();
        let jct_drill_secs = drill.jct.as_secs_f64();
        let overhead_frac =
            if jct_clean_secs > 0.0 { jct_drill_secs / jct_clean_secs - 1.0 } else { 0.0 };
        let passed = invariants.iter().all(|o| o.passed);
        let flight_dump = if drill.stalled || !passed {
            drill.telemetry.as_ref().map(|t| t.flight.clone())
        } else {
            None
        };
        let blame = drill.attr.as_ref().map(|a| a.blame.clone()).unwrap_or_default();
        DrillReport {
            plan: plan.name.clone(),
            policy: format!("{policy:?}"),
            faults_injected: drill.injections.len(),
            injections: drill.injections.clone(),
            passed,
            invariants,
            jct_clean_secs,
            jct_drill_secs,
            overhead_frac,
            samples_done: drill.samples_done,
            stalled: drill.stalled,
            timed_out: drill.timed_out,
            flight_dump,
            blame,
        }
    }

    /// Drill the full plan × policy matrix, fanning the cells out on the
    /// [`antdt_par`] experiment pool. Every cell is an independent
    /// deterministic simulation, so the report is bit-for-bit identical to
    /// [`ChaosDriver::run_serial`] — the parity tests assert it.
    pub fn run(&self) -> MatrixReport {
        let cells: Vec<(usize, usize)> = (0..self.plans.len())
            .flat_map(|i| (0..self.policies.len()).map(move |j| (i, j)))
            .collect();
        let drills =
            antdt_par::par_map(cells, |(i, j)| self.run_one(&self.plans[i], &self.policies[j]));
        MatrixReport { drills }
    }

    /// [`ChaosDriver::run`] without the pool: the serial reference used by the
    /// byte-parity assertions.
    pub fn run_serial(&self) -> MatrixReport {
        let mut drills = Vec::new();
        for plan in &self.plans {
            for policy in &self.policies {
                drills.push(self.run_one(plan, policy));
            }
        }
        MatrixReport { drills }
    }
}
