//! Post-drill invariant checkers: given the [`JobReport`] of a chaos drill
//! (and optionally the fault-free run of the same seed), decide whether the
//! framework's correctness story survived the injected faults.
//!
//! Each checker returns an [`InvariantOutcome`] rather than panicking so a
//! drill matrix can record *all* verdicts and render them side by side; tests
//! then assert on `passed`.

use antdt_core::JobReport;
use serde::Serialize;
use std::collections::BTreeMap;

/// The verdict of one invariant checker on one drill.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct InvariantOutcome {
    /// Stable checker name (e.g. `"at-least-once"`).
    pub name: String,
    pub passed: bool,
    /// One line of evidence: the numbers behind the verdict.
    pub detail: String,
}

impl InvariantOutcome {
    fn new(name: &str, passed: bool, detail: String) -> Self {
        InvariantOutcome { name: name.to_string(), passed, detail }
    }
}

/// At-least-once shard audit: every sample reached DONE in every epoch and
/// the DONE count matches the expectation exactly — nothing was silently
/// lost to the injected faults.
pub fn at_least_once(report: &JobReport) -> InvariantOutcome {
    match &report.audit {
        Some(a) => InvariantOutcome::new(
            "at-least-once",
            a.at_least_once && a.done_shards == a.expected_done_shards,
            format!(
                "done={}/{} outstanding={} requeued={}",
                a.done_shards, a.expected_done_shards, a.outstanding_shards, a.requeued_shards
            ),
        ),
        None => InvariantOutcome::new(
            "at-least-once",
            false,
            "no integrity audit in report (not a DDS run)".into(),
        ),
    }
}

/// At-most-once audit. Only meaningful when *no* node died during the run:
/// kill-failover deliberately requeues in-flight shards. Kills come from two
/// sources — the fault plan (`expect_kills`) and the mitigation policy
/// itself (AntDT's `KILL_RESTART` on a persistent straggler, visible in
/// `report.kills`) — and either one waives the checker with a note.
pub fn at_most_once(report: &JobReport, expect_kills: bool) -> InvariantOutcome {
    if expect_kills || !report.kills.is_empty() {
        return InvariantOutcome::new(
            "at-most-once",
            true,
            format!(
                "waived: {} node kill(s) during the run, failover requeues are expected",
                report.kills.len()
            ),
        );
    }
    match &report.audit {
        Some(a) => InvariantOutcome::new(
            "at-most-once",
            a.at_most_once,
            format!("duplicate_samples_upper_bound={}", a.duplicate_samples_upper_bound),
        ),
        None => InvariantOutcome::new(
            "at-most-once",
            false,
            "no integrity audit in report (not a DDS run)".into(),
        ),
    }
}

/// Barrier liveness. A recoverable drill must *finish* — neither hit the
/// simulation's safety cap nor trip the no-progress watchdog. When the plan
/// intentionally wedges the job (`expect_stall`), the invariant inverts: the
/// watchdog MUST have fired, because the failure mode we are drilling for is
/// a silent hang.
pub fn liveness(report: &JobReport, expect_stall: bool) -> InvariantOutcome {
    if expect_stall {
        InvariantOutcome::new(
            "liveness",
            report.stalled,
            format!(
                "watchdog fired={} (drill expects a detected stall, not a hang)",
                report.stalled
            ),
        )
    } else {
        InvariantOutcome::new(
            "liveness",
            !report.stalled && !report.timed_out,
            format!("stalled={} timed_out={}", report.stalled, report.timed_out),
        )
    }
}

/// Global-action convergence: for every broadcast Controller action, all
/// workers that applied it while *continuously alive since delivery* did so
/// at the same global iteration. A worker that applies a speed-up/slow-down
/// at a different iteration than its peers has diverged from the
/// synchronized plan.
///
/// Workers that restarted between delivery and application are excluded: a
/// rejoining pod applies its buffered inbox at restart time, mid-round by
/// construction, and catching up late is the designed behaviour — the
/// invariant is about the survivors staying in lock-step.
///
/// Applications are grouped by `(delivered_at, action)` — the broadcast
/// identity — and each group must agree on `iter`. Skipped (vacuous pass)
/// when the drill produced no action log.
pub fn action_convergence(report: &JobReport) -> InvariantOutcome {
    if report.action_log.is_empty() {
        return InvariantOutcome::new(
            "action-convergence",
            true,
            "no global actions were applied during the drill".into(),
        );
    }
    let restarted_between = |worker: u32, from: u64, to: u64| {
        report.restarts.iter().any(|(at, node)| {
            node.idx == worker && node.role == antdt_monitor::Role::Worker && {
                let t = at.0;
                t >= from && t <= to
            }
        })
    };
    let mut groups: BTreeMap<(u64, String), Vec<(u32, u64)>> = BTreeMap::new();
    let mut excluded = 0usize;
    for app in &report.action_log {
        if restarted_between(app.worker, app.delivered_at.0, app.applied_at.0) {
            excluded += 1;
            continue;
        }
        groups
            .entry((app.delivered_at.0, app.action.clone()))
            .or_default()
            .push((app.worker, app.iter));
    }
    let mut divergent = 0usize;
    let mut example = String::new();
    for ((_, action), members) in &groups {
        let iters: Vec<u64> = members.iter().map(|&(_, it)| it).collect();
        if iters.iter().any(|&it| it != iters[0]) {
            divergent += 1;
            if example.is_empty() {
                example = format!(" e.g. {action:?} applied at iters {iters:?}");
            }
        }
    }
    InvariantOutcome::new(
        "action-convergence",
        divergent == 0,
        format!(
            "{} broadcast(s), {} application(s) ({excluded} rejoin-laggard(s) excluded), \
             {divergent} divergent{example}",
            groups.len(),
            report.action_log.len()
        ),
    )
}

/// No stale directive: no directive fenced to a dead incarnation was ever
/// applied. For every directive in the bus audit, either its fence matched
/// the incarnation that applied it, or it ended rejected / deduped / wiped /
/// expired / still pending — a directive decided before a kill must never
/// take effect on the replacement pod. `Fired` kill signals are excluded:
/// that path is fenced downstream by the kill event's generation guard.
/// Vacuous pass when the run carried no directives.
pub fn no_stale_directive(report: &JobReport) -> InvariantOutcome {
    use antdt_core::DirectiveFate;
    let mut applied = 0usize;
    let mut rejected = 0usize;
    let mut violations = 0usize;
    let mut example = String::new();
    for d in &report.directives {
        match d.fate {
            DirectiveFate::Applied { gen, .. } => {
                applied += 1;
                if gen != d.fence_gen {
                    violations += 1;
                    if example.is_empty() {
                        example = format!(
                            " e.g. seq={} {} fence_gen={} applied by gen={}",
                            d.seq, d.target, d.fence_gen, gen
                        );
                    }
                }
            }
            DirectiveFate::RejectedStale { .. } => rejected += 1,
            DirectiveFate::Pending
            | DirectiveFate::Deduped { .. }
            | DirectiveFate::Wiped { .. }
            | DirectiveFate::Expired { .. }
            | DirectiveFate::Fired { .. } => {}
        }
    }
    InvariantOutcome::new(
        "no-stale-directive",
        violations == 0,
        format!(
            "{} directive(s), {applied} applied, {rejected} fence-rejected, \
             {violations} stale application(s){example}",
            report.directives.len()
        ),
    )
}

/// Membership consistency: the elastic bookkeeping survived the drill.
/// Three checks on the report's membership section —
///
/// 1. **No double-remove**: every slot carries at most one `Departed` record
///    (the generation fence must collapse a SCALE_IN racing a KILL_RESTART
///    of the same node into exactly one removal).
/// 2. **No orphaned work**: no shard was still DOING under a departed
///    worker's ownership when the job ended — departure requeued its leases.
/// 3. **No zombie slots**: a departed slot never re-joins (slots are
///    append-only; retirement is final).
///
/// Vacuous pass when the run never changed membership (the section is absent
/// exactly then), so the checker is safe on every drill in a matrix.
pub fn membership_consistent(report: &JobReport) -> InvariantOutcome {
    let Some(m) = &report.membership else {
        return InvariantOutcome::new(
            "membership-consistent",
            true,
            "membership never changed during the drill".into(),
        );
    };
    use antdt_core::MembershipEventKind;
    let mut double_removes = 0usize;
    let mut zombies = 0usize;
    for &node in &m.departed {
        let departs =
            m.events.iter().filter(|e| e.node == node && e.kind == MembershipEventKind::Departed);
        if departs.count() > 1 {
            double_removes += 1;
        }
        let depart_at = m
            .events
            .iter()
            .find(|e| e.node == node && e.kind == MembershipEventKind::Departed)
            .map_or(f64::MAX, |e| e.at_secs);
        if m.events.iter().any(|e| {
            e.node == node && e.kind == MembershipEventKind::Joined && e.at_secs > depart_at
        }) {
            zombies += 1;
        }
    }
    let orphaned: Vec<u32> =
        m.doing_owners_at_end.iter().copied().filter(|w| m.departed.contains(w)).collect();
    InvariantOutcome::new(
        "membership-consistent",
        double_removes == 0 && zombies == 0 && orphaned.is_empty(),
        format!(
            "joins={} departs={} double_removes={double_removes} zombies={zombies} \
             orphaned_doing_owners={orphaned:?}",
            m.joins, m.departs
        ),
    )
}

/// AUC parity: the model trained under faults must match the fault-free run
/// of the same seed within `tolerance`. Vacuous pass when either run did not
/// train a real model (synthetic execution mode).
pub fn auc_parity(drill: &JobReport, clean: &JobReport, tolerance: f64) -> InvariantOutcome {
    match (drill.auc, clean.auc) {
        (Some(d), Some(c)) => InvariantOutcome::new(
            "auc-parity",
            (d - c).abs() <= tolerance,
            format!("drill_auc={d:.4} clean_auc={c:.4} tol={tolerance}"),
        ),
        _ => InvariantOutcome::new(
            "auc-parity",
            true,
            "waived: no real-math AUC in one or both runs".into(),
        ),
    }
}

/// Checkpoint-replay recovery: when a drill ran with the `antdt-ckpt`
/// subsystem armed and lost nodes, recovery must have gone through the
/// snapshot path — a restore was recorded — and the replay must have healed
/// the data plane (at-least-once holds) without costing model quality (AUC
/// parity against the clean twin, waived for simulated-math runs). Waived
/// with a note when the subsystem was not armed, so the checker is safe to
/// run on every drill in a matrix.
pub fn replay_recovery(
    drill: &JobReport,
    clean: &JobReport,
    auc_tolerance: f64,
) -> InvariantOutcome {
    let Some(ckpt) = &drill.ckpt else {
        return InvariantOutcome::new(
            "ckpt-replay",
            true,
            "waived: checkpoint subsystem not enabled for this drill".into(),
        );
    };
    let restored = drill.kills.is_empty() || !ckpt.restores.is_empty();
    let integrity = at_least_once(drill);
    let parity = auc_parity(drill, clean, auc_tolerance);
    InvariantOutcome::new(
        "ckpt-replay",
        restored && integrity.passed && parity.passed,
        format!(
            "kills={} snapshots={} restores={} replayed_samples={} | {} | {}",
            drill.kills.len(),
            ckpt.snapshots.len(),
            ckpt.restores.len(),
            drill.replayed_samples,
            integrity.detail,
            parity.detail
        ),
    )
}

/// Run the whole checker suite for one drill. `expect_kills` / `expect_stall`
/// come from the plan shape (see `FaultPlan::has_kills` / `expects_stall`);
/// `synchronous` is whether the job trains with a global barrier (BSP/SSP or
/// AllReduce) — action convergence across workers is only defined there, an
/// ASP worker applies actions at its own private iteration counter.
pub fn check_all(
    drill: &JobReport,
    clean: &JobReport,
    expect_kills: bool,
    expect_stall: bool,
    synchronous: bool,
    auc_tolerance: f64,
) -> Vec<InvariantOutcome> {
    let convergence = if synchronous {
        action_convergence(drill)
    } else {
        InvariantOutcome::new(
            "action-convergence",
            true,
            "waived: asynchronous training has no shared iteration counter".into(),
        )
    };
    if expect_stall {
        // A wedged job cannot satisfy data-completeness invariants; the only
        // question is whether the watchdog turned the hang into a loud fail.
        return vec![
            liveness(drill, true),
            convergence,
            no_stale_directive(drill),
            membership_consistent(drill),
        ];
    }
    vec![
        at_least_once(drill),
        at_most_once(drill, expect_kills),
        liveness(drill, false),
        convergence,
        no_stale_directive(drill),
        membership_consistent(drill),
        auc_parity(drill, clean, auc_tolerance),
        replay_recovery(drill, clean, auc_tolerance),
    ]
}
