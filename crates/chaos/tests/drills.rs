//! Acceptance drills for the chaos subsystem: the scenarios the subsystem
//! exists to prove out, run end to end through [`ChaosDriver`].

use antdt_chaos::{ChaosDriver, Fault, FaultPlan, NodeRef, PlanBounds};
use antdt_core::{JobConfig, MitigationChoice};
use antdt_sim::SimDuration;
use antdt_workloads::cluster::{cluster_a_scaled, cluster_b};
use antdt_workloads::{ModelProfile, Scenario};
use proptest::prelude::*;

/// Small, fast PS/BSP job: 4 workers, 2 servers, ~122 iterations of ~0.56 s.
fn base(scenario: Scenario) -> JobConfig {
    JobConfig::ps_bsp(cluster_a_scaled(4, 2), scenario)
        .with_model(ModelProfile::xdeepfm())
        .with_global_batch(4096)
        .with_samples(500_000)
        .with_batches_per_shard(10)
        .with_fast_cadence(SimDuration::from_secs(60))
}

fn driver(scenario: Scenario) -> ChaosDriver {
    ChaosDriver::new(base(scenario)).with_liveness_timeout(SimDuration::from_secs(1800))
}

/// Acceptance: a drill that kills a worker mid-iteration under AntDT-ND
/// completes and passes the at-least-once audit with
/// `done_shards == expected_done_shards`.
#[test]
fn worker_kill_under_antdt_nd_completes_with_integrity() {
    let plan =
        FaultPlan::new("kill-w1-mid-run").at(30.0, Fault::KillNode { node: NodeRef::Worker(1) });
    let report =
        driver(Scenario::WorkerMix { intensity: 0.5 }).run_one(&plan, &MitigationChoice::AntDtNd);

    assert!(!report.stalled && !report.timed_out, "{report:?}");
    assert!(report.passed, "invariants failed: {:?}", report.invariants);
    let alo = report.invariant("at-least-once").expect("checker ran");
    assert!(alo.passed, "{alo:?}");
    // The kill produced a full recovery timeline.
    assert_eq!(report.faults_injected, 1);
    let rec = &report.injections[0];
    assert!(rec.restarted_at.is_some(), "replacement pod never came up");
    assert!(rec.recovered_at > rec.restarted_at, "no post-restart commit");
    // Faults cost wall-clock: the drill is slower than its clean twin.
    assert!(report.overhead_frac > 0.0, "overhead {}", report.overhead_frac);
}

/// Acceptance: the same seed produces bit-for-bit identical drill reports —
/// faults are first-class deterministic events, not wall-clock hooks.
#[test]
fn same_seed_drills_are_bit_for_bit_identical() {
    let plan = FaultPlan::new("mixed")
        .at(25.0, Fault::KillNode { node: NodeRef::Worker(2) })
        .at(
            40.0,
            Fault::NetworkDegrade { node: NodeRef::Worker(0), factor: 4.0, window_secs: 20.0 },
        )
        .at(50.0, Fault::DropReports { prob: 0.5, window_secs: 30.0, seed: 99 });
    let d = driver(Scenario::WorkerMix { intensity: 0.5 });
    let a = d.run_one(&plan, &MitigationChoice::AntDtNd);
    let b = d.run_one(&plan, &MitigationChoice::AntDtNd);
    assert_eq!(a, b, "same (plan, seed) must reproduce the identical DrillReport");
}

/// Acceptance: a barrier-stall drill (kill with failover disabled) is caught
/// by the liveness watchdog and reported as a failed liveness invariant —
/// the drill returns instead of hanging, and `stalled` is the loud signal.
#[test]
fn barrier_stall_is_detected_not_hung() {
    let plan =
        FaultPlan::new("wedge-w2").at(20.0, Fault::KillNodeNoFailover { node: NodeRef::Worker(2) });
    let d =
        ChaosDriver::new(base(Scenario::None)).with_liveness_timeout(SimDuration::from_secs(120));
    let report = d.run_one(&plan, &MitigationChoice::AntDtNd);

    assert!(report.stalled, "watchdog must fire on a wedged barrier");
    assert!(!report.timed_out, "stall is detected by the watchdog, not the safety cap");
    // For a stall plan the liveness invariant asserts the watchdog DID fire.
    assert!(report.invariant("liveness").unwrap().passed);
    assert!(report.samples_done < 500_000, "the wedged job cannot have finished");
}

/// The runtime kernel routes chaos through the same seam for every strategy:
/// a rank kill during a Local-SGD job (H local steps per ring sync) drills
/// through the identical driver path as PS. Rings drop the dead rank
/// permanently (no scheduler restart), so the survivors must absorb its
/// requeued shards and every invariant must still hold.
#[test]
fn rank_kill_under_local_sgd_completes_with_integrity() {
    let base = JobConfig::local_sgd(cluster_b(), Scenario::None, 4)
        .with_model(ModelProfile::resnet101())
        .with_global_batch(768)
        .with_samples(115_200)
        .with_batches_per_shard(2)
        .with_fast_cadence(SimDuration::from_secs(60));
    let plan = FaultPlan::new("kill-rank1-localsgd")
        .at(45.0, Fault::KillNode { node: NodeRef::Worker(1) });
    let report = ChaosDriver::new(base)
        .with_liveness_timeout(SimDuration::from_secs(3600))
        .run_one(&plan, &MitigationChoice::None);

    assert!(!report.stalled && !report.timed_out, "{report:?}");
    assert!(report.passed, "invariants failed: {:?}", report.invariants);
    let alo = report.invariant("at-least-once").expect("checker ran");
    assert!(alo.passed, "{alo:?}");
    assert_eq!(report.faults_injected, 1);
    // Losing a rank costs wall-clock: three survivors train the full dataset.
    assert!(report.overhead_frac > 0.0, "overhead {}", report.overhead_frac);
}

/// The drill matrix runs every (plan × policy) cell and renders a table.
#[test]
fn matrix_covers_plans_times_policies() {
    let matrix = driver(Scenario::WorkerMix { intensity: 0.5 })
        .with_plan(FaultPlan::new("kill").at(30.0, Fault::KillNode { node: NodeRef::Worker(1) }))
        .with_plan(FaultPlan::new("outage").at(15.0, Fault::DdsOutage { window_secs: 20.0 }))
        .with_policies(vec![MitigationChoice::AntDtNd, MitigationChoice::None])
        .run();
    assert_eq!(matrix.drills.len(), 4);
    assert!(matrix.all_passed(), "{}", matrix.render());
    let table = matrix.render();
    assert!(table.contains("kill") && table.contains("outage") && table.contains("PASS"));
}

/// Fault plans and drill reports are serializable (drills are storable and
/// diffable as artifacts).
#[test]
fn plans_and_reports_serialize() {
    let plan =
        FaultPlan::random(42, &PlanBounds { n_workers: 4, horizon_secs: 60.0, max_events: 4 });
    assert!(serde_json::to_string(&plan).is_ok());
    let report = driver(Scenario::None).run_one(&plan, &MitigationChoice::AntDtNd);
    assert!(serde_json::to_string(&report).is_ok());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    // Fuzz drills: any randomly generated (recoverable) plan must leave the
    // job complete with a clean at-least-once audit and no stall.
    #[test]
    fn random_recoverable_plans_preserve_integrity(seed in 0u64..1_000) {
        let bounds = PlanBounds { n_workers: 4, horizon_secs: 60.0, max_events: 3 };
        let plan = FaultPlan::random(seed, &bounds);
        let report = driver(Scenario::WorkerMix { intensity: 0.5 })
            .run_one(&plan, &MitigationChoice::AntDtNd);
        prop_assert!(!report.stalled && !report.timed_out, "{:?}", report);
        prop_assert!(report.passed, "plan {:?} broke invariants: {:?}", plan, report.invariants);
        prop_assert!(report.samples_done >= 500_000);
    }
}
