//! Solver micro-benchmarks backing the paper's §VII-E claim: the `ADJUST_BS`
//! optimization is milliseconds-level even at 1000 workers, and Eq. 4 stays
//! cheap for realistic device-class counts.

use antdt_controller::solve::AffineCost;
use antdt_controller::{
    grad_accum_allocation, lb_bsp_allocation, minmax_batch_allocation, Eq4Class, Eq4Config,
};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_eq3(c: &mut Criterion) {
    let mut g = c.benchmark_group("eq3_minmax_batch_allocation");
    for &n in &[10usize, 100, 1000] {
        let v: Vec<f64> = (0..n).map(|i| 500.0 + (i % 11) as f64 * 250.0).collect();
        g.bench_with_input(BenchmarkId::from_parameter(n), &v, |b, v| {
            b.iter(|| minmax_batch_allocation(black_box(30_720), black_box(v), 1))
        });
    }
    g.finish();
}

fn bench_lb_bsp(c: &mut Criterion) {
    let mut g = c.benchmark_group("lb_bsp_allocation");
    for &n in &[10usize, 100, 1000] {
        let v: Vec<f64> = (0..n).map(|i| 500.0 + (i % 11) as f64 * 250.0).collect();
        let caps = vec![u64::MAX / 2; n];
        g.bench_with_input(BenchmarkId::from_parameter(n), &(v, caps), |b, (v, caps)| {
            b.iter(|| lb_bsp_allocation(black_box(30_720), black_box(v), black_box(caps)))
        });
    }
    g.finish();
}

fn bench_eq4(c: &mut Criterion) {
    let mut g = c.benchmark_group("eq4_grad_accum_allocation");
    for &k in &[2usize, 4, 6] {
        let classes: Vec<Eq4Class> = (0..k)
            .map(|i| Eq4Class {
                count: 4,
                cost: AffineCost { c0: 0.12, per_sample: 1e-3 * (1.0 + i as f64) },
                b_min: 16,
                b_max: 112,
            })
            .collect();
        g.bench_with_input(BenchmarkId::from_parameter(k), &classes, |b, classes| {
            b.iter(|| {
                grad_accum_allocation(
                    Eq4Config { global_batch: 1_536, c_min: 1, c_max: 5 },
                    black_box(classes),
                )
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_eq3, bench_lb_bsp, bench_eq4);
criterion_main!(benches);
