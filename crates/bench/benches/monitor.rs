//! Monitor hot paths: per-iteration BPT reports and the periodic snapshot the
//! Controller consumes — both must scale to hundreds of nodes (paper Q4).

use antdt_monitor::{MetricStore, MonitorConfig, NodeId};
use antdt_sim::SimTime;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn warmed_store(nodes: u32, samples_per_node: u32) -> MetricStore {
    let mut m = MetricStore::new(MonitorConfig::default());
    for w in 0..nodes {
        m.register(NodeId::worker(w));
    }
    for i in 0..samples_per_node {
        for w in 0..nodes {
            m.report_bpt(
                NodeId::worker(w),
                SimTime::from_secs_f64(i as f64 * 2.0),
                2.0 + (w % 5) as f64 * 0.1,
                4096,
            );
        }
    }
    m
}

fn bench_report(c: &mut Criterion) {
    c.bench_function("monitor_report_bpt", |b| {
        let mut m = warmed_store(100, 10);
        let mut t = 100.0;
        b.iter(|| {
            t += 2.0;
            m.report_bpt(
                black_box(NodeId::worker(42)),
                SimTime::from_secs_f64(t),
                black_box(2.05),
                4096,
            )
        })
    });
}

fn bench_snapshot(c: &mut Criterion) {
    let mut g = c.benchmark_group("monitor_snapshot");
    for &nodes in &[20u32, 100, 500] {
        let m = warmed_store(nodes, 150);
        g.bench_with_input(BenchmarkId::from_parameter(nodes), &m, |b, m| {
            b.iter(|| black_box(m.snapshot(SimTime::from_secs_f64(300.0))))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_report, bench_snapshot);
criterion_main!(benches);
