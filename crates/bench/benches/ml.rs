//! ML substrate throughput: factorization-machine gradients (the real-math
//! mode's hot loop) and exact AUC evaluation.

use antdt_ml::{auc, FactorizationMachine, Model};
use antdt_workloads::{ctr, CtrConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_fm_grad(c: &mut Criterion) {
    let data = ctr::generate(&CtrConfig::default().with_samples(8_192));
    let fm = FactorizationMachine::new(data.n_features, 8, 0.05);
    let mut g = c.benchmark_group("fm_grad_batch");
    for &batch in &[256usize, 1024, 4096] {
        let idx: Vec<u64> = (0..batch as u64).collect();
        g.bench_with_input(BenchmarkId::from_parameter(batch), &idx, |b, idx| {
            let mut grad = vec![0.0f32; fm.n_params()];
            b.iter(|| {
                grad.iter_mut().for_each(|x| *x = 0.0);
                black_box(fm.grad_batch(&data, black_box(idx), &mut grad))
            })
        });
    }
    g.finish();
}

fn bench_auc(c: &mut Criterion) {
    let data = ctr::generate(&CtrConfig::default().with_samples(50_000));
    let fm = FactorizationMachine::new(data.n_features, 8, 0.05);
    let scores = fm.scores(&data);
    let labels: Vec<f32> = data.examples.iter().map(|e| e.label).collect();
    c.bench_function("auc_50k", |b| {
        b.iter(|| black_box(auc(black_box(&scores), black_box(&labels))))
    });
}

criterion_group!(benches, bench_fm_grad, bench_auc);
criterion_main!(benches);
