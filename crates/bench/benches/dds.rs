//! DDS service throughput: the shard queue must stay far off any training
//! critical path (bytes-level signals, µs-level operations).

use antdt_dds::{DdsConfig, DdsService};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_fetch_done_cycle(c: &mut Criterion) {
    let mut g = c.benchmark_group("dds_fetch_done_cycle");
    for &k in &[100u64, 1_000, 10_000] {
        g.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            b.iter(|| {
                let svc = DdsService::new(DdsConfig::new(k * 100, 10).with_batches_per_shard(10));
                let mut n = 0u64;
                while let Some(lease) = svc.fetch(black_box(0)) {
                    svc.report_done(0, lease).unwrap();
                    n += 1;
                }
                assert_eq!(n, k);
                n
            })
        });
    }
    g.finish();
}

fn bench_fail_worker(c: &mut Criterion) {
    c.bench_function("dds_fail_worker_100_doing", |b| {
        b.iter_batched(
            || {
                let svc = DdsService::new(DdsConfig::new(100_000, 10).with_batches_per_shard(10));
                for _ in 0..100 {
                    svc.fetch(7).unwrap();
                }
                svc
            },
            |svc| {
                let requeued = svc.fail_worker(black_box(7));
                assert_eq!(requeued.len(), 100);
                requeued
            },
            criterion::BatchSize::SmallInput,
        )
    });
}

fn bench_audit(c: &mut Criterion) {
    let svc = DdsService::new(DdsConfig::new(1_000_000, 10).with_batches_per_shard(10));
    while let Some(lease) = svc.fetch(0) {
        svc.report_done(0, lease).unwrap();
    }
    c.bench_function("dds_audit_10k_shards", |b| b.iter(|| black_box(svc.audit())));
}

criterion_group!(benches, bench_fetch_done_cycle, bench_fail_worker, bench_audit);
criterion_main!(benches);
