//! Simulation kernel throughput (events/sec) and whole-job wall time — the
//! practical limits on how big an experiment the harness can regenerate.

use antdt_core::{Job, JobConfig, MitigationChoice};
use antdt_sim::{Engine, SimDuration};
use antdt_workloads::{cluster, ModelProfile, Scenario};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_event_throughput(c: &mut Criterion) {
    c.bench_function("engine_100k_events", |b| {
        b.iter(|| {
            let mut eng: Engine<u32> = Engine::new();
            for i in 0..1_000u32 {
                eng.schedule(antdt_sim::SimTime::from_secs_f64(i as f64), i);
            }
            let mut n = 0u64;
            eng.run(|eng, ev| {
                n += 1;
                if n < 100_000 {
                    eng.schedule_after(SimDuration::from_millis(ev as u64 % 97 + 1), ev);
                }
            });
            black_box(n)
        })
    });
}

fn bench_full_job(c: &mut Criterion) {
    let mut g = c.benchmark_group("full_job");
    g.sample_size(10);
    g.bench_function("bsp_antdt_nd_8x4_1m_samples", |b| {
        b.iter(|| {
            let cfg = JobConfig::ps_bsp(
                cluster::cluster_a_scaled(8, 4),
                Scenario::WorkerMix { intensity: 0.8 },
            )
            .with_model(ModelProfile::xdeepfm())
            .with_global_batch(8_192)
            .with_samples(1_000_000)
            .with_batches_per_shard(10)
            .with_mitigation(MitigationChoice::AntDtNd);
            black_box(Job::run(cfg))
        })
    });
    g.bench_function("asp_dds_8x4_1m_samples", |b| {
        b.iter(|| {
            let cfg = JobConfig::ps_asp(
                cluster::cluster_a_scaled(8, 4),
                Scenario::WorkerMix { intensity: 0.8 },
            )
            .with_model(ModelProfile::xdeepfm())
            .with_global_batch(8_192)
            .with_samples(1_000_000)
            .with_batches_per_shard(10);
            black_box(Job::run(cfg))
        })
    });
    g.finish();
}

criterion_group!(benches, bench_event_throughput, bench_full_job);
criterion_main!(benches);
