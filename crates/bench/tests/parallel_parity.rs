//! Byte-parity of the parallel experiment fabric: the pooled fan-outs must
//! produce exactly the strings and reports the serial paths produce.

use antdt_bench::util::freeze_wall;

/// Print a readable first-divergence context before failing.
fn assert_same(serial: &str, parallel: &str) {
    if serial == parallel {
        return;
    }
    let (mut line, mut s_ctx, mut p_ctx) = (0usize, String::new(), String::new());
    for (i, (s, p)) in serial.lines().zip(parallel.lines()).enumerate() {
        if s != p {
            line = i + 1;
            s_ctx = s.to_string();
            p_ctx = p.to_string();
            break;
        }
    }
    panic!(
        "serial and parallel outputs diverged at line {line}:\n  serial:   {s_ctx}\n  parallel: {p_ctx}\n\
         (serial {} lines, parallel {} lines)",
        serial.lines().count(),
        parallel.lines().count(),
    );
}

/// A cheap subset of `all`: every fan-out site that finishes in seconds.
/// Always runs, so CI catches fabric regressions without the full suite.
#[test]
fn cheap_subset_is_byte_identical() {
    let ids: Vec<String> =
        ["solver", "kernel", "controlbus"].iter().map(|s| s.to_string()).collect();
    let parallel = freeze_wall(|| antdt_bench::run_all(Some(&ids)));
    let serial = antdt_par::with_serial(|| freeze_wall(|| antdt_bench::run_all(Some(&ids))));
    assert_same(&serial, &parallel);
}

/// The pooled chaos plan x policy matrix must equal the nested serial loops,
/// report for report ([`antdt_chaos::DrillReport`] is `PartialEq` for exactly
/// this).
#[test]
fn chaos_matrix_pooled_equals_serial() {
    use antdt_chaos::{ChaosDriver, Fault, FaultPlan, NodeRef};
    use antdt_core::{JobConfig, MitigationChoice};
    use antdt_workloads::Scenario;
    let base = JobConfig::ps_bsp(
        antdt_workloads::cluster::cluster_a_scaled(4, 2),
        Scenario::WorkerMix { intensity: 0.5 },
    )
    .with_global_batch(4_096)
    .with_samples(100_000)
    .with_batches_per_shard(10)
    .with_fast_cadence(antdt_sim::SimDuration::from_secs(60));
    let driver = ChaosDriver::new(base)
        .with_plan(FaultPlan::new("kill-w1").at(30.0, Fault::KillNode { node: NodeRef::Worker(1) }))
        .with_plan(FaultPlan::new("dds-outage").at(15.0, Fault::DdsOutage { window_secs: 30.0 }))
        .with_policies(vec![MitigationChoice::AntDtNd, MitigationChoice::None]);
    assert_eq!(driver.run(), driver.run_serial());
}

/// The full `experiments all` suite, serial vs pooled. Minutes of wall time:
/// run explicitly with `cargo test --release -- --ignored`.
#[test]
#[ignore = "runs the full experiment suite twice; minutes of wall time"]
fn full_all_is_byte_identical() {
    let parallel = freeze_wall(|| antdt_bench::run_all(None));
    let serial = antdt_par::with_serial(|| freeze_wall(|| antdt_bench::run_all(None)));
    assert_same(&serial, &parallel);
}
