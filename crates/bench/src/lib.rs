//! # antdt-bench — the experiment harness
//!
//! One function per table/figure of the paper's evaluation (§VII). Each
//! regenerates the corresponding artifact from scratch on the simulator and
//! returns a printable report; the `experiments` binary dispatches on ids
//! (`fig1`…`fig19`, `tab3`, `integrity`, `solver`, `ablate`, `chaos`,
//! `telemetry`, `kernel`, `controlbus`, `ckpt`, `attr`, `elastic`, `whatif`,
//! `all`).
//!
//! Absolute numbers come from a simulated substrate, so they are not expected
//! to match the paper's testbed; the *shapes* — who wins, by what factor,
//! where crossovers fall — are the reproduction targets (see EXPERIMENTS.md).

pub mod alloc;
pub mod exps;
pub mod util;

/// The experiment registry: `(id, description, runner)`.
pub type Runner = fn() -> String;

pub fn registry() -> Vec<(&'static str, &'static str, Runner)> {
    vec![
        ("fig1", "BPT time series among workers/servers (motivation)", exps::fig1 as Runner),
        ("fig2", "JCT of BSP vs ASP in dedicated vs non-dedicated clusters", exps::fig2),
        ("fig3", "Data consumption & throughput under even-partition ASP", exps::fig3),
        ("fig7", "BPT vs batch size on CPU (linear)", exps::fig7),
        ("fig8", "BPT vs batch size on GPU (saturation)", exps::fig8),
        ("fig9", "Gantt: DDP vs LB-BSP vs AntDT-DD", exps::fig9),
        ("fig10", "JCT in BSP training under worker/server stragglers", exps::fig10),
        ("fig11", "JCT in ASP training under worker/server stragglers", exps::fig11),
        ("fig12", "Batch-size adjustment trajectories (AntDT-ND)", exps::fig12),
        ("fig13", "Worker BPT trajectories (AntDT-ND)", exps::fig13),
        ("fig14", "Slow-server BPT + global throughput around KILL_RESTART", exps::fig14),
        ("fig15", "JCT of DDP/LB-BSP/AntDT-DD on mixed V100+P100", exps::fig15),
        ("fig16", "Shards consumed vs worker throughput (ASP-DDS)", exps::fig16),
        ("fig17", "Failover delay: DDS-based vs checkpoint-based", exps::fig17),
        ("fig18", "AntDT overhead at small/medium/large scale", exps::fig18),
        ("fig19", "Production fleet A/B test", exps::fig19),
        ("tab3", "Table III: JCT under varying straggler intensity", exps::tab3),
        ("integrity", "Data integrity: DONE shards + AUC under failovers", exps::integrity),
        ("solver", "Optimization solver runtime at scale", exps::solver),
        ("ablate", "Ablations: M, lambda, windows, C_max, backup count", exps::ablate),
        ("chaos", "Chaos-drill matrix: fault plans x policies + invariant audit", exps::chaos),
        (
            "telemetry",
            "Telemetry overhead: quickstart workload, instrumentation off vs on",
            exps::telemetry,
        ),
        (
            "kernel",
            "Runtime-kernel refactor parity (fixed seeds) + event throughput + local-sgd",
            exps::kernel,
        ),
        (
            "controlbus",
            "Control bus: Ideal-channel parity vs pre-bus + JCT vs control latency",
            exps::controlbus,
        ),
        (
            "ckpt",
            "Checkpointing: JCT vs checkpoint-interval sweep under kills, replay vs closed-form",
            exps::ckpt,
        ),
        (
            "attr",
            "Attribution: engine overhead off vs on, blame ranking, counterfactual validation",
            exps::attr,
        ),
        (
            "elastic",
            "Elastic membership: static-N vs SCALE_OUT mid-run vs oracle, ring movement audit",
            exps::elastic,
        ),
        (
            "whatif",
            "What-if service: 64-query batch throughput vs naive full reruns + parity",
            exps::whatif,
        ),
        (
            "perf",
            "Perf harness: engine throughput, allocation counts, parallel speedup + parity",
            exps::perf,
        ),
    ]
}

/// Ids excluded from `all`: `perf` itself runs `all` twice (serial and
/// parallel) to measure the speedup, so including it would recurse.
const EXCLUDED_FROM_ALL: [&str; 1] = ["perf"];

/// Run everything (minus the ids excluded from `all`), fanned out on the
/// [`antdt_par`] pool. Per-id outputs are stitched back in registry order, so
/// the result is byte-identical to a serial pass. `only` restricts the set to
/// the listed ids (the `--only` flag of the `experiments` binary); registry
/// order still governs.
pub fn run_all(only: Option<&[String]>) -> String {
    let runners: Vec<Runner> = registry()
        .into_iter()
        .filter(|(eid, _, _)| !EXCLUDED_FROM_ALL.contains(eid))
        .filter(|(eid, _, _)| only.is_none_or(|ids| ids.iter().any(|i| i == eid)))
        .map(|(_, _, f)| f)
        .collect();
    let outs = antdt_par::par_map(runners, |f| f());
    let mut out = String::new();
    for o in outs {
        out.push_str(&o);
        out.push('\n');
    }
    out
}

/// Run one experiment by id (`all` runs everything via [`run_all`]).
pub fn run(id: &str) -> Option<String> {
    if id == "all" {
        return Some(run_all(None));
    }
    registry().into_iter().find(|(eid, _, _)| *eid == id).map(|(_, _, f)| f())
}
