//! A feature-gated counting global allocator for the `perf` benchmark.
//!
//! Wall-clock timings vary run to run, but the number of heap allocations a
//! fixed-seed simulation performs is fully deterministic — so allocation
//! counts are the regression-proof metric for the hot-path churn fixes. With
//! `--features count-alloc` every binary in this crate routes allocation
//! through a counter wrapped around the system allocator; without the feature
//! there is no global-allocator override and [`allocation_count`] returns
//! `None`.

#[cfg(feature = "count-alloc")]
mod counting {
    use std::alloc::{GlobalAlloc, Layout, System};
    use std::sync::atomic::{AtomicU64, Ordering};

    pub(super) static ALLOCS: AtomicU64 = AtomicU64::new(0);

    struct CountingAlloc;

    // Reallocations count too: a Vec that doubles ten times costs ten trips
    // to the allocator even though only one `Vec` was ever "allocated".
    unsafe impl GlobalAlloc for CountingAlloc {
        unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
            System.alloc(layout)
        }
        unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
            System.dealloc(ptr, layout)
        }
        unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
            System.realloc(ptr, layout, new_size)
        }
        unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
            System.alloc_zeroed(layout)
        }
    }

    #[global_allocator]
    static COUNTER: CountingAlloc = CountingAlloc;
}

/// Heap allocations performed by this process so far, or `None` when the
/// crate was built without `--features count-alloc`.
pub fn allocation_count() -> Option<u64> {
    #[cfg(feature = "count-alloc")]
    {
        Some(counting::ALLOCS.load(std::sync::atomic::Ordering::Relaxed))
    }
    #[cfg(not(feature = "count-alloc"))]
    {
        None
    }
}

/// Allocations performed while running `f` on the current thread (other
/// threads' allocations are attributed too — measure serial sections).
pub fn count_allocations<R>(f: impl FnOnce() -> R) -> (Option<u64>, R) {
    let before = allocation_count();
    let r = f();
    let after = allocation_count();
    (before.zip(after).map(|(b, a)| a - b), r)
}
