//! Regenerate the paper's tables and figures.
//!
//! ```text
//! experiments <id>...         # fig1 fig2 fig3 fig7 fig8 fig9 fig10 fig11
//!                             # fig12 fig13 fig14 fig15 fig16 fig17 fig18
//!                             # fig19 tab3 integrity solver ablate chaos
//!                             # telemetry
//! experiments all             # everything, in paper order
//! experiments list            # show the registry
//! experiments --out DIR <id>  # additionally write each report to DIR/<id>.txt
//! experiments --jobs N <id>   # run on N pool threads (1 = fully serial)
//! experiments --only a,b all  # restrict `all` to the listed ids
//! ```

use std::io::Write;

/// Pop `--flag VALUE` out of `args`, returning the value.
fn take_flag(args: &mut Vec<String>, flag: &str) -> Option<String> {
    let pos = args.iter().position(|a| a == flag)?;
    if pos + 1 >= args.len() {
        eprintln!("{flag} requires an argument");
        std::process::exit(2);
    }
    let v = args.remove(pos + 1);
    args.remove(pos);
    Some(v)
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let mut out_dir: Option<std::path::PathBuf> = None;
    if let Some(dir) = take_flag(&mut args, "--out") {
        let dir = std::path::PathBuf::from(dir);
        std::fs::create_dir_all(&dir).expect("create --out directory");
        out_dir = Some(dir);
    }
    if let Some(n) = take_flag(&mut args, "--jobs") {
        let n: usize = n.parse().unwrap_or_else(|_| {
            eprintln!("--jobs requires a positive integer, got {n:?}");
            std::process::exit(2);
        });
        antdt_par::configure_jobs(n);
    }
    let only: Option<Vec<String>> = take_flag(&mut args, "--only").map(|list| {
        list.split(',').map(|s| s.trim().to_string()).filter(|s| !s.is_empty()).collect()
    });
    if let Some(ids) = &only {
        let known: Vec<&str> = antdt_bench::registry().iter().map(|(id, _, _)| *id).collect();
        for id in ids {
            if !known.contains(&id.as_str()) {
                eprintln!("unknown experiment id in --only: {id} (try `experiments list`)");
                std::process::exit(2);
            }
        }
        // `--only a,b` with no positional ids means "run exactly those".
        if args.is_empty() {
            args = ids.clone();
        }
    }
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    if args.is_empty() || args[0] == "list" {
        let _ = writeln!(out, "available experiments:");
        for (id, desc, _) in antdt_bench::registry() {
            let _ = writeln!(out, "  {id:<10} {desc}");
        }
        let _ = writeln!(out, "  {:<10} run everything in paper order", "all");
        return;
    }
    for id in &args {
        let report = if id == "all" {
            Some(antdt_bench::run_all(only.as_deref()))
        } else {
            antdt_bench::run(id)
        };
        match report {
            Some(report) => {
                let _ = write!(out, "{report}");
                if let Some(dir) = &out_dir {
                    std::fs::write(dir.join(format!("{id}.txt")), &report)
                        .expect("write experiment artifact");
                }
            }
            None => {
                eprintln!("unknown experiment id: {id} (try `experiments list`)");
                std::process::exit(2);
            }
        }
    }
}
