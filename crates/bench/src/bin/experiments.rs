//! Regenerate the paper's tables and figures.
//!
//! ```text
//! experiments <id>...         # fig1 fig2 fig3 fig7 fig8 fig9 fig10 fig11
//!                             # fig12 fig13 fig14 fig15 fig16 fig17 fig18
//!                             # fig19 tab3 integrity solver ablate chaos
//!                             # telemetry
//! experiments all             # everything, in paper order
//! experiments list            # show the registry
//! experiments --out DIR <id>  # additionally write each report to DIR/<id>.txt
//! ```

use std::io::Write;

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let mut out_dir: Option<std::path::PathBuf> = None;
    if let Some(pos) = args.iter().position(|a| a == "--out") {
        if pos + 1 >= args.len() {
            eprintln!("--out requires a directory argument");
            std::process::exit(2);
        }
        let dir = std::path::PathBuf::from(args.remove(pos + 1));
        args.remove(pos);
        std::fs::create_dir_all(&dir).expect("create --out directory");
        out_dir = Some(dir);
    }
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    if args.is_empty() || args[0] == "list" {
        let _ = writeln!(out, "available experiments:");
        for (id, desc, _) in antdt_bench::registry() {
            let _ = writeln!(out, "  {id:<10} {desc}");
        }
        let _ = writeln!(out, "  {:<10} run everything in paper order", "all");
        return;
    }
    for id in &args {
        match antdt_bench::run(id) {
            Some(report) => {
                let _ = write!(out, "{report}");
                if let Some(dir) = &out_dir {
                    std::fs::write(dir.join(format!("{id}.txt")), &report)
                        .expect("write experiment artifact");
                }
            }
            None => {
                eprintln!("unknown experiment id: {id} (try `experiments list`)");
                std::process::exit(2);
            }
        }
    }
}
