//! Operational experiments: data integrity under failovers, solver runtime,
//! design-choice ablations, the chaos-drill matrix and telemetry overhead.

use super::{criteo_job, WORKER_SI};
use crate::util::{header, pct, secs, table};
use antdt_controller::solve::AffineCost;
use antdt_controller::{grad_accum_allocation, minmax_batch_allocation, Eq4Class, Eq4Config};
use antdt_core::{ExecutionMode, Job, JobConfig, JobReport, MitigationChoice};
use antdt_sim::SimDuration;
use antdt_workloads::cluster::cluster_a;
use antdt_workloads::{ctr, CtrConfig, ModelProfile, Scenario};
use std::fmt::Write;

pub fn integrity() -> String {
    let mut out = header("integrity", "Data integrity under failovers (paper §VII-D2)");
    let data = ctr::generate(&CtrConfig::default().with_samples(60_000));
    let (train, holdout) = data.split_holdout(0.2);
    let n_train = train.len() as u64;
    let base = |scenario: Scenario| {
        JobConfig::ps_bsp(antdt_workloads::cluster::cluster_a_scaled(8, 4), scenario)
            .with_global_batch(2_048)
            .with_samples(n_train)
            .with_epochs(3)
            .with_batches_per_shard(4)
            .with_fast_cadence(SimDuration::from_secs(60))
            .with_execution(ExecutionMode::Real {
                dataset: train.clone(),
                holdout: holdout.clone(),
                latent_k: 8,
                lr: 0.4,
            })
    };
    // Reference: no stragglers, no failovers.
    let clean = Job::run(base(Scenario::None));
    // Failover run: persistent straggler -> AntDT-ND kill-restarts mid-training.
    let faulty = Job::run(
        base(Scenario::WorkerMix { intensity: 1.0 }).with_mitigation(MitigationChoice::AntDtNd),
    );
    let ca = clean.audit.unwrap();
    let fa = faulty.audit.unwrap();
    out.push_str(&table(&[
        vec![
            "run".into(),
            "kills".into(),
            "DONE shards".into(),
            "expected".into(),
            "requeued".into(),
            "at-least-once".into(),
            "AUC".into(),
        ],
        vec![
            "no failover".into(),
            clean.n_kills().to_string(),
            ca.done_shards.to_string(),
            ca.expected_done_shards.to_string(),
            ca.requeued_shards.to_string(),
            ca.at_least_once.to_string(),
            format!("{:.3}", clean.auc.unwrap_or(f64::NAN)),
        ],
        vec![
            "with failovers".into(),
            faulty.n_kills().to_string(),
            fa.done_shards.to_string(),
            fa.expected_done_shards.to_string(),
            fa.requeued_shards.to_string(),
            fa.at_least_once.to_string(),
            format!("{:.3}", faulty.auc.unwrap_or(f64::NAN)),
        ],
    ]));
    out.push_str("  (paper: DONE count equals K per epoch despite failovers; AUC matches the failure-free run)\n");
    out
}

pub fn solver() -> String {
    let mut out =
        header("solver", "Optimization runtime at scale (paper §VII-E: ms-level at 1000 workers)");
    let mut rows = vec![vec!["problem".into(), "size".into(), "time".into()]];
    for n in [10usize, 100, 1000] {
        let v: Vec<f64> = (0..n).map(|i| 1000.0 + (i % 7) as f64 * 300.0).collect();
        let t0 = std::time::Instant::now();
        let alloc = minmax_batch_allocation(30_720, &v, 1);
        let dt_ms = crate::util::elapsed_secs(t0) * 1e3;
        assert_eq!(alloc.iter().sum::<u64>(), 30_720);
        rows.push(vec![
            "Eq. 3 (ADJUST_BS)".into(),
            format!("{n} workers"),
            format!("{dt_ms:.3} ms"),
        ]);
    }
    let classes: Vec<Eq4Class> = (0..4)
        .map(|i| Eq4Class {
            count: 4,
            cost: AffineCost { c0: 0.15, per_sample: 1e-3 * (1.0 + i as f64) },
            b_min: 16,
            b_max: 112,
        })
        .collect();
    let t0 = std::time::Instant::now();
    let sol =
        grad_accum_allocation(Eq4Config { global_batch: 4_096, c_min: 1, c_max: 5 }, &classes);
    let dt_ms = crate::util::elapsed_secs(t0) * 1e3;
    assert!(sol.is_some());
    rows.push(vec!["Eq. 4 (AntDT-DD)".into(), "4 classes × C≤5".into(), format!("{dt_ms:.3} ms")]);
    out.push_str(&table(&rows));
    out
}

pub fn ablate() -> String {
    let mut out = header("ablate", "Ablations over the design choices DESIGN.md calls out");

    // (a) Shard granularity M: integrity/overhead trade-off (§V-C).
    out.push_str("  (a) shard granularity M (AntDT-ND, worker stragglers):\n");
    let mut rows = vec![vec![
        "M".into(),
        "JCT".into(),
        "shards/epoch".into(),
        "dup-sample bound".into(),
        "DDS overhead".into(),
    ]];
    let m_runs = antdt_par::par_map(vec![1u64, 10, 100, 500], |m| {
        let r = Job::run(
            criteo_job(Scenario::WorkerMix { intensity: WORKER_SI })
                .with_batches_per_shard(m)
                .with_samples(15_000_000)
                .with_epochs(1)
                .with_mitigation(MitigationChoice::AntDtNd),
        );
        (m, r)
    });
    for (m, r) in m_runs {
        let a = r.audit.unwrap();
        rows.push(vec![
            m.to_string(),
            secs(r.jct.as_secs_f64()),
            (a.expected_done_shards).to_string(),
            a.duplicate_samples_upper_bound.to_string(),
            format!("{:.1}s", r.overhead.dds.as_secs_f64()),
        ]);
    }
    out.push_str(&table(&rows));

    // (b) Detection threshold lambda.
    out.push_str("  (b) slowness ratio lambda (kills issued / JCT):\n");
    let mut rows = vec![vec!["lambda".into(), "JCT".into(), "kills".into()]];
    let lambda_runs = antdt_par::par_map(vec![1.1f64, 1.3, 1.5, 2.0, 3.0], |lambda| {
        let mut cfg = criteo_job(Scenario::WorkerMix { intensity: WORKER_SI })
            .with_samples(15_000_000)
            .with_epochs(1);
        cfg.mitigation = MitigationChoice::AntDtNd;
        // Run via the policy directly to vary lambda.
        let nd = antdt_controller::AntDtNd::new(antdt_controller::NdConfig {
            lambda,
            ..Default::default()
        });
        (lambda, antdt_core_run_with(cfg, Box::new(nd)))
    });
    for (lambda, r) in lambda_runs {
        rows.push(vec![format!("{lambda:.1}"), secs(r.jct.as_secs_f64()), r.n_kills().to_string()]);
    }
    out.push_str(&table(&rows));

    // (c) Gradient accumulation bound C_max (AntDT-DD objective).
    out.push_str("  (c) accumulation bound C_max (Eq. 4 round time, ResNet-101 classes):\n");
    let classes = vec![
        Eq4Class {
            count: 4,
            cost: AffineCost { c0: 0.15, per_sample: 1.733e-3 },
            b_min: 16,
            b_max: 112,
        },
        Eq4Class {
            count: 4,
            cost: AffineCost { c0: 0.15, per_sample: 5.2e-3 },
            b_min: 16,
            b_max: 96,
        },
    ];
    let mut rows = vec![vec!["C_max".into(), "round time".into(), "per-class (B, C)".into()]];
    for c_max in [1u32, 2, 3, 5] {
        match grad_accum_allocation(Eq4Config { global_batch: 1_536, c_min: 1, c_max }, &classes) {
            Some(sol) => rows.push(vec![
                c_max.to_string(),
                format!("{:.3}s", sol.objective_secs),
                format!("{:?}", sol.per_class),
            ]),
            None => rows.push(vec![c_max.to_string(), "infeasible".into(), "-".into()]),
        }
    }
    out.push_str(&table(&rows));

    // (d) Backup worker count b.
    out.push_str("  (d) backup worker count b (worker stragglers):\n");
    let mut rows = vec![vec!["b".into(), "JCT".into(), "recomputed samples".into()]];
    let b_runs = antdt_par::par_map(vec![0u32, 1, 2, 4], |b| {
        let m = if b == 0 { MitigationChoice::None } else { MitigationChoice::BackupWorkers { b } };
        let r = Job::run(
            criteo_job(Scenario::WorkerMix { intensity: WORKER_SI })
                .with_samples(15_000_000)
                .with_epochs(1)
                .with_mitigation(m),
        );
        (b, r)
    });
    for (b, r) in b_runs {
        rows.push(vec![
            b.to_string(),
            secs(r.jct.as_secs_f64()),
            r.rolled_back_samples.to_string(),
        ]);
    }
    out.push_str(&table(&rows));

    // (e) SSP staleness sweep (extension beyond the paper's BSP/ASP).
    out.push_str("  (e) SSP staleness bound (worker stragglers, DDS):\n");
    let mut rows = vec![vec!["staleness".into(), "JCT".into()]];
    let s_runs = antdt_par::par_map(vec![0u32, 2, 8], |s| {
        let r = Job::run(
            JobConfig::ps_ssp(cluster_a(), Scenario::WorkerMix { intensity: WORKER_SI }, s)
                .with_model(ModelProfile::xdeepfm())
                .with_global_batch(81_920)
                .with_samples(15_000_000)
                .with_batches_per_shard(100),
        );
        (s, r)
    });
    for (s, r) in s_runs {
        rows.push(vec![s.to_string(), secs(r.jct.as_secs_f64())]);
    }
    out.push_str(&table(&rows));
    out
}

/// Run a job with an explicitly constructed policy (used by the lambda sweep).
fn antdt_core_run_with(
    cfg: JobConfig,
    policy: Box<dyn antdt_controller::MitigationPolicy>,
) -> JobReport {
    antdt_core::ps_run_with_policy(cfg, policy)
}

/// Chaos-drill matrix (antdt-chaos): deterministic fault plans × mitigation
/// policies with the full invariant audit, plus the loud-failure path of a
/// wedged barrier caught by the liveness watchdog.
pub fn chaos() -> String {
    use antdt_chaos::{ChaosDriver, Fault, FaultPlan, NodeRef};

    let mut out = header("chaos", "Fault-injection drill matrix with invariant verdicts");
    let base = JobConfig::ps_bsp(
        antdt_workloads::cluster::cluster_a_scaled(4, 2),
        Scenario::WorkerMix { intensity: 0.5 },
    )
    .with_global_batch(4_096)
    .with_samples(500_000)
    .with_batches_per_shard(10)
    .with_fast_cadence(SimDuration::from_secs(60));

    let matrix = ChaosDriver::new(base.clone())
        .with_plan(FaultPlan::new("kill-w1").at(30.0, Fault::KillNode { node: NodeRef::Worker(1) }))
        .with_plan(FaultPlan::new("dds-outage").at(15.0, Fault::DdsOutage { window_secs: 30.0 }))
        .with_plan(FaultPlan::new("slow-link").at(
            20.0,
            Fault::NetworkDegrade { node: NodeRef::Worker(3), factor: 6.0, window_secs: 60.0 },
        ))
        .with_policies(vec![MitigationChoice::AntDtNd, MitigationChoice::None])
        .run();
    for line in matrix.render().lines() {
        out.push_str("  ");
        out.push_str(line);
        out.push('\n');
    }

    let wedge = ChaosDriver::new(base).with_liveness_timeout(SimDuration::from_secs(120)).run_one(
        &FaultPlan::new("wedge").at(20.0, Fault::KillNodeNoFailover { node: NodeRef::Worker(2) }),
        &MitigationChoice::AntDtNd,
    );
    let _ = writeln!(
        out,
        "  wedge drill (failover disabled): stalled={} detected by watchdog, liveness invariant {}",
        wedge.stalled,
        if wedge.invariant("liveness").map(|o| o.passed).unwrap_or(false) {
            "PASS"
        } else {
            "FAIL"
        }
    );
    out
}

/// Telemetry overhead on the README quickstart workload: the identical job with
/// instrumentation off vs on, best-of-N wall times. Emits
/// `target/BENCH_telemetry.json` with events/sec and the wall-time delta.
pub fn telemetry() -> String {
    let mut out =
        header("telemetry", "Telemetry overhead: quickstart workload, instrumentation off vs on");
    let base = || {
        JobConfig::ps_bsp(
            antdt_workloads::cluster::cluster_a_scaled(8, 4),
            Scenario::WorkerMix { intensity: 0.8 },
        )
        .with_model(ModelProfile::xdeepfm())
        .with_global_batch(16_384)
        .with_samples(8_000_000)
        .with_batches_per_shard(20)
        .with_mitigation(MitigationChoice::AntDtNd)
    };

    const REPS: usize = 3;
    fn best_of(reps: usize, mk: impl Fn() -> JobConfig) -> (f64, JobReport) {
        let mut best = f64::INFINITY;
        let mut last = None;
        for _ in 0..reps {
            let t0 = std::time::Instant::now();
            let r = Job::run(mk());
            best = best.min(crate::util::elapsed_secs(t0));
            last = Some(r);
        }
        (best, last.expect("reps >= 1"))
    }
    let (wall_off, plain) = best_of(REPS, base);
    let (wall_on, instrumented) = best_of(REPS, || base().with_telemetry());
    assert_eq!(plain.jct, instrumented.jct, "telemetry must not change the simulated schedule");

    let tr = instrumented.telemetry.as_ref().expect("instrumented run carries telemetry");
    let trace_events = antdt_telemetry::ChromeTrace::from_json(&tr.chrome_trace)
        .expect("valid Chrome trace JSON")
        .trace_events
        .len() as u64;
    let flight_recorded = tr.flight.dropped + tr.flight.events.len() as u64;
    let total_events = trace_events + flight_recorded;
    let events_per_sec = total_events as f64 / wall_on.max(1e-9);
    let delta = (wall_on - wall_off) / wall_off.max(1e-9);

    out.push_str(&table(&[
        vec!["run".into(), "wall".into(), "JCT (sim)".into(), "telemetry events".into()],
        vec![
            "telemetry off".into(),
            format!("{:.3}s", wall_off),
            secs(plain.jct.as_secs_f64()),
            "0".into(),
        ],
        vec![
            "telemetry on".into(),
            format!("{:.3}s", wall_on),
            secs(instrumented.jct.as_secs_f64()),
            total_events.to_string(),
        ],
    ]));
    let _ = writeln!(
        out,
        "  events recorded: {trace_events} trace + {flight_recorded} flight = {total_events} \
         ({events_per_sec:.0} events/s of wall time)"
    );
    let _ = writeln!(out, "  wall-time delta: {} (best of {REPS})", pct(delta));

    // Machine-readable artifact (hand-rendered: the offline serde_json is a stub).
    let json = format!(
        concat!(
            "{{\"experiment\":\"telemetry\",\"workload\":\"quickstart\",\"reps\":{},",
            "\"wall_secs_off\":{:.6},\"wall_secs_on\":{:.6},\"wall_delta_frac\":{:.6},",
            "\"trace_events\":{},\"flight_events_recorded\":{},\"events_per_sec\":{:.1},",
            "\"jct_secs\":{:.3},\"identical_jct\":{}}}\n"
        ),
        REPS,
        wall_off,
        wall_on,
        delta,
        trace_events,
        flight_recorded,
        events_per_sec,
        instrumented.jct.as_secs_f64(),
        plain.jct == instrumented.jct,
    );
    crate::util::write_artifact(&mut out, "BENCH_telemetry.json", &json);
    out
}
