//! Q2–Q4 — AntDT-DD on heterogeneous GPUs, framework properties, the fleet
//! A/B test and Table III (paper Figs. 15–19).

use super::{criteo_job, criteo_job_asp, dd_classes_for, imagenet_job, WORKER_SI};
use crate::util::{header, pct, secs, table};
use antdt_core::failover::fig17_curve;
use antdt_core::fleet::{self, FleetConfig, FleetMethod};
use antdt_core::{Job, JobConfig, MitigationChoice};
use antdt_sim::{series::mean_std, SimDuration};
use antdt_workloads::cluster::{cluster_c, ClusterSize};
use antdt_workloads::{ModelProfile, Scenario};
use std::fmt::Write;

pub fn fig15() -> String {
    let mut out = header("fig15", "JCT on mixed V100+P100 GPUs (paper Fig. 15)");
    for (model, membound) in
        [(ModelProfile::resnet101(), false), (ModelProfile::mobilenets(), true)]
    {
        let name = model.name;
        // The three methods are independent runs on the same cluster: fan
        // them out on the experiment pool.
        let configs = vec![
            imagenet_job(model.clone(), membound),
            imagenet_job(model.clone(), membound).with_mitigation(MitigationChoice::LbBsp),
            imagenet_job(model.clone(), membound)
                .with_mitigation(MitigationChoice::AntDtDd)
                .with_dd_classes(dd_classes_for(&model)),
        ];
        let mut runs = antdt_par::par_map(configs, Job::run).into_iter();
        let (ddp, lb, dd) = (
            runs.next().expect("ddp run"),
            runs.next().expect("lb run"),
            runs.next().expect("dd run"),
        );
        let _ = writeln!(out, "  {name}:");
        out.push_str(&table(&[
            vec!["method".into(), "JCT".into(), "speedup vs DDP".into()],
            vec!["DDP".into(), secs(ddp.jct.as_secs_f64()), "1.00x".into()],
            vec![
                "LB-BSP".into(),
                secs(lb.jct.as_secs_f64()),
                format!("{:.2}x", ddp.jct.as_secs_f64() / lb.jct.as_secs_f64()),
            ],
            vec![
                "AntDT-DD".into(),
                secs(dd.jct.as_secs_f64()),
                format!("{:.2}x", ddp.jct.as_secs_f64() / dd.jct.as_secs_f64()),
            ],
        ]));
        if let Some((_, antdt_controller::Action::AdjustBs { batch_sizes, grad_accum })) =
            dd.actions.first()
        {
            let _ = writeln!(
                out,
                "  AntDT-DD allocation: B = {:?}, C = {:?}",
                &batch_sizes[..],
                grad_accum.as_ref().map(|g| &g[..]).unwrap_or(&[])
            );
        }
    }
    out
}

pub fn fig16() -> String {
    let mut out = header("fig16", "Shards consumed vs worker throughput, ASP-DDS (paper Fig. 16)");
    let r = Job::run(criteo_job_asp(Scenario::WorkerMix { intensity: WORKER_SI }));
    let c = r.consumption.expect("dds consumption");
    let mut rows =
        vec![vec!["worker".into(), "shards done".into(), "samples done".into(), "mean BPT".into()]];
    for (w, cons) in &c.per_worker {
        rows.push(vec![
            format!("w{w}"),
            cons.shards_done.to_string(),
            cons.samples_done.to_string(),
            format!("{:.2}s", r.worker_bpt[*w as usize].mean().unwrap_or(0.0)),
        ]);
    }
    out.push_str(&table(&rows));
    out.push_str(
        "  (shard counts track throughput: slow workers naturally request fewer shards)\n",
    );
    out
}

pub fn fig17() -> String {
    let mut out =
        header("fig17", "Worker failover delay: DDS-based vs checkpoint-based (paper Fig. 17)");
    let intervals: Vec<SimDuration> =
        [5u64, 10, 15, 20, 30, 40, 50, 60].iter().map(|&m| SimDuration::from_minutes(m)).collect();
    // Parameters from the Criteo job: one shard = 4096×100 samples at ~2000
    // samples/s per worker; checkpoint write ~45 s; 2 h job.
    let pts = fig17_curve(
        &intervals,
        SimDuration::from_secs(7_200),
        45.0,
        60.0,
        0.8,
        45.0,
        4096 * 100,
        2_000.0,
    );
    let mut rows =
        vec![vec!["ckpt interval".into(), "checkpoint-based".into(), "DDS-based".into()]];
    for p in &pts {
        rows.push(vec![
            format!("{:.0} min", p.ckpt_interval.as_secs_f64() / 60.0),
            secs(p.checkpoint_based.as_secs_f64()),
            secs(p.dds_based.as_secs_f64()),
        ]);
    }
    out.push_str(&table(&rows));
    out.push_str("  (paper: DDS ~2 min flat; checkpoint-based ~17 min at 5-min saves, U-shaped)\n");

    // Live cross-check: the same kill under both recovery schemes in the full
    // simulator (one persistent worker straggler, AntDT-ND kills it once).
    let live = |mode: antdt_core::FailoverMode| {
        Job::run(
            JobConfig::ps_bsp(
                antdt_workloads::cluster::cluster_a_scaled(8, 4),
                Scenario::WorkerPersistent { intensity: 0.8 },
            )
            .with_model(ModelProfile::xdeepfm())
            .with_global_batch(8_192)
            .with_samples(8_000_000)
            .with_batches_per_shard(10)
            .with_fast_cadence(SimDuration::from_secs(60))
            .with_mitigation(MitigationChoice::AntDtNd)
            .with_failover_mode(mode),
        )
    };
    let dds_live = live(antdt_core::FailoverMode::DdsBased);
    let ckpt_live = live(antdt_core::FailoverMode::CheckpointBased);
    let _ = writeln!(
        out,
        "  live simulation (same kill, both schemes): DDS-based JCT {}, checkpoint-based JCT {} (+{:.0}s stall)",
        secs(dds_live.jct.as_secs_f64()),
        secs(ckpt_live.jct.as_secs_f64()),
        ckpt_live.jct.as_secs_f64() - dds_live.jct.as_secs_f64()
    );
    out
}

pub fn fig18() -> String {
    let mut out = header("fig18", "AntDT overhead at three Cluster-C scales (paper Fig. 18)");
    let mut rows = vec![vec![
        "scale".into(),
        "workers/servers".into(),
        "JCT".into(),
        "overhead".into(),
        "DDS share".into(),
        "sync share".into(),
    ]];
    for (label, size) in [
        ("small", ClusterSize::Small),
        ("medium", ClusterSize::Medium),
        ("large", ClusterSize::Large),
    ] {
        let (nw, ns) = size.workers_servers();
        let mut cluster = cluster_c(size);
        antdt_workloads::straggler::apply(
            &mut cluster,
            Scenario::NonDedicated { mean_slowdown: 2.0 },
        );
        let cfg = JobConfig::ps_bsp(cluster, Scenario::None)
            .with_model(ModelProfile::transformer_inhouse())
            .with_global_batch(30_720)
            .with_samples(12_288_000) // 400 iterations
            .with_batches_per_shard(100)
            .with_mitigation(MitigationChoice::AntDtNd);
        let r = Job::run(cfg);
        let (dds, sync) = r.overhead.split();
        rows.push(vec![
            label.into(),
            format!("{nw}/{ns}"),
            secs(r.jct.as_secs_f64()),
            format!("{:.2}%", r.overhead.fraction_of(r.jct) * 100.0),
            format!("{:.0}%", dds * 100.0),
            format!("{:.0}%", sync * 100.0),
        ]);
    }
    out.push_str(&table(&rows));
    out.push_str("  (paper: total overhead < 0.5% of JCT at every scale; ~55% DDS / ~45% sync)\n");
    out
}

pub fn fig19() -> String {
    let mut out = header("fig19", "Production fleet A/B test (paper Fig. 19 / §VII-F)");
    let cfg = FleetConfig::default();
    let arms = fleet::ab_test(&cfg);
    let find = |m: FleetMethod| arms.iter().find(|a| a.method == m).unwrap().mean_jct_secs;
    let bsp = find(FleetMethod::Bsp);
    let asp = find(FleetMethod::Asp);
    let mut rows = vec![vec!["method".into(), "mean JCT".into(), "vs family base".into()]];
    for a in &arms {
        let base = match a.method {
            FleetMethod::Bsp
            | FleetMethod::BackupWorkers
            | FleetMethod::LbBsp
            | FleetMethod::AntDtNd => bsp,
            _ => asp,
        };
        rows.push(vec![
            a.method.label().into(),
            secs(a.mean_jct_secs),
            pct((base - a.mean_jct_secs) / base),
        ]);
    }
    out.push_str(&table(&rows));

    // The homepage-recommendation anecdote: one severely straggling large job
    // (paper: 27.8 h -> 5.4 h, ~5x).
    let big = |m: MitigationChoice| {
        // A severely contended production job: transient noise everywhere,
        // several persistent worker stragglers of growing severity, plus a
        // contended server — the situation the paper's 27.8h -> 5.4h anecdote
        // describes.
        let mut cluster = antdt_workloads::cluster::cluster_a_scaled(46, 10);
        antdt_workloads::straggler::apply(
            &mut cluster,
            Scenario::WorkerTransient { intensity: 1.0 },
        );
        for (rank, delay) in [(45usize, 16.0f64), (30, 12.0), (15, 8.0)] {
            cluster.workers[rank].profile.phases.push(
                antdt_sim::profile::ContentionPhase::Persistent {
                    delay_secs: delay,
                    from: antdt_sim::SimTime::ZERO,
                    to: antdt_sim::SimTime::MAX,
                },
            );
        }
        antdt_workloads::straggler::apply(
            &mut cluster,
            Scenario::ServerPersistent { intensity: 0.8 },
        );
        Job::run(
            JobConfig::ps_bsp(cluster, Scenario::None)
                .with_model(ModelProfile::xdeepfm())
                .with_global_batch(81_920)
                .with_samples(60_000_000)
                .with_batches_per_shard(100)
                .with_mitigation(m),
        )
    };
    let native = big(MitigationChoice::None);
    let nd = big(MitigationChoice::AntDtNd);
    let _ = writeln!(
        out,
        "  homepage-ranking-style job (severe stragglers): BSP {} -> AntDT-ND {} ({:.1}x)",
        secs(native.jct.as_secs_f64()),
        secs(nd.jct.as_secs_f64()),
        native.jct.as_secs_f64() / nd.jct.as_secs_f64()
    );
    out
}

pub fn tab3() -> String {
    let mut out =
        header("tab3", "JCT under AntDT-ND and BSP, varying straggler intensity (paper Table III)");
    let seeds = [1u64, 2, 3];
    // Each seed is an independent deterministic run; fan them out on the
    // experiment pool. `par_map` preserves input order, so the mean/std see
    // the same sequence as a serial sweep.
    let cell = |scenario: Scenario, m: MitigationChoice| -> (f64, f64) {
        let jcts = antdt_par::par_map(seeds.to_vec(), |s| {
            Job::run(criteo_job(scenario).with_mitigation(m.clone()).with_seed(s)).jct.as_secs_f64()
        });
        mean_std(&jcts)
    };
    for side in ["worker", "server"] {
        let _ = writeln!(out, "  {side} stragglers:");
        let mut rows = vec![vec!["SI".into(), "BSP".into(), "AntDT-ND".into(), "speedup".into()]];
        for si in [0.1f64, 0.3, 0.5, 0.8] {
            let scenario = if side == "worker" {
                Scenario::WorkerMix { intensity: si }
            } else {
                Scenario::ServerPersistent { intensity: si }
            };
            let (b_m, b_s) = cell(scenario, MitigationChoice::None);
            let (n_m, n_s) = cell(scenario, MitigationChoice::AntDtNd);
            rows.push(vec![
                format!("{si:.1}"),
                format!("{b_m:.0}s±{b_s:.0}s"),
                format!("{n_m:.0}s±{n_s:.0}s"),
                pct(b_m / n_m - 1.0),
            ]);
        }
        out.push_str(&table(&rows));
    }
    out
}
