//! The what-if service benchmark: throughput of a 64-query counterfactual
//! batch answered by the snapshot-cached [`WhatIfService`] vs naive
//! per-query full reruns.
//!
//! The workload is the fleet shape the service exists for — many traces ×
//! many perturbations, with repeats: 4 distinct job traces (same topology,
//! different seeds, stragglers engaging at staggered instants) × 16 queries
//! each (4 distinct perturbations × 4 repeats). The service answers it off
//! its three layers (memo store, snapshot cache seeded by the 90 s spine,
//! shared-prefix fork replay); the baseline simulates every query from
//! scratch. Both sides run **serial** (`antdt_par::with_serial`), so the
//! gated speedup is caching alone — a pooled service pass is reported as
//! informational. Every answer is checked byte-identical to its naive rerun
//! (`JobReport::golden_dump`), and the parity verdict gates CI.

use crate::util::{elapsed_secs, header, table, write_artifact};
use antdt_core::{apply_perturbation, Job, JobConfig, Perturbation};
use antdt_sim::{ContentionPhase, ControlChannel, SimDuration, SimTime};
use antdt_telemetry::MetricsRegistry;
use antdt_whatif::{AnswerSource, ServiceConfig, WhatIfQuery, WhatIfService};
use antdt_workloads::cluster::cluster_a_scaled;
use antdt_workloads::{ModelProfile, Scenario};
use std::fmt::Write;

/// One job trace: a BSP PS job whose divergence sources all engage strictly
/// after t = 0 — workers 1/2/3 contended from 300/420/540 s and periodic
/// checkpoints from 120 s — so `HealthyNode(1..=3)` and `NoCkptStalls` all
/// take the fork path at staggered instants along one shared prefix.
fn trace(seed: u64) -> JobConfig {
    let mut cfg = JobConfig::ps_bsp(cluster_a_scaled(4, 2), Scenario::None)
        .with_model(ModelProfile::xdeepfm())
        .with_global_batch(4_096)
        .with_samples(2_000_000)
        .with_batches_per_shard(10)
        .with_seed(seed)
        .with_control_channel(ControlChannel::Modeled {
            latency_secs: 0.05,
            jitter_secs: 0.02,
            loss_prob: 0.01,
            seed: 5,
        })
        .with_checkpoint_interval(SimDuration::from_secs(120));
    for (w, from) in [(1usize, 300.0), (2, 420.0), (3, 540.0)] {
        cfg.cluster.workers[w].profile.phases.push(ContentionPhase::Persistent {
            delay_secs: 4.0,
            from: SimTime::from_secs_f64(from),
            to: SimTime::MAX,
        });
    }
    cfg
}

const TRACES: usize = 4;
const REPEATS: usize = 4;

fn batch() -> Vec<WhatIfQuery> {
    let perturbations = [
        Perturbation::HealthyNode(1),
        Perturbation::HealthyNode(2),
        Perturbation::HealthyNode(3),
        Perturbation::NoCkptStalls,
    ];
    let mut queries = Vec::new();
    for seed in 0..TRACES as u64 {
        let cfg = trace(11 + seed);
        for _ in 0..REPEATS {
            for p in perturbations {
                queries.push(WhatIfQuery { cfg: cfg.clone(), perturbation: p });
            }
        }
    }
    queries
}

fn service_config() -> ServiceConfig {
    // 90 s spine: snapshots land strictly *before* the earliest divergence
    // instant (the 120 s checkpoint stall) and the 300/420/540 s contention
    // onsets, so nearest-predecessor lookup always finds one.
    ServiceConfig { spine_every: SimDuration::from_secs(90), ..ServiceConfig::default() }
}

pub fn whatif() -> String {
    let mut out =
        header("whatif", "What-if query service: 64-query batch vs naive per-query full reruns");
    let queries = batch();
    assert_eq!(queries.len(), 64, "the acceptance batch is 64 queries");

    // ---- Naive baseline: every query simulated from scratch, serially.
    let t0 = std::time::Instant::now();
    let naive: Vec<String> = antdt_par::with_serial(|| {
        queries
            .iter()
            .map(|q| Job::run(apply_perturbation(q.cfg.clone(), &q.perturbation)).golden_dump())
            .collect()
    });
    let naive_secs = elapsed_secs(t0);

    // ---- Service, cold (base runs + spine included), serial: the gated
    // number — caching alone, no parallelism.
    let reg = MetricsRegistry::new();
    let mut service = WhatIfService::new(service_config());
    service.attach_telemetry(&reg);
    let t0 = std::time::Instant::now();
    let answers = antdt_par::with_serial(|| service.answer_batch(&queries));
    let service_secs = elapsed_secs(t0);

    // ---- Parity: every answer byte-identical to its naive full rerun.
    let parity_ok =
        answers.iter().zip(&naive).filter(|(a, dump)| a.report.golden_dump() == **dump).count();
    assert_eq!(parity_ok, queries.len(), "service answers must be byte-identical to naive reruns");

    // ---- Service, cold again, pooled: informational parallel speedup.
    let mut pooled = WhatIfService::new(service_config());
    let t0 = std::time::Instant::now();
    let pooled_answers = pooled.answer_batch(&queries);
    let pooled_secs = elapsed_secs(t0);
    assert!(
        pooled_answers.iter().zip(&naive).all(|(a, dump)| a.report.golden_dump() == **dump),
        "pooled service answers must be byte-identical too"
    );

    // ---- Numbers.
    let (mut memo, mut forked, mut reruns) = (0u64, 0u64, 0u64);
    let (mut prefix_events, mut suffix_events) = (0u64, 0u64);
    for a in &answers {
        match a.source {
            AnswerSource::Memo => memo += 1,
            AnswerSource::Forked { .. } => forked += 1,
            AnswerSource::FullRerun => reruns += 1,
        }
        prefix_events += a.prefix_events;
        suffix_events += a.suffix_events;
    }
    let total_events = prefix_events + suffix_events;
    let prefix_share =
        if total_events > 0 { prefix_events as f64 / total_events as f64 } else { 0.0 };
    let stats = service.cache_stats();
    let lookups = stats.hits + stats.misses;
    let hit_rate = if lookups > 0 { stats.hits as f64 / lookups as f64 } else { 0.0 };
    let speedup = if service_secs > 0.0 { naive_secs / service_secs } else { 0.0 };
    let pooled_speedup = if pooled_secs > 0.0 { naive_secs / pooled_secs } else { 0.0 };
    let qps = if service_secs > 0.0 { queries.len() as f64 / service_secs } else { 0.0 };

    let rows = vec![
        vec!["side".into(), "wall".into(), "queries/sec".into(), "speedup".into()],
        vec![
            "naive full reruns".into(),
            format!("{naive_secs:.4}s"),
            format!(
                "{:.1}",
                if naive_secs > 0.0 { queries.len() as f64 / naive_secs } else { 0.0 }
            ),
            "1.0x".into(),
        ],
        vec![
            "service (serial)".into(),
            format!("{service_secs:.4}s"),
            format!("{qps:.1}"),
            format!("{speedup:.1}x"),
        ],
        vec![
            "service (pooled)".into(),
            format!("{pooled_secs:.4}s"),
            format!(
                "{:.1}",
                if pooled_secs > 0.0 { queries.len() as f64 / pooled_secs } else { 0.0 }
            ),
            format!("{pooled_speedup:.1}x (informational)"),
        ],
    ];
    out.push_str(&table(&rows));
    let _ = writeln!(
        out,
        "  answers: {memo} memo, {forked} forked, {reruns} full reruns; \
         prefix share {:.1}% ({prefix_events} of {total_events} events inherited)",
        prefix_share * 100.0,
    );
    let _ = writeln!(
        out,
        "  snapshot cache: {} hits / {} lookups ({:.0}% hit rate), {} insertions, \
         {} evictions, {} bytes held",
        stats.hits,
        lookups,
        hit_rate * 100.0,
        stats.insertions,
        stats.evictions,
        service.cache_bytes(),
    );
    let _ =
        writeln!(out, "  parity: {parity_ok}/{} answers byte-identical to naive", queries.len());

    // Telemetry wiring: the registry saw every query.
    assert_eq!(
        reg.counter("antdt_whatif_queries_total", &[]).get(),
        queries.len() as u64,
        "the antdt_whatif_* counter family must observe the batch"
    );

    // The acceptance gate: >= 3x from caching alone on the cold 64-query
    // batch. Wall-dependent, so only assertable with a live wall clock (the
    // perf parity harness runs this report under a frozen wall).
    if !crate::util::wall_frozen() {
        assert!(
            speedup >= 3.0,
            "service must be >= 3x naive on the 64-query batch, measured {speedup:.2}x"
        );
    }

    // Machine-readable artifact (hand-rendered: the offline serde_json is a stub).
    let json = format!(
        concat!(
            "{{\"experiment\":\"whatif\",\"queries\":{},\"traces\":{},",
            "\"naive_secs\":{:.6},\"service_secs\":{:.6},\"pooled_secs\":{:.6},",
            "\"qps\":{:.2},\"speedup\":{:.3},\"pooled_speedup\":{:.3},",
            "\"memo\":{},\"forked\":{},\"full_reruns\":{},",
            "\"prefix_events\":{},\"suffix_events\":{},\"prefix_share\":{:.4},",
            "\"cache_hits\":{},\"cache_misses\":{},\"cache_hit_rate\":{:.4},",
            "\"cache_insertions\":{},\"cache_evictions\":{},\"cache_bytes\":{},",
            "\"parity\":\"{}\",\"parity_ok\":{},\"jobs\":{}}}\n"
        ),
        queries.len(),
        TRACES,
        naive_secs,
        service_secs,
        pooled_secs,
        qps,
        speedup,
        pooled_speedup,
        memo,
        forked,
        reruns,
        prefix_events,
        suffix_events,
        prefix_share,
        stats.hits,
        stats.misses,
        hit_rate,
        stats.insertions,
        stats.evictions,
        service.cache_bytes(),
        if parity_ok == queries.len() { "MATCH" } else { "MISMATCH" },
        parity_ok,
        antdt_par::jobs(),
    );
    write_artifact(&mut out, "BENCH_whatif.json", &json);
    out
}
