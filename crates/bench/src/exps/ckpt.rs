//! The checkpoint-subsystem benchmark: JCT as a function of the checkpoint
//! interval under a fixed seeded kill plan — replay-based recovery
//! (`FailoverMode::Replay`, the `antdt-ckpt` subsystem restoring the last
//! durable snapshot and requeueing lost shards through the real drivers)
//! against the legacy closed-form delay model (`FailoverMode::CheckpointBased`,
//! which charges `factor * min(since_ckpt, interval)` without touching the
//! data plane).

use super::kernel::timed;
use crate::util::{header, secs, table};
use antdt_core::{
    ChaosInjection, CkptConfig, CkptPolicy, FailoverMode, InjectedFault, JobConfig,
    MitigationChoice, StorageTier,
};
use antdt_sim::SimDuration;
use antdt_workloads::cluster::cluster_a_scaled;
use antdt_workloads::{ModelProfile, Scenario};
use std::fmt::Write;

/// A clean mid-size PS job: no stragglers, no mitigation policy, so the only
/// faults in the sweep are the injected kills and every JCT delta is pure
/// recovery cost.
fn base() -> JobConfig {
    JobConfig::ps_bsp(cluster_a_scaled(8, 3), Scenario::None)
        .with_model(ModelProfile::xdeepfm())
        .with_global_batch(8_192)
        .with_samples(1_000_000)
        .with_batches_per_shard(10)
        .with_fast_cadence(SimDuration::from_secs(60))
        .with_seed(29)
        .with_mitigation(MitigationChoice::None)
        // Both arms pause for 2 s per capture; at the 5%-of-JCT interval the
        // default 15 s legacy save would swamp the sweep with stall cost and
        // bury the recovery-model signal this experiment is after.
        .with_ckpt_save_secs(2.0)
}

/// The seeded kill plan, placed relative to the fault-free JCT so both kills
/// land mid-job at any absolute scale: worker 1 at 30%, worker 2 at 65%.
fn kills(clean_jct_secs: f64) -> Vec<ChaosInjection> {
    vec![
        ChaosInjection {
            at_secs: clean_jct_secs * 0.30,
            fault: InjectedFault::KillWorker { w: 1 },
        },
        ChaosInjection {
            at_secs: clean_jct_secs * 0.65,
            fault: InjectedFault::KillWorker { w: 2 },
        },
    ]
}

pub fn ckpt() -> String {
    let mut out = header(
        "ckpt",
        "Checkpoint subsystem: JCT vs interval under a seeded kill plan, replay vs closed-form",
    );
    const REPS: usize = 2;

    // Probe the fault-free twin once: it anchors the kill instants, the
    // interval grid, and the "vs clean" column.
    let (_, clean) = timed(1, base);
    let clean_jct = clean.jct.as_secs_f64();
    let intervals: Vec<f64> = [0.05, 0.20, 0.60].iter().map(|f| f * clean_jct).collect();
    let _ = writeln!(
        out,
        "  clean JCT {} — kills at 30%/65% of it, intervals at 5%/20%/60% of it",
        secs(clean_jct)
    );

    // The sweep grid: {replay, closed-form} x 3 intervals, fanned out on the
    // experiment pool. Each point is an independent deterministic simulation.
    let points: Vec<(&'static str, f64)> = ["replay", "closed-form"]
        .iter()
        .flat_map(|m| intervals.iter().map(move |&i| (*m, i)))
        .collect();
    let sweep = antdt_par::par_map(points, |(mode, interval)| {
        let mk = || {
            let cfg = base()
                .with_injections(kills(clean_jct))
                .with_liveness_timeout(SimDuration::from_secs(1_800))
                .with_checkpoint_interval(SimDuration::from_secs_f64(interval));
            match mode {
                "replay" => cfg.with_failover_mode(FailoverMode::Replay).with_ckpt(CkptConfig {
                    tier: StorageTier::ObjectStore,
                    policy: CkptPolicy::Fixed { interval_secs: interval },
                    capture_stall_secs: 2.0,
                }),
                _ => cfg.with_failover_mode(FailoverMode::CheckpointBased),
            }
        };
        let (wall, r) = timed(REPS, mk);
        (mode, interval, wall, r)
    });

    let mut rows = vec![vec![
        "mode".into(),
        "interval".into(),
        "JCT (sim)".into(),
        "vs clean".into(),
        "snapshots".into(),
        "restores".into(),
        "replayed".into(),
        "rolled-back".into(),
        "wall".into(),
    ]];
    let mut json_points = String::new();
    for (mode, interval, wall, r) in &sweep {
        let jct = r.jct.as_secs_f64();
        let (snaps, restores) = r
            .ckpt
            .as_ref()
            .map(|c| (c.snapshots.len().to_string(), c.restores.len().to_string()))
            .unwrap_or_else(|| ("-".into(), "-".into()));
        rows.push(vec![
            (*mode).into(),
            secs(*interval),
            secs(jct),
            format!("{:+.1}%", (jct / clean_jct.max(1e-9) - 1.0) * 100.0),
            snaps,
            restores,
            r.replayed_samples.to_string(),
            r.rolled_back_samples.to_string(),
            format!("{:.4}s", wall),
        ]);
        let _ = write!(
            json_points,
            concat!(
                "{{\"mode\":\"{}\",\"interval_secs\":{:.3},\"jct_micros\":{},",
                "\"snapshots\":{},\"restores\":{},\"replayed_samples\":{},",
                "\"rolled_back_samples\":{}}},"
            ),
            mode,
            interval,
            r.jct.as_micros(),
            r.ckpt.as_ref().map_or(0, |c| c.snapshots.len()),
            r.ckpt.as_ref().map_or(0, |c| c.restores.len()),
            r.replayed_samples,
            r.rolled_back_samples,
        );
    }
    out.push_str(&table(&rows));
    let _ = writeln!(
        out,
        "  sweep: 8 workers / 3 servers, two injected kills; short intervals pay \
         capture stalls, long intervals pay replay (a kill before the first \
         snapshot replays from scratch)"
    );

    // Machine-readable artifact (hand-rendered: the offline serde_json is a stub).
    let json = format!(
        "{{\"experiment\":\"ckpt\",\"reps\":{},\"clean_jct_micros\":{},\"points\":[{}]}}\n",
        REPS,
        clean.jct.as_micros(),
        json_points.trim_end_matches(','),
    );
    crate::util::write_artifact(&mut out, "BENCH_ckpt.json", &json);
    out
}
