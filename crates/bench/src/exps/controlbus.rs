//! The control-bus refactor benchmark: Ideal-channel JCT/event parity
//! against the pre-bus direct-call loop, plus the cost of control-plane
//! latency — JCT as a function of the modeled Monitor→Controller→Agent
//! channel delay on a non-dedicated PS job.

use super::kernel::{fixture, timed, PRE_REFACTOR};
use crate::util::{header, secs, table};
use antdt_core::{DirectiveFate, JobConfig, MitigationChoice};
use antdt_sim::{ControlChannel, SimDuration};
use antdt_workloads::cluster::cluster_a_scaled;
use antdt_workloads::{ModelProfile, Scenario};
use std::fmt::Write;

/// A scaled-down version of the non-dedicated PS example (10 workers, 4
/// servers, heavy worker mix): enough control traffic for channel delay to
/// matter, small enough sample count to keep the sweep cheap.
fn non_dedicated(ch: ControlChannel) -> JobConfig {
    JobConfig::ps_bsp(cluster_a_scaled(10, 4), Scenario::WorkerMix { intensity: 0.8 })
        .with_model(ModelProfile::xdeepfm())
        .with_global_batch(20_480)
        .with_samples(2_000_000)
        .with_batches_per_shard(20)
        .with_fast_cadence(SimDuration::from_secs(60))
        .with_seed(17)
        .with_mitigation(MitigationChoice::AntDtNd)
        .with_control_channel(ch)
}

/// The sweep points: control-plane one-way latency in seconds. 0 is the
/// `Ideal` channel (inline delivery at the classic broadcast instants); the
/// rest are lossless `Modeled` channels with fixed latency and no jitter.
const LATENCIES: [f64; 4] = [0.0, 1.0, 10.0, 60.0];

fn channel_for(latency_secs: f64) -> ControlChannel {
    if latency_secs == 0.0 {
        ControlChannel::Ideal
    } else {
        ControlChannel::Modeled { latency_secs, jitter_secs: 0.0, loss_prob: 0.0, seed: 7 }
    }
}

pub fn controlbus() -> String {
    let mut out = header(
        "controlbus",
        "Control bus: Ideal-channel parity vs the pre-bus loop + JCT vs control latency",
    );
    const REPS: usize = 2;

    // -- 1. Parity: the bus in Ideal mode must reproduce the pre-bus traces
    //    bit-for-bit on the golden fixture configs (same ratchet as `kernel`,
    //    with the channel made explicit).
    let mut rows = vec![vec![
        "fixture".into(),
        "JCT (sim)".into(),
        "events".into(),
        "pre-bus".into(),
        "parity".into(),
        "wall".into(),
    ]];
    let mut json_parity = String::new();
    let mut all_match = true;
    for (name, pre_jct_us, pre_events) in PRE_REFACTOR {
        let (wall, r) = timed(REPS, || fixture(name).with_control_channel(ControlChannel::Ideal));
        let parity = r.jct.as_micros() == pre_jct_us && r.events_processed == pre_events;
        all_match &= parity;
        rows.push(vec![
            name.into(),
            secs(r.jct.as_secs_f64()),
            r.events_processed.to_string(),
            format!("{:.3}s / {pre_events}", pre_jct_us as f64 / 1e6),
            if parity { "MATCH".into() } else { "DIVERGED".into() },
            format!("{:.4}s", wall),
        ]);
        let _ = write!(
            json_parity,
            concat!(
                "{{\"fixture\":\"{}\",\"jct_micros\":{},\"events\":{},",
                "\"pre_jct_micros\":{},\"pre_events\":{},\"parity\":{}}},"
            ),
            name,
            r.jct.as_micros(),
            r.events_processed,
            pre_jct_us,
            pre_events,
            parity,
        );
    }
    out.push_str(&table(&rows));
    let _ = writeln!(
        out,
        "  parity: {} (Ideal channel reproduces the pre-bus direct-call traces)",
        if all_match { "all fixtures MATCH" } else { "DIVERGENCE — see table" }
    );

    // -- 2. JCT vs control latency on the non-dedicated PS job: how much a
    //    slow control plane erodes the mitigation win. The directive audit
    //    shows the traffic the channel carried.
    let mut rows = vec![vec![
        "latency".into(),
        "JCT (sim)".into(),
        "events".into(),
        "directives".into(),
        "applied".into(),
        "wall".into(),
    ]];
    let mut json_sweep = String::new();
    // Fan the sweep points out on the experiment pool; each point is an
    // independent deterministic simulation. The latency-0 baseline is read
    // back from the collected results (order is preserved), so the rendered
    // rows are identical to the serial sweep.
    let sweep = antdt_par::par_map(LATENCIES.to_vec(), |latency| {
        let (wall, r) = timed(REPS, || non_dedicated(channel_for(latency)));
        (latency, wall, r)
    });
    let baseline_jct = sweep
        .iter()
        .find(|(l, _, _)| *l == 0.0)
        .map(|(_, _, r)| r.jct.as_secs_f64())
        .unwrap_or(0.0);
    for (latency, wall, r) in &sweep {
        let (latency, wall) = (*latency, *wall);
        let jct = r.jct.as_secs_f64();
        let applied =
            r.directives.iter().filter(|d| matches!(d.fate, DirectiveFate::Applied { .. })).count();
        rows.push(vec![
            format!("{latency}s"),
            format!("{} ({:+.1}%)", secs(jct), (jct / baseline_jct.max(1e-9) - 1.0) * 100.0),
            r.events_processed.to_string(),
            r.directives.len().to_string(),
            applied.to_string(),
            format!("{:.4}s", wall),
        ]);
        let _ = write!(
            json_sweep,
            concat!(
                "{{\"latency_secs\":{},\"jct_micros\":{},\"events\":{},",
                "\"directives\":{},\"applied\":{}}},"
            ),
            latency,
            r.jct.as_micros(),
            r.events_processed,
            r.directives.len(),
            applied,
        );
    }
    out.push_str(&table(&rows));
    let _ = writeln!(
        out,
        "  sweep: non-dedicated PS (10 workers / 4 servers, WorkerMix 0.8), \
         one-way control latency 0→60 s"
    );

    // Machine-readable artifact (hand-rendered: the offline serde_json is a stub).
    let json = format!(
        "{{\"experiment\":\"controlbus\",\"reps\":{},\"parity\":{},\
         \"fixtures\":[{}],\"latency_sweep\":[{}]}}\n",
        REPS,
        all_match,
        json_parity.trim_end_matches(','),
        json_sweep.trim_end_matches(','),
    );
    crate::util::write_artifact(&mut out, "BENCH_controlbus.json", &json);
    out
}
