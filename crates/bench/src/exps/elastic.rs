//! The elastic-membership benchmark: JCT of a statically-sized job under a
//! persistent straggler versus the same job that `SCALE_OUT`s two extra pods
//! mid-run, versus the oracle that started with the larger fleet from t = 0.
//! Also audits the consistent-hash ring: shards whose owner moved per resize
//! must stay near 1/n of the queued backlog (minimal movement), not the ~all
//! a naive modulo re-shard would pay.

use super::kernel::timed;
use crate::util::{header, secs, table};
use antdt_core::{ChaosInjection, InjectedFault, JobConfig, MitigationChoice};
use antdt_sim::SimDuration;
use antdt_workloads::cluster::cluster_a_scaled;
use antdt_workloads::{ModelProfile, Scenario};
use std::fmt::Write;

const BASE_WORKERS: u32 = 4;
const ADDED: u32 = 2;
/// Elasticity here is weak scaling: a joiner brings its own local batch
/// (`global_batch / n` at join time) on top of the incumbents' quotas, so the
/// oracle arm gets the same per-worker local batch, not the same global one.
const LOCAL_BATCH: u64 = 1_024;

/// A PS-BSP job with one persistent straggler and no mitigation policy, so
/// the only lever across arms is fleet size: any JCT delta is pure capacity.
fn job(workers: u32) -> JobConfig {
    JobConfig::ps_bsp(
        cluster_a_scaled(workers as usize, 2),
        Scenario::WorkerPersistent { intensity: 0.6 },
    )
    .with_model(ModelProfile::xdeepfm())
    .with_global_batch(LOCAL_BATCH * workers as u64)
    .with_samples(1_200_000)
    .with_batches_per_shard(10)
    .with_fast_cadence(SimDuration::from_secs(60))
    .with_seed(31)
    .with_mitigation(MitigationChoice::None)
}

pub fn elastic() -> String {
    let mut out = header(
        "elastic",
        "Elastic membership: static-N vs SCALE_OUT mid-run vs oracle-sized, + ring movement",
    );
    const REPS: usize = 2;

    // Anchor the resize instant on the static arm's JCT so the join lands
    // early enough to matter at any absolute scale.
    let (_, static_probe) = timed(1, || job(BASE_WORKERS));
    let static_jct = static_probe.jct.as_secs_f64();
    let scale_at = static_jct * 0.15;
    let _ = writeln!(
        out,
        "  static-{BASE_WORKERS} JCT {} — SCALE_OUT {{ add: {ADDED} }} fires at 15% of it",
        secs(static_jct)
    );

    // The three arms, fanned out on the experiment pool.
    let arms: Vec<&'static str> = vec!["static-N", "scale-out", "oracle-sized"];
    let runs = antdt_par::par_map(arms, |arm| {
        let mk = move || match arm {
            "static-N" => job(BASE_WORKERS),
            "scale-out" => job(BASE_WORKERS).with_injections(vec![ChaosInjection {
                at_secs: scale_at,
                fault: InjectedFault::ScaleOut { add: ADDED },
            }]),
            _ => job(BASE_WORKERS + ADDED),
        };
        let (wall, r) = timed(REPS, mk);
        (arm, wall, r)
    });

    let mut rows = vec![vec![
        "arm".into(),
        "workers".into(),
        "JCT (sim)".into(),
        "vs static".into(),
        "joins".into(),
        "moved/queued".into(),
        "wall".into(),
    ]];
    let mut json_points = String::new();
    for (arm, wall, r) in &runs {
        let jct = r.jct.as_secs_f64();
        let m = r.membership.as_ref();
        let (moved, queued): (u64, u64) = m
            .map(|m| {
                m.resizes
                    .iter()
                    .fold((0, 0), |(a, b), rr| (a + rr.moved_slots, b + rr.queued_slots))
            })
            .unwrap_or((0, 0));
        let workers = m.map_or_else(
            || r.worker_bpt.len().to_string(),
            |m| format!("{}→{}", m.initial_workers, m.final_workers),
        );
        rows.push(vec![
            (*arm).into(),
            workers,
            secs(jct),
            format!("{:+.1}%", (jct / static_jct.max(1e-9) - 1.0) * 100.0),
            m.map_or(0, |m| m.joins).to_string(),
            if queued == 0 { "-".into() } else { format!("{moved}/{queued}") },
            format!("{:.4}s", wall),
        ]);
        let _ = write!(
            json_points,
            concat!(
                "{{\"arm\":\"{}\",\"jct_micros\":{},\"joins\":{},",
                "\"moved_slots\":{},\"queued_slots\":{}}},"
            ),
            arm,
            r.jct.as_micros(),
            m.map_or(0, |m| m.joins),
            moved,
            queued,
        );
    }
    out.push_str(&table(&rows));

    // The headline claims, asserted so CI fails if elasticity regresses:
    // scaling out mid-run must beat staying at N, the oracle bounds it from
    // below, and the ring must not reshuffle the whole backlog per join.
    let jct_of = |arm: &str| {
        runs.iter().find(|(a, _, _)| *a == arm).map(|(_, _, r)| r.jct.as_secs_f64()).unwrap()
    };
    let (st, sc, or) = (jct_of("static-N"), jct_of("scale-out"), jct_of("oracle-sized"));
    assert!(sc < st, "SCALE_OUT must improve JCT over static-N ({sc:.0} vs {st:.0})");
    assert!(or <= sc, "the oracle fleet is a lower bound ({or:.0} vs {sc:.0})");
    let elastic_run = &runs.iter().find(|(a, _, _)| *a == "scale-out").unwrap().2;
    let memb = elastic_run.membership.as_ref().expect("elastic arm records membership");
    assert_eq!(memb.joins, ADDED, "both pods must join");
    for rr in &memb.resizes {
        // Consistent hashing: a join moves ≈1/n of the queue. 2.5/n leaves
        // vnode-variance headroom while still catching a modulo re-shard
        // (which would move ~(n-1)/n of it).
        let n = memb.final_workers.max(1) as f64;
        assert!(
            rr.queued_slots == 0 || (rr.moved_slots as f64) <= 2.5 / n * rr.queued_slots as f64,
            "resize moved too much: {rr:?}"
        );
    }
    let _ = writeln!(
        out,
        "  scale-out recovers {:.0}% of the oracle's advantage over static-{BASE_WORKERS}; \
         each join moved ≤2.5/n of the queued backlog (consistent-hash minimal movement)",
        (st - sc) / (st - or).max(1e-9) * 100.0
    );

    // Machine-readable artifact (hand-rendered: the offline serde_json is a stub).
    let json = format!(
        concat!(
            "{{\"experiment\":\"elastic\",\"reps\":{},\"base_workers\":{},\"added\":{},",
            "\"scale_at_secs\":{:.3},\"static_jct_micros\":{},\"points\":[{}]}}\n"
        ),
        REPS,
        BASE_WORKERS,
        ADDED,
        scale_at,
        static_probe.jct.as_micros(),
        json_points.trim_end_matches(','),
    );
    crate::util::write_artifact(&mut out, "BENCH_elastic.json", &json);
    out
}
