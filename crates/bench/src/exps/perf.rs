//! The deterministic perf harness (bench id `perf`): engine event throughput,
//! allocation counts via the feature-gated counting allocator, the wall-clock
//! serial-vs-parallel speedup of `experiments all`, and the parity verdicts
//! that prove parallelism changed nothing but the wall clock.

use crate::alloc::{allocation_count, count_allocations};
use crate::util::{freeze_wall, header, table};
use antdt_core::{Job, JobConfig, MitigationChoice, Perturbation};
use antdt_sim::{
    ContentionPhase, ControlChannel, Engine, EventQueue, HeapQueue, RuntimeQueue, SimDuration,
    SimTime, WheelQueue,
};
use antdt_workloads::Scenario;
use std::fmt::Write;

/// Pre-PR reference numbers, captured on the dev container from the code as
/// it stood before this optimization pass (same fixtures, same allocator,
/// `--release`). Allocation counts are deterministic; events/sec is
/// wall-clock-based and only indicative across machines — the JSON artifact
/// reports both sides of the ratio so readers can judge.
pub(crate) struct PerfBaseline {
    /// Engine microbench: events drained per second of wall time.
    pub engine_events_per_sec: f64,
    /// Engine microbench: heap allocations for the full drain (deterministic).
    pub engine_allocs: u64,
    /// Heap allocations of one serial `Job::run` on the `bsp` golden fixture.
    pub bsp_job_allocs: u64,
    /// Heap allocations of one serial `Job::run` on the `allreduce` fixture.
    pub allreduce_job_allocs: u64,
}

pub(crate) const PRE_PERF: PerfBaseline = PerfBaseline {
    engine_events_per_sec: 23_000_000.0,
    engine_allocs: 5,
    bsp_job_allocs: 739,
    allreduce_job_allocs: 2_932,
};

/// Events the microbench drains through the engine.
const MICRO_EVENTS: u64 = 1_000_000;

/// A self-feeding event cascade: 64 seeds, every handled event schedules one
/// follow-up at a pseudo-random (but fully deterministic) delay until
/// [`MICRO_EVENTS`] have been scheduled. Exercises the queue's push/pop path
/// with a realistic interleaving rather than a sorted drain. Generic over the
/// queue implementation so the wheel-vs-heap comparison runs the identical
/// workload.
fn engine_microbench<Q: EventQueue<u32> + Default>() -> (f64, u64, Option<u64>) {
    let a0 = allocation_count();
    let t0 = std::time::Instant::now();
    let mut eng: Engine<u64, Q> = Engine::new();
    for i in 0..64u64 {
        eng.schedule(SimTime(i), i);
    }
    let mut scheduled = 64u64;
    eng.run(|eng, v| {
        if scheduled < MICRO_EVENTS {
            scheduled += 1;
            let delay = v.wrapping_mul(0x9E37_79B9_7F4A_7C15) % 997 + 1;
            eng.schedule_after(SimDuration(delay), v.wrapping_add(1));
        }
    });
    let wall = t0.elapsed().as_secs_f64();
    let allocs = allocation_count().zip(a0).map(|(a, b)| a - b);
    assert_eq!(eng.processed(), MICRO_EVENTS);
    (wall, MICRO_EVENTS, allocs)
}

/// Best-of-3 events/sec of the cascade on queue `Q` (wall-clock noise is the
/// dominant error source; the max of three runs is the stable statistic).
fn cascade_eps<Q: EventQueue<u32> + Default>() -> f64 {
    (0..3)
        .map(|_| {
            let (wall, events, _) = engine_microbench::<Q>();
            events as f64 / wall.max(1e-9)
        })
        .fold(0.0, f64::max)
}

/// A 1000-worker BSP job: the job-level queue-pressure fixture. ~1k pending
/// worker events is the *smallest* scale where queue choice is visible at
/// all in the job wall clock; the heap's array still fits in L2 here, so
/// parity (not victory) is the bar — see the barrier-drain scaling bench
/// for where the wheel pulls ahead.
fn fixture_1k() -> JobConfig {
    JobConfig::ps_bsp(antdt_workloads::cluster::cluster_a_scaled(1_000, 8), Scenario::None)
        .with_global_batch(64_000)
        .with_samples(1_280_000)
        .with_batches_per_shard(10)
        .with_fast_cadence(SimDuration::from_secs(60))
        .with_seed(11)
}

/// Wheel-vs-heap events/sec on `cfg`, measured as interleaved pairs: each
/// pair runs the job once per queue, alternating which goes first so cache
/// warm-up and clock drift hit both sides equally, and the reported ratio is
/// the **median** of the per-pair ratios. A best-of-N of each side measured
/// apart lets one lucky scheduling window on either side swing the ratio by
/// ±20%; the paired median is stable to a couple of percent.
fn paired_job_ratio(cfg: &JobConfig, pairs: usize) -> (f64, f64, f64, u64) {
    let one = |queue: fn() -> RuntimeQueue<u32>| {
        let t0 = std::time::Instant::now();
        let report = Job::run_on_queue(cfg.clone(), queue());
        (t0.elapsed().as_secs_f64(), report.events_processed)
    };
    let mut ratios = Vec::with_capacity(pairs);
    let mut wheel_best = f64::INFINITY;
    let mut heap_best = f64::INFINITY;
    let mut events = 0u64;
    for i in 0..pairs {
        let (wheel_wall, heap_wall) = if i % 2 == 0 {
            let (w, e) = one(RuntimeQueue::wheel);
            events = e;
            (w, one(RuntimeQueue::heap).0)
        } else {
            let h = one(RuntimeQueue::heap).0;
            let (w, e) = one(RuntimeQueue::wheel);
            events = e;
            (w, h)
        };
        ratios.push(heap_wall / wheel_wall.max(1e-9));
        wheel_best = wheel_best.min(wheel_wall);
        heap_best = heap_best.min(heap_wall);
    }
    ratios.sort_by(f64::total_cmp);
    let median = ratios[ratios.len() / 2];
    (median, events as f64 / wheel_best.max(1e-9), events as f64 / heap_best.max(1e-9), events)
}

/// Pure queue pressure at growing pending-set sizes: one barrier cohort of
/// `pending` worker-completion events pushed then drained per iteration
/// (the BSP shape with handler work stripped away). This is where the
/// data-structure asymptotics show: the heap's `log n` sift over an
/// ever-larger array degrades with `pending`, the wheel's bucket work does
/// not.
fn barrier_drain<Q: EventQueue<u32> + Default>(events: u64, pending: u64) -> f64 {
    let mut best = 0.0f64;
    for _ in 0..3 {
        let t0 = std::time::Instant::now();
        let mut q = Q::default();
        let mut seq = 0u64;
        let mut now = 0u64;
        let mut processed = 0u64;
        while processed < events {
            let d = seq.wrapping_mul(0x9E37_79B9_7F4A_7C15) % 59_935_000 + 65_000;
            for w in 0..pending {
                let jitter = w.wrapping_mul(0x9E37_79B9_7F4A_7C15) % 4_000;
                q.push((u128::from(now + d + jitter) << 64) | u128::from(seq), w as u32);
                seq += 1;
            }
            for _ in 0..pending {
                let (k, _) = q.pop_at_most(u128::MAX).expect("cohort was just pushed");
                now = (k >> 64) as u64;
                processed += 1;
            }
        }
        best = best.max(processed as f64 / t0.elapsed().as_secs_f64());
    }
    best
}

/// The fork-replay demo job (mirrors `examples/whatif_fork.rs`): every
/// divergence source engages strictly after t=0, so all three stock
/// perturbations replay from a fork.
fn forkable_cfg() -> JobConfig {
    let mut cfg =
        JobConfig::ps_bsp(antdt_workloads::cluster::cluster_a_scaled(4, 2), Scenario::None)
            .with_global_batch(4_096)
            .with_samples(2_000_000)
            .with_batches_per_shard(10)
            .with_fast_cadence(SimDuration::from_secs(60))
            .with_seed(11)
            .with_attribution()
            .with_control_channel(ControlChannel::Modeled {
                latency_secs: 0.05,
                jitter_secs: 0.02,
                loss_prob: 0.01,
                seed: 5,
            })
            .with_checkpoint_interval(SimDuration::from_secs(60));
    cfg.cluster.workers[3].profile.phases.push(ContentionPhase::Persistent {
        delay_secs: 4.0,
        from: SimTime::from_secs_f64(60.0),
        to: SimTime::MAX,
    });
    cfg
}

pub fn perf() -> String {
    let mut out = header(
        "perf",
        "Deterministic perf harness: engine throughput, allocation counts, parallel speedup",
    );

    // -- 1. Engine microbench: events/sec + allocations vs the pre-PR numbers
    //    (on the default queue, the time wheel).
    let (micro_wall, micro_events, micro_allocs) = engine_microbench::<WheelQueue<u32>>();
    let micro_eps = micro_events as f64 / micro_wall.max(1e-9);
    let _ = writeln!(
        out,
        "  engine microbench: {micro_events} events in {micro_wall:.3}s = {micro_eps:.0} events/s \
         (pre-PR {:.0} events/s)",
        PRE_PERF.engine_events_per_sec,
    );
    match micro_allocs {
        Some(a) => {
            let _ = writeln!(
                out,
                "  engine microbench allocations: {a} (pre-PR {})",
                PRE_PERF.engine_allocs
            );
        }
        None => {
            let _ = writeln!(
                out,
                "  engine microbench allocations: n/a (build with --features count-alloc)"
            );
        }
    }

    // -- 1b. Wheel vs heap on the identical cascade: the ordering layer is
    //    pluggable, so the comparison isolates exactly the queue data
    //    structure.
    let wheel_eps = cascade_eps::<WheelQueue<u32>>();
    let heap_eps = cascade_eps::<HeapQueue<u32>>();
    let micro_ratio = wheel_eps / heap_eps.max(1e-9);
    let _ = writeln!(
        out,
        "  queue microbench: wheel {wheel_eps:.0} events/s vs heap {heap_eps:.0} events/s \
         = {micro_ratio:.2}x"
    );

    // -- 1c. The 1000-worker fixture: queue pressure at the scale the wheel
    //    exists for, plus the job-level parity check that the two queues
    //    produce byte-identical traces even at 1k workers.
    let big = fixture_1k();
    let queue_parity = Job::run_on_queue(big.clone(), RuntimeQueue::wheel()).golden_dump()
        == Job::run_on_queue(big.clone(), RuntimeQueue::heap()).golden_dump();
    let (ratio_1k, eps_1k_wheel, eps_1k_heap, big_events) = paired_job_ratio(&big, 11);
    let _ = writeln!(
        out,
        "  1k-worker fixture ({big_events} events, median of 11 interleaved pairs): \
         wheel {eps_1k_wheel:.0} events/s vs heap {eps_1k_heap:.0} events/s = {ratio_1k:.2}x"
    );
    let _ = writeln!(
        out,
        "  1k-worker queue parity: {}",
        if queue_parity { "MATCH (byte-identical dumps)" } else { "DIVERGED" }
    );

    // -- 1d. Queue scaling: the barrier drain at growing pending-set sizes.
    //    At 1k pending the heap's sift path lives in L2 and its small
    //    constants win; as the pending set grows past the cache the `log n`
    //    hops turn into memory stalls while the wheel's per-event work stays
    //    flat. The ratchet pins the crossover: the wheel must beat the heap
    //    outright at the largest scale.
    const SCALE_EVENTS: u64 = 2_000_000;
    let scales = [1_000u64, 10_000, 50_000, 200_000];
    let mut scale_rows: Vec<(u64, f64, f64)> = Vec::new();
    for &pending in &scales {
        let w = barrier_drain::<WheelQueue<u32>>(SCALE_EVENTS, pending);
        let h = barrier_drain::<HeapQueue<u32>>(SCALE_EVENTS, pending);
        let _ = writeln!(
            out,
            "  barrier drain @ {pending} pending: wheel {w:.0} events/s vs heap {h:.0} events/s \
             = {:.2}x",
            w / h.max(1e-9),
        );
        scale_rows.push((pending, w, h));
    }
    let (_, w_top, h_top) = scale_rows[scale_rows.len() - 1];
    let ratio_top = w_top / h_top.max(1e-9);

    // -- 2. Job allocation counts on two golden fixtures (PS/BSP and ring).
    //    Deterministic under count-alloc: the same simulation performs the
    //    same allocations every run.
    let mut rows =
        vec![vec!["fixture".into(), "allocations".into(), "pre-PR".into(), "reduction".into()]];
    let mut fixture_allocs: Vec<Option<u64>> = Vec::new();
    for (name, pre) in
        [("bsp", PRE_PERF.bsp_job_allocs), ("allreduce", PRE_PERF.allreduce_job_allocs)]
    {
        let (allocs, _report) = count_allocations(|| Job::run(super::kernel::fixture(name)));
        fixture_allocs.push(allocs);
        let (shown, delta) = match allocs {
            Some(a) if pre > 0 => {
                (a.to_string(), format!("{:+.1}%", (a as f64 / pre as f64 - 1.0) * 100.0))
            }
            Some(a) => (a.to_string(), "-".into()),
            None => ("n/a".into(), "-".into()),
        };
        rows.push(vec![name.into(), shown, pre.to_string(), delta]);
    }
    out.push_str(&table(&rows));

    // -- 3. Serial vs parallel `experiments all`: the full suite once on the
    //    pool and once forced serial, both under a frozen wall so every
    //    embedded wall-time figure renders as 0 and the two report strings
    //    can be compared byte for byte. The speedup itself is measured by
    //    this harness's own (unfrozen) stopwatch around each pass.
    let jobs = antdt_par::jobs();
    let avail = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let t0 = std::time::Instant::now();
    let parallel = freeze_wall(|| crate::run_all(None));
    let wall_par = t0.elapsed().as_secs_f64();
    let t0 = std::time::Instant::now();
    let serial = antdt_par::with_serial(|| freeze_wall(|| crate::run_all(None)));
    let wall_ser = t0.elapsed().as_secs_f64();
    let all_parity = serial == parallel;
    let speedup = wall_ser / wall_par.max(1e-9);
    let _ = writeln!(
        out,
        "  experiments all: serial {wall_ser:.2}s vs parallel {wall_par:.2}s on {jobs} jobs \
         = {speedup:.2}x speedup ({avail} hardware threads available)"
    );
    let _ = writeln!(
        out,
        "  serial/parallel output parity: {}",
        if all_parity { "MATCH (byte-identical reports)" } else { "DIVERGED" }
    );

    // -- 4. Chaos matrix parity: the pooled plan x policy fan-out must equal
    //    the nested serial loops, report for report.
    let chaos_parity = chaos_matrix_parity();
    let _ = writeln!(
        out,
        "  chaos matrix parity: {}",
        if chaos_parity { "MATCH (run == run_serial)" } else { "DIVERGED" }
    );

    // -- 5. Fork-based what-if replay: the three stock perturbations off one
    //    shared prefix must reproduce the full-rerun table row-for-row, and
    //    the prefix share says how much simulation the forks skipped.
    let fork_cfg = forkable_cfg();
    let fork_base = Job::run(fork_cfg.clone());
    let fork_perturbations = [
        Perturbation::HealthyNode(3),
        Perturbation::ZeroControlLatency,
        Perturbation::NoCkptStalls,
    ];
    let full_rows = antdt_core::what_if_table(&fork_cfg, &fork_base, &fork_perturbations);
    let (fork_rows, fork_stats) =
        antdt_core::what_if_table_forked(&fork_cfg, &fork_base, &fork_perturbations);
    let fork_parity = fork_rows == full_rows && fork_stats.forked == fork_perturbations.len();
    let _ = writeln!(
        out,
        "  what-if fork replay: {} of {} forked, prefix share {:.1}% \
         ({} of {} events inherited)",
        fork_stats.forked,
        fork_perturbations.len(),
        fork_stats.prefix_share() * 100.0,
        fork_stats.prefix_events,
        fork_stats.total_events,
    );
    let _ = writeln!(
        out,
        "  what-if fork parity: {}",
        if fork_parity { "MATCH (forked table == full-rerun table)" } else { "DIVERGED" }
    );

    // Machine-readable artifact (hand-rendered: the offline serde_json is a stub).
    let json = format!(
        concat!(
            "{{\"experiment\":\"perf\",",
            "\"engine\":{{\"events\":{},\"wall_secs\":{:.6},\"events_per_sec\":{:.1},",
            "\"pre_events_per_sec\":{:.1},\"throughput_ratio\":{:.3},",
            "\"allocs\":{},\"pre_allocs\":{}}},",
            "\"job_allocs\":{{\"bsp\":{},\"bsp_pre\":{},\"allreduce\":{},\"allreduce_pre\":{}}},",
            "\"queue\":{{\"wheel_events_per_sec\":{:.1},\"heap_events_per_sec\":{:.1},",
            "\"wheel_over_heap\":{:.3}}},",
            "\"fixture_1k\":{{\"workers\":1000,\"events\":{},\"pairs\":11,",
            "\"wheel_events_per_sec\":{:.1},\"heap_events_per_sec\":{:.1},",
            "\"wheel_over_heap_median\":{:.3},\"queue_parity\":{}}},",
            "\"queue_scaling\":[{}],",
            "\"whatif_fork\":{{\"forked\":{},\"prefix_events\":{},\"suffix_events\":{},",
            "\"total_events\":{},\"prefix_share\":{:.4},\"fork_parity\":{}}},",
            "\"parallel\":{{\"jobs\":{},\"available_parallelism\":{},",
            "\"wall_serial_secs\":{:.6},\"wall_parallel_secs\":{:.6},\"speedup\":{:.3},",
            "\"all_output_parity\":{},\"chaos_matrix_parity\":{}}}}}\n"
        ),
        micro_events,
        micro_wall,
        micro_eps,
        PRE_PERF.engine_events_per_sec,
        micro_eps / PRE_PERF.engine_events_per_sec,
        micro_allocs.map(|a| a.to_string()).unwrap_or_else(|| "null".into()),
        PRE_PERF.engine_allocs,
        fixture_allocs[0].map(|a| a.to_string()).unwrap_or_else(|| "null".into()),
        PRE_PERF.bsp_job_allocs,
        fixture_allocs[1].map(|a| a.to_string()).unwrap_or_else(|| "null".into()),
        PRE_PERF.allreduce_job_allocs,
        wheel_eps,
        heap_eps,
        micro_ratio,
        big_events,
        eps_1k_wheel,
        eps_1k_heap,
        ratio_1k,
        queue_parity,
        scale_rows
            .iter()
            .map(|&(pending, w, h)| {
                format!(
                    concat!(
                        "{{\"pending\":{},\"wheel_events_per_sec\":{:.1},",
                        "\"heap_events_per_sec\":{:.1},\"wheel_over_heap\":{:.3}}}"
                    ),
                    pending,
                    w,
                    h,
                    w / h.max(1e-9)
                )
            })
            .collect::<Vec<_>>()
            .join(","),
        fork_stats.forked,
        fork_stats.prefix_events,
        fork_stats.suffix_events,
        fork_stats.total_events,
        fork_stats.prefix_share(),
        fork_parity,
        jobs,
        avail,
        wall_ser,
        wall_par,
        speedup,
        all_parity,
        chaos_parity,
    );
    crate::util::write_artifact(&mut out, "BENCH_perf.json", &json);

    assert!(all_parity, "parallel `experiments all` diverged from the serial pass");
    assert!(chaos_parity, "pooled chaos matrix diverged from the serial loops");
    assert!(queue_parity, "heap and wheel queues diverged on the 1k-worker fixture");
    assert!(fork_parity, "forked what-if table diverged from the full-rerun table");
    // Two perf ratchets, one per regime. At 1k workers the pending set fits
    // the heap's array in L2 and its `log n = 10` sift has tiny constants —
    // the wheel's job is to stay within noise of that optimum (the paired
    // median holds at ~0.93-0.95x on the dev container; 0.9 is the ratchet
    // floor). Past the caches the asymptotics take over: the wheel must beat
    // the heap outright at the largest barrier-drain scale (~1.4x on the dev
    // container).
    assert!(
        ratio_1k >= 0.9,
        "time wheel regressed below the binary heap on the 1k-worker fixture: {ratio_1k:.2}x"
    );
    assert!(
        ratio_top >= 1.0,
        "time wheel lost to the binary heap at {} pending events: {ratio_top:.2}x",
        scales[scales.len() - 1],
    );
    out
}

/// A small but non-trivial chaos matrix (2 plans x 2 policies) drilled twice —
/// pooled and serial — and compared structurally.
fn chaos_matrix_parity() -> bool {
    use antdt_chaos::{ChaosDriver, Fault, FaultPlan, NodeRef};
    let base = JobConfig::ps_bsp(
        antdt_workloads::cluster::cluster_a_scaled(4, 2),
        Scenario::WorkerMix { intensity: 0.5 },
    )
    .with_global_batch(4_096)
    .with_samples(200_000)
    .with_batches_per_shard(10)
    .with_fast_cadence(SimDuration::from_secs(60));
    let driver = ChaosDriver::new(base)
        .with_plan(FaultPlan::new("kill-w1").at(30.0, Fault::KillNode { node: NodeRef::Worker(1) }))
        .with_plan(FaultPlan::new("dds-outage").at(15.0, Fault::DdsOutage { window_secs: 30.0 }))
        .with_policies(vec![MitigationChoice::AntDtNd, MitigationChoice::None]);
    driver.run() == driver.run_serial()
}
