//! The deterministic perf harness (bench id `perf`): engine event throughput,
//! allocation counts via the feature-gated counting allocator, the wall-clock
//! serial-vs-parallel speedup of `experiments all`, and the parity verdicts
//! that prove parallelism changed nothing but the wall clock.

use crate::alloc::{allocation_count, count_allocations};
use crate::util::{freeze_wall, header, table};
use antdt_core::{Job, JobConfig, MitigationChoice};
use antdt_sim::{Engine, SimDuration, SimTime};
use antdt_workloads::Scenario;
use std::fmt::Write;

/// Pre-PR reference numbers, captured on the dev container from the code as
/// it stood before this optimization pass (same fixtures, same allocator,
/// `--release`). Allocation counts are deterministic; events/sec is
/// wall-clock-based and only indicative across machines — the JSON artifact
/// reports both sides of the ratio so readers can judge.
pub(crate) struct PerfBaseline {
    /// Engine microbench: events drained per second of wall time.
    pub engine_events_per_sec: f64,
    /// Engine microbench: heap allocations for the full drain (deterministic).
    pub engine_allocs: u64,
    /// Heap allocations of one serial `Job::run` on the `bsp` golden fixture.
    pub bsp_job_allocs: u64,
    /// Heap allocations of one serial `Job::run` on the `allreduce` fixture.
    pub allreduce_job_allocs: u64,
}

pub(crate) const PRE_PERF: PerfBaseline = PerfBaseline {
    engine_events_per_sec: 23_000_000.0,
    engine_allocs: 5,
    bsp_job_allocs: 739,
    allreduce_job_allocs: 2_932,
};

/// Events the microbench drains through the engine.
const MICRO_EVENTS: u64 = 1_000_000;

/// A self-feeding event cascade: 64 seeds, every handled event schedules one
/// follow-up at a pseudo-random (but fully deterministic) delay until
/// [`MICRO_EVENTS`] have been scheduled. Exercises the heap's push/pop path
/// with a realistic interleaving rather than a sorted drain.
fn engine_microbench() -> (f64, u64, Option<u64>) {
    let a0 = allocation_count();
    let t0 = std::time::Instant::now();
    let mut eng: Engine<u64> = Engine::new();
    for i in 0..64u64 {
        eng.schedule(SimTime(i), i);
    }
    let mut scheduled = 64u64;
    eng.run(|eng, v| {
        if scheduled < MICRO_EVENTS {
            scheduled += 1;
            let delay = v.wrapping_mul(0x9E37_79B9_7F4A_7C15) % 997 + 1;
            eng.schedule_after(SimDuration(delay), v.wrapping_add(1));
        }
    });
    let wall = t0.elapsed().as_secs_f64();
    let allocs = allocation_count().zip(a0).map(|(a, b)| a - b);
    assert_eq!(eng.processed(), MICRO_EVENTS);
    (wall, MICRO_EVENTS, allocs)
}

pub fn perf() -> String {
    let mut out = header(
        "perf",
        "Deterministic perf harness: engine throughput, allocation counts, parallel speedup",
    );

    // -- 1. Engine microbench: events/sec + allocations vs the pre-PR numbers.
    let (micro_wall, micro_events, micro_allocs) = engine_microbench();
    let micro_eps = micro_events as f64 / micro_wall.max(1e-9);
    let _ = writeln!(
        out,
        "  engine microbench: {micro_events} events in {micro_wall:.3}s = {micro_eps:.0} events/s \
         (pre-PR {:.0} events/s)",
        PRE_PERF.engine_events_per_sec,
    );
    match micro_allocs {
        Some(a) => {
            let _ = writeln!(
                out,
                "  engine microbench allocations: {a} (pre-PR {})",
                PRE_PERF.engine_allocs
            );
        }
        None => {
            let _ = writeln!(
                out,
                "  engine microbench allocations: n/a (build with --features count-alloc)"
            );
        }
    }

    // -- 2. Job allocation counts on two golden fixtures (PS/BSP and ring).
    //    Deterministic under count-alloc: the same simulation performs the
    //    same allocations every run.
    let mut rows =
        vec![vec!["fixture".into(), "allocations".into(), "pre-PR".into(), "reduction".into()]];
    let mut fixture_allocs: Vec<Option<u64>> = Vec::new();
    for (name, pre) in
        [("bsp", PRE_PERF.bsp_job_allocs), ("allreduce", PRE_PERF.allreduce_job_allocs)]
    {
        let (allocs, _report) = count_allocations(|| Job::run(super::kernel::fixture(name)));
        fixture_allocs.push(allocs);
        let (shown, delta) = match allocs {
            Some(a) if pre > 0 => {
                (a.to_string(), format!("{:+.1}%", (a as f64 / pre as f64 - 1.0) * 100.0))
            }
            Some(a) => (a.to_string(), "-".into()),
            None => ("n/a".into(), "-".into()),
        };
        rows.push(vec![name.into(), shown, pre.to_string(), delta]);
    }
    out.push_str(&table(&rows));

    // -- 3. Serial vs parallel `experiments all`: the full suite once on the
    //    pool and once forced serial, both under a frozen wall so every
    //    embedded wall-time figure renders as 0 and the two report strings
    //    can be compared byte for byte. The speedup itself is measured by
    //    this harness's own (unfrozen) stopwatch around each pass.
    let jobs = antdt_par::jobs();
    let avail = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let t0 = std::time::Instant::now();
    let parallel = freeze_wall(|| crate::run_all(None));
    let wall_par = t0.elapsed().as_secs_f64();
    let t0 = std::time::Instant::now();
    let serial = antdt_par::with_serial(|| freeze_wall(|| crate::run_all(None)));
    let wall_ser = t0.elapsed().as_secs_f64();
    let all_parity = serial == parallel;
    let speedup = wall_ser / wall_par.max(1e-9);
    let _ = writeln!(
        out,
        "  experiments all: serial {wall_ser:.2}s vs parallel {wall_par:.2}s on {jobs} jobs \
         = {speedup:.2}x speedup ({avail} hardware threads available)"
    );
    let _ = writeln!(
        out,
        "  serial/parallel output parity: {}",
        if all_parity { "MATCH (byte-identical reports)" } else { "DIVERGED" }
    );

    // -- 4. Chaos matrix parity: the pooled plan x policy fan-out must equal
    //    the nested serial loops, report for report.
    let chaos_parity = chaos_matrix_parity();
    let _ = writeln!(
        out,
        "  chaos matrix parity: {}",
        if chaos_parity { "MATCH (run == run_serial)" } else { "DIVERGED" }
    );

    // Machine-readable artifact (hand-rendered: the offline serde_json is a stub).
    let json = format!(
        concat!(
            "{{\"experiment\":\"perf\",",
            "\"engine\":{{\"events\":{},\"wall_secs\":{:.6},\"events_per_sec\":{:.1},",
            "\"pre_events_per_sec\":{:.1},\"throughput_ratio\":{:.3},",
            "\"allocs\":{},\"pre_allocs\":{}}},",
            "\"job_allocs\":{{\"bsp\":{},\"bsp_pre\":{},\"allreduce\":{},\"allreduce_pre\":{}}},",
            "\"parallel\":{{\"jobs\":{},\"available_parallelism\":{},",
            "\"wall_serial_secs\":{:.6},\"wall_parallel_secs\":{:.6},\"speedup\":{:.3},",
            "\"all_output_parity\":{},\"chaos_matrix_parity\":{}}}}}\n"
        ),
        micro_events,
        micro_wall,
        micro_eps,
        PRE_PERF.engine_events_per_sec,
        micro_eps / PRE_PERF.engine_events_per_sec,
        micro_allocs.map(|a| a.to_string()).unwrap_or_else(|| "null".into()),
        PRE_PERF.engine_allocs,
        fixture_allocs[0].map(|a| a.to_string()).unwrap_or_else(|| "null".into()),
        PRE_PERF.bsp_job_allocs,
        fixture_allocs[1].map(|a| a.to_string()).unwrap_or_else(|| "null".into()),
        PRE_PERF.allreduce_job_allocs,
        jobs,
        avail,
        wall_ser,
        wall_par,
        speedup,
        all_parity,
        chaos_parity,
    );
    crate::util::write_artifact(&mut out, "BENCH_perf.json", &json);

    assert!(all_parity, "parallel `experiments all` diverged from the serial pass");
    assert!(chaos_parity, "pooled chaos matrix diverged from the serial loops");
    out
}

/// A small but non-trivial chaos matrix (2 plans x 2 policies) drilled twice —
/// pooled and serial — and compared structurally.
fn chaos_matrix_parity() -> bool {
    use antdt_chaos::{ChaosDriver, Fault, FaultPlan, NodeRef};
    let base = JobConfig::ps_bsp(
        antdt_workloads::cluster::cluster_a_scaled(4, 2),
        Scenario::WorkerMix { intensity: 0.5 },
    )
    .with_global_batch(4_096)
    .with_samples(200_000)
    .with_batches_per_shard(10)
    .with_fast_cadence(SimDuration::from_secs(60));
    let driver = ChaosDriver::new(base)
        .with_plan(FaultPlan::new("kill-w1").at(30.0, Fault::KillNode { node: NodeRef::Worker(1) }))
        .with_plan(FaultPlan::new("dds-outage").at(15.0, Fault::DdsOutage { window_secs: 30.0 }))
        .with_policies(vec![MitigationChoice::AntDtNd, MitigationChoice::None]);
    driver.run() == driver.run_serial()
}
