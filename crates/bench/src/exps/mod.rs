//! The experiments: one function per paper artifact. See `registry()` in the
//! crate root for the id ↔ figure mapping and EXPERIMENTS.md for the
//! paper-vs-measured record.
//!
//! Grouped by evaluation section: `motivation` (Figs. 1–9), `nd`
//! (AntDT-ND, Figs. 10–14), `framework` (AntDT-DD + framework properties,
//! Figs. 15–19 and Table III), `ops` (integrity, solver, ablations, chaos,
//! telemetry) and `kernel` (runtime-kernel refactor parity + throughput).

mod attr;
mod ckpt;
mod controlbus;
mod elastic;
mod framework;
mod kernel;
mod motivation;
mod nd;
mod ops;
mod perf;
mod whatif;

pub use attr::attr;
pub use ckpt::ckpt;
pub use controlbus::controlbus;
pub use elastic::elastic;
pub use framework::{fig15, fig16, fig17, fig18, fig19, tab3};
pub use kernel::kernel;
pub use motivation::{fig1, fig2, fig3, fig7, fig8, fig9};
pub use nd::{fig10, fig11, fig12, fig13, fig14};
pub use ops::{ablate, chaos, integrity, solver, telemetry};
pub use perf::perf;
pub use whatif::whatif;

use antdt_controller::DeviceClassSpec;
use antdt_core::JobConfig;
use antdt_sim::SimDuration;
use antdt_workloads::cluster::{cluster_a, cluster_b, cluster_b_with};
use antdt_workloads::{DeviceClass, ModelProfile, Scenario};

// ---------------------------------------------------------------------------
// Shared paper-scale configurations
// ---------------------------------------------------------------------------

/// The paper's headline worker-straggler setting (SleepDuration 1.5 s,
/// intensity 0.8, plus the persistent straggler).
pub(crate) const WORKER_SI: f64 = 0.8;
pub(crate) const SERVER_SI: f64 = 0.8;

/// Criteo-scale XDeepFM job on Cluster-A (§VII-A2): 45M clicks × 3 epochs,
/// B = 81920 (local 4096 on 20 workers).
pub(crate) fn criteo_job(scenario: Scenario) -> JobConfig {
    JobConfig::ps_bsp(cluster_a(), scenario)
        .with_model(ModelProfile::xdeepfm())
        .with_global_batch(81_920)
        .with_samples(45_000_000)
        .with_epochs(3)
        .with_batches_per_shard(100)
}

pub(crate) fn criteo_job_asp(scenario: Scenario) -> JobConfig {
    JobConfig::ps_asp(cluster_a(), scenario)
        .with_model(ModelProfile::xdeepfm())
        .with_global_batch(81_920)
        .with_samples(45_000_000)
        .with_epochs(3)
        .with_batches_per_shard(100)
}

pub(crate) fn dd_classes_for(profile: &ModelProfile) -> Vec<DeviceClassSpec> {
    let v100 = DeviceClass::v100();
    let p100 = DeviceClass::p100();
    vec![
        DeviceClassSpec {
            count: 4,
            c0_secs: profile.compute.c0_secs,
            b_min: v100.saturation_batch,
            b_max: v100.mem_cap_batch,
        },
        DeviceClassSpec {
            count: 4,
            c0_secs: profile.compute.c0_secs,
            b_min: p100.saturation_batch,
            b_max: p100.mem_cap_batch,
        },
    ]
}

/// ImageNet-scale AllReduce job on Cluster-B: 1.28M images, B = 768 (§VII-A2).
pub(crate) fn imagenet_job(profile: ModelProfile, membound: bool) -> JobConfig {
    let cluster = if membound {
        cluster_b_with(DeviceClass::v100(), DeviceClass::p100_membound())
    } else {
        cluster_b()
    };
    JobConfig::allreduce(cluster, Scenario::None)
        .with_model(profile)
        .with_global_batch(768)
        .with_samples(1_281_167)
        .with_epochs(1)
        .with_batches_per_shard(100)
        .with_monitor_tick(SimDuration::from_secs(60))
}

#[cfg(test)]
mod tests {

    #[test]
    fn cheap_experiments_produce_reports() {
        for id in ["fig7", "fig8", "fig17", "solver"] {
            let out = crate::run(id).expect("known id");
            assert!(out.contains(&format!("=== {id}")), "{out}");
            assert!(out.lines().count() > 3);
        }
        assert!(crate::run("nope").is_none());
    }

    #[test]
    fn registry_ids_are_unique() {
        let reg = crate::registry();
        let mut ids: Vec<&str> = reg.iter().map(|(id, _, _)| *id).collect();
        ids.sort_unstable();
        let n = ids.len();
        ids.dedup();
        assert_eq!(n, ids.len());
    }
}
