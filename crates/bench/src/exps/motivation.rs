//! Motivation figures (paper Figs. 1–3 and 7–9): the straggler phenomenon,
//! its JCT cost, and the batch-size/compute-time curves behind the solvers.

use super::WORKER_SI;
use crate::util::{at, header, secs, sparkline, table};
use antdt_core::{DataStrategy, Job, JobConfig, JobReport, MitigationChoice};
use antdt_sim::SimDuration;
use antdt_workloads::cluster::cluster_a;
use antdt_workloads::{DeviceClass, ModelProfile, Scenario};
use std::fmt::Write;

pub fn fig1() -> String {
    let mut out =
        header("fig1", "BPT among workers and servers, non-dedicated CPU cluster (paper Fig. 1)");
    let cfg = JobConfig::ps_asp(
        antdt_workloads::cluster::cluster_a_scaled(6, 4),
        Scenario::MotivationMix,
    )
    .with_model(ModelProfile::xdeepfm())
    .with_global_batch(24_576)
    .with_samples(12_000_000)
    .with_batches_per_shard(50);
    let r = Job::run(cfg);
    let mut rows = vec![vec![
        "node".into(),
        "mean BPT".into(),
        "min".into(),
        "max".into(),
        "trajectory".into(),
    ]];
    for (i, s) in r.worker_bpt.iter().enumerate() {
        rows.push(vec![
            format!("w{i}"),
            format!("{:.2}s", s.mean().unwrap_or(0.0)),
            format!("{:.2}s", s.min().unwrap_or(0.0)),
            format!("{:.2}s", s.max().unwrap_or(0.0)),
            sparkline(s, 40),
        ]);
    }
    for (j, s) in r.server_bpt.iter().enumerate() {
        rows.push(vec![
            format!("ps-{j}"),
            format!("{:.2}s", s.mean().unwrap_or(0.0)),
            format!("{:.2}s", s.min().unwrap_or(0.0)),
            format!("{:.2}s", s.max().unwrap_or(0.0)),
            sparkline(s, 40),
        ]);
    }
    out.push_str(&table(&rows));
    out.push_str("  (w1 transient, w2 persistent, w3 deterministic 3x; ps-3 persistent — as in the paper's cast)\n");
    out
}

pub fn fig2() -> String {
    let mut out =
        header("fig2", "JCT: BSP vs ASP, dedicated vs non-dedicated CPU cluster (paper Fig. 2)");
    // Shorter workload: this figure is about the dedicated/non-dedicated ratio.
    let run = |asp: bool, nondedicated: bool| -> JobReport {
        let scenario = if nondedicated {
            antdt_workloads::straggler::non_dedicated_background()
        } else {
            Scenario::None
        };
        let mk = if asp { JobConfig::ps_asp } else { JobConfig::ps_bsp };
        Job::run(
            mk(cluster_a(), scenario)
                .with_model(ModelProfile::xdeepfm())
                .with_global_batch(81_920)
                .with_samples(15_000_000)
                .with_batches_per_shard(100)
                .with_data_strategy(if asp {
                    DataStrategy::EvenPartition
                } else {
                    DataStrategy::Dds
                }),
        )
    };
    let bsp_d = run(false, false);
    let bsp_n = run(false, true);
    let asp_d = run(true, false);
    let asp_n = run(true, true);
    out.push_str(&table(&[
        vec!["mode".into(), "dedicated".into(), "non-dedicated".into(), "slowdown".into()],
        vec![
            "BSP".into(),
            secs(bsp_d.jct.as_secs_f64()),
            secs(bsp_n.jct.as_secs_f64()),
            format!("{:.1}x", bsp_n.jct.as_secs_f64() / bsp_d.jct.as_secs_f64()),
        ],
        vec![
            "ASP".into(),
            secs(asp_d.jct.as_secs_f64()),
            secs(asp_n.jct.as_secs_f64()),
            format!("{:.1}x", asp_n.jct.as_secs_f64() / asp_d.jct.as_secs_f64()),
        ],
    ]));
    out.push_str("  (paper: non-dedicated is ~4x slower on average in both modes)\n");
    out
}

pub fn fig3() -> String {
    let mut out =
        header("fig3", "Data consumption & local throughput, even-partition ASP (paper Fig. 3)");
    let cfg = JobConfig::ps_asp(cluster_a(), Scenario::WorkerMix { intensity: WORKER_SI })
        .with_model(ModelProfile::xdeepfm())
        .with_global_batch(81_920)
        .with_samples(15_000_000)
        .with_data_strategy(DataStrategy::EvenPartition);
    let n = cfg.n_workers() as u64;
    let share = 15_000_000 / n;
    let r = Job::run(cfg);
    let mut rows =
        vec![vec!["worker".into(), "assigned".into(), "throughput".into(), "finish".into()]];
    for (i, s) in r.worker_bpt.iter().enumerate() {
        let tp = r.worker_batch[i].mean().map(|b| b / s.mean().unwrap_or(1.0)).unwrap_or(0.0);
        rows.push(vec![
            format!("w{i}"),
            format!("{share}"),
            format!("{tp:.0} samp/s"),
            s.last().map(|(t, _)| at(t)).unwrap_or_default(),
        ]);
    }
    out.push_str(&table(&rows));
    out.push_str(&format!(
        "  JCT (decided by slowest worker): {}\n  (equal consumption despite ~unequal throughput — the motivation for DDS)\n",
        secs(r.jct.as_secs_f64())
    ));
    out
}

pub fn fig7() -> String {
    let mut out = header("fig7", "BPT vs batch size, CPU cluster (paper Fig. 7: linear)");
    let c = ModelProfile::xdeepfm().compute;
    let mut rows = vec![vec!["batch".into(), "BPT".into(), "BPT/batch (ms)".into()]];
    for b in [512u64, 1024, 2048, 4096, 8192, 16384] {
        let t = c.time(b, 1.0);
        rows.push(vec![b.to_string(), format!("{t:.3}s"), format!("{:.3}", t / b as f64 * 1e3)]);
    }
    out.push_str(&table(&rows));
    out
}

pub fn fig8() -> String {
    let mut out = header("fig8", "BPT vs batch size, GPU cluster (paper Fig. 8: flat then linear)");
    let c = ModelProfile::resnet101().compute;
    let mut rows = vec![vec!["batch".into(), "V100 BPT".into(), "P100 BPT".into()]];
    for b in [1u64, 2, 4, 8, 16, 32, 64, 96, 112] {
        rows.push(vec![
            b.to_string(),
            format!("{:.3}s", c.time(b, DeviceClass::v100().speed)),
            format!("{:.3}s", c.time(b, DeviceClass::p100().speed)),
        ]);
    }
    out.push_str(&table(&rows));
    out.push_str(&format!(
        "  saturation point B_min = {}, memory cap B_max = {} (V100) / {} (P100)\n",
        DeviceClass::v100().saturation_batch,
        DeviceClass::v100().mem_cap_batch,
        DeviceClass::p100().mem_cap_batch
    ));
    out
}

pub fn fig9() -> String {
    let mut out =
        header("fig9", "Gantt: DDP vs LB-BSP vs AntDT-DD, one sync window (paper Fig. 9)");
    let run = |m: MitigationChoice| {
        let mut cfg = super::imagenet_job(ModelProfile::resnet101(), false)
            .with_samples(768 * 40) // 40 rounds: the policies act around round ~15
            .with_batches_per_shard(2)
            .with_monitor_tick(SimDuration::from_secs(5))
            .with_gantt();
        cfg.agent = antdt_agent::AgentConfig { report_every_iters: 1 };
        if matches!(m, MitigationChoice::AntDtDd) {
            cfg = cfg.with_dd_classes(super::dd_classes_for(&ModelProfile::resnet101()));
        }
        Job::run(cfg.with_mitigation(m))
    };
    for (label, m) in [
        ("DDP", MitigationChoice::None),
        ("LB-BSP", MitigationChoice::LbBsp),
        ("AntDT-DD", MitigationChoice::AntDtDd),
    ] {
        let r = run(m);
        let _ = writeln!(out, "  {label} (JCT {}):", secs(r.jct.as_secs_f64()));
        let g = r.gantt.expect("gantt recorded");
        for line in g.ascii(72).lines() {
            let _ = writeln!(out, "    {line}");
        }
    }
    out.push_str("  legend: # compute, = allreduce, . idle (waiting on stragglers), rows n0-n3 = V100, n4-n7 = P100\n");
    out
}
