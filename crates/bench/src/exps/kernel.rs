//! The runtime-kernel refactor benchmark: JCT/event parity against the
//! pre-refactor monolithic runtimes, event-loop throughput, and the Local-SGD
//! strategy that the `SyncStrategy` seam made a one-file addition.

use crate::util::{header, secs, table};
use antdt_core::{Job, JobConfig, JobReport, MitigationChoice};
use antdt_sim::SimDuration;
use antdt_workloads::cluster::{cluster_a_scaled, cluster_b};
use antdt_workloads::{ModelProfile, Scenario};
use std::fmt::Write;

/// Pre-refactor reference traces, captured from the monolithic
/// `ps.rs`/`allreduce.rs` runtimes (PR 2) on the exact fixture configs of
/// `tests/refactor_equivalence.rs`. The kernel refactor is trace-preserving,
/// so the post-refactor runs must reproduce these numbers bit-for-bit.
pub(crate) const PRE_REFACTOR: [(&str, u64, u64); 4] = [
    // (fixture, jct_micros, events_processed)
    ("bsp", 203_051_583, 354),
    ("asp", 193_935_979, 1_590),
    ("ssp", 370_020_358, 2_133),
    ("allreduce", 306_971_446, 456),
];

fn ps_base(cfg: JobConfig) -> JobConfig {
    cfg.with_model(ModelProfile::xdeepfm())
        .with_global_batch(4_096)
        .with_samples(200_000)
        .with_batches_per_shard(10)
        .with_fast_cadence(SimDuration::from_secs(60))
        .with_seed(11)
}

/// The fixture configs, byte-for-byte the ones behind `tests/golden/*_clean`.
pub(crate) fn fixture(name: &str) -> JobConfig {
    match name {
        "bsp" => ps_base(JobConfig::ps_bsp(
            cluster_a_scaled(4, 2),
            Scenario::WorkerMix { intensity: 1.0 },
        ))
        .with_mitigation(MitigationChoice::AntDtNd),
        "asp" => ps_base(JobConfig::ps_asp(
            cluster_a_scaled(4, 2),
            Scenario::WorkerPersistent { intensity: 0.8 },
        ))
        .with_samples(800_000),
        "ssp" => ps_base(JobConfig::ps_ssp(
            cluster_a_scaled(4, 2),
            Scenario::WorkerTransient { intensity: 0.8 },
            3,
        ))
        .with_samples(800_000),
        "allreduce" => ar_fixture(),
        _ => unreachable!("unknown fixture"),
    }
}

fn ar_fixture() -> JobConfig {
    JobConfig::allreduce(cluster_b(), Scenario::None)
        .with_model(ModelProfile::resnet101())
        .with_global_batch(768)
        .with_samples(345_600)
        .with_batches_per_shard(2)
        .with_fast_cadence(SimDuration::from_secs(60))
        .with_seed(23)
}

/// Same cluster/workload as the AllReduce fixture, but under the Local-SGD
/// strategy with H = 4 local steps per ring sync.
fn local_sgd_fixture(sync_every: u32) -> JobConfig {
    JobConfig::local_sgd(cluster_b(), Scenario::None, sync_every)
        .with_model(ModelProfile::resnet101())
        .with_global_batch(768)
        .with_samples(345_600)
        .with_batches_per_shard(2)
        .with_fast_cadence(SimDuration::from_secs(60))
        .with_seed(23)
}

/// Best-of-`reps` wall time plus the (deterministic) report. Under a frozen
/// wall (`util::freeze_wall`) the reported wall is exactly `0.0`, so report
/// strings stay byte-comparable across parity runs.
pub(crate) fn timed(reps: usize, mk: impl Fn() -> JobConfig) -> (f64, JobReport) {
    let mut best = f64::INFINITY;
    let mut last = None;
    for _ in 0..reps {
        let t0 = std::time::Instant::now();
        let r = Job::run(mk());
        best = best.min(crate::util::elapsed_secs(t0));
        last = Some(r);
    }
    (best, last.expect("reps >= 1"))
}

pub fn kernel() -> String {
    let mut out = header(
        "kernel",
        "Runtime-kernel refactor: JCT/event parity vs the pre-refactor monoliths + throughput",
    );
    const REPS: usize = 3;

    let mut rows = vec![vec![
        "fixture".into(),
        "JCT (sim)".into(),
        "events".into(),
        "pre-refactor".into(),
        "parity".into(),
        "wall".into(),
        "events/s".into(),
    ]];
    let mut json_rows = String::new();
    let mut all_match = true;
    for (name, pre_jct_us, pre_events) in PRE_REFACTOR {
        let (wall, r) = timed(REPS, || fixture(name));
        let jct_us = r.jct.as_micros();
        let events = r.events_processed;
        let parity = jct_us == pre_jct_us && events == pre_events;
        all_match &= parity;
        rows.push(vec![
            name.into(),
            secs(r.jct.as_secs_f64()),
            events.to_string(),
            format!("{:.3}s / {pre_events}", pre_jct_us as f64 / 1e6),
            if parity { "MATCH".into() } else { "DIVERGED".into() },
            format!("{:.4}s", wall),
            format!("{:.0}", events as f64 / wall.max(1e-9)),
        ]);
        let _ = write!(
            json_rows,
            concat!(
                "{{\"fixture\":\"{}\",\"jct_micros\":{},\"events\":{},",
                "\"pre_jct_micros\":{},\"pre_events\":{},\"parity\":{},",
                "\"wall_secs\":{:.6},\"events_per_sec\":{:.1}}},"
            ),
            name,
            jct_us,
            events,
            pre_jct_us,
            pre_events,
            parity,
            wall,
            events as f64 / wall.max(1e-9),
        );
    }
    out.push_str(&table(&rows));
    let _ = writeln!(
        out,
        "  parity: {} (fixed-seed JCT and event counts vs the pre-refactor ps.rs/allreduce.rs)",
        if all_match { "all fixtures MATCH" } else { "DIVERGENCE — see table" }
    );

    // The seam payoff: Local SGD (H local steps per ring sync) on the same
    // workload as the AllReduce fixture. H x fewer communication rounds.
    const H: u32 = 4;
    let (ar_wall, ar) = timed(REPS, ar_fixture);
    let (ls_wall, ls) = timed(REPS, || local_sgd_fixture(H));
    let _ = writeln!(
        out,
        "  local-sgd (H={H}): {} rounds vs allreduce {} rounds, JCT {} vs {}, events {} vs {}",
        ls.iterations,
        ar.iterations,
        secs(ls.jct.as_secs_f64()),
        secs(ar.jct.as_secs_f64()),
        ls.events_processed,
        ar.events_processed,
    );
    assert_eq!(ls.samples_done, ar.samples_done, "both must train the full dataset");
    assert!(
        ls.iterations < ar.iterations,
        "H local steps per sync must need fewer communication rounds"
    );

    // Machine-readable artifact (hand-rendered: the offline serde_json is a stub).
    let json = format!(
        concat!(
            "{{\"experiment\":\"kernel\",\"reps\":{},\"parity\":{},\"fixtures\":[{}],",
            "\"local_sgd\":{{\"sync_every\":{},\"rounds\":{},\"allreduce_rounds\":{},",
            "\"jct_micros\":{},\"allreduce_jct_micros\":{},\"wall_secs\":{:.6},",
            "\"allreduce_wall_secs\":{:.6}}}}}\n"
        ),
        REPS,
        all_match,
        json_rows.trim_end_matches(','),
        H,
        ls.iterations,
        ar.iterations,
        ls.jct.as_micros(),
        ar.jct.as_micros(),
        ls_wall,
        ar_wall,
    );
    crate::util::write_artifact(&mut out, "BENCH_kernel.json", &json);
    out
}
