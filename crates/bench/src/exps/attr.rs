//! The attribution benchmark: what arming the straggler-attribution engine
//! costs, and whether its blame scores survive counterfactual replay.
//!
//! Three sections:
//!
//! 1. **Overhead** — the same seeded straggler job with attribution off vs
//!    on. The engine adds zero events and zero RNG draws, so the simulated
//!    schedule is identical; the wall-time delta is the ledger bookkeeping.
//! 2. **Blame** — the per-node ranking of the attribution-on run.
//! 3. **Counterfactuals** — the three stock perturbations replayed through
//!    [`antdt_core::what_if_table_forked`]; measured JCT deltas sit next to the
//!    analytical predictions, and the `healthy_node` agreement percentage is
//!    the headline number (the job-level test ratchets it at 15%).

use super::kernel::timed;
use crate::util::{header, secs, table};
use antdt_core::{JobConfig, MitigationChoice, Perturbation};
use antdt_sim::SimDuration;
use antdt_workloads::cluster::cluster_a_scaled;
use antdt_workloads::{ModelProfile, Scenario};
use std::fmt::Write;

/// An unmitigated BSP job with one persistent straggler (the scenario pins
/// the contention phases on the last worker), mid-size so the wall-time
/// overhead measurement has something to chew on.
fn base() -> JobConfig {
    JobConfig::ps_bsp(cluster_a_scaled(8, 3), Scenario::WorkerPersistent { intensity: 1.0 })
        .with_model(ModelProfile::xdeepfm())
        .with_global_batch(8_192)
        .with_samples(1_000_000)
        .with_batches_per_shard(10)
        .with_fast_cadence(SimDuration::from_secs(60))
        .with_seed(31)
        .with_mitigation(MitigationChoice::None)
}

pub fn attr() -> String {
    let mut out = header(
        "attr",
        "Attribution engine: overhead off vs on, blame ranking, counterfactual validation",
    );
    const REPS: usize = 3;

    // ---- 1. Overhead: identical schedule, ledger bookkeeping on top.
    let (wall_off, off) = timed(REPS, base);
    let (wall_on, on) = timed(REPS, || base().with_attribution());
    assert_eq!(off.jct, on.jct, "attribution must not perturb the schedule");
    let overhead_frac = if wall_off > 0.0 { (wall_on - wall_off) / wall_off } else { 0.0 };
    let _ = writeln!(
        out,
        "  overhead: off {:.4}s, on {:.4}s ({:+.1}% wall; simulated JCT identical at {})",
        wall_off,
        wall_on,
        overhead_frac * 100.0,
        secs(on.jct.as_secs_f64()),
    );

    // ---- 2. Blame ranking.
    let attr = on.attr.as_ref().expect("attribution armed");
    let mut rows = vec![vec![
        "node".into(),
        "crit".into(),
        "excess".into(),
        "score".into(),
        "share of JCT".into(),
    ]];
    for b in attr.blame.iter().take(5) {
        rows.push(vec![
            format!("n{}", b.node),
            secs(b.crit_us as f64 / 1e6),
            secs(b.excess_us as f64 / 1e6),
            secs(b.score_us as f64 / 1e6),
            format!("{:.1}%", 100.0 * b.score_us as f64 / attr.end_us.max(1) as f64),
        ]);
    }
    out.push_str(&table(&rows));

    // ---- 3. Counterfactual replay: the three stock perturbations.
    let top = attr.blame[0].node;
    let perturbations = [
        Perturbation::HealthyNode(top),
        Perturbation::ZeroControlLatency,
        Perturbation::NoCkptStalls,
    ];
    let cfg = base().with_attribution();
    let (cf, fork_stats) = antdt_core::what_if_table_forked(&cfg, &on, &perturbations);
    let mut rows = vec![vec![
        "perturbation".into(),
        "predicted".into(),
        "measured".into(),
        "agreement".into(),
    ]];
    let mut json_rows = String::new();
    let mut healthy_agreement = 0.0;
    for row in &cf {
        let predicted = row.predicted_delta_us as f64 / 1e6;
        let measured = row.measured_delta_us as f64 / 1e6;
        // Agreement: 100% when measured == predicted; undefined (rendered
        // "-") when both are ~0 (nothing to recover, nothing recovered).
        let agreement = if row.predicted_delta_us == 0 && row.measured_delta_us.abs() < 1_000 {
            None
        } else {
            let denom = measured.abs().max(predicted.abs()).max(1e-9);
            Some(100.0 * (1.0 - (measured - predicted).abs() / denom))
        };
        if row.label.starts_with("healthy_node") {
            healthy_agreement = agreement.unwrap_or(0.0);
        }
        rows.push(vec![
            row.label.clone(),
            secs(predicted),
            secs(measured),
            agreement.map_or_else(|| "-".into(), |a| format!("{a:.1}%")),
        ]);
        let _ = write!(
            json_rows,
            concat!(
                "{{\"label\":\"{}\",\"predicted_delta_us\":{},\"measured_delta_us\":{},",
                "\"base_jct_us\":{},\"what_if_jct_us\":{}}},"
            ),
            row.label,
            row.predicted_delta_us,
            row.measured_delta_us,
            row.base_jct_us,
            row.what_if_jct_us,
        );
    }
    out.push_str(&table(&rows));
    let _ = writeln!(
        out,
        "  replay: {} forked / {} full reruns ({:.0}% of forked events inherited from \
         the shared prefix)",
        fork_stats.forked,
        fork_stats.full_reruns,
        fork_stats.prefix_share() * 100.0,
    );
    let _ = writeln!(
        out,
        "  top-blamed n{top}: blame predicts the JCT recovered by healing it \
         ({healthy_agreement:.1}% agreement; the job-level test ratchets this at 85%+)"
    );

    // Machine-readable artifact (hand-rendered: the offline serde_json is a stub).
    let json = format!(
        concat!(
            "{{\"experiment\":\"attr\",\"reps\":{},\"wall_off_secs\":{:.6},",
            "\"wall_on_secs\":{:.6},\"overhead_frac\":{:.6},\"jct_micros\":{},",
            "\"top_blamed\":{},\"healthy_agreement_pct\":{:.2},\"counterfactuals\":[{}]}}\n"
        ),
        REPS,
        wall_off,
        wall_on,
        overhead_frac,
        on.jct.as_micros(),
        top,
        healthy_agreement,
        json_rows.trim_end_matches(','),
    );
    crate::util::write_artifact(&mut out, "BENCH_attr.json", &json);
    out
}
