//! Q1 — AntDT-ND on the non-dedicated CPU cluster (paper Figs. 10–14).

use super::{criteo_job, criteo_job_asp, SERVER_SI, WORKER_SI};
use crate::util::{at, header, secs, series_line, sparkline, table};
use antdt_core::{DataStrategy, Job, JobReport, MitigationChoice};
use antdt_workloads::straggler::straggler_server_index;
use antdt_workloads::Scenario;
use std::fmt::Write;

fn fig10_runs(worker_side: bool) -> Vec<(&'static str, JobReport)> {
    let scenario = if worker_side {
        Scenario::WorkerMix { intensity: WORKER_SI }
    } else {
        Scenario::ServerPersistent { intensity: SERVER_SI }
    };
    // Four independent runs of the same scenario under different mitigations:
    // fan them out on the experiment pool (order-preserving, so the table and
    // the AntDT baseline row are unchanged).
    let methods = vec![
        ("BSP", MitigationChoice::None),
        ("Backup Workers", MitigationChoice::BackupWorkers { b: 2 }),
        ("LB-BSP", MitigationChoice::LbBsp),
        ("AntDT-ND", MitigationChoice::AntDtNd),
    ];
    antdt_par::par_map(methods, |(name, m)| {
        (name, Job::run(criteo_job(scenario).with_mitigation(m)))
    })
}

fn jct_table(runs: &[(&str, JobReport)]) -> String {
    let base = runs.last().expect("runs").1.jct.as_secs_f64(); // AntDT row
    let mut rows = vec![vec!["method".into(), "JCT".into(), "vs AntDT".into(), "kills".into()]];
    for (name, r) in runs {
        rows.push(vec![
            (*name).into(),
            secs(r.jct.as_secs_f64()),
            format!("{:.2}x", r.jct.as_secs_f64() / base),
            r.n_kills().to_string(),
        ]);
    }
    table(&rows)
}

pub fn fig10() -> String {
    let mut out = header("fig10", "JCT in BSP training (paper Fig. 10)");
    out.push_str("  worker stragglers (black bars):\n");
    out.push_str(&jct_table(&fig10_runs(true)));
    out.push_str("  server stragglers (red bars):\n");
    out.push_str(&jct_table(&fig10_runs(false)));
    out
}

fn fig11_runs(worker_side: bool) -> Vec<(&'static str, JobReport)> {
    let scenario = if worker_side {
        Scenario::WorkerMix { intensity: WORKER_SI }
    } else {
        Scenario::ServerPersistent { intensity: SERVER_SI }
    };
    let configs = vec![
        ("ASP", criteo_job_asp(scenario).with_data_strategy(DataStrategy::EvenPartition)),
        ("ASP-DDS", criteo_job_asp(scenario)),
        ("AntDT-ND", criteo_job_asp(scenario).with_mitigation(MitigationChoice::AntDtNdAsp)),
    ];
    antdt_par::par_map(configs, |(name, cfg)| (name, Job::run(cfg)))
}

pub fn fig11() -> String {
    let mut out = header("fig11", "JCT in ASP training (paper Fig. 11)");
    out.push_str("  worker stragglers (black bars):\n");
    out.push_str(&jct_table(&fig11_runs(true)));
    out.push_str("  server stragglers (red bars):\n");
    out.push_str(&jct_table(&fig11_runs(false)));
    out
}

fn nd_worker_run() -> JobReport {
    Job::run(
        criteo_job(Scenario::WorkerMix { intensity: WORKER_SI })
            .with_mitigation(MitigationChoice::AntDtNd),
    )
}

pub fn fig12() -> String {
    let mut out = header("fig12", "Batch-size adjustment among workers, AntDT-ND (paper Fig. 12)");
    let r = nd_worker_run();
    let straggler = r.worker_batch.len() - 1; // persistent_worker_index
    for i in [0usize, 5, 10, straggler] {
        let _ = writeln!(
            out,
            "  w{i}{}: {}",
            if i == straggler { " (persistent straggler)" } else { "" },
            series_line(&r.worker_batch[i], 10, "")
        );
    }
    let _ = writeln!(
        out,
        "  actions: {} AdjustBs, {} KillRestart",
        r.actions
            .iter()
            .filter(|(_, a)| matches!(a, antdt_controller::Action::AdjustBs { .. }))
            .count(),
        r.kills.len()
    );
    out
}

pub fn fig13() -> String {
    let mut out = header("fig13", "Worker BPT under AntDT-ND (paper Fig. 13)");
    let r = nd_worker_run();
    let straggler = r.worker_bpt.len() - 1;
    for i in [0usize, 5, 10, straggler] {
        let _ = writeln!(
            out,
            "  w{i}{}: {}  {}",
            if i == straggler { " (straggler, kill-restarted)" } else { "" },
            sparkline(&r.worker_bpt[i], 40),
            series_line(&r.worker_bpt[i], 6, "s")
        );
    }
    if let Some((t, n)) = r.kills.first() {
        let _ = writeln!(out, "  first KILL_RESTART: {n} at {}", at(*t));
    }
    out
}

pub fn fig14() -> String {
    let mut out = header(
        "fig14",
        "Slow-server BPT and global throughput around KILL_RESTART (paper Fig. 14)",
    );
    let cfg = criteo_job(Scenario::ServerPersistent { intensity: SERVER_SI })
        .with_mitigation(MitigationChoice::AntDtNd);
    let sj = straggler_server_index(&cfg.cluster);
    let r = Job::run(cfg);
    let _ = writeln!(out, "  ps-{sj} BPT:      {}", sparkline(&r.server_bpt[sj], 50));
    let _ = writeln!(out, "  global samp/s: {}", sparkline(&r.global_throughput, 50));
    let _ = writeln!(
        out,
        "  ps-{sj} mean BPT before/after restart: {} / {}",
        r.kills
            .first()
            .and_then(|(t, _)| r.server_bpt[sj].mean_in(antdt_sim::SimTime::ZERO, *t))
            .map(|v| format!("{v:.2}s"))
            .unwrap_or_default(),
        r.restarts
            .first()
            .and_then(|(t, _)| r.server_bpt[sj].mean_in(*t, antdt_sim::SimTime::MAX))
            .map(|v| format!("{v:.2}s"))
            .unwrap_or_default(),
    );
    for (t, n) in r.kills.iter().chain(r.restarts.iter()) {
        let _ = writeln!(out, "  event: {n} at {}", at(*t));
    }
    let _ = writeln!(out, "  JCT: {}", secs(r.jct.as_secs_f64()));
    out
}
