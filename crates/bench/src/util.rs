//! Formatting helpers for the experiment reports, plus the *frozen wall*
//! switch that makes report strings byte-comparable across runs.

use antdt_sim::{SimTime, TimeSeries};
use std::fmt::Write;
use std::sync::atomic::{AtomicBool, Ordering};

/// When set, stopwatch readings render as `0.0` and artifact files are not
/// written (both sides print the identical "skipped" line instead). The perf
/// harness and the parity tests freeze the wall so a serial and a parallel
/// `run("all")` produce byte-identical strings — wall time is the only
/// nondeterministic ingredient in any report.
static WALL_FROZEN: AtomicBool = AtomicBool::new(false);

/// Whether the wall clock is currently frozen (see [`freeze_wall`]).
pub fn wall_frozen() -> bool {
    WALL_FROZEN.load(Ordering::Relaxed)
}

/// Run `f` with the wall clock frozen. The flag is global (worker threads of
/// the experiment pool must observe it), so frozen sections should not be run
/// concurrently with sections that want real timings.
pub fn freeze_wall<R>(f: impl FnOnce() -> R) -> R {
    struct Unfreeze;
    impl Drop for Unfreeze {
        fn drop(&mut self) {
            WALL_FROZEN.store(false, Ordering::Relaxed);
        }
    }
    WALL_FROZEN.store(true, Ordering::Relaxed);
    let _guard = Unfreeze;
    f()
}

/// Stopwatch reading honoring the frozen wall: elapsed seconds since `t0`,
/// or exactly `0.0` while frozen.
pub fn elapsed_secs(t0: std::time::Instant) -> f64 {
    if wall_frozen() {
        0.0
    } else {
        t0.elapsed().as_secs_f64()
    }
}

/// Write a machine-readable artifact under `target/`, appending the outcome
/// line to `out`. Under a frozen wall the write is skipped and a fixed line is
/// printed instead, so parity runs stay byte-identical without racing on the
/// filesystem.
pub fn write_artifact(out: &mut String, filename: &str, json: &str) {
    if wall_frozen() {
        let _ = writeln!(out, "  skipped writing target/{filename} (frozen wall: parity run)");
        return;
    }
    let _ = std::fs::create_dir_all("target");
    let path = std::path::Path::new("target").join(filename);
    match std::fs::write(&path, json) {
        Ok(()) => {
            let _ = writeln!(out, "  wrote {}", path.display());
        }
        Err(e) => {
            let _ = writeln!(out, "  could not write {}: {e}", path.display());
        }
    }
}

/// Section header.
pub fn header(id: &str, title: &str) -> String {
    format!("\n=== {id}: {title} ===\n")
}

/// A simple aligned table: `rows` of equal arity, first row is the header.
pub fn table(rows: &[Vec<String>]) -> String {
    if rows.is_empty() {
        return String::new();
    }
    let cols = rows[0].len();
    let mut widths = vec![0usize; cols];
    for r in rows {
        for (c, cell) in r.iter().enumerate() {
            widths[c] = widths[c].max(cell.len());
        }
    }
    let mut out = String::new();
    for (i, r) in rows.iter().enumerate() {
        let line: Vec<String> =
            r.iter().enumerate().map(|(c, cell)| format!("{:<w$}", cell, w = widths[c])).collect();
        let _ = writeln!(out, "  {}", line.join("  "));
        if i == 0 {
            let _ = writeln!(
                out,
                "  {}",
                widths.iter().map(|w| "-".repeat(*w)).collect::<Vec<_>>().join("  ")
            );
        }
    }
    out
}

pub fn secs(s: f64) -> String {
    format!("{s:.1}s")
}

pub fn pct(x: f64) -> String {
    format!("{:+.1}%", x * 100.0)
}

/// Render a downsampled series as `t:v` pairs.
pub fn series_line(s: &TimeSeries, buckets: usize, unit: &str) -> String {
    s.downsample(buckets)
        .iter()
        .map(|&(t, v)| format!("{:.0}s:{v:.2}{unit}", t.as_secs_f64()))
        .collect::<Vec<_>>()
        .join("  ")
}

/// A crude sparkline over the series values.
pub fn sparkline(s: &TimeSeries, buckets: usize) -> String {
    const GLYPHS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let pts = s.downsample(buckets);
    if pts.is_empty() {
        return String::new();
    }
    let lo = pts.iter().map(|&(_, v)| v).fold(f64::INFINITY, f64::min);
    let hi = pts.iter().map(|&(_, v)| v).fold(f64::NEG_INFINITY, f64::max);
    let span = (hi - lo).max(1e-12);
    pts.iter().map(|&(_, v)| GLYPHS[(((v - lo) / span) * 7.0).round() as usize]).collect()
}

/// Format a sim instant compactly.
pub fn at(t: SimTime) -> String {
    format!("{:.0}s", t.as_secs_f64())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns_columns() {
        let t = table(&[
            vec!["method".into(), "jct".into()],
            vec!["BSP".into(), "8144s".into()],
            vec!["AntDT-ND".into(), "3982s".into()],
        ]);
        assert!(t.contains("method"));
        assert!(t.contains("--------"));
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
    }

    #[test]
    fn sparkline_spans_glyphs() {
        let mut s = TimeSeries::new();
        for i in 0..16 {
            s.push(SimTime::from_secs_f64(i as f64), i as f64);
        }
        let sp = sparkline(&s, 8);
        assert_eq!(sp.chars().count(), 8);
        assert!(sp.starts_with('▁'));
        assert!(sp.ends_with('█'));
        assert_eq!(sparkline(&TimeSeries::new(), 4), "");
    }

    #[test]
    fn pct_formats_sign() {
        assert_eq!(pct(0.275), "+27.5%");
        assert_eq!(pct(-0.10), "-10.0%");
    }
}
