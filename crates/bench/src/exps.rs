//! The experiments: one function per paper artifact. See `registry()` in the
//! crate root for the id ↔ figure mapping and EXPERIMENTS.md for the
//! paper-vs-measured record.

use crate::util::{at, header, pct, secs, series_line, sparkline, table};
use antdt_controller::solve::AffineCost;
use antdt_controller::{
    grad_accum_allocation, minmax_batch_allocation, DeviceClassSpec, Eq4Class, Eq4Config,
};
use antdt_core::failover::fig17_curve;
use antdt_core::fleet::{self, FleetConfig, FleetMethod};
use antdt_core::{DataStrategy, ExecutionMode, Job, JobConfig, JobReport, MitigationChoice};
use antdt_sim::{series::mean_std, SimDuration};
use antdt_workloads::cluster::{cluster_a, cluster_b, cluster_b_with, cluster_c, ClusterSize};
use antdt_workloads::straggler::straggler_server_index;
use antdt_workloads::{ctr, CtrConfig, DeviceClass, ModelProfile, Scenario};
use std::fmt::Write;

// ---------------------------------------------------------------------------
// Shared paper-scale configurations
// ---------------------------------------------------------------------------

/// Criteo-scale XDeepFM job on Cluster-A (§VII-A2): 45M clicks × 3 epochs,
/// B = 81920 (local 4096 on 20 workers).
fn criteo_job(scenario: Scenario) -> JobConfig {
    JobConfig::ps_bsp(cluster_a(), scenario)
        .with_model(ModelProfile::xdeepfm())
        .with_global_batch(81_920)
        .with_samples(45_000_000)
        .with_epochs(3)
        .with_batches_per_shard(100)
}

fn criteo_job_asp(scenario: Scenario) -> JobConfig {
    JobConfig::ps_asp(cluster_a(), scenario)
        .with_model(ModelProfile::xdeepfm())
        .with_global_batch(81_920)
        .with_samples(45_000_000)
        .with_epochs(3)
        .with_batches_per_shard(100)
}

/// The paper's headline worker-straggler setting (SleepDuration 1.5 s,
/// intensity 0.8, plus the persistent straggler).
const WORKER_SI: f64 = 0.8;
const SERVER_SI: f64 = 0.8;

fn dd_classes_for(profile: &ModelProfile) -> Vec<DeviceClassSpec> {
    let v100 = DeviceClass::v100();
    let p100 = DeviceClass::p100();
    vec![
        DeviceClassSpec {
            count: 4,
            c0_secs: profile.compute.c0_secs,
            b_min: v100.saturation_batch,
            b_max: v100.mem_cap_batch,
        },
        DeviceClassSpec {
            count: 4,
            c0_secs: profile.compute.c0_secs,
            b_min: p100.saturation_batch,
            b_max: p100.mem_cap_batch,
        },
    ]
}

/// ImageNet-scale AllReduce job on Cluster-B: 1.28M images, B = 768 (§VII-A2).
fn imagenet_job(profile: ModelProfile, membound: bool) -> JobConfig {
    let cluster = if membound {
        cluster_b_with(DeviceClass::v100(), DeviceClass::p100_membound())
    } else {
        cluster_b()
    };
    JobConfig::allreduce(cluster, Scenario::None)
        .with_model(profile)
        .with_global_batch(768)
        .with_samples(1_281_167)
        .with_epochs(1)
        .with_batches_per_shard(100)
        .with_monitor_tick(SimDuration::from_secs(60))
}

// ---------------------------------------------------------------------------
// Motivation figures
// ---------------------------------------------------------------------------

pub fn fig1() -> String {
    let mut out =
        header("fig1", "BPT among workers and servers, non-dedicated CPU cluster (paper Fig. 1)");
    let cfg = JobConfig::ps_asp(
        antdt_workloads::cluster::cluster_a_scaled(6, 4),
        Scenario::MotivationMix,
    )
    .with_model(ModelProfile::xdeepfm())
    .with_global_batch(24_576)
    .with_samples(12_000_000)
    .with_batches_per_shard(50);
    let r = Job::run(cfg);
    let mut rows = vec![vec![
        "node".into(),
        "mean BPT".into(),
        "min".into(),
        "max".into(),
        "trajectory".into(),
    ]];
    for (i, s) in r.worker_bpt.iter().enumerate() {
        rows.push(vec![
            format!("w{i}"),
            format!("{:.2}s", s.mean().unwrap_or(0.0)),
            format!("{:.2}s", s.min().unwrap_or(0.0)),
            format!("{:.2}s", s.max().unwrap_or(0.0)),
            sparkline(s, 40),
        ]);
    }
    for (j, s) in r.server_bpt.iter().enumerate() {
        rows.push(vec![
            format!("ps-{j}"),
            format!("{:.2}s", s.mean().unwrap_or(0.0)),
            format!("{:.2}s", s.min().unwrap_or(0.0)),
            format!("{:.2}s", s.max().unwrap_or(0.0)),
            sparkline(s, 40),
        ]);
    }
    out.push_str(&table(&rows));
    out.push_str("  (w1 transient, w2 persistent, w3 deterministic 3x; ps-3 persistent — as in the paper's cast)\n");
    out
}

pub fn fig2() -> String {
    let mut out =
        header("fig2", "JCT: BSP vs ASP, dedicated vs non-dedicated CPU cluster (paper Fig. 2)");
    // Shorter workload: this figure is about the dedicated/non-dedicated ratio.
    let run = |asp: bool, nondedicated: bool| -> JobReport {
        let scenario = if nondedicated {
            antdt_workloads::straggler::non_dedicated_background()
        } else {
            Scenario::None
        };
        let mk = if asp { JobConfig::ps_asp } else { JobConfig::ps_bsp };
        Job::run(
            mk(cluster_a(), scenario)
                .with_model(ModelProfile::xdeepfm())
                .with_global_batch(81_920)
                .with_samples(15_000_000)
                .with_batches_per_shard(100)
                .with_data_strategy(if asp {
                    DataStrategy::EvenPartition
                } else {
                    DataStrategy::Dds
                }),
        )
    };
    let bsp_d = run(false, false);
    let bsp_n = run(false, true);
    let asp_d = run(true, false);
    let asp_n = run(true, true);
    out.push_str(&table(&[
        vec!["mode".into(), "dedicated".into(), "non-dedicated".into(), "slowdown".into()],
        vec![
            "BSP".into(),
            secs(bsp_d.jct.as_secs_f64()),
            secs(bsp_n.jct.as_secs_f64()),
            format!("{:.1}x", bsp_n.jct.as_secs_f64() / bsp_d.jct.as_secs_f64()),
        ],
        vec![
            "ASP".into(),
            secs(asp_d.jct.as_secs_f64()),
            secs(asp_n.jct.as_secs_f64()),
            format!("{:.1}x", asp_n.jct.as_secs_f64() / asp_d.jct.as_secs_f64()),
        ],
    ]));
    out.push_str("  (paper: non-dedicated is ~4x slower on average in both modes)\n");
    out
}

pub fn fig3() -> String {
    let mut out =
        header("fig3", "Data consumption & local throughput, even-partition ASP (paper Fig. 3)");
    let cfg = JobConfig::ps_asp(cluster_a(), Scenario::WorkerMix { intensity: WORKER_SI })
        .with_model(ModelProfile::xdeepfm())
        .with_global_batch(81_920)
        .with_samples(15_000_000)
        .with_data_strategy(DataStrategy::EvenPartition);
    let n = cfg.n_workers() as u64;
    let share = 15_000_000 / n;
    let r = Job::run(cfg);
    let mut rows =
        vec![vec!["worker".into(), "assigned".into(), "throughput".into(), "finish".into()]];
    for (i, s) in r.worker_bpt.iter().enumerate() {
        let tp = r.worker_batch[i].mean().map(|b| b / s.mean().unwrap_or(1.0)).unwrap_or(0.0);
        rows.push(vec![
            format!("w{i}"),
            format!("{share}"),
            format!("{tp:.0} samp/s"),
            s.last().map(|(t, _)| at(t)).unwrap_or_default(),
        ]);
    }
    out.push_str(&table(&rows));
    out.push_str(&format!(
        "  JCT (decided by slowest worker): {}\n  (equal consumption despite ~unequal throughput — the motivation for DDS)\n",
        secs(r.jct.as_secs_f64())
    ));
    out
}

pub fn fig7() -> String {
    let mut out = header("fig7", "BPT vs batch size, CPU cluster (paper Fig. 7: linear)");
    let c = ModelProfile::xdeepfm().compute;
    let mut rows = vec![vec!["batch".into(), "BPT".into(), "BPT/batch (ms)".into()]];
    for b in [512u64, 1024, 2048, 4096, 8192, 16384] {
        let t = c.time(b, 1.0);
        rows.push(vec![b.to_string(), format!("{t:.3}s"), format!("{:.3}", t / b as f64 * 1e3)]);
    }
    out.push_str(&table(&rows));
    out
}

pub fn fig8() -> String {
    let mut out = header("fig8", "BPT vs batch size, GPU cluster (paper Fig. 8: flat then linear)");
    let c = ModelProfile::resnet101().compute;
    let mut rows = vec![vec!["batch".into(), "V100 BPT".into(), "P100 BPT".into()]];
    for b in [1u64, 2, 4, 8, 16, 32, 64, 96, 112] {
        rows.push(vec![
            b.to_string(),
            format!("{:.3}s", c.time(b, DeviceClass::v100().speed)),
            format!("{:.3}s", c.time(b, DeviceClass::p100().speed)),
        ]);
    }
    out.push_str(&table(&rows));
    out.push_str(&format!(
        "  saturation point B_min = {}, memory cap B_max = {} (V100) / {} (P100)\n",
        DeviceClass::v100().saturation_batch,
        DeviceClass::v100().mem_cap_batch,
        DeviceClass::p100().mem_cap_batch
    ));
    out
}

pub fn fig9() -> String {
    let mut out =
        header("fig9", "Gantt: DDP vs LB-BSP vs AntDT-DD, one sync window (paper Fig. 9)");
    let run = |m: MitigationChoice| {
        let mut cfg = imagenet_job(ModelProfile::resnet101(), false)
            .with_samples(768 * 40) // 40 rounds: the policies act around round ~15
            .with_batches_per_shard(2)
            .with_monitor_tick(SimDuration::from_secs(5))
            .with_gantt();
        cfg.agent = antdt_agent::AgentConfig { report_every_iters: 1 };
        if matches!(m, MitigationChoice::AntDtDd) {
            cfg = cfg.with_dd_classes(dd_classes_for(&ModelProfile::resnet101()));
        }
        Job::run(cfg.with_mitigation(m))
    };
    for (label, m) in [
        ("DDP", MitigationChoice::None),
        ("LB-BSP", MitigationChoice::LbBsp),
        ("AntDT-DD", MitigationChoice::AntDtDd),
    ] {
        let r = run(m);
        let _ = writeln!(out, "  {label} (JCT {}):", secs(r.jct.as_secs_f64()));
        let g = r.gantt.expect("gantt recorded");
        for line in g.ascii(72).lines() {
            let _ = writeln!(out, "    {line}");
        }
    }
    out.push_str("  legend: # compute, = allreduce, . idle (waiting on stragglers), rows n0-n3 = V100, n4-n7 = P100\n");
    out
}

// ---------------------------------------------------------------------------
// Q1: AntDT-ND
// ---------------------------------------------------------------------------

fn fig10_runs(worker_side: bool) -> Vec<(&'static str, JobReport)> {
    let scenario = if worker_side {
        Scenario::WorkerMix { intensity: WORKER_SI }
    } else {
        Scenario::ServerPersistent { intensity: SERVER_SI }
    };
    vec![
        ("BSP", Job::run(criteo_job(scenario))),
        (
            "Backup Workers",
            Job::run(
                criteo_job(scenario).with_mitigation(MitigationChoice::BackupWorkers { b: 2 }),
            ),
        ),
        ("LB-BSP", Job::run(criteo_job(scenario).with_mitigation(MitigationChoice::LbBsp))),
        ("AntDT-ND", Job::run(criteo_job(scenario).with_mitigation(MitigationChoice::AntDtNd))),
    ]
}

fn jct_table(runs: &[(&str, JobReport)]) -> String {
    let base = runs.last().expect("runs").1.jct.as_secs_f64(); // AntDT row
    let mut rows = vec![vec!["method".into(), "JCT".into(), "vs AntDT".into(), "kills".into()]];
    for (name, r) in runs {
        rows.push(vec![
            (*name).into(),
            secs(r.jct.as_secs_f64()),
            format!("{:.2}x", r.jct.as_secs_f64() / base),
            r.n_kills().to_string(),
        ]);
    }
    table(&rows)
}

pub fn fig10() -> String {
    let mut out = header("fig10", "JCT in BSP training (paper Fig. 10)");
    out.push_str("  worker stragglers (black bars):\n");
    out.push_str(&jct_table(&fig10_runs(true)));
    out.push_str("  server stragglers (red bars):\n");
    out.push_str(&jct_table(&fig10_runs(false)));
    out
}

fn fig11_runs(worker_side: bool) -> Vec<(&'static str, JobReport)> {
    let scenario = if worker_side {
        Scenario::WorkerMix { intensity: WORKER_SI }
    } else {
        Scenario::ServerPersistent { intensity: SERVER_SI }
    };
    vec![
        ("ASP", Job::run(criteo_job_asp(scenario).with_data_strategy(DataStrategy::EvenPartition))),
        ("ASP-DDS", Job::run(criteo_job_asp(scenario))),
        (
            "AntDT-ND",
            Job::run(criteo_job_asp(scenario).with_mitigation(MitigationChoice::AntDtNdAsp)),
        ),
    ]
}

pub fn fig11() -> String {
    let mut out = header("fig11", "JCT in ASP training (paper Fig. 11)");
    out.push_str("  worker stragglers (black bars):\n");
    out.push_str(&jct_table(&fig11_runs(true)));
    out.push_str("  server stragglers (red bars):\n");
    out.push_str(&jct_table(&fig11_runs(false)));
    out
}

fn nd_worker_run() -> JobReport {
    Job::run(
        criteo_job(Scenario::WorkerMix { intensity: WORKER_SI })
            .with_mitigation(MitigationChoice::AntDtNd),
    )
}

pub fn fig12() -> String {
    let mut out = header("fig12", "Batch-size adjustment among workers, AntDT-ND (paper Fig. 12)");
    let r = nd_worker_run();
    let straggler = r.worker_batch.len() - 1; // persistent_worker_index
    for i in [0usize, 5, 10, straggler] {
        let _ = writeln!(
            out,
            "  w{i}{}: {}",
            if i == straggler { " (persistent straggler)" } else { "" },
            series_line(&r.worker_batch[i], 10, "")
        );
    }
    let _ = writeln!(
        out,
        "  actions: {} AdjustBs, {} KillRestart",
        r.actions
            .iter()
            .filter(|(_, a)| matches!(a, antdt_controller::Action::AdjustBs { .. }))
            .count(),
        r.kills.len()
    );
    out
}

pub fn fig13() -> String {
    let mut out = header("fig13", "Worker BPT under AntDT-ND (paper Fig. 13)");
    let r = nd_worker_run();
    let straggler = r.worker_bpt.len() - 1;
    for i in [0usize, 5, 10, straggler] {
        let _ = writeln!(
            out,
            "  w{i}{}: {}  {}",
            if i == straggler { " (straggler, kill-restarted)" } else { "" },
            sparkline(&r.worker_bpt[i], 40),
            series_line(&r.worker_bpt[i], 6, "s")
        );
    }
    if let Some((t, n)) = r.kills.first() {
        let _ = writeln!(out, "  first KILL_RESTART: {n} at {}", at(*t));
    }
    out
}

pub fn fig14() -> String {
    let mut out = header(
        "fig14",
        "Slow-server BPT and global throughput around KILL_RESTART (paper Fig. 14)",
    );
    let cfg = criteo_job(Scenario::ServerPersistent { intensity: SERVER_SI })
        .with_mitigation(MitigationChoice::AntDtNd);
    let sj = straggler_server_index(&cfg.cluster);
    let r = Job::run(cfg);
    let _ = writeln!(out, "  ps-{sj} BPT:      {}", sparkline(&r.server_bpt[sj], 50));
    let _ = writeln!(out, "  global samp/s: {}", sparkline(&r.global_throughput, 50));
    let _ = writeln!(
        out,
        "  ps-{sj} mean BPT before/after restart: {} / {}",
        r.kills
            .first()
            .and_then(|(t, _)| r.server_bpt[sj].mean_in(antdt_sim::SimTime::ZERO, *t))
            .map(|v| format!("{v:.2}s"))
            .unwrap_or_default(),
        r.restarts
            .first()
            .and_then(|(t, _)| r.server_bpt[sj].mean_in(*t, antdt_sim::SimTime::MAX))
            .map(|v| format!("{v:.2}s"))
            .unwrap_or_default(),
    );
    for (t, n) in r.kills.iter().chain(r.restarts.iter()) {
        let _ = writeln!(out, "  event: {n} at {}", at(*t));
    }
    let _ = writeln!(out, "  JCT: {}", secs(r.jct.as_secs_f64()));
    out
}

// ---------------------------------------------------------------------------
// Q2: AntDT-DD
// ---------------------------------------------------------------------------

pub fn fig15() -> String {
    let mut out = header("fig15", "JCT on mixed V100+P100 GPUs (paper Fig. 15)");
    for (model, membound) in
        [(ModelProfile::resnet101(), false), (ModelProfile::mobilenets(), true)]
    {
        let name = model.name;
        let ddp = Job::run(imagenet_job(model.clone(), membound));
        let lb = Job::run(
            imagenet_job(model.clone(), membound).with_mitigation(MitigationChoice::LbBsp),
        );
        let dd = Job::run(
            imagenet_job(model.clone(), membound)
                .with_mitigation(MitigationChoice::AntDtDd)
                .with_dd_classes(dd_classes_for(&model)),
        );
        let _ = writeln!(out, "  {name}:");
        out.push_str(&table(&[
            vec!["method".into(), "JCT".into(), "speedup vs DDP".into()],
            vec!["DDP".into(), secs(ddp.jct.as_secs_f64()), "1.00x".into()],
            vec![
                "LB-BSP".into(),
                secs(lb.jct.as_secs_f64()),
                format!("{:.2}x", ddp.jct.as_secs_f64() / lb.jct.as_secs_f64()),
            ],
            vec![
                "AntDT-DD".into(),
                secs(dd.jct.as_secs_f64()),
                format!("{:.2}x", ddp.jct.as_secs_f64() / dd.jct.as_secs_f64()),
            ],
        ]));
        if let Some((_, antdt_controller::Action::AdjustBs { batch_sizes, grad_accum })) =
            dd.actions.first()
        {
            let _ = writeln!(
                out,
                "  AntDT-DD allocation: B = {:?}, C = {:?}",
                &batch_sizes[..],
                grad_accum.as_ref().map(|g| &g[..]).unwrap_or(&[])
            );
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Q3: framework properties
// ---------------------------------------------------------------------------

pub fn fig16() -> String {
    let mut out = header("fig16", "Shards consumed vs worker throughput, ASP-DDS (paper Fig. 16)");
    let r = Job::run(criteo_job_asp(Scenario::WorkerMix { intensity: WORKER_SI }));
    let c = r.consumption.expect("dds consumption");
    let mut rows =
        vec![vec!["worker".into(), "shards done".into(), "samples done".into(), "mean BPT".into()]];
    for (w, cons) in &c.per_worker {
        rows.push(vec![
            format!("w{w}"),
            cons.shards_done.to_string(),
            cons.samples_done.to_string(),
            format!("{:.2}s", r.worker_bpt[*w as usize].mean().unwrap_or(0.0)),
        ]);
    }
    out.push_str(&table(&rows));
    out.push_str(
        "  (shard counts track throughput: slow workers naturally request fewer shards)\n",
    );
    out
}

pub fn fig17() -> String {
    let mut out =
        header("fig17", "Worker failover delay: DDS-based vs checkpoint-based (paper Fig. 17)");
    let intervals: Vec<SimDuration> =
        [5u64, 10, 15, 20, 30, 40, 50, 60].iter().map(|&m| SimDuration::from_minutes(m)).collect();
    // Parameters from the Criteo job: one shard = 4096×100 samples at ~2000
    // samples/s per worker; checkpoint write ~45 s; 2 h job.
    let pts = fig17_curve(
        &intervals,
        SimDuration::from_secs(7_200),
        45.0,
        60.0,
        0.8,
        45.0,
        4096 * 100,
        2_000.0,
    );
    let mut rows =
        vec![vec!["ckpt interval".into(), "checkpoint-based".into(), "DDS-based".into()]];
    for p in &pts {
        rows.push(vec![
            format!("{:.0} min", p.ckpt_interval.as_secs_f64() / 60.0),
            secs(p.checkpoint_based.as_secs_f64()),
            secs(p.dds_based.as_secs_f64()),
        ]);
    }
    out.push_str(&table(&rows));
    out.push_str("  (paper: DDS ~2 min flat; checkpoint-based ~17 min at 5-min saves, U-shaped)\n");

    // Live cross-check: the same kill under both recovery schemes in the full
    // simulator (one persistent worker straggler, AntDT-ND kills it once).
    let live = |mode: antdt_core::FailoverMode| {
        Job::run(
            JobConfig::ps_bsp(
                antdt_workloads::cluster::cluster_a_scaled(8, 4),
                Scenario::WorkerPersistent { intensity: 0.8 },
            )
            .with_model(ModelProfile::xdeepfm())
            .with_global_batch(8_192)
            .with_samples(8_000_000)
            .with_batches_per_shard(10)
            .with_fast_cadence(SimDuration::from_secs(60))
            .with_mitigation(MitigationChoice::AntDtNd)
            .with_failover_mode(mode),
        )
    };
    let dds_live = live(antdt_core::FailoverMode::DdsBased);
    let ckpt_live = live(antdt_core::FailoverMode::CheckpointBased);
    let _ = writeln!(
        out,
        "  live simulation (same kill, both schemes): DDS-based JCT {}, checkpoint-based JCT {} (+{:.0}s stall)",
        secs(dds_live.jct.as_secs_f64()),
        secs(ckpt_live.jct.as_secs_f64()),
        ckpt_live.jct.as_secs_f64() - dds_live.jct.as_secs_f64()
    );
    out
}

pub fn fig18() -> String {
    let mut out = header("fig18", "AntDT overhead at three Cluster-C scales (paper Fig. 18)");
    let mut rows = vec![vec![
        "scale".into(),
        "workers/servers".into(),
        "JCT".into(),
        "overhead".into(),
        "DDS share".into(),
        "sync share".into(),
    ]];
    for (label, size) in [
        ("small", ClusterSize::Small),
        ("medium", ClusterSize::Medium),
        ("large", ClusterSize::Large),
    ] {
        let (nw, ns) = size.workers_servers();
        let mut cluster = cluster_c(size);
        antdt_workloads::straggler::apply(
            &mut cluster,
            Scenario::NonDedicated { mean_slowdown: 2.0 },
        );
        let cfg = JobConfig::ps_bsp(cluster, Scenario::None)
            .with_model(ModelProfile::transformer_inhouse())
            .with_global_batch(30_720)
            .with_samples(12_288_000) // 400 iterations
            .with_batches_per_shard(100)
            .with_mitigation(MitigationChoice::AntDtNd);
        let r = Job::run(cfg);
        let (dds, sync) = r.overhead.split();
        rows.push(vec![
            label.into(),
            format!("{nw}/{ns}"),
            secs(r.jct.as_secs_f64()),
            format!("{:.2}%", r.overhead.fraction_of(r.jct) * 100.0),
            format!("{:.0}%", dds * 100.0),
            format!("{:.0}%", sync * 100.0),
        ]);
    }
    out.push_str(&table(&rows));
    out.push_str("  (paper: total overhead < 0.5% of JCT at every scale; ~55% DDS / ~45% sync)\n");
    out
}

// ---------------------------------------------------------------------------
// Q4 + industrial deployment
// ---------------------------------------------------------------------------

pub fn fig19() -> String {
    let mut out = header("fig19", "Production fleet A/B test (paper Fig. 19 / §VII-F)");
    let cfg = FleetConfig::default();
    let arms = fleet::ab_test(&cfg);
    let find = |m: FleetMethod| arms.iter().find(|a| a.method == m).unwrap().mean_jct_secs;
    let bsp = find(FleetMethod::Bsp);
    let asp = find(FleetMethod::Asp);
    let mut rows = vec![vec!["method".into(), "mean JCT".into(), "vs family base".into()]];
    for a in &arms {
        let base = match a.method {
            FleetMethod::Bsp
            | FleetMethod::BackupWorkers
            | FleetMethod::LbBsp
            | FleetMethod::AntDtNd => bsp,
            _ => asp,
        };
        rows.push(vec![
            a.method.label().into(),
            secs(a.mean_jct_secs),
            pct((base - a.mean_jct_secs) / base),
        ]);
    }
    out.push_str(&table(&rows));

    // The homepage-recommendation anecdote: one severely straggling large job
    // (paper: 27.8 h -> 5.4 h, ~5x).
    let big = |m: MitigationChoice| {
        // A severely contended production job: transient noise everywhere,
        // several persistent worker stragglers of growing severity, plus a
        // contended server — the situation the paper's 27.8h -> 5.4h anecdote
        // describes.
        let mut cluster = antdt_workloads::cluster::cluster_a_scaled(46, 10);
        antdt_workloads::straggler::apply(
            &mut cluster,
            Scenario::WorkerTransient { intensity: 1.0 },
        );
        for (rank, delay) in [(45usize, 16.0f64), (30, 12.0), (15, 8.0)] {
            cluster.workers[rank].profile.phases.push(
                antdt_sim::profile::ContentionPhase::Persistent {
                    delay_secs: delay,
                    from: antdt_sim::SimTime::ZERO,
                    to: antdt_sim::SimTime::MAX,
                },
            );
        }
        antdt_workloads::straggler::apply(
            &mut cluster,
            Scenario::ServerPersistent { intensity: 0.8 },
        );
        Job::run(
            JobConfig::ps_bsp(cluster, Scenario::None)
                .with_model(ModelProfile::xdeepfm())
                .with_global_batch(81_920)
                .with_samples(60_000_000)
                .with_batches_per_shard(100)
                .with_mitigation(m),
        )
    };
    let native = big(MitigationChoice::None);
    let nd = big(MitigationChoice::AntDtNd);
    let _ = writeln!(
        out,
        "  homepage-ranking-style job (severe stragglers): BSP {} -> AntDT-ND {} ({:.1}x)",
        secs(native.jct.as_secs_f64()),
        secs(nd.jct.as_secs_f64()),
        native.jct.as_secs_f64() / nd.jct.as_secs_f64()
    );
    out
}

// ---------------------------------------------------------------------------
// Table III
// ---------------------------------------------------------------------------

pub fn tab3() -> String {
    let mut out =
        header("tab3", "JCT under AntDT-ND and BSP, varying straggler intensity (paper Table III)");
    let seeds = [1u64, 2, 3];
    let cell = |scenario: Scenario, m: MitigationChoice| -> (f64, f64) {
        let jcts: Vec<f64> = seeds
            .iter()
            .map(|&s| {
                Job::run(criteo_job(scenario).with_mitigation(m.clone()).with_seed(s))
                    .jct
                    .as_secs_f64()
            })
            .collect();
        mean_std(&jcts)
    };
    for side in ["worker", "server"] {
        let _ = writeln!(out, "  {side} stragglers:");
        let mut rows = vec![vec!["SI".into(), "BSP".into(), "AntDT-ND".into(), "speedup".into()]];
        for si in [0.1f64, 0.3, 0.5, 0.8] {
            let scenario = if side == "worker" {
                Scenario::WorkerMix { intensity: si }
            } else {
                Scenario::ServerPersistent { intensity: si }
            };
            let (b_m, b_s) = cell(scenario, MitigationChoice::None);
            let (n_m, n_s) = cell(scenario, MitigationChoice::AntDtNd);
            rows.push(vec![
                format!("{si:.1}"),
                format!("{b_m:.0}s±{b_s:.0}s"),
                format!("{n_m:.0}s±{n_s:.0}s"),
                pct(b_m / n_m - 1.0),
            ]);
        }
        out.push_str(&table(&rows));
    }
    out
}

// ---------------------------------------------------------------------------
// Integrity & solver
// ---------------------------------------------------------------------------

pub fn integrity() -> String {
    let mut out = header("integrity", "Data integrity under failovers (paper §VII-D2)");
    let data = ctr::generate(&CtrConfig::default().with_samples(60_000));
    let (train, holdout) = data.split_holdout(0.2);
    let n_train = train.len() as u64;
    let base = |scenario: Scenario| {
        JobConfig::ps_bsp(antdt_workloads::cluster::cluster_a_scaled(8, 4), scenario)
            .with_global_batch(2_048)
            .with_samples(n_train)
            .with_epochs(3)
            .with_batches_per_shard(4)
            .with_fast_cadence(SimDuration::from_secs(60))
            .with_execution(ExecutionMode::Real {
                dataset: train.clone(),
                holdout: holdout.clone(),
                latent_k: 8,
                lr: 0.4,
            })
    };
    // Reference: no stragglers, no failovers.
    let clean = Job::run(base(Scenario::None));
    // Failover run: persistent straggler -> AntDT-ND kill-restarts mid-training.
    let faulty = Job::run(
        base(Scenario::WorkerMix { intensity: 1.0 }).with_mitigation(MitigationChoice::AntDtNd),
    );
    let ca = clean.audit.unwrap();
    let fa = faulty.audit.unwrap();
    out.push_str(&table(&[
        vec![
            "run".into(),
            "kills".into(),
            "DONE shards".into(),
            "expected".into(),
            "requeued".into(),
            "at-least-once".into(),
            "AUC".into(),
        ],
        vec![
            "no failover".into(),
            clean.n_kills().to_string(),
            ca.done_shards.to_string(),
            ca.expected_done_shards.to_string(),
            ca.requeued_shards.to_string(),
            ca.at_least_once.to_string(),
            format!("{:.3}", clean.auc.unwrap_or(f64::NAN)),
        ],
        vec![
            "with failovers".into(),
            faulty.n_kills().to_string(),
            fa.done_shards.to_string(),
            fa.expected_done_shards.to_string(),
            fa.requeued_shards.to_string(),
            fa.at_least_once.to_string(),
            format!("{:.3}", faulty.auc.unwrap_or(f64::NAN)),
        ],
    ]));
    out.push_str("  (paper: DONE count equals K per epoch despite failovers; AUC matches the failure-free run)\n");
    out
}

pub fn solver() -> String {
    let mut out =
        header("solver", "Optimization runtime at scale (paper §VII-E: ms-level at 1000 workers)");
    let mut rows = vec![vec!["problem".into(), "size".into(), "time".into()]];
    for n in [10usize, 100, 1000] {
        let v: Vec<f64> = (0..n).map(|i| 1000.0 + (i % 7) as f64 * 300.0).collect();
        let t0 = std::time::Instant::now();
        let alloc = minmax_batch_allocation(30_720, &v, 1);
        let dt = t0.elapsed();
        assert_eq!(alloc.iter().sum::<u64>(), 30_720);
        rows.push(vec![
            "Eq. 3 (ADJUST_BS)".into(),
            format!("{n} workers"),
            format!("{:.3} ms", dt.as_secs_f64() * 1e3),
        ]);
    }
    let classes: Vec<Eq4Class> = (0..4)
        .map(|i| Eq4Class {
            count: 4,
            cost: AffineCost { c0: 0.15, per_sample: 1e-3 * (1.0 + i as f64) },
            b_min: 16,
            b_max: 112,
        })
        .collect();
    let t0 = std::time::Instant::now();
    let sol =
        grad_accum_allocation(Eq4Config { global_batch: 4_096, c_min: 1, c_max: 5 }, &classes);
    let dt = t0.elapsed();
    assert!(sol.is_some());
    rows.push(vec![
        "Eq. 4 (AntDT-DD)".into(),
        "4 classes × C≤5".into(),
        format!("{:.3} ms", dt.as_secs_f64() * 1e3),
    ]);
    out.push_str(&table(&rows));
    out
}

// ---------------------------------------------------------------------------
// Ablations
// ---------------------------------------------------------------------------

pub fn ablate() -> String {
    let mut out = header("ablate", "Ablations over the design choices DESIGN.md calls out");

    // (a) Shard granularity M: integrity/overhead trade-off (§V-C).
    out.push_str("  (a) shard granularity M (AntDT-ND, worker stragglers):\n");
    let mut rows = vec![vec![
        "M".into(),
        "JCT".into(),
        "shards/epoch".into(),
        "dup-sample bound".into(),
        "DDS overhead".into(),
    ]];
    for m in [1u64, 10, 100, 500] {
        let r = Job::run(
            criteo_job(Scenario::WorkerMix { intensity: WORKER_SI })
                .with_batches_per_shard(m)
                .with_samples(15_000_000)
                .with_epochs(1)
                .with_mitigation(MitigationChoice::AntDtNd),
        );
        let a = r.audit.unwrap();
        rows.push(vec![
            m.to_string(),
            secs(r.jct.as_secs_f64()),
            (a.expected_done_shards).to_string(),
            a.duplicate_samples_upper_bound.to_string(),
            format!("{:.1}s", r.overhead.dds.as_secs_f64()),
        ]);
    }
    out.push_str(&table(&rows));

    // (b) Detection threshold lambda.
    out.push_str("  (b) slowness ratio lambda (kills issued / JCT):\n");
    let mut rows = vec![vec!["lambda".into(), "JCT".into(), "kills".into()]];
    for lambda in [1.1f64, 1.3, 1.5, 2.0, 3.0] {
        let mut cfg = criteo_job(Scenario::WorkerMix { intensity: WORKER_SI })
            .with_samples(15_000_000)
            .with_epochs(1);
        cfg.mitigation = MitigationChoice::AntDtNd;
        // Run via the policy directly to vary lambda.
        let nd = antdt_controller::AntDtNd::new(antdt_controller::NdConfig {
            lambda,
            ..Default::default()
        });
        let r = antdt_core_run_with(cfg, Box::new(nd));
        rows.push(vec![format!("{lambda:.1}"), secs(r.jct.as_secs_f64()), r.n_kills().to_string()]);
    }
    out.push_str(&table(&rows));

    // (c) Gradient accumulation bound C_max (AntDT-DD objective).
    out.push_str("  (c) accumulation bound C_max (Eq. 4 round time, ResNet-101 classes):\n");
    let classes = vec![
        Eq4Class {
            count: 4,
            cost: AffineCost { c0: 0.15, per_sample: 1.733e-3 },
            b_min: 16,
            b_max: 112,
        },
        Eq4Class {
            count: 4,
            cost: AffineCost { c0: 0.15, per_sample: 5.2e-3 },
            b_min: 16,
            b_max: 96,
        },
    ];
    let mut rows = vec![vec!["C_max".into(), "round time".into(), "per-class (B, C)".into()]];
    for c_max in [1u32, 2, 3, 5] {
        match grad_accum_allocation(Eq4Config { global_batch: 1_536, c_min: 1, c_max }, &classes) {
            Some(sol) => rows.push(vec![
                c_max.to_string(),
                format!("{:.3}s", sol.objective_secs),
                format!("{:?}", sol.per_class),
            ]),
            None => rows.push(vec![c_max.to_string(), "infeasible".into(), "-".into()]),
        }
    }
    out.push_str(&table(&rows));

    // (d) Backup worker count b.
    out.push_str("  (d) backup worker count b (worker stragglers):\n");
    let mut rows = vec![vec!["b".into(), "JCT".into(), "recomputed samples".into()]];
    for b in [0u32, 1, 2, 4] {
        let m = if b == 0 { MitigationChoice::None } else { MitigationChoice::BackupWorkers { b } };
        let r = Job::run(
            criteo_job(Scenario::WorkerMix { intensity: WORKER_SI })
                .with_samples(15_000_000)
                .with_epochs(1)
                .with_mitigation(m),
        );
        rows.push(vec![
            b.to_string(),
            secs(r.jct.as_secs_f64()),
            r.rolled_back_samples.to_string(),
        ]);
    }
    out.push_str(&table(&rows));

    // (e) SSP staleness sweep (extension beyond the paper's BSP/ASP).
    out.push_str("  (e) SSP staleness bound (worker stragglers, DDS):\n");
    let mut rows = vec![vec!["staleness".into(), "JCT".into()]];
    for s in [0u32, 2, 8] {
        let r = Job::run(
            JobConfig::ps_ssp(cluster_a(), Scenario::WorkerMix { intensity: WORKER_SI }, s)
                .with_model(ModelProfile::xdeepfm())
                .with_global_batch(81_920)
                .with_samples(15_000_000)
                .with_batches_per_shard(100),
        );
        rows.push(vec![s.to_string(), secs(r.jct.as_secs_f64())]);
    }
    out.push_str(&table(&rows));
    out
}

/// Run a job with an explicitly constructed policy (used by the lambda sweep).
fn antdt_core_run_with(
    cfg: JobConfig,
    policy: Box<dyn antdt_controller::MitigationPolicy>,
) -> JobReport {
    antdt_core::ps_run_with_policy(cfg, policy)
}

/// Chaos-drill matrix (antdt-chaos): deterministic fault plans × mitigation
/// policies with the full invariant audit, plus the loud-failure path of a
/// wedged barrier caught by the liveness watchdog.
pub fn chaos() -> String {
    use antdt_chaos::{ChaosDriver, Fault, FaultPlan, NodeRef};

    let mut out = header("chaos", "Fault-injection drill matrix with invariant verdicts");
    let base = JobConfig::ps_bsp(
        antdt_workloads::cluster::cluster_a_scaled(4, 2),
        Scenario::WorkerMix { intensity: 0.5 },
    )
    .with_global_batch(4_096)
    .with_samples(500_000)
    .with_batches_per_shard(10)
    .with_fast_cadence(SimDuration::from_secs(60));

    let matrix = ChaosDriver::new(base.clone())
        .with_plan(FaultPlan::new("kill-w1").at(30.0, Fault::KillNode { node: NodeRef::Worker(1) }))
        .with_plan(FaultPlan::new("dds-outage").at(15.0, Fault::DdsOutage { window_secs: 30.0 }))
        .with_plan(FaultPlan::new("slow-link").at(
            20.0,
            Fault::NetworkDegrade { node: NodeRef::Worker(3), factor: 6.0, window_secs: 60.0 },
        ))
        .with_policies(vec![MitigationChoice::AntDtNd, MitigationChoice::None])
        .run();
    for line in matrix.render().lines() {
        out.push_str("  ");
        out.push_str(line);
        out.push('\n');
    }

    let wedge = ChaosDriver::new(base).with_liveness_timeout(SimDuration::from_secs(120)).run_one(
        &FaultPlan::new("wedge").at(20.0, Fault::KillNodeNoFailover { node: NodeRef::Worker(2) }),
        &MitigationChoice::AntDtNd,
    );
    let _ = writeln!(
        out,
        "  wedge drill (failover disabled): stalled={} detected by watchdog, liveness invariant {}",
        wedge.stalled,
        if wedge.invariant("liveness").map(|o| o.passed).unwrap_or(false) {
            "PASS"
        } else {
            "FAIL"
        }
    );
    out
}

/// Telemetry overhead on the README quickstart workload: the identical job with
/// instrumentation off vs on, best-of-N wall times. Emits
/// `target/BENCH_telemetry.json` with events/sec and the wall-time delta.
pub fn telemetry() -> String {
    let mut out =
        header("telemetry", "Telemetry overhead: quickstart workload, instrumentation off vs on");
    let base = || {
        JobConfig::ps_bsp(
            antdt_workloads::cluster::cluster_a_scaled(8, 4),
            Scenario::WorkerMix { intensity: 0.8 },
        )
        .with_model(ModelProfile::xdeepfm())
        .with_global_batch(16_384)
        .with_samples(8_000_000)
        .with_batches_per_shard(20)
        .with_mitigation(MitigationChoice::AntDtNd)
    };

    const REPS: usize = 3;
    fn best_of(reps: usize, mk: impl Fn() -> JobConfig) -> (f64, JobReport) {
        let mut best = f64::INFINITY;
        let mut last = None;
        for _ in 0..reps {
            let t0 = std::time::Instant::now();
            let r = Job::run(mk());
            best = best.min(t0.elapsed().as_secs_f64());
            last = Some(r);
        }
        (best, last.expect("reps >= 1"))
    }
    let (wall_off, plain) = best_of(REPS, base);
    let (wall_on, instrumented) = best_of(REPS, || base().with_telemetry());
    assert_eq!(plain.jct, instrumented.jct, "telemetry must not change the simulated schedule");

    let tr = instrumented.telemetry.as_ref().expect("instrumented run carries telemetry");
    let trace_events = antdt_telemetry::ChromeTrace::from_json(&tr.chrome_trace)
        .expect("valid Chrome trace JSON")
        .trace_events
        .len() as u64;
    let flight_recorded = tr.flight.dropped + tr.flight.events.len() as u64;
    let total_events = trace_events + flight_recorded;
    let events_per_sec = total_events as f64 / wall_on.max(1e-9);
    let delta = (wall_on - wall_off) / wall_off.max(1e-9);

    out.push_str(&table(&[
        vec!["run".into(), "wall".into(), "JCT (sim)".into(), "telemetry events".into()],
        vec![
            "telemetry off".into(),
            format!("{:.3}s", wall_off),
            secs(plain.jct.as_secs_f64()),
            "0".into(),
        ],
        vec![
            "telemetry on".into(),
            format!("{:.3}s", wall_on),
            secs(instrumented.jct.as_secs_f64()),
            total_events.to_string(),
        ],
    ]));
    let _ = writeln!(
        out,
        "  events recorded: {trace_events} trace + {flight_recorded} flight = {total_events} \
         ({events_per_sec:.0} events/s of wall time)"
    );
    let _ = writeln!(out, "  wall-time delta: {} (best of {REPS})", pct(delta));

    // Machine-readable artifact (hand-rendered: the offline serde_json is a stub).
    let json = format!(
        concat!(
            "{{\"experiment\":\"telemetry\",\"workload\":\"quickstart\",\"reps\":{},",
            "\"wall_secs_off\":{:.6},\"wall_secs_on\":{:.6},\"wall_delta_frac\":{:.6},",
            "\"trace_events\":{},\"flight_events_recorded\":{},\"events_per_sec\":{:.1},",
            "\"jct_secs\":{:.3},\"identical_jct\":{}}}\n"
        ),
        REPS,
        wall_off,
        wall_on,
        delta,
        trace_events,
        flight_recorded,
        events_per_sec,
        instrumented.jct.as_secs_f64(),
        plain.jct == instrumented.jct,
    );
    let _ = std::fs::create_dir_all("target");
    let path = std::path::Path::new("target").join("BENCH_telemetry.json");
    match std::fs::write(&path, &json) {
        Ok(()) => {
            let _ = writeln!(out, "  wrote {}", path.display());
        }
        Err(e) => {
            let _ = writeln!(out, "  could not write {}: {e}", path.display());
        }
    }
    out
}

#[cfg(test)]
mod tests {

    #[test]
    fn cheap_experiments_produce_reports() {
        for id in ["fig7", "fig8", "fig17", "solver"] {
            let out = crate::run(id).expect("known id");
            assert!(out.contains(&format!("=== {id}")), "{out}");
            assert!(out.lines().count() > 3);
        }
        assert!(crate::run("nope").is_none());
    }

    #[test]
    fn registry_ids_are_unique() {
        let reg = crate::registry();
        let mut ids: Vec<&str> = reg.iter().map(|(id, _, _)| *id).collect();
        ids.sort_unstable();
        let n = ids.len();
        ids.dedup();
        assert_eq!(n, ids.len());
    }
}
