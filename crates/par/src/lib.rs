//! # antdt-par — the parallel execution fabric
//!
//! A hand-rolled, fixed-size, work-stealing thread pool built on
//! `std::thread` + channels only (the offline registry forbids rayon), plus a
//! process-global pool behind [`par_map`]. The one primitive the experiment
//! harness needs is *ordered fan-out*: run `f` over every item of a `Vec`,
//! possibly on many threads, and hand back the results **in input order**.
//!
//! Design notes:
//!
//! - **Work stealing.** Each worker owns a deque; tasks submitted *from* a
//!   worker (a nested [`par_map`] inside a running task) push onto that
//!   worker's own deque (LIFO for locality), idle workers steal from the
//!   front (FIFO), and external submissions land on a shared injector queue.
//! - **Caller helps.** The thread that called [`par_map`] does not block on a
//!   condvar while its results are outstanding — it pops and executes pool
//!   tasks itself. This is what makes *nested* `par_map` deadlock-free on a
//!   saturated pool: every waiting thread is also an executor.
//! - **Panic isolation.** Every task runs under `catch_unwind`; one
//!   panicking task cannot poison its siblings. [`try_par_map`] surfaces
//!   per-task results, [`par_map`] re-raises the first panic *after* all
//!   tasks have finished (so no task can touch borrowed data after the call
//!   returns).
//! - **Determinism.** The pool changes *where* and *when* tasks run, never
//!   *what* they compute, and results are reassembled by input index. A
//!   caller whose tasks are independent deterministic functions (every AntDT
//!   simulation is: one seeded RNG per job, no shared mutable state) gets
//!   byte-identical output to a serial loop — asserted by the `perf` bench
//!   and the parity tests in `antdt-bench`.
//!
//! `--jobs 1` (or [`with_serial`]) short-circuits to an inline serial loop on
//! the calling thread: no pool, no threads, the degenerate mode.

use std::cell::Cell;
use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{self, RecvTimeoutError, TryRecvError};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::Duration;

/// A type-erased unit of work. Tasks are `'static` from the pool's point of
/// view; `try_par_map` erases shorter lifetimes and guarantees (by joining
/// all tasks before returning) that no task outlives its borrows.
type Task = Box<dyn FnOnce() + Send + 'static>;

/// Distinguishes pools so a worker of pool A never treats itself as a worker
/// of pool B (e.g. a test pool nested under the global pool).
static POOL_IDS: AtomicU64 = AtomicU64::new(1);

thread_local! {
    /// `(pool id, worker index)` when the current thread is a pool worker.
    static WORKER: Cell<Option<(u64, usize)>> = const { Cell::new(None) };
}

struct Shared {
    id: u64,
    /// External submissions (from non-worker threads).
    injector: Mutex<VecDeque<Task>>,
    /// Per-worker deques: owner pushes/pops the back, thieves pop the front.
    locals: Vec<Mutex<VecDeque<Task>>>,
    /// Bumped on every submit; workers sleep only while it is unchanged.
    ticket: Mutex<u64>,
    available: Condvar,
    shutdown: AtomicBool,
}

impl Shared {
    /// Queue `task`, preferring the submitting worker's own deque.
    fn submit(&self, task: Task) {
        match WORKER.with(Cell::get) {
            Some((id, w)) if id == self.id => {
                self.locals[w].lock().expect("pool lock").push_back(task)
            }
            _ => self.injector.lock().expect("pool lock").push_back(task),
        }
        *self.ticket.lock().expect("pool lock") += 1;
        self.available.notify_all();
    }

    /// Pop one runnable task: own deque (LIFO), then the injector, then steal
    /// from the other workers (FIFO), scanning from the neighbour so thieves
    /// spread out instead of all hitting worker 0.
    fn find_task(&self) -> Option<Task> {
        let me = match WORKER.with(Cell::get) {
            Some((id, w)) if id == self.id => Some(w),
            _ => None,
        };
        if let Some(w) = me {
            if let Some(t) = self.locals[w].lock().expect("pool lock").pop_back() {
                return Some(t);
            }
        }
        if let Some(t) = self.injector.lock().expect("pool lock").pop_front() {
            return Some(t);
        }
        let n = self.locals.len();
        let start = me.map_or(0, |w| w + 1);
        for k in 0..n {
            let j = (start + k) % n;
            if Some(j) == me {
                continue;
            }
            if let Some(t) = self.locals[j].lock().expect("pool lock").pop_front() {
                return Some(t);
            }
        }
        None
    }
}

fn worker_main(shared: Arc<Shared>, index: usize) {
    WORKER.with(|w| w.set(Some((shared.id, index))));
    let mut seen = 0u64;
    loop {
        if let Some(task) = shared.find_task() {
            task();
            continue;
        }
        if shared.shutdown.load(Ordering::Acquire) {
            return;
        }
        let guard = shared.ticket.lock().expect("pool lock");
        if *guard == seen {
            // Timed wait as a lost-wakeup backstop; the ticket check is the
            // real protocol.
            let (guard, _) =
                shared.available.wait_timeout(guard, Duration::from_millis(1)).expect("pool lock");
            seen = *guard;
        } else {
            seen = *guard;
        }
    }
}

/// A fixed-size work-stealing thread pool. Dropping it shuts the workers
/// down (after they drain whatever is already queued is *not* guaranteed —
/// join all your `par_map` calls first; `par_map` always joins).
pub struct ThreadPool {
    shared: Arc<Shared>,
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl ThreadPool {
    /// Spawn `threads` workers (`threads` is clamped to at least 1).
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let shared = Arc::new(Shared {
            id: POOL_IDS.fetch_add(1, Ordering::Relaxed),
            injector: Mutex::new(VecDeque::new()),
            locals: (0..threads).map(|_| Mutex::new(VecDeque::new())).collect(),
            ticket: Mutex::new(0),
            available: Condvar::new(),
            shutdown: AtomicBool::new(false),
        });
        let handles = (0..threads)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("antdt-par-{i}"))
                    .spawn(move || worker_main(shared, i))
                    .expect("spawn pool worker")
            })
            .collect();
        ThreadPool { shared, handles }
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.shared.locals.len()
    }

    /// Fan `f` out over `items` and return per-task results **in input
    /// order**; a panicking task yields `Err(payload)` in its slot while the
    /// rest complete normally.
    pub fn try_par_map<T, R, F>(&self, items: Vec<T>, f: F) -> Vec<std::thread::Result<R>>
    where
        T: Send,
        R: Send,
        F: Fn(T) -> R + Sync,
    {
        let n = items.len();
        if n == 0 {
            return Vec::new();
        }
        let mut results: Vec<Option<std::thread::Result<R>>> = Vec::new();
        results.resize_with(n, || None);

        let (tx, rx) = mpsc::channel::<(usize, std::thread::Result<R>)>();
        let fref = &f;
        for (i, item) in items.into_iter().enumerate() {
            let tx = tx.clone();
            let task: Box<dyn FnOnce() + Send + '_> = Box::new(move || {
                let r = catch_unwind(AssertUnwindSafe(|| fref(item)));
                // The receiver lives until all n results arrive, so this
                // send cannot fail.
                let _ = tx.send((i, r));
            });
            // SAFETY: the join loop below does not return until all `n`
            // tasks have sent their result, and every task sends exactly
            // once (the send sits after the catch_unwind, so a panicking
            // task still reports). No task can therefore outlive the
            // borrows (`items`, `f`) captured in this frame, which is the
            // sole obligation of pretending the closure is 'static.
            let task: Task =
                unsafe { std::mem::transmute::<Box<dyn FnOnce() + Send + '_>, Task>(task) };
            self.shared.submit(task);
        }
        drop(tx);

        let mut done = 0usize;
        while done < n {
            match rx.try_recv() {
                Ok((i, r)) => {
                    results[i] = Some(r);
                    done += 1;
                }
                Err(TryRecvError::Empty) => {
                    // Caller helps: execute a queued task instead of
                    // blocking. With every waiter also an executor, a
                    // nested par_map on a saturated pool still progresses.
                    if let Some(task) = self.shared.find_task() {
                        task();
                    } else {
                        match rx.recv_timeout(Duration::from_micros(200)) {
                            Ok((i, r)) => {
                                results[i] = Some(r);
                                done += 1;
                            }
                            Err(RecvTimeoutError::Timeout) => {}
                            Err(RecvTimeoutError::Disconnected) => break,
                        }
                    }
                }
                Err(TryRecvError::Disconnected) => break,
            }
        }
        results.into_iter().map(|r| r.expect("every task delivers exactly one result")).collect()
    }

    /// [`ThreadPool::try_par_map`] with panic propagation: all tasks run to
    /// completion, then the first panic (by input order) is re-raised.
    pub fn par_map<T, R, F>(&self, items: Vec<T>, f: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(T) -> R + Sync,
    {
        collect_or_panic(self.try_par_map(items, f))
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        *self.shared.ticket.lock().expect("pool lock") += 1;
        self.shared.available.notify_all();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

fn collect_or_panic<R>(results: Vec<std::thread::Result<R>>) -> Vec<R> {
    let mut out = Vec::with_capacity(results.len());
    let mut first_panic = None;
    for r in results {
        match r {
            Ok(v) => out.push(v),
            Err(p) => {
                first_panic.get_or_insert(p);
            }
        }
    }
    if let Some(p) = first_panic {
        resume_unwind(p);
    }
    out
}

// ---------------------------------------------------------------------------
// The process-global pool
// ---------------------------------------------------------------------------

/// 0 = unset (use the machine's available parallelism).
static CONFIGURED_JOBS: AtomicUsize = AtomicUsize::new(0);
static GLOBAL: OnceLock<ThreadPool> = OnceLock::new();

thread_local! {
    /// Forces the global [`par_map`] into the inline serial path on this
    /// thread (and, transitively, on everything it calls — serial execution
    /// never leaves the thread).
    static FORCE_SERIAL: Cell<bool> = const { Cell::new(false) };
}

/// Set the global pool size. Call before the first global [`par_map`]; once
/// the pool is built its thread count is fixed and later calls only affect
/// what [`jobs`] reports. `1` disables the pool entirely (inline serial).
pub fn configure_jobs(n: usize) {
    CONFIGURED_JOBS.store(n.max(1), Ordering::SeqCst);
}

/// The effective global parallelism: the configured value, else the
/// machine's available parallelism.
pub fn jobs() -> usize {
    match CONFIGURED_JOBS.load(Ordering::SeqCst) {
        0 => std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
        n => n,
    }
}

/// Run `f` with the global [`par_map`] forced serial on this thread —
/// the reference runs for the parity assertions.
pub fn with_serial<R>(f: impl FnOnce() -> R) -> R {
    FORCE_SERIAL.with(|s| s.set(true));
    let r = f();
    FORCE_SERIAL.with(|s| s.set(false));
    r
}

fn serial_try_map<T, R, F>(items: Vec<T>, f: F) -> Vec<std::thread::Result<R>>
where
    F: Fn(T) -> R,
{
    items.into_iter().map(|item| catch_unwind(AssertUnwindSafe(|| f(item)))).collect()
}

/// Ordered fan-out over the global pool. Inline serial when the effective
/// job count is 1 or inside [`with_serial`]; otherwise the work-stealing
/// pool (lazily built at the configured size) runs the tasks and the caller
/// helps until every result is home.
pub fn par_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    collect_or_panic(try_par_map(items, f))
}

/// [`par_map`] with per-task results instead of panic propagation.
pub fn try_par_map<T, R, F>(items: Vec<T>, f: F) -> Vec<std::thread::Result<R>>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    if FORCE_SERIAL.with(Cell::get) || jobs() == 1 {
        return serial_try_map(items, f);
    }
    GLOBAL.get_or_init(|| ThreadPool::new(jobs())).try_par_map(items, f)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_input_order() {
        let pool = ThreadPool::new(4);
        // Reverse sleeps: later items finish first, order must still hold.
        let out = pool.par_map((0..64u64).collect(), |i| {
            std::thread::sleep(Duration::from_micros(500 - i.min(500) * 7));
            i * i
        });
        assert_eq!(out, (0..64u64).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn empty_input_is_fine() {
        let pool = ThreadPool::new(2);
        let out: Vec<u32> = pool.par_map(Vec::<u32>::new(), |x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn single_thread_pool_degenerates_gracefully() {
        let pool = ThreadPool::new(1);
        let out = pool.par_map(vec![3, 1, 4, 1, 5], |x| x * 2);
        assert_eq!(out, vec![6, 2, 8, 2, 10]);
    }

    #[test]
    fn borrowed_state_is_visible_to_tasks() {
        let pool = ThreadPool::new(3);
        let base = [10u64, 20, 30];
        let out = pool.par_map(vec![0usize, 1, 2], |i| base[i] + 1);
        assert_eq!(out, vec![11, 21, 31]);
    }

    #[test]
    fn one_panicking_task_does_not_poison_siblings() {
        let pool = ThreadPool::new(4);
        let results = pool.try_par_map((0..8u32).collect(), |i| {
            if i == 3 {
                panic!("task {i} exploded");
            }
            i + 100
        });
        assert_eq!(results.len(), 8);
        for (i, r) in results.iter().enumerate() {
            if i == 3 {
                let payload = r.as_ref().expect_err("task 3 must have panicked");
                let msg = payload.downcast_ref::<String>().expect("panic message");
                assert!(msg.contains("task 3 exploded"));
            } else {
                assert_eq!(*r.as_ref().expect("other tasks unaffected"), i as u32 + 100);
            }
        }
    }

    #[test]
    fn par_map_surfaces_the_panic_after_all_tasks_finish() {
        use std::sync::atomic::AtomicU32;
        let pool = ThreadPool::new(2);
        let completed = AtomicU32::new(0);
        let caught = catch_unwind(AssertUnwindSafe(|| {
            pool.par_map((0..8u32).collect(), |i| {
                if i == 0 {
                    panic!("boom");
                }
                completed.fetch_add(1, Ordering::SeqCst);
                i
            })
        }));
        assert!(caught.is_err(), "the panic must propagate");
        assert_eq!(completed.load(Ordering::SeqCst), 7, "siblings still ran to completion");
    }

    #[test]
    fn nested_par_map_does_not_deadlock_on_a_saturated_pool() {
        // 2 threads, 8 outer tasks each fanning out 8 inner tasks: strictly
        // more blocked joins than workers. Caller-helping must keep it live.
        let pool = Arc::new(ThreadPool::new(2));
        let p = Arc::clone(&pool);
        let out = pool.par_map((0..8u64).collect(), move |i| {
            p.par_map((0..8u64).collect(), |j| i * 10 + j).iter().sum::<u64>()
        });
        let expect: Vec<u64> = (0..8u64).map(|i| (0..8u64).map(|j| i * 10 + j).sum()).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn with_serial_forces_the_inline_path() {
        let out = with_serial(|| par_map(vec![1u8, 2, 3], |x| x + 1));
        assert_eq!(out, vec![2, 3, 4]);
    }
}
