//! Property: `par_map` is observationally a `map` — same results, same
//! order — for arbitrary inputs, pool sizes and (pure) workloads.

use antdt_par::ThreadPool;
use proptest::prelude::*;

proptest! {
    #[test]
    fn par_map_equals_serial_map(
        items in proptest::collection::vec(-1_000_000i64..1_000_000, 0..200),
        threads in 1usize..6,
        mul in -3i64..4,
        add in -100i64..100,
    ) {
        let f = |x: i64| x.wrapping_mul(mul).wrapping_add(add);
        let expect: Vec<i64> = items.iter().copied().map(f).collect();
        let pool = ThreadPool::new(threads);
        let got = pool.par_map(items, f);
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn global_par_map_equals_serial_map(
        items in proptest::collection::vec(0u32..5_000_000, 0..200),
    ) {
        let f = |x: u32| u64::from(x) * 7 + 1;
        let expect: Vec<u64> = items.iter().copied().map(f).collect();
        let got = antdt_par::par_map(items, f);
        prop_assert_eq!(got, expect);
    }
}
