//! The snapshot cache: an LRU, byte-budgeted store of advanced prefix runs
//! keyed by `(config digest, snapshot instant)` with nearest-predecessor
//! lookup.
//!
//! A cached entry at instant `t` is a [`PrefixRun`] that has fired every
//! event at or before `t`. Forking it and advancing to any `t' >= t` fires
//! exactly the events a fresh run advanced to `t'` would — so a query whose
//! divergence instant is `t'` only needs the *nearest predecessor* snapshot,
//! never an exact-time hit. Per-snapshot memory is charged from
//! [`PrefixRun::estimate_bytes`] and the global byte budget is enforced by
//! evicting the least-recently-touched entry across all configs.

use antdt_core::PrefixRun;
use antdt_sim::SimTime;
use std::collections::{BTreeMap, HashMap};

/// Running totals of everything the cache did — the telemetry and bench
/// surface (deltas are pushed to `antdt-telemetry` counters by the service).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that found a usable predecessor snapshot.
    pub hits: u64,
    /// Lookups that found nothing at or before the requested instant.
    pub misses: u64,
    /// Snapshots stored (including same-key replacements).
    pub insertions: u64,
    /// Entries removed to get back under the byte budget.
    pub evictions: u64,
    /// Inserts refused because one snapshot alone exceeds the whole budget.
    pub oversize_rejections: u64,
}

struct Entry {
    run: PrefixRun,
    bytes: usize,
    /// Logical-clock stamp of the last touch (insert or hit) — the LRU key.
    stamp: u64,
}

/// See the module docs. Keys are `(config digest, snapshot instant in
/// microseconds)`; the byte budget is global across all digests.
pub struct SnapshotCache {
    budget_bytes: usize,
    clock: u64,
    bytes: usize,
    map: HashMap<u128, BTreeMap<u64, Entry>>,
    stats: CacheStats,
}

impl SnapshotCache {
    pub fn new(budget_bytes: usize) -> Self {
        SnapshotCache {
            budget_bytes,
            clock: 0,
            bytes: 0,
            map: HashMap::new(),
            stats: CacheStats::default(),
        }
    }

    /// Estimated bytes currently held.
    pub fn bytes(&self) -> usize {
        self.bytes
    }

    /// The enforced budget.
    pub fn budget_bytes(&self) -> usize {
        self.budget_bytes
    }

    /// Number of cached snapshots.
    pub fn len(&self) -> usize {
        self.map.values().map(BTreeMap::len).sum()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Running totals (never reset).
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Fork the nearest cached snapshot of `digest` at or before `t`.
    /// Returns the snapshot's instant alongside the independent fork; counts
    /// a hit or a miss either way.
    pub fn fork_at(&mut self, digest: u128, t: SimTime) -> Option<(SimTime, PrefixRun)> {
        let found = self
            .map
            .get_mut(&digest)
            .and_then(|by_time| by_time.range_mut(..=t.as_micros()).next_back());
        match found {
            Some((&at, entry)) => {
                self.clock += 1;
                entry.stamp = self.clock;
                self.stats.hits += 1;
                Some((SimTime(at), entry.run.fork()))
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Store `run` as the snapshot of `digest` at instant `t` (replacing any
    /// previous entry at that exact key), then evict least-recently-touched
    /// entries until the byte budget holds again. A snapshot bigger than the
    /// whole budget is refused outright.
    pub fn insert(&mut self, digest: u128, t: SimTime, run: PrefixRun) {
        let bytes = run.estimate_bytes();
        if bytes > self.budget_bytes {
            self.stats.oversize_rejections += 1;
            return;
        }
        self.clock += 1;
        let entry = Entry { run, bytes, stamp: self.clock };
        if let Some(old) = self.map.entry(digest).or_default().insert(t.as_micros(), entry) {
            self.bytes -= old.bytes;
        }
        self.bytes += bytes;
        self.stats.insertions += 1;
        while self.bytes > self.budget_bytes {
            self.evict_lru();
        }
    }

    /// Remove the globally least-recently-touched entry. The entry just
    /// inserted carries the newest stamp, so it survives unless it is the
    /// only one left — and a lone entry always fits (oversize inserts are
    /// refused before this point).
    fn evict_lru(&mut self) {
        let victim = self
            .map
            .iter()
            .flat_map(|(&d, by_time)| by_time.iter().map(move |(&t, e)| (e.stamp, d, t)))
            .min()
            .map(|(_, d, t)| (d, t));
        let Some((d, t)) = victim else { return };
        if let Some(by_time) = self.map.get_mut(&d) {
            if let Some(old) = by_time.remove(&t) {
                self.bytes -= old.bytes;
                self.stats.evictions += 1;
            }
            if by_time.is_empty() {
                self.map.remove(&d);
            }
        }
    }
}
