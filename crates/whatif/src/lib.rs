//! # antdt-whatif — the batch what-if query service
//!
//! Turns the fork-replay machinery of `antdt-core` into a high-throughput
//! query engine. A [`WhatIfService`] accepts batches of `(config,
//! Perturbation)` queries, plans each batch by divergence instant
//! (`antdt_core::plan_replays`), and answers it off three accelerating
//! layers:
//!
//! 1. **Memo store** — a repeated `(config digest, perturbation)` query —
//!    across batches or within one — returns its memoized [`JobReport`]
//!    without simulating anything.
//! 2. **Snapshot cache** — an LRU, byte-budgeted store of advanced prefix
//!    runs keyed by `(config digest, instant)` with nearest-predecessor
//!    lookup ([`SnapshotCache`]); a query forks the closest cached snapshot
//!    at or before its divergence instant instead of re-simulating the
//!    prelude. A **snapshot spine** seeds the cache during the base run:
//!    the first simulation of a config checkpoints itself every
//!    [`ServiceConfig::spine_every`] sim-seconds.
//! 3. **Fork replay** — within a batch, queries sharing a config fork one
//!    monotonically-advancing prefix at their (sorted) divergence instants
//!    and only simulate their suffixes.
//!
//! Suffix finishes and unavoidable full reruns fan out over the `antdt-par`
//! work-stealing pool in input order, so every answer is **byte-identical**
//! to a serial full rerun of the perturbed config — the differential tests
//! and the `whatif` bench assert this via `JobReport::golden_dump`.
//! Telemetry-armed configs always take the full-rerun path (forks share
//! telemetry counters), so arming the service changes no existing behavior.

mod cache;

pub use cache::{CacheStats, SnapshotCache};

use antdt_core::{
    apply_perturbation, config_digest, plan_replays, Job, JobConfig, JobReport, Perturbation,
    PrefixRun,
};
use antdt_sim::{SimDuration, SimTime};
use antdt_telemetry::{Counter, Gauge, MetricsRegistry};
use std::collections::HashMap;

/// One counterfactual query: the job (identified by its full config — the
/// "trace") and the edit to measure against it.
#[derive(Clone)]
pub struct WhatIfQuery {
    pub cfg: JobConfig,
    pub perturbation: Perturbation,
}

/// How the service produced an answer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AnswerSource {
    /// This exact `(config, perturbation)` was answered before.
    Memo,
    /// Forked a prefix at the divergence instant; `from_cache` says whether
    /// the prefix was seeded from a cached snapshot (vs built fresh).
    Forked { from_cache: bool },
    /// Full rerun: no divergence mark, a mark at time zero, or a
    /// telemetry-armed config.
    FullRerun,
}

/// One query's answer. The report is byte-identical to
/// `Job::run(apply_perturbation(cfg, p))`, whatever the source.
pub struct WhatIfAnswer {
    pub report: JobReport,
    pub source: AnswerSource,
    /// Events inherited from a shared/cached prefix (0 for memo hits and
    /// full reruns).
    pub prefix_events: u64,
    /// Events this answer actually simulated (0 for memo hits).
    pub suffix_events: u64,
}

/// Service tuning knobs.
#[derive(Clone, Copy, Debug)]
pub struct ServiceConfig {
    /// Snapshot-cache byte budget (estimated bytes, see
    /// [`PrefixRun::estimate_bytes`]).
    pub cache_budget_bytes: usize,
    /// Snapshot-spine cadence: while first simulating a config's base run,
    /// checkpoint it into the cache every this many sim-seconds so later
    /// queries at any divergence instant find a near predecessor.
    /// [`SimDuration::ZERO`] disables the spine.
    pub spine_every: SimDuration,
    /// Also cache a snapshot at each query's fork instant, so repeats of
    /// *similar* (not just identical) batches start even closer.
    pub cache_fork_points: bool,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            cache_budget_bytes: 256 << 20,
            spine_every: SimDuration::from_secs(300),
            cache_fork_points: true,
        }
    }
}

/// Cache and throughput counters, exported through `antdt-telemetry`.
struct ServiceCounters {
    queries: Counter,
    memo_hits: Counter,
    forked: Counter,
    full_reruns: Counter,
    cache_hits: Counter,
    cache_misses: Counter,
    cache_insertions: Counter,
    cache_evictions: Counter,
    cache_bytes: Gauge,
}

impl ServiceCounters {
    fn new(reg: &MetricsRegistry) -> Self {
        let c = |name| reg.counter(name, &[]);
        ServiceCounters {
            queries: c("antdt_whatif_queries_total"),
            memo_hits: c("antdt_whatif_memo_hits_total"),
            forked: c("antdt_whatif_forked_total"),
            full_reruns: c("antdt_whatif_full_reruns_total"),
            cache_hits: c("antdt_whatif_cache_hits_total"),
            cache_misses: c("antdt_whatif_cache_misses_total"),
            cache_insertions: c("antdt_whatif_cache_insertions_total"),
            cache_evictions: c("antdt_whatif_cache_evictions_total"),
            cache_bytes: reg.gauge("antdt_whatif_cache_bytes", &[]),
        }
    }
}

/// What one item of the fan-out stage simulates.
enum WorkItem {
    /// A perturbed fork to finish; `prefix_events` were inherited.
    Branch { run: PrefixRun, prefix_events: u64 },
    /// A full perturbed rerun from time zero.
    Rerun(Box<JobConfig>),
}

/// An answer slot before the reports come home.
enum Pending {
    Memo(Box<JobReport>),
    /// Index into the fan-out work list.
    Work {
        item: usize,
        source: AnswerSource,
    },
    /// An in-batch repeat of the query that owns work item `item`: answered
    /// from its report without simulating anything, like a memo hit.
    Shared {
        item: usize,
    },
}

/// See the crate docs. The service is stateful on purpose: the memo store,
/// the base-report store and the snapshot cache persist across
/// [`WhatIfService::answer_batch`] calls, so throughput improves as the
/// query history grows.
pub struct WhatIfService {
    cfg: ServiceConfig,
    cache: SnapshotCache,
    /// Base (unperturbed) report per config digest — divergence marks and
    /// memo identity both key off it.
    bases: HashMap<u128, JobReport>,
    memo: HashMap<(u128, Perturbation), JobReport>,
    counters: Option<ServiceCounters>,
}

impl WhatIfService {
    pub fn new(cfg: ServiceConfig) -> Self {
        let cache = SnapshotCache::new(cfg.cache_budget_bytes);
        WhatIfService { cfg, cache, bases: HashMap::new(), memo: HashMap::new(), counters: None }
    }

    /// Export cache/throughput counters into `reg` (see the
    /// `antdt_whatif_*` metric family).
    pub fn attach_telemetry(&mut self, reg: &MetricsRegistry) {
        self.counters = Some(ServiceCounters::new(reg));
    }

    /// Snapshot-cache totals (hits/misses/insertions/evictions).
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Estimated bytes the snapshot cache currently holds.
    pub fn cache_bytes(&self) -> usize {
        self.cache.bytes()
    }

    /// Number of cached snapshots.
    pub fn cached_snapshots(&self) -> usize {
        self.cache.len()
    }

    /// The base (unperturbed) report of `cfg`, simulating it — with the
    /// snapshot spine — on first sight.
    pub fn base_report(&mut self, cfg: &JobConfig) -> &JobReport {
        let digest = config_digest(cfg);
        if !self.bases.contains_key(&digest) {
            let report = self.run_base_with_spine(digest, cfg);
            self.bases.insert(digest, report);
        }
        &self.bases[&digest]
    }

    /// Answer one query (see [`WhatIfService::answer_batch`]).
    pub fn answer(&mut self, query: &WhatIfQuery) -> WhatIfAnswer {
        self.answer_batch(std::slice::from_ref(query)).pop().expect("one query, one answer")
    }

    /// Answer a batch of queries. Answers come back in query order, each
    /// byte-identical to a serial full rerun of the perturbed config; the
    /// service only changes *how much simulation* that answer costs.
    pub fn answer_batch(&mut self, queries: &[WhatIfQuery]) -> Vec<WhatIfAnswer> {
        let stats_before = self.cache.stats();

        // Group query indices by config digest, preserving first-seen order.
        let digests: Vec<u128> = queries.iter().map(|q| config_digest(&q.cfg)).collect();
        let mut group_order: Vec<u128> = Vec::new();
        let mut groups: HashMap<u128, Vec<usize>> = HashMap::new();
        for (i, &d) in digests.iter().enumerate() {
            let g = groups.entry(d).or_default();
            if g.is_empty() {
                group_order.push(d);
            }
            g.push(i);
        }

        // Plan every group: memo hits answer immediately, in-batch repeats
        // share their first occurrence's work item, forkable queries branch a
        // shared prefix seeded from the cache, the rest full-rerun.
        let mut pending: Vec<Option<Pending>> = (0..queries.len()).map(|_| None).collect();
        let mut work: Vec<WorkItem> = Vec::new();
        for digest in group_order {
            let members = &groups[&digest];
            let cfg = &queries[members[0]].cfg;
            if !self.bases.contains_key(&digest) {
                let report = self.run_base_with_spine(digest, cfg);
                self.bases.insert(digest, report);
            }

            // Unique un-memoized perturbations, keyed back to every member
            // that asked for them (`member_slots`): a 64-query batch with
            // repeats simulates each distinct suffix exactly once.
            let mut todo: Vec<usize> = Vec::new();
            let mut todo_of: HashMap<Perturbation, usize> = HashMap::new();
            let mut member_slots: Vec<(usize, usize)> = Vec::new();
            for &qi in members {
                let p = queries[qi].perturbation;
                match self.memo.get(&(digest, p)) {
                    Some(report) => pending[qi] = Some(Pending::Memo(Box::new(report.clone()))),
                    None => {
                        let ti = *todo_of.entry(p).or_insert_with(|| {
                            todo.push(qi);
                            todo.len() - 1
                        });
                        member_slots.push((qi, ti));
                    }
                }
            }
            let perts: Vec<Perturbation> =
                todo.iter().map(|&qi| queries[qi].perturbation).collect();
            let plan = plan_replays(cfg, &self.bases[&digest], &perts);

            // The shared prefix only ever advances forward; the plan sorted
            // the forkable queries by divergence instant to match.
            let mut planned: Vec<Option<(usize, AnswerSource)>> = vec![None; todo.len()];
            let mut cursor: Option<(bool, PrefixRun)> = None;
            for &(ti, t) in &plan.forkable {
                // Events AT the divergence instant belong to the suffix.
                let target = SimTime(t.as_micros() - 1);
                let (from_cache, run) =
                    cursor.get_or_insert_with(|| match self.cache.fork_at(digest, target) {
                        Some((_, run)) => (true, run),
                        None => (false, PrefixRun::new(cfg)),
                    });
                run.advance_until(target);
                if self.cfg.cache_fork_points {
                    self.cache.insert(digest, target, run.fork());
                }
                let branch = run.fork_perturbed(&perts[ti]);
                let prefix_events = branch.processed();
                planned[ti] = Some((work.len(), AnswerSource::Forked { from_cache: *from_cache }));
                work.push(WorkItem::Branch { run: branch, prefix_events });
            }
            for &ti in &plan.full_reruns {
                planned[ti] = Some((work.len(), AnswerSource::FullRerun));
                work.push(WorkItem::Rerun(Box::new(apply_perturbation(cfg.clone(), &perts[ti]))));
            }
            for (qi, ti) in member_slots {
                let (item, source) = planned[ti].expect("every todo slot was planned");
                // The first occurrence owns the work item (and memoizes its
                // report); repeats are in-batch memo hits on that report.
                pending[qi] = Some(if todo[ti] == qi {
                    Pending::Work { item, source }
                } else {
                    Pending::Shared { item }
                });
            }
        }

        // Fan the whole batch — suffix finishes and full reruns alike —
        // over the work-stealing pool. Results come home in input order and
        // every job is an independent deterministic simulation, so the
        // reports are byte-identical to a serial loop's.
        let reports: Vec<(JobReport, u64)> = antdt_par::par_map(work, |item| match item {
            WorkItem::Branch { run, prefix_events } => (run.finish(), prefix_events),
            WorkItem::Rerun(cfg) => (Job::run(*cfg), 0),
        });

        // Assemble answers in query order and memoize the fresh reports.
        let answers: Vec<WhatIfAnswer> = pending
            .into_iter()
            .enumerate()
            .map(|(qi, slot)| match slot.expect("every query was planned") {
                Pending::Memo(report) => WhatIfAnswer {
                    report: *report,
                    source: AnswerSource::Memo,
                    prefix_events: 0,
                    suffix_events: 0,
                },
                Pending::Work { item, source } => {
                    let (report, prefix_events) = &reports[item];
                    let key = (digests[qi], queries[qi].perturbation);
                    self.memo.entry(key).or_insert_with(|| report.clone());
                    WhatIfAnswer {
                        report: report.clone(),
                        source,
                        prefix_events: *prefix_events,
                        suffix_events: report.events_processed - prefix_events,
                    }
                }
                Pending::Shared { item } => WhatIfAnswer {
                    report: reports[item].0.clone(),
                    source: AnswerSource::Memo,
                    prefix_events: 0,
                    suffix_events: 0,
                },
            })
            .collect();

        self.update_counters(&answers, stats_before);
        answers
    }

    /// Simulate the base run of `cfg`, inserting a spine of snapshots every
    /// [`ServiceConfig::spine_every`] sim-seconds along the way. The stepwise
    /// advance fires exactly the events `Job::run` fires, so the report is
    /// byte-identical to an un-spined base run.
    fn run_base_with_spine(&mut self, digest: u128, cfg: &JobConfig) -> JobReport {
        if cfg.telemetry || self.cfg.spine_every == SimDuration::ZERO {
            // Telemetry-armed configs cannot fork (shared counters); no
            // spine, and every query against them full-reruns.
            return Job::run(cfg.clone());
        }
        let mut run = PrefixRun::new(cfg);
        let mut t = SimTime::ZERO + self.cfg.spine_every;
        while t < cfg.max_sim_time {
            let drained = run.advance_until(t);
            if drained || run.finished() {
                break;
            }
            self.cache.insert(digest, t, run.fork());
            t += self.cfg.spine_every;
        }
        run.finish()
    }

    fn update_counters(&self, answers: &[WhatIfAnswer], before: CacheStats) {
        let Some(c) = &self.counters else { return };
        c.queries.add(answers.len() as u64);
        for a in answers {
            match a.source {
                AnswerSource::Memo => c.memo_hits.inc(),
                AnswerSource::Forked { .. } => c.forked.inc(),
                AnswerSource::FullRerun => c.full_reruns.inc(),
            }
        }
        let now = self.cache.stats();
        c.cache_hits.add(now.hits - before.hits);
        c.cache_misses.add(now.misses - before.misses);
        c.cache_insertions.add(now.insertions - before.insertions);
        c.cache_evictions.add(now.evictions - before.evictions);
        c.cache_bytes.set(self.cache.bytes() as u64);
    }
}
