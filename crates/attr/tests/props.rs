//! Property tests: conservation (ε = 0) survives arbitrary interleavings of
//! every ledger operation, and the blame analysis stays internally
//! consistent with the ledger it was derived from.

use antdt_attr::{analyze, Ledger, WaitCause};
use proptest::prelude::*;

#[derive(Clone, Debug)]
enum Op {
    Fill { node: u32, to_us: u64, cause: usize },
    Sync { node: u32, to_us: u64, ctrl_us: u64 },
    Pending { node: u32, cause: usize },
    Truncate { node: u32, at_us: u64 },
    Kill { node: u32 },
    Barrier { iter: u64, arrivals: Vec<(u32, u64)> },
}

fn op() -> impl Strategy<Value = Op> {
    let node = 0u32..6;
    prop_oneof![
        (node.clone(), 0u64..10_000, 0usize..WaitCause::COUNT)
            .prop_map(|(node, to_us, cause)| Op::Fill { node, to_us, cause }),
        (node.clone(), 0u64..10_000, 0u64..500).prop_map(|(node, to_us, ctrl_us)| Op::Sync {
            node,
            to_us,
            ctrl_us
        }),
        (node.clone(), 0usize..WaitCause::COUNT)
            .prop_map(|(node, cause)| Op::Pending { node, cause }),
        (node.clone(), 0u64..10_000).prop_map(|(node, at_us)| Op::Truncate { node, at_us }),
        node.clone().prop_map(|node| Op::Kill { node }),
        (0u64..100, prop::collection::vec((node, 0u64..10_000), 0..5))
            .prop_map(|(iter, arrivals)| Op::Barrier { iter, arrivals }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn conservation_is_exact_under_arbitrary_ops(ops in prop::collection::vec(op(), 0..120)) {
        let mut l = Ledger::new();
        for o in &ops {
            match o {
                Op::Fill { node, to_us, cause } => l.fill(*node, *to_us, WaitCause::ALL[*cause]),
                Op::Sync { node, to_us, ctrl_us } => l.sync_to(*node, *to_us, *ctrl_us),
                Op::Pending { node, cause } => l.set_pending(*node, WaitCause::ALL[*cause]),
                Op::Truncate { node, at_us } => l.truncate(*node, *at_us),
                Op::Kill { node } => l.mark_dead(*node),
                Op::Barrier { iter, arrivals } => l.barrier(*iter, arrivals),
            }
            l.check_conservation().unwrap();
        }
        l.finalize(20_000);
        l.check_conservation().unwrap();
        for n in l.node_ids() {
            if !l.is_dead(n) {
                prop_assert_eq!(l.wall_us(n), 20_000);
            }
            prop_assert_eq!(l.totals(n).iter().sum::<u64>(), l.wall_us(n));
        }
    }

    #[test]
    fn analysis_matches_its_ledger(ops in prop::collection::vec(op(), 0..80)) {
        let mut l = Ledger::new();
        for o in &ops {
            match o {
                Op::Fill { node, to_us, cause } => l.fill(*node, *to_us, WaitCause::ALL[*cause]),
                Op::Sync { node, to_us, ctrl_us } => l.sync_to(*node, *to_us, *ctrl_us),
                Op::Pending { node, cause } => l.set_pending(*node, WaitCause::ALL[*cause]),
                Op::Truncate { node, at_us } => l.truncate(*node, *at_us),
                Op::Kill { node } => l.mark_dead(*node),
                Op::Barrier { iter, arrivals } => l.barrier(*iter, arrivals),
            }
        }
        l.finalize(20_000);
        let a = analyze(&l, 20_000);
        prop_assert_eq!(a.nodes.len(), l.node_ids().len());
        for b in &a.nodes {
            prop_assert_eq!(b.wall_us, l.wall_us(b.node));
            prop_assert_eq!(b.totals_us.iter().sum::<u64>(), b.wall_us);
        }
        // The ranking is a permutation of the nodes, sorted by score.
        prop_assert_eq!(a.blame.len(), a.nodes.len());
        for w in a.blame.windows(2) {
            prop_assert!(w[0].score_us >= w[1].score_us);
        }
    }
}
