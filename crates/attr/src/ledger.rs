//! The per-node time ledger: every microsecond of a node's wall time is
//! attributed to exactly one [`WaitCause`].
//!
//! The ledger is *cursor-chained*: each node carries a cursor (the end of its
//! attributed timeline, starting at virtual time zero) and every
//! [`Ledger::fill`] extends the timeline contiguously from the cursor to a
//! target instant. There is no way to leave a hole or to double-book an
//! interval, so conservation — `sum(per-cause totals) == cursor` — holds by
//! construction and [`Ledger::check_conservation`] re-verifies it from the
//! segment list in integer microseconds (ε = 0).

use std::collections::BTreeMap;

/// Why a node spent an interval of wall time. Exactly one cause per interval.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum WaitCause {
    /// Forward/backward passes, including iterations replayed after a rewind.
    Compute,
    /// Waiting on the DDS for a shard lease: starvation polls and the
    /// per-batch lease-sync overhead.
    DataWait,
    /// Parked at a BSP/SSP/ring barrier, or idle waiting for peers (includes
    /// a finished worker waiting for the fleet to drain).
    SyncWait,
    /// Gradient push, parameter pull, or ring all-reduce transfer time.
    Comm,
    /// Trailing share of an idle gap spent waiting on a late control-bus
    /// directive (zero under the default `Ideal` channel).
    ControlBus,
    /// Copy-on-snapshot server stall while a checkpoint is captured.
    CkptStall,
    /// Failover window between a kill and the replacement pod's first step
    /// (includes checkpoint read-back under replay recovery).
    FaultRecovery,
}

impl WaitCause {
    /// Number of causes; per-cause totals are `[u64; COUNT]` indexed by
    /// [`WaitCause::index`].
    pub const COUNT: usize = 7;

    /// Every cause, in index order.
    pub const ALL: [WaitCause; Self::COUNT] = [
        WaitCause::Compute,
        WaitCause::DataWait,
        WaitCause::SyncWait,
        WaitCause::Comm,
        WaitCause::ControlBus,
        WaitCause::CkptStall,
        WaitCause::FaultRecovery,
    ];

    /// Stable snake_case label (Prometheus label values, trace track names,
    /// golden dumps).
    pub fn as_str(self) -> &'static str {
        match self {
            WaitCause::Compute => "compute",
            WaitCause::DataWait => "data_wait",
            WaitCause::SyncWait => "sync_wait",
            WaitCause::Comm => "comm",
            WaitCause::ControlBus => "control_bus",
            WaitCause::CkptStall => "ckpt_stall",
            WaitCause::FaultRecovery => "fault_recovery",
        }
    }

    /// Position in [`WaitCause::ALL`] and in per-cause total arrays.
    pub fn index(self) -> usize {
        self as usize
    }
}

/// One attributed interval `[start_us, end_us)` of a node's timeline.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Seg {
    pub start_us: u64,
    pub end_us: u64,
    pub cause: WaitCause,
}

/// A barrier close: which node determined it and by how much. Fed by the
/// BSP/ring drivers (one record per iteration/round with ≥ 2 arrivals); the
/// determiner's margin over the runner-up is the iteration's critical-path
/// slack attributable to that node alone.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BarrierRec {
    /// Iteration (BSP) or round (ring) ordinal.
    pub iter: u64,
    /// The last node to arrive — the barrier's determiner.
    pub node: u32,
    /// The determiner's arrival instant.
    pub arrival_us: u64,
    /// The second-latest arrival: where the barrier would have closed had the
    /// determiner been as fast as the rest.
    pub runner_up_us: u64,
}

#[derive(Clone, Debug)]
struct NodeLedger {
    /// End of the attributed timeline (timeline starts at virtual time 0).
    cursor: u64,
    /// Cause to charge the *next* idle gap to (set while the gap is open,
    /// consumed by the next [`Ledger::sync_to`]).
    pending: WaitCause,
    /// Per-cause totals, indexed by [`WaitCause::index`].
    totals: [u64; WaitCause::COUNT],
    /// Contiguous attributed segments (adjacent same-cause segments coalesce).
    segs: Vec<Seg>,
    /// A dead node's timeline is frozen: kills without failover stop the
    /// clock at the kill instant and `finalize` skips the node.
    dead: bool,
}

impl Default for NodeLedger {
    fn default() -> Self {
        NodeLedger {
            cursor: 0,
            pending: WaitCause::SyncWait,
            totals: [0; WaitCause::COUNT],
            segs: Vec::new(),
            dead: false,
        }
    }
}

/// Per-node attribution ledgers plus the barrier record stream.
///
/// Node ids follow the runtime's lane convention: workers are `w`, servers
/// are `1000 + s`.
#[derive(Clone, Debug, Default)]
pub struct Ledger {
    nodes: BTreeMap<u32, NodeLedger>,
    barriers: Vec<BarrierRec>,
}

impl Ledger {
    pub fn new() -> Self {
        Ledger::default()
    }

    /// Attribute `[cursor, to_us)` of `node`'s timeline to `cause` and
    /// advance the cursor. No-op if the target is not ahead of the cursor or
    /// the node is dead.
    pub fn fill(&mut self, node: u32, to_us: u64, cause: WaitCause) {
        let nl = self.nodes.entry(node).or_default();
        if nl.dead || to_us <= nl.cursor {
            return;
        }
        nl.totals[cause.index()] += to_us - nl.cursor;
        match nl.segs.last_mut() {
            Some(s) if s.cause == cause && s.end_us == nl.cursor => s.end_us = to_us,
            _ => nl.segs.push(Seg { start_us: nl.cursor, end_us: to_us, cause }),
        }
        nl.cursor = to_us;
    }

    /// Close the open idle gap `[cursor, to_us)` with the pending cause,
    /// carving the trailing `ctrl_us` (clamped to the gap) as [`ControlBus`]
    /// — the share of the wait spent on a late directive — then reset the
    /// pending cause to the default `SyncWait`.
    ///
    /// [`ControlBus`]: WaitCause::ControlBus
    pub fn sync_to(&mut self, node: u32, to_us: u64, ctrl_us: u64) {
        let nl = self.nodes.entry(node).or_default();
        let (pending, cursor) = (nl.pending, nl.cursor);
        if to_us > cursor {
            let ctrl = ctrl_us.min(to_us - cursor);
            self.fill(node, to_us - ctrl, pending);
            self.fill(node, to_us, WaitCause::ControlBus);
        }
        self.nodes.entry(node).or_default().pending = WaitCause::SyncWait;
    }

    /// Set the cause the next [`Ledger::sync_to`] will charge the open gap
    /// to (e.g. `DataWait` when a worker starts a starvation poll).
    pub fn set_pending(&mut self, node: u32, cause: WaitCause) {
        self.nodes.entry(node).or_default().pending = cause;
    }

    /// Clip `node`'s timeline back to `at_us`: a kill interrupts work that
    /// was attributed ahead of real time (compute is booked to its end when
    /// it starts). Totals are rebated exactly; no-op if the cursor is behind.
    pub fn truncate(&mut self, node: u32, at_us: u64) {
        let Some(nl) = self.nodes.get_mut(&node) else {
            return;
        };
        while let Some(s) = nl.segs.last_mut() {
            if s.end_us <= at_us {
                break;
            }
            if s.start_us >= at_us {
                nl.totals[s.cause.index()] -= s.end_us - s.start_us;
                nl.segs.pop();
            } else {
                nl.totals[s.cause.index()] -= s.end_us - at_us;
                s.end_us = at_us;
                break;
            }
        }
        nl.cursor = nl.cursor.min(at_us);
    }

    /// Freeze the node's timeline (kill without failover): later fills and
    /// the final [`Ledger::finalize`] skip it.
    pub fn mark_dead(&mut self, node: u32) {
        self.nodes.entry(node).or_default().dead = true;
    }

    /// Record a barrier close from its arrival instants (one `(node,
    /// arrival_us)` pair per participant). Skipped with fewer than two
    /// arrivals — a single-node barrier has no determiner margin. Ties are
    /// broken toward the smaller node id, deterministically.
    pub fn barrier(&mut self, iter: u64, arrivals: &[(u32, u64)]) {
        if arrivals.len() < 2 {
            return;
        }
        let mut det = arrivals[0];
        for &(n, at) in &arrivals[1..] {
            if at > det.1 || (at == det.1 && n < det.0) {
                det = (n, at);
            }
        }
        let runner_up_us =
            arrivals.iter().filter(|&&(n, _)| n != det.0).map(|&(_, at)| at).max().unwrap_or(det.1);
        self.barriers.push(BarrierRec { iter, node: det.0, arrival_us: det.1, runner_up_us });
    }

    /// Fill every live node's timeline out to the job end with its pending
    /// cause (a finished worker's tail is `SyncWait` on the fleet). After
    /// this, each live node's cursor equals the job's measured wall time.
    pub fn finalize(&mut self, end_us: u64) {
        let ids: Vec<u32> = self.nodes.keys().copied().collect();
        for node in ids {
            let pending = self.nodes[&node].pending;
            self.fill(node, end_us, pending);
        }
    }

    /// All node ids with a ledger, ascending.
    pub fn node_ids(&self) -> Vec<u32> {
        self.nodes.keys().copied().collect()
    }

    /// The node's attributed wall time (== its cursor).
    pub fn wall_us(&self, node: u32) -> u64 {
        self.nodes.get(&node).map_or(0, |nl| nl.cursor)
    }

    /// Per-cause totals, indexed by [`WaitCause::index`].
    pub fn totals(&self, node: u32) -> [u64; WaitCause::COUNT] {
        self.nodes.get(&node).map_or([0; WaitCause::COUNT], |nl| nl.totals)
    }

    /// The node's attributed segments in time order.
    pub fn segs(&self, node: u32) -> &[Seg] {
        self.nodes.get(&node).map_or(&[], |nl| &nl.segs)
    }

    pub fn is_dead(&self, node: u32) -> bool {
        self.nodes.get(&node).is_some_and(|nl| nl.dead)
    }

    /// Barrier records in arrival order.
    pub fn barriers(&self) -> &[BarrierRec] {
        &self.barriers
    }

    /// Re-verify conservation from first principles for every node: segments
    /// are contiguous from 0 to the cursor, non-overlapping, and the
    /// per-cause totals re-derived from them match the running totals
    /// exactly. Returns the first violation as an error string.
    pub fn check_conservation(&self) -> Result<(), String> {
        for (&node, nl) in &self.nodes {
            let mut at = 0u64;
            let mut derived = [0u64; WaitCause::COUNT];
            for s in &nl.segs {
                if s.start_us != at {
                    return Err(format!(
                        "node {node}: gap/overlap at {at}us (segment starts {}us)",
                        s.start_us
                    ));
                }
                if s.end_us <= s.start_us {
                    return Err(format!("node {node}: empty segment at {}us", s.start_us));
                }
                derived[s.cause.index()] += s.end_us - s.start_us;
                at = s.end_us;
            }
            if at != nl.cursor {
                return Err(format!("node {node}: segments end {at}us != cursor {}us", nl.cursor));
            }
            if derived != nl.totals {
                return Err(format!("node {node}: totals {:?} != derived {derived:?}", nl.totals));
            }
            let sum: u64 = nl.totals.iter().sum();
            if sum != nl.cursor {
                return Err(format!("node {node}: sum(causes) {sum}us != wall {}us", nl.cursor));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fill_chains_and_coalesces() {
        let mut l = Ledger::new();
        l.fill(0, 10, WaitCause::Compute);
        l.fill(0, 25, WaitCause::Compute);
        l.fill(0, 30, WaitCause::Comm);
        assert_eq!(l.segs(0).len(), 2, "adjacent same-cause segments coalesce");
        assert_eq!(l.wall_us(0), 30);
        assert_eq!(l.totals(0)[WaitCause::Compute.index()], 25);
        assert_eq!(l.totals(0)[WaitCause::Comm.index()], 5);
        l.check_conservation().unwrap();
    }

    #[test]
    fn fill_backward_is_noop() {
        let mut l = Ledger::new();
        l.fill(3, 100, WaitCause::Compute);
        l.fill(3, 40, WaitCause::Comm);
        assert_eq!(l.wall_us(3), 100);
        l.check_conservation().unwrap();
    }

    #[test]
    fn sync_to_charges_pending_then_resets() {
        let mut l = Ledger::new();
        l.set_pending(1, WaitCause::DataWait);
        l.sync_to(1, 50, 0);
        assert_eq!(l.totals(1)[WaitCause::DataWait.index()], 50);
        // Pending reset to the SyncWait default.
        l.sync_to(1, 80, 0);
        assert_eq!(l.totals(1)[WaitCause::SyncWait.index()], 30);
        l.check_conservation().unwrap();
    }

    #[test]
    fn sync_to_carves_trailing_control_latency() {
        let mut l = Ledger::new();
        l.sync_to(2, 100, 30);
        assert_eq!(l.totals(2)[WaitCause::SyncWait.index()], 70);
        assert_eq!(l.totals(2)[WaitCause::ControlBus.index()], 30);
        // The carve clamps to the gap.
        l.sync_to(2, 110, 500);
        assert_eq!(l.totals(2)[WaitCause::ControlBus.index()], 40);
        l.check_conservation().unwrap();
    }

    #[test]
    fn truncate_rebates_exactly() {
        let mut l = Ledger::new();
        l.fill(0, 40, WaitCause::SyncWait);
        l.fill(0, 100, WaitCause::Compute);
        l.truncate(0, 60);
        assert_eq!(l.wall_us(0), 60);
        assert_eq!(l.totals(0)[WaitCause::Compute.index()], 20);
        l.truncate(0, 10);
        assert_eq!(l.wall_us(0), 10);
        assert_eq!(l.totals(0)[WaitCause::Compute.index()], 0);
        assert_eq!(l.totals(0)[WaitCause::SyncWait.index()], 10);
        l.check_conservation().unwrap();
        // Truncating ahead of the cursor changes nothing.
        l.truncate(0, 1_000);
        assert_eq!(l.wall_us(0), 10);
    }

    #[test]
    fn dead_nodes_freeze() {
        let mut l = Ledger::new();
        l.fill(5, 30, WaitCause::Compute);
        l.mark_dead(5);
        l.fill(5, 90, WaitCause::Comm);
        l.finalize(200);
        assert_eq!(l.wall_us(5), 30);
        l.check_conservation().unwrap();
    }

    #[test]
    fn finalize_fills_live_nodes_to_end() {
        let mut l = Ledger::new();
        l.fill(0, 30, WaitCause::Compute);
        l.fill(1, 10, WaitCause::Compute);
        l.set_pending(1, WaitCause::DataWait);
        l.finalize(100);
        assert_eq!(l.wall_us(0), 100);
        assert_eq!(l.totals(0)[WaitCause::SyncWait.index()], 70);
        assert_eq!(l.totals(1)[WaitCause::DataWait.index()], 90);
        l.check_conservation().unwrap();
    }

    #[test]
    fn barrier_picks_determiner_and_runner_up() {
        let mut l = Ledger::new();
        l.barrier(7, &[(0, 100), (1, 180), (2, 150)]);
        l.barrier(8, &[(0, 10)]); // single arrival: skipped
        assert_eq!(l.barriers().len(), 1);
        let b = l.barriers()[0];
        assert_eq!((b.iter, b.node, b.arrival_us, b.runner_up_us), (7, 1, 180, 150));
    }

    #[test]
    fn barrier_tie_breaks_to_smaller_node() {
        let mut l = Ledger::new();
        l.barrier(0, &[(3, 100), (1, 100), (2, 90)]);
        assert_eq!(l.barriers()[0].node, 1);
        assert_eq!(l.barriers()[0].runner_up_us, 100);
    }
}
