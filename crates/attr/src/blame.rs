//! Blame analysis: turn a finished [`Ledger`] into per-node cause breakdowns,
//! the barrier-determiner critical path, and a blame ranking.
//!
//! Two complementary signals, following the what-if-analysis paper's
//! aggregation:
//!
//! * **Critical-path blame** — each barrier record names the node that closed
//!   the barrier and its margin over the runner-up; summing a node's margins
//!   is the JCT the fleet would analytically recover if that node had matched
//!   its fastest peer. This is exact for barriered strategies (BSP, ring).
//! * **Excess-over-median blame** — per cause, a node's time above the fleet
//!   median within its role group (workers vs servers). This is the fallback
//!   signal for barrier-free strategies (ASP, SSP) where no single arrival
//!   determines progress.
//!
//! The blame score is the critical-path sum when barrier records exist and
//! the excess sum otherwise; [`Analysis::blame`] is sorted by descending
//! score so `blame[0]` is the top-blamed node.

use crate::ledger::{Ledger, WaitCause};

/// One node's share of the decomposition.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NodeBreakdown {
    pub node: u32,
    /// Attributed wall time; equals `totals_us` summed (conservation).
    pub wall_us: u64,
    /// Per-cause totals, indexed by [`WaitCause::index`].
    pub totals_us: [u64; WaitCause::COUNT],
    /// Killed without failover: the timeline is frozen at the kill instant.
    pub dead: bool,
}

/// One critical-path segment: the barrier `iter` was determined by `node`,
/// `gap_us` later than the runner-up arrival.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CritSegment {
    pub iter: u64,
    pub node: u32,
    pub gap_us: u64,
}

/// A node's blame: both signals plus the headline score.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BlameEntry {
    pub node: u32,
    /// Sum of the node's determiner margins over all barriers.
    pub crit_us: u64,
    /// Sum over causes of the node's time above its role group's median.
    pub excess_us: u64,
    /// `crit_us` when any barrier was recorded, `excess_us` otherwise.
    pub score_us: u64,
}

/// The full attribution analysis of one run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Analysis {
    /// Job end (finalize instant); live nodes' `wall_us` equals this.
    pub end_us: u64,
    /// Per-node breakdowns, ascending node id.
    pub nodes: Vec<NodeBreakdown>,
    /// Critical-path segments in barrier order.
    pub crit: Vec<CritSegment>,
    /// Blame ranking, descending score (ties toward the smaller node id).
    pub blame: Vec<BlameEntry>,
}

/// Lower median of a non-empty slice (exact in integer microseconds; no
/// interpolation so the excess arithmetic stays ε = 0).
fn median(vals: &mut [u64]) -> u64 {
    if vals.is_empty() {
        return 0;
    }
    vals.sort_unstable();
    vals[(vals.len() - 1) / 2]
}

/// Run the blame analysis on a finalized ledger.
pub fn analyze(l: &Ledger, end_us: u64) -> Analysis {
    let ids = l.node_ids();
    let nodes: Vec<NodeBreakdown> = ids
        .iter()
        .map(|&n| NodeBreakdown {
            node: n,
            wall_us: l.wall_us(n),
            totals_us: l.totals(n),
            dead: l.is_dead(n),
        })
        .collect();

    // Per-role, per-cause fleet medians. Dead nodes are excluded — their
    // truncated timelines would drag the median down and inflate everyone
    // else's excess.
    let mut medians: [[u64; WaitCause::COUNT]; 2] = [[0; WaitCause::COUNT]; 2];
    for (role, is_role) in
        [(0usize, (|n: u32| n < 1000) as fn(u32) -> bool), (1, (|n: u32| n >= 1000) as _)]
    {
        for (c, slot) in medians[role].iter_mut().enumerate() {
            let mut vals: Vec<u64> = nodes
                .iter()
                .filter(|b| is_role(b.node) && !b.dead)
                .map(|b| b.totals_us[c])
                .collect();
            *slot = median(&mut vals);
        }
    }

    let crit: Vec<CritSegment> = l
        .barriers()
        .iter()
        .map(|b| CritSegment {
            iter: b.iter,
            node: b.node,
            gap_us: b.arrival_us.saturating_sub(b.runner_up_us),
        })
        .collect();
    let have_barriers = !crit.is_empty();

    let mut blame: Vec<BlameEntry> = nodes
        .iter()
        .map(|b| {
            let crit_us = crit.iter().filter(|c| c.node == b.node).map(|c| c.gap_us).sum();
            let m = &medians[usize::from(b.node >= 1000)];
            let excess_us =
                (0..WaitCause::COUNT).map(|c| b.totals_us[c].saturating_sub(m[c])).sum();
            let score_us = if have_barriers { crit_us } else { excess_us };
            BlameEntry { node: b.node, crit_us, excess_us, score_us }
        })
        .collect();
    blame.sort_by(|a, b| b.score_us.cmp(&a.score_us).then(a.node.cmp(&b.node)));

    Analysis { end_us, nodes, crit, blame }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn straggler_ledger() -> Ledger {
        // Three workers; worker 2 is slow and determines every barrier.
        let mut l = Ledger::new();
        for iter in 0..4u64 {
            let base = iter * 1_000;
            for w in 0..3u32 {
                let compute = if w == 2 { 900 } else { 500 };
                l.sync_to(w, base, 0);
                l.fill(w, base + compute, WaitCause::Compute);
                l.fill(w, base + compute + 50, WaitCause::Comm);
            }
            l.barrier(iter, &[(0, base + 550), (1, base + 550), (2, base + 950)]);
        }
        l.finalize(4_000);
        l
    }

    #[test]
    fn top_blame_is_the_barrier_determiner() {
        let l = straggler_ledger();
        l.check_conservation().unwrap();
        let a = analyze(&l, 4_000);
        assert_eq!(a.blame[0].node, 2);
        // 4 barriers x (950 - 550) margin.
        assert_eq!(a.blame[0].crit_us, 4 * 400);
        assert_eq!(a.blame[0].score_us, a.blame[0].crit_us);
        assert_eq!(a.crit.len(), 4);
        assert!(a.crit.iter().all(|c| c.node == 2 && c.gap_us == 400));
    }

    #[test]
    fn excess_signal_flags_the_compute_outlier() {
        let l = straggler_ledger();
        let a = analyze(&l, 4_000);
        let slow = a.blame.iter().find(|b| b.node == 2).unwrap();
        // Worker 2 computes 400us/iter above the 500us median.
        assert!(slow.excess_us >= 4 * 400);
        let fast = a.blame.iter().find(|b| b.node == 0).unwrap();
        assert!(fast.excess_us < slow.excess_us);
    }

    #[test]
    fn no_barriers_falls_back_to_excess() {
        let mut l = Ledger::new();
        l.fill(0, 100, WaitCause::Compute);
        l.fill(1, 100, WaitCause::Compute);
        l.fill(2, 300, WaitCause::Compute);
        l.finalize(300);
        let a = analyze(&l, 300);
        assert!(a.crit.is_empty());
        assert_eq!(a.blame[0].node, 2);
        assert_eq!(a.blame[0].score_us, a.blame[0].excess_us);
        // Worker 2 is 200us of compute above the fleet median of 100us; its
        // zero sync wait sits below the median, contributing nothing.
        assert_eq!(a.blame[0].score_us, 200);
    }

    #[test]
    fn breakdown_conserves() {
        let a = analyze(&straggler_ledger(), 4_000);
        for n in &a.nodes {
            assert_eq!(n.totals_us.iter().sum::<u64>(), n.wall_us);
            assert_eq!(n.wall_us, 4_000);
        }
    }
}
