//! Straggler attribution for AntDT: exact per-cause time decomposition,
//! critical-path blame scores, and what-if predictions.
//!
//! The paper's premise is that stragglers dominate JCT; this crate is the
//! layer that *explains* a slow job instead of merely showing it. It is a
//! std-only leaf (no dependencies, enforced by the layering ratchet) holding
//! three pieces:
//!
//! * [`ledger`] — a per-node [`Ledger`] that tags every interval of a node's
//!   wall time with a [`WaitCause`] (compute, data wait, sync wait, comm,
//!   control-bus latency, checkpoint stall, fault recovery). The ledger is
//!   cursor-chained: each fill extends a node's timeline contiguously, so the
//!   decomposition *provably* sums to the node's measured wall time — the
//!   conservation property is exact in integer microseconds (ε = 0), checked
//!   by [`Ledger::check_conservation`].
//! * [`blame`] — turns a finished ledger into an [`Analysis`]: per-node cause
//!   breakdowns, the barrier-determiner critical path, and per-node blame
//!   scores (microseconds of JCT attributable to each node's excess over the
//!   fleet median, à la the what-if-analysis paper).
//! * [`whatif`] — [`Perturbation`]s (`HealthyNode`, `ZeroControlLatency`,
//!   `NoCkptStalls`) and the analytical [`predicted_delta_us`] that a
//!   counterfactual replay of the same job is expected to realize; the
//!   runtime crate replays deterministically and reports the measured delta
//!   next to this prediction.
//!
//! The runtime kernel feeds the ledger through instrumentation hooks armed by
//! `JobConfig::with_attribution()`; attribution never adds DES events or RNG
//! draws, so arming it is schedule-neutral.

pub mod blame;
pub mod ledger;
pub mod whatif;

pub use blame::{analyze, Analysis, BlameEntry, CritSegment, NodeBreakdown};
pub use ledger::{BarrierRec, Ledger, Seg, WaitCause};
pub use whatif::{predicted_delta_us, Perturbation};
