//! What-if perturbations and their analytical JCT predictions.
//!
//! A [`Perturbation`] names a counterfactual edit to a finished job ("what if
//! node 3 had been healthy?"); [`predicted_delta_us`] is the JCT improvement
//! the blame analysis expects from it. The runtime crate owns the other half
//! of the loop: it re-runs the job deterministically with the perturbation
//! applied to the config and reports the *measured* delta next to this
//! prediction, validating the attribution end-to-end.

use crate::blame::Analysis;
use crate::ledger::WaitCause;

/// A counterfactual edit to a job.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Perturbation {
    /// Strip the straggler profile from one worker (by node id).
    HealthyNode(u32),
    /// Deliver every control-bus directive with zero latency.
    ZeroControlLatency,
    /// Remove checkpoint capture stalls (and the legacy save pause).
    NoCkptStalls,
}

impl Perturbation {
    /// Stable label for tables, JSON artifacts, and golden dumps.
    pub fn label(&self) -> String {
        match self {
            Perturbation::HealthyNode(n) => format!("healthy_node_{n}"),
            Perturbation::ZeroControlLatency => "zero_control_latency".to_string(),
            Perturbation::NoCkptStalls => "no_ckpt_stalls".to_string(),
        }
    }
}

/// The analytical JCT reduction (microseconds) the blame analysis predicts
/// for a perturbation:
///
/// * `HealthyNode(n)` — node `n`'s blame score: its summed barrier-determiner
///   margins (or excess-over-median without barriers).
/// * `ZeroControlLatency` — the largest per-node `ControlBus` total; directive
///   waits on different nodes overlap in wall time, so the max (not the sum)
///   bounds the recoverable JCT.
/// * `NoCkptStalls` — the largest per-node `CkptStall` total, for the same
///   overlap reason (a capture stalls every server simultaneously).
pub fn predicted_delta_us(a: &Analysis, p: &Perturbation) -> u64 {
    match p {
        Perturbation::HealthyNode(n) => {
            a.blame.iter().find(|b| b.node == *n).map_or(0, |b| b.score_us)
        }
        Perturbation::ZeroControlLatency => cause_max(a, WaitCause::ControlBus),
        Perturbation::NoCkptStalls => cause_max(a, WaitCause::CkptStall),
    }
}

fn cause_max(a: &Analysis, c: WaitCause) -> u64 {
    a.nodes.iter().map(|n| n.totals_us[c.index()]).max().unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blame::analyze;
    use crate::ledger::Ledger;

    #[test]
    fn labels_are_stable() {
        assert_eq!(Perturbation::HealthyNode(3).label(), "healthy_node_3");
        assert_eq!(Perturbation::ZeroControlLatency.label(), "zero_control_latency");
        assert_eq!(Perturbation::NoCkptStalls.label(), "no_ckpt_stalls");
    }

    #[test]
    fn predictions_read_the_analysis() {
        let mut l = Ledger::new();
        // Worker 1 determines two barriers by 300us each; server 1000 stalls
        // 700us for checkpoints; worker 0 waits 120us on directives.
        for iter in 0..2u64 {
            let base = iter * 1_000;
            l.sync_to(0, base + 40, if iter == 0 { 0 } else { 120 });
            l.fill(0, base + 500, WaitCause::Compute);
            l.sync_to(1, base + 40, 0);
            l.fill(1, base + 800, WaitCause::Compute);
            l.barrier(iter, &[(0, base + 500), (1, base + 800)]);
        }
        l.fill(1000, 300, WaitCause::Comm);
        l.fill(1000, 1_000, WaitCause::CkptStall);
        l.finalize(2_000);
        l.check_conservation().unwrap();
        let a = analyze(&l, 2_000);

        assert_eq!(predicted_delta_us(&a, &Perturbation::HealthyNode(1)), 600);
        assert_eq!(predicted_delta_us(&a, &Perturbation::HealthyNode(0)), 0);
        assert_eq!(predicted_delta_us(&a, &Perturbation::ZeroControlLatency), 120);
        assert_eq!(predicted_delta_us(&a, &Perturbation::NoCkptStalls), 700);
    }
}
