//! Job configuration: architecture, consistency model, data strategy,
//! mitigation solution, cost knobs and execution mode.

use antdt_agent::{AgentConfig, BroadcastModel};
use antdt_ckpt::CkptConfig;
use antdt_controller::{DdConfig, DeviceClassSpec, ElasticConfig};
use antdt_ml::Dataset;
use antdt_monitor::MonitorConfig;
use antdt_sim::{ControlChannel, SimDuration, SimTime};
use antdt_workloads::{ClusterSpec, ModelProfile, Scenario};

/// Consistency model of the Parameter Server (§I).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Consistency {
    /// Bulk Synchronous Parallel: a barrier every iteration.
    Bsp,
    /// Asynchronous Parallel: no synchronization.
    Asp,
    /// Stale Synchronous Parallel: leaders may run at most `staleness`
    /// iterations ahead of the slowest worker.
    Ssp { staleness: u32 },
}

/// Training architecture.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Arch {
    ParameterServer {
        consistency: Consistency,
    },
    /// Ring AllReduce (PyTorch DDP); always BSP.
    AllReduce,
    /// Local SGD: `sync_every` local optimizer steps between ring syncs
    /// (Stich ICLR'19). `sync_every == 1` degenerates to `AllReduce`.
    LocalSgd {
        sync_every: u32,
    },
}

/// How training data is handed to workers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DataStrategy {
    /// The Stateful Dynamic Data Sharding service.
    Dds,
    /// Static even partition (the native-ASP baseline and Fig. 3).
    EvenPartition,
}

/// Which straggler-mitigation solution drives the Controller.
#[derive(Debug, Clone, PartialEq)]
pub enum MitigationChoice {
    /// Native training.
    None,
    /// AntDT-ND (§VI-A) — full solution (BSP flavour).
    AntDtNd,
    /// AntDT-ND in ASP mode: `KILL_RESTART` only (§VII-A3).
    AntDtNdAsp,
    /// AntDT-DD (§VI-B) for dedicated heterogeneous GPU clusters.
    AntDtDd,
    /// LB-BSP batch-size rebalancing \[18\].
    LbBsp,
    /// Sync-OPT backup workers \[28\] with DDS put-back.
    BackupWorkers { b: u32 },
    /// Scheduling-only baseline.
    KillRestartOnly,
    /// Optimization-based baseline.
    AdjustLr,
    /// Elastic membership: `SCALE_OUT` under persistent stragglers when the
    /// scheduler has capacity, `SCALE_IN` on sustained idle capacity. Arms
    /// the consistent-hash shard ring (requires the DDS data strategy).
    Elastic(ElasticConfig),
}

/// How a killed worker's training state is recovered (§V-E3, Fig. 17).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailoverMode {
    /// AntDT: servers keep the parameters; only the dead worker's DOING shards
    /// replay. The rest of the fleet keeps training.
    DdsBased,
    /// Mainstream libraries: restore model + IO state from the last checkpoint
    /// and recompute everything since — the whole job stalls for the duration.
    /// This is the closed-form *estimate*: the delay is charged as a scalar
    /// (`ckpt_restore_secs` + rollback), no state actually moves. Kept for
    /// golden-trace compatibility and the Fig. 17 analytic cross-check.
    CheckpointBased,
    /// Checkpoint-replay through the `antdt-ckpt` subsystem: the last
    /// *durable* snapshot is read back at storage-tier speed, the DDS queue
    /// is rewound to it, and the lost iterations replay through the real
    /// `SyncStrategy` drivers — recovery time is emergent, not a constant.
    /// Requires a Parameter Server job on the DDS data strategy.
    Replay,
}

/// Background fault injection: mean time between failures per node (memoryless
/// exponential arrivals). Models the unexpected failures — evictions, machine
/// breakdowns — that the paper's footnote 2 says failover must absorb at scale.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultConfig {
    pub worker_mtbf: SimDuration,
    pub server_mtbf: Option<SimDuration>,
}

/// One chaos fault to inject at an absolute simulated time. These are the
/// runtime-level hooks the `antdt-chaos` crate compiles its `FaultPlan` DSL
/// into; they are delivered as first-class DES events (`Ev::ChaosFault`) so a
/// drill is bit-for-bit reproducible for a given config + seed.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosInjection {
    /// Absolute simulated time at which the fault fires.
    pub at_secs: f64,
    pub fault: InjectedFault,
}

/// The fault vocabulary the runtimes understand. Node-scoped faults name the
/// node *slot* (stable index), not a generation — the generation is resolved
/// when the event fires, so plans survive unrelated restarts.
#[derive(Debug, Clone, PartialEq)]
pub enum InjectedFault {
    /// Kill worker `w`; the configured failover path (DDS requeue or
    /// checkpoint rollback) and the scheduler restart both run as usual.
    KillWorker { w: u32 },
    /// Kill server `s`; checkpoint restore + recompute follow as usual.
    KillServer { s: u32 },
    /// Kill worker `w` with the failover machinery disabled: its DOING shards
    /// are never requeued and no replacement pod is scheduled. This is the
    /// barrier-stall drill — the job can never complete and must be caught by
    /// the liveness watchdog rather than hang.
    KillWorkerNoFailover { w: u32 },
    /// Add `extra_secs` of scheduler pending time to worker `w`'s next
    /// restart (models a restart landing during cluster peak).
    RestartDelay { w: u32, extra_secs: f64 },
    /// Divide worker `w`'s link bandwidth by `factor` (> 1 degrades) for
    /// `window_secs`, then restore it.
    NetworkDegrade { w: u32, factor: f64, window_secs: f64 },
    /// The DDS service is unreachable for `window_secs`: fetches return
    /// nothing and workers fall back to their data-poll retry loop until the
    /// outage lifts. Completion reports are client-buffered and still land.
    DdsOutage { window_secs: f64 },
    /// Drop each Agent→Monitor throughput report with probability `prob`
    /// (seeded, reproducible) for `window_secs` — starves the Controller of
    /// statistics without touching training itself.
    DropReports { prob: f64, window_secs: f64, seed: u64 },
    /// Degrade the control bus for `window_secs`: every control message pays
    /// `latency_secs` and is lost with probability `loss_prob` per attempt
    /// (seeded, reproducible). Overrides the job's `control_channel` for the
    /// window — directives crawl, reports go missing, and the fencing /
    /// idempotence machinery has to hold the line.
    ControlDegrade { latency_secs: f64, loss_prob: f64, window_secs: f64, seed: u64 },
    /// Force a `SCALE_OUT { add }` at a fixed instant, bypassing the policy —
    /// the membership drill. Arms the consistent-hash ring like
    /// [`MitigationChoice::Elastic`] does (requires the DDS data strategy).
    ScaleOut { add: u32 },
    /// Force a `SCALE_IN` of worker `w` at a fixed instant. Generation-fenced
    /// like a kill, so a drill racing it against `KillWorker { w }` exercises
    /// the double-remove guard.
    ScaleIn { w: u32 },
}

impl InjectedFault {
    /// Compact human label used in drill reports.
    pub fn describe(&self) -> String {
        match self {
            InjectedFault::KillWorker { w } => format!("kill worker {w}"),
            InjectedFault::KillServer { s } => format!("kill server {s}"),
            InjectedFault::KillWorkerNoFailover { w } => {
                format!("kill worker {w} (failover disabled)")
            }
            InjectedFault::RestartDelay { w, extra_secs } => {
                format!("delay worker {w} restart by {extra_secs:.0}s")
            }
            InjectedFault::NetworkDegrade { w, factor, window_secs } => {
                format!("degrade worker {w} link {factor:.1}x for {window_secs:.0}s")
            }
            InjectedFault::DdsOutage { window_secs } => {
                format!("dds outage for {window_secs:.0}s")
            }
            InjectedFault::DropReports { prob, window_secs, .. } => {
                format!("drop {:.0}% of reports for {window_secs:.0}s", prob * 100.0)
            }
            InjectedFault::ControlDegrade { latency_secs, loss_prob, window_secs, .. } => {
                format!(
                    "degrade control bus ({latency_secs:.0}s latency, {:.0}% loss) for {window_secs:.0}s",
                    loss_prob * 100.0
                )
            }
            InjectedFault::ScaleOut { add } => format!("scale out by {add} workers"),
            InjectedFault::ScaleIn { w } => format!("scale in worker {w}"),
        }
    }

    /// Window length for faults that end with a `ChaosLift`; `None` for
    /// instantaneous faults.
    pub fn window_secs(&self) -> Option<f64> {
        match self {
            InjectedFault::NetworkDegrade { window_secs, .. }
            | InjectedFault::DdsOutage { window_secs }
            | InjectedFault::DropReports { window_secs, .. }
            | InjectedFault::ControlDegrade { window_secs, .. } => Some(*window_secs),
            _ => None,
        }
    }
}

/// Whether gradient math is real or ghosted (timing only).
#[derive(Debug, Clone)]
pub enum ExecutionMode {
    /// Cost-model only; no gradients computed (fast, used for timing sweeps).
    Simulated,
    /// Real factorization-machine training on `dataset`; the report carries the
    /// trained model's holdout AUC.
    Real { dataset: Dataset, holdout: Dataset, latent_k: usize, lr: f32 },
}

/// Everything a job needs. Build with one of the constructors, then chain
/// `with_*` to customize.
#[derive(Debug, Clone)]
pub struct JobConfig {
    pub arch: Arch,
    pub cluster: ClusterSpec,
    pub model: ModelProfile,
    pub mitigation: MitigationChoice,
    pub data: DataStrategy,
    pub execution: ExecutionMode,

    /// `B` — fixed global batch per iteration/round.
    pub global_batch: u64,
    /// `N` — samples per epoch.
    pub total_samples: u64,
    pub epochs: u32,
    /// `M` — batches per shard (paper default 100).
    pub batches_per_shard: u64,

    pub monitor: MonitorConfig,
    /// Monitor aggregation + Controller decision cadence (paper: 5 min).
    pub monitor_tick: SimDuration,
    pub agent: AgentConfig,
    pub broadcast: BroadcastModel,
    /// Delivery model of the Monitor/Controller/Agent control plane.
    /// `Ideal` (the default) delivers inline at the classic broadcast-model
    /// instants — trace-preserving; `Modeled` routes every control message
    /// through the event queue with latency/jitter/loss.
    pub control_channel: ControlChannel,

    /// Checkpoint cadence and cost knobs (failover model, Fig. 17).
    pub checkpoint_interval: SimDuration,
    pub ckpt_save_secs: f64,
    pub ckpt_restore_secs: f64,
    /// Communication-world rebuild on any restart.
    pub world_rebuild_secs: f64,
    /// Wall-clock factor for recomputing lost progress after a *server*
    /// failover (< 1: the replay has no stragglers and a warm cache).
    pub rollback_recompute_factor: f64,
    /// The `antdt-ckpt` subsystem: storage tier, cadence policy, capture
    /// stall. `None` (the default) leaves checkpointing as the legacy cost
    /// model — golden traces depend on that. `FailoverMode::Replay` turns
    /// the subsystem on with `CkptConfig::default()` when this is unset.
    pub ckpt: Option<CkptConfig>,

    /// AntDT-DD device classes (required when `mitigation == AntDtDd`).
    pub dd_classes: Option<Vec<DeviceClassSpec>>,
    /// Worker failover recovery scheme.
    pub failover: FailoverMode,
    /// Optional background fault injection.
    pub faults: Option<FaultConfig>,
    /// Deterministic chaos faults at fixed simulated times (chaos drills).
    pub injections: Vec<ChaosInjection>,
    /// Abort — reporting `stalled` — when no training progress happens for
    /// this long while the job is incomplete. Off by default; chaos drills
    /// turn it on so a deadlocked barrier fails loudly instead of hanging.
    pub liveness_timeout: Option<SimDuration>,

    pub seed: u64,
    /// Safety cap; the run reports `timed_out` when exceeded.
    pub max_sim_time: SimTime,
    /// Record a Gantt chart (costly on long runs).
    pub record_gantt: bool,
    /// Collect full telemetry (metrics registry, span trace, flight recorder)
    /// and attach a `TelemetryReport` to the `JobReport`. Implies Gantt
    /// recording, whose spans feed the Chrome trace export. Telemetry never
    /// participates in event scheduling or RNG draws, so enabling it cannot
    /// change a run's simulated results.
    pub telemetry: bool,
    /// Run the straggler-attribution engine: tag every node interval with a
    /// `WaitCause`, extract blame scores, and attach an `AttrReport` to the
    /// `JobReport`. Like telemetry, attribution is schedule-neutral — it adds
    /// no events and draws no randomness, so an attribution-on run differs
    /// from the default-off run only in the report.
    pub attribution: bool,
}

impl JobConfig {
    fn base(arch: Arch, cluster: ClusterSpec) -> Self {
        JobConfig {
            arch,
            cluster,
            model: ModelProfile::xdeepfm(),
            mitigation: MitigationChoice::None,
            data: DataStrategy::Dds,
            execution: ExecutionMode::Simulated,
            global_batch: 8192,
            total_samples: 1_000_000,
            epochs: 1,
            batches_per_shard: 100,
            monitor: MonitorConfig::default(),
            monitor_tick: SimDuration::from_minutes(5),
            agent: AgentConfig::default(),
            broadcast: BroadcastModel::default(),
            control_channel: ControlChannel::Ideal,
            checkpoint_interval: SimDuration::from_minutes(10),
            ckpt_save_secs: 15.0,
            ckpt_restore_secs: 60.0,
            world_rebuild_secs: 45.0,
            rollback_recompute_factor: 0.8,
            ckpt: None,
            dd_classes: None,
            failover: FailoverMode::DdsBased,
            faults: None,
            injections: Vec::new(),
            liveness_timeout: None,
            seed: 1,
            max_sim_time: SimTime::from_secs_f64(30.0 * 24.0 * 3600.0),
            record_gantt: false,
            telemetry: false,
            attribution: false,
        }
    }

    /// A BSP Parameter Server job on `cluster` with `scenario` injected.
    pub fn ps_bsp(mut cluster: ClusterSpec, scenario: Scenario) -> Self {
        antdt_workloads::straggler::apply(&mut cluster, scenario);
        Self::base(Arch::ParameterServer { consistency: Consistency::Bsp }, cluster)
    }

    /// An ASP Parameter Server job.
    pub fn ps_asp(mut cluster: ClusterSpec, scenario: Scenario) -> Self {
        antdt_workloads::straggler::apply(&mut cluster, scenario);
        Self::base(Arch::ParameterServer { consistency: Consistency::Asp }, cluster)
    }

    /// An SSP Parameter Server job with the given staleness bound.
    pub fn ps_ssp(mut cluster: ClusterSpec, scenario: Scenario, staleness: u32) -> Self {
        antdt_workloads::straggler::apply(&mut cluster, scenario);
        Self::base(Arch::ParameterServer { consistency: Consistency::Ssp { staleness } }, cluster)
    }

    /// An AllReduce (DDP-style) job.
    pub fn allreduce(mut cluster: ClusterSpec, scenario: Scenario) -> Self {
        antdt_workloads::straggler::apply(&mut cluster, scenario);
        Self::base(Arch::AllReduce, cluster)
    }

    /// A Local-SGD job: `sync_every` local steps between ring syncs.
    pub fn local_sgd(mut cluster: ClusterSpec, scenario: Scenario, sync_every: u32) -> Self {
        antdt_workloads::straggler::apply(&mut cluster, scenario);
        Self::base(Arch::LocalSgd { sync_every }, cluster)
    }

    pub fn with_model(mut self, model: ModelProfile) -> Self {
        self.model = model;
        self
    }
    pub fn with_mitigation(mut self, m: MitigationChoice) -> Self {
        self.mitigation = m;
        self
    }
    pub fn with_data_strategy(mut self, d: DataStrategy) -> Self {
        self.data = d;
        self
    }
    pub fn with_global_batch(mut self, b: u64) -> Self {
        self.global_batch = b;
        self
    }
    pub fn with_samples(mut self, n: u64) -> Self {
        self.total_samples = n;
        self
    }
    pub fn with_epochs(mut self, e: u32) -> Self {
        self.epochs = e;
        self
    }
    pub fn with_batches_per_shard(mut self, m: u64) -> Self {
        self.batches_per_shard = m;
        self
    }
    pub fn with_seed(mut self, s: u64) -> Self {
        self.seed = s;
        self
    }
    pub fn with_execution(mut self, e: ExecutionMode) -> Self {
        self.execution = e;
        self
    }
    pub fn with_monitor_tick(mut self, d: SimDuration) -> Self {
        self.monitor_tick = d;
        self
    }
    /// Shrink the whole observe/decide cadence proportionally — useful for
    /// short jobs (tests, examples) where the paper's production cadence
    /// (5-minute ticks, 5/10-minute windows) would never fire.
    pub fn with_fast_cadence(mut self, tick: SimDuration) -> Self {
        self.monitor_tick = tick;
        self.monitor = MonitorConfig { l_trans: tick, l_per: tick * 2 };
        self
    }
    pub fn with_monitor(mut self, m: MonitorConfig) -> Self {
        self.monitor = m;
        self
    }
    /// Set the control-plane delivery model (see [`ControlChannel`]).
    pub fn with_control_channel(mut self, ch: ControlChannel) -> Self {
        self.control_channel = ch;
        self
    }
    pub fn with_dd_classes(mut self, classes: Vec<DeviceClassSpec>) -> Self {
        self.dd_classes = Some(classes);
        self
    }
    pub fn with_gantt(mut self) -> Self {
        self.record_gantt = true;
        self
    }
    pub fn with_telemetry(mut self) -> Self {
        self.telemetry = true;
        self
    }
    /// Arm the straggler-attribution engine (per-cause time decomposition,
    /// blame scores, `JobReport::attr`). Schedule-neutral: see
    /// [`JobConfig::attribution`].
    pub fn with_attribution(mut self) -> Self {
        self.attribution = true;
        self
    }
    pub fn with_checkpoint_interval(mut self, d: SimDuration) -> Self {
        self.checkpoint_interval = d;
        self
    }
    /// Seconds the legacy (subsystem-off) checkpoint save stalls the servers.
    /// When sweeping the interval against `FailoverMode::Replay`, set this
    /// comparable to [`antdt_ckpt::CkptConfig::capture_stall_secs`] so the two
    /// models differ in *recovery*, not in pause cost.
    pub fn with_ckpt_save_secs(mut self, secs: f64) -> Self {
        self.ckpt_save_secs = secs;
        self
    }
    pub fn with_failover_mode(mut self, mode: FailoverMode) -> Self {
        self.failover = mode;
        self
    }
    /// Enable the checkpoint subsystem with an explicit storage tier /
    /// cadence policy / capture cost (see [`antdt_ckpt::CkptConfig`]).
    pub fn with_ckpt(mut self, c: CkptConfig) -> Self {
        self.ckpt = Some(c);
        self
    }
    pub fn with_faults(mut self, faults: FaultConfig) -> Self {
        self.faults = Some(faults);
        self
    }
    pub fn with_injections(mut self, injections: Vec<ChaosInjection>) -> Self {
        self.injections = injections;
        self
    }
    pub fn with_liveness_timeout(mut self, d: SimDuration) -> Self {
        self.liveness_timeout = Some(d);
        self
    }

    pub fn n_workers(&self) -> usize {
        self.cluster.n_workers()
    }
    pub fn n_servers(&self) -> usize {
        self.cluster.n_servers()
    }

    /// Whether this job can change membership mid-run: the elastic policy is
    /// the mitigation, or a chaos drill injects a scale fault. Everything
    /// elastic — the consistent-hash ring, the membership report section —
    /// keys off this, so an unarmed job takes the exact pre-elastic code
    /// paths and its trace stays byte-identical.
    pub fn elastic_armed(&self) -> bool {
        matches!(self.mitigation, MitigationChoice::Elastic(_))
            || self.injections.iter().any(|inj| {
                matches!(inj.fault, InjectedFault::ScaleOut { .. } | InjectedFault::ScaleIn { .. })
            })
    }

    /// The DD config derived from `dd_classes`.
    pub fn dd_config(&self) -> Option<DdConfig> {
        self.dd_classes.clone().map(DdConfig::new)
    }

    /// Validate cross-field invariants; panics with a clear message on misuse.
    pub fn validate(&self) {
        assert!(self.cluster.n_workers() > 0, "need at least one worker");
        if let Arch::ParameterServer { .. } = self.arch {
            assert!(self.cluster.n_servers() > 0, "PS architecture needs servers");
        }
        if let Arch::LocalSgd { sync_every } = self.arch {
            assert!(sync_every >= 1, "LocalSgd sync_every must be at least 1");
        }
        assert!(self.global_batch > 0, "global batch must be positive");
        if let MitigationChoice::AntDtDd = self.mitigation {
            let n: usize = self
                .dd_classes
                .as_ref()
                .expect("AntDT-DD needs dd_classes")
                .iter()
                .map(|c| c.count as usize)
                .sum();
            assert_eq!(n, self.n_workers(), "dd_classes must cover every worker");
        }
        if let MitigationChoice::Elastic(e) = &self.mitigation {
            assert!(
                self.data == DataStrategy::Dds,
                "Elastic mitigation requires the DDS data strategy (joiners pull shards; a static partition cannot be re-cut mid-run)"
            );
            assert!(
                self.n_workers() <= e.max_workers as usize,
                "cluster already larger than the elastic max_workers ceiling"
            );
            assert!(
                self.n_workers() >= e.min_workers as usize,
                "cluster smaller than the elastic min_workers floor"
            );
        }
        if let MitigationChoice::BackupWorkers { b } = self.mitigation {
            assert!(
                (b as usize) < self.n_workers(),
                "backup worker count must leave at least one active worker"
            );
        }
        if self.failover == FailoverMode::Replay {
            assert!(
                matches!(self.arch, Arch::ParameterServer { .. }),
                "FailoverMode::Replay requires a Parameter Server job"
            );
            assert!(
                self.data == DataStrategy::Dds,
                "FailoverMode::Replay requires the DDS data strategy (there is no queue to rewind otherwise)"
            );
        }
        if let Some(c) = &self.ckpt {
            assert!(
                c.capture_stall_secs.is_finite() && c.capture_stall_secs >= 0.0,
                "ckpt capture stall must be finite and non-negative"
            );
        }
        if let ExecutionMode::Real { dataset, .. } = &self.execution {
            assert!(
                dataset.len() as u64 >= self.total_samples,
                "real-math dataset smaller than total_samples"
            );
        }
        self.control_channel.validate();
        for inj in &self.injections {
            assert!(
                inj.at_secs.is_finite() && inj.at_secs >= 0.0,
                "injection time must be finite and non-negative"
            );
            match &inj.fault {
                InjectedFault::KillWorker { w }
                | InjectedFault::KillWorkerNoFailover { w }
                | InjectedFault::RestartDelay { w, .. }
                | InjectedFault::NetworkDegrade { w, .. } => {
                    assert!(
                        (*w as usize) < self.n_workers(),
                        "injection targets worker {w} but the cluster has {} workers",
                        self.n_workers()
                    );
                }
                InjectedFault::KillServer { s } => {
                    assert!(
                        matches!(self.arch, Arch::ParameterServer { .. }),
                        "KillServer injection requires a Parameter Server job"
                    );
                    assert!(
                        (*s as usize) < self.n_servers(),
                        "injection targets server {s} but the cluster has {} servers",
                        self.n_servers()
                    );
                }
                InjectedFault::DdsOutage { .. } => {
                    assert!(
                        self.data == DataStrategy::Dds,
                        "DdsOutage injection requires the DDS data strategy"
                    );
                }
                InjectedFault::DropReports { prob, .. } => {
                    assert!(
                        (0.0..=1.0).contains(prob),
                        "DropReports probability must be in [0, 1]"
                    );
                }
                InjectedFault::ControlDegrade { latency_secs, loss_prob, .. } => {
                    assert!(
                        latency_secs.is_finite() && *latency_secs >= 0.0,
                        "ControlDegrade latency must be finite and non-negative"
                    );
                    assert!(
                        (0.0..1.0).contains(loss_prob),
                        "ControlDegrade loss probability must be in [0, 1)"
                    );
                }
                InjectedFault::ScaleOut { add } => {
                    assert!(*add >= 1, "ScaleOut must add at least one worker");
                    assert!(
                        self.data == DataStrategy::Dds,
                        "ScaleOut injection requires the DDS data strategy (a static partition cannot feed joiners)"
                    );
                }
                InjectedFault::ScaleIn { w } => {
                    assert!(
                        (*w as usize) < self.n_workers(),
                        "injection retires worker {w} but the cluster starts with {} workers",
                        self.n_workers()
                    );
                    assert!(
                        self.data == DataStrategy::Dds,
                        "ScaleIn injection requires the DDS data strategy (a departed worker's static partition would be lost)"
                    );
                }
            }
            if let InjectedFault::NetworkDegrade { factor, .. } = inj.fault {
                assert!(factor.is_finite() && factor >= 1.0, "NetworkDegrade factor must be >= 1");
            }
            if let Some(window) = inj.fault.window_secs() {
                assert!(window.is_finite() && window > 0.0, "fault window must be positive");
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use antdt_workloads::cluster::cluster_a_scaled;

    #[test]
    fn builders_apply_scenario_and_defaults() {
        let cfg = JobConfig::ps_bsp(
            cluster_a_scaled(4, 2),
            Scenario::WorkerPersistent { intensity: 1.0 },
        );
        cfg.validate();
        assert_eq!(cfg.n_workers(), 4);
        // Scenario applied: last worker has a persistent phase.
        assert!(!cfg.cluster.workers[3].profile.phases.is_empty());
        assert!(cfg.cluster.workers[0].profile.phases.is_empty());
    }

    #[test]
    #[should_panic(expected = "PS architecture needs servers")]
    fn ps_without_servers_is_rejected() {
        JobConfig::ps_bsp(cluster_a_scaled(4, 0), Scenario::None).validate();
    }

    #[test]
    #[should_panic(expected = "backup worker count")]
    fn too_many_backup_workers_rejected() {
        JobConfig::ps_bsp(cluster_a_scaled(2, 1), Scenario::None)
            .with_mitigation(MitigationChoice::BackupWorkers { b: 2 })
            .validate();
    }

    #[test]
    #[should_panic(expected = "dd_classes")]
    fn dd_requires_classes() {
        JobConfig::allreduce(cluster_a_scaled(2, 0), Scenario::None)
            .with_mitigation(MitigationChoice::AntDtDd)
            .validate();
    }

    #[test]
    fn valid_injections_pass_validation() {
        JobConfig::ps_bsp(cluster_a_scaled(4, 2), Scenario::None)
            .with_injections(vec![
                ChaosInjection { at_secs: 10.0, fault: InjectedFault::KillWorker { w: 3 } },
                ChaosInjection {
                    at_secs: 20.0,
                    fault: InjectedFault::DdsOutage { window_secs: 30.0 },
                },
                ChaosInjection {
                    at_secs: 30.0,
                    fault: InjectedFault::DropReports { prob: 0.5, window_secs: 60.0, seed: 7 },
                },
            ])
            .validate();
    }

    #[test]
    #[should_panic(expected = "Replay requires a Parameter Server")]
    fn replay_failover_rejected_for_allreduce() {
        JobConfig::allreduce(cluster_a_scaled(4, 0), Scenario::None)
            .with_failover_mode(FailoverMode::Replay)
            .validate();
    }

    #[test]
    #[should_panic(expected = "Replay requires the DDS data strategy")]
    fn replay_failover_rejected_without_dds() {
        JobConfig::ps_asp(cluster_a_scaled(4, 2), Scenario::None)
            .with_data_strategy(DataStrategy::EvenPartition)
            .with_failover_mode(FailoverMode::Replay)
            .validate();
    }

    #[test]
    fn replay_failover_with_ckpt_config_passes_validation() {
        JobConfig::ps_bsp(cluster_a_scaled(4, 2), Scenario::None)
            .with_failover_mode(FailoverMode::Replay)
            .with_ckpt(CkptConfig::default())
            .validate();
    }

    #[test]
    #[should_panic(expected = "targets worker")]
    fn injection_worker_out_of_range_rejected() {
        JobConfig::ps_bsp(cluster_a_scaled(4, 2), Scenario::None)
            .with_injections(vec![ChaosInjection {
                at_secs: 10.0,
                fault: InjectedFault::KillWorker { w: 4 },
            }])
            .validate();
    }

    #[test]
    #[should_panic(expected = "Parameter Server")]
    fn injection_kill_server_rejected_for_allreduce() {
        JobConfig::allreduce(cluster_a_scaled(4, 0), Scenario::None)
            .with_injections(vec![ChaosInjection {
                at_secs: 10.0,
                fault: InjectedFault::KillServer { s: 0 },
            }])
            .validate();
    }
}
