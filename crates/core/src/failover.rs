//! Failover time composition (paper §V-E2/§V-E3 and Fig. 17).
//!
//! A `KILL_RESTART` costs, on the scheduling side, pod pending time + node
//! initialization, and on the application side, communication-world rebuild
//! plus recovery work. The recovery work is where AntDT wins on workers:
//!
//! * **Checkpoint-based** (mainstream libraries): restore model + IO state from
//!   the last checkpoint and *recompute every worker's* progress since then —
//!   plus the amortized cost of writing checkpoints at all. Frequent saves make
//!   the save overhead dominate; infrequent saves make the recompute dominate —
//!   the U-shape of Fig. 17.
//! * **DDS-based** (AntDT, worker side): the servers still hold the latest
//!   parameters, so only the crashed worker's `DOING` shards are requeued and
//!   recomputed — a small constant.

use antdt_sim::SimDuration;
use serde::Serialize;

/// Application-side delay of one *worker* failover under the checkpoint-based
/// scheme (scheduling time excluded, as in Fig. 17).
///
/// `save_secs` — one checkpoint write; `job_secs`/`interval_secs` determine how
/// many saves the job pays for (amortized per failover as the paper plots a
/// single-failover job); `restore_secs` — read + rebuild; the expected
/// recompute is half an interval, scaled by `recompute_factor`.
pub fn checkpoint_failover_delay_secs(
    interval_secs: f64,
    job_secs: f64,
    save_secs: f64,
    restore_secs: f64,
    recompute_factor: f64,
) -> f64 {
    assert!(interval_secs > 0.0);
    let n_saves = (job_secs / interval_secs).max(0.0);
    let save_overhead = n_saves * save_secs;
    let expected_recompute = recompute_factor * interval_secs / 2.0;
    save_overhead + restore_secs + expected_recompute
}

/// Application-side delay of one worker failover under the DDS-based scheme:
/// rebuild the communication world and recompute only the crashed worker's
/// in-flight shard (`shard_samples / throughput`).
pub fn dds_failover_delay_secs(
    world_rebuild_secs: f64,
    shard_samples: u64,
    worker_throughput: f64,
) -> f64 {
    let recompute =
        if worker_throughput > 0.0 { shard_samples as f64 / worker_throughput } else { 0.0 };
    world_rebuild_secs + recompute
}

/// One point of the Fig. 17 curve.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct Fig17Point {
    pub ckpt_interval: SimDuration,
    pub checkpoint_based: SimDuration,
    pub dds_based: SimDuration,
}

/// Regenerate the Fig. 17 sweep for a job of `job` duration.
#[allow(clippy::too_many_arguments)]
pub fn fig17_curve(
    intervals: &[SimDuration],
    job: SimDuration,
    save_secs: f64,
    restore_secs: f64,
    recompute_factor: f64,
    world_rebuild_secs: f64,
    shard_samples: u64,
    worker_throughput: f64,
) -> Vec<Fig17Point> {
    intervals
        .iter()
        .map(|&iv| Fig17Point {
            ckpt_interval: iv,
            checkpoint_based: SimDuration::from_secs_f64(checkpoint_failover_delay_secs(
                iv.as_secs_f64(),
                job.as_secs_f64(),
                save_secs,
                restore_secs,
                recompute_factor,
            )),
            dds_based: SimDuration::from_secs_f64(dds_failover_delay_secs(
                world_rebuild_secs,
                shard_samples,
                worker_throughput,
            )),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checkpoint_curve_is_u_shaped() {
        let job = 2.0 * 3600.0;
        let delays: Vec<f64> = [300.0, 900.0, 1800.0, 3600.0, 7200.0]
            .iter()
            .map(|&iv| checkpoint_failover_delay_secs(iv, job, 45.0, 60.0, 0.8))
            .collect();
        // High frequency (5 min): save overhead dominates — paper reports ~17 min.
        assert!(delays[0] > 600.0, "frequent-save delay {} too small", delays[0]);
        // The minimum sits strictly inside the sweep.
        let min_idx =
            delays.iter().enumerate().min_by(|a, b| a.1.partial_cmp(b.1).unwrap()).unwrap().0;
        assert!(min_idx > 0 && min_idx < delays.len() - 1, "delays {delays:?}");
        // Long intervals: recompute dominates and grows.
        assert!(delays[4] > delays[min_idx] * 1.5);
    }

    #[test]
    fn dds_delay_is_small_and_interval_independent() {
        // ~2 minutes in the paper: rebuild + one shard's recompute.
        let d = dds_failover_delay_secs(45.0, 160_000, 2000.0);
        assert!((60.0..300.0).contains(&d), "dds delay {d}");
        assert_eq!(dds_failover_delay_secs(45.0, 100, 0.0), 45.0);
    }

    #[test]
    fn fig17_dds_beats_checkpoints_at_high_save_frequency() {
        let intervals: Vec<SimDuration> =
            (1..=12).map(|m| SimDuration::from_minutes(m * 5)).collect();
        let pts = fig17_curve(
            &intervals,
            SimDuration::from_secs(7200),
            45.0,
            60.0,
            0.8,
            45.0,
            160_000,
            2000.0,
        );
        assert_eq!(pts.len(), 12);
        for p in &pts {
            assert!(
                p.dds_based < p.checkpoint_based,
                "DDS {} vs ckpt {} at {}",
                p.dds_based,
                p.checkpoint_based,
                p.ckpt_interval
            );
            assert_eq!(p.dds_based, pts[0].dds_based, "DDS delay is flat");
        }
    }
}
