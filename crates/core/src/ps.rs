//! The Parameter Server training runtime (BSP / ASP / SSP) on the
//! discrete-event simulator.
//!
//! ## Time model
//!
//! One worker iteration: fetch data (DDS round-trip when a new shard is
//! needed), compute `Tᵢʷ` (cost profile × node contention profile ×
//! accumulation count), push gradient pieces to every server, wait for the
//! servers (`Tᵢˢ`: per-piece aggregation, plus one optimizer-apply per
//! iteration in BSP / per push in ASP — which is why ASP loses to BSP under a
//! server straggler, §VII-B1b), and pull fresh parameters (`Tᵢᵐ`).
//!
//! In **BSP** a barrier closes the iteration once the required pushes arrived
//! (`n` alive participants, or `n − b` with backup workers; the dropped
//! stragglers' samples are rolled back into their DDS shards). In **ASP** every
//! worker loops independently; server work is serialized through per-server
//! busy-time bookkeeping. **SSP** is ASP with an iteration-lead bound.
//!
//! ## Fault model
//!
//! `KILL_RESTART` (and injected faults) bump the node's *generation*; stale
//! events are dropped. A killed worker's `DOING` shards requeue (at-least-once);
//! its replacement starts clean (new hardware) after scheduler pending + init +
//! world rebuild. A killed server stalls dependent pushes until its replacement
//! restores parameters from the last checkpoint (plus a recompute penalty for
//! the lost progress).

use crate::config::{
    Consistency, DataStrategy, ExecutionMode, FailoverMode, InjectedFault, JobConfig,
};
use crate::events::Ev;
use crate::obs::RtTele;
use crate::report::{ActionApplication, InjectionRecord, JobReport};
use antdt_agent::{Agent, OverheadLedger};
use antdt_controller::{Action, MitigationPolicy, PolicyCtx};
use antdt_dds::{DdsConfig, DdsService, ShardLease};
use antdt_ml::{FactorizationMachine, Model, Optimizer, PartitionPlan, Sgd};
use antdt_monitor::{ClusterInfo, ErrorClass, MetricStore, NodeEvent, NodeId, RetryableError};
use antdt_sim::dist::Dist;
use antdt_sim::gantt::SpanKind;
use antdt_sim::{Engine, Gantt, Link, NodeProfile, RngPool, SimDuration, SimTime, TimeSeries};
use antdt_telemetry::DecisionRecord;
use antdt_workloads::DeviceClass;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::{HashMap, HashSet};

/// Extra per-iteration DDS state-synchronization stall (shard offsets, batch
/// cursors) charged on the worker's critical path and in the overhead ledger.
const DDS_SYNC_SECS: f64 = 0.002;
/// DDS round-trip when fetching / reporting a shard.
const DDS_FETCH_SECS: f64 = 0.005;
/// Retry delay when the shard queue is momentarily empty (end of epoch).
const DATA_POLL: SimDuration = SimDuration(5_000_000);

struct LeaseState {
    lease: ShardLease,
    order: Option<Vec<u64>>,
    consumed: u64,
    committed: u64,
}

enum DataSource {
    Dds,
    Fixed { remaining: u64 },
}

struct Inflight {
    took: u64,
    start: SimTime,
    compute_end: SimTime,
    grad: Option<Vec<f32>>,
}

struct WorkerState {
    gen: u32,
    alive: bool,
    done: bool,
    profile: NodeProfile,
    device: DeviceClass,
    link: Link,
    agent: Agent,
    quota: u64,
    accum: u32,
    lr_scale: f32,
    source: DataSource,
    leases: Vec<LeaseState>,
    iter: u64,
    inflight: Option<Inflight>,
    rng: StdRng,
    series_bpt: TimeSeries,
    series_batch: TimeSeries,
    killed_at: Option<SimTime>,
    /// Wants data but the shard queue is momentarily empty; excluded from the
    /// SSP minimum so leaders holding leases are not gated on a worker that
    /// cannot progress anyway (liveness guard).
    starving: bool,
    /// Earliest instant the worker may begin its next iteration — the barrier
    /// release + pull time. Guards against stray wake-ups (action-delivery
    /// pokes, duplicate events) starting an iteration before the release,
    /// which would illegally pipeline the synchronous schedule.
    next_allowed: SimTime,
}

struct ServerState {
    gen: u32,
    alive: bool,
    profile: NodeProfile,
    link: Link,
    free_at: SimTime,
    series_bpt: TimeSeries,
}

struct MathState {
    model: FactorizationMachine,
    opt: Sgd,
    #[allow(dead_code)]
    plan: PartitionPlan,
    agg: Vec<f32>,
}

/// One worker's completed push, waiting at the BSP barrier.
struct Push {
    w: u32,
    compute_end: SimTime,
    arrivals: Vec<SimTime>,
}

struct BspState {
    iter: u64,
    /// The iteration's participant set, frozen at the previous barrier release:
    /// alive, not done, not starving, with a positive batch quota. Members may
    /// only *leave* mid-iteration (death, data exhaustion, quota zeroed) —
    /// late joiners wait for the next release, so the close threshold never
    /// rises underneath an open iteration.
    participants: HashSet<u32>,
    pushes: Vec<Push>,
    backup_b: u32,
    /// Set when the close condition was met but a server is down.
    close_pending: bool,
}

pub(crate) struct PsWorld {
    cfg: JobConfig,
    pool: RngPool,
    sched_rng: StdRng,
    workers: Vec<WorkerState>,
    servers: Vec<ServerState>,
    dds: Option<DdsService>,
    store: MetricStore,
    policy: Box<dyn MitigationPolicy>,
    ctx: PolicyCtx,
    math: Option<MathState>,
    bsp: BspState,
    overhead: OverheadLedger,
    actions: Vec<(SimTime, Action)>,
    kills: Vec<(SimTime, NodeId)>,
    restarts: Vec<(SimTime, NodeId)>,
    last_ckpt: SimTime,
    samples_done: u64,
    rolled_back_samples: u64,
    iterations: u64,
    jct_mark: SimTime,
    finished: bool,
    timed_out: bool,
    throughput: TimeSeries,
    bucket_start: SimTime,
    bucket_samples: u64,
    gantt: Option<Gantt>,
    /// ASP pushes parked on a dead server: (worker, gen, compute_end).
    parked: Vec<(u32, u32, SimTime)>,
    ssp_waiting: HashSet<u32>,
    /// Checkpoint-based failover stalls the whole job until the restore and
    /// global recompute finish.
    stall_until: SimTime,

    // ---- chaos-drill state; all of it stays empty/neutral unless the config
    // carries `injections` or a `liveness_timeout`.
    injections_log: Vec<InjectionRecord>,
    action_log: Vec<ActionApplication>,
    /// Workers killed with failover disabled: DOING shards are not requeued
    /// and no replacement pod is scheduled (barrier-stall drills).
    chaos_no_failover: HashSet<u32>,
    /// Extra scheduler delay consumed by each worker's next restart.
    chaos_restart_extra: Vec<f64>,
    /// Active DropReports windows: `(injection idx, prob, seeded rng)`.
    chaos_droppers: Vec<(u32, f64, StdRng)>,
    /// Active NetworkDegrade windows: `(injection idx, worker, original bw)`.
    chaos_degraded: Vec<(u32, u32, f64)>,
    /// Killed worker → injection-log index awaiting the recovery marks.
    chaos_awaiting_recovery: HashMap<u32, usize>,
    /// Nesting depth of overlapping DDS outage windows.
    chaos_outages: u32,
    /// Last instant training progress was observed (liveness watchdog).
    last_progress: SimTime,
    stalled: bool,

    /// Telemetry bundle; present iff `JobConfig::telemetry`. Counting and
    /// tracing never touch the event order or any RNG stream, so a run's
    /// simulated results are identical with telemetry on or off.
    tele: Option<RtTele>,
    /// Controller decision audit drained from the policy after every tick.
    decision_log: Vec<DecisionRecord>,
}

const THROUGHPUT_BUCKET: SimDuration = SimDuration(60_000_000);

pub(crate) fn run(cfg: JobConfig, policy: Box<dyn MitigationPolicy>) -> JobReport {
    cfg.validate();
    let rt = cfg.telemetry.then(|| RtTele::new("ps"));
    let pool = RngPool::new(cfg.seed);
    let n = cfg.n_workers();
    let m = cfg.n_servers();

    // Shards are sized in *local* batches: a shard is consumed by one worker,
    // so `M` counts that worker's batches (K = N / ((B/n)·M)).
    let local_batch = (cfg.global_batch / n.max(1) as u64).max(1);
    let dds = match cfg.data {
        DataStrategy::Dds => Some(DdsService::new(
            DdsConfig::new(cfg.total_samples, local_batch)
                .with_batches_per_shard(cfg.batches_per_shard)
                .with_epochs(cfg.epochs)
                .with_shuffle(Some(cfg.seed)),
        )),
        DataStrategy::EvenPartition => None,
    };
    if let (Some(rt), Some(dds)) = (&rt, &dds) {
        dds.attach_telemetry(rt.dds.clone());
    }

    let math = match &cfg.execution {
        ExecutionMode::Simulated => None,
        ExecutionMode::Real { dataset, latent_k, lr, .. } => {
            let model = FactorizationMachine::new(dataset.n_features, *latent_k, 0.05);
            let n_params = model.n_params();
            Some(MathState {
                model,
                opt: Sgd::new(*lr),
                plan: PartitionPlan::even(n_params, m.max(1)),
                agg: vec![0.0; n_params],
            })
        }
    };

    let even_quota = |i: usize| {
        cfg.global_batch / n as u64 + u64::from((i as u64) < cfg.global_batch % n as u64)
    };
    let per_worker_fixed = |i: usize| {
        let total = cfg.total_samples * cfg.epochs as u64;
        total / n as u64 + u64::from((i as u64) < total % n as u64)
    };

    let mut store = MetricStore::new(cfg.monitor);
    if let Some(rt) = &rt {
        store.attach_telemetry(rt.monitor.clone());
    }
    let mut workers: Vec<WorkerState> = (0..n)
        .map(|i| {
            store.register(NodeId::worker(i as u32));
            let spec = &cfg.cluster.workers[i];
            WorkerState {
                gen: 0,
                alive: true,
                done: false,
                profile: spec.profile.clone(),
                device: spec.device,
                link: spec.link.clone(),
                agent: Agent::new(NodeId::worker(i as u32), cfg.agent),
                quota: even_quota(i),
                accum: 1,
                lr_scale: 1.0,
                source: match cfg.data {
                    DataStrategy::Dds => DataSource::Dds,
                    DataStrategy::EvenPartition => {
                        DataSource::Fixed { remaining: per_worker_fixed(i) }
                    }
                },
                leases: Vec::new(),
                iter: 0,
                inflight: None,
                rng: pool.stream2(11, i as u64),
                series_bpt: TimeSeries::new(),
                series_batch: TimeSeries::new(),
                killed_at: None,
                starving: false,
                next_allowed: SimTime::ZERO,
            }
        })
        .collect();
    if let Some(rt) = &rt {
        for w in &mut workers {
            w.agent.attach_telemetry(rt.agents.clone());
        }
    }
    let servers: Vec<ServerState> = (0..m)
        .map(|j| {
            store.register(NodeId::server(j as u32));
            let spec = &cfg.cluster.servers[j];
            ServerState {
                gen: 0,
                alive: true,
                profile: spec.profile.clone(),
                link: spec.link.clone(),
                free_at: SimTime::ZERO,
                series_bpt: TimeSeries::new(),
            }
        })
        .collect();

    let ctx = PolicyCtx { global_batch: cfg.global_batch, n_workers: n, n_servers: m };
    // Telemetry implies Gantt recording: the recorded spans become the bulk of
    // the exported Chrome trace.
    let gantt = (cfg.record_gantt || cfg.telemetry).then(Gantt::new);
    let mut world = PsWorld {
        sched_rng: pool.stream(7),
        pool,
        workers,
        servers,
        dds,
        store,
        policy,
        ctx,
        math,
        bsp: BspState {
            iter: 0,
            participants: (0..n as u32).collect(),
            pushes: Vec::new(),
            backup_b: 0,
            close_pending: false,
        },
        overhead: OverheadLedger::new(),
        actions: Vec::new(),
        kills: Vec::new(),
        restarts: Vec::new(),
        last_ckpt: SimTime::ZERO,
        samples_done: 0,
        rolled_back_samples: 0,
        iterations: 0,
        jct_mark: SimTime::ZERO,
        finished: false,
        timed_out: false,
        throughput: TimeSeries::new(),
        bucket_start: SimTime::ZERO,
        bucket_samples: 0,
        gantt,
        parked: Vec::new(),
        ssp_waiting: HashSet::new(),
        stall_until: SimTime::ZERO,
        injections_log: Vec::new(),
        action_log: Vec::new(),
        chaos_no_failover: HashSet::new(),
        chaos_restart_extra: vec![0.0; n],
        chaos_droppers: Vec::new(),
        chaos_degraded: Vec::new(),
        chaos_awaiting_recovery: HashMap::new(),
        chaos_outages: 0,
        last_progress: SimTime::ZERO,
        stalled: false,
        tele: rt,
        decision_log: Vec::new(),
        cfg,
    };

    let mut eng: Engine<Ev> = Engine::new();
    if let Some(rt) = &world.tele {
        eng.attach_telemetry(rt.events_scheduled.clone(), rt.events_processed.clone());
    }
    for w in 0..n as u32 {
        eng.schedule(SimTime::ZERO, Ev::WorkerStart { w, gen: 0 });
    }
    eng.schedule(SimTime::ZERO + world.cfg.monitor_tick, Ev::MonitorTick);
    eng.schedule(SimTime::ZERO + world.cfg.checkpoint_interval, Ev::Checkpoint);
    if let Some(faults) = world.cfg.faults {
        for w in 0..n as u32 {
            let at = world.sample_fault_delay(faults.worker_mtbf);
            eng.schedule(SimTime::ZERO + at, Ev::FaultWorker { w });
        }
        if let Some(mtbf) = faults.server_mtbf {
            for s in 0..m as u32 {
                let at = world.sample_fault_delay(mtbf);
                eng.schedule(SimTime::ZERO + at, Ev::FaultServer { s });
            }
        }
    }
    for (k, inj) in world.cfg.injections.iter().enumerate() {
        eng.schedule(SimTime::from_secs_f64(inj.at_secs), Ev::ChaosFault { k: k as u32 });
    }
    if let Some(timeout) = world.cfg.liveness_timeout {
        eng.schedule(SimTime::ZERO + timeout, Ev::LivenessCheck);
    }

    let deadline = world.cfg.max_sim_time;
    let drained = eng.run_until(deadline, |eng, ev| world.handle(eng, ev));
    if !drained && !world.finished {
        world.timed_out = true;
    }
    world.into_report(eng.processed())
}

impl PsWorld {
    fn consistency(&self) -> Consistency {
        match self.cfg.arch {
            crate::config::Arch::ParameterServer { consistency } => consistency,
            crate::config::Arch::AllReduce => unreachable!("allreduce uses its own runtime"),
        }
    }

    fn is_bsp(&self) -> bool {
        matches!(self.consistency(), Consistency::Bsp)
    }

    fn handle(&mut self, eng: &mut Engine<Ev>, ev: Ev) {
        if self.finished {
            return;
        }
        if let Some(rt) = &self.tele {
            rt.tele.flight.record(eng.now().as_micros(), "event", format!("{ev:?}"));
        }
        match ev {
            Ev::WorkerStart { w, gen } => self.worker_start(eng, w, gen),
            Ev::WorkerComputeDone { w, gen, iter } => self.compute_done(eng, w, gen, iter),
            Ev::WorkerReady { w, gen } => {
                // Alias of WorkerStart after a pull completes.
                self.worker_start(eng, w, gen)
            }
            Ev::MonitorTick => self.monitor_tick(eng),
            Ev::WorkerKill { w, gen } => {
                self.worker_kill(eng, w, gen, ErrorClass::Retryable(RetryableError::ProactiveKill))
            }
            Ev::WorkerRestart { w, gen } => self.worker_restart(eng, w, gen),
            Ev::ServerKill { s, gen } => self.server_kill(eng, s, gen),
            Ev::ServerRestart { s, gen } => self.server_restart(eng, s, gen),
            Ev::Checkpoint => self.checkpoint(eng),
            Ev::FaultWorker { w } => self.fault_worker(eng, w),
            Ev::FaultServer { s } => self.fault_server(eng, s),
            Ev::RoundEnd { .. } => unreachable!("PS runtime has no rounds"),
            Ev::ChaosFault { k } => self.chaos_fault(eng, k),
            Ev::ChaosLift { k } => self.chaos_lift(eng, k),
            Ev::LivenessCheck => self.liveness_check(eng),
        }
    }

    // ----------------------------------------------------------------- chaos

    /// An injected fault fires. The target generation is resolved *now*, so a
    /// plan survives unrelated restarts; kills of already-dead nodes no-op but
    /// are still logged.
    fn chaos_fault(&mut self, eng: &mut Engine<Ev>, k: u32) {
        let now = eng.now();
        let inj = self.cfg.injections[k as usize].clone();
        self.injections_log.push(InjectionRecord {
            index: k,
            at: now,
            desc: inj.fault.describe(),
            restarted_at: None,
            recovered_at: None,
        });
        let rec_idx = self.injections_log.len() - 1;
        if let Some(rt) = &self.tele {
            rt.tele.tracer.instant(
                "chaos-fault",
                "chaos",
                now.as_micros(),
                0,
                &[("fault", &inj.fault.describe())],
            );
        }
        match inj.fault {
            InjectedFault::KillWorker { w } => {
                if self.workers[w as usize].alive {
                    let gen = self.workers[w as usize].gen;
                    self.chaos_awaiting_recovery.insert(w, rec_idx);
                    self.worker_kill(
                        eng,
                        w,
                        gen,
                        ErrorClass::Retryable(RetryableError::NodeFailure),
                    );
                }
            }
            InjectedFault::KillServer { s } => {
                if self.servers[s as usize].alive {
                    let gen = self.servers[s as usize].gen;
                    self.server_kill(eng, s, gen);
                }
            }
            InjectedFault::KillWorkerNoFailover { w } => {
                if self.workers[w as usize].alive {
                    let gen = self.workers[w as usize].gen;
                    self.chaos_no_failover.insert(w);
                    self.worker_kill(
                        eng,
                        w,
                        gen,
                        ErrorClass::Retryable(RetryableError::NodeFailure),
                    );
                }
            }
            InjectedFault::RestartDelay { w, extra_secs } => {
                self.chaos_restart_extra[w as usize] += extra_secs;
            }
            InjectedFault::NetworkDegrade { w, factor, window_secs } => {
                let link = &mut self.workers[w as usize].link;
                self.chaos_degraded.push((k, w, link.bandwidth_bps));
                link.bandwidth_bps /= factor;
                eng.schedule(now + SimDuration::from_secs_f64(window_secs), Ev::ChaosLift { k });
            }
            InjectedFault::DdsOutage { window_secs } => {
                self.chaos_outages += 1;
                if let Some(dds) = &self.dds {
                    dds.set_paused(true);
                }
                eng.schedule(now + SimDuration::from_secs_f64(window_secs), Ev::ChaosLift { k });
            }
            InjectedFault::DropReports { prob, window_secs, seed } => {
                self.chaos_droppers.push((k, prob, StdRng::seed_from_u64(seed)));
                eng.schedule(now + SimDuration::from_secs_f64(window_secs), Ev::ChaosLift { k });
            }
        }
    }

    /// A windowed fault's window closes: undo its effect.
    fn chaos_lift(&mut self, eng: &mut Engine<Ev>, k: u32) {
        match self.cfg.injections[k as usize].fault {
            InjectedFault::NetworkDegrade { .. } => {
                if let Some(pos) = self.chaos_degraded.iter().position(|d| d.0 == k) {
                    let (_, w, bw) = self.chaos_degraded.swap_remove(pos);
                    self.workers[w as usize].link.bandwidth_bps = bw;
                }
            }
            InjectedFault::DdsOutage { .. } => {
                self.chaos_outages = self.chaos_outages.saturating_sub(1);
                if self.chaos_outages == 0 {
                    if let Some(dds) = &self.dds {
                        dds.set_paused(false);
                    }
                    // Starving workers poll every DATA_POLL anyway; poke them
                    // so recovery isn't charged the tail of a poll interval.
                    for w in 0..self.workers.len() {
                        if self.workers[w].alive
                            && !self.workers[w].done
                            && self.workers[w].inflight.is_none()
                        {
                            eng.schedule(
                                eng.now(),
                                Ev::WorkerStart { w: w as u32, gen: self.workers[w].gen },
                            );
                        }
                    }
                }
            }
            InjectedFault::DropReports { .. } => {
                self.chaos_droppers.retain(|d| d.0 != k);
            }
            _ => {}
        }
    }

    /// True when an active DropReports window swallows this Agent→Monitor
    /// report. Every active window samples its own seeded stream per attempted
    /// report, so drills stay deterministic.
    fn report_dropped(&mut self) -> bool {
        let mut dropped = false;
        for (_, prob, rng) in &mut self.chaos_droppers {
            if rng.gen_bool(*prob) {
                dropped = true;
            }
        }
        dropped
    }

    /// Liveness watchdog: abort loudly (`stalled`) when nothing has progressed
    /// for a full timeout window; otherwise re-arm at the earliest instant the
    /// window could next expire.
    fn liveness_check(&mut self, eng: &mut Engine<Ev>) {
        let timeout = self.cfg.liveness_timeout.expect("liveness event without timeout");
        let now = eng.now();
        if now.since(self.last_progress) >= timeout {
            self.stalled = true;
            if let Some(rt) = &self.tele {
                rt.tele.tracer.instant("stalled", "chaos", now.as_micros(), 0, &[]);
                rt.tele.flight.record(
                    now.as_micros(),
                    "liveness",
                    format!("stalled: no progress since {}us", self.last_progress.as_micros()),
                );
            }
            eng.clear();
        } else {
            eng.schedule(self.last_progress + timeout, Ev::LivenessCheck);
        }
    }

    // ----------------------------------------------------------------- data

    /// Take up to `quota` samples from the worker's source. A batch may span
    /// shard boundaries: multiple leases stay open (uncommitted) until the
    /// push succeeds, so a dropped push can still roll back every one of them.
    /// Returns samples taken (< quota only when the shard queue is exhausted).
    fn take_batch(&mut self, w: usize, now: SimTime) -> u64 {
        let _ = now;
        let quota = self.workers[w].quota;
        if quota == 0 {
            return 0;
        }
        match &mut self.workers[w].source {
            DataSource::Fixed { remaining } => {
                let take = quota.min(*remaining);
                *remaining -= take;
                take
            }
            DataSource::Dds => {
                let mut total = 0u64;
                while total < quota {
                    let need_fetch = match self.workers[w].leases.last() {
                        Some(l) => l.consumed >= l.lease.shard.len,
                        None => true,
                    };
                    if need_fetch {
                        let dds = self.dds.as_ref().expect("dds source");
                        match dds.fetch(w as u32) {
                            Some(lease) => {
                                let order = match &self.cfg.execution {
                                    ExecutionMode::Real { .. } => Some(dds.sample_order(&lease)),
                                    ExecutionMode::Simulated => None,
                                };
                                self.overhead.add_dds(SimDuration::from_secs_f64(DDS_FETCH_SECS));
                                self.workers[w].leases.push(LeaseState {
                                    lease,
                                    order,
                                    consumed: 0,
                                    committed: 0,
                                });
                            }
                            None => break,
                        }
                    }
                    let lease = self.workers[w].leases.last_mut().expect("lease ensured");
                    let take = (quota - total).min(lease.lease.shard.len - lease.consumed);
                    lease.consumed += take;
                    total += take;
                }
                total
            }
        }
    }

    /// Compute the real gradient for the samples just taken (math mode).
    fn real_grad(&mut self, w: usize, took: u64) -> Option<Vec<f32>> {
        let math = self.math.as_ref()?;
        let ExecutionMode::Real { dataset, .. } = &self.cfg.execution else {
            return None;
        };
        // Collect the just-taken (consumed but uncommitted) indices across the
        // worker's open leases.
        let mut idx = Vec::with_capacity(took as usize);
        for lease in &self.workers[w].leases {
            if lease.consumed > lease.committed {
                let order = lease.order.as_ref()?;
                idx.extend_from_slice(&order[lease.committed as usize..lease.consumed as usize]);
            }
        }
        debug_assert_eq!(idx.len() as u64, took);
        let mut grad = vec![0.0f32; math.model.n_params()];
        math.model.grad_batch(dataset, &idx, &mut grad);
        Some(grad)
    }

    /// Commit the in-flight consumption after a successful push; fully
    /// consumed shards go DONE in the DDS, a trailing partial lease stays open.
    /// `at` is the commit instant (barrier close / push ready time); it marks
    /// chaos-drill recovery — the first committed work after a restart means
    /// the node is back on full duty.
    fn commit(&mut self, w: usize, at: SimTime) {
        if let Some(idx) = self.chaos_awaiting_recovery.remove(&(w as u32)) {
            if self.injections_log[idx].recovered_at.is_none() {
                self.injections_log[idx].recovered_at = Some(at);
            }
        }
        if let DataSource::Fixed { .. } = self.workers[w].source {
            return; // committed at take time
        }
        let mut finished = Vec::new();
        for lease in &mut self.workers[w].leases {
            lease.committed = lease.consumed;
            if lease.committed >= lease.lease.shard.len {
                finished.push(lease.lease);
            }
        }
        self.workers[w].leases.retain(|l| l.committed < l.lease.shard.len);
        if !finished.is_empty() {
            let dds = self.dds.as_ref().expect("dds source");
            for l in finished {
                dds.report_done(w as u32, l).expect("lease held by this worker");
                self.overhead.add_dds(SimDuration::from_secs_f64(DDS_FETCH_SECS));
            }
        }
    }

    /// Roll back uncommitted consumption (dropped push or mid-compute death).
    fn rollback(&mut self, w: usize, took: u64) {
        self.rolled_back_samples += took;
        match &mut self.workers[w].source {
            DataSource::Fixed { remaining } => *remaining += took,
            DataSource::Dds => {
                for lease in &mut self.workers[w].leases {
                    lease.consumed = lease.committed;
                }
            }
        }
    }

    // ------------------------------------------------------------- lifecycle

    fn worker_start(&mut self, eng: &mut Engine<Ev>, w: u32, gen: u32) {
        let wi = w as usize;
        if !self.workers[wi].alive || self.workers[wi].gen != gen || self.finished {
            return;
        }
        if self.workers[wi].inflight.is_some() || self.workers[wi].done {
            return;
        }
        let now = eng.now();
        if now < self.workers[wi].next_allowed {
            // A wake-up arrived before this worker's barrier release; the
            // event scheduled for the release instant will start it.
            return;
        }
        if now < self.stall_until {
            // Checkpoint-based failover in progress: everyone waits.
            eng.schedule(self.stall_until, Ev::WorkerStart { w, gen });
            return;
        }

        // Apply actions that reached this agent. Under a chaos drill, log the
        // application so the global-action convergence invariant can audit
        // that every survivor applied the same broadcast at the same point.
        // Logging is deferred until the worker actually takes a batch: a
        // starving worker's data poll applies the action too, but runs no
        // iteration, so attributing the (later) round to it would read as
        // false divergence.
        let due = self.workers[wi].agent.take_due(now);
        let mut applied: Vec<(SimTime, String)> = Vec::new();
        for (delivered_at, action) in due {
            if !self.cfg.injections.is_empty() {
                applied.push((delivered_at, format!("{action:?}")));
            }
            self.apply_worker_action(wi, action);
        }

        // SSP gate: don't run ahead of the slowest alive worker.
        if let Consistency::Ssp { staleness } = self.consistency() {
            let min_iter = self
                .workers
                .iter()
                .filter(|x| x.alive && !x.done && !x.starving)
                .map(|x| x.iter)
                .min()
                .unwrap_or(u64::MAX);
            if self.workers[wi].iter > min_iter.saturating_add(staleness as u64) {
                self.ssp_waiting.insert(w);
                return;
            }
        }

        let quota = self.workers[wi].quota;
        if quota == 0 && self.is_bsp() && self.bsp.participants.remove(&w) {
            // Zero-quota workers sit out; the barrier must not wait for them.
            self.try_close_bsp(eng);
        }
        let took = self.take_batch(wi, now);
        if took > 0 {
            self.workers[wi].starving = false;
            for (delivered_at, action) in applied {
                self.action_log.push(ActionApplication {
                    worker: w,
                    delivered_at,
                    applied_at: now,
                    iter: if self.is_bsp() { self.bsp.iter } else { self.workers[wi].iter },
                    action,
                });
            }
        }
        if took == 0 {
            let dds_complete = self.dds.as_ref().map(|d| d.is_complete()).unwrap_or(true);
            let fixed_done = matches!(self.workers[wi].source, DataSource::Fixed { remaining: 0 });
            let holds_data = self.workers[wi].leases.iter().any(|l| l.consumed < l.lease.shard.len);
            if (matches!(self.workers[wi].source, DataSource::Dds) && dds_complete && !holds_data)
                || fixed_done
            {
                self.workers[wi].done = true;
                if self.is_bsp() && self.bsp.participants.remove(&w) {
                    self.try_close_bsp(eng);
                }
                self.check_finished(eng);
            } else if self.workers[wi].quota == 0 {
                // Idle until an AdjustBs wakes it (delivery schedules a start).
            } else {
                // Queue momentarily empty (epoch tail): retry shortly. Any
                // SSP-parked workers must keep draining their leases, or the
                // starving worker waits on them forever (they hold the DOING
                // shards while it holds the minimum iteration count).
                if !self.ssp_waiting.is_empty() {
                    let waiting: Vec<u32> = self.ssp_waiting.drain().collect();
                    for v in waiting {
                        let vg = self.workers[v as usize].gen;
                        eng.schedule(eng.now(), Ev::WorkerStart { w: v, gen: vg });
                    }
                }
                self.workers[wi].starving = true;
                if self.is_bsp() && self.bsp.participants.remove(&w) {
                    self.try_close_bsp(eng);
                }
                eng.schedule_after(DATA_POLL, Ev::WorkerStart { w, gen });
            }
            return;
        }

        // Iteration cost: C sequential micro-batches of `took` samples each
        // behave like the full batch split C ways (the quota already reflects
        // the per-micro-batch size in DD mode).
        let accum = self.workers[wi].accum.max(1);
        let mut dur = 0.0;
        for _ in 0..accum {
            let base = self.cfg.model.compute.time(took, self.workers[wi].device.speed);
            let worker = &mut self.workers[wi];
            let (profile, rng) = (&worker.profile, &mut worker.rng);
            dur += profile.iteration_secs(&self.pool, now, base, rng);
        }
        dur += DDS_SYNC_SECS;

        let grad = self.real_grad(wi, took);
        let iter_tag = if self.is_bsp() { self.bsp.iter } else { self.workers[wi].iter };
        let compute_end = now + SimDuration::from_secs_f64(dur);
        self.workers[wi].inflight = Some(Inflight { took, start: now, compute_end, grad });
        if let Some(g) = self.gantt.as_mut() {
            g.record(w, SpanKind::Compute, now, compute_end);
        }
        eng.schedule(compute_end, Ev::WorkerComputeDone { w, gen, iter: iter_tag });
    }

    fn piece_bytes(&self) -> u64 {
        (self.cfg.model.param_bytes / self.servers.len().max(1) as u64).max(1)
    }

    fn path_transfer(&self, now: SimTime, wi: usize, sj: usize) -> f64 {
        let bytes = self.piece_bytes();
        let wl = &self.workers[wi].link;
        let sl = &self.servers[sj].link;
        let bw = wl.bandwidth_bps.min(sl.bandwidth_bps);
        wl.latency_secs
            + sl.latency_secs
            + bytes as f64 / bw * wl.congestion_at(now) * sl.congestion_at(now)
    }

    /// Max pull transfer over all servers (parallel pulls).
    fn pull_secs(&self, now: SimTime, wi: usize) -> f64 {
        (0..self.servers.len()).map(|j| self.path_transfer(now, wi, j)).fold(0.0, f64::max)
    }

    fn compute_done(&mut self, eng: &mut Engine<Ev>, w: u32, gen: u32, iter: u64) {
        let wi = w as usize;
        if !self.workers[wi].alive || self.workers[wi].gen != gen || self.finished {
            return;
        }
        let now = eng.now();
        if self.is_bsp() {
            if iter < self.bsp.iter {
                // This worker was dropped by backup-workers while computing:
                // roll back its samples and let it join the current iteration.
                let took = self.workers[wi].inflight.take().map(|i| i.took).unwrap_or(0);
                self.rollback(wi, took);
                eng.schedule(now, Ev::WorkerStart { w, gen });
                return;
            }
            let arrivals: Vec<SimTime> = (0..self.servers.len())
                .map(|j| now + SimDuration::from_secs_f64(self.path_transfer(now, wi, j)))
                .collect();
            self.bsp.pushes.push(Push { w, compute_end: now, arrivals });
            self.try_close_bsp(eng);
        } else {
            self.asp_push(eng, w, gen);
        }
    }

    // -------------------------------------------------------------- BSP path

    fn bsp_required(&self) -> usize {
        self.bsp.participants.len().saturating_sub(self.bsp.backup_b as usize).max(1)
    }

    fn try_close_bsp(&mut self, eng: &mut Engine<Ev>) {
        if self.bsp.pushes.len() < self.bsp_required().min(self.bsp.participants.len().max(1)) {
            return;
        }
        if self.bsp.pushes.is_empty() {
            return;
        }
        if self.servers.iter().any(|s| !s.alive) {
            self.bsp.close_pending = true;
            return;
        }
        self.bsp.close_pending = false;
        let now = eng.now();

        // ---- Server pass: per-server FIFO over the arrived pieces, then one
        // optimizer apply per iteration.
        let mut ready_max = SimTime::ZERO;
        for j in 0..self.servers.len() {
            let mut arrivals: Vec<SimTime> =
                self.bsp.pushes.iter().map(|p| p.arrivals[j]).collect();
            arrivals.sort_unstable();
            let mut t = self.servers[j].free_at;
            let mut busy = 0.0;
            for a in arrivals {
                let start = t.max(a);
                let svc = self.cfg.model.server_agg_secs * self.servers[j].profile.slowdown(start);
                t = start + SimDuration::from_secs_f64(svc);
                busy += svc;
            }
            let apply = self.cfg.model.server_apply_secs * self.servers[j].profile.slowdown(t);
            t += SimDuration::from_secs_f64(apply);
            busy += apply;
            self.servers[j].free_at = t;
            self.servers[j].series_bpt.push(t, busy);
            self.store.report_bpt(NodeId::server(j as u32), t, busy, 0);
            ready_max = ready_max.max(t);
        }

        // ---- Drop the stragglers beyond the backup threshold (their late
        // ComputeDone events will roll back & rejoin).
        let pushed: HashSet<u32> = self.bsp.pushes.iter().map(|p| p.w).collect();

        // ---- Math: aggregate pushed gradients, one apply.
        #[allow(clippy::unnecessary_unwrap)] // borrow split: pushes/workers read while math written
        if self.math.is_some() {
            let mut total_weight = 0u64;
            let grads: Vec<(u64, Vec<f32>, f32)> = self
                .bsp
                .pushes
                .iter()
                .filter_map(|p| {
                    let inf = self.workers[p.w as usize].inflight.as_ref()?;
                    let g = inf.grad.clone()?;
                    total_weight += inf.took;
                    Some((inf.took, g, self.workers[p.w as usize].lr_scale))
                })
                .collect();
            if total_weight > 0 {
                // Linear learning-rate scaling: an iteration that realized only
                // part of the global batch (stragglers dropped, epoch tail)
                // takes a proportionally smaller step, so the training is
                // equivalent to fixed-B SGD regardless of mitigation actions.
                let lr_frac = (total_weight as f32 / self.cfg.global_batch.max(1) as f32).min(1.0);
                let math = self.math.as_mut().expect("math mode checked above");
                math.agg.iter_mut().for_each(|x| *x = 0.0);
                for (took, g, scale) in grads {
                    let wgt = took as f32 / total_weight as f32 * scale * lr_frac;
                    for (a, b) in math.agg.iter_mut().zip(&g) {
                        *a += b * wgt;
                    }
                }
                let agg = std::mem::take(&mut math.agg);
                math.opt.step(math.model.params_mut(), &agg);
                math.agg = agg;
            }
        }

        // ---- Commit pushed workers; record their BPT and schedule the next
        // iteration start after the pull.
        let pushes = std::mem::take(&mut self.bsp.pushes);
        let mut iteration_samples = 0u64;
        for p in &pushes {
            let wi = p.w as usize;
            let Some(inf) = self.workers[wi].inflight.take() else {
                continue;
            };
            iteration_samples += inf.took;
            self.commit(wi, ready_max);
            let pull = self.pull_secs(ready_max, wi);
            let push_tx = p
                .arrivals
                .iter()
                .map(|&a| a.since(p.compute_end).as_secs_f64())
                .fold(0.0, f64::max);
            let bpt = inf.compute_end.since(inf.start).as_secs_f64() + push_tx + pull;
            self.workers[wi].iter += 1;
            self.workers[wi].series_bpt.push(now, bpt);
            self.workers[wi].series_batch.push(now, inf.took as f64);
            if self.workers[wi].agent.on_iteration() && !self.report_dropped() {
                self.store.report_bpt(NodeId::worker(p.w), now, bpt, inf.took);
                self.overhead.add_sync(SimDuration::from_secs_f64(self.cfg.broadcast.barrier_secs));
            }
            if let Some(g) = self.gantt.as_mut() {
                g.record(
                    p.w,
                    SpanKind::Comm,
                    inf.compute_end,
                    inf.compute_end + SimDuration::from_secs_f64(push_tx),
                );
                g.record(
                    p.w,
                    SpanKind::Idle,
                    inf.compute_end + SimDuration::from_secs_f64(push_tx),
                    ready_max,
                );
            }
            let next = ready_max + SimDuration::from_secs_f64(pull);
            self.workers[wi].next_allowed = next;
            eng.schedule(next, Ev::WorkerStart { w: p.w, gen: self.workers[wi].gen });
        }

        // DDS shard-state synchronization sits on the iteration's critical
        // path once per global iteration (Fig. 18 accounting).
        self.overhead.add_dds(SimDuration::from_secs_f64(DDS_SYNC_SECS));
        self.account_samples(ready_max, iteration_samples);
        self.iterations += 1;
        if let Some(rt) = &self.tele {
            rt.iterations.inc();
        }
        self.jct_mark = self.jct_mark.max(ready_max);
        self.bsp.iter += 1;
        // Freeze the next iteration's participant set: everyone currently able
        // to contribute a push.
        self.bsp.participants = self
            .workers
            .iter()
            .enumerate()
            .filter(|(_, x)| x.alive && !x.done && !x.starving && x.quota > 0)
            .map(|(i, _)| i as u32)
            .collect();
        // Workers still computing past the barrier belong to the *old* iter;
        // nothing to do — their ComputeDone rolls them into the new one. Idle
        // alive workers that never joined (quota 0 at the time) get poked so a
        // fresh AdjustBs can pick them up.
        for w in 0..self.workers.len() {
            if self.workers[w].alive
                && !self.workers[w].done
                && self.workers[w].inflight.is_none()
                && !pushed.contains(&(w as u32))
            {
                eng.schedule(ready_max, Ev::WorkerStart { w: w as u32, gen: self.workers[w].gen });
            }
        }
        self.check_finished(eng);
    }

    // -------------------------------------------------------------- ASP path

    fn asp_push(&mut self, eng: &mut Engine<Ev>, w: u32, gen: u32) {
        let now = eng.now();
        if self.servers.iter().any(|s| !s.alive) {
            self.parked.push((w, gen, now));
            return;
        }
        self.finish_asp_push(eng, w, gen, now);
    }

    fn finish_asp_push(&mut self, eng: &mut Engine<Ev>, w: u32, gen: u32, compute_end: SimTime) {
        let wi = w as usize;
        if !self.workers[wi].alive || self.workers[wi].gen != gen {
            return;
        }
        let Some(inf) = self.workers[wi].inflight.take() else {
            return;
        };
        // Per-server booking: each push costs aggregation + apply (ASP applies
        // per push — the higher server-side update frequency of §VII-B1b).
        let mut ready = SimTime::ZERO;
        for j in 0..self.servers.len() {
            let arrival =
                compute_end + SimDuration::from_secs_f64(self.path_transfer(compute_end, wi, j));
            let start = self.servers[j].free_at.max(arrival);
            let svc = (self.cfg.model.server_agg_secs + self.cfg.model.server_apply_asp_secs)
                * self.servers[j].profile.slowdown(start);
            let end = start + SimDuration::from_secs_f64(svc);
            self.servers[j].free_at = end;
            self.servers[j].series_bpt.push(end, svc);
            self.store.report_bpt(NodeId::server(j as u32), end, svc, 0);
            ready = ready.max(end);
        }
        // Math: apply this worker's gradient immediately (arrival order is the
        // event order, exactly ASP's semantics).
        if let Some(g) = &inf.grad {
            // ASP linear scaling: each push steps in proportion to its share of
            // the global batch, so slow/partial batches don't overstep.
            let n = self.workers.len().max(1) as f32;
            let lr_frac = (inf.took as f32 * n / self.cfg.global_batch.max(1) as f32).min(1.0);
            let scale = self.workers[wi].lr_scale * lr_frac;
            let math = self.math.as_mut().unwrap();
            if scale == 1.0 {
                math.opt.step(math.model.params_mut(), g);
            } else {
                let scaled: Vec<f32> = g.iter().map(|x| x * scale).collect();
                math.opt.step(math.model.params_mut(), &scaled);
            }
        }
        self.commit(wi, ready);
        let pull = self.pull_secs(ready, wi);
        let bpt = ready.since(inf.start).as_secs_f64() + pull;
        self.workers[wi].iter += 1;
        self.workers[wi].series_bpt.push(ready, bpt);
        self.workers[wi].series_batch.push(ready, inf.took as f64);
        if self.workers[wi].agent.on_iteration() && !self.report_dropped() {
            self.store.report_bpt(NodeId::worker(w), ready, bpt, inf.took);
            self.overhead.add_sync(SimDuration::from_secs_f64(self.cfg.broadcast.barrier_secs));
        }
        // Amortized DDS-state sync share of this push (one sync per global
        // batch worth of pushes).
        self.overhead
            .add_dds(SimDuration::from_secs_f64(DDS_SYNC_SECS / self.workers.len().max(1) as f64));
        self.account_samples(ready, inf.took);
        self.iterations += 1;
        if let Some(rt) = &self.tele {
            rt.iterations.inc();
        }
        self.jct_mark = self.jct_mark.max(ready);
        let next = ready + SimDuration::from_secs_f64(pull);
        self.workers[wi].next_allowed = next;
        eng.schedule(next, Ev::WorkerStart { w, gen });

        // SSP: this worker's progress may unblock waiters.
        if !self.ssp_waiting.is_empty() {
            let waiting: Vec<u32> = self.ssp_waiting.drain().collect();
            for v in waiting {
                eng.schedule(next, Ev::WorkerStart { w: v, gen: self.workers[v as usize].gen });
            }
        }
        self.check_finished(eng);
    }

    // ------------------------------------------------------------- lifecycle

    fn worker_kill(&mut self, eng: &mut Engine<Ev>, w: u32, gen: u32, class: ErrorClass) {
        let wi = w as usize;
        if !self.workers[wi].alive || self.workers[wi].gen != gen {
            return;
        }
        let now = eng.now();
        self.workers[wi].alive = false;
        self.workers[wi].gen += 1;
        self.workers[wi].killed_at = Some(now);
        self.kills.push((now, NodeId::worker(w)));
        if let Some(rt) = &self.tele {
            rt.kills.inc();
            rt.tele.tracer.instant(
                "worker-kill",
                "lifecycle",
                now.as_micros(),
                w,
                &[("class", &format!("{class:?}"))],
            );
        }
        self.store.report_event(NodeEvent::Killed { node: NodeId::worker(w), at: now, class });
        // Roll back in-flight samples, requeue DOING shards.
        if let Some(inf) = self.workers[wi].inflight.take() {
            self.rollback(wi, inf.took);
        }
        self.bsp.participants.remove(&w);
        self.workers[wi].leases.clear();
        if let Some(dds) = &self.dds {
            // A no-failover chaos kill models the failover machinery itself
            // being broken: the dead worker's DOING shards stay stuck, so the
            // job can never complete — the liveness watchdog must catch it.
            if !self.chaos_no_failover.contains(&w) {
                dds.fail_worker(w);
            }
        }
        self.ssp_waiting.remove(&w);
        if !self.ssp_waiting.is_empty() {
            let waiting: Vec<u32> = self.ssp_waiting.drain().collect();
            for v in waiting {
                eng.schedule(now, Ev::WorkerStart { w: v, gen: self.workers[v as usize].gen });
            }
        }
        // Schedule the replacement pod. DDS-based recovery only rebuilds the
        // communication world (the servers still hold the parameters);
        // checkpoint-based recovery additionally restores the checkpoint and
        // recomputes all progress since it — stalling the whole job (§V-E3).
        // Chaos no-failover kills skip the replacement entirely.
        if !self.chaos_no_failover.contains(&w) {
            let mut delay = match &self.tele {
                Some(rt) => self.cfg.cluster.scheduler.sample_restart_delay_observed(
                    now,
                    &mut self.sched_rng,
                    &rt.restart_delay_us,
                ),
                None => self.cfg.cluster.scheduler.sample_restart_delay(now, &mut self.sched_rng),
            } + SimDuration::from_secs_f64(self.cfg.world_rebuild_secs);
            let extra = std::mem::take(&mut self.chaos_restart_extra[wi]);
            if extra > 0.0 {
                delay += SimDuration::from_secs_f64(extra);
            }
            if self.cfg.failover == FailoverMode::CheckpointBased {
                let rollback = self.cfg.rollback_recompute_factor
                    * now
                        .since(self.last_ckpt)
                        .as_secs_f64()
                        .min(self.cfg.checkpoint_interval.as_secs_f64());
                delay += SimDuration::from_secs_f64(self.cfg.ckpt_restore_secs + rollback);
                self.stall_until = self.stall_until.max(now + delay);
            }
            if let Some(g) = self.gantt.as_mut() {
                g.record(w, SpanKind::Failover, now, now + delay);
            }
            eng.schedule(now + delay, Ev::WorkerRestart { w, gen: self.workers[wi].gen });
        }
        if self.is_bsp() {
            self.try_close_bsp(eng);
        }
        self.check_finished(eng);
    }

    fn worker_restart(&mut self, eng: &mut Engine<Ev>, w: u32, gen: u32) {
        let wi = w as usize;
        if self.workers[wi].alive || self.workers[wi].gen != gen || self.finished {
            return;
        }
        let now = eng.now();
        self.workers[wi].alive = true;
        self.workers[wi].done = false;
        // The replacement lands on healthy hardware: clean profile, fresh
        // stream so its jitter doesn't replay the old node's.
        let stream = self.workers[wi].profile.stream + 100_000 * gen as u64;
        self.workers[wi].profile = NodeProfile::clean(stream);
        self.workers[wi].agent.reset();
        self.workers[wi].next_allowed = now;
        self.restarts.push((now, NodeId::worker(w)));
        if let Some(rt) = &self.tele {
            rt.restarts.inc();
            rt.tele.tracer.instant("worker-restart", "lifecycle", now.as_micros(), w, &[]);
        }
        self.last_progress = self.last_progress.max(now);
        if let Some(&idx) = self.chaos_awaiting_recovery.get(&w) {
            if self.injections_log[idx].restarted_at.is_none() {
                self.injections_log[idx].restarted_at = Some(now);
            }
        }
        self.store.report_event(NodeEvent::Restarted { node: NodeId::worker(w), at: now });
        eng.schedule(now, Ev::WorkerStart { w, gen });
    }

    fn server_kill(&mut self, eng: &mut Engine<Ev>, s: u32, gen: u32) {
        let sj = s as usize;
        if !self.servers[sj].alive || self.servers[sj].gen != gen {
            return;
        }
        let now = eng.now();
        self.servers[sj].alive = false;
        self.servers[sj].gen += 1;
        self.kills.push((now, NodeId::server(s)));
        if let Some(rt) = &self.tele {
            rt.kills.inc();
            // Server lanes sit above the worker lanes in the trace viewer.
            rt.tele.tracer.instant("server-kill", "lifecycle", now.as_micros(), 1000 + s, &[]);
        }
        self.store.report_event(NodeEvent::Killed {
            node: NodeId::server(s),
            at: now,
            class: ErrorClass::Retryable(RetryableError::ProactiveKill),
        });
        // Server failover: pending + init + rebuild + checkpoint restore +
        // recompute of the progress since the last checkpoint (§V-E2).
        let rollback = self.cfg.rollback_recompute_factor
            * now
                .since(self.last_ckpt)
                .as_secs_f64()
                .min(self.cfg.checkpoint_interval.as_secs_f64());
        let delay = match &self.tele {
            Some(rt) => self.cfg.cluster.scheduler.sample_restart_delay_observed(
                now,
                &mut self.sched_rng,
                &rt.restart_delay_us,
            ),
            None => self.cfg.cluster.scheduler.sample_restart_delay(now, &mut self.sched_rng),
        } + SimDuration::from_secs_f64(
            self.cfg.world_rebuild_secs + self.cfg.ckpt_restore_secs + rollback,
        );
        eng.schedule(now + delay, Ev::ServerRestart { s, gen: self.servers[sj].gen });
    }

    fn server_restart(&mut self, eng: &mut Engine<Ev>, s: u32, gen: u32) {
        let sj = s as usize;
        if self.servers[sj].alive || self.servers[sj].gen != gen || self.finished {
            return;
        }
        let now = eng.now();
        self.servers[sj].alive = true;
        // Replacement server: clean profile and link (the congestion followed
        // the contended host, not the pod identity).
        let stream = self.servers[sj].profile.stream + 100_000 * gen as u64;
        self.servers[sj].profile = NodeProfile::clean(stream);
        self.servers[sj].link.congestion.clear();
        self.servers[sj].free_at = now;
        self.restarts.push((now, NodeId::server(s)));
        if let Some(rt) = &self.tele {
            rt.restarts.inc();
            rt.tele.tracer.instant("server-restart", "lifecycle", now.as_micros(), 1000 + s, &[]);
        }
        self.last_progress = self.last_progress.max(now);
        self.store.report_event(NodeEvent::Restarted { node: NodeId::server(s), at: now });

        if self.servers.iter().all(|x| x.alive) {
            if self.bsp.close_pending {
                self.try_close_bsp(eng);
            }
            let parked = std::mem::take(&mut self.parked);
            for (w, g, _computed_at) in parked {
                // The push resumes now: the gradient transfer restarts against
                // the fresh server.
                self.finish_asp_push(eng, w, g, now);
            }
        }
    }

    /// Exponential inter-arrival draw for background faults.
    fn sample_fault_delay(&mut self, mtbf: SimDuration) -> SimDuration {
        let d = Dist::Exponential { mean: mtbf.as_secs_f64() };
        SimDuration::from_secs_f64(d.sample(&mut self.sched_rng).max(1.0))
    }

    fn fault_worker(&mut self, eng: &mut Engine<Ev>, w: u32) {
        if self.finished {
            return;
        }
        let gen = self.workers[w as usize].gen;
        if self.workers[w as usize].alive {
            self.worker_kill(eng, w, gen, ErrorClass::Retryable(RetryableError::NodeFailure));
        }
        // Re-arm: the replacement pod is as mortal as its predecessor.
        let mtbf = self.cfg.faults.expect("fault event without config").worker_mtbf;
        let next = self.sample_fault_delay(mtbf);
        eng.schedule_after(next, Ev::FaultWorker { w });
    }

    fn fault_server(&mut self, eng: &mut Engine<Ev>, s: u32) {
        if self.finished {
            return;
        }
        let gen = self.servers[s as usize].gen;
        if self.servers[s as usize].alive {
            self.server_kill(eng, s, gen);
        }
        let mtbf = self
            .cfg
            .faults
            .expect("fault event without config")
            .server_mtbf
            .expect("server fault without server mtbf");
        let next = self.sample_fault_delay(mtbf);
        eng.schedule_after(next, Ev::FaultServer { s });
    }

    fn checkpoint(&mut self, eng: &mut Engine<Ev>) {
        if self.finished {
            return;
        }
        let now = eng.now();
        self.last_ckpt = now;
        if let Some(rt) = &self.tele {
            rt.tele.tracer.instant("checkpoint", "lifecycle", now.as_micros(), 0, &[]);
        }
        // Saving blocks the servers briefly.
        for srv in &mut self.servers {
            if srv.alive {
                srv.free_at =
                    srv.free_at.max(now) + SimDuration::from_secs_f64(self.cfg.ckpt_save_secs);
            }
        }
        eng.schedule(now + self.cfg.checkpoint_interval, Ev::Checkpoint);
    }

    // ------------------------------------------------------------ controller

    fn monitor_tick(&mut self, eng: &mut Engine<Ev>) {
        if self.finished {
            return;
        }
        let now = eng.now();
        let sched = &self.cfg.cluster.scheduler;
        self.store.set_cluster_info(ClusterInfo {
            busy: sched.is_busy(now),
            expected_pending_secs: sched.expected_pending_secs(now),
        });
        let snap = self.store.snapshot(now);
        let actions = self.policy.decide(now, &snap, &self.ctx);
        self.decision_log.extend(self.policy.drain_audit());
        for action in actions {
            if !matches!(action, Action::None) {
                self.actions.push((now, action.clone()));
                if let Some(rt) = &self.tele {
                    rt.actions_dispatched.inc();
                    rt.tele.tracer.instant(
                        "controller-action",
                        "controller",
                        now.as_micros(),
                        0,
                        &[("action", &format!("{action:?}"))],
                    );
                }
            }
            self.dispatch(eng, action, now);
        }
        eng.schedule(now + self.cfg.monitor_tick, Ev::MonitorTick);
    }

    fn dispatch(&mut self, eng: &mut Engine<Ev>, action: Action, now: SimTime) {
        match action {
            Action::None => {}
            Action::KillRestart { node } => {
                let delay = self.cfg.broadcast.direct_delay(16);
                match node.role {
                    antdt_monitor::Role::Worker => {
                        let w = node.idx;
                        let gen = self.workers[w as usize].gen;
                        eng.schedule(now + delay, Ev::WorkerKill { w, gen });
                    }
                    antdt_monitor::Role::Server => {
                        let s = node.idx;
                        let gen = self.servers[s as usize].gen;
                        eng.schedule(now + delay, Ev::ServerKill { s, gen });
                    }
                }
            }
            global => {
                // Fig. 6: controller -> primary agent -> broadcast -> local
                // barrier; every worker applies at its next iteration boundary.
                let payload = global.payload_bytes();
                let delay = self.cfg.broadcast.full_broadcast_delay(payload);
                self.overhead.add_sync(delay);
                let at = now + delay;
                for w in 0..self.workers.len() {
                    if self.workers[w].alive {
                        self.workers[w].agent.deliver(at, global.clone());
                        // Idle workers (quota 0 / parked) need a poke to pick
                        // the action up.
                        if self.workers[w].inflight.is_none() && !self.workers[w].done {
                            eng.schedule(
                                at,
                                Ev::WorkerStart { w: w as u32, gen: self.workers[w].gen },
                            );
                        }
                    }
                }
            }
        }
    }

    fn apply_worker_action(&mut self, wi: usize, action: Action) {
        match action {
            Action::AdjustBs { batch_sizes, grad_accum } => {
                if let Some(&b) = batch_sizes.get(wi) {
                    self.workers[wi].quota = b;
                }
                if let Some(acc) = grad_accum {
                    if let Some(&c) = acc.get(wi) {
                        self.workers[wi].accum = c.max(1);
                    }
                }
            }
            Action::BackupWorkers { b } => {
                self.bsp.backup_b = b;
            }
            Action::AdjustLr { scales } => {
                if let Some(&s) = scales.get(wi) {
                    self.workers[wi].lr_scale = s;
                }
            }
            Action::KillRestart { .. } | Action::None => {}
        }
    }

    // --------------------------------------------------------------- closing

    fn account_samples(&mut self, at: SimTime, samples: u64) {
        if samples > 0 {
            self.last_progress = self.last_progress.max(at);
        }
        self.samples_done += samples;
        self.bucket_samples += samples;
        while at.since(self.bucket_start) >= THROUGHPUT_BUCKET {
            let mid = self.bucket_start + THROUGHPUT_BUCKET / 2;
            self.throughput.push(mid, self.bucket_samples as f64 / THROUGHPUT_BUCKET.as_secs_f64());
            self.bucket_start += THROUGHPUT_BUCKET;
            self.bucket_samples = 0;
        }
    }

    fn check_finished(&mut self, eng: &mut Engine<Ev>) {
        if self.finished {
            return;
        }
        let data_done = match self.cfg.data {
            DataStrategy::Dds => self.dds.as_ref().unwrap().is_complete(),
            DataStrategy::EvenPartition => {
                self.workers.iter().all(|w| matches!(w.source, DataSource::Fixed { remaining: 0 }))
            }
        };
        let no_inflight = self.workers.iter().all(|w| w.inflight.is_none());
        if data_done && no_inflight {
            self.finished = true;
            eng.clear();
        }
    }

    fn into_report(mut self, events_processed: u64) -> JobReport {
        let telemetry = self.tele.take().map(|rt| {
            // Merge the Gantt spans into the trace before rendering: they are
            // the bulk of the Perfetto timeline (compute/comm/idle/failover
            // lanes per node).
            if let Some(g) = &self.gantt {
                rt.tele.tracer.extend(g.to_trace_events());
            }
            let reason = if self.stalled {
                "stalled"
            } else if self.timed_out {
                "timed-out"
            } else {
                "completed"
            };
            rt.tele.report(reason)
        });
        let auc = match (&self.math, &self.cfg.execution) {
            (Some(math), ExecutionMode::Real { holdout, .. }) if !holdout.is_empty() => {
                let scores = math.model.scores(holdout);
                let labels: Vec<f32> = holdout.examples.iter().map(|e| e.label).collect();
                antdt_ml::auc(&scores, &labels)
            }
            _ => None,
        };
        JobReport {
            jct: self.jct_mark.since(SimTime::ZERO),
            iterations: self.iterations,
            samples_done: self.samples_done,
            rolled_back_samples: self.rolled_back_samples,
            timed_out: self.timed_out,
            stalled: self.stalled,
            worker_bpt: self.workers.iter().map(|w| w.series_bpt.clone()).collect(),
            worker_batch: self.workers.iter().map(|w| w.series_batch.clone()).collect(),
            server_bpt: self.servers.iter().map(|s| s.series_bpt.clone()).collect(),
            global_throughput: self.throughput,
            actions: self.actions,
            kills: self.kills,
            restarts: self.restarts,
            injections: self.injections_log,
            action_log: self.action_log,
            overhead: self.overhead,
            audit: self.dds.as_ref().map(|d| d.audit()),
            consumption: self.dds.as_ref().map(|d| d.consumption()),
            auc,
            gantt: self.gantt,
            events_processed,
            decision_log: self.decision_log,
            telemetry,
        }
    }
}
