//! Runtime-side telemetry wiring shared by the PS and AllReduce runtimes: one
//! [`Telemetry`] bundle per job plus the pre-registered handles the hot paths
//! update without touching the registry again.

use antdt_agent::AgentCounters;
use antdt_dds::DdsCounters;
use antdt_monitor::MonitorCounters;
use antdt_telemetry::{Counter, Histogram, Telemetry};
use std::sync::Arc;

/// Histogram bucket bounds for restart delays, in microseconds: 15 s / 1 min /
/// 5 min / 15 min / 30 min (+Inf implied). Chosen around the scheduler model's
/// idle (~1 min) and busy (~20 min) regimes.
const RESTART_DELAY_BOUNDS_US: [u64; 5] =
    [15_000_000, 60_000_000, 300_000_000, 900_000_000, 1_800_000_000];

/// Control-bus transport counters (message sends, deliveries, channel drops,
/// retransmissions).
#[derive(Debug, Clone, Default)]
pub(crate) struct BusCounters {
    pub sent: Counter,
    pub delivered: Counter,
    pub dropped: Counter,
    pub retried: Counter,
}

/// The per-job telemetry bundle with every pre-registered handle the runtimes
/// update. Built once in `run()` when `JobConfig::telemetry` is set; absent
/// otherwise so the telemetry-off hot path pays nothing.
#[derive(Debug, Clone)]
pub(crate) struct RtTele {
    pub tele: Arc<Telemetry>,
    /// Engine-level counters (attached via `Engine::attach_telemetry`).
    pub events_scheduled: Counter,
    pub events_processed: Counter,
    /// Worker iterations completed.
    pub iterations: Counter,
    /// Controller actions dispatched by monitor ticks.
    pub actions_dispatched: Counter,
    /// Node kills and restarts.
    pub kills: Counter,
    pub restarts: Counter,
    /// Scheduler restart-delay samples.
    pub restart_delay_us: Histogram,
    /// Component counters handed to the DDS / Monitor / Agents.
    pub dds: DdsCounters,
    pub monitor: MonitorCounters,
    pub agents: AgentCounters,
    /// Control-bus transport counters.
    pub bus: BusCounters,
}

impl RtTele {
    pub fn new(runtime: &'static str) -> Self {
        let tele = Telemetry::new();
        let m = &tele.metrics;
        let rt: &[(&str, &str)] = &[("runtime", runtime)];
        RtTele {
            events_scheduled: m.counter("antdt_engine_events_scheduled_total", rt),
            events_processed: m.counter("antdt_engine_events_processed_total", rt),
            iterations: m.counter("antdt_worker_iterations_total", rt),
            actions_dispatched: m.counter("antdt_controller_actions_dispatched_total", rt),
            kills: m.counter("antdt_node_kills_total", rt),
            restarts: m.counter("antdt_node_restarts_total", rt),
            restart_delay_us: m.histogram("antdt_restart_delay_us", rt, &RESTART_DELAY_BOUNDS_US),
            dds: DdsCounters {
                fetch_served: m.counter("antdt_dds_fetch_served_total", rt),
                fetch_empty: m.counter("antdt_dds_fetch_empty_total", rt),
                done: m.counter("antdt_dds_shards_done_total", rt),
                requeued: m.counter("antdt_dds_shards_requeued_total", rt),
            },
            monitor: MonitorCounters {
                bpt_reports: m.counter("antdt_monitor_bpt_reports_total", rt),
                node_events: m.counter("antdt_monitor_node_events_total", rt),
            },
            agents: AgentCounters {
                delivered: m.counter("antdt_agent_actions_delivered_total", rt),
                applied: m.counter("antdt_agent_actions_applied_total", rt),
                rejected: m.counter("antdt_agent_actions_rejected_total", rt),
                deduped: m.counter("antdt_agent_actions_deduped_total", rt),
            },
            bus: BusCounters {
                sent: m.counter("antdt_bus_msgs_sent_total", rt),
                delivered: m.counter("antdt_bus_msgs_delivered_total", rt),
                dropped: m.counter("antdt_bus_msgs_dropped_total", rt),
                retried: m.counter("antdt_bus_msgs_retried_total", rt),
            },
            tele,
        }
    }
}
