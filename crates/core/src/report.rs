//! The job report: every quantity the paper's tables and figures consume.

use antdt_agent::OverheadLedger;
use antdt_controller::Action;
use antdt_dds::{ConsumptionStats, IntegrityAudit, ResizeRecord};
use antdt_monitor::NodeId;
use antdt_sim::{Gantt, SimDuration, SimTime, TimeSeries};
use antdt_telemetry::{DecisionRecord, TelemetryReport};
use serde::Serialize;

/// One injected chaos fault as it actually played out at runtime.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct InjectionRecord {
    /// Index into `JobConfig::injections`.
    pub index: u32,
    /// When the fault fired.
    pub at: SimTime,
    /// Human label (`InjectedFault::describe`).
    pub desc: String,
    /// For kills: when the replacement pod came up (`None` if never).
    pub restarted_at: Option<SimTime>,
    /// For kills: when the node committed its first post-restart work —
    /// i.e. it is back on full duty (`None` if never).
    pub recovered_at: Option<SimTime>,
}

/// What finally became of one fenced directive on the control bus.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub enum DirectiveFate {
    /// Still in flight (or queued in an inbox) when the job ended.
    Pending,
    /// Applied by the target at an iteration boundary.
    Applied { gen: u32, at: SimTime },
    /// Rejected at delivery: the fence named a dead incarnation
    /// (`agent_gen` is the incarnation that rejected it).
    RejectedStale { agent_gen: u32, at: SimTime },
    /// Redelivery of an already-seen seq; idempotently dropped.
    Deduped { at: SimTime },
    /// Wiped from a dead incarnation's inbox at restart, never applied.
    Wiped { at: SimTime },
    /// Dropped by the channel until the retry budget ran out.
    Expired { at: SimTime },
    /// A `KILL_RESTART` signal handed to the event scheduler (the kill path
    /// is fenced downstream by the event's generation guard, not the agent).
    Fired { at: SimTime },
}

/// The audited life of one Controller directive carried by the control bus —
/// the raw material for the no-stale-directive invariant.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct DirectiveRecord {
    pub seq: u64,
    pub target: NodeId,
    /// The target's incarnation at decision time (the fence).
    pub fence_gen: u32,
    pub decided_at: SimTime,
    /// Debug rendering of the action (stable across same-seed runs).
    pub action: String,
    pub fate: DirectiveFate,
}

/// One global Controller action as applied by one worker — the raw material
/// for the global-action convergence invariant (all survivors must apply the
/// same action delivered at the same instant, at the same iteration).
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ActionApplication {
    pub worker: u32,
    /// When the Agent's inbox received the action (broadcast arrival).
    pub delivered_at: SimTime,
    /// When the worker actually applied it (start of its next iteration).
    pub applied_at: SimTime,
    /// The global iteration the worker was at when it applied the action.
    pub iter: u64,
    /// Debug rendering of the action (stable across same-seed runs).
    pub action: String,
}

/// One checkpoint capture as recorded by the `antdt-ckpt` subsystem: when it
/// was taken, when its async drain write made it durable, and the snapshot's
/// size and content digest (the digest is what the determinism tests pin).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct CkptRecord {
    pub taken_at_us: u64,
    pub durable_at_us: u64,
    pub bytes: u64,
    pub digest: u64,
}

/// One checkpoint-replay restore: which snapshot was loaded and how much
/// completed work the rewind sent back to the TODO queue for replay.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct ReplayRecord {
    pub restored_at_us: u64,
    /// `meta.taken_at_us` of the snapshot that was loaded (0 for the empty
    /// cold-start snapshot when nothing was durable yet).
    pub snapshot_at_us: u64,
    pub requeued_shards: u64,
    pub requeued_samples: u64,
}

/// Checkpoint-subsystem section of the report; present iff the subsystem was
/// armed (`FailoverMode::Replay` or an explicit `CkptConfig`).
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct CkptReport {
    pub snapshots: Vec<CkptRecord>,
    pub restores: Vec<ReplayRecord>,
    /// The cadence the `CkptPolicy` knob had settled on when the job ended.
    pub final_interval_secs: f64,
}

/// What happened to one worker slot in the membership timeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, serde::Deserialize)]
pub enum MembershipEventKind {
    /// A SCALE_OUT decision provisioned the slot; the pod is being scheduled.
    JoinScheduled,
    /// The joiner came up and entered the working set.
    Joined,
    /// A SCALE_IN decision retired the slot for good (no replacement pod).
    Departed,
}

/// One membership transition: worker slot `node` changed state at `at_secs`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, serde::Deserialize)]
pub struct MembershipEvent {
    /// The stable slot id (slot indices are append-only, so this is also the
    /// worker's position in every per-worker report vector).
    pub node: u32,
    pub kind: MembershipEventKind,
    pub at_secs: f64,
}

/// Elastic-membership section of the report; present iff the run recorded at
/// least one membership transition (elasticity unarmed ⇒ `None`, so every
/// fixed-world fixture stays byte-identical).
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct MembershipReport {
    /// Worker count at job start.
    pub initial_workers: u32,
    /// Largest number of provisioned slots at any point (== final slot count,
    /// since slots are append-only).
    pub peak_workers: u32,
    /// Workers still alive when the job ended.
    pub final_workers: u32,
    pub joins: u32,
    pub departs: u32,
    /// Every transition in firing order.
    pub events: Vec<MembershipEvent>,
    /// Slot ids retired by SCALE_IN, ascending.
    pub departed: Vec<u32>,
    /// Consistent-hash ring resizes from the DDS (shards moved per resize —
    /// the minimal-movement evidence).
    pub resizes: Vec<ResizeRecord>,
    /// Owners of still-DOING shards at job end; the membership-consistent
    /// invariant asserts no departed id appears here.
    pub doing_owners_at_end: Vec<u32>,
}

/// One node's per-cause time decomposition, frozen from the `antdt-attr`
/// ledger. Conservation holds exactly: `totals_us` sums to `wall_us`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct AttrNode {
    /// Worker `w` or server `1000 + s` (the telemetry lane convention).
    pub node: u32,
    /// The node's attributed wall time in microseconds.
    pub wall_us: u64,
    /// Killed without failover: the timeline is frozen at the kill instant.
    pub dead: bool,
    /// Per-cause microsecond totals, indexed by
    /// [`antdt_attr::WaitCause::index`].
    pub totals_us: [u64; antdt_attr::WaitCause::COUNT],
}

/// One critical-path segment: barrier `iter` was determined by `node`,
/// `gap_us` after the runner-up arrival.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct AttrCrit {
    pub iter: u64,
    pub node: u32,
    pub gap_us: u64,
}

/// One node's blame scores (see `antdt-attr`'s `blame` module for the two
/// signals and when each becomes the headline score).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct AttrBlame {
    pub node: u32,
    /// Summed barrier-determiner margins (exact for BSP/ring).
    pub crit_us: u64,
    /// Summed per-cause time above the role-group median (ASP/SSP fallback).
    pub excess_us: u64,
    /// `crit_us` when any barrier was recorded, `excess_us` otherwise.
    pub score_us: u64,
}

/// One counterfactual replay next to its analytical prediction: the job was
/// deterministically re-run with the perturbation applied and the measured
/// JCT delta is reported beside what the blame analysis predicted.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct CounterfactualRow {
    /// `Perturbation::label()` of the applied edit.
    pub label: String,
    /// JCT reduction the blame analysis predicts, in microseconds.
    pub predicted_delta_us: u64,
    /// Measured `base JCT − what-if JCT` (negative if the edit hurt).
    pub measured_delta_us: i64,
    pub base_jct_us: u64,
    pub what_if_jct_us: u64,
}

/// Straggler-attribution section of the report; present iff
/// `JobConfig::attribution` armed the engine. `counterfactuals` is filled by
/// the separate what-if harness ([`crate::whatif`]), not by the run itself.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct AttrReport {
    /// Job end used to finalize the ledgers (the measured JCT).
    pub end_us: u64,
    /// Per-node breakdowns, ascending node id.
    pub nodes: Vec<AttrNode>,
    /// Critical-path segments in barrier order.
    pub crit: Vec<AttrCrit>,
    /// Blame ranking, descending score (`blame[0]` is the top-blamed node).
    pub blame: Vec<AttrBlame>,
    pub counterfactuals: Vec<CounterfactualRow>,
}

impl AttrReport {
    /// Render the attribution report as deterministic JSON (fixed field
    /// order), via the same hand-rolled writer the telemetry exporters use.
    pub fn to_json(&self) -> String {
        use std::fmt::Write;
        let mut s = String::from("{");
        let w = &mut s;
        let _ = write!(w, "\"end_us\":{},\"nodes\":[", self.end_us);
        for (i, n) in self.nodes.iter().enumerate() {
            let sep = if i > 0 { "," } else { "" };
            let _ = write!(
                w,
                "{sep}{{\"node\":{},\"wall_us\":{},\"dead\":{},\"causes\":{{",
                n.node, n.wall_us, n.dead
            );
            for (j, c) in antdt_attr::WaitCause::ALL.iter().enumerate() {
                let sep = if j > 0 { "," } else { "" };
                let _ = write!(w, "{sep}\"{}\":{}", c.as_str(), n.totals_us[c.index()]);
            }
            w.push_str("}}");
        }
        w.push_str("],\"blame\":[");
        for (i, b) in self.blame.iter().enumerate() {
            let sep = if i > 0 { "," } else { "" };
            let _ = write!(
                w,
                "{sep}{{\"node\":{},\"crit_us\":{},\"excess_us\":{},\"score_us\":{}}}",
                b.node, b.crit_us, b.excess_us, b.score_us
            );
        }
        w.push_str("],\"counterfactuals\":[");
        for (i, r) in self.counterfactuals.iter().enumerate() {
            if i > 0 {
                w.push(',');
            }
            w.push('{');
            w.push_str("\"label\":");
            antdt_telemetry::json::write_str(w, &r.label);
            let _ = write!(
                w,
                ",\"predicted_delta_us\":{},\"measured_delta_us\":{},\"base_jct_us\":{},\"what_if_jct_us\":{}}}",
                r.predicted_delta_us, r.measured_delta_us, r.base_jct_us, r.what_if_jct_us
            );
        }
        w.push_str("]}");
        s
    }
}

/// Set-once divergence instants collected by every run: for each supported
/// [`Perturbation`](antdt_attr::Perturbation) kind, the first simulated
/// instant at which the perturbed job would have behaved differently from
/// this one. `None` means the perturbation never bites — the edit is a
/// provable no-op for this run.
///
/// These feed the fork-based counterfactual replay
/// ([`crate::whatif::what_if_table_forked`]): the shared prefix up to the
/// divergence instant is simulated once and each what-if only replays its
/// suffix. The marks are bookkeeping *about* the schedule, never part of it —
/// they are deliberately not rendered in [`JobReport::golden_dump`].
#[derive(Debug, Clone, Default, PartialEq, Serialize)]
pub struct DivergenceMarks {
    /// Per worker slot: the first iteration start whose cost was changed by
    /// the worker's contention phases (`Perturbation::HealthyNode`).
    pub worker_contended: Vec<Option<SimTime>>,
    /// First control-plane transmission sampled on the job's own `Modeled`
    /// base channel (`Perturbation::ZeroControlLatency`). Sends inside a
    /// `ControlDegrade` overlay window don't count — the overlay channel is
    /// identical either way.
    pub control_modeled: Option<SimTime>,
    /// First checkpoint event that charged a nonzero save/capture stall
    /// (`Perturbation::NoCkptStalls`).
    pub ckpt_stall: Option<SimTime>,
}

#[derive(Debug, Clone, Serialize)]
pub struct JobReport {
    /// Job completion time.
    pub jct: SimDuration,
    /// Global iterations (BSP/AllReduce rounds, or total worker iterations in ASP).
    pub iterations: u64,
    pub samples_done: u64,
    /// Samples computed but rolled back (dropped backup-worker pushes,
    /// mid-compute deaths) — recomputed later by the at-least-once machinery.
    pub rolled_back_samples: u64,
    /// Samples requeued by checkpoint-replay restores and re-done through the
    /// real drivers. Zero unless the checkpoint subsystem was armed.
    pub replayed_samples: u64,
    /// `true` if the safety cap fired before the data was exhausted.
    pub timed_out: bool,
    /// `true` if the liveness watchdog aborted the run: no training progress
    /// for `JobConfig::liveness_timeout` while the job was incomplete.
    pub stalled: bool,

    /// Reported BPT per worker over time (paper Figs. 1a, 13). Indexed by
    /// stable node id — identical to the positional index because worker
    /// slots are append-only: an elastic joiner appends series `n`, and a
    /// departed worker's series simply stops, its slot never re-used.
    pub worker_bpt: Vec<TimeSeries>,
    /// Local batch size per worker over time (Fig. 12).
    pub worker_batch: Vec<TimeSeries>,
    /// Reported BPT per server over time (Figs. 1b, 14).
    pub server_bpt: Vec<TimeSeries>,
    /// Global throughput (samples/sec, bucketed) over time (Fig. 14).
    pub global_throughput: TimeSeries,

    /// Controller decisions with timestamps.
    pub actions: Vec<(SimTime, Action)>,
    pub kills: Vec<(SimTime, NodeId)>,
    pub restarts: Vec<(SimTime, NodeId)>,
    /// Chaos-drill timeline: each injected fault with its recovery marks.
    /// Empty unless the job carried `injections`.
    pub injections: Vec<InjectionRecord>,
    /// Per-worker application log of global Controller actions (convergence
    /// invariant input). Empty unless the job carried `injections`.
    pub action_log: Vec<ActionApplication>,
    /// Control-bus directive audit: every fenced directive with its final
    /// fate (applied / rejected-stale / deduped / wiped / expired).
    pub directives: Vec<DirectiveRecord>,

    pub overhead: OverheadLedger,
    /// Data-integrity audit (§VII-D2); absent for even-partition runs.
    pub audit: Option<IntegrityAudit>,
    pub consumption: Option<ConsumptionStats>,
    /// Holdout AUC when the job trained a real model.
    pub auc: Option<f64>,
    pub gantt: Option<Gantt>,
    pub events_processed: u64,
    /// Controller decision audit: per emitted action, the window stats, solver
    /// inputs/outputs and the rule that fired. Populated by auditing policies
    /// (AntDT-ND); empty for baselines that don't audit.
    pub decision_log: Vec<DecisionRecord>,
    /// Rendered telemetry artifacts; present when `JobConfig::telemetry` was
    /// set.
    pub telemetry: Option<TelemetryReport>,
    /// Checkpoint-subsystem ledger (captures, restores, final cadence);
    /// `None` unless the subsystem was armed.
    pub ckpt: Option<CkptReport>,
    /// Straggler-attribution section (per-cause decomposition, blame
    /// ranking); `None` unless `JobConfig::attribution` armed the engine.
    pub attr: Option<AttrReport>,
    /// Elastic-membership timeline (joins, departs, ring resizes); `None`
    /// unless the run actually changed membership.
    pub membership: Option<MembershipReport>,
    /// Per-perturbation divergence instants for fork-based counterfactual
    /// replay. Always collected (set-once, no schedule impact); deliberately
    /// absent from [`JobReport::golden_dump`].
    pub divergence: DivergenceMarks,
}

impl JobReport {
    /// Deterministic line-oriented rendering of every simulated quantity in the
    /// report — the golden-fixture format of `tests/refactor_equivalence.rs`.
    ///
    /// Two same-seed runs must produce byte-identical dumps, so everything
    /// rendered here is derived purely from the simulated schedule (ordered
    /// `Vec`s, `BTreeMap`s, virtual timestamps — never wall clock or hash
    /// iteration order). Telemetry and Gantt artifacts are reduced to presence
    /// flags: they are render-format concerns, not simulation results, and have
    /// their own byte-identity tests in `job.rs`.
    pub fn golden_dump(&self) -> String {
        use std::fmt::Write;
        let mut s = String::new();
        let w = &mut s;
        let _ = writeln!(w, "jct_us: {}", self.jct.as_micros());
        let _ = writeln!(w, "iterations: {}", self.iterations);
        let _ = writeln!(w, "samples_done: {}", self.samples_done);
        let _ = writeln!(w, "rolled_back_samples: {}", self.rolled_back_samples);
        let _ = writeln!(w, "timed_out: {}", self.timed_out);
        let _ = writeln!(w, "stalled: {}", self.stalled);
        let series = |w: &mut String, tag: &str, list: &[TimeSeries]| {
            for (i, ts) in list.iter().enumerate() {
                let _ = writeln!(w, "{tag}[{i}]: {ts:?}");
            }
        };
        series(w, "worker_bpt", &self.worker_bpt);
        series(w, "worker_batch", &self.worker_batch);
        series(w, "server_bpt", &self.server_bpt);
        let _ = writeln!(w, "global_throughput: {:?}", self.global_throughput);
        for (t, a) in &self.actions {
            let _ = writeln!(w, "action: {} {a:?}", t.as_micros());
        }
        for (t, n) in &self.kills {
            let _ = writeln!(w, "kill: {} {n}", t.as_micros());
        }
        for (t, n) in &self.restarts {
            let _ = writeln!(w, "restart: {} {n}", t.as_micros());
        }
        for r in &self.injections {
            let _ = writeln!(w, "injection: {r:?}");
        }
        for a in &self.action_log {
            let _ = writeln!(w, "applied: {a:?}");
        }
        // Only fence rejections are rendered: they are a simulation result
        // (a stale action provably not applied); the rest of the directive
        // audit is bus bookkeeping, and rendering it would force a re-bless
        // of every pre-bus fixture.
        for d in &self.directives {
            if matches!(d.fate, DirectiveFate::RejectedStale { .. }) {
                let _ = writeln!(w, "rejection: {d:?}");
            }
        }
        let _ = writeln!(w, "overhead_dds_us: {}", self.overhead.dds.as_micros());
        let _ = writeln!(w, "overhead_sync_us: {}", self.overhead.sync.as_micros());
        let _ = writeln!(w, "audit: {:?}", self.audit);
        let _ = writeln!(w, "consumption: {:?}", self.consumption);
        let _ = writeln!(w, "auc: {:?}", self.auc);
        let _ = writeln!(w, "gantt_recorded: {}", self.gantt.is_some());
        let _ = writeln!(w, "events_processed: {}", self.events_processed);
        for d in &self.decision_log {
            let _ = writeln!(w, "decision: {d:?}");
        }
        // Checkpoint-subsystem lines render only when the subsystem was
        // armed: every pre-subsystem fixture (and any default-config run)
        // stays byte-identical.
        if let Some(c) = &self.ckpt {
            let _ = writeln!(w, "replayed_samples: {}", self.replayed_samples);
            for r in &c.snapshots {
                let _ = writeln!(w, "ckpt: {r:?}");
            }
            for r in &c.restores {
                let _ = writeln!(w, "ckpt_restore: {r:?}");
            }
            let _ = writeln!(w, "ckpt_interval_final: {:?}", c.final_interval_secs);
        }
        // Attribution lines render only when the engine was armed, keeping
        // every attribution-off fixture byte-identical. Counterfactual rows
        // are deliberately excluded: they come from *separate* what-if runs
        // stapled on after the fact, not from this run's schedule.
        if let Some(a) = &self.attr {
            let _ = writeln!(w, "attr_end_us: {}", a.end_us);
            for n in &a.nodes {
                let _ = writeln!(w, "attr_node: {n:?}");
            }
            for c in &a.crit {
                let _ = writeln!(w, "attr_crit: {c:?}");
            }
            for b in &a.blame {
                let _ = writeln!(w, "attr_blame: {b:?}");
            }
        }
        // Membership lines render only when the run actually changed the
        // worker set: every fixed-world fixture stays byte-identical.
        if let Some(m) = &self.membership {
            let _ = writeln!(
                w,
                "membership: initial={} peak={} final={} joins={} departs={}",
                m.initial_workers, m.peak_workers, m.final_workers, m.joins, m.departs
            );
            for e in &m.events {
                let _ = writeln!(w, "membership_event: {e:?}");
            }
            for r in &m.resizes {
                let _ = writeln!(w, "membership_resize: {r:?}");
            }
            let _ = writeln!(w, "membership_departed: {:?}", m.departed);
            let _ = writeln!(w, "membership_doing_owners: {:?}", m.doing_owners_at_end);
        }
        let _ = writeln!(w, "telemetry_recorded: {}", self.telemetry.is_some());
        s
    }

    /// Mean reported BPT of one worker (for summary tables).
    pub fn mean_worker_bpt(&self, w: usize) -> Option<f64> {
        self.worker_bpt.get(w).and_then(|s| s.mean())
    }

    /// Number of KILL_RESTART actions that actually fired.
    pub fn n_kills(&self) -> usize {
        self.kills.len()
    }

    /// Throughput of the whole job: samples per second of JCT.
    pub fn job_throughput(&self) -> f64 {
        let secs = self.jct.as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            self.samples_done as f64 / secs
        }
    }
}
