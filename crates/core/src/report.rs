//! The job report: every quantity the paper's tables and figures consume.

use antdt_agent::OverheadLedger;
use antdt_controller::Action;
use antdt_dds::{ConsumptionStats, IntegrityAudit};
use antdt_monitor::NodeId;
use antdt_sim::{Gantt, SimDuration, SimTime, TimeSeries};
use serde::Serialize;

#[derive(Debug, Clone, Serialize)]
pub struct JobReport {
    /// Job completion time.
    pub jct: SimDuration,
    /// Global iterations (BSP/AllReduce rounds, or total worker iterations in ASP).
    pub iterations: u64,
    pub samples_done: u64,
    /// Samples computed but rolled back (dropped backup-worker pushes,
    /// mid-compute deaths) — recomputed later by the at-least-once machinery.
    pub rolled_back_samples: u64,
    /// `true` if the safety cap fired before the data was exhausted.
    pub timed_out: bool,

    /// Reported BPT per worker over time (paper Figs. 1a, 13).
    pub worker_bpt: Vec<TimeSeries>,
    /// Local batch size per worker over time (Fig. 12).
    pub worker_batch: Vec<TimeSeries>,
    /// Reported BPT per server over time (Figs. 1b, 14).
    pub server_bpt: Vec<TimeSeries>,
    /// Global throughput (samples/sec, bucketed) over time (Fig. 14).
    pub global_throughput: TimeSeries,

    /// Controller decisions with timestamps.
    pub actions: Vec<(SimTime, Action)>,
    pub kills: Vec<(SimTime, NodeId)>,
    pub restarts: Vec<(SimTime, NodeId)>,

    pub overhead: OverheadLedger,
    /// Data-integrity audit (§VII-D2); absent for even-partition runs.
    pub audit: Option<IntegrityAudit>,
    pub consumption: Option<ConsumptionStats>,
    /// Holdout AUC when the job trained a real model.
    pub auc: Option<f64>,
    pub gantt: Option<Gantt>,
    pub events_processed: u64,
}

impl JobReport {
    /// Mean reported BPT of one worker (for summary tables).
    pub fn mean_worker_bpt(&self, w: usize) -> Option<f64> {
        self.worker_bpt.get(w).and_then(|s| s.mean())
    }

    /// Number of KILL_RESTART actions that actually fired.
    pub fn n_kills(&self) -> usize {
        self.kills.len()
    }

    /// Throughput of the whole job: samples per second of JCT.
    pub fn job_throughput(&self) -> f64 {
        let secs = self.jct.as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            self.samples_done as f64 / secs
        }
    }
}
