//! # antdt-core — the AntDT framework runtime
//!
//! Wires the four AntDT components (Stateful DDS, Monitor, Controller, Agent)
//! around a single shared [`runtime`] kernel built on the discrete-event
//! simulator. Consistency models plug in behind the
//! [`runtime::SyncStrategy`] seam:
//!
//! * [`runtime::bsp`] / [`runtime::asp`] / [`runtime::ssp`] — the Parameter
//!   Server flavors (per-server gradient queues, checkpointing, kill/restart
//!   failover);
//! * [`runtime::ring`] — the ring-AllReduce (PyTorch-DDP-style) runtime with
//!   per-device batch sizes and gradient accumulation;
//! * [`runtime::local_sgd`] — Local SGD (`H` local steps per ring sync), the
//!   worked example of adding a strategy (see the README how-to).
//!
//! [`job::Job`] is the entry point: it takes a [`JobConfig`], runs the
//! simulated job to completion and returns a [`JobReport`] with everything the
//! paper's figures need — JCT, per-node BPT trajectories, batch-size
//! trajectories, shard-consumption stats, the integrity audit, action/failover
//! logs, overhead ledger, and (in real-math mode) the trained model's AUC.
//!
//! [`fleet`] emulates the production A/B test of §VII-F across a population of
//! jobs.

pub mod config;
pub mod events;
pub mod failover;
pub mod fleet;
pub mod job;
pub(crate) mod obs;
pub mod report;
pub mod runtime;
pub mod whatif;

pub use antdt_ckpt::{CkptConfig, CkptPolicy, StorageTier};
pub use config::{
    Arch, ChaosInjection, Consistency, DataStrategy, ExecutionMode, FailoverMode, FaultConfig,
    InjectedFault, JobConfig, MitigationChoice,
};
pub use job::Job;
pub use report::{
    ActionApplication, AttrBlame, AttrCrit, AttrNode, AttrReport, CkptRecord, CkptReport,
    CounterfactualRow, DirectiveFate, DirectiveRecord, InjectionRecord, JobReport, MembershipEvent,
    MembershipEventKind, MembershipReport, ReplayRecord,
};
pub use whatif::{
    apply_perturbation, config_digest, counterfactual_row, divergence_instant, plan_replays,
    run_what_if, run_what_if_forked, what_if_table, what_if_table_forked, ForkReplayStats,
    ForkedRun, Perturbation, PrefixRun, ReplayPlan,
};

/// Run a job with an explicitly constructed policy — the escape hatch for
/// ablations that sweep policy hyper-parameters the standard
/// [`MitigationChoice`] doesn't expose. Dispatches on `cfg.arch` like
/// [`Job::run`].
pub fn ps_run_with_policy(
    cfg: JobConfig,
    policy: Box<dyn antdt_controller::MitigationPolicy>,
) -> JobReport {
    runtime::run_with_policy(cfg, policy)
}
