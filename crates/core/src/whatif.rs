//! Counterfactual replay: re-run a finished job with a [`Perturbation`]
//! applied and measure the JCT delta the edit actually bought.
//!
//! This is the validation half of the attribution engine. The `antdt-attr`
//! analysis *predicts* how much JCT a perturbation recovers
//! ([`antdt_attr::predicted_delta_us`]); this module deterministically
//! replays the same seeded job with the edit applied to the [`JobConfig`]
//! and reports the measured delta next to the prediction. When the two
//! agree, the blame scores are explaining the schedule, not curve-fitting
//! it.

use crate::config::JobConfig;
use crate::job::Job;
use crate::report::{CounterfactualRow, JobReport};
use crate::runtime::attr::analysis_of;
use antdt_attr::predicted_delta_us;
use antdt_sim::ControlChannel;

pub use antdt_attr::Perturbation;

/// Apply one counterfactual edit to a job config. The returned config is the
/// same seeded job in every other respect, so the replay isolates exactly the
/// perturbed mechanism.
pub fn apply_perturbation(mut cfg: JobConfig, p: &Perturbation) -> JobConfig {
    match p {
        Perturbation::HealthyNode(n) => {
            // Strip the contention phases; the node keeps its hardware class,
            // link, and RNG stream (jitter draws replay identically).
            let n = *n as usize;
            if let Some(w) = cfg.cluster.workers.get_mut(n) {
                w.profile.phases.clear();
            }
        }
        Perturbation::ZeroControlLatency => {
            cfg.control_channel = ControlChannel::Ideal;
        }
        Perturbation::NoCkptStalls => {
            cfg.ckpt_save_secs = 0.0;
            if let Some(c) = cfg.ckpt.as_mut() {
                c.capture_stall_secs = 0.0;
            }
        }
    }
    cfg
}

/// Re-run `cfg` with `p` applied (attribution stays armed so the replay is
/// itself explainable).
pub fn run_what_if(cfg: &JobConfig, p: &Perturbation) -> JobReport {
    Job::run(apply_perturbation(cfg.clone(), p))
}

/// Replay every perturbation against `base` (a finished attribution-armed
/// run of `cfg`) and tabulate measured vs predicted JCT deltas.
///
/// Panics if `base` carries no attribution section — the caller must have
/// armed the engine via [`JobConfig::with_attribution`].
pub fn what_if_table(
    cfg: &JobConfig,
    base: &JobReport,
    perturbations: &[Perturbation],
) -> Vec<CounterfactualRow> {
    let attr = base.attr.as_ref().expect("what_if_table needs an attribution-armed base report");
    let analysis = analysis_of(attr);
    let base_jct_us = base.jct.as_micros();
    perturbations
        .iter()
        .map(|p| {
            let what_if = run_what_if(cfg, p);
            let what_if_jct_us = what_if.jct.as_micros();
            CounterfactualRow {
                label: p.label(),
                predicted_delta_us: predicted_delta_us(&analysis, p),
                measured_delta_us: base_jct_us as i64 - what_if_jct_us as i64,
                base_jct_us,
                what_if_jct_us,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use antdt_workloads::cluster::cluster_a_scaled;
    use antdt_workloads::Scenario;

    fn cfg() -> JobConfig {
        JobConfig::ps_bsp(cluster_a_scaled(4, 2), Scenario::WorkerPersistent { intensity: 1.0 })
            .with_attribution()
    }

    #[test]
    fn perturbations_edit_only_their_mechanism() {
        let base = cfg();
        // WorkerPersistent puts the contention phases on the last worker.
        let straggler = base.cluster.workers.len() as u32 - 1;
        assert!(!base.cluster.workers[straggler as usize].profile.phases.is_empty());

        let healthy = apply_perturbation(base.clone(), &Perturbation::HealthyNode(straggler));
        assert!(healthy.cluster.workers[straggler as usize].profile.phases.is_empty());
        assert_eq!(
            healthy.cluster.workers[straggler as usize].profile.stream,
            base.cluster.workers[straggler as usize].profile.stream,
        );

        let quiet = apply_perturbation(base.clone(), &Perturbation::ZeroControlLatency);
        assert_eq!(quiet.control_channel, ControlChannel::Ideal);
        assert_eq!(quiet.ckpt_save_secs, base.ckpt_save_secs);

        let no_stall = apply_perturbation(base, &Perturbation::NoCkptStalls);
        assert_eq!(no_stall.ckpt_save_secs, 0.0);
    }

    #[test]
    fn out_of_range_healthy_node_is_a_no_op() {
        let base = cfg();
        let edited = apply_perturbation(base.clone(), &Perturbation::HealthyNode(10_000));
        assert_eq!(edited.cluster.workers.len(), base.cluster.workers.len());
    }
}
