//! Counterfactual replay: re-run a finished job with a [`Perturbation`]
//! applied and measure the JCT delta the edit actually bought.
//!
//! This is the validation half of the attribution engine. The `antdt-attr`
//! analysis *predicts* how much JCT a perturbation recovers
//! ([`antdt_attr::predicted_delta_us`]); this module deterministically
//! replays the same seeded job with the edit applied to the [`JobConfig`]
//! and reports the measured delta next to the prediction. When the two
//! agree, the blame scores are explaining the schedule, not curve-fitting
//! it.

use crate::config::JobConfig;
use crate::job::Job;
use crate::report::{CounterfactualRow, JobReport};
use crate::runtime::attr::analysis_of;
use crate::runtime::kernel::Kernel;
use crate::runtime::strategy::{erased_run_for, fork_replay_with_policy, ErasedRun};
use antdt_attr::{predicted_delta_us, Analysis};
use antdt_sim::{ControlChannel, SimTime};

pub use crate::runtime::strategy::ForkedRun;
pub use antdt_attr::Perturbation;

/// Apply one counterfactual edit to a job config. The returned config is the
/// same seeded job in every other respect, so the replay isolates exactly the
/// perturbed mechanism.
pub fn apply_perturbation(mut cfg: JobConfig, p: &Perturbation) -> JobConfig {
    match p {
        Perturbation::HealthyNode(n) => {
            // Strip the contention phases; the node keeps its hardware class,
            // link, and RNG stream (jitter draws replay identically).
            let n = *n as usize;
            if let Some(w) = cfg.cluster.workers.get_mut(n) {
                w.profile.phases.clear();
            }
        }
        Perturbation::ZeroControlLatency => {
            cfg.control_channel = ControlChannel::Ideal;
        }
        Perturbation::NoCkptStalls => {
            cfg.ckpt_save_secs = 0.0;
            if let Some(c) = cfg.ckpt.as_mut() {
                c.capture_stall_secs = 0.0;
            }
        }
    }
    cfg
}

/// Re-run `cfg` with `p` applied (attribution stays armed so the replay is
/// itself explainable).
pub fn run_what_if(cfg: &JobConfig, p: &Perturbation) -> JobReport {
    Job::run(apply_perturbation(cfg.clone(), p))
}

/// Apply one counterfactual edit to a *live* forked kernel, mid-run. This is
/// the runtime twin of [`apply_perturbation`]: the config copy keeps every
/// later (re)spawn consistent, and the live mutations retarget state that was
/// already materialised from the old config at boot.
pub(crate) fn apply_live_perturbation(k: &mut Kernel, p: &Perturbation) {
    k.cfg = apply_perturbation(k.cfg.clone(), p);
    match p {
        Perturbation::HealthyNode(n) => {
            if let Some(w) = k.workers.get_mut(*n as usize) {
                w.profile.phases.clear();
            }
        }
        Perturbation::ZeroControlLatency => k.bus.set_ideal_channel(),
        Perturbation::NoCkptStalls => {
            if let Some(c) = k.ckpt_rt.as_mut() {
                c.capture_stall_secs = 0.0;
            }
        }
    }
}

/// How much simulation fork-based replay actually shared, across one
/// [`what_if_table_forked`] call.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ForkReplayStats {
    /// Perturbations replayed from a fork at their divergence instant.
    pub forked: usize,
    /// Perturbations that fell back to a full rerun (no divergence mark, a
    /// divergence at time zero, or a telemetry-armed config).
    pub full_reruns: usize,
    /// Events inherited from shared prefixes instead of being re-simulated.
    pub prefix_events: u64,
    /// Events the forked what-ifs simulated themselves.
    pub suffix_events: u64,
    /// Total events the forked what-ifs report (prefix + suffix); equals what
    /// full reruns of the same perturbations would have simulated.
    pub total_events: u64,
}

impl ForkReplayStats {
    /// Fraction of forked what-if events that were inherited, not simulated.
    pub fn prefix_share(&self) -> f64 {
        if self.total_events == 0 {
            0.0
        } else {
            self.prefix_events as f64 / self.total_events as f64
        }
    }
}

/// Where `base` certifies `p` first bites the schedule, if it recorded one.
/// `None` (or a mark at [`SimTime::ZERO`]) means fork replay is not
/// applicable and the perturbation needs a full rerun.
pub fn divergence_instant(base: &JobReport, p: &Perturbation) -> Option<SimTime> {
    let marks = &base.divergence;
    match p {
        Perturbation::HealthyNode(n) => marks.worker_contended.get(*n as usize).copied().flatten(),
        Perturbation::ZeroControlLatency => marks.control_modeled,
        Perturbation::NoCkptStalls => marks.ckpt_stall,
    }
}

/// 128-bit FNV-1a digest of a config's exhaustive `Debug` rendering — the
/// "same trace/config" identity for snapshot caches and memo stores.
/// [`JobConfig`] is plain data with a derived, field-exhaustive `Debug`, so
/// equal digests mean the same simulated schedule. The rendering is streamed
/// straight into the hash (Real-mode configs debug-print their datasets;
/// materialising that string would dwarf the simulation).
pub fn config_digest(cfg: &JobConfig) -> u128 {
    use std::fmt::Write;
    struct Fnv(u128);
    impl Write for Fnv {
        fn write_str(&mut self, s: &str) -> std::fmt::Result {
            for b in s.bytes() {
                self.0 ^= b as u128;
                self.0 = self.0.wrapping_mul(0x0000_0000_0100_0000_0000_0000_0000_013B);
            }
            Ok(())
        }
    }
    let mut h = Fnv(0x6C62_272E_07BB_0142_62B8_2175_6295_C58D);
    write!(h, "{cfg:?}").expect("hashing a Debug rendering cannot fail");
    h.0
}

/// An arch-erased in-flight job that can be advanced, forked and finished —
/// the unit a what-if snapshot cache stores. Construction refuses
/// telemetry-armed configs: forks share telemetry counters, so such jobs
/// must full-rerun (see [`crate::runtime::strategy::SimRun::fork`]).
pub struct PrefixRun(Box<dyn ErasedRun>);

impl PrefixRun {
    /// Build and bootstrap a run of `cfg` without firing any events.
    ///
    /// Panics if `cfg.telemetry` is armed.
    pub fn new(cfg: &JobConfig) -> Self {
        assert!(!cfg.telemetry, "PrefixRun requires telemetry off (forks share counters)");
        PrefixRun(erased_run_for(cfg))
    }

    /// Fire every event up to and including instant `t` (but no further).
    /// Returns `true` if the queue drained.
    pub fn advance_until(&mut self, t: SimTime) -> bool {
        self.0.advance_until(t)
    }

    /// The job's current simulated instant.
    pub fn now(&self) -> SimTime {
        self.0.now()
    }

    /// Events processed so far.
    pub fn processed(&self) -> u64 {
        self.0.processed()
    }

    /// Whether the job has reached its finish condition.
    pub fn finished(&self) -> bool {
        self.0.finished()
    }

    /// Estimated heap bytes an independent fork of this run owns (world
    /// clone + engine snapshot) — what a size-bounded cache charges.
    pub fn estimate_bytes(&self) -> usize {
        self.0.estimate_bytes()
    }

    /// An independent run resuming from this exact instant; `self` is
    /// untouched.
    pub fn fork(&self) -> PrefixRun {
        PrefixRun(self.0.fork_box())
    }

    /// [`PrefixRun::fork`], then apply `p` to the forked kernel live — the
    /// counterfactual branch point.
    pub fn fork_perturbed(&self, p: &Perturbation) -> PrefixRun {
        let mut f = self.0.fork_box();
        f.perturb(p);
        PrefixRun(f)
    }

    /// Drive to completion and assemble the report.
    pub fn finish(self) -> JobReport {
        self.0.finish_box()
    }
}

/// How one batch of perturbations against a finished base run will be
/// answered: which queries can fork a shared prefix, and which must rerun.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ReplayPlan {
    /// `(query index, divergence instant)` sorted ascending by `(instant,
    /// index)` — fork order off a monotonically advancing shared prefix.
    pub forkable: Vec<(usize, SimTime)>,
    /// Query indices needing a full rerun: no recorded divergence (the edit
    /// never bites), a divergence at time zero (bootstrap already ran under
    /// the old config), or a telemetry-armed config (forks share counters).
    pub full_reruns: Vec<usize>,
}

/// Partition `perturbations` into fork-replayable and full-rerun queries
/// using the divergence marks `base` recorded (see [`ReplayPlan`]).
pub fn plan_replays(
    cfg: &JobConfig,
    base: &JobReport,
    perturbations: &[Perturbation],
) -> ReplayPlan {
    let mut plan = ReplayPlan::default();
    for (i, p) in perturbations.iter().enumerate() {
        match divergence_instant(base, p) {
            Some(t) if t > SimTime::ZERO && !cfg.telemetry => plan.forkable.push((i, t)),
            _ => plan.full_reruns.push(i),
        }
    }
    plan.forkable.sort_by_key(|&(i, t)| (t, i));
    plan
}

/// Assemble one what-if table row from a measured counterfactual JCT.
pub fn counterfactual_row(
    analysis: &Analysis,
    base_jct_us: u64,
    p: &Perturbation,
    what_if_jct_us: u64,
) -> CounterfactualRow {
    CounterfactualRow {
        label: p.label(),
        predicted_delta_us: predicted_delta_us(analysis, p),
        measured_delta_us: base_jct_us as i64 - what_if_jct_us as i64,
        base_jct_us,
        what_if_jct_us,
    }
}

/// Fork-replay a single perturbation off the divergence instant `base`
/// recorded for it. Returns `None` when fork replay is not applicable — no
/// recorded divergence (the edit never bites), a divergence at time zero
/// (bootstrap already ran under the old config), or a telemetry-armed config
/// (forks would share telemetry counters) — in which case the caller should
/// use [`run_what_if`]. The returned report is byte-identical to
/// [`run_what_if`]'s, simulated from only the suffix.
pub fn run_what_if_forked(
    cfg: &JobConfig,
    base: &JobReport,
    p: &Perturbation,
) -> Option<ForkedRun> {
    let t = divergence_instant(base, p)?;
    if t == SimTime::ZERO || cfg.telemetry {
        return None;
    }
    fork_replay_with_policy(cfg, &[(t, *p)]).pop()
}

/// [`what_if_table`] computed by fork-based replay: perturbations whose
/// divergence instant `base` recorded are replayed by forking ONE shared
/// prefix of the baseline run just before that instant, applying the edit
/// live, and simulating only the suffix. The rows are byte-identical to
/// [`what_if_table`]'s — same deltas, same order — but the bulk of the
/// schedule is simulated once instead of once per perturbation.
///
/// Perturbations with no recorded divergence (the edit never bites, so the
/// "replay" equals the baseline) or one at time zero fall back to
/// [`run_what_if`], as does everything when `cfg.telemetry` is armed (forks
/// would share telemetry counters).
pub fn what_if_table_forked(
    cfg: &JobConfig,
    base: &JobReport,
    perturbations: &[Perturbation],
) -> (Vec<CounterfactualRow>, ForkReplayStats) {
    let attr = base.attr.as_ref().expect("what_if_table needs an attribution-armed base report");
    let analysis = analysis_of(attr);
    let base_jct_us = base.jct.as_micros();
    let mut stats = ForkReplayStats::default();

    // Forkable perturbations are replayed off one shared prefix that only
    // ever advances forward, so the plan puts them in divergence order.
    let plan = plan_replays(cfg, base, perturbations);

    let jobs: Vec<(SimTime, Perturbation)> =
        plan.forkable.iter().map(|&(i, t)| (t, perturbations[i])).collect();
    let forked = fork_replay_with_policy(cfg, &jobs);

    let mut reports: Vec<Option<JobReport>> = (0..perturbations.len()).map(|_| None).collect();
    for (&(i, _), run) in plan.forkable.iter().zip(forked) {
        stats.forked += 1;
        stats.prefix_events += run.prefix_events;
        stats.suffix_events += run.suffix_events;
        stats.total_events += run.report.events_processed;
        reports[i] = Some(run.report);
    }
    for i in plan.full_reruns {
        stats.full_reruns += 1;
        reports[i] = Some(run_what_if(cfg, &perturbations[i]));
    }

    let rows = perturbations
        .iter()
        .zip(reports)
        .map(|(p, report)| {
            let what_if_jct_us = report.expect("every perturbation got a report").jct.as_micros();
            counterfactual_row(&analysis, base_jct_us, p, what_if_jct_us)
        })
        .collect();
    (rows, stats)
}

/// Replay every perturbation against `base` (a finished attribution-armed
/// run of `cfg`) and tabulate measured vs predicted JCT deltas.
///
/// Panics if `base` carries no attribution section — the caller must have
/// armed the engine via [`JobConfig::with_attribution`].
pub fn what_if_table(
    cfg: &JobConfig,
    base: &JobReport,
    perturbations: &[Perturbation],
) -> Vec<CounterfactualRow> {
    let attr = base.attr.as_ref().expect("what_if_table needs an attribution-armed base report");
    let analysis = analysis_of(attr);
    let base_jct_us = base.jct.as_micros();
    perturbations
        .iter()
        .map(|p| {
            let what_if = run_what_if(cfg, p);
            counterfactual_row(&analysis, base_jct_us, p, what_if.jct.as_micros())
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use antdt_workloads::cluster::cluster_a_scaled;
    use antdt_workloads::Scenario;

    fn cfg() -> JobConfig {
        JobConfig::ps_bsp(cluster_a_scaled(4, 2), Scenario::WorkerPersistent { intensity: 1.0 })
            .with_attribution()
    }

    #[test]
    fn perturbations_edit_only_their_mechanism() {
        let base = cfg();
        // WorkerPersistent puts the contention phases on the last worker.
        let straggler = base.cluster.workers.len() as u32 - 1;
        assert!(!base.cluster.workers[straggler as usize].profile.phases.is_empty());

        let healthy = apply_perturbation(base.clone(), &Perturbation::HealthyNode(straggler));
        assert!(healthy.cluster.workers[straggler as usize].profile.phases.is_empty());
        assert_eq!(
            healthy.cluster.workers[straggler as usize].profile.stream,
            base.cluster.workers[straggler as usize].profile.stream,
        );

        let quiet = apply_perturbation(base.clone(), &Perturbation::ZeroControlLatency);
        assert_eq!(quiet.control_channel, ControlChannel::Ideal);
        assert_eq!(quiet.ckpt_save_secs, base.ckpt_save_secs);

        let no_stall = apply_perturbation(base, &Perturbation::NoCkptStalls);
        assert_eq!(no_stall.ckpt_save_secs, 0.0);
    }

    #[test]
    fn out_of_range_healthy_node_is_a_no_op() {
        let base = cfg();
        let edited = apply_perturbation(base.clone(), &Perturbation::HealthyNode(10_000));
        assert_eq!(edited.cluster.workers.len(), base.cluster.workers.len());
    }
}
