//! The AllReduce (PyTorch-DDP-style) training runtime.
//!
//! All ranks synchronize every round (BSP only): each device computes `Cᵢ`
//! sequential micro-batches of `Bᵢ` samples, then a ring AllReduce of the
//! model gradients closes the round. Native DDP fixes `Bᵢ = B/n, Cᵢ = 1`;
//! LB-BSP rebalances `Bᵢ`; AntDT-DD jointly picks `(Bᵢ, Cᵢ)` (§VI-B, Fig. 9).

use crate::config::{DataStrategy, ExecutionMode, InjectedFault, JobConfig};
use crate::events::Ev;
use crate::obs::RtTele;
use crate::report::{ActionApplication, InjectionRecord, JobReport};
use antdt_agent::{Agent, OverheadLedger};
use antdt_controller::{Action, MitigationPolicy, PolicyCtx};
use antdt_dds::{DdsConfig, DdsService, ShardLease};
use antdt_ml::{FactorizationMachine, Model, Optimizer, Sgd};
use antdt_monitor::{ClusterInfo, MetricStore, NodeId};
use antdt_sim::gantt::SpanKind;
use antdt_sim::network::ring_allreduce_secs;
use antdt_sim::{Engine, Gantt, RngPool, SimDuration, SimTime, TimeSeries};
use antdt_telemetry::DecisionRecord;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

struct LeaseState {
    lease: ShardLease,
    order: Option<Vec<u64>>,
    consumed: u64,
    /// Samples already folded into a gradient (for real-math index tracking).
    committed: u64,
}

struct Rank {
    agent: Agent,
    /// Cleared by a chaos kill. DDP has no per-rank restart: a killed rank
    /// leaves the ring for good; with failover enabled its shards requeue and
    /// the surviving ranks absorb them (elastic-DDP assumption).
    alive: bool,
    quota: u64,
    accum: u32,
    lr_scale: f32,
    leases: Vec<LeaseState>,
    fixed_remaining: u64,
    rng: StdRng,
    series_bpt: TimeSeries,
    series_batch: TimeSeries,
}

struct Part {
    w: usize,
    took: u64,
    compute_secs: f64,
    grad: Option<Vec<f32>>,
}

struct ArWorld {
    cfg: JobConfig,
    pool: RngPool,
    ranks: Vec<Rank>,
    dds: Option<DdsService>,
    store: MetricStore,
    policy: Box<dyn MitigationPolicy>,
    ctx: PolicyCtx,
    model: Option<(FactorizationMachine, Sgd)>,
    overhead: OverheadLedger,
    actions: Vec<(SimTime, Action)>,
    round: u64,
    round_start: SimTime,
    parts: Vec<Part>,
    samples_done: u64,
    jct_mark: SimTime,
    finished: bool,
    timed_out: bool,
    throughput: TimeSeries,
    gantt: Option<Gantt>,

    // ---- chaos-drill state (neutral unless `injections` is configured)
    injections_log: Vec<InjectionRecord>,
    action_log: Vec<ActionApplication>,
    kills: Vec<(SimTime, NodeId)>,
    chaos_droppers: Vec<(u32, f64, StdRng)>,
    chaos_degraded: Vec<(u32, u32, f64)>,
    chaos_outages: u32,
    last_progress: SimTime,
    stalled: bool,

    /// Telemetry bundle; present iff `JobConfig::telemetry`. Never affects the
    /// simulated schedule.
    tele: Option<RtTele>,
    /// Controller decision audit drained from the policy after every tick.
    decision_log: Vec<DecisionRecord>,
}

pub(crate) fn run(cfg: JobConfig, policy: Box<dyn MitigationPolicy>) -> JobReport {
    cfg.validate();
    let rt = cfg.telemetry.then(|| RtTele::new("allreduce"));
    let pool = RngPool::new(cfg.seed);
    let n = cfg.n_workers();

    // Shards sized in local batches, as in the PS runtime.
    let local_batch = (cfg.global_batch / n.max(1) as u64).max(1);
    let dds = match cfg.data {
        DataStrategy::Dds => Some(DdsService::new(
            DdsConfig::new(cfg.total_samples, local_batch)
                .with_batches_per_shard(cfg.batches_per_shard)
                .with_epochs(cfg.epochs)
                .with_shuffle(Some(cfg.seed)),
        )),
        DataStrategy::EvenPartition => None,
    };
    if let (Some(rt), Some(dds)) = (&rt, &dds) {
        dds.attach_telemetry(rt.dds.clone());
    }
    let model = match &cfg.execution {
        ExecutionMode::Simulated => None,
        ExecutionMode::Real { dataset, latent_k, lr, .. } => {
            Some((FactorizationMachine::new(dataset.n_features, *latent_k, 0.05), Sgd::new(*lr)))
        }
    };

    let mut store = MetricStore::new(cfg.monitor);
    if let Some(rt) = &rt {
        store.attach_telemetry(rt.monitor.clone());
    }
    let total_fixed = cfg.total_samples * cfg.epochs as u64;
    let mut ranks: Vec<Rank> = (0..n)
        .map(|i| {
            store.register(NodeId::worker(i as u32));
            Rank {
                agent: Agent::new(NodeId::worker(i as u32), cfg.agent),
                alive: true,
                quota: cfg.global_batch / n as u64
                    + u64::from((i as u64) < cfg.global_batch % n as u64),
                accum: 1,
                lr_scale: 1.0,
                leases: Vec::new(),
                fixed_remaining: total_fixed / n as u64
                    + u64::from((i as u64) < total_fixed % n as u64),
                rng: pool.stream2(21, i as u64),
                series_bpt: TimeSeries::new(),
                series_batch: TimeSeries::new(),
            }
        })
        .collect();
    if let Some(rt) = &rt {
        for r in &mut ranks {
            r.agent.attach_telemetry(rt.agents.clone());
        }
    }

    let ctx = PolicyCtx { global_batch: cfg.global_batch, n_workers: n, n_servers: 0 };
    // Telemetry implies Gantt recording (the spans feed the Chrome trace).
    let gantt = (cfg.record_gantt || cfg.telemetry).then(Gantt::new);
    let mut world = ArWorld {
        pool,
        ranks,
        dds,
        store,
        policy,
        ctx,
        model,
        overhead: OverheadLedger::new(),
        actions: Vec::new(),
        round: 0,
        round_start: SimTime::ZERO,
        parts: Vec::new(),
        samples_done: 0,
        jct_mark: SimTime::ZERO,
        finished: false,
        timed_out: false,
        throughput: TimeSeries::new(),
        gantt,
        injections_log: Vec::new(),
        action_log: Vec::new(),
        kills: Vec::new(),
        chaos_droppers: Vec::new(),
        chaos_degraded: Vec::new(),
        chaos_outages: 0,
        last_progress: SimTime::ZERO,
        stalled: false,
        tele: rt,
        decision_log: Vec::new(),
        cfg,
    };

    let mut eng: Engine<Ev> = Engine::new();
    if let Some(rt) = &world.tele {
        eng.attach_telemetry(rt.events_scheduled.clone(), rt.events_processed.clone());
    }
    eng.schedule(SimTime::ZERO, Ev::RoundEnd { round: 0 }); // bootstraps round 0
    eng.schedule(SimTime::ZERO + world.cfg.monitor_tick, Ev::MonitorTick);
    for (k, inj) in world.cfg.injections.iter().enumerate() {
        eng.schedule(SimTime::from_secs_f64(inj.at_secs), Ev::ChaosFault { k: k as u32 });
    }
    if let Some(timeout) = world.cfg.liveness_timeout {
        eng.schedule(SimTime::ZERO + timeout, Ev::LivenessCheck);
    }

    let deadline = world.cfg.max_sim_time;
    let drained = eng.run_until(deadline, |eng, ev| world.handle(eng, ev));
    if !drained && !world.finished {
        world.timed_out = true;
    }
    world.into_report(eng.processed())
}

impl ArWorld {
    fn handle(&mut self, eng: &mut Engine<Ev>, ev: Ev) {
        if self.finished {
            return;
        }
        if let Some(rt) = &self.tele {
            rt.tele.flight.record(eng.now().as_micros(), "event", format!("{ev:?}"));
        }
        match ev {
            Ev::RoundEnd { round } if round == self.round => {
                self.close_round(eng);
            }
            Ev::MonitorTick => self.monitor_tick(eng),
            Ev::ChaosFault { k } => self.chaos_fault(eng, k),
            Ev::ChaosLift { k } => self.chaos_lift(k),
            Ev::LivenessCheck => self.liveness_check(eng),
            // AllReduce jobs have no PS-style lifecycle events.
            _ => {}
        }
    }

    // ----------------------------------------------------------------- chaos

    fn chaos_fault(&mut self, eng: &mut Engine<Ev>, k: u32) {
        let now = eng.now();
        let inj = self.cfg.injections[k as usize].clone();
        self.injections_log.push(InjectionRecord {
            index: k,
            at: now,
            desc: inj.fault.describe(),
            restarted_at: None,
            recovered_at: None,
        });
        if let Some(rt) = &self.tele {
            rt.tele.tracer.instant(
                "chaos-fault",
                "chaos",
                now.as_micros(),
                0,
                &[("fault", &inj.fault.describe())],
            );
        }
        match inj.fault {
            InjectedFault::KillWorker { w } => self.kill_rank(now, w, true),
            InjectedFault::KillWorkerNoFailover { w } => self.kill_rank(now, w, false),
            // No per-rank restarts in DDP, so there is no restart to delay.
            InjectedFault::RestartDelay { .. } => {}
            InjectedFault::KillServer { .. } => unreachable!("validated out for allreduce"),
            InjectedFault::NetworkDegrade { w, factor, window_secs } => {
                let link = &mut self.cfg.cluster.workers[w as usize].link;
                self.chaos_degraded.push((k, w, link.bandwidth_bps));
                link.bandwidth_bps /= factor;
                eng.schedule(now + SimDuration::from_secs_f64(window_secs), Ev::ChaosLift { k });
            }
            InjectedFault::DdsOutage { window_secs } => {
                self.chaos_outages += 1;
                if let Some(dds) = &self.dds {
                    dds.set_paused(true);
                }
                eng.schedule(now + SimDuration::from_secs_f64(window_secs), Ev::ChaosLift { k });
            }
            InjectedFault::DropReports { prob, window_secs, seed } => {
                self.chaos_droppers.push((k, prob, StdRng::seed_from_u64(seed)));
                eng.schedule(now + SimDuration::from_secs_f64(window_secs), Ev::ChaosLift { k });
            }
        }
    }

    /// Kill rank `w`. With failover its open leases requeue for the survivors;
    /// without, they stay stuck DOING and the watchdog must catch the stall.
    fn kill_rank(&mut self, now: SimTime, w: u32, failover: bool) {
        let wi = w as usize;
        if !self.ranks[wi].alive {
            return;
        }
        self.ranks[wi].alive = false;
        self.ranks[wi].leases.clear();
        self.kills.push((now, NodeId::worker(w)));
        if let Some(rt) = &self.tele {
            rt.kills.inc();
            rt.tele.tracer.instant("rank-kill", "lifecycle", now.as_micros(), w, &[]);
        }
        if failover {
            if let Some(dds) = &self.dds {
                dds.fail_worker(w);
            }
        }
    }

    fn chaos_lift(&mut self, k: u32) {
        match self.cfg.injections[k as usize].fault {
            InjectedFault::NetworkDegrade { .. } => {
                if let Some(pos) = self.chaos_degraded.iter().position(|d| d.0 == k) {
                    let (_, w, bw) = self.chaos_degraded.swap_remove(pos);
                    self.cfg.cluster.workers[w as usize].link.bandwidth_bps = bw;
                }
            }
            InjectedFault::DdsOutage { .. } => {
                self.chaos_outages = self.chaos_outages.saturating_sub(1);
                if self.chaos_outages == 0 {
                    if let Some(dds) = &self.dds {
                        dds.set_paused(false);
                    }
                }
            }
            InjectedFault::DropReports { .. } => {
                self.chaos_droppers.retain(|d| d.0 != k);
            }
            _ => {}
        }
    }

    fn report_dropped(&mut self) -> bool {
        let mut dropped = false;
        for (_, prob, rng) in &mut self.chaos_droppers {
            if rng.gen_bool(*prob) {
                dropped = true;
            }
        }
        dropped
    }

    fn liveness_check(&mut self, eng: &mut Engine<Ev>) {
        let timeout = self.cfg.liveness_timeout.expect("liveness event without timeout");
        if eng.now().since(self.last_progress) >= timeout {
            self.stalled = true;
            if let Some(rt) = &self.tele {
                rt.tele.tracer.instant("stalled", "chaos", eng.now().as_micros(), 0, &[]);
                rt.tele.flight.record(
                    eng.now().as_micros(),
                    "liveness",
                    format!("stalled: no progress since {}us", self.last_progress.as_micros()),
                );
            }
            eng.clear();
        } else {
            eng.schedule(self.last_progress + timeout, Ev::LivenessCheck);
        }
    }

    fn take(&mut self, w: usize, want: u64) -> u64 {
        if want == 0 {
            return 0;
        }
        match self.cfg.data {
            DataStrategy::EvenPartition => {
                let take = want.min(self.ranks[w].fixed_remaining);
                self.ranks[w].fixed_remaining -= take;
                take
            }
            DataStrategy::Dds => {
                // Batches may span shard boundaries (multiple open leases).
                let mut total = 0u64;
                while total < want {
                    let need_fetch = match self.ranks[w].leases.last() {
                        Some(l) => l.consumed >= l.lease.shard.len,
                        None => true,
                    };
                    if need_fetch {
                        let dds = self.dds.as_ref().expect("dds");
                        match dds.fetch(w as u32) {
                            Some(lease) => {
                                let order =
                                    matches!(self.cfg.execution, ExecutionMode::Real { .. })
                                        .then(|| dds.sample_order(&lease));
                                self.overhead.add_dds(SimDuration::from_secs_f64(0.005));
                                self.ranks[w].leases.push(LeaseState {
                                    lease,
                                    order,
                                    consumed: 0,
                                    committed: 0,
                                });
                            }
                            None => break,
                        }
                    }
                    let lease = self.ranks[w].leases.last_mut().unwrap();
                    let take = (want - total).min(lease.lease.shard.len - lease.consumed);
                    lease.consumed += take;
                    total += take;
                }
                total
            }
        }
    }

    /// Commit consumption at round close (AllReduce rounds never drop pushes):
    /// fully consumed shards go DONE, a trailing partial lease stays open.
    fn commit_lease(&mut self, w: usize) {
        let mut finished = Vec::new();
        for lease in &mut self.ranks[w].leases {
            lease.committed = lease.consumed;
            if lease.consumed >= lease.lease.shard.len {
                finished.push(lease.lease);
            }
        }
        self.ranks[w].leases.retain(|l| l.consumed < l.lease.shard.len);
        for l in finished {
            self.dds.as_ref().expect("dds").report_done(w as u32, l).expect("lease held");
        }
    }

    fn start_round(&mut self, eng: &mut Engine<Ev>) {
        let now = eng.now();
        self.round_start = now;
        self.parts.clear();
        let mut max_end = now;

        for w in 0..self.ranks.len() {
            if !self.ranks[w].alive {
                continue;
            }
            let due = self.ranks[w].agent.take_due(now);
            for (delivered_at, a) in due {
                if !self.cfg.injections.is_empty() {
                    self.action_log.push(ActionApplication {
                        worker: w as u32,
                        delivered_at,
                        applied_at: now,
                        iter: self.round,
                        action: format!("{a:?}"),
                    });
                }
                self.apply_action(w, a);
            }
            let accum = self.ranks[w].accum.max(1);
            let quota = self.ranks[w].quota;
            let mut took = 0u64;
            let mut compute = 0.0f64;
            for _ in 0..accum {
                let got = self.take(w, quota);
                if got == 0 {
                    break;
                }
                took += got;
                let spec = &self.cfg.cluster.workers[w];
                let base = self.cfg.model.compute.time(got, spec.device.speed);
                let rank = &mut self.ranks[w];
                compute += spec.profile.iteration_secs(&self.pool, now, base, &mut rank.rng);
            }
            if took == 0 {
                continue;
            }
            let grad = self.real_grad(w, took);
            if let Some(g) = self.gantt.as_mut() {
                g.record(
                    w as u32,
                    SpanKind::Compute,
                    now,
                    now + SimDuration::from_secs_f64(compute),
                );
            }
            max_end = max_end.max(now + SimDuration::from_secs_f64(compute));
            self.parts.push(Part { w, took, compute_secs: compute, grad });
        }

        if self.parts.is_empty() {
            let complete = self.dds.as_ref().map(|d| d.is_complete()).unwrap_or(true)
                && match self.cfg.data {
                    DataStrategy::EvenPartition => {
                        self.ranks.iter().all(|r| r.fixed_remaining == 0)
                    }
                    DataStrategy::Dds => true,
                };
            if complete {
                self.finished = true;
                eng.clear();
            } else {
                // Shard queue momentarily empty: retry shortly.
                let round = self.round;
                eng.schedule_after(SimDuration::from_secs(1), Ev::RoundEnd { round });
            }
            return;
        }

        // Ring AllReduce over the participating ranks.
        let link = &self.cfg.cluster.workers[0].link;
        let ar = ring_allreduce_secs(link, max_end, self.parts.len(), self.cfg.model.param_bytes);
        let end = max_end + SimDuration::from_secs_f64(ar);
        if let Some(g) = self.gantt.as_mut() {
            for p in &self.parts {
                g.record(
                    p.w as u32,
                    SpanKind::Idle,
                    self.round_start + SimDuration::from_secs_f64(p.compute_secs),
                    max_end,
                );
                g.record(p.w as u32, SpanKind::Comm, max_end, end);
            }
        }
        eng.schedule(end, Ev::RoundEnd { round: self.round });
    }

    fn real_grad(&mut self, w: usize, took: u64) -> Option<Vec<f32>> {
        let (model, _) = self.model.as_ref()?;
        let ExecutionMode::Real { dataset, .. } = &self.cfg.execution else {
            return None;
        };
        let mut idx = Vec::with_capacity(took as usize);
        for lease in &self.ranks[w].leases {
            if lease.consumed > lease.committed {
                let order = lease.order.as_ref()?;
                idx.extend_from_slice(&order[lease.committed as usize..lease.consumed as usize]);
            }
        }
        let mut grad = vec![0.0f32; model.n_params()];
        model.grad_batch(dataset, &idx, &mut grad);
        Some(grad)
    }

    fn close_round(&mut self, eng: &mut Engine<Ev>) {
        let now = eng.now();
        if self.round == 0 && self.parts.is_empty() && self.round_start == SimTime::ZERO {
            // Bootstrap event.
            self.start_round(eng);
            return;
        }
        let parts = std::mem::take(&mut self.parts);
        // Math: sample-weighted mean of the per-rank accumulated gradients.
        let total: u64 = parts.iter().filter(|p| p.grad.is_some()).map(|p| p.took).sum();
        if total > 0 {
            let lr_frac = (total as f32 / self.cfg.global_batch.max(1) as f32).min(1.0);
            let mut agg = vec![0.0f32; self.model.as_ref().map_or(0, |(m, _)| m.n_params())];
            for p in &parts {
                if let Some(g) = &p.grad {
                    let wgt = p.took as f32 / total as f32 * self.ranks[p.w].lr_scale * lr_frac;
                    for (a, b) in agg.iter_mut().zip(g) {
                        *a += b * wgt;
                    }
                }
            }
            if let Some((model, opt)) = self.model.as_mut() {
                opt.step(model.params_mut(), &agg);
            }
        }
        let mut round_samples = 0u64;
        for p in &parts {
            self.commit_lease(p.w);
            round_samples += p.took;
            let bpt = now.since(self.round_start).as_secs_f64();
            self.ranks[p.w].series_bpt.push(now, p.compute_secs.max(0.0));
            self.ranks[p.w].series_batch.push(now, p.took as f64);
            if self.ranks[p.w].agent.on_iteration() && !self.report_dropped() {
                // Reported BPT: the device's own compute time (what AntDT-DD
                // estimates costs from), not the barrier-inclusive round time.
                self.store.report_bpt(NodeId::worker(p.w as u32), now, p.compute_secs, p.took);
                self.overhead.add_sync(SimDuration::from_secs_f64(self.cfg.broadcast.barrier_secs));
            }
            let _ = bpt;
        }
        if round_samples > 0 {
            self.last_progress = self.last_progress.max(now);
            self.samples_done += round_samples;
            self.throughput.push(
                now,
                round_samples as f64 / now.since(self.round_start).as_secs_f64().max(1e-9),
            );
            self.jct_mark = now;
            self.round += 1;
            if let Some(rt) = &self.tele {
                rt.iterations.inc();
            }
        }
        self.start_round(eng);
    }

    fn apply_action(&mut self, w: usize, action: Action) {
        match action {
            Action::AdjustBs { batch_sizes, grad_accum } => {
                if let Some(&b) = batch_sizes.get(w) {
                    self.ranks[w].quota = b;
                }
                if let Some(acc) = grad_accum {
                    if let Some(&c) = acc.get(w) {
                        self.ranks[w].accum = c.max(1);
                    }
                }
            }
            Action::AdjustLr { scales } => {
                if let Some(&s) = scales.get(w) {
                    self.ranks[w].lr_scale = s;
                }
            }
            _ => {}
        }
    }

    fn monitor_tick(&mut self, eng: &mut Engine<Ev>) {
        let now = eng.now();
        let sched = &self.cfg.cluster.scheduler;
        self.store.set_cluster_info(ClusterInfo {
            busy: sched.is_busy(now),
            expected_pending_secs: sched.expected_pending_secs(now),
        });
        let snap = self.store.snapshot(now);
        let actions = self.policy.decide(now, &snap, &self.ctx);
        self.decision_log.extend(self.policy.drain_audit());
        for action in actions {
            if matches!(action, Action::None | Action::KillRestart { .. }) {
                continue; // kill-restart is a PS-side action in this build
            }
            self.actions.push((now, action.clone()));
            if let Some(rt) = &self.tele {
                rt.actions_dispatched.inc();
                rt.tele.tracer.instant(
                    "controller-action",
                    "controller",
                    now.as_micros(),
                    0,
                    &[("action", &format!("{action:?}"))],
                );
            }
            let delay = self.cfg.broadcast.full_broadcast_delay(action.payload_bytes());
            self.overhead.add_sync(delay);
            let at = now + delay;
            for r in &mut self.ranks {
                r.agent.deliver(at, action.clone());
            }
        }
        eng.schedule(now + self.cfg.monitor_tick, Ev::MonitorTick);
    }

    fn into_report(mut self, events_processed: u64) -> JobReport {
        let telemetry = self.tele.take().map(|rt| {
            if let Some(g) = &self.gantt {
                rt.tele.tracer.extend(g.to_trace_events());
            }
            let reason = if self.stalled {
                "stalled"
            } else if self.timed_out {
                "timed-out"
            } else {
                "completed"
            };
            rt.tele.report(reason)
        });
        let auc = match (&self.model, &self.cfg.execution) {
            (Some((model, _)), ExecutionMode::Real { holdout, .. }) if !holdout.is_empty() => {
                let scores = model.scores(holdout);
                let labels: Vec<f32> = holdout.examples.iter().map(|e| e.label).collect();
                antdt_ml::auc(&scores, &labels)
            }
            _ => None,
        };
        JobReport {
            jct: self.jct_mark.since(SimTime::ZERO),
            iterations: self.round,
            samples_done: self.samples_done,
            rolled_back_samples: 0,
            timed_out: self.timed_out,
            stalled: self.stalled,
            worker_bpt: self.ranks.iter().map(|r| r.series_bpt.clone()).collect(),
            worker_batch: self.ranks.iter().map(|r| r.series_batch.clone()).collect(),
            server_bpt: Vec::new(),
            global_throughput: self.throughput,
            actions: self.actions,
            kills: self.kills,
            restarts: Vec::new(),
            injections: self.injections_log,
            action_log: self.action_log,
            overhead: self.overhead,
            audit: self.dds.as_ref().map(|d| d.audit()),
            consumption: self.dds.as_ref().map(|d| d.consumption()),
            auc,
            gantt: self.gantt,
            events_processed,
            decision_log: self.decision_log,
            telemetry,
        }
    }
}
