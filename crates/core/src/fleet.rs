//! Fleet A/B emulation (paper §VII-F, Fig. 19): a population of production
//! jobs — some healthy, some straggling to varying degrees — each run under
//! every method, reporting the mean JCT per method. This mirrors the paper's
//! 3-day A/B test over 30% of production jobs, where normal and straggling
//! jobs cannot be separated a priori.

use crate::config::{DataStrategy, JobConfig, MitigationChoice};
use crate::job::Job;
use antdt_sim::rng::mix64;
use antdt_workloads::cluster::cluster_a_scaled;
use antdt_workloads::{ModelProfile, Scenario};
use serde::Serialize;

#[derive(Debug, Clone, Copy)]
pub struct FleetConfig {
    /// Number of jobs in the A/B population.
    pub n_jobs: usize,
    /// Workers / servers per job.
    pub n_workers: usize,
    pub n_servers: usize,
    /// Samples per job (kept small; only ratios matter).
    pub samples: u64,
    pub global_batch: u64,
    /// Fraction of jobs with no straggler at all.
    pub healthy_fraction: f64,
    pub seed: u64,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            n_jobs: 10,
            n_workers: 6,
            n_servers: 3,
            samples: 1_500_000,
            global_batch: 6144,
            healthy_fraction: 0.4,
            seed: 99,
        }
    }
}

/// Which arm of the A/B test.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum FleetMethod {
    Bsp,
    BackupWorkers,
    LbBsp,
    AntDtNd,
    Asp,
    AspDds,
    AntDtNdAsp,
}

impl FleetMethod {
    pub fn label(&self) -> &'static str {
        match self {
            FleetMethod::Bsp => "BSP",
            FleetMethod::BackupWorkers => "Backup Workers",
            FleetMethod::LbBsp => "LB-BSP",
            FleetMethod::AntDtNd => "AntDT-ND",
            FleetMethod::Asp => "ASP",
            FleetMethod::AspDds => "ASP-DDS",
            FleetMethod::AntDtNdAsp => "AntDT-ND (ASP)",
        }
    }

    pub fn bsp_family() -> [FleetMethod; 4] {
        [FleetMethod::Bsp, FleetMethod::BackupWorkers, FleetMethod::LbBsp, FleetMethod::AntDtNd]
    }

    pub fn asp_family() -> [FleetMethod; 3] {
        [FleetMethod::Asp, FleetMethod::AspDds, FleetMethod::AntDtNdAsp]
    }
}

/// The straggler condition drawn for one job in the population.
fn job_scenario(cfg: &FleetConfig, job: usize) -> Scenario {
    let h = mix64(cfg.seed ^ mix64(job as u64));
    let u = (h >> 11) as f64 / (1u64 << 53) as f64;
    if u < cfg.healthy_fraction {
        return Scenario::None;
    }
    let intensity = 0.2 + 0.6 * ((h >> 7) & 0xff) as f64 / 255.0;
    match h % 3 {
        0 => Scenario::WorkerTransient { intensity },
        1 => Scenario::WorkerMix { intensity },
        _ => Scenario::ServerPersistent { intensity },
    }
}

fn job_config(cfg: &FleetConfig, job: usize, method: FleetMethod) -> JobConfig {
    let cluster = cluster_a_scaled(cfg.n_workers, cfg.n_servers);
    let scenario = job_scenario(cfg, job);
    let base = match method {
        FleetMethod::Bsp
        | FleetMethod::BackupWorkers
        | FleetMethod::LbBsp
        | FleetMethod::AntDtNd => JobConfig::ps_bsp(cluster, scenario),
        _ => JobConfig::ps_asp(cluster, scenario),
    };
    let base = base
        .with_model(ModelProfile::xdeepfm())
        .with_global_batch(cfg.global_batch)
        .with_samples(cfg.samples)
        .with_batches_per_shard(4)
        .with_fast_cadence(antdt_sim::SimDuration::from_secs(120))
        .with_seed(cfg.seed.wrapping_add(job as u64));
    match method {
        FleetMethod::Bsp => base,
        FleetMethod::BackupWorkers => {
            base.with_mitigation(MitigationChoice::BackupWorkers { b: 1 })
        }
        FleetMethod::LbBsp => base.with_mitigation(MitigationChoice::LbBsp),
        FleetMethod::AntDtNd => base.with_mitigation(MitigationChoice::AntDtNd),
        FleetMethod::Asp => base.with_data_strategy(DataStrategy::EvenPartition),
        FleetMethod::AspDds => base,
        FleetMethod::AntDtNdAsp => base.with_mitigation(MitigationChoice::AntDtNdAsp),
    }
}

/// Mean JCT (seconds) of one method over the whole population.
pub fn run_arm(cfg: &FleetConfig, method: FleetMethod) -> ArmResult {
    let mut total = 0.0;
    let mut worst: f64 = 0.0;
    for job in 0..cfg.n_jobs {
        let r = Job::run(job_config(cfg, job, method));
        assert!(!r.timed_out, "fleet job timed out under {method:?}");
        let jct = r.jct.as_secs_f64();
        total += jct;
        worst = worst.max(jct);
    }
    ArmResult { method, mean_jct_secs: total / cfg.n_jobs as f64, worst_jct_secs: worst }
}

#[derive(Debug, Clone, Copy, Serialize)]
pub struct ArmResult {
    pub method: FleetMethod,
    pub mean_jct_secs: f64,
    pub worst_jct_secs: f64,
}

/// Run the full A/B test: both families over the same job population.
pub fn ab_test(cfg: &FleetConfig) -> Vec<ArmResult> {
    FleetMethod::bsp_family()
        .into_iter()
        .chain(FleetMethod::asp_family())
        .map(|m| run_arm(cfg, m))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenarios_are_deterministic_and_mixed() {
        let cfg = FleetConfig::default();
        let a: Vec<Scenario> = (0..cfg.n_jobs).map(|j| job_scenario(&cfg, j)).collect();
        let b: Vec<Scenario> = (0..cfg.n_jobs).map(|j| job_scenario(&cfg, j)).collect();
        assert_eq!(a, b);
        assert!(a.iter().any(|s| matches!(s, Scenario::None)));
        assert!(a.iter().any(|s| !matches!(s, Scenario::None)));
    }

    #[test]
    fn antdt_nd_wins_the_bsp_family_on_average() {
        let cfg = FleetConfig { n_jobs: 4, samples: 200_000, ..Default::default() };
        let bsp = run_arm(&cfg, FleetMethod::Bsp);
        let nd = run_arm(&cfg, FleetMethod::AntDtNd);
        assert!(
            nd.mean_jct_secs < bsp.mean_jct_secs,
            "bsp {} vs nd {}",
            bsp.mean_jct_secs,
            nd.mean_jct_secs
        );
    }
}
