//! The discrete-event vocabulary shared by the PS and AllReduce runtimes.
//! Every node-scoped event carries the node's *generation* (incarnation
//! counter); events addressed to a previous generation are stale — the node was
//! killed after they were scheduled — and are dropped on receipt.

/// The engine type every runtime drives: queue kind chosen at job
/// construction (hierarchical time wheel by default, binary-heap oracle for
/// equivalence runs) without threading a generic parameter through every
/// strategy hook.
pub type RtEngine = antdt_sim::Engine<Ev, antdt_sim::RuntimeQueue<u32>>;

/// A point-in-time capture of an [`RtEngine`] (see
/// [`antdt_sim::EngineSnapshot`]).
pub type RtEngineSnapshot = antdt_sim::EngineSnapshot<Ev>;

// No equality derives: the engine orders events by its packed `(time, seq)`
// key alone, and nothing in the runtimes compares `Ev` values.
#[derive(Debug, Clone, Copy)]
pub enum Ev {
    /// Worker `w` attempts to begin its next iteration.
    WorkerStart { w: u32, gen: u32 },
    /// Worker `w` finished computing iteration `iter`.
    WorkerComputeDone { w: u32, gen: u32, iter: u64 },
    /// Worker `w`'s pull of fresh parameters completed (ASP path).
    WorkerReady { w: u32, gen: u32 },
    /// Monitor aggregation + Controller decision tick.
    MonitorTick,
    /// A `KILL_RESTART` (or fault) signal reached worker `w`.
    WorkerKill { w: u32, gen: u32 },
    /// Worker `w`'s replacement pod is up.
    WorkerRestart { w: u32, gen: u32 },
    /// A kill signal reached server `s`.
    ServerKill { s: u32, gen: u32 },
    /// Server `s`'s replacement pod is up (parameters restored).
    ServerRestart { s: u32, gen: u32 },
    /// Periodic checkpoint save.
    Checkpoint,
    /// Replay failover: the staged snapshot finished streaming back from the
    /// storage tier; apply the rewind (DDS queue, model parameters) at the
    /// restore instant, just before the replacement pod starts.
    CkptRestore,
    /// Background fault arrival at worker `w` (kills whatever generation is
    /// alive, then re-arms).
    FaultWorker { w: u32 },
    /// Background fault arrival at server `s`.
    FaultServer { s: u32 },
    /// AllReduce round `round` ends (all ranks synchronized).
    RoundEnd { round: u64 },
    /// Injected chaos fault fires; `k` indexes `JobConfig::injections`.
    /// The target generation is resolved at fire time so a drill plan written
    /// against node ids stays valid across restarts.
    ChaosFault { k: u32 },
    /// A windowed chaos fault ends: restore the degraded link, lift the DDS
    /// outage, or stop dropping reports.
    ChaosLift { k: u32 },
    /// Liveness watchdog probe: abort the run (loudly, as `stalled`) when no
    /// progress has been made for `JobConfig::liveness_timeout`.
    LivenessCheck,
    /// A control-bus message (report, directive, ack) arrives or retries;
    /// `seq` keys the bus's in-flight envelope table. Only scheduled under a
    /// `Modeled` control channel — the `Ideal` channel delivers inline.
    BusMsg { seq: u64 },
    /// Elastic SCALE_OUT: provisioned worker `w` finishes its topology
    /// rebuild and becomes a live member. Carries no generation — a joiner
    /// starts at generation 0 and cannot be killed before it exists.
    WorkerJoin { w: u32 },
    /// Elastic SCALE_IN: the retire signal reaches worker `w`. Generation-
    /// fenced exactly like `WorkerKill` so a SCALE_IN racing a kill-restart
    /// of the same node cannot double-remove it.
    WorkerDepart { w: u32, gen: u32 },
}
