//! The job driver: builds the mitigation policy from the configuration and
//! dispatches to the right runtime.

use crate::config::{JobConfig, MitigationChoice};
use crate::report::JobReport;
use crate::runtime;
use antdt_controller::{
    AdjustLrPolicy, AntDtDd, AntDtNd, BackupWorkersPolicy, ElasticPolicy, KillRestartOnly, LbBsp,
    MitigationPolicy, NdConfig, NoMitigation,
};

/// Entry point for running one training job end to end.
pub struct Job;

impl Job {
    pub fn run(cfg: JobConfig) -> JobReport {
        let policy = build_policy(&cfg);
        runtime::run_with_policy(cfg, policy)
    }

    /// [`Job::run`] on an explicitly-chosen event-queue implementation. The
    /// job-level heap-vs-wheel parity sweeps and the perf bench force each
    /// variant in turn; regular callers should use [`Job::run`] (which takes
    /// the default queue).
    pub fn run_on_queue(cfg: JobConfig, queue: antdt_sim::RuntimeQueue<u32>) -> JobReport {
        let policy = build_policy(&cfg);
        runtime::run_with_policy_queued(cfg, policy, queue)
    }
}

pub(crate) fn build_policy(cfg: &JobConfig) -> Box<dyn MitigationPolicy> {
    match &cfg.mitigation {
        MitigationChoice::None => Box::new(NoMitigation),
        MitigationChoice::AntDtNd => Box::new(AntDtNd::new(NdConfig::default())),
        MitigationChoice::AntDtNdAsp => Box::new(AntDtNd::new(NdConfig::asp())),
        MitigationChoice::AntDtDd => {
            Box::new(AntDtDd::new(cfg.dd_config().expect("AntDT-DD requires dd_classes")))
        }
        MitigationChoice::LbBsp => {
            let caps: Vec<u64> =
                cfg.cluster.workers.iter().map(|w| w.device.mem_cap_batch).collect();
            Box::new(LbBsp::new(caps))
        }
        MitigationChoice::BackupWorkers { b } => Box::new(BackupWorkersPolicy::new(*b)),
        MitigationChoice::KillRestartOnly => Box::new(KillRestartOnly::new(1.5)),
        MitigationChoice::AdjustLr => Box::new(AdjustLrPolicy::new(1.5)),
        MitigationChoice::Elastic(ecfg) => Box::new(ElasticPolicy::new(*ecfg)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{Arch, Consistency, DataStrategy, ExecutionMode};
    use antdt_sim::dist::Dist;
    use antdt_sim::{BusynessTimeline, SchedulerModel, SimDuration};
    use antdt_workloads::cluster::cluster_a_scaled;
    use antdt_workloads::{ctr, CtrConfig, ModelProfile, Scenario};

    /// A small, fast job configuration shared by the runtime tests.
    fn small(scenario: Scenario) -> JobConfig {
        JobConfig::ps_bsp(cluster_a_scaled(4, 2), scenario)
            .with_model(ModelProfile::xdeepfm())
            .with_global_batch(4096)
            .with_samples(500_000)
            .with_batches_per_shard(10)
            .with_fast_cadence(SimDuration::from_secs(60))
    }

    #[test]
    fn bsp_clean_run_completes_with_integrity() {
        let r = Job::run(small(Scenario::None));
        assert!(!r.timed_out);
        assert_eq!(r.samples_done, 500_000);
        let audit = r.audit.unwrap();
        assert!(audit.at_least_once);
        assert!(audit.at_most_once, "no failovers => no reserves");
        assert_eq!(audit.done_shards, audit.expected_done_shards);
        // ~122 iterations of ~0.56s each.
        assert!(r.iterations >= 120, "iterations {}", r.iterations);
        assert!(r.jct.as_secs_f64() > 10.0);
        assert!(r.kills.is_empty());
    }

    #[test]
    fn bsp_deterministic_across_runs() {
        let a = Job::run(small(Scenario::WorkerMix { intensity: 0.5 }));
        let b = Job::run(small(Scenario::WorkerMix { intensity: 0.5 }));
        assert_eq!(a.jct, b.jct);
        assert_eq!(a.iterations, b.iterations);
        assert_eq!(a.samples_done, b.samples_done);
    }

    #[test]
    fn worker_straggler_slows_native_bsp() {
        let clean = Job::run(small(Scenario::None));
        let strag = Job::run(small(Scenario::WorkerPersistent { intensity: 0.8 }));
        assert!(
            strag.jct.as_secs_f64() > clean.jct.as_secs_f64() * 2.0,
            "clean {} straggler {}",
            clean.jct,
            strag.jct
        );
    }

    #[test]
    fn antdt_nd_beats_native_bsp_under_worker_stragglers() {
        let native = Job::run(small(Scenario::WorkerMix { intensity: 0.8 }));
        let nd = Job::run(
            small(Scenario::WorkerMix { intensity: 0.8 })
                .with_mitigation(MitigationChoice::AntDtNd),
        );
        assert!(!nd.timed_out);
        assert!(
            nd.jct.as_secs_f64() < native.jct.as_secs_f64() * 0.8,
            "native {} vs antdt-nd {}",
            native.jct,
            nd.jct
        );
        // The persistent straggler (last worker) was kill-restarted.
        assert!(nd.n_kills() >= 1);
        // A kill near the end may not see its restart before the job finishes.
        assert!(nd.restarts.len() <= nd.kills.len());
        // Integrity survives the failovers.
        let audit = nd.audit.unwrap();
        assert!(audit.at_least_once);
    }

    #[test]
    fn antdt_nd_beats_native_bsp_under_server_straggler() {
        // Long enough that one failover's cost amortizes (paper jobs run hours).
        let native =
            Job::run(small(Scenario::ServerPersistent { intensity: 0.8 }).with_samples(2_000_000));
        let nd = Job::run(
            small(Scenario::ServerPersistent { intensity: 0.8 })
                .with_samples(2_000_000)
                .with_mitigation(MitigationChoice::AntDtNd),
        );
        assert!(
            nd.jct.as_secs_f64() < native.jct.as_secs_f64() * 0.8,
            "native {} vs antdt-nd {}",
            native.jct,
            nd.jct
        );
        assert!(nd.kills.iter().any(|(_, n)| n.to_string().starts_with("ps-")));
    }

    #[test]
    fn asp_even_partition_is_dominated_by_the_slowest_worker() {
        let cfg = JobConfig::ps_asp(
            cluster_a_scaled(4, 2),
            Scenario::WorkerPersistent { intensity: 0.8 },
        )
        .with_global_batch(4096)
        .with_samples(400_000)
        .with_data_strategy(DataStrategy::EvenPartition);
        let even = Job::run(cfg);

        let dds = Job::run(
            JobConfig::ps_asp(
                cluster_a_scaled(4, 2),
                Scenario::WorkerPersistent { intensity: 0.8 },
            )
            .with_global_batch(4096)
            .with_samples(400_000)
            .with_batches_per_shard(10),
        );
        assert!(!even.timed_out && !dds.timed_out);
        assert_eq!(even.samples_done, 400_000);
        assert_eq!(dds.samples_done, 400_000);
        // DDS lets fast workers absorb the straggler's share.
        assert!(
            dds.jct.as_secs_f64() < even.jct.as_secs_f64() * 0.75,
            "even {} vs dds {}",
            even.jct,
            dds.jct
        );
        // And the straggler consumed visibly fewer samples under DDS.
        let c = dds.consumption.unwrap();
        let slow = c.per_worker[&3].samples_done;
        let fast = c.per_worker[&0].samples_done;
        assert!(slow < fast, "slow {slow} fast {fast}");
    }

    #[test]
    fn backup_workers_drop_and_requeue_straggler_pushes() {
        let bw = Job::run(
            small(Scenario::WorkerPersistent { intensity: 0.8 })
                .with_mitigation(MitigationChoice::BackupWorkers { b: 1 }),
        );
        assert!(!bw.timed_out);
        assert_eq!(bw.samples_done, 500_000, "at-least-once despite drops");
        let audit = bw.audit.unwrap();
        assert!(audit.at_least_once);
        // Dropped pushes forced requeues.
        assert!(audit.requeued_shards > 0 || bw.samples_done == 500_000);
        let native = Job::run(small(Scenario::WorkerPersistent { intensity: 0.8 }));
        assert!(
            bw.jct.as_secs_f64() < native.jct.as_secs_f64(),
            "native {} vs bw {}",
            native.jct,
            bw.jct
        );
    }

    #[test]
    fn lb_bsp_rebalances_but_cannot_fix_server_straggler() {
        // Worker stragglers: LB-BSP's rebalancing beats native BSP at a scale
        // where the drain tail doesn't dominate (paper-scale proportions).
        let worker_cfg = |m: MitigationChoice| {
            small(Scenario::WorkerMix { intensity: 0.8 })
                .with_samples(3_000_000)
                .with_batches_per_shard(5)
                .with_mitigation(m)
        };
        let lb_worker = Job::run(worker_cfg(MitigationChoice::LbBsp));
        let native_worker = Job::run(worker_cfg(MitigationChoice::None));
        assert!(
            lb_worker.jct.as_secs_f64() < native_worker.jct.as_secs_f64(),
            "native {} vs lb {}",
            native_worker.jct,
            lb_worker.jct
        );

        let lb_server = Job::run(
            small(Scenario::ServerPersistent { intensity: 0.8 })
                .with_samples(2_000_000)
                .with_mitigation(MitigationChoice::LbBsp),
        );
        let nd_server = Job::run(
            small(Scenario::ServerPersistent { intensity: 0.8 })
                .with_samples(2_000_000)
                .with_mitigation(MitigationChoice::AntDtNd),
        );
        // LB-BSP cannot shrink T_s/T_m; AntDT-ND (kill) can.
        assert!(
            nd_server.jct.as_secs_f64() < lb_server.jct.as_secs_f64() * 0.8,
            "lb {} vs nd {}",
            lb_server.jct,
            nd_server.jct
        );
    }

    #[test]
    fn ssp_sits_between_bsp_and_asp_under_transient_stragglers() {
        let mk = |cons: Consistency| {
            let mut cfg = small(Scenario::WorkerTransient { intensity: 0.8 });
            cfg.arch = Arch::ParameterServer { consistency: cons };
            Job::run(cfg)
        };
        let bsp = mk(Consistency::Bsp);
        let ssp = mk(Consistency::Ssp { staleness: 4 });
        let asp = mk(Consistency::Asp);
        assert!(!bsp.timed_out && !ssp.timed_out && !asp.timed_out);
        assert_eq!(ssp.samples_done, 500_000);
        // All complete the same data; ASP should not be slower than BSP here.
        assert!(asp.jct <= bsp.jct);
        assert!(ssp.jct <= bsp.jct + antdt_sim::SimDuration::from_secs(60));
    }

    #[test]
    fn real_math_mode_trains_and_reports_auc() {
        let data = ctr::generate(&CtrConfig::default().with_samples(30_000));
        let (train, holdout) = data.split_holdout(0.2);
        let n_train = train.len() as u64;
        let cfg = JobConfig::ps_bsp(cluster_a_scaled(4, 2), Scenario::None)
            .with_global_batch(1024)
            .with_samples(n_train)
            .with_epochs(4)
            .with_batches_per_shard(4)
            .with_execution(ExecutionMode::Real { dataset: train, holdout, latent_k: 8, lr: 0.4 });
        let r = Job::run(cfg);
        assert!(!r.timed_out);
        let auc = r.auc.expect("AUC computed in real mode");
        assert!(auc > 0.7, "AUC {auc}");
    }

    #[test]
    fn background_faults_are_absorbed_by_failover() {
        use crate::config::FaultConfig;
        let r = Job::run(small(Scenario::None).with_samples(2_000_000).with_faults(FaultConfig {
            worker_mtbf: SimDuration::from_secs(200),
            server_mtbf: None,
        }));
        assert!(!r.timed_out);
        assert!(r.samples_done >= 2_000_000);
        assert!(!r.kills.is_empty(), "faults must actually fire");
        assert!(!r.restarts.is_empty(), "failover must bring nodes back");
        let audit = r.audit.unwrap();
        assert!(audit.at_least_once);
        assert!(audit.requeued_shards >= 1);
        // Faulted runs take longer than the clean run, but complete.
        let clean = Job::run(small(Scenario::None).with_samples(2_000_000));
        assert!(r.jct > clean.jct);
    }

    #[test]
    fn checkpoint_based_failover_is_slower_than_dds_based() {
        use crate::config::FailoverMode;
        let base = || {
            small(Scenario::WorkerPersistent { intensity: 0.8 })
                .with_samples(2_000_000)
                .with_mitigation(MitigationChoice::AntDtNd)
        };
        let dds = Job::run(base());
        let ckpt = Job::run(base().with_failover_mode(FailoverMode::CheckpointBased));
        assert!(dds.n_kills() >= 1 && ckpt.n_kills() >= 1);
        // Checkpoint-based recovery stalls the whole job for restore+recompute;
        // the DDS path only replays the dead worker's shards (paper Fig. 17).
        assert!(
            ckpt.jct.as_secs_f64() > dds.jct.as_secs_f64() + 30.0,
            "ckpt {} vs dds {}",
            ckpt.jct,
            dds.jct
        );
        assert!(ckpt.audit.unwrap().at_least_once);
    }

    #[test]
    fn replay_failover_recovers_with_auc_parity() {
        use crate::config::{ChaosInjection, FailoverMode, InjectedFault};
        use antdt_ckpt::{CkptConfig, CkptPolicy, StorageTier};
        let data = ctr::generate(&CtrConfig::default().with_samples(30_000));
        let (train, holdout) = data.split_holdout(0.2);
        let n_train = train.len() as u64;
        let base = |train: antdt_ml::Dataset, holdout: antdt_ml::Dataset| {
            // A real-math job spans about a simulated minute, so the paper's
            // pod pending + init (35–80 s) would park the replacement — and
            // the staged restore with it — past the finish line. Model a hot
            // spare instead: the point here is the replay, not the scheduler.
            let mut cl = cluster_a_scaled(4, 2);
            cl.scheduler = SchedulerModel {
                pending_idle: Dist::Point { value: 1.0 },
                pending_busy: Dist::Point { value: 1.0 },
                node_init: Dist::Point { value: 2.0 },
                busyness: BusynessTimeline::always_idle(),
            };
            let mut cfg = JobConfig::ps_bsp(cl, Scenario::None)
                .with_global_batch(1024)
                .with_samples(n_train)
                .with_epochs(4)
                .with_batches_per_shard(4)
                .with_execution(ExecutionMode::Real {
                    dataset: train,
                    holdout,
                    latent_k: 8,
                    lr: 0.4,
                });
            cfg.world_rebuild_secs = 2.0;
            cfg
        };
        let clean = Job::run(base(train.clone(), holdout.clone()));

        // Scale the cadence and the kill to the clean run's length so the
        // drill always sees durable snapshots before the kill and plenty of
        // post-kill work for the replay to chew through.
        let jct = clean.jct.as_secs_f64();
        let interval = jct / 10.0;
        let drill = Job::run(
            base(train, holdout)
                .with_failover_mode(FailoverMode::Replay)
                .with_checkpoint_interval(SimDuration::from_secs_f64(interval))
                .with_ckpt(CkptConfig {
                    tier: StorageTier::ObjectStore,
                    policy: CkptPolicy::Fixed { interval_secs: interval },
                    capture_stall_secs: 0.1,
                })
                .with_injections(vec![ChaosInjection {
                    at_secs: jct * 0.35,
                    fault: InjectedFault::KillWorker { w: 1 },
                }]),
        );
        assert!(!drill.timed_out && !drill.stalled);
        // Recovery went through the snapshot path: captures drained to the
        // tier, one restore loaded a durable snapshot, and the rewound work
        // was actually re-done through the real drivers.
        let ckpt = drill.ckpt.as_ref().expect("subsystem armed");
        assert!(!ckpt.snapshots.is_empty(), "captures must have run");
        assert!(ckpt.snapshots.iter().all(|s| s.durable_at_us > s.taken_at_us));
        assert_eq!(ckpt.restores.len(), 1, "one kill, one restore");
        assert!(ckpt.restores[0].snapshot_at_us > 0, "a durable snapshot was loaded");
        assert!(drill.replayed_samples > 0, "post-snapshot work must replay");
        let audit = drill.audit.as_ref().unwrap();
        assert!(audit.at_least_once);
        // Replaying through the real drivers must not cost model quality.
        let (da, ca) = (drill.auc.unwrap(), clean.auc.unwrap());
        assert!((da - ca).abs() <= 0.02, "drill AUC {da} vs clean {ca}");
    }

    #[test]
    fn overhead_is_a_small_fraction_of_jct() {
        let r = Job::run(
            small(Scenario::None)
                .with_samples(3_000_000)
                .with_mitigation(MitigationChoice::AntDtNd)
                .with_monitor_tick(SimDuration::from_minutes(1)),
        );
        let f = r.overhead.fraction_of(r.jct);
        assert!(f < 0.02, "overhead fraction {f}");
        assert!(f > 0.0);
    }

    #[test]
    fn allreduce_ddp_completes_and_heterogeneity_hurts() {
        use antdt_workloads::cluster::cluster_b;
        let cfg = JobConfig::allreduce(cluster_b(), Scenario::None)
            .with_model(ModelProfile::resnet101())
            .with_global_batch(768)
            .with_samples(76_800)
            .with_batches_per_shard(2);
        let ddp = Job::run(cfg);
        assert!(!ddp.timed_out);
        assert_eq!(ddp.samples_done, 76_800);
        assert!(ddp.iterations >= 100, "rounds {}", ddp.iterations);

        // Homogeneous (all V100) cluster is faster for the same work.
        use antdt_workloads::cluster::cluster_b_with;
        use antdt_workloads::DeviceClass;
        let homog = JobConfig::allreduce(
            cluster_b_with(DeviceClass::v100(), DeviceClass::v100()),
            Scenario::None,
        )
        .with_model(ModelProfile::resnet101())
        .with_global_batch(768)
        .with_samples(76_800)
        .with_batches_per_shard(2);
        let fast = Job::run(homog);
        assert!(fast.jct < ddp.jct);
    }

    #[test]
    fn injected_worker_kill_is_absorbed_and_logged() {
        use crate::config::{ChaosInjection, InjectedFault};
        let r = Job::run(small(Scenario::None).with_samples(1_000_000).with_injections(vec![
            ChaosInjection { at_secs: 30.0, fault: InjectedFault::KillWorker { w: 1 } },
        ]));
        assert!(!r.timed_out && !r.stalled);
        // At-least-once: the killed worker's shards replay, so the job may
        // compute slightly more than one epoch's worth of samples.
        assert!(r.samples_done >= 1_000_000);
        assert_eq!(r.injections.len(), 1);
        let rec = &r.injections[0];
        assert_eq!(rec.at.as_secs_f64(), 30.0);
        assert!(rec.restarted_at.is_some(), "replacement pod must come up");
        let recovered = rec.recovered_at.expect("worker must commit work again");
        assert!(recovered > rec.restarted_at.unwrap());
        assert_eq!(r.kills.len(), 1);
        let audit = r.audit.unwrap();
        assert!(audit.at_least_once);
        assert_eq!(audit.done_shards, audit.expected_done_shards);
    }

    #[test]
    fn no_failover_kill_stalls_and_watchdog_catches_it() {
        use crate::config::{ChaosInjection, InjectedFault};
        let r = Job::run(
            small(Scenario::None)
                .with_injections(vec![ChaosInjection {
                    at_secs: 20.0,
                    fault: InjectedFault::KillWorkerNoFailover { w: 2 },
                }])
                .with_liveness_timeout(SimDuration::from_secs(120)),
        );
        // The dead worker's DOING shards are never requeued, so the job can
        // never complete; the watchdog must end the run loudly.
        assert!(r.stalled, "watchdog must flag the stall");
        assert!(!r.timed_out, "stall detection, not the 30-day time cap");
        assert!(r.samples_done < 500_000);
        let audit = r.audit.unwrap();
        assert!(!audit.at_least_once, "stuck shards never reached DONE");
    }

    #[test]
    fn dds_outage_delays_but_does_not_corrupt() {
        use crate::config::{ChaosInjection, InjectedFault};
        let clean = Job::run(small(Scenario::None));
        let outage = Job::run(small(Scenario::None).with_injections(vec![ChaosInjection {
            at_secs: 10.0,
            fault: InjectedFault::DdsOutage { window_secs: 30.0 },
        }]));
        assert!(!outage.timed_out && !outage.stalled);
        assert_eq!(outage.samples_done, 500_000);
        let audit = outage.audit.unwrap();
        assert!(audit.at_least_once && audit.at_most_once);
        assert!(
            outage.jct.as_secs_f64() > clean.jct.as_secs_f64() + 5.0,
            "outage must cost wall-clock: clean {} outage {}",
            clean.jct,
            outage.jct
        );
    }

    #[test]
    fn telemetry_does_not_change_simulated_results() {
        let base = || {
            small(Scenario::WorkerMix { intensity: 0.8 }).with_mitigation(MitigationChoice::AntDtNd)
        };
        let plain = Job::run(base());
        let instrumented = Job::run(base().with_telemetry());
        assert_eq!(plain.jct, instrumented.jct);
        assert_eq!(plain.iterations, instrumented.iterations);
        assert_eq!(plain.samples_done, instrumented.samples_done);
        assert_eq!(plain.kills, instrumented.kills);
        assert!(plain.telemetry.is_none());
        assert!(instrumented.telemetry.is_some());
    }

    #[test]
    fn telemetry_exports_are_byte_identical_across_same_seed_runs() {
        let base = || {
            small(Scenario::WorkerMix { intensity: 0.8 })
                .with_mitigation(MitigationChoice::AntDtNd)
                .with_telemetry()
        };
        let a = Job::run(base());
        let b = Job::run(base());
        let (ta, tb) = (a.telemetry.expect("telemetry on"), b.telemetry.expect("telemetry on"));
        // Pre-rendered strings: equality here is byte-for-byte identity of the
        // Prometheus text, metrics JSON, Chrome trace JSON and flight dump.
        assert_eq!(ta, tb);
        assert!(ta.prometheus.contains("antdt_worker_iterations_total"));
        assert!(ta.prometheus.contains("antdt_monitor_bpt_reports_total"));
        assert_eq!(a.decision_log, b.decision_log);
        assert!(!a.decision_log.is_empty(), "AntDT-ND must audit its decisions");
    }

    #[test]
    fn stalled_run_dumps_flight_recorder_and_exports_valid_chrome_trace() {
        use crate::config::{ChaosInjection, InjectedFault};
        let r = Job::run(
            small(Scenario::None)
                .with_injections(vec![ChaosInjection {
                    at_secs: 20.0,
                    fault: InjectedFault::KillWorkerNoFailover { w: 2 },
                }])
                .with_liveness_timeout(SimDuration::from_secs(120))
                .with_telemetry(),
        );
        assert!(r.stalled);
        let t = r.telemetry.expect("telemetry on");
        assert_eq!(t.flight.reason, "stalled");
        assert!(!t.flight.events.is_empty(), "flight recorder must hold the last events");
        assert!(t.flight.events.iter().any(|e| e.category == "liveness"));
        // The Chrome trace round-trips through the schema (Perfetto-loadable).
        let parsed = antdt_telemetry::ChromeTrace::from_json(&t.chrome_trace)
            .expect("valid Chrome trace JSON");
        assert!(!parsed.trace_events.is_empty());
        assert!(parsed.trace_events.iter().any(|e| e.name == "stalled"));
        assert!(parsed.trace_events.iter().any(|e| e.cat == "gantt"));
    }

    #[test]
    fn antdt_dd_beats_ddp_and_lb_bsp_on_heterogeneous_gpus() {
        use antdt_controller::DeviceClassSpec;
        use antdt_workloads::cluster::cluster_b;
        let base = || {
            JobConfig::allreduce(cluster_b(), Scenario::None)
                .with_model(ModelProfile::resnet101())
                .with_global_batch(768)
                .with_samples(153_600)
                .with_batches_per_shard(2)
                .with_fast_cadence(SimDuration::from_secs(20))
        };
        let ddp = Job::run(base());
        let lb = Job::run(base().with_mitigation(MitigationChoice::LbBsp));
        let dd = Job::run(base().with_mitigation(MitigationChoice::AntDtDd).with_dd_classes(vec![
            DeviceClassSpec { count: 4, c0_secs: 0.15, b_min: 16, b_max: 112 },
            DeviceClassSpec { count: 4, c0_secs: 0.15, b_min: 16, b_max: 96 },
        ]));
        assert!(!ddp.timed_out && !lb.timed_out && !dd.timed_out);
        assert!(lb.jct < ddp.jct, "LB-BSP {} should beat DDP {}", lb.jct, ddp.jct);
        assert!(dd.jct < lb.jct, "AntDT-DD {} should beat LB-BSP {}", dd.jct, lb.jct);
    }
}
