//! Kernel data-plane: DDS shard leases, batch take, commit and rollback.
//!
//! Both runtime families consume data the same way — take up to a batch
//! quota across (possibly several) open shard leases, commit on a successful
//! push / round close, roll back on a dropped push or mid-compute death. The
//! only per-family difference is whether a commit charges the DDS fetch
//! round-trip on the overhead ledger ([`Kernel::charge_report_fetch`]).

use super::kernel::Kernel;
use crate::config::ExecutionMode;
use antdt_dds::ShardLease;
use antdt_sim::{SimDuration, SimTime};

/// Extra per-iteration DDS state-synchronization stall (shard offsets, batch
/// cursors) charged on the worker's critical path and in the overhead ledger.
pub(crate) const DDS_SYNC_SECS: f64 = 0.002;
/// DDS round-trip when fetching / reporting a shard.
pub(crate) const DDS_FETCH_SECS: f64 = 0.005;
/// Retry delay when the shard queue is momentarily empty (end of epoch).
pub(crate) const DATA_POLL: SimDuration = SimDuration(5_000_000);

/// One open shard lease plus the worker's consumption cursor into it.
#[derive(Clone)]
pub struct LeaseState {
    pub(crate) lease: ShardLease,
    /// Concrete sample order (real-math mode only).
    pub(crate) order: Option<Vec<u64>>,
    pub(crate) consumed: u64,
    /// Samples already folded into a committed gradient.
    pub(crate) committed: u64,
}

/// Where a worker's samples come from: the stateful DDS, or a fixed even
/// partition (the native-baseline data plane).
#[derive(Clone)]
pub enum DataSource {
    Dds,
    Fixed { remaining: u64 },
}

impl Kernel {
    /// Take up to `want` samples from the worker's source. A batch may span
    /// shard boundaries: multiple leases stay open (uncommitted) until the
    /// push succeeds, so a dropped push can still roll back every one of them.
    /// Returns samples taken (< `want` only when the shard queue is exhausted).
    pub(crate) fn take_batch(&mut self, w: usize, want: u64) -> u64 {
        if want == 0 {
            return 0;
        }
        match &mut self.workers[w].source {
            DataSource::Fixed { remaining } => {
                let take = want.min(*remaining);
                *remaining -= take;
                take
            }
            DataSource::Dds => {
                let mut total = 0u64;
                while total < want {
                    let need_fetch = match self.workers[w].leases.last() {
                        Some(l) => l.consumed >= l.lease.shard.len,
                        None => true,
                    };
                    if need_fetch {
                        let dds = self.dds.as_ref().expect("dds source");
                        match dds.fetch(w as u32) {
                            Some(lease) => {
                                let order = match &self.cfg.execution {
                                    ExecutionMode::Real { .. } => Some(dds.sample_order(&lease)),
                                    ExecutionMode::Simulated => None,
                                };
                                self.overhead.add_dds(SimDuration::from_secs_f64(DDS_FETCH_SECS));
                                self.workers[w].leases.push(LeaseState {
                                    lease,
                                    order,
                                    consumed: 0,
                                    committed: 0,
                                });
                            }
                            None => break,
                        }
                    }
                    let lease = self.workers[w].leases.last_mut().expect("lease ensured");
                    let take = (want - total).min(lease.lease.shard.len - lease.consumed);
                    lease.consumed += take;
                    total += take;
                }
                total
            }
        }
    }

    /// Commit the in-flight consumption after a successful push; fully
    /// consumed shards go DONE in the DDS, a trailing partial lease stays open.
    /// `at` is the commit instant (barrier close / push ready time); it marks
    /// chaos-drill recovery — the first committed work after a restart means
    /// the node is back on full duty.
    pub(crate) fn commit(&mut self, w: usize, at: SimTime) {
        if let Some(idx) = self.chaos_awaiting_recovery.remove(&(w as u32)) {
            if self.injections_log[idx].recovered_at.is_none() {
                self.injections_log[idx].recovered_at = Some(at);
            }
        }
        if let DataSource::Fixed { .. } = self.workers[w].source {
            return; // committed at take time
        }
        let mut finished = Vec::new();
        for lease in &mut self.workers[w].leases {
            lease.committed = lease.consumed;
            if lease.committed >= lease.lease.shard.len {
                finished.push(lease.lease);
            }
        }
        self.workers[w].leases.retain(|l| l.committed < l.lease.shard.len);
        if !finished.is_empty() {
            let dds = self.dds.as_ref().expect("dds source");
            for l in finished {
                dds.report_done(w as u32, l).expect("lease held by this worker");
                if self.charge_report_fetch {
                    self.overhead.add_dds(SimDuration::from_secs_f64(DDS_FETCH_SECS));
                }
            }
        }
    }

    /// Roll back uncommitted consumption (dropped push or mid-compute death).
    pub(crate) fn rollback(&mut self, w: usize, took: u64) {
        self.rolled_back_samples += took;
        match &mut self.workers[w].source {
            DataSource::Fixed { remaining } => *remaining += took,
            DataSource::Dds => {
                for lease in &mut self.workers[w].leases {
                    lease.consumed = lease.committed;
                }
            }
        }
    }
}
