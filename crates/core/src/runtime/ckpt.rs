//! Kernel side of the checkpoint/state subsystem: snapshot capture on the
//! checkpoint cadence, the async storage drain, and replay-based restore.
//!
//! The data model and cost knobs live in the std-only leaf crate
//! [`antdt_ckpt`]; this module is the bridge that walks the kernel's world
//! (DDS queue, worker watermarks, PS parameters) into a [`Snapshot`] and back.
//! Under [`FailoverMode::Replay`](crate::config::FailoverMode) a kill stages
//! the last *durable* snapshot, the storage tier prices the read-back, and
//! [`Kernel::apply_ckpt_restore`] rewinds the DDS queue at the restore
//! instant — the lost iterations then replay through the ordinary
//! `SyncStrategy` drivers, so recovery time is emergent rather than a
//! closed-form estimate.

use super::kernel::Kernel;
use crate::events::{Ev, RtEngine};
use crate::report::{CkptRecord, ReplayRecord};
use antdt_attr::WaitCause;
use antdt_ckpt::{
    CkptConfig, CkptPolicy, DdsSnapshot, DrainQueue, PsState, Snapshot, SnapshotMeta, StorageTier,
    WorkerMark,
};
use antdt_ml::Model;
use antdt_sim::{SimDuration, SimTime};
use antdt_telemetry::DecisionRecord;
use std::collections::BTreeMap;

/// Runtime state of the checkpoint subsystem; present on the kernel iff the
/// job runs `FailoverMode::Replay` or carries an explicit `CkptConfig`.
#[derive(Clone)]
pub(crate) struct CkptRt {
    pub(crate) tier: StorageTier,
    /// The Controller's cadence knob ([`CkptPolicy`]); recomputed after every
    /// capture from the observed fault count.
    pub(crate) cadence: CkptPolicy,
    /// Seconds the capture stalls live servers (copy-on-snapshot pause).
    pub(crate) capture_stall_secs: f64,
    /// Serializes snapshot writes to the tier: captures overlap training, but
    /// a snapshot is only *durable* once its drain write completes.
    pub(crate) drain: DrainQueue,
    /// Snapshots written but not yet durable, as `(durable_at_us, snapshot)`
    /// in drain (= capture) order.
    pub(crate) pending: Vec<(u64, Snapshot)>,
    /// The newest snapshot whose drain write has completed.
    pub(crate) durable: Option<Snapshot>,
    /// Snapshot staged by a Replay kill, applied at the restore instant.
    pub(crate) pending_restore: Option<Snapshot>,
    pub(crate) records: Vec<CkptRecord>,
    pub(crate) restores: Vec<ReplayRecord>,
    /// Interval currently armed, in seconds (starts at the legacy
    /// `checkpoint_interval`, then tracks the cadence policy).
    pub(crate) interval_now: f64,
}

impl CkptRt {
    pub(crate) fn new(c: CkptConfig, initial_interval_secs: f64) -> Self {
        CkptRt {
            tier: c.tier,
            cadence: c.policy,
            capture_stall_secs: c.capture_stall_secs,
            drain: DrainQueue::default(),
            pending: Vec::new(),
            durable: None,
            pending_restore: None,
            records: Vec::new(),
            restores: Vec::new(),
            interval_now: initial_interval_secs,
        }
    }

    /// Promote every pending snapshot whose drain write completed by `now_us`
    /// to the durable slot (drain order is capture order, so the last
    /// qualifying entry is the newest).
    fn promote_durable(&mut self, now_us: u64) {
        while let Some((at, _)) = self.pending.first() {
            if *at > now_us {
                break;
            }
            let (_, snap) = self.pending.remove(0);
            self.durable = Some(snap);
        }
    }
}

impl Kernel {
    /// Walk the world into a snapshot: DDS queue + shard states, per-worker
    /// progress watermarks, and (real-math mode) the PS parameter vector.
    fn ckpt_build_snapshot(&self, now: SimTime) -> Snapshot {
        let dds = self.dds.as_ref().map(|d| d.export_ckpt());
        let consumption = self.dds.as_ref().map(|d| d.consumption());
        let workers = self
            .workers
            .iter()
            .enumerate()
            .map(|(i, w)| WorkerMark {
                worker: i as u32,
                gen: w.gen,
                samples: consumption
                    .as_ref()
                    .and_then(|c| c.per_worker.get(&(i as u32)))
                    .map_or(0, |c| c.samples_done),
            })
            .collect();
        let params = self.math.as_ref().map_or_else(Vec::new, |m| m.model.params().to_vec());
        Snapshot {
            meta: SnapshotMeta {
                seed: self.cfg.seed,
                taken_at_us: now.as_micros(),
                iteration: self.iterations,
                samples_done: self.samples_done,
            },
            ps: PsState { params, model_bytes: self.cfg.model.param_bytes },
            dds,
            workers,
        }
    }

    /// Capture one checkpoint: stall the live servers for the copy, hand the
    /// bytes to the async drain (training resumes immediately; durability
    /// lands when the tier write completes), recompute the cadence from the
    /// observed fault rate and re-arm.
    pub(crate) fn ckpt_capture(&mut self, eng: &mut RtEngine) {
        if self.finished {
            return;
        }
        let now = eng.now();
        self.last_ckpt = now;
        if let Some(rt) = &self.tele {
            rt.tele.tracer.instant("checkpoint", "lifecycle", now.as_micros(), 0, &[]);
        }
        // A nonzero capture stall perturbs both the servers' booking and the
        // adaptive-cadence input (`stall + write_secs`), so the stall itself
        // is the divergence condition even on a serverless topology.
        if self.ckpt_rt.as_ref().is_some_and(|c| c.capture_stall_secs > 0.0) {
            self.mark_ckpt_stall(now);
        }
        let snap = self.ckpt_build_snapshot(now);
        let bytes = snap.size_bytes();
        let digest = snap.digest();
        let faults = self.kills.len() as u64;
        let elapsed = now.since(SimTime::ZERO).as_secs_f64();

        let Some(c) = self.ckpt_rt.as_mut() else {
            return;
        };
        // The capture itself blocks the servers briefly (copy-on-snapshot);
        // the tier write then drains asynchronously.
        let stall = c.capture_stall_secs;
        let write_secs = c.tier.write_secs(bytes);
        let durable_at_us = c.drain.begin_write(now.as_micros(), write_secs);
        c.records.push(CkptRecord { taken_at_us: now.as_micros(), durable_at_us, bytes, digest });
        c.pending.push((durable_at_us, snap));
        c.promote_durable(now.as_micros());

        let (interval, rule) = c.cadence.interval_secs(stall + write_secs, faults, elapsed);
        let changed = (interval - c.interval_now).abs() > 1e-9;
        let prev = c.interval_now;
        c.interval_now = interval;

        for j in 0..self.servers.len() {
            if self.servers[j].alive {
                let base = self.servers[j].free_at.max(now);
                let end = base + SimDuration::from_secs_f64(stall);
                self.servers[j].free_at = end;
                self.attr_fill(super::attr::SERVER_LANE + j as u32, base, WaitCause::SyncWait);
                self.attr_fill(super::attr::SERVER_LANE + j as u32, end, WaitCause::CkptStall);
            }
        }
        if changed {
            // Audit the adaptive-cadence decision alongside the Controller's
            // mitigation decisions so the interval history is explainable.
            let mut window = BTreeMap::new();
            window.insert("faults_observed".to_string(), faults as f64);
            window.insert("interval_prev_secs".to_string(), prev);
            window.insert("interval_next_secs".to_string(), interval);
            self.decision_log.push(DecisionRecord {
                at_us: now.as_micros(),
                rule: rule.to_string(),
                node: String::new(),
                window,
                solver: None,
                actions: vec![format!("ckpt-interval {prev:.3}s -> {interval:.3}s")],
            });
        }
        eng.schedule(now + SimDuration::from_secs_f64(interval), Ev::Checkpoint);
    }

    /// A Replay kill at `now`: settle drain completions, stage the newest
    /// durable snapshot for the restore, and price the read-back. Returns the
    /// tier read time to fold into the replacement pod's delay. With no
    /// durable snapshot yet the stage is an empty snapshot — the rewind then
    /// replays *everything* done so far (cold restart from data zero).
    pub(crate) fn stage_ckpt_restore(&mut self, now: SimTime) -> SimDuration {
        let Some(c) = self.ckpt_rt.as_mut() else {
            return SimDuration::from_secs_f64(0.0);
        };
        c.promote_durable(now.as_micros());
        let snap = c.durable.clone().unwrap_or_default();
        let read_secs = c.tier.read_secs(snap.size_bytes());
        // A later kill at the same or a following instant re-stages; only the
        // last staged snapshot is applied (one restore per recovery).
        c.pending_restore = Some(snap);
        SimDuration::from_secs_f64(read_secs)
    }

    /// The staged snapshot finished streaming back: rewind the DDS queue to
    /// the snapshot's shard states (work completed after the snapshot goes
    /// back to TODO and replays), and restore the PS parameter vector. Runs
    /// at the restore instant — surviving workers' live DOING leases are
    /// untouched and commit normally. No-op when nothing is staged (a second
    /// restore of the same recovery) or the job finished meanwhile.
    pub(crate) fn apply_ckpt_restore(&mut self, eng: &mut RtEngine) {
        let Some(snap) = self.ckpt_rt.as_mut().and_then(|c| c.pending_restore.take()) else {
            return;
        };
        if self.finished {
            return;
        }
        let now = eng.now();
        let empty = DdsSnapshot::default();
        let (requeued_shards, requeued_samples) = match &self.dds {
            Some(d) => d.rewind_ckpt(snap.dds.as_ref().unwrap_or(&empty)),
            None => (0, 0),
        };
        self.replayed_samples += requeued_samples;
        if let Some(m) = self.math.as_mut() {
            let dst = m.model.params_mut();
            if dst.len() == snap.ps.params.len() {
                dst.copy_from_slice(&snap.ps.params);
            }
        }
        if let Some(rt) = &self.tele {
            rt.tele.tracer.instant(
                "ckpt-restore",
                "lifecycle",
                now.as_micros(),
                0,
                &[("requeued_shards", &requeued_shards.to_string())],
            );
        }
        if let Some(c) = self.ckpt_rt.as_mut() {
            c.restores.push(ReplayRecord {
                restored_at_us: now.as_micros(),
                snapshot_at_us: snap.meta.taken_at_us,
                requeued_shards,
                requeued_samples,
            });
        }
    }
}
