//! SSP flavor: asynchronous pushes behind a bounded-staleness gate.
//!
//! A worker may run at most `staleness` iterations ahead of the slowest
//! alive, non-starving worker; workers at the bound park in `waiting` and are
//! re-admitted whenever the minimum advances (a push commits), the laggard
//! dies, or a starving worker needs the parked leases drained.

use super::kernel::Kernel;
use super::ps_common::{self, PsFlavor, PsStrategy};
use crate::events::{Ev, RtEngine};
use antdt_sim::SimTime;
use std::collections::BTreeSet;

/// The SSP flavor over the shared PS driver.
#[derive(Clone)]
pub struct SspFlavor {
    staleness: u32,
    /// Pushes that arrived while a server was down: `(worker, gen, at)`.
    parked: Vec<(u32, u32, SimTime)>,
    /// Workers parked at the staleness bound. Ordered so that same-instant
    /// wake-ups enqueue in worker order: the engine breaks time ties FIFO, so
    /// a hash-ordered drain here would leak run-to-run nondeterminism into
    /// the schedule.
    waiting: BTreeSet<u32>,
}

/// The SSP parameter-server runtime.
pub type SspPs = PsStrategy<SspFlavor>;

impl SspPs {
    pub fn new(staleness: u32) -> Self {
        PsStrategy { flavor: SspFlavor { staleness, parked: Vec::new(), waiting: BTreeSet::new() } }
    }
}

impl SspFlavor {
    /// Wake every parked waiter at `at` (their own gate re-checks the bound).
    fn drain_waiting(&mut self, k: &Kernel, eng: &mut RtEngine, at: SimTime) {
        if self.waiting.is_empty() {
            return;
        }
        let waiting = std::mem::take(&mut self.waiting);
        for v in waiting {
            eng.schedule(at, Ev::WorkerStart { w: v, gen: k.workers[v as usize].gen });
        }
    }
}

impl PsFlavor for SspFlavor {
    fn gate(&mut self, k: &Kernel, w: u32) -> bool {
        // SSP gate: don't run ahead of the slowest alive worker.
        let min_iter = k
            .workers
            .iter()
            .filter(|x| x.alive && !x.done && !x.starving)
            .map(|x| x.iter)
            .min()
            .unwrap_or(u64::MAX);
        if k.workers[w as usize].iter > min_iter.saturating_add(self.staleness as u64) {
            self.waiting.insert(w);
            return true;
        }
        false
    }

    fn before_data_wait(&mut self, k: &mut Kernel, eng: &mut RtEngine) {
        // A starving worker holds the minimum iteration count while parked
        // workers hold the DOING shards: drain them or nobody progresses.
        self.drain_waiting(k, eng, eng.now());
    }

    fn on_push(&mut self, k: &mut Kernel, eng: &mut RtEngine, w: u32, gen: u32, _iter: u64) {
        let now = eng.now();
        if k.servers.iter().any(|s| !s.alive) {
            self.parked.push((w, gen, now));
            return;
        }
        ps_common::finish_asp_push(k, self, eng, w, gen, now);
    }

    fn on_worker_killed(&mut self, k: &mut Kernel, eng: &mut RtEngine, w: u32) {
        // The dead worker may have been the laggard pinning the bound.
        self.waiting.remove(&w);
        self.drain_waiting(k, eng, eng.now());
    }

    fn on_servers_recovered(&mut self, k: &mut Kernel, eng: &mut RtEngine, now: SimTime) {
        let parked = std::mem::take(&mut self.parked);
        for (w, g, _computed_at) in parked {
            // The push resumes now: the gradient transfer restarts against
            // the fresh server.
            ps_common::finish_asp_push(k, self, eng, w, g, now);
        }
    }

    fn after_async_commit(&mut self, k: &mut Kernel, eng: &mut RtEngine, next: SimTime) {
        // This worker's progress may unblock waiters at the bound.
        self.drain_waiting(k, eng, next);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::JobConfig;
    use antdt_controller::NoMitigation;
    use antdt_sim::SimTime;
    use antdt_workloads::cluster::cluster_a_scaled;
    use antdt_workloads::Scenario;

    fn mk_kernel() -> Kernel {
        let cfg = JobConfig::ps_ssp(cluster_a_scaled(4, 2), Scenario::None, 3);
        Kernel::new(cfg, Box::new(NoMitigation), None, 11, true, true)
    }

    fn mk_flavor(staleness: u32) -> SspFlavor {
        SspFlavor { staleness, parked: Vec::new(), waiting: BTreeSet::new() }
    }

    /// The bound is inclusive: a worker exactly `staleness` iterations ahead
    /// of the slowest may still run; one more parks it.
    #[test]
    fn gate_admits_exactly_at_bound_and_parks_one_beyond() {
        let mut k = mk_kernel();
        let mut f = mk_flavor(3);
        // Other workers sit at iter 0, so min = 0 and the bound is iter 3.
        k.workers[2].iter = 3;
        assert!(!f.gate(&k, 2), "iter == min + staleness must pass the gate");
        assert!(f.waiting.is_empty());

        k.workers[2].iter = 4;
        assert!(f.gate(&k, 2), "iter == min + staleness + 1 must park");
        assert!(f.waiting.contains(&2));
    }

    /// Dead, finished and starving workers hold stale iteration counts; none
    /// of them may pin the bound, or the survivors would park forever.
    #[test]
    fn dead_done_and_starving_workers_do_not_pin_the_bound() {
        let mut k = mk_kernel();
        let mut f = mk_flavor(3);
        k.workers[0].alive = false; // killed at iter 0
        k.workers[1].starving = true; // out of shards at iter 0
        k.workers[3].done = true; // finished at iter 0
        k.workers[2].iter = 10;
        // The only eligible worker is w2 itself: min = 10, never gated.
        assert!(!f.gate(&k, 2));
        assert!(f.waiting.is_empty());
    }

    /// Killing a parked laggard removes it from the wait set and wakes the
    /// remaining waiters (the minimum may have advanced past their bound).
    #[test]
    fn killed_laggard_is_dropped_and_remaining_waiters_wake() {
        let mut k = mk_kernel();
        let mut eng = RtEngine::new();
        let mut f = mk_flavor(3);
        f.waiting.insert(1);
        f.waiting.insert(2);
        f.on_worker_killed(&mut k, &mut eng, 2);
        assert!(f.waiting.is_empty(), "kill must clear the killed worker and drain the rest");
        let mut woken = Vec::new();
        eng.run_until(SimTime::from_secs_f64(1.0), |_, ev| {
            if let Ev::WorkerStart { w, .. } = ev {
                woken.push(w);
            }
        });
        assert_eq!(woken, vec![1], "only the surviving waiter reschedules");
    }
}
