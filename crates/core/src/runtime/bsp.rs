//! BSP flavor: global barrier per iteration with backup-workers support.
//!
//! The barrier tracks a frozen participant set per iteration; the close
//! threshold is `participants − backup_b` (§V-D backup workers), so up to
//! `b` stragglers may be dropped — their late pushes roll back and rejoin
//! the next iteration.

use super::attr::SERVER_LANE;
use super::kernel::Kernel;
use super::ml_bridge;
use super::ps_common::{PsFlavor, PsStrategy};
use crate::events::{Ev, RtEngine};
use antdt_attr::WaitCause;
use antdt_monitor::NodeId;
use antdt_sim::gantt::SpanKind;
use antdt_sim::{SimDuration, SimTime};
use std::collections::HashSet;

/// One worker's arrived push awaiting the barrier close.
#[derive(Clone)]
struct Push {
    w: u32,
    compute_end: SimTime,
    /// Per-server gradient-piece arrival instants.
    arrivals: Vec<SimTime>,
}

/// The BSP flavor over the shared PS driver.
#[derive(Clone)]
pub struct BspFlavor {
    /// Global barrier iteration counter.
    iter: u64,
    /// Workers the current barrier waits for (frozen at the last close).
    participants: HashSet<u32>,
    pushes: Vec<Push>,
    /// Reused per-server sort buffer for the barrier-close FIFO pass.
    arrivals_scratch: Vec<SimTime>,
    /// Backup-workers knob: how many stragglers the barrier may drop.
    backup_b: u32,
    /// A close was attempted while a server was down; retry on recovery.
    close_pending: bool,
}

/// The BSP parameter-server runtime.
pub type BspPs = PsStrategy<BspFlavor>;

impl BspPs {
    pub fn new(n: usize) -> Self {
        PsStrategy {
            flavor: BspFlavor {
                iter: 0,
                participants: (0..n as u32).collect(),
                pushes: Vec::new(),
                arrivals_scratch: Vec::new(),
                backup_b: 0,
                close_pending: false,
            },
        }
    }
}

impl BspFlavor {
    fn required(&self) -> usize {
        self.participants.len().saturating_sub(self.backup_b as usize).max(1)
    }

    /// Close the barrier if enough pushes arrived: run the per-server FIFO
    /// pass, one aggregated optimizer apply, commit every pushed worker and
    /// release the next iteration.
    fn try_close(&mut self, k: &mut Kernel, eng: &mut RtEngine) {
        if self.pushes.len() < self.required().min(self.participants.len().max(1)) {
            return;
        }
        if self.pushes.is_empty() {
            return;
        }
        if k.servers.iter().any(|s| !s.alive) {
            self.close_pending = true;
            return;
        }
        self.close_pending = false;
        let now = eng.now();

        // ---- Server pass: per-server FIFO over the arrived pieces, then one
        // optimizer apply per iteration.
        let mut ready_max = SimTime::ZERO;
        let mut arrivals = std::mem::take(&mut self.arrivals_scratch);
        for j in 0..k.servers.len() {
            arrivals.clear();
            arrivals.extend(self.pushes.iter().map(|p| p.arrivals[j]));
            arrivals.sort_unstable();
            let mut t = k.servers[j].free_at;
            let mut busy = 0.0;
            for &a in &arrivals {
                let start = t.max(a);
                let svc = k.cfg.model.server_agg_secs * k.servers[j].profile.slowdown(start);
                t = start + SimDuration::from_secs_f64(svc);
                busy += svc;
                // Server lane: idle until the piece arrives, Comm while
                // aggregating it.
                k.attr_fill(SERVER_LANE + j as u32, start, WaitCause::SyncWait);
                k.attr_fill(SERVER_LANE + j as u32, t, WaitCause::Comm);
            }
            let apply = k.cfg.model.server_apply_secs * k.servers[j].profile.slowdown(t);
            t += SimDuration::from_secs_f64(apply);
            busy += apply;
            k.attr_fill(SERVER_LANE + j as u32, t, WaitCause::Comm);
            k.servers[j].free_at = t;
            k.servers[j].series_bpt.push(t, busy);
            super::bus::send_report(k, eng, NodeId::server(j as u32), t, busy, 0);
            ready_max = ready_max.max(t);
        }
        self.arrivals_scratch = arrivals;

        // ---- Math: aggregate pushed gradients, one apply.
        {
            let contribs: Vec<(u64, &[f32], f32)> = self
                .pushes
                .iter()
                .filter_map(|p| {
                    let inf = k.workers[p.w as usize].inflight.as_ref()?;
                    let g = inf.grad.as_deref()?;
                    Some((inf.took, g, k.workers[p.w as usize].lr_scale))
                })
                .collect();
            ml_bridge::weighted_step(&mut k.math, &contribs, k.cfg.global_batch);
        }

        // ---- Commit pushed workers; record their BPT and schedule the next
        // iteration start after the pull. `self.pushes` is iterated in place
        // and cleared at the end of the close, so the buffer is reused across
        // barriers instead of reallocated each iteration.
        let mut iteration_samples = 0u64;
        // Per-participant barrier-arrival instants for the critical-path
        // analysis (only collected when attribution is armed).
        let mut arrs: Vec<(u32, u64)> = Vec::new();
        for p in &self.pushes {
            let wi = p.w as usize;
            let Some(inf) = k.workers[wi].inflight.take() else {
                continue;
            };
            iteration_samples += inf.took;
            k.commit(wi, ready_max);
            let pull = k.pull_secs(ready_max, wi);
            let push_tx = p
                .arrivals
                .iter()
                .map(|&a| a.since(p.compute_end).as_secs_f64())
                .fold(0.0, f64::max);
            let bpt = inf.compute_end.since(inf.start).as_secs_f64() + push_tx + pull;
            k.workers[wi].iter += 1;
            k.workers[wi].series_bpt.push(now, bpt);
            k.workers[wi].series_batch.push(now, inf.took as f64);
            if k.bus.report_due(wi) && !k.report_dropped() {
                super::bus::send_report(k, eng, NodeId::worker(p.w), now, bpt, inf.took);
                k.overhead.add_sync(SimDuration::from_secs_f64(k.cfg.broadcast.barrier_secs));
            }
            if let Some(g) = k.gantt.as_mut() {
                g.record(
                    p.w,
                    SpanKind::Comm,
                    inf.compute_end,
                    inf.compute_end + SimDuration::from_secs_f64(push_tx),
                );
                g.record(
                    p.w,
                    SpanKind::Idle,
                    inf.compute_end + SimDuration::from_secs_f64(push_tx),
                    ready_max,
                );
            }
            let next = ready_max + SimDuration::from_secs_f64(pull);
            // Worker lane: push transfer, barrier wait, pull. The barrier
            // arrival is when the last gradient piece landed.
            let arrived = inf.compute_end + SimDuration::from_secs_f64(push_tx);
            k.attr_fill(p.w, arrived, WaitCause::Comm);
            k.attr_fill(p.w, ready_max, WaitCause::SyncWait);
            k.attr_fill(p.w, next, WaitCause::Comm);
            if k.attr.is_some() {
                arrs.push((p.w, arrived.as_micros()));
            }
            k.workers[wi].next_allowed = next;
            // A close deferred by a dead server (`close_pending`) resumes at
            // the failover instant, which can sit past the arrival-derived
            // release times: the release is then "immediately", not in the
            // past. The max keeps the engine's clamp counter a pure
            // logic-error signal.
            eng.schedule(next.max(eng.now()), Ev::WorkerStart { w: p.w, gen: k.workers[wi].gen });
        }
        k.attr_barrier(self.iter, &arrs);

        // DDS shard-state synchronization sits on the iteration's critical
        // path once per global iteration (Fig. 18 accounting).
        k.overhead.add_dds(SimDuration::from_secs_f64(super::data::DDS_SYNC_SECS));
        k.account_samples(ready_max, iteration_samples);
        k.bump_iteration();
        k.jct_mark = k.jct_mark.max(ready_max);
        self.iter += 1;
        // Freeze the next iteration's participant set: everyone currently able
        // to contribute a push (clear + extend reuses the set's capacity).
        self.participants.clear();
        self.participants.extend(
            k.workers
                .iter()
                .enumerate()
                .filter(|(_, x)| x.alive && !x.done && !x.starving && x.quota > 0)
                .map(|(i, _)| i as u32),
        );
        // Workers still computing past the barrier belong to the *old* iter;
        // nothing to do — their ComputeDone rolls them into the new one. Idle
        // alive workers that never joined (quota 0 at the time) get poked so a
        // fresh AdjustBs can pick them up. Stragglers beyond the backup
        // threshold were dropped (late ComputeDone rolls back & rejoins).
        for w in 0..k.workers.len() {
            if k.workers[w].alive
                && !k.workers[w].done
                && k.workers[w].inflight.is_none()
                && self.pushes.iter().all(|p| p.w != w as u32)
            {
                // Same deferred-close consideration as the release above.
                eng.schedule(
                    ready_max.max(eng.now()),
                    Ev::WorkerStart { w: w as u32, gen: k.workers[w].gen },
                );
            }
        }
        self.pushes.clear();
        k.check_finished(eng);
    }
}

impl PsFlavor for BspFlavor {
    fn iter_tag(&self, _k: &Kernel, _wi: usize) -> u64 {
        self.iter
    }

    fn on_quota_zero(&mut self, k: &mut Kernel, eng: &mut RtEngine, w: u32) {
        if self.participants.remove(&w) {
            self.try_close(k, eng);
        }
    }

    fn on_data_wait(&mut self, k: &mut Kernel, eng: &mut RtEngine, w: u32) {
        if self.participants.remove(&w) {
            self.try_close(k, eng);
        }
    }

    fn on_worker_done(&mut self, k: &mut Kernel, eng: &mut RtEngine, w: u32) {
        if self.participants.remove(&w) {
            self.try_close(k, eng);
        }
    }

    fn on_push(&mut self, k: &mut Kernel, eng: &mut RtEngine, w: u32, gen: u32, iter: u64) {
        let wi = w as usize;
        let now = eng.now();
        if iter < self.iter {
            // This worker was dropped by backup-workers while computing:
            // roll back its samples and let it join the current iteration.
            let took = k.workers[wi].inflight.take().map(|i| i.took).unwrap_or(0);
            k.rollback(wi, took);
            eng.schedule(now, Ev::WorkerStart { w, gen });
            return;
        }
        let arrivals: Vec<SimTime> = (0..k.servers.len())
            .map(|j| now + SimDuration::from_secs_f64(k.path_transfer(now, wi, j)))
            .collect();
        self.pushes.push(Push { w, compute_end: now, arrivals });
        self.try_close(k, eng);
    }

    fn on_worker_killed(&mut self, _k: &mut Kernel, _eng: &mut RtEngine, w: u32) {
        self.participants.remove(&w);
    }

    fn after_failover(&mut self, k: &mut Kernel, eng: &mut RtEngine) {
        self.try_close(k, eng);
    }

    fn on_servers_recovered(&mut self, k: &mut Kernel, eng: &mut RtEngine, _now: SimTime) {
        if self.close_pending {
            self.try_close(k, eng);
        }
    }

    fn set_backup_workers(&mut self, b: u32) {
        self.backup_b = b;
    }
}
