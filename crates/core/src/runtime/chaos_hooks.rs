//! Kernel chaos hooks: injected-fault firing/lifting, report-drop windows and
//! the liveness watchdog.
//!
//! The kernel owns every windowed fault (network degrade, DDS outage, report
//! drops) and the injection/action audit logs; kill-class faults are handed
//! to the strategy ([`SyncStrategy::inject_kill`]) because what "killing a
//! node" means is consistency-specific — a PS worker fails over, a DDP rank
//! leaves the ring for good.

use super::kernel::Kernel;
use super::strategy::SyncStrategy;
use crate::config::InjectedFault;
use crate::events::{Ev, RtEngine};
use crate::report::InjectionRecord;
use antdt_sim::SimDuration;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// An injected fault fires. The target generation is resolved *now*, so a
/// plan survives unrelated restarts; kills of already-dead nodes no-op but
/// are still logged.
pub(crate) fn chaos_fault<S: SyncStrategy>(
    k: &mut Kernel,
    strat: &mut S,
    eng: &mut RtEngine,
    idx: u32,
) {
    let now = eng.now();
    let inj = k.cfg.injections[idx as usize].clone();
    k.injections_log.push(InjectionRecord {
        index: idx,
        at: now,
        desc: inj.fault.describe(),
        restarted_at: None,
        recovered_at: None,
    });
    let rec_idx = k.injections_log.len() - 1;
    if let Some(rt) = &k.tele {
        rt.tele.tracer.instant(
            "chaos-fault",
            "chaos",
            now.as_micros(),
            0,
            &[("fault", &inj.fault.describe())],
        );
    }
    match inj.fault {
        // Kill-class (instantaneous, consistency-specific) faults — including
        // the membership drills — go to the strategy.
        InjectedFault::KillWorker { .. }
        | InjectedFault::KillServer { .. }
        | InjectedFault::KillWorkerNoFailover { .. }
        | InjectedFault::RestartDelay { .. }
        | InjectedFault::ScaleOut { .. }
        | InjectedFault::ScaleIn { .. } => strat.inject_kill(k, eng, &inj.fault, rec_idx),
        InjectedFault::NetworkDegrade { w, factor, window_secs } => {
            let link = &mut k.workers[w as usize].link;
            k.chaos_degraded.push((idx, w, link.bandwidth_bps));
            link.bandwidth_bps /= factor;
            eng.schedule(now + SimDuration::from_secs_f64(window_secs), Ev::ChaosLift { k: idx });
        }
        InjectedFault::DdsOutage { window_secs } => {
            k.chaos_outages += 1;
            if let Some(dds) = &k.dds {
                dds.set_paused(true);
            }
            eng.schedule(now + SimDuration::from_secs_f64(window_secs), Ev::ChaosLift { k: idx });
        }
        InjectedFault::DropReports { prob, window_secs, seed } => {
            k.chaos_droppers.push((idx, prob, StdRng::seed_from_u64(seed)));
            eng.schedule(now + SimDuration::from_secs_f64(window_secs), Ev::ChaosLift { k: idx });
        }
        InjectedFault::ControlDegrade { latency_secs, loss_prob, window_secs, seed } => {
            k.bus.push_degrade(idx, latency_secs, loss_prob, seed);
            eng.schedule(now + SimDuration::from_secs_f64(window_secs), Ev::ChaosLift { k: idx });
        }
    }
}

/// A windowed fault's window closes: undo its effect.
pub(crate) fn chaos_lift<S: SyncStrategy>(
    k: &mut Kernel,
    strat: &mut S,
    eng: &mut RtEngine,
    idx: u32,
) {
    match k.cfg.injections[idx as usize].fault {
        InjectedFault::NetworkDegrade { .. } => {
            if let Some(pos) = k.chaos_degraded.iter().position(|d| d.0 == idx) {
                let (_, w, bw) = k.chaos_degraded.swap_remove(pos);
                k.workers[w as usize].link.bandwidth_bps = bw;
            }
        }
        InjectedFault::DdsOutage { .. } => {
            k.chaos_outages = k.chaos_outages.saturating_sub(1);
            if k.chaos_outages == 0 {
                if let Some(dds) = &k.dds {
                    dds.set_paused(false);
                }
                strat.on_dds_restored(k, eng);
            }
        }
        InjectedFault::DropReports { .. } => {
            k.chaos_droppers.retain(|d| d.0 != idx);
        }
        InjectedFault::ControlDegrade { .. } => k.bus.pop_degrade(idx),
        _ => {}
    }
}

impl Kernel {
    /// True when an active DropReports window swallows this Agent→Monitor
    /// report. Every active window samples its own seeded stream per attempted
    /// report, so drills stay deterministic.
    pub(crate) fn report_dropped(&mut self) -> bool {
        let mut dropped = false;
        for (_, prob, rng) in &mut self.chaos_droppers {
            if rng.gen_bool(*prob) {
                dropped = true;
            }
        }
        dropped
    }

    /// Liveness watchdog: abort loudly (`stalled`) when nothing has progressed
    /// for a full timeout window; otherwise re-arm at the earliest instant the
    /// window could next expire.
    pub(crate) fn liveness_check(&mut self, eng: &mut RtEngine) {
        let timeout = self.cfg.liveness_timeout.expect("liveness event without timeout");
        let now = eng.now();
        if now.since(self.last_progress) >= timeout {
            self.stalled = true;
            if let Some(rt) = &self.tele {
                rt.tele.tracer.instant("stalled", "chaos", now.as_micros(), 0, &[]);
                rt.tele.flight.record(
                    now.as_micros(),
                    "liveness",
                    format!("stalled: no progress since {}us", self.last_progress.as_micros()),
                );
            }
            eng.clear();
        } else {
            eng.schedule(self.last_progress + timeout, Ev::LivenessCheck);
        }
    }
}
