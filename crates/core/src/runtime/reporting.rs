//! Kernel reporting: sample accounting, the finish check and the final
//! [`JobReport`] assembly — identical for every strategy, so the report shape
//! can never drift between runtime families again.

use super::data::DataSource;
use super::kernel::Kernel;
use crate::config::{DataStrategy, ExecutionMode};
use crate::events::RtEngine;
use crate::report::{CkptReport, JobReport, MembershipEventKind, MembershipReport};
use antdt_ml::Model;
use antdt_sim::{SimDuration, SimTime};

/// Bucket width of the global-throughput series (samples/sec, Fig. 14).
pub(crate) const THROUGHPUT_BUCKET: SimDuration = SimDuration(60_000_000);

impl Kernel {
    /// Account `samples` completed at `at` into the progress watermark and the
    /// bucketed global-throughput series.
    pub(crate) fn account_samples(&mut self, at: SimTime, samples: u64) {
        if samples > 0 {
            self.last_progress = self.last_progress.max(at);
        }
        self.samples_done += samples;
        self.bucket_samples += samples;
        while at.since(self.bucket_start) >= THROUGHPUT_BUCKET {
            let mid = self.bucket_start + THROUGHPUT_BUCKET / 2;
            self.throughput.push(mid, self.bucket_samples as f64 / THROUGHPUT_BUCKET.as_secs_f64());
            self.bucket_start += THROUGHPUT_BUCKET;
            self.bucket_samples = 0;
        }
    }

    /// Finish when the data plane is drained and nothing is in flight.
    pub(crate) fn check_finished(&mut self, eng: &mut RtEngine) {
        if self.finished {
            return;
        }
        let data_done = match self.cfg.data {
            DataStrategy::Dds => self.dds.as_ref().unwrap().is_complete(),
            DataStrategy::EvenPartition => {
                self.workers.iter().all(|w| matches!(w.source, DataSource::Fixed { remaining: 0 }))
            }
        };
        let no_inflight = self.workers.iter().all(|w| w.inflight.is_none());
        if data_done && no_inflight {
            self.finished = true;
            eng.clear();
        }
    }

    /// Consume the world into the final report.
    pub(crate) fn into_report(mut self, events_processed: u64) -> JobReport {
        // Fence rejections audited after the last monitor tick still belong
        // in the decision log.
        let mut late_audit = self.bus.drain_decision_audit();
        self.decision_log.append(&mut late_audit);
        let directives = self.bus.take_directives();
        // Finalize the attribution ledger at the measured JCT before the
        // telemetry render so its counter tracks land in the same bundle.
        let jct_us = self.jct_mark.since(SimTime::ZERO).as_micros();
        let attr_ledger = self.attr.take().map(|mut rt| {
            rt.ledger.finalize(jct_us);
            rt.ledger
        });
        let telemetry = self.tele.take().map(|rt| {
            // Merge the Gantt spans into the trace before rendering: they are
            // the bulk of the Perfetto timeline (compute/comm/idle/failover
            // lanes per node).
            if let Some(g) = &self.gantt {
                rt.tele.tracer.extend(g.to_trace_events());
            }
            if let Some(l) = &attr_ledger {
                super::attr::export_telemetry(l, &rt.tele);
            }
            let reason = if self.stalled {
                "stalled"
            } else if self.timed_out {
                "timed-out"
            } else {
                "completed"
            };
            rt.tele.report(reason)
        });
        let attr = attr_ledger.map(|l| super::attr::report_of(&l, jct_us));
        let ckpt = self.ckpt_rt.take().map(|rt| CkptReport {
            snapshots: rt.records,
            restores: rt.restores,
            final_interval_secs: rt.interval_now,
        });
        // The membership section exists only when the worker set actually
        // changed, so fixed-world runs (the golden fixtures) render `None`.
        let membership = (!self.membership.events.is_empty()).then(|| {
            let events = std::mem::take(&mut self.membership.events);
            let mut departed: Vec<u32> = self.membership.departed.iter().copied().collect();
            departed.sort_unstable();
            MembershipReport {
                initial_workers: self.membership.initial as u32,
                peak_workers: self.workers.len() as u32,
                final_workers: self.workers.iter().filter(|w| w.alive || w.done).count() as u32,
                joins: events
                    .iter()
                    .filter(|e| matches!(e.kind, MembershipEventKind::Joined))
                    .count() as u32,
                departs: departed.len() as u32,
                events,
                departed,
                resizes: self.dds.as_ref().map(|d| d.resize_log()).unwrap_or_default(),
                doing_owners_at_end: self
                    .dds
                    .as_ref()
                    .map(|d| d.doing_owners())
                    .unwrap_or_default(),
            }
        });
        let auc = match (&self.math, &self.cfg.execution) {
            (Some(math), ExecutionMode::Real { holdout, .. }) if !holdout.is_empty() => {
                let scores = math.model.scores(holdout);
                let labels: Vec<f32> = holdout.examples.iter().map(|e| e.label).collect();
                antdt_ml::auc(&scores, &labels)
            }
            _ => None,
        };
        JobReport {
            jct: self.jct_mark.since(SimTime::ZERO),
            iterations: self.iterations,
            samples_done: self.samples_done,
            rolled_back_samples: self.rolled_back_samples,
            replayed_samples: self.replayed_samples,
            timed_out: self.timed_out,
            stalled: self.stalled,
            // `self` is consumed here, so the per-node series move into the
            // report instead of deep-cloning every (time, value) vector.
            worker_bpt: self
                .workers
                .iter_mut()
                .map(|w| std::mem::take(&mut w.series_bpt))
                .collect(),
            worker_batch: self
                .workers
                .iter_mut()
                .map(|w| std::mem::take(&mut w.series_batch))
                .collect(),
            server_bpt: self
                .servers
                .iter_mut()
                .map(|s| std::mem::take(&mut s.series_bpt))
                .collect(),
            global_throughput: self.throughput,
            actions: self.actions,
            kills: self.kills,
            restarts: self.restarts,
            injections: self.injections_log,
            action_log: self.action_log,
            directives,
            overhead: self.overhead,
            audit: self.dds.as_ref().map(|d| d.audit()),
            consumption: self.dds.as_ref().map(|d| d.consumption()),
            auc,
            gantt: self.gantt,
            events_processed,
            decision_log: self.decision_log,
            telemetry,
            ckpt,
            attr,
            membership,
            divergence: {
                let mut marks = self.marks;
                marks.control_modeled = self.bus.control_divergence();
                marks
            },
        }
    }
}
